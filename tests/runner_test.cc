// Integration tests: the full cyclic workload (§3.4) across partitioners
// and provisioning policies, driving every module together.

#include <gtest/gtest.h>

#include <map>

#include "reorg/reorg_engine.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/runner.h"

namespace arraydb::workload {
namespace {

TEST(RunnerConfigTest, IncrementBudgetDefaultsShareOneSourceOfTruth) {
  // Regression: RunnerConfig.reorg_increment_gb and ReorgOptions.
  // increment_gb once carried independent literals that could silently
  // diverge; both now default to reorg::kDefaultIncrementGb.
  EXPECT_DOUBLE_EQ(RunnerConfig().reorg.increment_gb,
                   reorg::ReorgOptions().increment_gb);
  EXPECT_DOUBLE_EQ(reorg::ReorgOptions().increment_gb,
                   reorg::kDefaultIncrementGb);
}

RunnerConfig BaseConfig(core::PartitionerKind kind) {
  RunnerConfig cfg;
  cfg.partitioner = kind;
  cfg.policy = ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  return cfg;
}

TEST(RunnerIntegrationTest, ModisReachesEightNodes) {
  // §6.2 setup: start with 2 nodes, add 2 at capacity, end at 8.
  ModisWorkload modis;
  WorkloadRunner runner(BaseConfig(core::PartitionerKind::kConsistentHash));
  const auto result = runner.Run(modis);
  ASSERT_EQ(result.cycles.size(), 14u);
  EXPECT_EQ(result.final_nodes, 8);
  // Demand ends around 630 GB, within the 800 GB testbed.
  EXPECT_GT(result.cycles.back().load_gb, 550.0);
  EXPECT_LT(result.cycles.back().load_gb, 800.0);
  // Every phase charged time.
  EXPECT_GT(result.total_insert_minutes, 0.0);
  EXPECT_GT(result.total_reorg_minutes, 0.0);
  EXPECT_GT(result.total_spj_minutes, 0.0);
  EXPECT_GT(result.total_science_minutes, 0.0);
  EXPECT_GT(result.cost_node_hours, 0.0);
}

TEST(RunnerIntegrationTest, AisReachesEightNodes) {
  AisWorkload ais;
  WorkloadRunner runner(BaseConfig(core::PartitionerKind::kKdTree));
  const auto result = runner.Run(ais);
  ASSERT_EQ(result.cycles.size(), 10u);
  EXPECT_EQ(result.final_nodes, 8);
  EXPECT_GT(result.cycles.back().load_gb, 330.0);
}

TEST(RunnerIntegrationTest, IncrementalSchemesKeepTheInvariantAtScale) {
  ModisWorkload modis;
  for (const auto kind :
       {core::PartitionerKind::kAppend, core::PartitionerKind::kConsistentHash,
        core::PartitionerKind::kExtendibleHash,
        core::PartitionerKind::kHilbertCurve,
        core::PartitionerKind::kIncrementalQuadtree,
        core::PartitionerKind::kKdTree}) {
    WorkloadRunner runner(BaseConfig(kind));
    const auto result = runner.Run(modis);
    for (const auto& m : result.cycles) {
      EXPECT_TRUE(m.reorg_only_to_new_nodes)
          << core::PartitionerKindName(kind) << " cycle " << m.cycle;
    }
  }
}

TEST(RunnerIntegrationTest, GlobalSchemesMoveMoreData) {
  // §6.2.1: Round Robin and Uniform Range pay a far larger reorganization
  // than the incremental schemes.
  ModisWorkload modis;
  std::map<core::PartitionerKind, double> moved;
  for (const auto kind :
       {core::PartitionerKind::kRoundRobin, core::PartitionerKind::kKdTree,
        core::PartitionerKind::kHilbertCurve}) {
    RunnerConfig cfg = BaseConfig(kind);
    cfg.run_queries = false;  // Only placement matters here.
    WorkloadRunner runner(cfg);
    double gb = 0.0;
    for (const auto& m : runner.Run(modis).cycles) gb += m.moved_gb;
    moved[kind] = gb;
  }
  EXPECT_GT(moved[core::PartitionerKind::kRoundRobin],
            2.0 * moved[core::PartitionerKind::kKdTree]);
  EXPECT_GT(moved[core::PartitionerKind::kRoundRobin],
            2.0 * moved[core::PartitionerKind::kHilbertCurve]);
}

TEST(RunnerIntegrationTest, AppendMovesNothingOnReorg) {
  ModisWorkload modis;
  RunnerConfig cfg = BaseConfig(core::PartitionerKind::kAppend);
  cfg.run_queries = false;
  WorkloadRunner runner(cfg);
  const auto result = runner.Run(modis);
  for (const auto& m : result.cycles) {
    EXPECT_EQ(m.chunks_moved, 0);
  }
}

TEST(RunnerIntegrationTest, StaircasePolicyTracksDemand) {
  ModisWorkload modis;
  RunnerConfig cfg = BaseConfig(core::PartitionerKind::kConsistentHash);
  cfg.policy = ScaleOutPolicy::kStaircase;
  cfg.staircase_samples = 4;
  cfg.staircase_plan_ahead = 3;
  cfg.max_nodes = 64;  // Staircase decides on its own.
  WorkloadRunner runner(cfg);
  const auto result = runner.Run(modis);
  for (const auto& m : result.cycles) {
    // Capacity (nodes * 100 GB) always covers demand after provisioning.
    EXPECT_GE(static_cast<double>(m.nodes_after) * 100.0, m.load_gb)
        << "cycle " << m.cycle;
  }
  // The staircase never wildly over-provisions on this steady workload.
  EXPECT_LE(result.final_nodes, 10);
}

TEST(RunnerIntegrationTest, EagerStaircaseUsesFewerSteps) {
  ModisWorkload modis;
  std::map<int, int> scaleouts;
  for (const int p : {1, 6}) {
    RunnerConfig cfg = BaseConfig(core::PartitionerKind::kConsistentHash);
    cfg.policy = ScaleOutPolicy::kStaircase;
    cfg.staircase_plan_ahead = p;
    cfg.max_nodes = 64;
    cfg.run_queries = false;
    WorkloadRunner runner(cfg);
    int count = 0;
    for (const auto& m : runner.Run(modis).cycles) {
      if (m.nodes_after > m.nodes_before) ++count;
    }
    scaleouts[p] = count;
  }
  EXPECT_LT(scaleouts[6], scaleouts[1])
      << "eager provisioning must reorganize less often";
}

TEST(RunnerIntegrationTest, DisablingQueriesZeroesBenchmarkTime) {
  ModisWorkload modis;
  RunnerConfig cfg = BaseConfig(core::PartitionerKind::kConsistentHash);
  cfg.run_queries = false;
  WorkloadRunner runner(cfg);
  const auto result = runner.Run(modis);
  EXPECT_DOUBLE_EQ(result.total_spj_minutes, 0.0);
  EXPECT_DOUBLE_EQ(result.total_science_minutes, 0.0);
  EXPECT_GT(result.total_insert_minutes, 0.0);
}

TEST(RunnerIntegrationTest, ResultsAreDeterministic) {
  AisWorkload ais;
  WorkloadRunner runner(BaseConfig(core::PartitionerKind::kHilbertCurve));
  const auto a = runner.Run(ais);
  const auto b = runner.Run(ais);
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  EXPECT_DOUBLE_EQ(a.cost_node_hours, b.cost_node_hours);
  EXPECT_DOUBLE_EQ(a.mean_rsd, b.mean_rsd);
  for (size_t i = 0; i < a.cycles.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cycles[i].spj_minutes, b.cycles[i].spj_minutes);
  }
}

}  // namespace
}  // namespace arraydb::workload
