// Unit tests for the distributed query timing model: makespan, halo
// exchange, and the balance/clustering effects the paper's evaluation
// depends on.

#include <gtest/gtest.h>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "exec/engine.h"
#include "util/units.h"

namespace arraydb::exec {
namespace {

using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::Coordinates;
using array::DimensionDesc;

ArraySchema GridSchema() {
  return ArraySchema("g",
                     {DimensionDesc{"x", 0, 7, 1, false},
                      DimensionDesc{"y", 0, 7, 1, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
}

int64_t Gb(double gb) { return static_cast<int64_t>(gb * util::kGiB); }

QuerySpec ScanAll() {
  QuerySpec q;
  q.name = "scan";
  q.kind = QueryKind::kFilter;
  q.region = ChunkRegion::All(2);
  q.cpu_min_per_gb = 0.1;
  return q;
}

TEST(QueryEngineTest, EmptyClusterCostsOnlyStartup) {
  cluster::Cluster cluster(2, 100.0);
  QueryEngine engine;
  const auto cost = engine.Simulate(ScanAll(), cluster, GridSchema());
  EXPECT_DOUBLE_EQ(cost.minutes, engine.params().startup_minutes);
  EXPECT_EQ(cost.chunks_touched, 0);
}

TEST(QueryEngineTest, BalancedPlacementBeatsConcentrated) {
  const ArraySchema schema = GridSchema();
  QueryEngine engine;
  // Concentrated: all 8 chunks on node 0.
  cluster::Cluster conc(4, 100.0);
  // Balanced: 2 chunks per node.
  cluster::Cluster bal(4, 100.0);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(conc.PlaceChunk({i, 0}, Gb(1.0), 0).ok());
    ASSERT_TRUE(bal.PlaceChunk({i, 0}, Gb(1.0),
                               static_cast<cluster::NodeId>(i % 4))
                    .ok());
  }
  const auto c = engine.Simulate(ScanAll(), conc, schema);
  const auto b = engine.Simulate(ScanAll(), bal, schema);
  EXPECT_NEAR(c.makespan_minutes, b.makespan_minutes * 4.0, 1e-9)
      << "makespan must reflect parallelism";
  EXPECT_DOUBLE_EQ(c.scanned_gb, b.scanned_gb);
}

TEST(QueryEngineTest, RegionRestrictsScan) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(2, 100.0);
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      ASSERT_TRUE(cluster
                      .PlaceChunk({x, y}, Gb(0.1),
                                  static_cast<cluster::NodeId>((x + y) % 2))
                      .ok());
    }
  }
  QuerySpec q = ScanAll();
  q.region.lo = {0, 0};
  q.region.hi = {1, 1};  // 4 of 64 chunks.
  QueryEngine engine;
  const auto cost = engine.Simulate(q, cluster, schema);
  EXPECT_EQ(cost.chunks_touched, 4);
  EXPECT_NEAR(cost.scanned_gb, 0.4, 1e-6);
}

TEST(QueryEngineTest, DimJoinReadsBothInputs) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(2, 100.0);
  ASSERT_TRUE(cluster.PlaceChunk({0, 0}, Gb(1.0), 0).ok());
  QueryEngine engine;
  QuerySpec scan = ScanAll();
  QuerySpec join = ScanAll();
  join.kind = QueryKind::kDimJoin;
  const auto s = engine.Simulate(scan, cluster, schema);
  const auto j = engine.Simulate(join, cluster, schema);
  EXPECT_NEAR(j.scanned_gb, 2.0 * s.scanned_gb, 1e-9);
  EXPECT_GT(j.makespan_minutes, s.makespan_minutes);
}

TEST(QueryEngineTest, WindowChargesRemoteNeighborsOnly) {
  const ArraySchema schema = GridSchema();
  QueryEngine engine;
  QuerySpec q = ScanAll();
  q.kind = QueryKind::kWindow;
  q.halo_fraction = 0.5;

  // Clustered: left half on node 0, right half on node 1 -> only the
  // 8-chunk seam is remote.
  cluster::Cluster clustered(2, 100.0);
  // Scattered: checkerboard -> every neighbor is remote.
  cluster::Cluster scattered(2, 100.0);
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      ASSERT_TRUE(clustered
                      .PlaceChunk({x, y}, Gb(0.1),
                                  static_cast<cluster::NodeId>(x < 4 ? 0 : 1))
                      .ok());
      ASSERT_TRUE(scattered
                      .PlaceChunk({x, y}, Gb(0.1),
                                  static_cast<cluster::NodeId>((x + y) % 2))
                      .ok());
    }
  }
  const auto c = engine.Simulate(q, clustered, schema);
  const auto s = engine.Simulate(q, scattered, schema);
  // Fetches are deduplicated per (reader node, neighbor chunk): the seam
  // costs 16 fetches when clustered; on the checkerboard every chunk is
  // pulled once by the opposite node (64 fetches).
  EXPECT_EQ(c.remote_neighbor_fetches, 16);
  EXPECT_EQ(s.remote_neighbor_fetches, 64);
  EXPECT_GT(s.minutes, c.minutes)
      << "scattering contiguous chunks must slow spatial queries";
}

TEST(QueryEngineTest, KnnPrefersClusteredPlacement) {
  const ArraySchema schema = GridSchema();
  QueryEngine engine;
  QuerySpec q = ScanAll();
  q.kind = QueryKind::kKnn;
  q.knn_samples = 32;
  q.halo_fraction = 0.3;
  q.seed = 5;

  cluster::Cluster clustered(2, 100.0);
  cluster::Cluster scattered(2, 100.0);
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      ASSERT_TRUE(clustered
                      .PlaceChunk({x, y}, Gb(0.1),
                                  static_cast<cluster::NodeId>(x < 4 ? 0 : 1))
                      .ok());
      ASSERT_TRUE(scattered
                      .PlaceChunk({x, y}, Gb(0.1),
                                  static_cast<cluster::NodeId>((x + y) % 2))
                      .ok());
    }
  }
  const auto c = engine.Simulate(q, clustered, schema);
  const auto s = engine.Simulate(q, scattered, schema);
  EXPECT_LT(c.remote_neighbor_fetches, s.remote_neighbor_fetches);
  EXPECT_LT(c.minutes, s.minutes);
}

TEST(QueryEngineTest, KnnSamplingIsDeterministic) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(2, 100.0);
  for (int64_t x = 0; x < 8; ++x) {
    ASSERT_TRUE(cluster.PlaceChunk({x, 0}, Gb(0.2 + 0.1 * (x % 3)),
                                   static_cast<cluster::NodeId>(x % 2))
                    .ok());
  }
  QuerySpec q = ScanAll();
  q.kind = QueryKind::kKnn;
  q.seed = 11;
  QueryEngine engine;
  const auto a = engine.Simulate(q, cluster, schema);
  const auto b = engine.Simulate(q, cluster, schema);
  EXPECT_DOUBLE_EQ(a.minutes, b.minutes);
  EXPECT_EQ(a.remote_neighbor_fetches, b.remote_neighbor_fetches);
}

TEST(QueryEngineTest, SortPaysCoordinatorMerge) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(2, 100.0);
  ASSERT_TRUE(cluster.PlaceChunk({0, 0}, Gb(2.0), 0).ok());
  QueryEngine engine;
  QuerySpec scan = ScanAll();
  QuerySpec sort = ScanAll();
  sort.kind = QueryKind::kSortQuantile;
  sort.selectivity = 0.5;
  const auto sc = engine.Simulate(scan, cluster, schema);
  const auto so = engine.Simulate(sort, cluster, schema);
  EXPECT_GT(so.network_minutes, 0.0);
  EXPECT_GT(so.minutes, sc.minutes);
}

TEST(QueryEngineTest, KMeansIterationsMultiplyCpu) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(2, 100.0);
  ASSERT_TRUE(cluster.PlaceChunk({0, 0}, Gb(1.0), 0).ok());
  QueryEngine engine;
  QuerySpec one = ScanAll();
  one.kind = QueryKind::kKMeans;
  one.iterations = 1;
  QuerySpec ten = one;
  ten.iterations = 10;
  const auto c1 = engine.Simulate(one, cluster, schema);
  const auto c10 = engine.Simulate(ten, cluster, schema);
  EXPECT_GT(c10.minutes, c1.minutes * 3.0);
}

TEST(QueryEngineTest, AttrJoinBroadcastsSmallSide) {
  const ArraySchema schema = GridSchema();
  cluster::Cluster cluster(4, 100.0);
  ASSERT_TRUE(cluster.PlaceChunk({0, 0}, Gb(1.0), 0).ok());
  QueryEngine engine;
  QuerySpec q = ScanAll();
  q.kind = QueryKind::kAttrJoin;
  q.small_side_gb = 0.024;
  const auto cost = engine.Simulate(q, cluster, schema);
  EXPECT_NEAR(cost.network_minutes,
              0.024 * engine.params().net_min_per_gb, 1e-9);
}

}  // namespace
}  // namespace arraydb::exec
