// Unit tests for the reference operator implementations: real answers on
// small materialized arrays.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "array/array.h"
#include "exec/operators.h"
#include "util/rng.h"

namespace arraydb::exec {
namespace {

using array::Array;
using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::Coordinates;
using array::DimensionDesc;

// 2-D array with one double attribute on an 8x8 grid, 2x2 chunks.
Array MakeGridArray() {
  ArraySchema schema("g",
                     {DimensionDesc{"x", 0, 7, 2, false},
                      DimensionDesc{"y", 0, 7, 2, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(std::move(schema));
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      // v = 10x + y, every cell occupied.
      EXPECT_TRUE(
          a.InsertCell({x, y}, {static_cast<double>(10 * x + y)}).ok());
    }
  }
  return a;
}

TEST(FilterTest, BoxSelectsExactCells) {
  const Array a = MakeGridArray();
  CellBox box{{2, 3}, {4, 5}};
  const auto cells = FilterBox(a, box);
  EXPECT_EQ(cells.size(), 9u);  // 3 x 3 box.
  for (const auto& cell : cells) {
    EXPECT_GE(cell.pos[0], 2);
    EXPECT_LE(cell.pos[0], 4);
    EXPECT_GE(cell.pos[1], 3);
    EXPECT_LE(cell.pos[1], 5);
  }
  // Sorted by position; first is (2,3) with value 23.
  EXPECT_DOUBLE_EQ(cells[0].values[0], 23.0);
}

TEST(FilterTest, EmptyBoxYieldsNothing) {
  const Array a = MakeGridArray();
  CellBox outside{{20, 20}, {30, 30}};
  EXPECT_TRUE(FilterBox(a, outside).empty());
}

TEST(FilterTest, SpanViewMatchesMaterializedResult) {
  const Array a = MakeGridArray();
  CellBox box{{2, 3}, {4, 5}};
  const FilterBoxView view = FilterBoxSpans(a, box);
  EXPECT_EQ(view.num_cells(), 9);
  EXPECT_FALSE(view.empty());
  // The Cell adapter reproduces the legacy FilterBox result exactly.
  const auto materialized = view.Materialize();
  const auto legacy = FilterBox(a, box);
  ASSERT_EQ(materialized.size(), legacy.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(materialized[i].pos, legacy[i].pos);
    EXPECT_EQ(materialized[i].values, legacy[i].values);
  }
  // Span iteration reads columns without materializing Cells: the sum over
  // the view equals the sum over the value results.
  double view_sum = 0.0;
  view.ForEachCell([&view_sum](const array::Chunk& chunk, size_t i) {
    view_sum += chunk.attr_value(0, i);
  });
  double cell_sum = 0.0;
  for (const auto& cell : legacy) cell_sum += cell.values[0];
  EXPECT_DOUBLE_EQ(view_sum, cell_sum);
}

TEST(FilterTest, SpanViewCoalescesConsecutiveMatches) {
  // 1-D array, one chunk, cells 0..7 in insertion order; box [2,5] is one
  // contiguous run of four cells.
  ArraySchema schema("s", {DimensionDesc{"x", 0, 7, 8, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(std::move(schema));
  for (int64_t x = 0; x < 8; ++x) {
    ASSERT_TRUE(a.InsertCell({x}, {static_cast<double>(x)}).ok());
  }
  const FilterBoxView view = FilterBoxSpans(a, CellBox{{2}, {5}});
  ASSERT_EQ(view.chunks().size(), 1u);
  ASSERT_EQ(view.chunks()[0].spans.size(), 1u);
  EXPECT_EQ(view.chunks()[0].spans[0].first, 2u);
  EXPECT_EQ(view.chunks()[0].spans[0].second, 6u);
  EXPECT_EQ(view.num_cells(), 4);
}

TEST(FilterTest, SpanViewDropsFullyFilteredChunks) {
  const Array a = MakeGridArray();
  // Box covering a single cell: only that cell's chunk survives.
  const FilterBoxView view = FilterBoxSpans(a, CellBox{{0, 0}, {0, 0}});
  ASSERT_EQ(view.chunks().size(), 1u);
  EXPECT_EQ(view.num_cells(), 1);
  // Nothing matches: no chunk entries at all.
  EXPECT_TRUE(FilterBoxSpans(a, CellBox{{20, 20}, {30, 30}}).chunks().empty());
}

TEST(FilterTest, PrunesByChunk) {
  // Sparse array: only one chunk occupied; box over another chunk.
  ArraySchema schema("s", {DimensionDesc{"x", 0, 99, 10, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(std::move(schema));
  ASSERT_TRUE(a.InsertCell({5}, {1.0}).ok());
  EXPECT_TRUE(FilterBox(a, CellBox{{50}, {60}}).empty());
  EXPECT_EQ(FilterBox(a, CellBox{{0}, {9}}).size(), 1u);
}

TEST(QuantileTest, MedianOfKnownValues) {
  const Array a = MakeGridArray();  // Values 0..77, uniform-ish.
  const auto median = AttrQuantile(a, 0, 0.5);
  ASSERT_TRUE(median.ok());
  // Values are {10x+y}: sorted median of the 64 values is 38.5.
  EXPECT_NEAR(*median, 38.5, 1e-9);
  const auto min = AttrQuantile(a, 0, 0.0);
  EXPECT_DOUBLE_EQ(*min, 0.0);
  const auto max = AttrQuantile(a, 0, 1.0);
  EXPECT_DOUBLE_EQ(*max, 77.0);
}

TEST(QuantileTest, RejectsBadArguments) {
  const Array a = MakeGridArray();
  EXPECT_FALSE(AttrQuantile(a, 5, 0.5).ok());
  EXPECT_FALSE(AttrQuantile(a, 0, 1.5).ok());
  EXPECT_FALSE(AttrQuantile(a, -1, 0.5).ok());
}

TEST(QuantileTest, SelectionMatchesSortPathOnRandomData) {
  // Property: the nth_element selection path is bit-identical to the
  // retired materialize-and-sort path for any q — an order statistic is a
  // value property of the multiset, independent of how it is found. Random
  // values with deliberate duplicates stress tie handling.
  util::Rng rng(417);
  ArraySchema schema("q",
                     {DimensionDesc{"x", 0, 63, 4, false},
                      DimensionDesc{"y", 0, 63, 4, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(std::move(schema));
  std::vector<double> values;
  for (int i = 0; i < 700; ++i) {
    const auto x = static_cast<int64_t>(rng.NextBounded(64));
    const auto y = static_cast<int64_t>(rng.NextBounded(64));
    // Coarse value lattice: ~70 distinct values over 700 draws.
    const double v =
        static_cast<double>(rng.NextBounded(70)) / 7.0 - 5.0;
    if (a.InsertCell({x, y}, {v}).ok()) values.push_back(v);
  }
  ASSERT_GT(values.size(), 100u);
  std::sort(values.begin(), values.end());
  const auto sort_path = [&values](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  for (int i = 0; i <= 40; ++i) {
    const double q = static_cast<double>(i) / 40.0;  // Hits exact indices.
    const auto got = AttrQuantile(a, 0, q);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sort_path(q)) << "q=" << q;
  }
  for (int trial = 0; trial < 50; ++trial) {
    const double q =
        static_cast<double>(rng.NextBounded(1000000)) / 999999.0;
    const auto got = AttrQuantile(a, 0, q);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, sort_path(q)) << "q=" << q;
  }
}

TEST(DimJoinTest, CountsSharedPositions) {
  ArraySchema schema("a", {DimensionDesc{"x", 0, 9, 2, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(schema);
  Array b(schema);
  for (int64_t x = 0; x < 10; ++x) {
    ASSERT_TRUE(a.InsertCell({x}, {1.0}).ok());
  }
  for (int64_t x = 5; x < 10; ++x) {
    ASSERT_TRUE(b.InsertCell({x}, {2.0}).ok());
  }
  EXPECT_EQ(DimJoinCount(a, b), 5);
  EXPECT_EQ(DimJoinCount(b, a), 5);  // Symmetric.
}

TEST(DimJoinTest, DisjointArraysJoinEmpty) {
  ArraySchema schema("a", {DimensionDesc{"x", 0, 9, 2, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(schema);
  Array b(schema);
  ASSERT_TRUE(a.InsertCell({0}, {1.0}).ok());
  ASSERT_TRUE(b.InsertCell({9}, {1.0}).ok());
  EXPECT_EQ(DimJoinCount(a, b), 0);
}

TEST(AttrJoinTest, MatchesKeySet) {
  const Array a = MakeGridArray();
  // Keys are v values: 0, 10, 77 exist; 99 does not.
  EXPECT_EQ(AttrJoinCount(a, 0, {0, 10, 77, 99}), 3);
  EXPECT_EQ(AttrJoinCount(a, 0, {}), 0);
}

TEST(AttrJoinTest, FractionalValuesKeyByNearestInteger) {
  // The join key is llround(value): nearest integer, ties away from zero —
  // NOT truncation. -0.6 keys as -1 (truncation would give 0), 2.5 as 3.
  ArraySchema schema("f", {DimensionDesc{"x", 0, 7, 4, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(std::move(schema));
  const std::vector<double> values = {-1.5, -0.6, -0.4, 0.4, 0.6, 2.5};
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_TRUE(
        a.InsertCell({static_cast<int64_t>(i)}, {values[i]}).ok());
  }
  EXPECT_EQ(AttrJoinCount(a, 0, {-2}), 1);  // -1.5 rounds away from zero.
  EXPECT_EQ(AttrJoinCount(a, 0, {-1}), 1);  // -0.6.
  EXPECT_EQ(AttrJoinCount(a, 0, {0}), 2);   // -0.4 and 0.4.
  EXPECT_EQ(AttrJoinCount(a, 0, {1}), 1);   // 0.6.
  EXPECT_EQ(AttrJoinCount(a, 0, {3}), 1);   // 2.5 rounds away from zero.
  EXPECT_EQ(AttrJoinCount(a, 0, {2}), 0);   // Nothing truncates to 2.
}

TEST(GroupByTest, BinsSumCorrectly) {
  const Array a = MakeGridArray();
  // Bin 4x8: two bins along x (x in 0..3 and 4..7), one along y.
  const auto groups = GroupBySum(a, {4, 8}, 0);
  ASSERT_EQ(groups.size(), 2u);
  // Sum over x=0..3,y=0..7 of 10x+y: 32 cells, sum = 10*(0+1+2+3)*8 + 28*4.
  EXPECT_DOUBLE_EQ(groups.at({0, 0}), 10.0 * 6 * 8 + 28.0 * 4);
  EXPECT_DOUBLE_EQ(groups.at({4, 0}), 10.0 * 22 * 8 + 28.0 * 4);
}

TEST(WindowTest, AverageAtInteriorCell) {
  const Array a = MakeGridArray();
  // Radius-1 window around (3,3): 9 values 10x+y for x,y in 2..4.
  const auto avg = WindowAverageAt(a, 0, {3, 3}, 1);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 33.0, 1e-9);  // Mean of 10x+y over the box = 10*3+3.
}

TEST(WindowTest, EdgeCellsUseSmallerWindows) {
  const Array a = MakeGridArray();
  // Corner (0,0): window covers x,y in 0..1 -> mean of {0,1,10,11} = 5.5.
  const auto avg = WindowAverageAt(a, 0, {0, 0}, 1);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, 5.5, 1e-9);
}

TEST(WindowTest, RadiusZeroIsIdentity) {
  const Array a = MakeGridArray();
  const auto avg = WindowAverageAt(a, 0, {5, 2}, 0);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(*avg, 52.0);
}

TEST(WindowTest, AllCellsProducesSmoothField) {
  const Array a = MakeGridArray();
  const auto field = WindowAverageAll(a, 0, 1);
  EXPECT_EQ(field.size(), 64u);
  // Smoothing preserves the global mean for a linear field's interior but
  // shifts edges; just check order and sane range.
  for (const auto& [pos, value] : field) {
    EXPECT_GE(value, 0.0);
    EXPECT_LE(value, 77.0);
  }
}

TEST(KMeansTest, SeparatesObviousClusters) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 50; ++i) {
    points.push_back({0.0 + 0.01 * i, 0.0});
    points.push_back({100.0 + 0.01 * i, 0.0});
  }
  const auto result = KMeans(points, 2, 50, 7);
  ASSERT_EQ(result.centroids.size(), 2u);
  const double c0 = result.centroids[0][0];
  const double c1 = result.centroids[1][0];
  EXPECT_NEAR(std::min(c0, c1), 0.25, 0.5);
  EXPECT_NEAR(std::max(c0, c1), 100.25, 0.5);
  // Every point assigned to its nearby centroid -> small inertia.
  EXPECT_LT(result.inertia, 10.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({static_cast<double>(i % 7), static_cast<double>(i % 11)});
  }
  const auto a = KMeans(points, 3, 20, 42);
  const auto b = KMeans(points, 3, 20, 42);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, KEqualsPointsIsPerfect) {
  std::vector<std::vector<double>> points = {{0.0}, {10.0}, {20.0}};
  const auto result = KMeans(points, 3, 10, 1);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KnnTest, DenseClusterHasSmallDistances) {
  ArraySchema schema("k",
                     {DimensionDesc{"x", 0, 63, 4, false},
                      DimensionDesc{"y", 0, 63, 4, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array dense(schema);
  Array sparse(schema);
  // Dense: 8x8 block of adjacent cells. Sparse: every 8th cell.
  for (int64_t x = 0; x < 8; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      ASSERT_TRUE(dense.InsertCell({x, y}, {1.0}).ok());
      ASSERT_TRUE(sparse.InsertCell({x * 8, y * 8}, {1.0}).ok());
    }
  }
  const auto d_dense = KnnAverageDistance(dense, 4, 16, 3);
  const auto d_sparse = KnnAverageDistance(sparse, 4, 16, 3);
  ASSERT_TRUE(d_dense.ok());
  ASSERT_TRUE(d_sparse.ok());
  EXPECT_LT(*d_dense * 4.0, *d_sparse);
}

TEST(KnnTest, RejectsDegenerateInputs) {
  ArraySchema schema("k", {DimensionDesc{"x", 0, 9, 2, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(schema);
  ASSERT_TRUE(a.InsertCell({0}, {1.0}).ok());
  ASSERT_TRUE(a.InsertCell({1}, {1.0}).ok());
  EXPECT_FALSE(KnnAverageDistance(a, 5, 4, 1).ok());  // k >= cells.
  EXPECT_FALSE(KnnAverageDistance(a, 0, 4, 1).ok());
  EXPECT_FALSE(KnnAverageDistance(a, 1, 0, 1).ok());
}

TEST(RegridTest, CoarsensCountsAndSums) {
  const Array a = MakeGridArray();
  const auto coarse = Regrid(a, {4, 4}, 0);
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(coarse->total_cells(), 4);  // 8x8 -> 2x2.
  // Each coarse cell aggregates 16 fine cells.
  const auto cells = coarse->AllCells();
  double total_count = 0.0;
  for (const auto& cell : cells) total_count += cell.values[1];
  EXPECT_DOUBLE_EQ(total_count, 64.0);
}

TEST(RegridTest, RejectsBadFactors) {
  const Array a = MakeGridArray();
  EXPECT_FALSE(Regrid(a, {0, 4}, 0).ok());
  EXPECT_FALSE(Regrid(a, {4}, 0).ok());
  EXPECT_FALSE(Regrid(a, {4, 4}, 9).ok());
}

}  // namespace
}  // namespace arraydb::exec
