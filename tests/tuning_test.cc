// Unit tests for the staircase tuners (§5.2): Algorithm 1 what-if sampling
// and the Eq. 5-9 analytical scale-out cost model.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/tuning.h"
#include "util/rng.h"

namespace arraydb::core {
namespace {

TEST(SamplingTunerTest, LinearDemandMakesAllSamplesPerfect) {
  // Perfectly linear growth: every s predicts exactly; errors are all 0 and
  // ties break toward s = 1.
  std::vector<double> loads;
  for (int i = 0; i < 12; ++i) loads.push_back(10.0 * i);
  const auto errors = SamplingWhatIfErrors(loads, 4);
  for (const double e : errors) EXPECT_NEAR(e, 0.0, 1e-9);
  EXPECT_EQ(TuneSampleCount(loads, 4), 1);
}

TEST(SamplingTunerTest, NoisyDemandPrefersMoreSamples) {
  // Linear trend plus alternating noise: one-sample derivatives chase the
  // noise while longer windows average it out.
  std::vector<double> loads;
  double l = 0.0;
  for (int i = 0; i < 40; ++i) {
    l += 10.0 + ((i % 2 == 0) ? 6.0 : -6.0);
    loads.push_back(l);
  }
  const auto errors = SamplingWhatIfErrors(loads, 4);
  EXPECT_LT(errors[3], errors[0]) << "s=4 should beat s=1 on noisy demand";
  EXPECT_GT(TuneSampleCount(loads, 4), 1);
}

TEST(SamplingTunerTest, RegimeShiftsPreferFewSamples) {
  // Demand whose slope keeps changing (seasonal shipping): the freshest
  // sample tracks the regime better than long averages.
  std::vector<double> loads;
  double l = 0.0;
  for (int i = 0; i < 48; ++i) {
    // Slope ramps smoothly up and down with a long period.
    const double slope = 10.0 + 8.0 * std::sin(i * 0.5);
    l += slope;
    loads.push_back(l);
  }
  const auto errors = SamplingWhatIfErrors(loads, 4);
  EXPECT_LT(errors[0], errors[3]) << "s=1 should beat s=4 on shifting demand";
  EXPECT_EQ(TuneSampleCount(loads, 4), 1);
}

TEST(SamplingTunerTest, ShortHistoryYieldsInfiniteError) {
  const std::vector<double> loads = {1.0, 2.0};
  const auto errors = SamplingWhatIfErrors(loads, 4);
  // s=1 usable (barely), s>=2 impossible with 2 points.
  EXPECT_TRUE(std::isinf(errors[2]));
  EXPECT_TRUE(std::isinf(errors[3]));
}

TEST(SamplingTunerTest, TestErrorMatchesManualComputation) {
  const std::vector<double> loads = {0.0, 10.0, 30.0, 40.0};
  // s=1: i=1: est=10, obs=20 -> 10. i=2: est=20, obs=10 -> 10. mean=10.
  EXPECT_NEAR(SamplePredictionError(loads, 1), 10.0, 1e-9);
  // s=2: i=2: est=(30-0)/2=15, obs=10 -> 5. mean=5.
  EXPECT_NEAR(SamplePredictionError(loads, 2), 5.0, 1e-9);
}

ScaleOutCostModelParams ModisLikeParams() {
  ScaleOutCostModelParams p;
  p.l0_gb = 200.0;
  p.mu_gb = 45.0;
  p.capacity_gb = 100.0;
  p.n0 = 2;
  p.w0_minutes = 60.0;
  p.delta_io_min_per_gb = 0.12;
  p.t_net_min_per_gb = 0.25;
  p.horizon_m = 4;
  return p;
}

TEST(CostModelTunerTest, LoadProjectionIsLinear) {
  const auto cycles = ModelConfiguration(1, ModisLikeParams());
  ASSERT_EQ(cycles.size(), 4u);
  EXPECT_NEAR(cycles[0].load_gb, 245.0, 1e-9);  // Eq. 5.
  EXPECT_NEAR(cycles[3].load_gb, 380.0, 1e-9);
}

TEST(CostModelTunerTest, NodesGrowOnlyWhenOverCapacity) {
  const auto cycles = ModelConfiguration(0, ModisLikeParams());
  int prev = 2;
  for (const auto& c : cycles) {
    EXPECT_GE(c.nodes, prev);
    EXPECT_GE(static_cast<double>(c.nodes) * 100.0, c.load_gb);
    prev = c.nodes;
  }
}

TEST(CostModelTunerTest, EagerConfigProvisionsMoreNodes) {
  const auto lazy = ModelConfiguration(1, ModisLikeParams());
  const auto eager = ModelConfiguration(6, ModisLikeParams());
  EXPECT_GT(eager.back().nodes, lazy.back().nodes);
}

TEST(CostModelTunerTest, ReorgChargedOnlyAtExpansions) {
  const auto cycles = ModelConfiguration(3, ModisLikeParams());
  int prev = 2;
  for (const auto& c : cycles) {
    if (c.nodes == prev) {
      EXPECT_DOUBLE_EQ(c.reorg_minutes, 0.0);
    } else {
      EXPECT_GT(c.reorg_minutes, 0.0);
    }
    prev = c.nodes;
  }
}

TEST(CostModelTunerTest, QueryLatencyScalesWithLoadAndParallelism) {
  const auto cycles = ModelConfiguration(3, ModisLikeParams());
  // Eq. 8: w = w0 * (l/l0) * (N0/N). Check the first cycle by hand.
  const auto& c = cycles[0];
  const double expect =
      60.0 * (c.load_gb / 200.0) * (2.0 / static_cast<double>(c.nodes));
  EXPECT_NEAR(c.query_minutes, expect, 1e-9);
}

TEST(CostModelTunerTest, CostIsPositiveAndFinite) {
  for (const int p : {0, 1, 3, 6, 10}) {
    const double cost = EstimateConfigCostNodeHours(p, ModisLikeParams());
    EXPECT_GT(cost, 0.0);
    EXPECT_TRUE(std::isfinite(cost));
  }
}

TEST(CostModelTunerTest, ExtremeEagernessCostsMore) {
  // Vastly over-provisioning must never be the cheapest option: node-hours
  // scale with the idle node count.
  const auto params = ModisLikeParams();
  const double moderate = EstimateConfigCostNodeHours(3, params);
  const double extreme = EstimateConfigCostNodeHours(50, params);
  EXPECT_GT(extreme, moderate);
}

TEST(CostModelTunerTest, TunePlanAheadPicksArgmin) {
  const auto params = ModisLikeParams();
  const int best = TunePlanAhead({1, 3, 6}, params);
  double best_cost = EstimateConfigCostNodeHours(best, params);
  for (const int p : {1, 3, 6}) {
    EXPECT_LE(best_cost, EstimateConfigCostNodeHours(p, params) + 1e-12);
  }
}

}  // namespace
}  // namespace arraydb::core
