// Unit tests for the SIMD scan kernels: every kernel against a naive
// reference over randomized shapes (ranks 1..8, ragged tails), and the AVX2
// variant against the scalar variant bit-for-bit under forced dispatch.
// AVX2 legs skip on machines (or builds) without AVX2.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simd/dispatch.h"
#include "simd/scan_kernels.h"
#include "util/rng.h"

namespace arraydb::simd {
namespace {

bool Avx2Usable() {
  const ScopedDispatch probe(DispatchLevel::kAvx2);
  return probe.ok();
}

// -- Dispatch API ----------------------------------------------------------

TEST(DispatchTest, ScalarAlwaysForcible) {
  const ScopedDispatch forced(DispatchLevel::kScalar);
  EXPECT_TRUE(forced.ok());
  EXPECT_EQ(ActiveLevel(), DispatchLevel::kScalar);
}

TEST(DispatchTest, ClearRestoresDetectedLevel) {
  {
    const ScopedDispatch forced(DispatchLevel::kScalar);
    ASSERT_TRUE(forced.ok());
  }
  EXPECT_EQ(ActiveLevel(), DetectedLevel());
}

TEST(DispatchTest, Avx2ForcibleExactlyWhenUsable) {
  const bool forced = ForceDispatch(DispatchLevel::kAvx2);
  ClearDispatchOverride();
  if (!CompiledWithAvx2()) {
    EXPECT_FALSE(forced);  // Force-scalar / non-x86 build: must refuse.
  }
  if (forced) {
    EXPECT_TRUE(CompiledWithAvx2());
  }
}

TEST(DispatchTest, ScopedOverridesNestAndRestore) {
  const ScopedDispatch outer(DispatchLevel::kScalar);
  ASSERT_TRUE(outer.ok());
  {
    // Inner probe (as Avx2Usable() does) must not drop the outer force.
    const ScopedDispatch inner(DispatchLevel::kAvx2);
    (void)inner;
  }
  EXPECT_EQ(ActiveLevel(), DispatchLevel::kScalar);
}

TEST(DispatchTest, ToStringNames) {
  EXPECT_STREQ(ToString(DispatchLevel::kScalar), "scalar");
  EXPECT_STREQ(ToString(DispatchLevel::kAvx2), "avx2");
}

// -- References ------------------------------------------------------------

void ReferenceRangeMask(const std::vector<int64_t>& coords, size_t ndims,
                        const std::vector<int64_t>& lo,
                        const std::vector<int64_t>& hi,
                        std::vector<uint8_t>* out) {
  const size_t count = coords.size() / ndims;
  out->assign(count, 0);
  for (size_t i = 0; i < count; ++i) {
    bool inside = true;
    for (size_t d = 0; d < ndims; ++d) {
      const int64_t v = coords[i * ndims + d];
      if (v < lo[d] || v > hi[d]) inside = false;
    }
    (*out)[i] = inside ? 1 : 0;
  }
}

struct RandomBoxes {
  BBoxSoA soa;
  std::vector<std::vector<int64_t>> lo;  // Box-major, for the reference.
  std::vector<std::vector<int64_t>> hi;
};

RandomBoxes MakeRandomBoxes(size_t count, size_t ndims, util::Rng& rng) {
  RandomBoxes boxes;
  boxes.soa.Resize(count, ndims);
  boxes.lo.resize(count);
  boxes.hi.resize(count);
  for (size_t c = 0; c < count; ++c) {
    for (size_t d = 0; d < ndims; ++d) {
      const auto a = static_cast<int64_t>(rng.NextBounded(100)) - 50;
      const auto b = a + static_cast<int64_t>(rng.NextBounded(20));
      boxes.lo[c].push_back(a);
      boxes.hi[c].push_back(b);
      boxes.soa.lo[d * count + c] = a;
      boxes.soa.hi[d * count + c] = b;
    }
  }
  return boxes;
}

// -- RangeMask -------------------------------------------------------------

TEST(RangeMaskTest, MatchesReferenceAcrossRanksAndTails) {
  util::Rng rng(11);
  // Ranks 9-10 exercise the >8-dim scalar fallback inside the AVX2 variant.
  for (size_t ndims = 1; ndims <= 10; ++ndims) {
    for (const size_t count : {size_t{0}, size_t{1}, size_t{3}, size_t{4},
                               size_t{7}, size_t{64}, size_t{1001}}) {
      std::vector<int64_t> coords(count * ndims);
      for (auto& v : coords) {
        v = static_cast<int64_t>(rng.NextBounded(40)) - 20;
      }
      std::vector<int64_t> lo(ndims), hi(ndims);
      for (size_t d = 0; d < ndims; ++d) {
        lo[d] = static_cast<int64_t>(rng.NextBounded(30)) - 20;
        hi[d] = lo[d] + static_cast<int64_t>(rng.NextBounded(25));
      }
      std::vector<uint8_t> want;
      ReferenceRangeMask(coords, ndims, lo, hi, &want);
      std::vector<uint8_t> got(count, 255);
      RangeMask(coords.data(), count, ndims, lo.data(), hi.data(),
                got.data());
      EXPECT_EQ(got, want) << "ndims=" << ndims << " count=" << count;
    }
  }
}

TEST(RangeMaskTest, Avx2MatchesScalarBitwise) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  util::Rng rng(17);
  for (size_t ndims = 1; ndims <= 8; ++ndims) {
    const size_t count = 513;  // Ragged against every period length.
    std::vector<int64_t> coords(count * ndims);
    for (auto& v : coords) v = static_cast<int64_t>(rng.NextBounded(16));
    std::vector<int64_t> lo(ndims, 3), hi(ndims, 11);
    std::vector<uint8_t> scalar_mask(count), avx2_mask(count);
    {
      const ScopedDispatch forced(DispatchLevel::kScalar);
      RangeMask(coords.data(), count, ndims, lo.data(), hi.data(),
                scalar_mask.data());
    }
    {
      const ScopedDispatch forced(DispatchLevel::kAvx2);
      RangeMask(coords.data(), count, ndims, lo.data(), hi.data(),
                avx2_mask.data());
    }
    EXPECT_EQ(scalar_mask, avx2_mask) << "ndims=" << ndims;
  }
}

TEST(RangeMaskTest, ExtremeBoundsAndNegativeCoords) {
  const std::vector<int64_t> coords = {INT64_MIN, -1, 0, 1, INT64_MAX};
  const std::vector<int64_t> lo = {INT64_MIN};
  const std::vector<int64_t> hi = {0};
  std::vector<uint8_t> got(5);
  RangeMask(coords.data(), 5, 1, lo.data(), hi.data(), got.data());
  EXPECT_EQ(got, (std::vector<uint8_t>{1, 1, 1, 0, 0}));
}

// -- Reductions ------------------------------------------------------------

TEST(ReductionTest, SumMatchesLaneSplitContract) {
  util::Rng rng(5);
  for (const size_t n :
       {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
        size_t{8}, size_t{127}, size_t{1024}}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.NextUniform(-100.0, 100.0);
    // The documented contract, computed independently.
    double acc[4] = {0.0, 0.0, 0.0, 0.0};
    const size_t n4 = n - n % 4;
    for (size_t i = 0; i < n4; i += 4) {
      for (size_t l = 0; l < 4; ++l) acc[l] += v[i + l];
    }
    double want = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for (size_t i = n4; i < n; ++i) want += v[i];
    EXPECT_EQ(Sum(v.data(), n), want) << "n=" << n;
  }
}

TEST(ReductionTest, DispatchVariantsBitIdentical) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  util::Rng rng(23);
  for (const size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4},
                         size_t{5}, size_t{63}, size_t{64}, size_t{1000}}) {
    std::vector<double> v(n);
    for (auto& x : v) x = rng.NextUniform(-1e6, 1e6);
    double scalar_sum, scalar_min, scalar_max;
    {
      const ScopedDispatch forced(DispatchLevel::kScalar);
      scalar_sum = Sum(v.data(), n);
      scalar_min = Min(v.data(), n);
      scalar_max = Max(v.data(), n);
    }
    const ScopedDispatch forced(DispatchLevel::kAvx2);
    EXPECT_EQ(Sum(v.data(), n), scalar_sum) << "n=" << n;
    EXPECT_EQ(Min(v.data(), n), scalar_min) << "n=" << n;
    EXPECT_EQ(Max(v.data(), n), scalar_max) << "n=" << n;
  }
}

TEST(ReductionTest, MinMaxMatchStdMinmax) {
  util::Rng rng(31);
  std::vector<double> v(501);
  for (auto& x : v) x = rng.NextUniform(-50.0, 50.0);
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  EXPECT_EQ(Min(v.data(), v.size()), *mn);
  EXPECT_EQ(Max(v.data(), v.size()), *mx);
}

// -- Mask utilities --------------------------------------------------------

TEST(MaskTest, CountAndSpans) {
  const std::vector<uint8_t> mask = {0, 1, 1, 0, 1, 0, 0, 1, 1, 1};
  EXPECT_EQ(MaskCount(mask.data(), mask.size()), 6);
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  MaskToSpans(mask.data(), mask.size(), &spans);
  const std::vector<std::pair<uint32_t, uint32_t>> want = {
      {1, 3}, {4, 5}, {7, 10}};
  EXPECT_EQ(spans, want);
}

TEST(MaskTest, EmptyAndFullMasks) {
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  MaskToSpans(nullptr, 0, &spans);
  EXPECT_TRUE(spans.empty());
  const std::vector<uint8_t> full(17, 1);
  MaskToSpans(full.data(), full.size(), &spans);
  EXPECT_EQ(spans,
            (std::vector<std::pair<uint32_t, uint32_t>>{{0, 17}}));
  EXPECT_EQ(MaskCount(full.data(), full.size()), 17);
}

// -- BBoxIntersectMask -----------------------------------------------------

TEST(BBoxIntersectTest, MatchesPerBoxReference) {
  util::Rng rng(47);
  for (size_t ndims = 1; ndims <= 6; ++ndims) {
    for (const size_t count :
         {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{257}}) {
      const RandomBoxes boxes = MakeRandomBoxes(count, ndims, rng);
      std::vector<int64_t> qlo(ndims), qhi(ndims);
      for (size_t d = 0; d < ndims; ++d) {
        qlo[d] = static_cast<int64_t>(rng.NextBounded(80)) - 40;
        qhi[d] = qlo[d] + static_cast<int64_t>(rng.NextBounded(40));
      }
      std::vector<uint8_t> got(count, 255);
      BBoxIntersectMask(boxes.soa, qlo.data(), qhi.data(), got.data());
      for (size_t c = 0; c < count; ++c) {
        bool want = true;
        for (size_t d = 0; d < ndims; ++d) {
          want &= qhi[d] >= boxes.lo[c][d] && qlo[d] <= boxes.hi[c][d];
        }
        EXPECT_EQ(got[c], want ? 1 : 0)
            << "ndims=" << ndims << " count=" << count << " box=" << c;
      }
    }
  }
}

TEST(BBoxIntersectTest, Avx2MatchesScalarBitwise) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  util::Rng rng(53);
  const RandomBoxes boxes = MakeRandomBoxes(123, 3, rng);
  const std::vector<int64_t> qlo = {-10, -10, -10};
  const std::vector<int64_t> qhi = {10, 10, 10};
  std::vector<uint8_t> scalar_mask(123), avx2_mask(123);
  {
    const ScopedDispatch forced(DispatchLevel::kScalar);
    BBoxIntersectMask(boxes.soa, qlo.data(), qhi.data(), scalar_mask.data());
  }
  {
    const ScopedDispatch forced(DispatchLevel::kAvx2);
    BBoxIntersectMask(boxes.soa, qlo.data(), qhi.data(), avx2_mask.data());
  }
  EXPECT_EQ(scalar_mask, avx2_mask);
}

}  // namespace
}  // namespace arraydb::simd
