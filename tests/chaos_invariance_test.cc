// Chaos invariance sweep (ISSUE PR 10, satellite 3): seeds × thread counts ×
// fault mixes, checking the robustness contracts under every schedule:
//   * queries issued mid-fault through the dual-residency view are
//     bit-identical to a quiesced (pre-reorg) cluster,
//   * Abort restores the exact pre-reorg placement,
//   * the whole fault trajectory — retries, backoff, aborts, replans,
//     telemetry counters included — is invariant under copy thread count
//     and replays identically for the same seed.
// Runs under TSan in CI alongside the other invariance suites.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "exec/engine.h"
#include "fault/fault.h"
#include "reorg/reorg_engine.h"
#include "telemetry/telemetry.h"
#include "util/strings.h"
#include "util/units.h"
#include "workload/ais.h"
#include "workload/runner.h"

namespace arraydb::reorg {
namespace {

using cluster::ChunkMove;
using cluster::Cluster;
using cluster::CostModel;
using cluster::MovePlan;
using cluster::NodeId;
using fault::FaultPlan;

constexpr int64_t kMiB = 1024 * 1024;

struct FaultMix {
  double transient_rate = 0.0;
  double slow_rate = 0.0;
};

// The sweep's grid. Three mixes: retry-heavy, dilation-heavy, and both.
const FaultMix kMixes[] = {{0.3, 0.0}, {0.0, 0.4}, {0.25, 0.25}};
const uint64_t kSeeds[] = {1, 2, 3};
const int kThreadCounts[] = {1, 4};

// 2 nodes, 12 chunks of 64 MiB on node 0, 2 new nodes; the plan splits
// chunks {6..11} across both new nodes.
struct ChaosFixture {
  Cluster cluster{2, 1.0};
  NodeId first_new = cluster::kInvalidNode;
  MovePlan plan;

  ChaosFixture() {
    for (int64_t i = 0; i < 12; ++i) {
      EXPECT_TRUE(cluster.PlaceChunk({i}, 64 * kMiB, 0).ok());
    }
    first_new = cluster.AddNodes(2);
    for (int64_t i = 6; i < 12; ++i) {
      plan.Add(ChunkMove{{i}, 64 * kMiB, 0, i % 2 == 0 ? 2 : 3});
    }
  }
};

std::string PlacementString(const Cluster& cluster) {
  std::string out;
  for (const auto& c : cluster.AllChunks()) {
    for (const int64_t v : c.coords) {
      out += util::StrFormat("%lld,", static_cast<long long>(v));
    }
    out += util::StrFormat("@%d:%lld;", c.node,
                           static_cast<long long>(c.bytes));
  }
  return out;
}

// Queries through the mid-reorg view must price identically to the quiesced
// pre-reorg cluster (the dual-residency view pins reads to the retained
// source replicas).
void ExpectQueriesMatchQuiesced(const IncrementalReorgEngine& engine,
                                const Cluster& quiesced) {
  exec::QueryEngine qe;
  array::ArraySchema schema("s", {array::DimensionDesc{"x", 0, 11, 1, false}},
                            {array::AttributeDesc{
                                "v", array::AttrType::kDouble}});
  for (const auto kind : {exec::QueryKind::kFilter, exec::QueryKind::kWindow,
                          exec::QueryKind::kGroupBy}) {
    exec::QuerySpec spec;
    spec.kind = kind;
    spec.region = exec::ChunkRegion::All(1);
    const auto a = qe.Simulate(spec, engine.View(), schema);
    const auto b = qe.Simulate(spec, quiesced, schema);
    ASSERT_EQ(a.minutes, b.minutes);
    ASSERT_EQ(a.makespan_minutes, b.makespan_minutes);
    ASSERT_EQ(a.network_minutes, b.network_minutes);
    ASSERT_EQ(a.scanned_gb, b.scanned_gb);
    ASSERT_EQ(a.chunks_touched, b.chunks_touched);
    ASSERT_EQ(a.remote_neighbor_fetches, b.remote_neighbor_fetches);
  }
}

// Plays one chaos schedule to completion: Step until the plan drains,
// recovering from retry exhaustion the way the workload runner does (Abort,
// verify the exact pre-reorg restore, restage under a fresh ordinal).
// Returns a full trajectory transcript — every Step outcome, clock reading,
// and summary counter — which must be bit-identical across thread counts.
std::string RunChaosSchedule(uint64_t seed, const FaultMix& mix, int threads,
                             bool check_queries) {
  ChaosFixture f;
  const std::string pre_reorg = PlacementString(f.cluster);
  Cluster quiesced{2, 1.0};
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(quiesced.PlaceChunk({i}, 64 * kMiB, 0).ok());
  }
  quiesced.AddNodes(2);

  CostModel model;
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_failure_rate = mix.transient_rate;
  plan.slow_copy_rate = mix.slow_rate;
  plan.slow_copy_dilation = 3.0;
  const fault::FaultInjector injector(plan);
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(128.0 * kMiB);
  opts.copy_threads = threads;
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  EXPECT_TRUE(engine.Begin(f.plan, f.first_new).ok());

  std::string transcript;
  int restarts = 0;
  while (engine.active() && engine.pending_chunks() > 0) {
    const auto step = engine.Step();
    if (step.ok()) {
      transcript += util::StrFormat(
          "step i=%d attempts=%d transient=%lld slow=%lld timeouts=%d "
          "backoff=%.6f extra=%.9f digest=%llx;",
          step->index, step->attempts,
          static_cast<long long>(step->transient_failures),
          static_cast<long long>(step->slow_copies), step->timeouts,
          step->backoff_ms, step->fault_extra_minutes,
          static_cast<unsigned long long>(step->transfer_digest));
    } else {
      transcript +=
          util::StrFormat("fail \"%s\";", step.status().message().c_str());
      EXPECT_TRUE(engine.Abort().ok());
      // The abort contract: the exact pre-reorg placement, byte for byte.
      EXPECT_EQ(PlacementString(f.cluster), pre_reorg);
      if (restarts >= 50) {
        ADD_FAILURE() << "chaos schedule failed to converge";
        break;
      }
      restarts += 1;
      EXPECT_TRUE(engine.Begin(f.plan, f.first_new).ok());
    }
    if (check_queries && engine.active()) {
      ExpectQueriesMatchQuiesced(engine, quiesced);
    }
    transcript += util::StrFormat("clock=%.9f;", engine.virtual_minutes());
  }
  EXPECT_TRUE(engine.Finish().ok());

  const auto& s = engine.summary();
  transcript += util::StrFormat(
      "summary inc=%d faults=%lld transient=%lld slow=%lld retries=%lld "
      "timeouts=%lld backoff=%.6f retry_gb=%.9f recovery=%.9f digest=%llx "
      "restarts=%d;",
      s.increments, static_cast<long long>(s.faults_injected),
      static_cast<long long>(s.transient_failures),
      static_cast<long long>(s.slow_copies), static_cast<long long>(s.retries),
      static_cast<long long>(s.timeouts), s.backoff_ms, s.retry_gb,
      s.recovery_overhead_minutes,
      static_cast<unsigned long long>(s.transfer_digest), restarts);
  transcript += "final=" + PlacementString(f.cluster);
  return transcript;
}

TEST(ChaosInvarianceTest, SweepIsThreadCountInvariantAndQueriesStayQuiesced) {
  for (const uint64_t seed : kSeeds) {
    for (const auto& mix : kMixes) {
      std::vector<std::string> transcripts;
      for (const int threads : kThreadCounts) {
        // Query equivalence is checked on the single-thread leg (it is
        // per-step and slow); the transcript comparison then pins every
        // other leg to that one.
        transcripts.push_back(
            RunChaosSchedule(seed, mix, threads, threads == 1));
      }
      for (size_t i = 1; i < transcripts.size(); ++i) {
        EXPECT_EQ(transcripts[0], transcripts[i])
            << "seed " << seed << " mix (" << mix.transient_rate << ", "
            << mix.slow_rate << ") diverged at " << kThreadCounts[i]
            << " threads";
      }
      // Faults actually fired (the sweep is not vacuously green).
      EXPECT_NE(transcripts[0].find("summary"), std::string::npos);
    }
  }
}

TEST(ChaosInvarianceTest, SameSeedReplaysIdenticalTelemetryTrajectory) {
  // The wall-clock histograms (util.thread_pool.*_us) are observe-only and
  // machine-dependent, so the replay contract is over the fault/recovery
  // counters: every one of them must land on identical values when the same
  // seed replays.
  const char* kFaultCounters[] = {
      "reorg.engine.faults_injected", "reorg.engine.transient_failures",
      "reorg.engine.slow_copies",     "reorg.engine.retries",
      "reorg.engine.backoff_ms",      "reorg.engine.timeouts",
      "reorg.engine.retry_exhausted", "reorg.engine.node_deaths",
      "reorg.engine.replans",         "reorg.engine.replanned_chunks",
      "reorg.engine.aborts"};
  auto& registry = telemetry::Registry::Global();
  std::vector<std::string> trajectories;
  for (int run = 0; run < 2; ++run) {
    registry.ResetValues();
    RunChaosSchedule(7, {0.25, 0.25}, 2, false);
    std::string traj;
    for (const char* name : kFaultCounters) {
      traj += util::StrFormat(
          "%s=%lld;", name,
          static_cast<long long>(registry.counter(name).Value()));
    }
    trajectories.push_back(traj);
  }
  EXPECT_EQ(trajectories[0], trajectories[1]);
  // The trajectory recorded real fault activity.
  EXPECT_GT(registry.counter("reorg.engine.faults_injected").Value(), 0);
  EXPECT_GT(registry.counter("reorg.engine.retries").Value(), 0);
}

TEST(ChaosInvarianceTest, NodeDeathReplanKeepsTheSweepInvariant) {
  FaultMix mix{0.1, 0.1};
  for (const uint64_t seed : kSeeds) {
    std::vector<std::string> transcripts;
    for (const int threads : kThreadCounts) {
      ChaosFixture f;
      CostModel model;
      FaultPlan plan;
      plan.seed = seed;
      plan.transient_failure_rate = mix.transient_rate;
      plan.slow_copy_rate = mix.slow_rate;
      plan.node_deaths.push_back({0.6, 3});
      const fault::FaultInjector injector(plan);
      ReorgOptions opts;
      opts.increment_gb = util::BytesToGb(128.0 * kMiB);
      opts.copy_threads = threads;
      opts.injector = &injector;
      IncrementalReorgEngine engine(&f.cluster, &model, opts);
      ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
      int restarts = 0;
      while (engine.active() && engine.pending_chunks() > 0) {
        const auto step = engine.Step();
        if (!step.ok()) {
          ASSERT_TRUE(engine.Abort().ok());
          ASSERT_LT(restarts, 50);
          restarts += 1;
          ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
        }
      }
      ASSERT_TRUE(engine.Finish().ok());
      // Node 3 died mid-plan: every move landed on the surviving new node.
      for (int64_t i = 6; i < 12; ++i) {
        EXPECT_EQ(f.cluster.OwnerOf({i}), 2) << "seed " << seed;
      }
      EXPECT_GE(engine.summary().replans, 1);
      EXPECT_TRUE(engine.summary().only_to_new_nodes);
      transcripts.push_back(
          PlacementString(f.cluster) +
          util::StrFormat("|replans=%lld deaths=%lld restarts=%d",
                          static_cast<long long>(engine.summary().replans),
                          static_cast<long long>(
                              engine.summary().node_deaths),
                          restarts));
    }
    EXPECT_EQ(transcripts[0], transcripts[1]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace arraydb::reorg

namespace arraydb::workload {
namespace {

RunnerConfig ChaosBase() {
  RunnerConfig cfg;
  cfg.partitioner = core::PartitionerKind::kConsistentHash;
  cfg.policy = ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  cfg.reorg.mode = ReorgMode::kOverlapped;
  return cfg;
}

// Slow-copy chaos never fails an increment, so the placement trajectory is
// untouched and every query result must stay bit-identical to the
// fault-free run — mid-fault queries route through the dual-residency view
// exactly as before.
TEST(RunnerChaosTest, SlowCopyFaultsLeaveQueryResultsBitIdentical) {
  AisWorkload ais;
  const auto clean = WorkloadRunner(ChaosBase()).Run(ais);

  RunnerConfig cfg = ChaosBase();
  cfg.fault.enabled = true;
  cfg.fault.plan.seed = 11;
  cfg.fault.plan.slow_copy_rate = 0.4;
  cfg.fault.plan.slow_copy_dilation = 2.5;
  const auto faulted = WorkloadRunner(cfg).Run(ais);

  ASSERT_EQ(faulted.cycles.size(), clean.cycles.size());
  EXPECT_EQ(faulted.final_nodes, clean.final_nodes);
  EXPECT_GT(faulted.total_faults_injected, 0);
  EXPECT_GT(faulted.total_recovery_overhead_minutes, 0.0);
  EXPECT_EQ(faulted.total_reorg_aborts, 0);
  // Dilation slows migration; it must never change what queries compute.
  for (size_t c = 0; c < clean.cycles.size(); ++c) {
    ASSERT_EQ(faulted.cycles[c].query_minutes.size(),
              clean.cycles[c].query_minutes.size());
    for (size_t q = 0; q < clean.cycles[c].query_minutes.size(); ++q) {
      EXPECT_EQ(faulted.cycles[c].query_minutes[q].first,
                clean.cycles[c].query_minutes[q].first);
      EXPECT_EQ(faulted.cycles[c].query_minutes[q].second,
                clean.cycles[c].query_minutes[q].second)
          << "cycle " << c << " query "
          << clean.cycles[c].query_minutes[q].first;
    }
    EXPECT_EQ(faulted.cycles[c].rsd, clean.cycles[c].rsd) << "cycle " << c;
  }
  // The overhead is visible in the recovery metrics, not hidden in the
  // fault-free accounting.
  EXPECT_GT(faulted.total_reorg_minutes, clean.total_reorg_minutes);
}

// A hostile mix (retry exhaustion near-certain on wide slices) exercises the
// abort → restage → abandon path end to end: the run must complete, serve
// every query, and replay deterministically.
TEST(RunnerChaosTest, HostileMixDegradesGracefullyAndReplays) {
  AisWorkload ais;
  RunnerConfig cfg = ChaosBase();
  cfg.fault.enabled = true;
  cfg.fault.plan.seed = 5;
  cfg.fault.plan.transient_failure_rate = 0.6;
  cfg.fault.max_plan_restarts = 1;
  const auto a = WorkloadRunner(cfg).Run(ais);
  const auto b = WorkloadRunner(cfg).Run(ais);

  ASSERT_EQ(a.cycles.size(), 10u);
  EXPECT_EQ(a.final_nodes, 8);
  EXPECT_GT(a.total_retries, 0);
  EXPECT_GT(a.total_reorg_aborts, 0);
  // Same seed, same trajectory — including the recovery path.
  EXPECT_EQ(a.total_faults_injected, b.total_faults_injected);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_reorg_aborts, b.total_reorg_aborts);
  EXPECT_EQ(a.reorgs_abandoned, b.reorgs_abandoned);
  EXPECT_EQ(a.total_recovery_overhead_minutes,
            b.total_recovery_overhead_minutes);
  EXPECT_EQ(a.total_elapsed_minutes, b.total_elapsed_minutes);
  EXPECT_EQ(a.mean_rsd, b.mean_rsd);
  for (size_t c = 0; c < a.cycles.size(); ++c) {
    ASSERT_EQ(a.cycles[c].query_minutes.size(),
              b.cycles[c].query_minutes.size());
    for (size_t q = 0; q < a.cycles[c].query_minutes.size(); ++q) {
      EXPECT_EQ(a.cycles[c].query_minutes[q].second,
                b.cycles[c].query_minutes[q].second);
    }
  }
  // Degraded serving was signalled on at least one faulted cycle.
  bool any_fault_cycle = false;
  for (const auto& cycle : a.cycles) {
    if (cycle.retries > 0 || cycle.reorg_aborts > 0) any_fault_cycle = true;
  }
  EXPECT_TRUE(any_fault_cycle);
}

}  // namespace
}  // namespace arraydb::workload
