// Invariance suite for the radix-partitioned rank-key joins (exec/join.h):
// DimJoinCount and AttrJoinCount must be bit-identical across thread
// counts, morsel grains, AND partition-bit settings — and must agree
// exactly with the retired unordered_set implementation, which stays in
// the tree as the executable multiplicity-semantics specification
// (internal::DimJoinCountBySet). Small grains force genuinely multi-morsel
// builds and probes on the sample workloads, so the parallel partition
// scatter, table build, and probe paths are exercised for real (this
// suite runs under the TSan CI job).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>
#include <vector>

#include "array/array.h"
#include "exec/join.h"
#include "exec/morsel.h"
#include "workload/sample_data.h"

namespace arraydb::exec {
namespace {

using array::Array;
using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::DimensionDesc;

JoinOptions Opts(int threads, int64_t grain, int partition_bits) {
  JoinOptions opts;
  opts.morsel.threads = threads;
  opts.morsel.grain_cells = grain;
  opts.partition_bits = partition_bits;
  return opts;
}

// threads = 1 (the sequential definition), 2, and 0 = all hardware.
std::vector<int> ThreadCounts() { return {1, 2, 0}; }
std::vector<int64_t> Grains() { return {192, 16384}; }
std::vector<int> PartitionBits() { return {0, 4, 8}; }

// Two overlapping 3-D sample arrays: the MODIS band and a second band
// shifted in time so the position intersection is a strict subset of both.
class JoinInvarianceTest : public ::testing::Test {
 protected:
  JoinInvarianceTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)),
        other_(workload::MakeSmallModisBand(/*days=*/3, /*seed=*/77)),
        ais_(workload::MakeSmallAisTracks(/*months=*/4, /*ships=*/90,
                                          /*seed=*/29)) {}

  Array modis_;
  Array other_;
  Array ais_;
};

TEST_F(JoinInvarianceTest, DimJoinMatchesSetSpecEverywhere) {
  // The retired set join is the semantics oracle; the radix join must
  // reproduce it exactly at every (threads, grain, partition bits) point,
  // with either side passed first.
  const int64_t want = internal::DimJoinCountBySet(modis_, other_);
  ASSERT_GT(want, 0);  // The bands overlap; a zero join would test nothing.
  for (const int threads : ThreadCounts()) {
    for (const int64_t grain : Grains()) {
      for (const int bits : PartitionBits()) {
        EXPECT_EQ(DimJoinCount(modis_, other_, Opts(threads, grain, bits)),
                  want)
            << "threads=" << threads << " grain=" << grain
            << " bits=" << bits;
        EXPECT_EQ(DimJoinCount(other_, modis_, Opts(threads, grain, bits)),
                  want)
            << "swapped, threads=" << threads << " grain=" << grain
            << " bits=" << bits;
      }
    }
  }
}

TEST_F(JoinInvarianceTest, DimJoinSelfJoinCountsEveryCell) {
  // Self-join touches every position: a different load profile for the
  // partition tables (100% hit rate).
  const int64_t want = internal::DimJoinCountBySet(ais_, ais_);
  for (const int threads : ThreadCounts()) {
    for (const int bits : PartitionBits()) {
      EXPECT_EQ(DimJoinCount(ais_, ais_, Opts(threads, 192, bits)), want)
          << "threads=" << threads << " bits=" << bits;
    }
  }
}

TEST_F(JoinInvarianceTest, AttrJoinInvariantAndLlroundKeyed) {
  // Reference: llround semantics applied cell by cell.
  std::unordered_set<int64_t> keys;
  for (int64_t k = 0; k <= 40; ++k) keys.insert(k);
  int64_t want = 0;
  for (const auto& cell : ais_.AllCells()) {
    const double v = cell.values[0];
    if (std::isfinite(v) && keys.contains(std::llround(v))) ++want;
  }
  ASSERT_GT(want, 0);
  for (const int threads : ThreadCounts()) {
    for (const int64_t grain : Grains()) {
      for (const int bits : PartitionBits()) {
        EXPECT_EQ(AttrJoinCount(ais_, 0, keys, Opts(threads, grain, bits)),
                  want)
            << "threads=" << threads << " grain=" << grain
            << " bits=" << bits;
      }
    }
  }
}

// -- Edges ------------------------------------------------------------------

TEST_F(JoinInvarianceTest, EmptyArraysJoinEmpty) {
  const Array empty(modis_.schema());
  for (const int bits : PartitionBits()) {
    EXPECT_EQ(DimJoinCount(empty, modis_, Opts(2, 192, bits)), 0);
    EXPECT_EQ(DimJoinCount(modis_, empty, Opts(2, 192, bits)), 0);
    EXPECT_EQ(DimJoinCount(empty, empty, Opts(2, 192, bits)), 0);
  }
  EXPECT_EQ(AttrJoinCount(empty, 0, {1, 2, 3}), 0);
  EXPECT_EQ(AttrJoinCount(ais_, 0, {}), 0);
}

TEST_F(JoinInvarianceTest, RankMismatchJoinsEmpty) {
  // A 2-D array never shares a position with a 3-D array: the join is
  // empty by definition, not a crash, at every partition setting.
  ArraySchema schema("flat", {DimensionDesc{"x", 0, 31, 4, false},
                              DimensionDesc{"y", 0, 15, 4, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array flat(schema);
  ASSERT_TRUE(flat.InsertCell({3, 3}, {1.0}).ok());
  for (const int bits : PartitionBits()) {
    EXPECT_EQ(DimJoinCount(flat, modis_, Opts(2, 192, bits)), 0);
    EXPECT_EQ(DimJoinCount(modis_, flat, Opts(2, 192, bits)), 0);
  }
}

TEST(JoinEdgeTest, NegativeCoordinatesKeyCorrectly) {
  // Longitude-style dimensions centered on zero: the join key space must
  // offset coordinates by the union bounding box's low corner, not assume
  // non-negative inputs.
  ArraySchema schema("lonlat", {DimensionDesc{"lon", -180, 179, 8, false},
                                DimensionDesc{"lat", -90, 89, 8, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(schema);
  Array b(schema);
  for (int64_t lon = -20; lon <= 20; ++lon) {
    ASSERT_TRUE(a.InsertCell({lon, -lon / 2}, {1.0}).ok());
  }
  for (int64_t lon = -5; lon <= 30; ++lon) {
    ASSERT_TRUE(b.InsertCell({lon, -lon / 2}, {2.0}).ok());
  }
  const int64_t want = internal::DimJoinCountBySet(a, b);
  EXPECT_EQ(want, 26);  // lon in [-5, 20].
  for (const int threads : {1, 2, 0}) {
    for (const int bits : {0, 4, 8}) {
      EXPECT_EQ(DimJoinCount(a, b, Opts(threads, 192, bits)), want)
          << "threads=" << threads << " bits=" << bits;
    }
  }
}

// -- Multiplicity semantics (pinned) ----------------------------------------

namespace {

Array MakeLine(int64_t n, int copies_per_pos) {
  ArraySchema schema("line", {DimensionDesc{"x", 0, 63, 8, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
  Array a(schema);
  for (int64_t x = 0; x < n; ++x) {
    for (int c = 0; c < copies_per_pos; ++c) {
      EXPECT_TRUE(a.InsertCell({x}, {static_cast<double>(x)}).ok());
    }
  }
  return a;
}

}  // namespace

TEST(JoinMultiplicityTest, BuildSideDuplicatesCountOnce) {
  // dup has 5 positions x 2 copies = 10 cells; wide has 20 cells, so dup
  // builds. Its duplicates collapse into the key set: every distinct
  // probe-side position in [0, 5) matches exactly once.
  const Array dup = MakeLine(5, /*copies_per_pos=*/2);
  const Array wide = MakeLine(20, /*copies_per_pos=*/1);
  ASSERT_LE(dup.total_cells(), wide.total_cells());
  for (const int bits : {0, 4, 8}) {
    EXPECT_EQ(DimJoinCount(dup, wide, Opts(2, 192, bits)), 5)
        << "bits=" << bits;
  }
  EXPECT_EQ(internal::DimJoinCountBySet(dup, wide), 5);
}

TEST(JoinMultiplicityTest, ProbeSideDuplicatesEachCount) {
  // small (3 cells) builds; dup probes with 3 copies of each position in
  // [0, 8): positions 0..2 match, each copy counts -> 9.
  const Array small = MakeLine(3, /*copies_per_pos=*/1);
  const Array dup = MakeLine(8, /*copies_per_pos=*/3);
  ASSERT_LE(small.total_cells(), dup.total_cells());
  for (const int bits : {0, 4, 8}) {
    EXPECT_EQ(DimJoinCount(small, dup, Opts(2, 192, bits)), 9)
        << "bits=" << bits;
  }
  EXPECT_EQ(internal::DimJoinCountBySet(small, dup), 9);
}

TEST(JoinMultiplicityTest, TiesBuildTheFirstArgument) {
  // Equal cell counts: `a` builds. With a's duplicates collapsing and b's
  // counting per cell, the two argument orders give different counts —
  // the tie rule is observable and must match the set spec in both.
  const Array dup = MakeLine(3, /*copies_per_pos=*/2);    // 6 cells.
  const Array plain = MakeLine(6, /*copies_per_pos=*/1);  // 6 cells.
  ASSERT_EQ(dup.total_cells(), plain.total_cells());
  // dup builds -> 3 distinct keys, probe cells 0..2 match -> 3.
  EXPECT_EQ(DimJoinCount(dup, plain, Opts(2, 192, 4)), 3);
  EXPECT_EQ(internal::DimJoinCountBySet(dup, plain), 3);
  // plain builds -> 6 keys, probe cells are 2 copies of 0..2 -> 6.
  EXPECT_EQ(DimJoinCount(plain, dup, Opts(2, 192, 4)), 6);
  EXPECT_EQ(internal::DimJoinCountBySet(plain, dup), 6);
}

// -- AttrJoinKey (llround) semantics ----------------------------------------

TEST(AttrJoinKeyTest, RoundsHalfAwayFromZero) {
  const std::vector<std::pair<double, int64_t>> cases = {
      {-1.5, -2}, {-0.5, -1}, {-0.4, 0}, {0.0, 0},
      {0.4, 0},   {0.5, 1},   {1.5, 2},  {2.5, 3}};
  for (const auto& [value, want] : cases) {
    int64_t key = 99;
    ASSERT_TRUE(AttrJoinKey(value, &key)) << value;
    EXPECT_EQ(key, want) << value;
  }
}

TEST(AttrJoinKeyTest, NonFiniteAndHugeValuesNeverMatch) {
  int64_t key = 0;
  EXPECT_FALSE(AttrJoinKey(std::numeric_limits<double>::quiet_NaN(), &key));
  EXPECT_FALSE(AttrJoinKey(std::numeric_limits<double>::infinity(), &key));
  EXPECT_FALSE(AttrJoinKey(-std::numeric_limits<double>::infinity(), &key));
  EXPECT_FALSE(AttrJoinKey(1e19, &key));
  EXPECT_FALSE(AttrJoinKey(-1e19, &key));
  // Inside the window everything rounds.
  EXPECT_TRUE(AttrJoinKey(4.0e18, &key));
  EXPECT_EQ(key, 4000000000000000000);
}

// -- FlatKeySet --------------------------------------------------------------

TEST(FlatKeySetTest, InsertContainsGrowAndZeroKey) {
  FlatKeySet set;
  EXPECT_FALSE(set.Contains(0));
  EXPECT_EQ(set.size(), 0u);
  // Zero is a real key, distinct from the empty-slot sentinel.
  set.Insert(0);
  EXPECT_TRUE(set.Contains(0));
  EXPECT_EQ(set.size(), 1u);
  set.Insert(0);  // Duplicate: no growth.
  EXPECT_EQ(set.size(), 1u);
  // Enough keys to force several grows past the initial capacity.
  for (uint64_t k = 1; k <= 1000; ++k) set.Insert(k * 0x9e3779b97f4a7c15ULL);
  EXPECT_EQ(set.size(), 1001u);
  for (uint64_t k = 1; k <= 1000; ++k) {
    ASSERT_TRUE(set.Contains(k * 0x9e3779b97f4a7c15ULL)) << k;
  }
  EXPECT_FALSE(set.Contains(12345));
  EXPECT_TRUE(set.Contains(0));
}

TEST(FlatKeySetTest, ReserveSizesForTheLoadFactor) {
  FlatKeySet set;
  set.Reserve(1000);
  for (uint64_t k = 0; k < 1000; ++k) set.Insert(k | (k << 32));
  EXPECT_EQ(set.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(set.Contains(k | (k << 32)));
  }
}

// -- Knobs -------------------------------------------------------------------

TEST(JoinKnobTest, PartitionBitsScopeAndRestore) {
  const int before = DataPlaneJoinOptions().partition_bits;
  {
    ScopedJoinPartitionBits scoped(9);
    EXPECT_EQ(DataPlaneJoinOptions().partition_bits, 9);
    SetJoinPartitionBits(2);
    EXPECT_EQ(DataPlaneJoinOptions().partition_bits, 2);
  }
  EXPECT_EQ(DataPlaneJoinOptions().partition_bits, before);
}

}  // namespace
}  // namespace arraydb::exec
