// ExecContext suite: the explicit execution-settings object that retired
// the process-global data-plane knobs. Covers the default-context
// snapshot/restore machinery, the legacy shims (SetDataPlaneThreads /
// SetJoinPartitionBits and their Scoped forms are views over the default
// context), operator entry-point equivalence, the nested RunnerConfig
// aliases, and — the reason join.h's old "not thread-safe against
// concurrent joins" caveat is gone — concurrent joins running under
// different contexts with results bit-identical to sequential execution.
// Runs under the TSan CI job.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "array/array.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "workload/runner.h"
#include "workload/sample_data.h"

namespace arraydb::exec {
namespace {

TEST(ExecContextTest, DefaultsMatchTheKnobDefaults) {
  const ExecContext context;
  EXPECT_EQ(context.data_plane_threads, 1);
  EXPECT_EQ(context.join_partition_bits, kDefaultJoinPartitionBits);
  EXPECT_EQ(context.morsel_grain, kDefaultMorselGrainCells);
  EXPECT_EQ(context.yield, nullptr);

  const MorselOptions morsel = context.morsel_options();
  EXPECT_EQ(morsel.threads, 1);
  EXPECT_EQ(morsel.grain_cells, kDefaultMorselGrainCells);
  EXPECT_EQ(morsel.yield, nullptr);
  const JoinOptions join = context.join_options();
  EXPECT_EQ(join.partition_bits, kDefaultJoinPartitionBits);
  EXPECT_EQ(join.morsel.threads, 1);
}

TEST(ExecContextTest, MorselAndJoinOptionsCarryEverySetting) {
  YieldPoint gate;
  ExecContext context;
  context.data_plane_threads = 3;
  context.join_partition_bits = 5;
  context.morsel_grain = 256;
  context.yield = &gate;
  const MorselOptions morsel = context.morsel_options();
  EXPECT_EQ(morsel.threads, 3);
  EXPECT_EQ(morsel.grain_cells, 256);
  EXPECT_EQ(morsel.yield, &gate);
  const JoinOptions join = context.join_options();
  EXPECT_EQ(join.partition_bits, 5);
  EXPECT_EQ(join.morsel.threads, 3);
  EXPECT_EQ(join.morsel.grain_cells, 256);
  EXPECT_EQ(join.morsel.yield, &gate);
}

TEST(ExecContextTest, ScopedExecContextInstallsAndRestores) {
  const ExecContext before = DefaultExecContext();
  {
    ExecContext override_context;
    override_context.data_plane_threads = 7;
    override_context.join_partition_bits = 2;
    override_context.morsel_grain = 512;
    const ScopedExecContext scope(override_context);
    EXPECT_EQ(DefaultExecContext().data_plane_threads, 7);
    EXPECT_EQ(DefaultExecContext().join_partition_bits, 2);
    EXPECT_EQ(DefaultExecContext().morsel_grain, 512);
    // The legacy accessors are views over the same default.
    EXPECT_EQ(DataPlaneMorselOptions().threads, 7);
    EXPECT_EQ(DataPlaneJoinOptions().partition_bits, 2);
  }
  EXPECT_EQ(DefaultExecContext().data_plane_threads,
            before.data_plane_threads);
  EXPECT_EQ(DefaultExecContext().join_partition_bits,
            before.join_partition_bits);
  EXPECT_EQ(DefaultExecContext().morsel_grain, before.morsel_grain);
}

TEST(ExecContextTest, LegacyShimsMutateOneFieldEach) {
  const ExecContext before = DefaultExecContext();
  {
    const ScopedDataPlaneThreads threads(4);
    EXPECT_EQ(DefaultExecContext().data_plane_threads, 4);
    // Orthogonal fields are untouched.
    EXPECT_EQ(DefaultExecContext().join_partition_bits,
              before.join_partition_bits);
    {
      const ScopedJoinPartitionBits bits(3);
      EXPECT_EQ(DefaultExecContext().join_partition_bits, 3);
      EXPECT_EQ(DefaultExecContext().data_plane_threads, 4);
    }
    EXPECT_EQ(DefaultExecContext().join_partition_bits,
              before.join_partition_bits);
  }
  EXPECT_EQ(DefaultExecContext().data_plane_threads,
            before.data_plane_threads);
}

class ExecContextOperatorTest : public ::testing::Test {
 protected:
  ExecContextOperatorTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)),
        other_(workload::MakeSmallModisBand(/*days=*/3, /*seed=*/77)) {}

  CellBox FullBox() const {
    CellBox box;
    for (const array::DimensionDesc& dim : modis_.schema().dims()) {
      box.lo.push_back(dim.lo);
      box.hi.push_back(dim.lo + dim.Extent() - 1);
    }
    return box;
  }

  static std::unordered_set<int64_t> Keys() {
    std::unordered_set<int64_t> keys;
    for (int64_t k = 0; k < 64; ++k) keys.insert(k * 3);
    return keys;
  }

  array::Array modis_;
  array::Array other_;
};

TEST_F(ExecContextOperatorTest, ContextOverloadsMatchTheDefaultPath) {
  const CellBox box = FullBox();
  const int64_t want_count = FilterBoxCount(modis_, box);
  const int64_t want_dim = DimJoinCount(modis_, other_);
  const int64_t want_attr = AttrJoinCount(modis_, 0, Keys());
  ASSERT_GT(want_count, 0);
  ASSERT_GT(want_dim, 0);
  for (const int threads : {1, 2, 0}) {
    for (const int bits : {0, 4}) {
      ExecContext context;
      context.data_plane_threads = threads;
      context.join_partition_bits = bits;
      context.morsel_grain = 192;  // Force genuinely multi-morsel runs.
      EXPECT_EQ(FilterBoxCount(modis_, box, context), want_count)
          << "threads=" << threads;
      EXPECT_EQ(DimJoinCount(modis_, other_, context), want_dim)
          << "threads=" << threads << " bits=" << bits;
      EXPECT_EQ(AttrJoinCount(modis_, 0, Keys(), context), want_attr)
          << "threads=" << threads << " bits=" << bits;
    }
  }
}

// The deleted join.h caveat, disproved under TSan: concurrent joins, each
// with its own context (different thread counts and partition bits),
// produce exactly the sequential results. No process-global state is
// involved — that was the point of ExecContext.
TEST_F(ExecContextOperatorTest, ConcurrentJoinsUnderDistinctContexts) {
  const int64_t want_dim = DimJoinCount(modis_, other_);
  const int64_t want_attr = AttrJoinCount(modis_, 0, Keys());

  constexpr int kWorkers = 4;
  constexpr int kRepeats = 3;
  std::vector<int64_t> dim_results(kWorkers * kRepeats, 0);
  std::vector<int64_t> attr_results(kWorkers * kRepeats, 0);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      ExecContext context;
      context.data_plane_threads = 1 + w % 3;
      context.join_partition_bits = (w % 2 == 0) ? 0 : 4;
      context.morsel_grain = 192 + 64 * w;
      for (int r = 0; r < kRepeats; ++r) {
        dim_results[static_cast<size_t>(w * kRepeats + r)] =
            DimJoinCount(modis_, other_, context);
        attr_results[static_cast<size_t>(w * kRepeats + r)] =
            AttrJoinCount(modis_, 0, Keys(), context);
      }
    });
  }
  for (auto& t : workers) t.join();
  for (const int64_t got : dim_results) EXPECT_EQ(got, want_dim);
  for (const int64_t got : attr_results) EXPECT_EQ(got, want_attr);
}

// The deprecated flat-field aliases (PR 8's one-release bridge) are gone;
// the nested sub-configs are the only spelling, and the (now defaulted)
// copy operations must produce fully independent values.
TEST(RunnerConfigTest, CopiesAreIndependentValues) {
  workload::RunnerConfig original;
  original.ingest.threads = 7;
  original.reorg.increment_gb = 4.0;
  original.exec_context.join_partition_bits = 5;

  workload::RunnerConfig copy = original;
  EXPECT_EQ(copy.ingest.threads, 7);
  EXPECT_DOUBLE_EQ(copy.reorg.increment_gb, 4.0);
  EXPECT_EQ(copy.exec_context.join_partition_bits, 5);

  // Mutating the copy must not touch the original.
  copy.ingest.threads = 2;
  copy.reorg.increment_gb = 9.0;
  EXPECT_EQ(original.ingest.threads, 7);
  EXPECT_DOUBLE_EQ(original.reorg.increment_gb, 4.0);
  EXPECT_EQ(copy.ingest.threads, 2);

  // Same for assignment.
  workload::RunnerConfig assigned;
  assigned = original;
  assigned.exec_context.data_plane_threads = 6;
  EXPECT_EQ(original.exec_context.data_plane_threads, 1);
  EXPECT_EQ(assigned.exec_context.data_plane_threads, 6);
}

}  // namespace
}  // namespace arraydb::exec
