// Unit tests for the leading staircase PD control loop (§5.1, Eqs. 2-4).

#include <gtest/gtest.h>

#include "core/provisioner.h"

namespace arraydb::core {
namespace {

StaircaseConfig Config(double c, int s, int p) {
  StaircaseConfig cfg;
  cfg.node_capacity_gb = c;
  cfg.samples = s;
  cfg.plan_ahead = p;
  return cfg;
}

TEST(StaircaseTest, WithinCapacityDoesNothing) {
  LeadingStaircase stair(Config(100.0, 4, 3));
  stair.ObserveLoad(50.0);
  const auto d = stair.Evaluate(80.0, 1);  // 80 < 1 * 100.
  EXPECT_EQ(d.nodes_to_add, 0);
  EXPECT_LE(d.proportional_gb, 0.0);
}

TEST(StaircaseTest, ProportionalTermIsExcessDemand) {
  LeadingStaircase stair(Config(100.0, 1, 0));
  stair.ObserveLoad(90.0);
  const auto d = stair.Evaluate(130.0, 1);
  // Eq. 2: p_i = 130 - 100 = 30.
  EXPECT_NEAR(d.proportional_gb, 30.0, 1e-9);
  // Eq. 3 with s=1: Δ = 130 - 90 = 40 but p=0 ignores it.
  // Eq. 4: k = ceil(30/100) = 1.
  EXPECT_EQ(d.nodes_to_add, 1);
}

TEST(StaircaseTest, DerivativeUsesLastSSamples) {
  LeadingStaircase stair(Config(100.0, 3, 0));
  stair.ObserveLoad(10.0);
  stair.ObserveLoad(40.0);
  stair.ObserveLoad(70.0);
  stair.ObserveLoad(100.0);
  const auto d = stair.Evaluate(130.0, 1);
  // Δ over s=3 samples: (130 - 40) / 3 = 30 GB per cycle.
  EXPECT_NEAR(d.derivative_gb_per_cycle, 30.0, 1e-9);
}

TEST(StaircaseTest, PlanAheadScalesStepHeight) {
  // Same state, increasing p: the step height k must not decrease.
  int last_k = 0;
  for (const int p : {0, 1, 3, 6}) {
    LeadingStaircase stair(Config(100.0, 2, p));
    stair.ObserveLoad(100.0);
    stair.ObserveLoad(180.0);
    const auto d = stair.Evaluate(260.0, 2);  // 60 GB over capacity.
    EXPECT_GE(d.nodes_to_add, last_k) << "p=" << p;
    last_k = d.nodes_to_add;
  }
  EXPECT_GE(last_k, 3);  // Eager config must step high.
}

TEST(StaircaseTest, Eq4Arithmetic) {
  LeadingStaircase stair(Config(100.0, 2, 3));
  stair.ObserveLoad(200.0);
  stair.ObserveLoad(250.0);
  const auto d = stair.Evaluate(310.0, 3);
  // p_i = 310 - 300 = 10. Δ over s=2 reaches two cycles back:
  // (310 - 200)/2 = 55. k = ceil((10 + 3*55)/100) = 2.
  EXPECT_NEAR(d.derivative_gb_per_cycle, 55.0, 1e-9);
  EXPECT_EQ(d.nodes_to_add, 2);

  LeadingStaircase eager(Config(100.0, 2, 6));
  eager.ObserveLoad(200.0);
  eager.ObserveLoad(250.0);
  const auto e = eager.Evaluate(310.0, 3);
  // k = ceil((10 + 6*55)/100) = ceil(3.4) = 4.
  EXPECT_EQ(e.nodes_to_add, 4);
}

TEST(StaircaseTest, AlwaysAddsAtLeastOneWhenOverCapacity) {
  LeadingStaircase stair(Config(100.0, 4, 0));
  const auto d = stair.Evaluate(100.5, 1);  // Barely over, no history.
  EXPECT_EQ(d.nodes_to_add, 1);
}

TEST(StaircaseTest, FewSamplesFallBackGracefully) {
  LeadingStaircase stair(Config(100.0, 4, 3));
  stair.ObserveLoad(80.0);  // Only one sample, s=4 requested.
  const auto d = stair.Evaluate(120.0, 1);
  EXPECT_NEAR(d.derivative_gb_per_cycle, 40.0, 1e-9);  // Uses s'=1.
  EXPECT_GE(d.nodes_to_add, 1);
}

TEST(StaircaseTest, MonotonicDemandNeverCoalesces) {
  // The staircase only ever adds nodes; simulate a long monotone demand
  // curve and check the provisioned count never needs to shrink.
  LeadingStaircase stair(Config(100.0, 4, 3));
  int nodes = 1;
  double load = 0.0;
  for (int cycle = 0; cycle < 30; ++cycle) {
    load += 45.0;
    const auto d = stair.Evaluate(load, nodes);
    EXPECT_GE(d.nodes_to_add, 0);
    nodes += d.nodes_to_add;
    stair.ObserveLoad(load);
    EXPECT_GE(static_cast<double>(nodes) * 100.0, load)
        << "staircase fell behind demand at cycle " << cycle;
  }
}

TEST(StaircaseTest, HistoryIsRecorded) {
  LeadingStaircase stair(Config(100.0, 2, 1));
  stair.ObserveLoad(1.0);
  stair.ObserveLoad(2.0);
  ASSERT_EQ(stair.history().size(), 2u);
  EXPECT_DOUBLE_EQ(stair.history()[1], 2.0);
}

}  // namespace
}  // namespace arraydb::core
