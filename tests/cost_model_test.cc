// Unit tests for the cluster cost model: insert pricing (Eq. 6 structure)
// and reorganization makespan.

#include <gtest/gtest.h>

#include "cluster/cost_model.h"
#include "util/units.h"

namespace arraydb::cluster {
namespace {

CostParams SimpleParams() {
  CostParams p;
  p.io_minutes_per_gb = 0.1;
  p.net_minutes_per_gb = 0.2;
  p.per_chunk_minutes = 0.0;
  p.reorg_fixed_minutes = 0.0;
  return p;
}

int64_t Gb(double gb) { return static_cast<int64_t>(gb * util::kGiB); }

TEST(CostModelTest, InsertSplitsLocalAndRemote) {
  CostModel model(SimpleParams());
  // 1 GB local (node 0 = coordinator), 2 GB remote.
  const auto cost = model.InsertMinutes(
      {{0, Gb(1.0)}, {1, Gb(1.0)}, {2, Gb(1.0)}}, 0);
  EXPECT_NEAR(cost.local_gb, 1.0, 1e-9);
  EXPECT_NEAR(cost.remote_gb, 2.0, 1e-9);
  EXPECT_NEAR(cost.minutes, 1.0 * 0.1 + 2.0 * 0.2, 1e-9);
}

TEST(CostModelTest, AllRemoteInsertCostsMore) {
  CostModel model(SimpleParams());
  // The Append pattern: everything lands on one non-coordinator target.
  const auto append = model.InsertMinutes({{3, Gb(3.0)}}, 0);
  // Even spread keeps 1/3 local.
  const auto spread = model.InsertMinutes(
      {{0, Gb(1.0)}, {1, Gb(1.0)}, {2, Gb(1.0)}}, 0);
  EXPECT_GT(append.minutes, spread.minutes);
}

TEST(CostModelTest, EmptyInsertIsFree) {
  CostModel model(SimpleParams());
  EXPECT_DOUBLE_EQ(model.InsertMinutes({}, 0).minutes, 0.0);
}

TEST(CostModelTest, PerChunkOverheadCharged) {
  CostParams p = SimpleParams();
  p.per_chunk_minutes = 0.01;
  CostModel model(p);
  const auto one = model.InsertMinutes({{0, 100}}, 0);
  const auto many = model.InsertMinutes(
      {{0, 25}, {0, 25}, {0, 25}, {0, 25}}, 0);
  EXPECT_NEAR(many.minutes - one.minutes, 0.03, 1e-9);
}

TEST(CostModelTest, EmptyReorgIsFree) {
  CostModel model(SimpleParams());
  MovePlan plan;
  const auto cost = model.ReorgMinutes(plan, 4);
  EXPECT_DOUBLE_EQ(cost.minutes, 0.0);
  EXPECT_EQ(cost.chunks_moved, 0);
}

TEST(CostModelTest, ReorgMakespanIsBottleneckNode) {
  CostModel model(SimpleParams());
  MovePlan plan;
  // Node 0 sends 2 GB to node 2; node 1 sends 1 GB to node 3.
  plan.Add(ChunkMove{{0}, Gb(2.0), 0, 2});
  plan.Add(ChunkMove{{1}, Gb(1.0), 1, 3});
  const auto cost = model.ReorgMinutes(plan, 4);
  // Bottleneck: node 0 sends 2 GB (0.4 min) vs node 2 receives 2 GB
  // (0.4 net + 0.2 io = 0.6 min). Receiver write dominates.
  EXPECT_NEAR(cost.minutes, 2.0 * 0.2 + 2.0 * 0.1, 1e-9);
  EXPECT_EQ(cost.bottleneck_node, 2);
  EXPECT_NEAR(cost.moved_gb, 3.0, 1e-9);
  EXPECT_EQ(cost.chunks_moved, 2);
}

TEST(CostModelTest, ParallelTransfersBeatSerial) {
  CostModel model(SimpleParams());
  // Serial: one node ships 4 GB to one receiver.
  MovePlan serial;
  serial.Add(ChunkMove{{0}, Gb(4.0), 0, 4});
  // Parallel: four nodes ship 1 GB each to four distinct receivers.
  MovePlan parallel;
  for (int i = 0; i < 4; ++i) {
    parallel.Add(ChunkMove{{i + 10}, Gb(1.0), i, 4 + i});
  }
  const auto s = model.ReorgMinutes(serial, 8);
  const auto p = model.ReorgMinutes(parallel, 8);
  EXPECT_GT(s.minutes, p.minutes * 2.0);
}

TEST(CostModelTest, FixedReorgOverheadAppliesOnlyWhenMoving) {
  CostParams params = SimpleParams();
  params.reorg_fixed_minutes = 0.5;
  CostModel model(params);
  MovePlan empty;
  EXPECT_DOUBLE_EQ(model.ReorgMinutes(empty, 2).minutes, 0.0);
  MovePlan one;
  one.Add(ChunkMove{{0}, Gb(1.0), 0, 1});
  EXPECT_GT(model.ReorgMinutes(one, 2).minutes, 0.5);
}

TEST(CostModelTest, SendPlusReceiveShareOneLink) {
  CostParams params = SimpleParams();
  params.incast_penalty = 0.0;  // Isolate the shared-link term.
  CostModel model(params);
  // Node 1 both receives 1 GB and sends 1 GB: its link carries 2 GB.
  MovePlan plan;
  plan.Add(ChunkMove{{0}, Gb(1.0), 0, 1});
  plan.Add(ChunkMove{{1}, Gb(1.0), 1, 2});
  const auto cost = model.ReorgMinutes(plan, 3);
  // Node 1: (1+1)*0.2 + 1*0.1 = 0.5.
  EXPECT_NEAR(cost.minutes, 0.5, 1e-9);
  EXPECT_EQ(cost.bottleneck_node, 1);
}

TEST(CostModelTest, IncastPenaltySlowsAllToAllShuffles) {
  CostParams params = SimpleParams();
  params.incast_penalty = 0.5;
  CostModel model(params);
  // Pairwise: node 0 ships 2 GB to node 2 (one peer each).
  MovePlan pairwise;
  pairwise.Add(ChunkMove{{0}, Gb(2.0), 0, 2});
  // Fan-out: node 0 ships 1 GB each to nodes 2 and 3 (two peers).
  MovePlan fanout;
  fanout.Add(ChunkMove{{1}, Gb(1.0), 0, 2});
  fanout.Add(ChunkMove{{2}, Gb(1.0), 0, 3});
  const auto p = model.ReorgMinutes(pairwise, 4);
  const auto f = model.ReorgMinutes(fanout, 4);
  // Same bytes over node 0's link, but the fan-out pays congestion
  // (the per-receiver write I/O is smaller, so compare the send side).
  // Pairwise bottleneck: receiver 2: 2*0.2 + 2*0.1 = 0.6.
  EXPECT_NEAR(p.minutes, 0.6, 1e-9);
  // Fan-out bottleneck: sender 0: 2 GB * 0.2 * (1 + 0.5) = 0.6; receivers
  // 1*0.2+1*0.1 = 0.3 each.
  EXPECT_NEAR(f.minutes, 0.6, 1e-9);
  // With three peers the congestion dominates.
  MovePlan wide;
  wide.Add(ChunkMove{{3}, Gb(1.0), 0, 1});
  wide.Add(ChunkMove{{4}, Gb(1.0), 0, 2});
  wide.Add(ChunkMove{{5}, Gb(1.0), 0, 3});
  const auto w = model.ReorgMinutes(wide, 4);
  // Sender 0: 3 GB * 0.2 * (1 + 0.5*2) = 1.2.
  EXPECT_NEAR(w.minutes, 1.2, 1e-9);
}

}  // namespace
}  // namespace arraydb::cluster
