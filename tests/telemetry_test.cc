// Telemetry subsystem suite (src/telemetry/): concurrent instrument
// hammering (exact totals under contention — runs under the TSan CI job),
// snapshot byte-determinism, thread-count invariance of the data-plane
// counters (the telemetry face of the morsel determinism contract), the
// observe-only bit-identity contract (results identical with telemetry
// enabled, disabled, and while tracing), the trace round-trip, and the
// CHECK_OP operand-printing upgrade.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/join.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "workload/sample_data.h"

namespace arraydb::telemetry {
namespace {

// -- Instruments under contention ---------------------------------------------

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), int64_t{3} * kThreads * kAddsPerThread);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(t);  // Thread t hammers one bucket.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.Count(), int64_t{kThreads} * kRecordsPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += t;
  EXPECT_EQ(hist.Sum(), expected_sum * kRecordsPerThread);
  const auto buckets = hist.BucketCounts();
  int64_t total = 0;
  for (const int64_t b : buckets) total += b;
  EXPECT_EQ(total, hist.Count());
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds <= 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11);
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kBuckets - 1);
  for (int b = 1; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(b)), b);
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(b) + 1),
              b + 1);
  }
}

TEST(GaugeTest, SetTracksValueAndPeak) {
  Gauge gauge;
  gauge.Set(5);
  gauge.Set(9);
  gauge.Set(2);
  EXPECT_EQ(gauge.Value(), 2);
  EXPECT_EQ(gauge.Peak(), 9);
  gauge.UpdateMax(7);
  EXPECT_EQ(gauge.Value(), 7);  // Raised: 7 > 2.
  gauge.UpdateMax(3);
  EXPECT_EQ(gauge.Value(), 7);  // Not lowered.
  EXPECT_EQ(gauge.Peak(), 9);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(gauge.Peak(), 0);
}

TEST(TelemetryTest, DisabledInstrumentsRecordNothing) {
  Counter counter;
  Histogram hist;
  {
    ScopedEnabled off(false);
    counter.Add(7);
    hist.Record(42);
  }
  EXPECT_EQ(counter.Value(), 0);
  EXPECT_EQ(hist.Count(), 0);
  counter.Add(7);  // Master switch restored: recording works again.
  EXPECT_EQ(counter.Value(), 7);
}

// -- Snapshot determinism -----------------------------------------------------

TEST(RegistryTest, SnapshotIsSortedAndByteDeterministic) {
  auto& registry = Registry::Global();
  registry.ResetValues();
  registry.counter("zz.last").Add(2);
  registry.counter("aa.first").Add(1);
  registry.gauge("mm.middle").Set(5);
  registry.histogram("hh.hist").Record(100);

  const std::string snap1 = registry.SnapshotJson();
  const std::string snap2 = registry.SnapshotJson();
  EXPECT_EQ(snap1, snap2);  // Byte-identical for identical state.

  // Sorted keys: aa.first serializes before zz.last.
  EXPECT_NE(snap1.find("aa.first"), std::string::npos);
  EXPECT_LT(snap1.find("aa.first"), snap1.find("zz.last"));

  // Cached references survive ResetValues (zeroed in place, not erased).
  Counter& cached = registry.counter("aa.first");
  registry.ResetValues();
  EXPECT_EQ(cached.Value(), 0);
  cached.Add(4);
  EXPECT_EQ(registry.counter("aa.first").Value(), 4);
}

TEST(RegistryTest, SnapshotValuesConcurrentlyRecordedAreExact) {
  auto& registry = Registry::Global();
  registry.ResetValues();
  constexpr int kThreads = 8;
  constexpr int kAdds = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kAdds; ++i) {
        registry.counter("test.hammer.counter").Add(1);
        registry.histogram("test.hammer.hist").Record(i % 7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.counter("test.hammer.counter").Value(),
            int64_t{kThreads} * kAdds);
  EXPECT_EQ(registry.histogram("test.hammer.hist").Count(),
            int64_t{kThreads} * kAdds);
}

// -- Thread-count invariance of the data-plane counters -----------------------

#if ARRAYDB_TELEMETRY_ENABLED

// The designated schedule-invariant counters (src/telemetry/README.md):
// their totals must be bit-identical at every thread count, because the
// morsel decomposition and the join structure are pure in the data and the
// grain. Schedule-dependent observations (worker busy histograms, queue
// depths) are deliberately absent from this list.
std::vector<std::string> InvariantCounters() {
  return {"exec.join.dim_joins", "exec.join.build_keys",
          "exec.join.probe_cells", "exec.join.probe_hits",
          "exec.morsel.runs", "exec.morsel.morsels_dispatched"};
}

std::map<std::string, int64_t> RunJoinAndCollect(const array::Array& a,
                                                 const array::Array& b,
                                                 int threads) {
  auto& registry = Registry::Global();
  registry.ResetValues();
  exec::JoinOptions opts;
  opts.morsel.threads = threads;
  opts.morsel.grain_cells = 192;  // Small grain: genuinely multi-morsel.
  const int64_t matches = exec::DimJoinCount(a, b, opts);
  EXPECT_GT(matches, 0);
  std::map<std::string, int64_t> values;
  for (const auto& name : InvariantCounters()) {
    values[name] = registry.counter(name).Value();
  }
  return values;
}

TEST(InvarianceTest, JoinCountersIdenticalAcrossThreadCounts) {
  const array::Array modis =
      workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014);
  const array::Array other =
      workload::MakeSmallModisBand(/*days=*/3, /*seed=*/77);
  const auto sequential = RunJoinAndCollect(modis, other, /*threads=*/1);
  EXPECT_GT(sequential.at("exec.join.probe_hits"), 0);
  EXPECT_GT(sequential.at("exec.morsel.morsels_dispatched"), 1);
  for (const int threads : {2, 0}) {
    const auto parallel = RunJoinAndCollect(modis, other, threads);
    EXPECT_EQ(parallel, sequential) << "threads=" << threads;
  }
  Registry::Global().ResetValues();
}

#endif  // ARRAYDB_TELEMETRY_ENABLED

// -- Observe-only: bit-identical results on/off/tracing -----------------------

struct QueryResults {
  int64_t join = 0;
  int64_t filter = 0;
  std::map<array::Coordinates, double> groups;

  bool operator==(const QueryResults&) const = default;
};

QueryResults RunQueries(const array::Array& modis, const array::Array& other) {
  QueryResults r;
  exec::JoinOptions jopts;
  jopts.morsel.threads = 0;  // All hardware: the contended path.
  jopts.morsel.grain_cells = 192;
  r.join = exec::DimJoinCount(modis, other, jopts);
  exec::MorselOptions mopts;
  mopts.threads = 0;
  mopts.grain_cells = 192;
  const exec::CellBox box{{0, 4, 4}, {2, 20, 12}};
  r.filter = exec::FilterBoxCount(modis, box, mopts);
  r.groups = exec::GroupBySum(modis, {2, 8, 8}, 0, mopts);
  return r;
}

TEST(ObserveOnlyTest, ResultsBitIdenticalOnOffAndTracing) {
  const array::Array modis =
      workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014);
  const array::Array other =
      workload::MakeSmallModisBand(/*days=*/3, /*seed=*/77);

  QueryResults enabled, disabled, traced;
  {
    ScopedEnabled on(true);
    enabled = RunQueries(modis, other);
  }
  {
    ScopedEnabled off(false);
    disabled = RunQueries(modis, other);
  }
  {
    ScopedEnabled on(true);
    ScopedTracing tracing;
    traced = RunQueries(modis, other);
  }
  EXPECT_GT(enabled.join, 0);
  EXPECT_GT(enabled.filter, 0);
  EXPECT_FALSE(enabled.groups.empty());
  EXPECT_EQ(disabled, enabled);
  EXPECT_EQ(traced, enabled);
  Registry::Global().ResetValues();
  ClearTrace();
}

// -- Trace round-trip ---------------------------------------------------------

TEST(TraceTest, SpansCollectOnlyWhileActiveAndWriteValidJson) {
  ClearTrace();
  {
    // No tracing window open: spans cost a check and record nothing.
    TraceSpan idle("test.idle");
  }
  EXPECT_EQ(TraceEventCount(), 0u);

  {
    ScopedTracing tracing;
    TraceSpan outer("test.outer");
    {
      TraceSpan inner("test.inner");
    }
  }
  EXPECT_EQ(TraceEventCount(), 2u);

  const std::string path = ::testing::TempDir() + "telemetry_test_trace.json";
  ASSERT_TRUE(WriteTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.outer\""), std::string::npos);
  EXPECT_NE(trace.find("\"test.inner\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  ClearTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
}

TEST(TraceTest, MasterSwitchGatesSpans) {
  ClearTrace();
  ScopedTracing tracing;
  {
    ScopedEnabled off(false);
    TraceSpan muted("test.muted");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
  {
    TraceSpan heard("test.heard");
  }
  EXPECT_EQ(TraceEventCount(), 1u);
  ClearTrace();
}

// -- JSON writer --------------------------------------------------------------

TEST(JsonWriterTest, EscapesAndNests) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");

  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  json.BeginObject();
  json.Key("list");
  json.BeginArray();
  json.Int(1);
  json.Int(2);
  json.EndArray();
  json.Key("s");
  json.String("x\"y");
  json.Key("f");
  json.Double(1.5, "%.2f");
  json.Key("b");
  json.Bool(true);
  json.EndObject();
  EXPECT_EQ(out.str(),
            "{\"list\":[1,2],\"s\":\"x\\\"y\",\"f\":1.50,\"b\":true}");
}

// -- CHECK_OP operand printing ------------------------------------------------

TEST(CheckOpDeathTest, FailureMessageShowsOperandValues) {
  const int lhs = 4;
  const int rhs = 5;
  EXPECT_DEATH(ARRAYDB_CHECK_EQ(lhs, rhs), "lhs == rhs \\(4 vs\\. 5\\)");
  const char small = 'a';
  const char big = 'b';
  // Char-family integrals print numerically ('a' -> 97), not as bytes.
  EXPECT_DEATH(ARRAYDB_CHECK_GT(small, big), "\\(97 vs\\. 98\\)");
  const std::string name = "alpha";
  EXPECT_DEATH(ARRAYDB_CHECK_EQ(name, std::string("beta")),
               "\\(alpha vs\\. beta\\)");
}

}  // namespace
}  // namespace arraydb::telemetry
