// Unit tests for src/util: status propagation, formatting, RNG
// distributions, and summary statistics.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/units.h"

namespace arraydb::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgument("bad rank");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rank");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rank");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      NotFound("x").code(),       AlreadyExists("x").code(),
      FailedPrecondition("x").code(), OutOfRange("x").code(),
      Internal("x").code(),       InvalidArgument("x").code(),
  };
  EXPECT_EQ(codes.size(), 6u);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1024.0 * 1024.0 * 1.5), "1.50 MB");
  EXPECT_EQ(HumanBytes(kGiB * 2.0), "2.00 GB");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("abcdef", 4), "abcd");
}

TEST(UnitsTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(BytesToGb(GbToBytes(3.25)), 3.25);
}

TEST(RngTest, Deterministic) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, SeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, BoundedIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleIsInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.NextGaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stdev(), 1.0, 0.02);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLogNormal(0.0, 2.0), 0.0);
  }
}

TEST(ZipfTest, RankZeroIsMostLikely) {
  ZipfTable table(100, 1.2);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    ++counts[static_cast<size_t>(table.Sample(rng))];
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfTable table(500, 0.9);
  double sum = 0.0;
  for (int64_t r = 0; r < table.size(); ++r) sum += table.Pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, HeavyTailConcentration) {
  // With alpha ~1.5, the top 5% of ranks should hold most of the mass —
  // the shape the AIS generator relies on.
  ZipfTable table(1000, 1.5);
  double top = 0.0;
  for (int64_t r = 0; r < 50; ++r) top += table.Pmf(r);
  EXPECT_GT(top, 0.75);
}

TEST(StatsTest, MeanStdev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(Stdev(xs), 2.0);
  EXPECT_DOUBLE_EQ(RelativeStdev(xs), 0.4);
}

TEST(StatsTest, EmptyInputsAreSafe) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Stdev({}), 0.0);
  EXPECT_DOUBLE_EQ(RelativeStdev({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, MedianAndQuantiles) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({0.0, 10.0}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({5.0, 1.0, 3.0}, 1.0), 5.0);
}

TEST(StatsTest, MinMaxSum) {
  const std::vector<double> xs = {3.0, -1.0, 9.0};
  EXPECT_DOUBLE_EQ(Min(xs), -1.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
  EXPECT_DOUBLE_EQ(Sum(xs), 11.0);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  Rng rng(3);
  std::vector<double> xs;
  RunningStat stat;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.NextUniform(-5.0, 5.0);
    xs.push_back(x);
    stat.Add(x);
  }
  EXPECT_NEAR(stat.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(stat.stdev(), Stdev(xs), 1e-9);
}

TEST(HashTest, SplitMixAvalanche) {
  // Flipping one input bit should change many output bits on average.
  int total_flips = 0;
  for (uint64_t x = 0; x < 64; ++x) {
    const uint64_t h1 = SplitMix64(x);
    const uint64_t h2 = SplitMix64(x ^ 1);
    total_flips += __builtin_popcountll(h1 ^ h2);
  }
  EXPECT_GT(total_flips / 64, 20);
}

}  // namespace
}  // namespace arraydb::util
