// Edge cases and failure injection across the stack: degenerate cluster
// sizes, single-chunk arrays, four-dimensional grids, repeated scale-outs
// far past the paper's testbed size, and malformed inputs.

#include <gtest/gtest.h>

#include <set>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "core/elastic_engine.h"
#include "core/partitioner_factory.h"
#include "core/provisioner.h"
#include "exec/engine.h"
#include "util/rng.h"

namespace arraydb {
namespace {

using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::ChunkInfo;
using array::Coordinates;
using array::DimensionDesc;
using core::PartitionerKind;

ArraySchema Grid2D(int64_t side) {
  return ArraySchema("g",
                     {DimensionDesc{"x", 0, side - 1, 1, false},
                      DimensionDesc{"y", 0, side - 1, 1, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
}

TEST(EdgeCaseTest, SingleNodeClusterAcceptsEverything) {
  const ArraySchema schema = Grid2D(8);
  for (const auto kind : core::AllPartitionerKinds()) {
    core::ElasticEngine engine(core::MakePartitioner(kind, schema, 1, 1.0),
                               1, 1.0);
    std::vector<ChunkInfo> batch;
    for (int64_t x = 0; x < 8; ++x) {
      for (int64_t y = 0; y < 8; ++y) {
        batch.push_back(ChunkInfo{{x, y}, 10, 80});
      }
    }
    const auto stats = engine.IngestBatch(batch);
    EXPECT_EQ(stats.chunks, 64);
    EXPECT_EQ(engine.cluster().NodeChunkCount(0), 64)
        << core::PartitionerKindName(kind);
  }
}

TEST(EdgeCaseTest, EmptyBatchIsFree) {
  const ArraySchema schema = Grid2D(8);
  core::ElasticEngine engine(
      core::MakePartitioner(PartitionerKind::kKdTree, schema, 2, 1.0), 2,
      1.0);
  const auto stats = engine.IngestBatch({});
  EXPECT_EQ(stats.chunks, 0);
  EXPECT_DOUBLE_EQ(stats.minutes, 0.0);
}

TEST(EdgeCaseTest, ScaleOutOfEmptyClusterIsCheap) {
  const ArraySchema schema = Grid2D(8);
  for (const auto kind : core::AllPartitionerKinds()) {
    core::ElasticEngine engine(core::MakePartitioner(kind, schema, 2, 1.0),
                               2, 1.0);
    const auto reorg = engine.ScaleOut(2);
    EXPECT_EQ(reorg.chunks_moved, 0) << core::PartitionerKindName(kind);
    EXPECT_DOUBLE_EQ(reorg.moved_gb, 0.0);
  }
}

TEST(EdgeCaseTest, SingleChunkArraySurvivesScaleOuts) {
  const ArraySchema schema = Grid2D(8);
  for (const auto kind : core::AllPartitionerKinds()) {
    core::ElasticEngine engine(core::MakePartitioner(kind, schema, 1, 1.0),
                               1, 1.0);
    engine.IngestBatch({ChunkInfo{{3, 3}, 100, 800}});
    engine.ScaleOut(1);
    engine.ScaleOut(2);
    EXPECT_EQ(engine.cluster().num_chunks(), 1);
    EXPECT_EQ(engine.partitioner().Locate({3, 3}),
              engine.cluster().OwnerOf({3, 3}))
        << core::PartitionerKindName(kind);
  }
}

TEST(EdgeCaseTest, FourDimensionalGrid) {
  const ArraySchema schema(
      "g4",
      {DimensionDesc{"a", 0, 7, 1, false}, DimensionDesc{"b", 0, 7, 1, false},
       DimensionDesc{"c", 0, 7, 1, false},
       DimensionDesc{"d", 0, 7, 1, false}},
      {AttributeDesc{"v", AttrType::kDouble}});
  util::Rng rng(17);
  for (const auto kind : core::AllPartitionerKinds()) {
    core::ElasticEngine engine(core::MakePartitioner(kind, schema, 2, 0.01),
                               2, 0.01);
    std::vector<ChunkInfo> batch;
    for (int i = 0; i < 300; ++i) {
      Coordinates c = {static_cast<int64_t>(rng.NextBounded(8)),
                       static_cast<int64_t>(rng.NextBounded(8)),
                       static_cast<int64_t>(rng.NextBounded(8)),
                       static_cast<int64_t>(rng.NextBounded(8))};
      if (engine.cluster().Contains(c)) continue;
      batch.push_back(ChunkInfo{c, 10, 50000});
      engine.IngestBatch({batch.back()});
    }
    const auto reorg = engine.ScaleOut(2);
    if (engine.partitioner().IsIncremental()) {
      EXPECT_TRUE(reorg.only_to_new_nodes)
          << core::PartitionerKindName(kind);
    }
    for (const auto& rec : engine.cluster().AllChunks()) {
      EXPECT_EQ(engine.partitioner().Locate(rec.coords), rec.node);
    }
  }
}

TEST(EdgeCaseTest, ScaleFarBeyondTestbed) {
  // Grow 2 -> 16 nodes one at a time under skew; invariants must hold the
  // whole way for every incremental scheme.
  const ArraySchema schema = Grid2D(32);
  util::Rng rng(23);
  for (const auto kind :
       {PartitionerKind::kConsistentHash, PartitionerKind::kExtendibleHash,
        PartitionerKind::kHilbertCurve, PartitionerKind::kKdTree,
        PartitionerKind::kIncrementalQuadtree}) {
    core::ElasticEngine engine(core::MakePartitioner(kind, schema, 2, 0.01),
                               2, 0.01);
    std::vector<ChunkInfo> batch;
    for (int64_t x = 0; x < 32; ++x) {
      for (int64_t y = 0; y < 32; ++y) {
        const bool hot = x < 4 && y < 4;
        batch.push_back(
            ChunkInfo{{x, y}, 10, hot ? 2000000 : 1000});
      }
    }
    engine.IngestBatch(batch);
    for (int n = 2; n < 16; ++n) {
      const auto reorg = engine.ScaleOut(1);
      EXPECT_TRUE(reorg.only_to_new_nodes)
          << core::PartitionerKindName(kind) << " at " << n + 1 << " nodes";
    }
    EXPECT_EQ(engine.cluster().num_nodes(), 16);
    EXPECT_EQ(engine.cluster().num_chunks(), 1024);
    for (const auto& rec : engine.cluster().AllChunks()) {
      ASSERT_EQ(engine.partitioner().Locate(rec.coords), rec.node);
    }
  }
}

TEST(EdgeCaseTest, QueryOverMissingRegionCostsStartupOnly) {
  const ArraySchema schema = Grid2D(8);
  cluster::Cluster cluster(2, 1.0);
  ASSERT_TRUE(cluster.PlaceChunk({0, 0}, 1000, 0).ok());
  exec::QueryEngine engine;
  exec::QuerySpec q;
  q.name = "empty";
  q.kind = exec::QueryKind::kWindow;
  q.region.lo = {6, 6};
  q.region.hi = {7, 7};
  const auto cost = engine.Simulate(q, cluster, schema);
  EXPECT_DOUBLE_EQ(cost.minutes, engine.params().startup_minutes);
  EXPECT_EQ(cost.remote_neighbor_fetches, 0);
}

TEST(EdgeCaseTest, ChunkHashIsStableAcrossProcessRuns) {
  // Placement stability depends on a fixed-salt hash; freeze a few values
  // so an accidental salt change cannot slip through silently.
  EXPECT_EQ(core::ChunkHash({0}), core::ChunkHash({0}));
  EXPECT_NE(core::ChunkHash({0}), core::ChunkHash({1}));
  EXPECT_NE(core::ChunkHash({0, 1}), core::ChunkHash({1, 0}));
  const uint64_t frozen = core::ChunkHash({3, 7, 11});
  EXPECT_EQ(core::ChunkHash({3, 7, 11}), frozen);
}

TEST(EdgeCaseTest, ProvisionerHandlesZeroPlanAhead) {
  core::StaircaseConfig cfg;
  cfg.node_capacity_gb = 10.0;
  cfg.samples = 1;
  cfg.plan_ahead = 0;  // Purely reactive controller.
  core::LeadingStaircase stair(cfg);
  stair.ObserveLoad(9.0);
  const auto d = stair.Evaluate(25.0, 1);
  // Deficit 15 GB -> 2 nodes regardless of the derivative.
  EXPECT_EQ(d.nodes_to_add, 2);
}

}  // namespace
}  // namespace arraydb
