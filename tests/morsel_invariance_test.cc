// Thread-count invariance suite for the morsel-driven operators: every
// parallelized operator must produce bit-identical results at threads in
// {1, 2, hardware} — the determinism contract of exec::MorselScheduler
// (fixed decomposition, per-morsel partials, fixed-order reduction). A
// small grain forces genuinely multi-morsel execution on the sample
// workloads, so parallel pickup and the combine path are exercised for
// real (this suite runs under the TSan CI job).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "array/array.h"
#include "array/cell_span.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "workload/sample_data.h"

namespace arraydb::exec {
namespace {

using array::Array;
using array::Coordinates;

// Small enough for TSan, large enough that grain 192 yields dozens of
// morsels across dozens of chunks.
class MorselInvarianceTest : public ::testing::Test {
 protected:
  MorselInvarianceTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)),
        ais_(workload::MakeSmallAisTracks(/*months=*/5, /*ships=*/120,
                                          /*seed=*/29)) {}

  static MorselOptions Opts(int threads, int64_t grain) {
    MorselOptions opts;
    opts.threads = threads;
    opts.grain_cells = grain;
    return opts;
  }

  // threads = 1 (the sequential definition), 2, and 0 = all hardware.
  static std::vector<int> ThreadCounts() { return {1, 2, 0}; }

  Array modis_;
  Array ais_;
};

TEST_F(MorselInvarianceTest, FilterBoxSpansInvariant) {
  const CellBox box{{0, 4, 2}, {2, 20, 12}};
  for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
    const FilterBoxView want = FilterBoxSpans(modis_, box, Opts(1, grain));
    for (const int threads : ThreadCounts()) {
      const FilterBoxView got = FilterBoxSpans(modis_, box,
                                               Opts(threads, grain));
      ASSERT_EQ(got.num_cells(), want.num_cells()) << "threads=" << threads;
      ASSERT_EQ(got.chunks().size(), want.chunks().size());
      for (size_t c = 0; c < want.chunks().size(); ++c) {
        EXPECT_EQ(got.chunks()[c].chunk, want.chunks()[c].chunk);
        EXPECT_EQ(got.chunks()[c].spans, want.chunks()[c].spans);
      }
    }
  }
}

TEST_F(MorselInvarianceTest, FilterBoxCountInvariant) {
  const CellBox box{{0, 0, 0}, {4, 31, 23}};
  const int64_t want = FilterBoxCount(ais_, box, Opts(1, 192));
  EXPECT_EQ(want, FilterBoxSpans(ais_, box, Opts(1, 192)).num_cells());
  for (const int threads : ThreadCounts()) {
    for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
      EXPECT_EQ(FilterBoxCount(ais_, box, Opts(threads, grain)), want)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST_F(MorselInvarianceTest, GroupBySumInvariant) {
  const std::vector<int64_t> bin = {2, 8, 8};
  // Sums are grain-dependent in the last ULPs (the grain fixes the
  // reduction boundaries) but must be bit-identical across thread counts
  // at any fixed grain.
  for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
    const auto want = GroupBySum(modis_, bin, /*attr=*/1, Opts(1, grain));
    for (const int threads : ThreadCounts()) {
      const auto got = GroupBySum(modis_, bin, 1, Opts(threads, grain));
      ASSERT_EQ(got.size(), want.size()) << "threads=" << threads;
      for (const auto& [key, sum] : want) {
        ASSERT_TRUE(got.contains(key));
        EXPECT_EQ(got.at(key), sum) << "threads=" << threads
                                    << " grain=" << grain;
      }
    }
  }
}

TEST_F(MorselInvarianceTest, AttrQuantileInvariantAndGrainStable) {
  // Order statistics are value properties of the multiset: invariant
  // across threads AND grains, for extremes and interior quantiles alike.
  const auto want_by_q = [&](double q) {
    const auto r = AttrQuantile(modis_, 1, q, Opts(1, 16384));
    EXPECT_TRUE(r.ok());
    return *r;
  };
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double want = want_by_q(q);
    for (const int threads : ThreadCounts()) {
      for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
        const auto got = AttrQuantile(modis_, 1, q, Opts(threads, grain));
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, want) << "q=" << q << " threads=" << threads
                              << " grain=" << grain;
      }
    }
  }
}

TEST_F(MorselInvarianceTest, WindowAverageAllInvariant) {
  const auto want = WindowAverageAll(modis_, /*attr=*/1, /*radius=*/1,
                                     Opts(1, 192));
  for (const int threads : ThreadCounts()) {
    for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
      const auto got = WindowAverageAll(modis_, 1, 1, Opts(threads, grain));
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first);
        EXPECT_EQ(got[i].second, want[i].second)
            << "threads=" << threads << " grain=" << grain << " pos " << i;
      }
    }
  }
}

TEST_F(MorselInvarianceTest, KnnAverageDistanceInvariant) {
  const auto want = KnnAverageDistance(ais_, /*k=*/5, /*samples=*/8,
                                       /*seed=*/11, Opts(1, 192));
  ASSERT_TRUE(want.ok());
  for (const int threads : ThreadCounts()) {
    for (const int64_t grain : {int64_t{192}, int64_t{16384}}) {
      const auto got = KnnAverageDistance(ais_, 5, 8, 11,
                                          Opts(threads, grain));
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, *want) << "threads=" << threads << " grain=" << grain;
    }
  }
}

// -- Scheduler primitives ---------------------------------------------------

TEST(MorselSchedulerTest, CarveIsPureAndCoversTheRange) {
  const auto morsels = MorselScheduler::Carve(10, 3);
  const std::vector<MorselRange> want = {{0, 3}, {3, 6}, {6, 9}, {9, 10}};
  EXPECT_EQ(morsels, want);
  EXPECT_TRUE(MorselScheduler::Carve(0, 3).empty());
  EXPECT_EQ(MorselScheduler::Carve(3, 100),
            (std::vector<MorselRange>{{0, 3}}));
}

TEST(MorselSchedulerTest, CarveByWeightClosesAtTheGrain) {
  // Runs close as soon as accumulated weight reaches the grain; the tail
  // run carries the remainder.
  const auto morsels =
      MorselScheduler::CarveByWeight({5, 1, 1, 5, 9, 2}, 6);
  const std::vector<MorselRange> want = {{0, 2}, {2, 4}, {4, 5}, {5, 6}};
  EXPECT_EQ(morsels, want);
  EXPECT_TRUE(MorselScheduler::CarveByWeight({}, 6).empty());
}

TEST(MorselSchedulerTest, ReduceCombinesInMorselOrderAtEveryThreadCount) {
  for (const int threads : {1, 2, 3, 0}) {
    MorselOptions opts;
    opts.threads = threads;
    const MorselScheduler scheduler(opts);
    const std::string got = scheduler.Reduce(
        MorselScheduler::Carve(23, 3), std::string(),
        [](size_t m, int64_t begin, int64_t end) {
          return std::to_string(m) + ":" + std::to_string(begin) + "-" +
                 std::to_string(end);
        },
        [](std::string& acc, std::string&& partial) {
          if (!acc.empty()) acc += "|";
          acc += partial;
        });
    EXPECT_EQ(got,
              "0:0-3|1:3-6|2:6-9|3:9-12|4:12-15|5:15-18|6:18-21|7:21-23")
        << "threads=" << threads;
  }
}

TEST(MorselSchedulerTest, DataPlaneKnobScopesAndRestores) {
  const int before = DataPlaneMorselOptions().threads;
  {
    ScopedDataPlaneThreads scoped(7);
    EXPECT_EQ(DataPlaneMorselOptions().threads, 7);
    SetDataPlaneThreads(3);
    EXPECT_EQ(DataPlaneMorselOptions().threads, 3);
  }
  EXPECT_EQ(DataPlaneMorselOptions().threads, before);
}

TEST(CellSpanSliceTest, ForEachSliceReassemblesTheGlobalOrder) {
  const Array modis = workload::MakeSmallModisBand(/*days=*/2, /*seed=*/5);
  const array::CellSpanView view(modis);
  const std::vector<double> column = view.GatherAttr(1);
  // Every split of [0, n) reassembles GatherAttr exactly, chunk runs in
  // global order.
  for (const int64_t step : {int64_t{1}, int64_t{7}, int64_t{64},
                             view.num_cells()}) {
    std::vector<double> rebuilt;
    for (int64_t begin = 0; begin < view.num_cells(); begin += step) {
      const int64_t end = std::min(begin + step, view.num_cells());
      view.ForEachSlice(begin, end,
                        [&rebuilt](const array::Chunk& chunk,
                                   size_t local_begin, size_t local_end) {
                          const auto& col = chunk.attr_column(1);
                          rebuilt.insert(
                              rebuilt.end(),
                              col.begin() + static_cast<int64_t>(local_begin),
                              col.begin() + static_cast<int64_t>(local_end));
                        });
    }
    EXPECT_EQ(rebuilt, column) << "step=" << step;
  }
}

}  // namespace
}  // namespace arraydb::exec
