// Tests for the workload generators: volumes, skew statistics (calibrated
// to §3.1-3.2), determinism, and benchmark query construction.

#include <gtest/gtest.h>

#include <algorithm>

#include "util/stats.h"
#include "util/units.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/sample_data.h"

namespace arraydb::workload {
namespace {

double BatchGb(const std::vector<array::ChunkInfo>& batch) {
  double gb = 0.0;
  for (const auto& c : batch) {
    gb += util::BytesToGb(static_cast<double>(c.bytes));
  }
  return gb;
}

// Fraction of total bytes held by the largest `fraction` of chunks.
double TopShare(const std::vector<array::ChunkInfo>& batch, double fraction) {
  std::vector<double> sizes;
  sizes.reserve(batch.size());
  double total = 0.0;
  for (const auto& c : batch) {
    sizes.push_back(static_cast<double>(c.bytes));
    total += static_cast<double>(c.bytes);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  const size_t top = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(sizes.size())));
  double top_sum = 0.0;
  for (size_t i = 0; i < top; ++i) top_sum += sizes[i];
  return top_sum / total;
}

// ------------------------------------------------------------------ MODIS --

TEST(ModisTest, SchemaMatchesPaper) {
  ModisWorkload modis;
  EXPECT_EQ(modis.schema().num_dims(), 3);
  EXPECT_EQ(modis.schema().num_attrs(), 7);
  const auto extents = modis.schema().ChunkGridExtents();
  EXPECT_EQ(extents[0], 14);  // 14 daily cycles.
  EXPECT_EQ(extents[1], 30);  // 360 degrees / 12.
  EXPECT_EQ(extents[2], 15);  // 180 degrees / 12.
}

TEST(ModisTest, DailyVolumeNear45Gb) {
  ModisWorkload modis;
  double total = 0.0;
  for (int day = 0; day < modis.num_cycles(); ++day) {
    const double gb = BatchGb(modis.GenerateBatch(day));
    EXPECT_GT(gb, 30.0);
    EXPECT_LT(gb, 60.0);
    total += gb;
  }
  // ~630 GB over 14 days (§6.1).
  EXPECT_NEAR(total, 630.0, 60.0);
}

TEST(ModisTest, MildSkewTop5PercentHoldsAbout10Percent) {
  ModisWorkload modis;
  const auto batch = modis.GenerateBatch(3);
  const double share = TopShare(batch, 0.05);
  EXPECT_GT(share, 0.07);
  EXPECT_LT(share, 0.16);  // Paper: "top 5% of chunks constitute only 10%".
}

TEST(ModisTest, BatchesAreDeterministic) {
  ModisWorkload a;
  ModisWorkload b;
  const auto ba = a.GenerateBatch(5);
  const auto bb = b.GenerateBatch(5);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].coords, bb[i].coords);
    EXPECT_EQ(ba[i].bytes, bb[i].bytes);
  }
}

TEST(ModisTest, ChunksCoverOneDayEach) {
  ModisWorkload modis;
  const auto batch = modis.GenerateBatch(7);
  EXPECT_EQ(batch.size(), 30u * 15u);
  for (const auto& c : batch) {
    EXPECT_EQ(c.coords[0], 7);
    EXPECT_TRUE(modis.schema().ChunkInBounds(c.coords));
  }
}

TEST(ModisTest, QuerySuitesAreComplete) {
  ModisWorkload modis;
  const auto spj = modis.SpjQueries(5);
  ASSERT_EQ(spj.size(), 3u);  // Selection, sort, join (§3.3.1).
  EXPECT_EQ(spj[0].kind, exec::QueryKind::kFilter);
  EXPECT_EQ(spj[1].kind, exec::QueryKind::kSortQuantile);
  EXPECT_EQ(spj[2].kind, exec::QueryKind::kDimJoin);
  // The join touches only the most recent day.
  EXPECT_EQ(spj[2].region.lo[0], 5);
  EXPECT_EQ(spj[2].region.hi[0], 5);

  const auto science = modis.ScienceQueries(5);
  ASSERT_EQ(science.size(), 4u);  // Stats x2 (poles), k-means, window.
  EXPECT_EQ(science[2].kind, exec::QueryKind::kKMeans);
  EXPECT_EQ(science[3].kind, exec::QueryKind::kWindow);
}

// -------------------------------------------------------------------- AIS --

TEST(AisTest, SchemaMatchesPaper) {
  AisWorkload ais;
  EXPECT_EQ(ais.schema().num_dims(), 3);
  EXPECT_EQ(ais.schema().num_attrs(), 10);
  const auto extents = ais.schema().ChunkGridExtents();
  EXPECT_EQ(extents[0], 40);
  EXPECT_EQ(extents[1], 29);  // (-180..-67) / 4.
  EXPECT_EQ(extents[2], 23);  // (0..90) / 4.
  EXPECT_EQ(ais.num_cycles(), 10);
}

TEST(AisTest, TotalVolumeNear400Gb) {
  AisWorkload ais;
  double total = 0.0;
  for (int cycle = 0; cycle < ais.num_cycles(); ++cycle) {
    total += BatchGb(ais.GenerateBatch(cycle));
  }
  EXPECT_NEAR(total, 400.0, 40.0);
}

TEST(AisTest, ExtremeSkewMatchesPaperStatistics) {
  AisWorkload ais;
  // Accumulate all chunks of the full dataset (as the paper reports the
  // distribution over the whole corpus).
  std::vector<array::ChunkInfo> all;
  for (int cycle = 0; cycle < ais.num_cycles(); ++cycle) {
    const auto batch = ais.GenerateBatch(cycle);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  // "Nearly 85% of the data resides in just 5% of the chunks."
  const double share = TopShare(all, 0.05);
  EXPECT_GT(share, 0.75);
  EXPECT_LT(share, 0.97);
  // "Median size of 924 bytes": most chunks are background noise.
  std::vector<double> sizes;
  for (const auto& c : all) sizes.push_back(static_cast<double>(c.bytes));
  const double median = util::Median(sizes);
  EXPECT_GT(median, 200.0);
  EXPECT_LT(median, 5000.0);
}

TEST(AisTest, SeasonalVolumesVary) {
  AisWorkload ais;
  std::vector<double> cycle_gb;
  for (int cycle = 0; cycle < ais.num_cycles(); ++cycle) {
    cycle_gb.push_back(BatchGb(ais.GenerateBatch(cycle)));
  }
  // Shipping peaks near the holidays: relative spread must be noticeable
  // (this is what makes s=1 win the Table 2 tuning for AIS).
  EXPECT_GT(util::RelativeStdev(cycle_gb), 0.05);
}

TEST(AisTest, HoustonIsHot) {
  AisWorkload ais;
  const auto batch = ais.GenerateBatch(0);
  // Find the Houston chunk (lon -95 -> chunk 21, lat 29 -> chunk 7) in
  // month 0 and compare to a mid-ocean chunk.
  int64_t houston = 0;
  int64_t ocean = 0;
  for (const auto& c : batch) {
    if (c.coords[0] != 0) continue;
    if (c.coords[1] == 21 && c.coords[2] == 7) houston = c.bytes;
    if (c.coords[1] == 10 && c.coords[2] == 15) ocean = c.bytes;
  }
  EXPECT_GT(houston, ocean * 100);
}

TEST(AisTest, QuerySuitesAreComplete) {
  AisWorkload ais;
  const auto spj = ais.SpjQueries(2);
  ASSERT_EQ(spj.size(), 3u);
  EXPECT_EQ(spj[0].kind, exec::QueryKind::kFilter);
  EXPECT_EQ(spj[2].kind, exec::QueryKind::kAttrJoin);
  EXPECT_GT(spj[2].small_side_gb, 0.0);  // Replicated vessel array.

  const auto science = ais.ScienceQueries(2);
  ASSERT_EQ(science.size(), 3u);
  EXPECT_EQ(science[1].kind, exec::QueryKind::kKnn);
  EXPECT_EQ(science[1].name, AisWorkload::kKnnQueryName);
}

TEST(AisTest, BatchesAreDeterministic) {
  AisWorkload a;
  AisWorkload b;
  const auto ba = a.GenerateBatch(3);
  const auto bb = b.GenerateBatch(3);
  ASSERT_EQ(ba.size(), bb.size());
  for (size_t i = 0; i < ba.size(); ++i) {
    EXPECT_EQ(ba[i].coords, bb[i].coords);
    EXPECT_EQ(ba[i].bytes, bb[i].bytes);
  }
}

// ----------------------------------------------------------- Sample data --

TEST(SampleDataTest, SmallModisHasLandOceanContrast) {
  const auto band = MakeSmallModisBand(3, 77);
  EXPECT_GT(band.total_cells(), 500);
  // Land chunks (lon < 20) should be denser than ocean.
  int64_t land = 0;
  int64_t ocean = 0;
  for (const auto& [coords, chunk] : band.chunks()) {
    if (coords[1] < 5) {
      land += chunk.cell_count();
    } else if (coords[1] >= 6) {
      ocean += chunk.cell_count();
    }
  }
  EXPECT_GT(land, ocean);
}

TEST(SampleDataTest, SmallAisClustersAtPorts) {
  const auto tracks = MakeSmallAisTracks(6, 200, 13);
  EXPECT_GT(tracks.total_cells(), 300);
  // Port chunks should far outweigh open-water chunks.
  int64_t port_cells = 0;
  for (const auto& [coords, chunk] : tracks.chunks()) {
    const bool near_port =
        (std::abs(coords[1] - 1) <= 1 && std::abs(coords[2] - 1) <= 1) ||
        (std::abs(coords[1] - 6) <= 1 && std::abs(coords[2] - 4) <= 1);
    if (near_port) port_cells += chunk.cell_count();
  }
  EXPECT_GT(static_cast<double>(port_cells),
            0.4 * static_cast<double>(tracks.total_cells()));
}

}  // namespace
}  // namespace arraydb::workload
