// Tests for the thread pool and the deterministic chunk-parallel
// ingest/placement fast path: any thread count must produce exactly the
// sequential results (ordered merge), and the pool must execute every
// submitted task exactly once.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/hilbert_partitioner.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/runner.h"

namespace arraydb {
namespace {

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  // Declared before the pool so the pool joins its workers before the
  // condition variable is destroyed; the final task notifies under the
  // mutex so the wakeup cannot slip between the waiter's predicate check
  // and its sleep.
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  util::ThreadPool pool(3);
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      if (done.fetch_add(1) + 1 == kTasks) {
        const std::lock_guard<std::mutex> guard(mu);
        cv.notify_one();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load() == kTasks; });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (const int shards : {1, 2, 3, 8, 64}) {
    constexpr int64_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    util::ParallelFor(kN, shards, [&hits](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
    });
    for (int64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "shards=" << shards << " i=" << i;
    }
  }
}

TEST(ParallelForTest, EmptyAndTinyRangesDegradeGracefully) {
  int calls = 0;
  util::ParallelFor(0, 4, [&calls](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::vector<int> hits(3, 0);
  util::ParallelFor(3, 16, [&hits](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

array::ArraySchema GridSchema() {
  return array::ArraySchema(
      "grid",
      {array::DimensionDesc{"t", 0, 31, 1, false},
       array::DimensionDesc{"x", 0, 31, 1, false},
       array::DimensionDesc{"y", 0, 31, 1, false}},
      {array::AttributeDesc{"v", array::AttrType::kDouble}});
}

TEST(PrewarmPlacementTest, ParallelPrewarmIsPlacementNeutral) {
  const auto schema = GridSchema();
  std::vector<array::ChunkInfo> batch;
  util::Rng rng(11);
  for (int i = 0; i < 512; ++i) {
    array::ChunkInfo info;
    info.coords = {static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32)),
                   static_cast<int64_t>(rng.NextBounded(32))};
    info.bytes = 1 << 16;
    batch.push_back(info);
  }
  core::HilbertPartitioner cold(schema, 4, /*growth_dim=*/0);
  core::HilbertPartitioner warm(schema, 4, /*growth_dim=*/0);
  warm.PrewarmPlacement(batch, 4);
  cluster::Cluster cluster(4, 100.0);
  for (const auto& info : batch) {
    EXPECT_EQ(warm.PlaceChunk(cluster, info), cold.PlaceChunk(cluster, info));
    EXPECT_EQ(warm.RankOf(info.coords), cold.RankOf(info.coords));
    EXPECT_EQ(warm.Locate(info.coords), cold.Locate(info.coords));
  }
}

TEST(PrewarmPlacementTest, MemoizedRankStaysStableAcrossRepeatedLookups) {
  const auto schema = GridSchema();
  core::HilbertPartitioner partitioner(schema, 2, /*growth_dim=*/0);
  const array::Coordinates coords = {5, 17, 9};
  const uint64_t first = partitioner.RankOf(coords);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(partitioner.RankOf(coords), first);
  }
}

// The full workload runner must be bit-identical between sequential and
// chunk-parallel ingest, for every partitioner-relevant metric.
TEST(ParallelIngestTest, RunnerMetricsIdenticalAcrossThreadCounts) {
  workload::AisWorkload ais;
  workload::RunResult results[3];
  const int thread_counts[3] = {1, 4, 0 /* hardware concurrency */};
  for (int i = 0; i < 3; ++i) {
    workload::RunnerConfig cfg;
    cfg.partitioner = core::PartitionerKind::kHilbertCurve;
    cfg.initial_nodes = 2;
    cfg.nodes_per_scaleout = 2;
    cfg.max_nodes = 8;
    cfg.run_queries = false;
    cfg.ingest.threads = thread_counts[i];
    results[i] = workload::WorkloadRunner(cfg).Run(ais);
  }
  for (int i = 1; i < 3; ++i) {
    ASSERT_EQ(results[i].cycles.size(), results[0].cycles.size());
    EXPECT_EQ(results[i].cost_node_hours, results[0].cost_node_hours);
    EXPECT_EQ(results[i].mean_rsd, results[0].mean_rsd);
    EXPECT_EQ(results[i].final_nodes, results[0].final_nodes);
    for (size_t c = 0; c < results[0].cycles.size(); ++c) {
      const auto& a = results[0].cycles[c];
      const auto& b = results[i].cycles[c];
      EXPECT_EQ(b.nodes_after, a.nodes_after);
      EXPECT_EQ(b.load_gb, a.load_gb);
      EXPECT_EQ(b.insert_minutes, a.insert_minutes);
      EXPECT_EQ(b.reorg_minutes, a.reorg_minutes);
      EXPECT_EQ(b.rsd, a.rsd);
      EXPECT_EQ(b.chunks_moved, a.chunks_moved);
    }
  }
}

TEST(ResolveThreadCountTest, PositiveValuesPassThrough) {
  EXPECT_EQ(util::ResolveThreadCount(1), 1);
  EXPECT_EQ(util::ResolveThreadCount(7), 7);
}

TEST(ResolveThreadCountTest, ZeroAndNegativeResolveToHardwareConcurrency) {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_EQ(util::ResolveThreadCount(0), hw);
  EXPECT_EQ(util::ResolveThreadCount(-3), hw);
  EXPECT_GE(util::ResolveThreadCount(0), 1);
}

}  // namespace
}  // namespace arraydb
