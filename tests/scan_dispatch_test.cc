// Operator-level dispatch equivalence on the AIS and MODIS sample
// workloads: forcing the scalar fallback and forcing AVX2 must produce
// bit-identical FilterBox / quantile / group-by / kNN results. Also the
// AllCells-free kNN regression test: the span-view implementation must
// reproduce the legacy materializing implementation exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "array/array.h"
#include "array/cell_span.h"
#include "exec/operators.h"
#include "simd/dispatch.h"
#include "util/rng.h"
#include "workload/sample_data.h"

namespace arraydb::exec {
namespace {

using array::Array;
using array::Cell;
using array::Coordinates;
using simd::DispatchLevel;
using simd::ScopedDispatch;

bool Avx2Usable() {
  const ScopedDispatch probe(DispatchLevel::kAvx2);
  return probe.ok();
}

class ScanDispatchTest : public ::testing::Test {
 protected:
  ScanDispatchTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)),
        ais_(workload::MakeSmallAisTracks(/*months=*/5, /*ships=*/120,
                                          /*seed=*/29)) {}

  Array modis_;
  Array ais_;
};

std::vector<std::vector<std::pair<uint32_t, uint32_t>>> SpansOf(
    const FilterBoxView& view) {
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> out;
  for (const auto& cs : view.chunks()) out.push_back(cs.spans);
  return out;
}

TEST_F(ScanDispatchTest, FilterBoxIdenticalAcrossDispatch) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  const std::vector<std::pair<const Array*, CellBox>> cases = {
      {&modis_, CellBox{{0, 4, 2}, {2, 20, 12}}},
      {&modis_, CellBox{{3, 30, 14}, {3, 31, 15}}},  // Prunes everything.
      {&ais_, CellBox{{0, 3, 3}, {4, 9, 9}}},
      {&ais_, CellBox{{0, 0, 0}, {4, 31, 23}}},  // Selects everything.
  };
  for (const auto& [arr, box] : cases) {
    FilterBoxView scalar_view, avx2_view;
    std::vector<Cell> scalar_cells, avx2_cells;
    {
      const ScopedDispatch forced(DispatchLevel::kScalar);
      scalar_view = FilterBoxSpans(*arr, box);
      scalar_cells = scalar_view.Materialize();
    }
    {
      const ScopedDispatch forced(DispatchLevel::kAvx2);
      avx2_view = FilterBoxSpans(*arr, box);
      avx2_cells = avx2_view.Materialize();
    }
    EXPECT_EQ(scalar_view.num_cells(), avx2_view.num_cells());
    EXPECT_EQ(SpansOf(scalar_view), SpansOf(avx2_view));
    ASSERT_EQ(scalar_cells.size(), avx2_cells.size());
    for (size_t i = 0; i < scalar_cells.size(); ++i) {
      EXPECT_EQ(scalar_cells[i].pos, avx2_cells[i].pos);
      EXPECT_EQ(scalar_cells[i].values, avx2_cells[i].values);
    }
  }
}

TEST_F(ScanDispatchTest, FilterBoxCountMatchesSpansAcrossDispatch) {
  const std::vector<std::pair<const Array*, CellBox>> cases = {
      {&modis_, CellBox{{0, 4, 2}, {2, 20, 12}}},
      {&modis_, CellBox{{3, 30, 14}, {3, 31, 15}}},
      {&ais_, CellBox{{0, 3, 3}, {4, 9, 9}}},
      {&ais_, CellBox{{0, 0, 0}, {4, 31, 23}}},
  };
  for (const auto& [arr, box] : cases) {
    const int64_t want = FilterBoxSpans(*arr, box).num_cells();
    EXPECT_EQ(FilterBoxCount(*arr, box), want);
    if (Avx2Usable()) {
      int64_t scalar_count, avx2_count;
      {
        const ScopedDispatch forced(DispatchLevel::kScalar);
        scalar_count = FilterBoxCount(*arr, box);
      }
      {
        const ScopedDispatch forced(DispatchLevel::kAvx2);
        avx2_count = FilterBoxCount(*arr, box);
      }
      EXPECT_EQ(scalar_count, want);
      EXPECT_EQ(avx2_count, want);
    }
  }
}

TEST_F(ScanDispatchTest, QuantileIdenticalAcrossDispatch) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    for (int attr = 0; attr < 3; ++attr) {
      double scalar_q, avx2_q;
      {
        const ScopedDispatch forced(DispatchLevel::kScalar);
        const auto r = AttrQuantile(modis_, attr, q);
        ASSERT_TRUE(r.ok());
        scalar_q = *r;
      }
      {
        const ScopedDispatch forced(DispatchLevel::kAvx2);
        const auto r = AttrQuantile(modis_, attr, q);
        ASSERT_TRUE(r.ok());
        avx2_q = *r;
      }
      EXPECT_EQ(scalar_q, avx2_q) << "attr=" << attr << " q=" << q;
    }
  }
}

TEST_F(ScanDispatchTest, GroupBySumIdenticalAcrossDispatch) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  // Radiance (attr 1) is non-integral, so this exercises the Sum kernel's
  // cross-variant bit-identity, not just integer luck.
  const std::vector<int64_t> bin = {2, 8, 8};
  std::map<Coordinates, double> scalar_groups, avx2_groups;
  {
    const ScopedDispatch forced(DispatchLevel::kScalar);
    scalar_groups = GroupBySum(modis_, bin, /*attr=*/1);
  }
  {
    const ScopedDispatch forced(DispatchLevel::kAvx2);
    avx2_groups = GroupBySum(modis_, bin, /*attr=*/1);
  }
  ASSERT_EQ(scalar_groups.size(), avx2_groups.size());
  for (const auto& [key, sum] : scalar_groups) {
    ASSERT_TRUE(avx2_groups.contains(key));
    EXPECT_EQ(avx2_groups.at(key), sum);  // Bit-identical, not just close.
  }
}

TEST_F(ScanDispatchTest, KnnIdenticalAcrossDispatch) {
  if (!Avx2Usable()) GTEST_SKIP() << "AVX2 unavailable";
  double scalar_knn, avx2_knn;
  {
    const ScopedDispatch forced(DispatchLevel::kScalar);
    const auto r = KnnAverageDistance(ais_, /*k=*/5, /*samples=*/16,
                                      /*seed=*/77);
    ASSERT_TRUE(r.ok());
    scalar_knn = *r;
  }
  {
    const ScopedDispatch forced(DispatchLevel::kAvx2);
    const auto r = KnnAverageDistance(ais_, /*k=*/5, /*samples=*/16,
                                      /*seed=*/77);
    ASSERT_TRUE(r.ok());
    avx2_knn = *r;
  }
  EXPECT_EQ(scalar_knn, avx2_knn);
}

// The legacy kNN implementation, over materialized AllCells() — kept here
// as the reference the span-view implementation must reproduce exactly.
double ReferenceKnnAverageDistance(const Array& array, int k, int samples,
                                   uint64_t seed) {
  const auto cells = array.AllCells();
  util::Rng rng(seed);
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    const size_t idx = static_cast<size_t>(rng.NextBounded(cells.size()));
    const auto& origin = cells[idx].pos;
    std::vector<double> dists;
    dists.reserve(cells.size() - 1);
    for (size_t j = 0; j < cells.size(); ++j) {
      if (j == idx) continue;
      double dist = 0.0;
      for (size_t d = 0; d < origin.size(); ++d) {
        const double diff = static_cast<double>(cells[j].pos[d] - origin[d]);
        dist += diff * diff;
      }
      dists.push_back(std::sqrt(dist));
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    double sum = 0.0;
    for (int i = 0; i < k; ++i) sum += dists[static_cast<size_t>(i)];
    total += sum / static_cast<double>(k);
  }
  return total / static_cast<double>(samples);
}

TEST_F(ScanDispatchTest, KnnSpanViewMatchesAllCellsReference) {
  for (const auto& [arr, name] :
       {std::pair<const Array*, const char*>{&ais_, "ais"},
        std::pair<const Array*, const char*>{&modis_, "modis"}}) {
    const auto got = KnnAverageDistance(*arr, /*k=*/4, /*samples=*/12,
                                        /*seed=*/3);
    ASSERT_TRUE(got.ok()) << name;
    EXPECT_EQ(*got, ReferenceKnnAverageDistance(*arr, 4, 12, 3)) << name;
  }
}

TEST_F(ScanDispatchTest, CellSpanViewMatchesAllCellsOrder) {
  const array::CellSpanView view(ais_);
  const auto cells = ais_.AllCells();
  ASSERT_EQ(view.num_cells(), static_cast<int64_t>(cells.size()));
  view.ForEachCell([&](const array::Chunk& chunk, size_t i, int64_t global) {
    const auto& want = cells[static_cast<size_t>(global)];
    const int64_t* pos = chunk.cell_pos(i);
    const Coordinates got_pos(pos, pos + chunk.num_dims());
    EXPECT_EQ(got_pos, want.pos) << "global=" << global;
    for (size_t a = 0; a < chunk.num_attrs(); ++a) {
      EXPECT_EQ(chunk.attr_value(a, i), want.values[a]);
    }
    // Locate() inverts the global enumeration.
    const auto loc = view.Locate(global);
    EXPECT_EQ(loc.chunk, &chunk);
    EXPECT_EQ(loc.index, i);
  });
  // GatherAttr packs columns in the same global order.
  const auto col = view.GatherAttr(0);
  ASSERT_EQ(col.size(), cells.size());
  for (size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(col[i], cells[i].values[0]);
  }
}

}  // namespace
}  // namespace arraydb::exec
