// Unit tests for the incremental reorganization subsystem: Cluster's
// copy-then-flip staging, the IncrementalReorgEngine, and the
// dual-residency routing view.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "exec/engine.h"
#include "reorg/dual_residency.h"
#include "reorg/reorg_engine.h"
#include "util/units.h"

namespace arraydb::reorg {
namespace {

using cluster::ChunkMove;
using cluster::Cluster;
using cluster::CostModel;
using cluster::MovePlan;
using cluster::NodeId;

constexpr int64_t kMiB = 1024 * 1024;

// 2 nodes, 8 chunks of 64 MiB each on node 0, then 2 empty nodes added.
// Returns the plan moving chunks {4..7} to node 2.
struct Fixture {
  Cluster cluster{2, 1.0};
  NodeId first_new = cluster::kInvalidNode;
  MovePlan plan;

  Fixture() {
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(cluster.PlaceChunk({i}, 64 * kMiB, 0).ok());
    }
    first_new = cluster.AddNodes(2);
    for (int64_t i = 4; i < 8; ++i) {
      plan.Add(ChunkMove{{i}, 64 * kMiB, 0, first_new});
    }
  }
};

TEST(ClusterIncrementalTest, BeginValidatesLikeApply) {
  Fixture f;
  MovePlan unknown;
  unknown.Add(ChunkMove{{99}, 64 * kMiB, 0, 2});
  EXPECT_EQ(f.cluster.BeginApply(unknown).code(),
            util::StatusCode::kNotFound);

  MovePlan wrong_owner;
  wrong_owner.Add(ChunkMove{{1}, 64 * kMiB, 1, 2});
  EXPECT_EQ(f.cluster.BeginApply(wrong_owner).code(),
            util::StatusCode::kFailedPrecondition);

  // A failed Begin leaves the cluster idle.
  EXPECT_FALSE(f.cluster.reorg_active());
}

TEST(ClusterIncrementalTest, EmptyPlanIsANoOp) {
  Fixture f;
  EXPECT_TRUE(f.cluster.BeginApply(MovePlan()).ok());
  EXPECT_FALSE(f.cluster.reorg_active());
  // A normal Apply still works afterwards.
  EXPECT_TRUE(f.cluster.Apply(f.plan).ok());
}

TEST(ClusterIncrementalTest, AtomicApplyRefusedWhileActive) {
  Fixture f;
  ASSERT_TRUE(f.cluster.BeginApply(f.plan).ok());
  EXPECT_EQ(f.cluster.Apply(f.plan).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(f.cluster.BeginApply(f.plan).code(),
            util::StatusCode::kFailedPrecondition);
  f.cluster.AbortReorg();
  EXPECT_FALSE(f.cluster.reorg_active());
}

TEST(ClusterIncrementalTest, BudgetSlicingTakesAtLeastOneMove) {
  Fixture f;
  ASSERT_TRUE(f.cluster.BeginApply(f.plan).ok());
  // Budget below one chunk still yields one move per increment.
  auto slice = f.cluster.AdvanceIncrement(1);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->num_chunks(), 1);
  // No second advance while in flight.
  EXPECT_EQ(f.cluster.AdvanceIncrement(1).status().code(),
            util::StatusCode::kFailedPrecondition);
  ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  // Budget of two chunks takes exactly two.
  slice = f.cluster.AdvanceIncrement(128 * kMiB);
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->num_chunks(), 2);
  ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  EXPECT_EQ(f.cluster.pending_reorg_chunks(), 1);
}

TEST(ClusterIncrementalTest, CommitFlipsOwnershipAndAccounting) {
  Fixture f;
  ASSERT_TRUE(f.cluster.BeginApply(f.plan).ok());
  auto slice = f.cluster.AdvanceIncrement(128 * kMiB);
  ASSERT_TRUE(slice.ok());
  // Before commit the authoritative owner is still the source.
  EXPECT_EQ(f.cluster.OwnerOf({4}), 0);
  ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  EXPECT_EQ(f.cluster.OwnerOf({4}), 2);
  EXPECT_EQ(f.cluster.OwnerOf({5}), 2);
  EXPECT_EQ(f.cluster.OwnerOf({6}), 0);  // Not yet migrated.
  EXPECT_EQ(f.cluster.NodeBytes(2), 2 * 64 * kMiB);
  EXPECT_EQ(f.cluster.NodeChunkCount(2), 2);
  // Source replicas are retained for routing until FinishApply.
  EXPECT_EQ(f.cluster.SourceReplicaOf({4}), 0);
  EXPECT_EQ(f.cluster.SourceReplicaOf({0}), cluster::kInvalidNode);
}

TEST(ClusterIncrementalTest, FinishRequiresFullCommit) {
  Fixture f;
  ASSERT_TRUE(f.cluster.BeginApply(f.plan).ok());
  EXPECT_EQ(f.cluster.FinishApply().code(),
            util::StatusCode::kFailedPrecondition);
  while (f.cluster.pending_reorg_chunks() > 0) {
    ASSERT_TRUE(f.cluster.AdvanceIncrement(64 * kMiB).ok());
    ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  }
  const uint64_t epoch = f.cluster.reorg_epoch();
  ASSERT_TRUE(f.cluster.FinishApply().ok());
  EXPECT_GT(f.cluster.reorg_epoch(), epoch);
  EXPECT_FALSE(f.cluster.reorg_active());
  EXPECT_EQ(f.cluster.SourceReplicaOf({4}), cluster::kInvalidNode);
  // Final placement matches the atomic path.
  Fixture g;
  ASSERT_TRUE(g.cluster.Apply(g.plan).ok());
  EXPECT_EQ(f.cluster.AllChunks().size(), g.cluster.AllChunks().size());
  const auto fa = f.cluster.AllChunks();
  const auto ga = g.cluster.AllChunks();
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].node, ga[i].node);
    EXPECT_EQ(fa[i].bytes, ga[i].bytes);
  }
}

TEST(DualResidencyViewTest, RoutesReadsToSourceUntilRelease) {
  Fixture f;
  DualResidencyView view(f.cluster);
  // Quiesced: exact pass-through.
  EXPECT_EQ(view.OwnerOf({4}), 0);
  EXPECT_FALSE(view.IsDualResident({4}));

  ASSERT_TRUE(f.cluster.BeginApply(f.plan).ok());
  ASSERT_TRUE(f.cluster.AdvanceIncrement(256 * kMiB).ok());
  ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  // Authoritative owner flipped, but reads stay pinned to the source.
  EXPECT_EQ(f.cluster.OwnerOf({4}), 2);
  EXPECT_EQ(view.OwnerOf({4}), 0);
  EXPECT_TRUE(view.IsDualResident({4}));
  NodeId node = cluster::kInvalidNode;
  int64_t bytes = 0;
  ASSERT_TRUE(view.Lookup({4}, &node, &bytes));
  EXPECT_EQ(node, 0);
  EXPECT_EQ(bytes, 64 * kMiB);
  int64_t on_source = 0;
  view.ForEachChunk([&](const array::Coordinates&, NodeId n, int64_t) {
    if (n == 0) ++on_source;
  });
  EXPECT_EQ(on_source, 8);  // All chunks still read from node 0.

  while (f.cluster.pending_reorg_chunks() > 0) {
    ASSERT_TRUE(f.cluster.AdvanceIncrement(256 * kMiB).ok());
    ASSERT_TRUE(f.cluster.CommitIncrement().ok());
  }
  ASSERT_TRUE(f.cluster.FinishApply().ok());
  EXPECT_EQ(view.OwnerOf({4}), 2);  // Released: routed to the new owner.
  EXPECT_FALSE(view.IsDualResident({4}));
}

TEST(ReorgEngineTest, DrainsInBudgetedIncrements) {
  Fixture f;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(128.0 * kMiB);
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  EXPECT_TRUE(engine.active());
  EXPECT_EQ(engine.pending_chunks(), 4);
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_FALSE(engine.active());
  const auto& s = engine.summary();
  EXPECT_EQ(s.increments, 2);  // 4 chunks, 2 per 128 MiB budget.
  EXPECT_EQ(s.chunks_moved, 4);
  EXPECT_TRUE(s.only_to_new_nodes);
  EXPECT_GT(s.work_minutes, 0.0);
  // Slicing pays a per-increment tax relative to the one-shot price.
  EXPECT_GE(s.slice_minutes, s.work_minutes);
  EXPECT_EQ(s.moved_gb_per_increment.size(), 2u);
  EXPECT_DOUBLE_EQ(s.moved_gb_per_increment[0] + s.moved_gb_per_increment[1],
                   s.moved_gb);
}

TEST(ReorgEngineTest, SingleIncrementWhenBudgetCoversThePlan) {
  Fixture f;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = 1024.0;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.summary().increments, 1);
  // One increment carries no slicing tax.
  EXPECT_DOUBLE_EQ(engine.summary().slice_minutes,
                   engine.summary().work_minutes);
}

TEST(ReorgEngineTest, RejectsNonPositiveIncrementBudgetAtBegin) {
  // Previously an unchecked constructor abort; now a clean InvalidArgument
  // that leaves the cluster idle.
  for (const double bad : {0.0, -8.0}) {
    Fixture f;
    CostModel model;
    ReorgOptions opts;
    opts.increment_gb = bad;
    IncrementalReorgEngine engine(&f.cluster, &model, opts);
    EXPECT_EQ(engine.Begin(f.plan, f.first_new).code(),
              util::StatusCode::kInvalidArgument)
        << bad;
    EXPECT_FALSE(f.cluster.reorg_active());
    // The cluster is untouched: a fresh engine still reorganizes.
    IncrementalReorgEngine ok(&f.cluster, &model);
    ASSERT_TRUE(ok.Begin(f.plan, f.first_new).ok());
    ASSERT_TRUE(ok.Drain().ok());
  }
}

TEST(ReorgEngineTest, OverBudgetIncrementsAreReported) {
  // A budget below one move still advances (the at-least-one-move rule),
  // but the overshoot is no longer silent.
  Fixture f;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(1.0);  // One byte.
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  while (engine.pending_chunks() > 0) {
    auto stats = engine.Step();
    ASSERT_TRUE(stats.ok());
    EXPECT_TRUE(stats->over_budget);
    EXPECT_NEAR(stats->over_budget_gb,
                util::BytesToGb(64.0 * kMiB - 1.0), 1e-12);
  }
  const auto& s = engine.summary();
  EXPECT_EQ(s.over_budget_increments, 4);
  EXPECT_NEAR(s.over_budget_gb, 4.0 * util::BytesToGb(64.0 * kMiB - 1.0),
              1e-12);
  ASSERT_TRUE(engine.Finish().ok());
}

TEST(ReorgEngineTest, WithinBudgetIncrementsReportNoOvershoot) {
  Fixture f;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(128.0 * kMiB);
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.summary().over_budget_increments, 0);
  EXPECT_DOUBLE_EQ(engine.summary().over_budget_gb, 0.0);
}

TEST(ReorgEngineTest, NonPositiveCallbackBudgetClampsToOneByteFloor) {
  Fixture f;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = -1.0;  // Irrelevant: the callback takes precedence.
  opts.budget_fn = [](const BudgetRequest&) { return -5.0; };
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  ASSERT_TRUE(engine.Drain().ok());
  const auto& s = engine.summary();
  // Clamped to the one-byte floor: one move per increment, all flagged.
  EXPECT_EQ(s.increments, 4);
  EXPECT_EQ(s.over_budget_increments, 4);
  EXPECT_EQ(s.chunks_moved, 4);
}

TEST(ReorgEngineTest, BudgetCallbackSizesEachIncrement) {
  Fixture f;
  CostModel model;
  std::vector<double> seen_remaining;
  ReorgOptions opts;
  opts.budget_fn = [&seen_remaining](const BudgetRequest& request) {
    seen_remaining.push_back(request.remaining_gb);
    // First increment: two chunks; afterwards: everything left.
    return request.increment_index == 0 ? util::BytesToGb(128.0 * kMiB)
                                        : 1024.0;
  };
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  auto first = engine.Step();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->chunks_moved, 2);
  EXPECT_FALSE(first->over_budget);
  auto second = engine.Step();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->chunks_moved, 2);
  ASSERT_TRUE(engine.Finish().ok());
  // The callback saw the remaining work shrink.
  ASSERT_EQ(seen_remaining.size(), 2u);
  EXPECT_DOUBLE_EQ(seen_remaining[0], util::BytesToGb(4.0 * 64.0 * kMiB));
  EXPECT_DOUBLE_EQ(seen_remaining[1], util::BytesToGb(2.0 * 64.0 * kMiB));
}

TEST(ReorgEngineTest, EmptyPlanCompletesImmediately) {
  Fixture f;
  CostModel model;
  IncrementalReorgEngine engine(&f.cluster, &model);
  ASSERT_TRUE(engine.Begin(MovePlan(), f.first_new).ok());
  EXPECT_FALSE(engine.active());
  EXPECT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.summary().increments, 0);
  EXPECT_DOUBLE_EQ(engine.summary().work_minutes, 0.0);
}

TEST(ReorgEngineTest, FlagsNonIncrementalSlices) {
  Fixture f;
  CostModel model;
  IncrementalReorgEngine engine(&f.cluster, &model);
  MovePlan sideways;  // Moves to a preexisting node: not incremental.
  sideways.Add(ChunkMove{{1}, 64 * kMiB, 0, 1});
  ASSERT_TRUE(engine.Begin(sideways, f.first_new).ok());
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_FALSE(engine.summary().only_to_new_nodes);
}

TEST(ReorgEngineTest, DigestIdenticalAcrossThreadCountsAndIncrementSizes) {
  std::vector<uint64_t> digests;
  for (const int threads : {1, 2, 8}) {
    for (const double inc_gb : {util::BytesToGb(64.0 * kMiB),
                                util::BytesToGb(192.0 * kMiB), 1024.0}) {
      Fixture f;
      CostModel model;
      ReorgOptions opts;
      opts.increment_gb = inc_gb;
      opts.copy_threads = threads;
      IncrementalReorgEngine engine(&f.cluster, &model, opts);
      ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
      ASSERT_TRUE(engine.Drain().ok());
      digests.push_back(engine.summary().transfer_digest);
    }
  }
  for (const uint64_t d : digests) {
    EXPECT_EQ(d, digests[0]);
    EXPECT_NE(d, 0u);
  }
}

TEST(ReorgEngineTest, MidReorgQueriesMatchQuiescedPlacement) {
  // A filter and a window query priced mid-migration through the view must
  // be bit-identical to the quiesced (pre-reorg) cluster.
  Fixture quiesced;
  Fixture migrating;
  CostModel model;
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(64.0 * kMiB);
  IncrementalReorgEngine engine(&migrating.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(migrating.plan, migrating.first_new).ok());
  ASSERT_TRUE(engine.Step().ok());  // Half-committed migration.
  ASSERT_TRUE(engine.Step().ok());

  exec::QueryEngine qe;
  array::ArraySchema schema("s", {array::DimensionDesc{"x", 0, 7, 1, false}},
                            {array::AttributeDesc{
                                "v", array::AttrType::kDouble}});
  for (const auto kind : {exec::QueryKind::kFilter, exec::QueryKind::kWindow,
                          exec::QueryKind::kGroupBy}) {
    exec::QuerySpec spec;
    spec.kind = kind;
    spec.region = exec::ChunkRegion::All(1);
    const auto a = qe.Simulate(spec, engine.View(), schema);
    const auto b = qe.Simulate(spec, quiesced.cluster, schema);
    EXPECT_EQ(a.minutes, b.minutes);
    EXPECT_EQ(a.makespan_minutes, b.makespan_minutes);
    EXPECT_EQ(a.network_minutes, b.network_minutes);
    EXPECT_EQ(a.scanned_gb, b.scanned_gb);
    EXPECT_EQ(a.chunks_touched, b.chunks_touched);
    EXPECT_EQ(a.remote_neighbor_fetches, b.remote_neighbor_fetches);
  }
}

}  // namespace
}  // namespace arraydb::reorg
