// Serving-layer suite: typed admission rejections (each limit sheds with
// its own reason, never blocking), priority tiers + time slicing beating
// the FIFO single queue on interactive tail latency, the virtual-time
// machine's determinism, the session contract (1 session vs N concurrent
// sessions produce bit-identical per-query results), slice accounting, and
// the YieldPoint gate batch work parks on. Runs under the TSan CI job:
// SessionServer::Submit is exercised from concurrent threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "array/array.h"
#include "exec/exec_context.h"
#include "exec/morsel.h"
#include "exec/operators.h"
#include "serve/serve.h"
#include "workload/sample_data.h"

namespace arraydb::serve {
namespace {

ServerOptions BaseOptions(int workers) {
  ServerOptions options;
  options.workers = workers;
  options.slice_minutes = 0.5;
  return options;
}

Request MakeRequest(const std::string& name, double minutes, double gb = 0.0,
                    double arrival = 0.0) {
  Request request;
  request.name = name;
  request.cost_minutes = minutes;
  request.scan_gb = gb;
  request.arrival_minutes = arrival;
  return request;
}

TEST(AdmissionTest, UnknownSessionAndFinishedServerReject) {
  SessionServer server(BaseOptions(1));
  EXPECT_EQ(server.Submit(0, MakeRequest("q", 1.0)),
            Admission::kRejectedUnknownSession);
  const int session = server.OpenSession(Tier::kInteractive);
  EXPECT_EQ(server.Submit(-1, MakeRequest("q", 1.0)),
            Admission::kRejectedUnknownSession);
  server.Finish();
  EXPECT_EQ(server.Submit(session, MakeRequest("q", 1.0)),
            Admission::kRejectedUnknownSession);
}

TEST(AdmissionTest, SessionQueueLimitShedsWithTypedReason) {
  ServerOptions options = BaseOptions(1);
  options.admission.max_session_queue = 1;
  SessionServer server(options);
  const int session = server.OpenSession(Tier::kBatch);
  // First request starts on the worker immediately (leaves the queue),
  // second queues, third finds the session queue full.
  EXPECT_EQ(server.Submit(session, MakeRequest("a", 10.0)),
            Admission::kAdmitted);
  EXPECT_EQ(server.Submit(session, MakeRequest("b", 10.0)),
            Admission::kAdmitted);
  EXPECT_EQ(server.Submit(session, MakeRequest("c", 10.0)),
            Admission::kRejectedSessionQueue);
  const ServeResult result = server.Finish();
  const TierStats& batch = result.tier(Tier::kBatch);
  EXPECT_EQ(batch.submitted, 3);
  EXPECT_EQ(batch.admitted, 2);
  EXPECT_EQ(batch.rejected_session_queue, 1);
  EXPECT_EQ(batch.rejected(), 1);
  EXPECT_EQ(result.completed.size(), 2u);
}

TEST(AdmissionTest, TierQueueLimitShedsAcrossSessions) {
  ServerOptions options = BaseOptions(1);
  options.admission.max_tier_queue = 1;
  SessionServer server(options);
  const int a = server.OpenSession(Tier::kBatch);
  const int b = server.OpenSession(Tier::kBatch);
  EXPECT_EQ(server.Submit(a, MakeRequest("a", 10.0)), Admission::kAdmitted);
  EXPECT_EQ(server.Submit(a, MakeRequest("b", 10.0)), Admission::kAdmitted);
  // The tier's aggregate queue is full even though session b's own queue
  // is empty.
  EXPECT_EQ(server.Submit(b, MakeRequest("c", 10.0)),
            Admission::kRejectedTierSaturated);
  const ServeResult result = server.Finish();
  EXPECT_EQ(result.tier(Tier::kBatch).rejected_tier_saturated, 1);
}

TEST(AdmissionTest, InFlightBytesLimitSheds) {
  ServerOptions options = BaseOptions(1);
  options.admission.max_inflight_gb = 10.0;
  SessionServer server(options);
  const int session = server.OpenSession(Tier::kInteractive);
  EXPECT_EQ(server.Submit(session, MakeRequest("a", 5.0, /*gb=*/8.0)),
            Admission::kAdmitted);
  EXPECT_EQ(server.Submit(session, MakeRequest("b", 5.0, /*gb=*/8.0)),
            Admission::kRejectedBytesInFlight);
  // A small request still fits under the cap: shedding is per-request,
  // not a latch.
  EXPECT_EQ(server.Submit(session, MakeRequest("c", 5.0, /*gb=*/1.0)),
            Admission::kAdmitted);
  const ServeResult result = server.Finish();
  EXPECT_EQ(result.tier(Tier::kInteractive).rejected_bytes, 1);
  EXPECT_DOUBLE_EQ(result.peak_inflight_gb, 9.0);
  // Completed requests release their bytes: a later submission readmits.
  EXPECT_EQ(result.completed.size(), 2u);
}

TEST(AdmissionTest, NamesAreStable) {
  EXPECT_STREQ(AdmissionName(Admission::kAdmitted), "admitted");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedSessionQueue),
               "rejected_session_queue");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedTierSaturated),
               "rejected_tier_saturated");
  EXPECT_STREQ(AdmissionName(Admission::kRejectedBytesInFlight),
               "rejected_bytes_in_flight");
  EXPECT_STREQ(TierName(Tier::kInteractive), "interactive");
  EXPECT_STREQ(TierName(Tier::kBatch), "batch");
  EXPECT_TRUE(Admitted(Admission::kAdmitted));
  EXPECT_FALSE(Admitted(Admission::kRejectedTierSaturated));
}

TEST(SummarizeTest, NearestRankPercentiles) {
  std::vector<double> latencies;
  for (int i = 1; i <= 100; ++i) latencies.push_back(i / 60000.0);  // i ms.
  const LatencySummary summary = Summarize(latencies);
  EXPECT_EQ(summary.count, 100);
  EXPECT_NEAR(summary.p50_ms, 50.0, 1e-9);
  EXPECT_NEAR(summary.p99_ms, 99.0, 1e-9);
  EXPECT_NEAR(summary.max_ms, 100.0, 1e-9);
  EXPECT_NEAR(summary.mean_ms, 50.5, 1e-9);
  EXPECT_EQ(Summarize({}).count, 0);
}

// One long batch request hogging the only worker; a short interactive
// request arrives mid-run. FIFO runs the batch to completion first;
// priority + slicing picks the point query up at the next slice boundary.
TEST(SchedulingTest, PrioritySlicingBeatsFifoOnInteractiveLatency) {
  const auto run = [](SchedulerPolicy policy) {
    ServerOptions options = BaseOptions(1);
    options.policy = policy;
    SessionServer server(options);
    const int batch = server.OpenSession(Tier::kBatch);
    const int interactive = server.OpenSession(Tier::kInteractive);
    EXPECT_EQ(server.Submit(batch, MakeRequest("scan", 10.0)),
              Admission::kAdmitted);
    EXPECT_EQ(server.Submit(interactive,
                            MakeRequest("point", 0.1, 0.0, /*arrival=*/1.2)),
              Admission::kAdmitted);
    return server.Finish();
  };

  const ServeResult fifo = run(SchedulerPolicy::Fifo());
  const ServeResult served = run(SchedulerPolicy{});

  // FIFO: the point query waits out the whole scan (10 - 1.2 + 0.1 min).
  EXPECT_NEAR(fifo.tier(Tier::kInteractive).latency.p99_ms, 8.9 * 60000.0,
              1e-6);
  // Sliced: it waits only to the next 0.5-min slice boundary (1.5) and is
  // done at 1.6 — latency 0.4 min.
  EXPECT_NEAR(served.tier(Tier::kInteractive).latency.p99_ms, 0.4 * 60000.0,
              1e-6);
  EXPECT_LT(served.tier(Tier::kInteractive).latency.p99_ms,
            fifo.tier(Tier::kInteractive).latency.p99_ms / 3.0);

  // The parked scan resumes and still finishes; slicing costs it nothing
  // in virtual time (10.1 total service on one worker).
  ASSERT_EQ(served.completed.size(), 2u);
  EXPECT_NEAR(served.makespan_minutes, 10.1, 1e-9);
  EXPECT_NEAR(fifo.makespan_minutes, 10.1, 1e-9);
}

TEST(SchedulingTest, SliceAccountingAndRunToCompletion) {
  ServerOptions options = BaseOptions(1);
  options.slice_minutes = 0.5;
  SessionServer server(options);
  const int session = server.OpenSession(Tier::kBatch);
  server.Submit(session, MakeRequest("sliced", 2.0));
  const ServeResult sliced = server.Finish();
  ASSERT_EQ(sliced.completed.size(), 1u);
  EXPECT_EQ(sliced.completed[0].slices, 4);

  ServerOptions fifo_options = BaseOptions(1);
  fifo_options.policy = SchedulerPolicy::Fifo();
  SessionServer fifo(fifo_options);
  const int s2 = fifo.OpenSession(Tier::kBatch);
  fifo.Submit(s2, MakeRequest("whole", 2.0));
  const ServeResult whole = fifo.Finish();
  ASSERT_EQ(whole.completed.size(), 1u);
  EXPECT_EQ(whole.completed[0].slices, 1);
}

TEST(SchedulingTest, ServiceDilationStretchesServiceTime) {
  ServerOptions options = BaseOptions(1);
  options.service_dilation = 1.5;
  SessionServer server(options);
  const int session = server.OpenSession(Tier::kInteractive);
  server.Submit(session, MakeRequest("q", 2.0));
  const ServeResult result = server.Finish();
  ASSERT_EQ(result.completed.size(), 1u);
  EXPECT_NEAR(result.completed[0].latency_minutes, 3.0, 1e-9);
}

// The virtual machine is a pure function of the submissions: identical
// runs produce identical completion records, field for field.
TEST(DeterminismTest, RepeatedRunsAreBitIdentical) {
  const auto run = [] {
    ServerOptions options = BaseOptions(3);
    SessionServer server(options);
    std::vector<int> sessions;
    for (int s = 0; s < 4; ++s) {
      sessions.push_back(
          server.OpenSession(s % 2 == 0 ? Tier::kInteractive : Tier::kBatch));
    }
    for (int i = 0; i < 40; ++i) {
      server.Submit(sessions[static_cast<size_t>(i % 4)],
                    MakeRequest("q" + std::to_string(i),
                                0.2 + 0.13 * (i % 7), 0.5 * (i % 3),
                                0.05 * i));
    }
    return server.Finish();
  };
  const ServeResult a = run();
  const ServeResult b = run();
  ASSERT_EQ(a.completed.size(), b.completed.size());
  for (size_t i = 0; i < a.completed.size(); ++i) {
    EXPECT_EQ(a.completed[i].name, b.completed[i].name);
    EXPECT_EQ(a.completed[i].session, b.completed[i].session);
    EXPECT_EQ(a.completed[i].start_minutes, b.completed[i].start_minutes);
    EXPECT_EQ(a.completed[i].finish_minutes, b.completed[i].finish_minutes);
    EXPECT_EQ(a.completed[i].slices, b.completed[i].slices);
  }
  EXPECT_EQ(a.makespan_minutes, b.makespan_minutes);
  EXPECT_EQ(a.peak_inflight_gb, b.peak_inflight_gb);
}

// The session contract: per-query results are bit-identical whether the
// queries arrive through one session or N concurrent ones, at any worker
// and compute-thread setting. Compute closures run real operators.
class SessionDeterminismTest : public ::testing::Test {
 protected:
  SessionDeterminismTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)) {}

  exec::CellBox BoxFor(int i) const {
    exec::CellBox box;
    for (const array::DimensionDesc& dim : modis_.schema().dims()) {
      box.lo.push_back(dim.lo);
      // Deterministic variety: successive boxes widen toward the full
      // extent (and may exceed it — the operator clips).
      box.hi.push_back(dim.lo + dim.Extent() / 2 + i);
    }
    return box;
  }

  Request ComputeRequest(int i) {
    Request request = MakeRequest("q" + std::to_string(i), 0.1 * (1 + i % 5),
                                  0.0, 0.01 * i);
    const exec::CellBox box = BoxFor(i);
    const array::Array* array = &modis_;
    request.compute = [array, box](const exec::ExecContext& context) {
      return static_cast<double>(exec::FilterBoxCount(*array, box, context));
    };
    return request;
  }

  std::map<std::string, double> Serve(int sessions_per_tier, int workers,
                                      int compute_threads,
                                      int submit_threads) {
    ServerOptions options = BaseOptions(workers);
    options.compute_threads = compute_threads;
    SessionServer server(options);
    std::vector<int> sessions;
    for (int s = 0; s < sessions_per_tier; ++s) {
      sessions.push_back(server.OpenSession(Tier::kInteractive));
      sessions.push_back(server.OpenSession(Tier::kBatch));
    }
    constexpr int kRequests = 24;
    if (submit_threads <= 1) {
      for (int i = 0; i < kRequests; ++i) {
        EXPECT_TRUE(Admitted(server.Submit(
            sessions[static_cast<size_t>(i) % sessions.size()],
            ComputeRequest(i))));
      }
    } else {
      // Concurrent submitters (the TSan-relevant path). Arrival times are
      // explicit in the requests, so admission order races only against
      // the virtual clock clamp — values must still be identical.
      std::vector<std::thread> threads;
      for (int t = 0; t < submit_threads; ++t) {
        threads.emplace_back([&, t] {
          for (int i = t; i < kRequests; i += submit_threads) {
            server.Submit(sessions[static_cast<size_t>(i) % sessions.size()],
                          ComputeRequest(i));
          }
        });
      }
      for (auto& thread : threads) thread.join();
    }
    const ServeResult result = server.Finish();
    std::map<std::string, double> values;
    for (const Completed& rec : result.completed) {
      EXPECT_TRUE(rec.has_value) << rec.name;
      values[rec.name] = rec.value;
    }
    return values;
  }

  array::Array modis_;
};

TEST_F(SessionDeterminismTest, OneSessionVsManyBitIdentical) {
  // Ground truth: direct sequential execution, no server involved.
  std::map<std::string, double> want;
  for (int i = 0; i < 24; ++i) {
    want["q" + std::to_string(i)] = static_cast<double>(
        exec::FilterBoxCount(modis_, BoxFor(i), exec::ExecContext{}));
  }
  const auto one = Serve(/*sessions_per_tier=*/1, /*workers=*/1,
                         /*compute_threads=*/1, /*submit_threads=*/1);
  EXPECT_EQ(one, want);
  const auto many = Serve(/*sessions_per_tier=*/4, /*workers=*/3,
                          /*compute_threads=*/4, /*submit_threads=*/1);
  EXPECT_EQ(many, want);
  const auto racing = Serve(/*sessions_per_tier=*/4, /*workers=*/2,
                            /*compute_threads=*/2, /*submit_threads=*/4);
  EXPECT_EQ(racing, want);
}

// YieldPoint semantics: a paused gate parks morsel workers at the pickup
// counter (no morsel starts while closed — guaranteed by the gate, not by
// timing), Resume releases them, and Pause/Resume nest.
TEST(YieldPointTest, PausedGateParksMorselWorkers) {
  exec::YieldPoint gate;
  gate.Pause();
  gate.Pause();  // Nested.
  EXPECT_TRUE(gate.paused());

  std::atomic<int64_t> processed{0};
  exec::MorselOptions options;
  options.threads = 2;
  options.grain_cells = 8;
  options.yield = &gate;
  exec::MorselScheduler scheduler(options);
  std::thread runner([&] {
    scheduler.Run(exec::MorselScheduler::Carve(64, 8),
                  [&](size_t, int64_t begin, int64_t end) {
                    processed.fetch_add(end - begin);
                  });
  });
  // While the gate is closed no morsel can have run; one Resume is not
  // enough (the pause nested twice).
  gate.Resume();
  EXPECT_TRUE(gate.paused());
  EXPECT_EQ(processed.load(), 0);
  gate.Resume();
  runner.join();
  EXPECT_FALSE(gate.paused());
  EXPECT_EQ(processed.load(), 64);
}

TEST(YieldPointTest, OpenGateIsTransparent) {
  exec::YieldPoint gate;
  EXPECT_FALSE(gate.paused());
  gate.Wait();  // Must not block.
  exec::MorselOptions options;
  options.threads = 1;
  options.yield = &gate;
  exec::MorselScheduler scheduler(options);
  std::atomic<int64_t> processed{0};
  scheduler.Run(exec::MorselScheduler::Carve(32, 8),
                [&](size_t, int64_t begin, int64_t end) {
                  processed.fetch_add(end - begin);
                });
  EXPECT_EQ(processed.load(), 32);
}

TEST(YieldPointTest, ServerContextsCarryTheGate) {
  SessionServer server(BaseOptions(1));
  EXPECT_EQ(server.interactive_context().yield, nullptr);
  EXPECT_EQ(server.batch_context().yield, &server.yield_gate());
}

}  // namespace
}  // namespace arraydb::serve
