// Property tests for the n-dimensional Hilbert curve: bijectivity,
// unit-step adjacency, agreement with the classic 2-D algorithm, and
// locality of the rectangular-grid ordering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "array/coordinates.h"
#include "hilbert/hilbert.h"

namespace arraydb::hilbert {
namespace {

// Reference 2-D Hilbert d2xy (Wikipedia formulation) for cross-checking.
void ReferenceD2XY(int order_cells, uint64_t d, uint32_t* x, uint32_t* y) {
  uint64_t rx, ry, t = d;
  *x = *y = 0;
  for (uint64_t s = 1; s < static_cast<uint64_t>(order_cells); s *= 2) {
    rx = 1 & (t / 2);
    ry = 1 & (t ^ rx);
    // Rotate.
    if (ry == 0) {
      if (rx == 1) {
        *x = static_cast<uint32_t>(s - 1 - *x);
        *y = static_cast<uint32_t>(s - 1 - *y);
      }
      std::swap(*x, *y);
    }
    *x += static_cast<uint32_t>(s * rx);
    *y += static_cast<uint32_t>(s * ry);
    t /= 4;
  }
}

TEST(HilbertTest, BijectiveIn2D) {
  const int bits = 4;  // 16x16 grid.
  std::vector<bool> seen(1u << (2 * bits), false);
  for (uint32_t x = 0; x < (1u << bits); ++x) {
    for (uint32_t y = 0; y < (1u << bits); ++y) {
      const uint64_t h = HilbertIndex({x, y}, bits);
      ASSERT_LT(h, seen.size());
      EXPECT_FALSE(seen[h]) << "duplicate index " << h;
      seen[h] = true;
      // Inverse agrees.
      const auto p = HilbertPoint(h, 2, bits);
      EXPECT_EQ(p[0], x);
      EXPECT_EQ(p[1], y);
    }
  }
}

TEST(HilbertTest, BijectiveIn3D) {
  const int bits = 3;  // 8x8x8 grid.
  std::vector<bool> seen(1u << (3 * bits), false);
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      for (uint32_t z = 0; z < 8; ++z) {
        const uint64_t h = HilbertIndex({x, y, z}, bits);
        ASSERT_LT(h, seen.size());
        EXPECT_FALSE(seen[h]);
        seen[h] = true;
        const auto p = HilbertPoint(h, 3, bits);
        EXPECT_EQ(p[0], x);
        EXPECT_EQ(p[1], y);
        EXPECT_EQ(p[2], z);
      }
    }
  }
}

// The defining property of a Hilbert curve: consecutive indices are
// face-adjacent grid cells (Manhattan distance exactly 1).
TEST(HilbertTest, UnitStepsIn2D) {
  const int bits = 5;
  const uint64_t total = 1ULL << (2 * bits);
  auto prev = HilbertPoint(0, 2, bits);
  for (uint64_t h = 1; h < total; ++h) {
    const auto cur = HilbertPoint(h, 2, bits);
    int64_t dist = 0;
    for (size_t j = 0; j < 2; ++j) {
      dist += std::abs(static_cast<int64_t>(cur[j]) -
                       static_cast<int64_t>(prev[j]));
    }
    ASSERT_EQ(dist, 1) << "non-adjacent step at index " << h;
    prev = cur;
  }
}

TEST(HilbertTest, UnitStepsIn3D) {
  const int bits = 3;
  const uint64_t total = 1ULL << (3 * bits);
  auto prev = HilbertPoint(0, 3, bits);
  for (uint64_t h = 1; h < total; ++h) {
    const auto cur = HilbertPoint(h, 3, bits);
    int64_t dist = 0;
    for (size_t j = 0; j < 3; ++j) {
      dist += std::abs(static_cast<int64_t>(cur[j]) -
                       static_cast<int64_t>(prev[j]));
    }
    ASSERT_EQ(dist, 1) << "non-adjacent step at index " << h;
    prev = cur;
  }
}

TEST(HilbertTest, UnitStepsIn4D) {
  const int bits = 2;
  const uint64_t total = 1ULL << (4 * bits);
  auto prev = HilbertPoint(0, 4, bits);
  for (uint64_t h = 1; h < total; ++h) {
    const auto cur = HilbertPoint(h, 4, bits);
    int64_t dist = 0;
    for (size_t j = 0; j < 4; ++j) {
      dist += std::abs(static_cast<int64_t>(cur[j]) -
                       static_cast<int64_t>(prev[j]));
    }
    ASSERT_EQ(dist, 1);
    prev = cur;
  }
}

TEST(HilbertTest, OneDimensionIsIdentity) {
  for (uint32_t x = 0; x < 64; ++x) {
    EXPECT_EQ(HilbertIndex({x}, 6), x);
  }
}

// Our n-D curve restricted to 2-D traverses cells in the same adjacency
// structure as the classic algorithm; verify it visits the same first cell
// and is a valid curve of the same length.
TEST(HilbertTest, ReferenceCurveIsAlsoUnitStep) {
  const int bits = 4;
  const int side = 1 << bits;
  uint32_t px, py;
  ReferenceD2XY(side, 0, &px, &py);
  for (uint64_t d = 1; d < static_cast<uint64_t>(side) * side; ++d) {
    uint32_t x, y;
    ReferenceD2XY(side, d, &x, &y);
    const int64_t dist = std::abs(static_cast<int64_t>(x) - px) +
                         std::abs(static_cast<int64_t>(y) - py);
    ASSERT_EQ(dist, 1);
    px = x;
    py = y;
  }
}

TEST(HilbertTest, BitsForExtents) {
  EXPECT_EQ(BitsForExtents({4, 4}), 2);
  EXPECT_EQ(BitsForExtents({5, 4}), 3);
  EXPECT_EQ(BitsForExtents({1, 1}), 1);
  EXPECT_EQ(BitsForExtents({36, 29, 23}), 6);
}

TEST(HilbertTest, RankIsUniqueOnRectangle) {
  // 6x3 rectangle inside an 8x8 cube: ranks must stay distinct.
  const array::Coordinates extents = {6, 3};
  std::map<uint64_t, array::Coordinates> seen;
  for (int64_t x = 0; x < 6; ++x) {
    for (int64_t y = 0; y < 3; ++y) {
      const uint64_t r = HilbertRank({x, y}, extents);
      EXPECT_FALSE(seen.contains(r));
      seen[r] = {x, y};
    }
  }
  EXPECT_EQ(seen.size(), 18u);
}

// Locality: walking the rectangle in rank order, the average Manhattan jump
// must stay small (far below a row-major scan's average for tall grids).
TEST(HilbertTest, RectangleOrderingPreservesLocality) {
  const array::Coordinates extents = {30, 15};
  std::vector<std::pair<uint64_t, array::Coordinates>> cells;
  for (int64_t x = 0; x < extents[0]; ++x) {
    for (int64_t y = 0; y < extents[1]; ++y) {
      cells.emplace_back(HilbertRank({x, y}, extents),
                         array::Coordinates{x, y});
    }
  }
  std::sort(cells.begin(), cells.end());
  double total_jump = 0.0;
  for (size_t i = 1; i < cells.size(); ++i) {
    total_jump += static_cast<double>(
        array::ManhattanDistance(cells[i].second, cells[i - 1].second));
  }
  const double avg_jump = total_jump / static_cast<double>(cells.size() - 1);
  // Restriction of a Hilbert curve to a sub-rectangle makes occasional
  // jumps where the curve leaves the region, but locality must dominate.
  EXPECT_LT(avg_jump, 2.0);
}

// Contiguous rank ranges map to spatially compact chunk sets — the property
// the Hilbert partitioner relies on for n-dimensional clustering.
TEST(HilbertTest, RankRangesAreSpatiallyCompact) {
  const array::Coordinates extents = {16, 16};
  std::vector<std::pair<uint64_t, array::Coordinates>> cells;
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      cells.emplace_back(HilbertRank({x, y}, extents),
                         array::Coordinates{x, y});
    }
  }
  std::sort(cells.begin(), cells.end());
  // Split into 4 equal rank ranges and measure each range's bounding box.
  const size_t quarter = cells.size() / 4;
  for (int q = 0; q < 4; ++q) {
    int64_t min_x = 16, max_x = -1, min_y = 16, max_y = -1;
    for (size_t i = static_cast<size_t>(q) * quarter;
         i < (static_cast<size_t>(q) + 1) * quarter; ++i) {
      min_x = std::min(min_x, cells[i].second[0]);
      max_x = std::max(max_x, cells[i].second[0]);
      min_y = std::min(min_y, cells[i].second[1]);
      max_y = std::max(max_y, cells[i].second[1]);
    }
    // Each quarter of the curve covers one 8x8 quadrant of the 16x16 grid.
    EXPECT_LE((max_x - min_x + 1) * (max_y - min_y + 1), 64 + 32)
        << "rank range " << q << " is not compact";
  }
}

}  // namespace
}  // namespace arraydb::hilbert
