#!/usr/bin/env python3
"""Self-test harness for ci/determinism_lint.py.

Runs the lint over the fixture files in tests/lint/fixtures/ and asserts:

  * every ``*_violating.cc`` fixture produces exactly the expected rule IDs
    (so a rule that stops firing fails CI, not just quietly passes),
  * every ``*_conforming.cc`` fixture is clean,
  * the unknown-waiver fixture raises W0 *and* leaves its finding unwaived,
  * the lint over the real ``src/`` tree is clean (every violation fixed or
    waived), and every waiver comment in ``src/`` uses only known tokens —
    the W0 rule run standalone.

Runs under ctest (registered in CMakeLists.txt) and standalone:
    python3 tests/lint/lint_selfcheck.py
"""

import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "ci", "determinism_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture -> expected multiset of rule IDs (minimum counts; exact rule set).
EXPECTED_VIOLATIONS = {
    "r1_violating.cc": {"R1": 3},
    "r2_violating.cc": {"R2": 4},
    "r3_violating.cc": {"R3": 4},
    "r4_violating.cc": {"R4": 4},
    "r5_violating.cc": {"R5": 3},
    "w0_unknown_waiver.cc": {"W0": 1, "R1": 1},
}

CONFORMING = [
    "r1_conforming.cc",
    "r2_conforming.cc",
    "r3_conforming.cc",
    "r4_conforming.cc",
    "r5_conforming.cc",
]

FINDING_RE = re.compile(r"\[(\w\d):[a-z-]+\]")

failures = []


def run_lint(paths, extra=()):
    cmd = [sys.executable, LINT, "--engine=regex", *extra, *paths]
    proc = subprocess.run(cmd, capture_output=True, text=True, cwd=REPO)
    rules = {}
    for m in FINDING_RE.finditer(proc.stdout):
        rules[m.group(1)] = rules.get(m.group(1), 0) + 1
    return proc.returncode, rules, proc.stdout + proc.stderr


def check(name, cond, detail=""):
    status = "ok" if cond else "FAIL"
    print(f"[{status}] {name}" + (f"\n       {detail}" if not cond else ""))
    if not cond:
        failures.append(name)


def main():
    # R5 is scoped to src/exec/ in production; fixtures opt in everywhere.
    fixture_args = ("--r5-scope", "")

    for fixture, expected in sorted(EXPECTED_VIOLATIONS.items()):
        path = os.path.join(FIXTURES, fixture)
        rc, rules, out = run_lint([path], fixture_args)
        check(
            f"{fixture}: exits non-zero",
            rc == 1,
            f"exit={rc}\n{out}",
        )
        for rule, count in expected.items():
            check(
                f"{fixture}: >= {count} x {rule}",
                rules.get(rule, 0) >= count,
                f"got {rules}\n{out}",
            )
        check(
            f"{fixture}: no unexpected rules",
            set(rules) == set(expected),
            f"expected only {sorted(expected)}, got {rules}\n{out}",
        )

    for fixture in CONFORMING:
        path = os.path.join(FIXTURES, fixture)
        rc, rules, out = run_lint([path], fixture_args)
        check(f"{fixture}: clean", rc == 0 and not rules, f"{rules}\n{out}")

    # The real tree must be clean end-to-end...
    rc, rules, out = run_lint([os.path.join(REPO, "src")])
    check("src/ lints clean", rc == 0 and not rules, f"{rules}\n{out}")

    # ...and every waiver comment in src/ must use known vocabulary: run
    # only the W0 token audit so a typo'd waiver cannot hide behind the
    # finding it silently fails to waive.
    rc, rules, out = run_lint(
        [os.path.join(REPO, "src")], ("--rules", "W0")
    )
    check(
        "src/ waiver tokens all known",
        rc == 0 and not rules,
        f"{rules}\n{out}",
    )

    # The fault subsystem is determinism-critical (the injector is probed
    # from inside parallel copy loops and every chaos trajectory must be
    # bit-replayable), so pin it into the audited scope explicitly: a path
    # refactor must not silently drop it from the scan.
    rc, rules, out = run_lint([os.path.join(REPO, "src", "fault")])
    check(
        "src/fault/ audited and clean",
        rc == 0 and not rules and " 0 files" not in out,
        f"{rules}\n{out}",
    )

    if failures:
        print(f"\n{len(failures)} lint self-check failure(s)")
        return 1
    print("\nall lint self-checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
