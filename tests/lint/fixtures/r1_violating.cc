// Lint fixture: R1 unordered-iteration violations. Never compiled.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using ChunkMap = std::unordered_map<int64_t, double>;

std::vector<int64_t> EmitKeys(const std::unordered_map<int64_t, double>& m) {
  std::vector<int64_t> out;
  for (const auto& [key, value] : m) {  // R1: hash-order emission.
    out.push_back(key);
  }
  return out;
}

double FirstWins(const ChunkMap& chunks) {
  std::unordered_set<int64_t> seen;
  double first = 0.0;
  for (auto it = chunks.begin(); it != chunks.end(); ++it) {  // R1: iterator.
    if (seen.insert(it->first).second && first == 0.0) first = it->second;
  }
  return first;
}

std::map<int64_t, double> ViaAlias(const ChunkMap& chunks) {
  std::map<int64_t, double> sorted;
  for (const auto& [key, value] : chunks) {  // R1: via type alias.
    sorted.emplace(key, value);
  }
  return sorted;
}
