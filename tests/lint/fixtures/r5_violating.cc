// Lint fixture: R5 float-accumulation without a merge-order annotation.
// Never compiled. The harness lints this file as-if under src/exec/.
#include <cstddef>
#include <numeric>
#include <vector>

double NaiveSum(const std::vector<double>& values) {
  double sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    sum += values[i];  // R5: unannotated floating-point reduction.
  }
  return sum;
}

double AccumulateSum(const std::vector<double>& values) {
  return std::accumulate(values.begin(), values.end(), 0.0);  // R5.
}

double IndexedBins(const std::vector<double>& values) {
  std::vector<double> bins(4, 0.0);
  for (size_t i = 0; i < values.size(); ++i) {
    bins[i % 4] += values[i];  // R5: indexed fp target, unannotated.
  }
  return bins[0];
}
