// Lint fixture: R2 nondeterministic-rng violations. Never compiled.
#include <cstdlib>
#include <ctime>
#include <random>

int UnseededRand() {
  return std::rand();  // R2: process-global PRNG.
}

void SeedFromClock() {
  srand(static_cast<unsigned>(time(nullptr)));  // R2: srand.
}

int HardwareEntropy() {
  std::random_device rd;  // R2: random_device.
  return static_cast<int>(rd());
}

double TimeSeededEngine() {
  std::mt19937_64 gen(static_cast<uint64_t>(time(nullptr)));  // R2: clock seed.
  return static_cast<double>(gen());
}
