// Lint fixture: R4 deprecated global-knob shim calls. Never compiled.
#include <cstdint>

void ConfigureGlobally() {
  SetDataPlaneThreads(8);      // R4: process-global mutation.
  SetJoinPartitionBits(6);     // R4: process-global mutation.
}

int64_t RunWithScopedKnobs() {
  ScopedDataPlaneThreads threads(4);  // R4: scoped shim.
  ScopedJoinPartitionBits bits(5);    // R4: scoped shim.
  return 0;
}
