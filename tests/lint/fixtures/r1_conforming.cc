// Lint fixture: R1-clean patterns — waived sorted extraction, waived
// commutative use, and lookups that never iterate. Never compiled.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using ChunkMap = std::unordered_map<int64_t, double>;

std::vector<int64_t> SortedKeys(const ChunkMap& chunks) {
  std::vector<int64_t> out;
  out.reserve(chunks.size());
  // arraydb-lint: ordered-extract -- copied out, then sorted below.
  for (const auto& [key, value] : chunks) out.push_back(key);
  std::sort(out.begin(), out.end());
  return out;
}

int64_t CountLarge(const ChunkMap& chunks) {
  int64_t n = 0;
  // arraydb-lint: order-insensitive -- exact integer count.
  for (const auto& [key, value] : chunks) {
    if (value > 1.0) ++n;
  }
  return n;
}

double LookupOnly(const ChunkMap& chunks, int64_t key) {
  const auto it = chunks.find(key);  // find/end lookups are not iteration.
  return it == chunks.end() ? 0.0 : it->second;
}

bool Membership(const std::unordered_set<int64_t>& keys, int64_t key) {
  return keys.contains(key);  // Membership probes never see hash order.
}
