// Lint fixture: R3 side-effecting macro arguments. Never compiled — the
// macros stand in for the telemetry/check macros the lint inspects.
#include <cstdint>

void Observe(int64_t rows, int64_t batch) {
  int64_t cursor = 0;
  TELEM_COUNTER_ADD("exec.rows", cursor++);          // R3: increment.
  TELEM_GAUGE_SET("exec.batch", batch = rows);       // R3: assignment.
  ARRAYDB_CHECK_GE(rows -= batch, 0);                // R3: compound assign.
  ARRAYDB_CHECK(--cursor);                           // R3: decrement.
}
