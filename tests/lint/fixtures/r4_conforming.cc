// Lint fixture: R4-clean configuration — knobs travel through an explicit
// ExecContext value instead of process-global shims. Never compiled.
#include <cstdint>

struct ExecContext {
  int data_plane_threads = 1;
  int join_partition_bits = 4;
};

int64_t RunWithContext(const ExecContext& context) {
  return static_cast<int64_t>(context.data_plane_threads) +
         context.join_partition_bits;
}

ExecContext MakeContext(int threads, int bits) {
  ExecContext context;
  context.data_plane_threads = threads;
  context.join_partition_bits = bits;
  return context;
}
