// Lint fixture: W0 — a waiver comment with a token outside the vocabulary
// must itself be an error, so the waiver language cannot rot. Never
// compiled.
#include <cstdint>
#include <unordered_map>

int64_t Sum(const std::unordered_map<int64_t, int64_t>& m) {
  int64_t total = 0;
  // arraydb-lint: totally-fine -- W0: not a known waiver token.
  for (const auto& [key, value] : m) total += value;
  return total;
}
