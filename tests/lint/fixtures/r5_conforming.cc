// Lint fixture: R5-clean reductions — annotated fp merges and exact
// integer sums. Never compiled. Linted as-if under src/exec/.
#include <cstddef>
#include <cstdint>
#include <vector>

double AnnotatedSum(const std::vector<double>& values) {
  double sum = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    // arraydb-lint: fixed-order -- sequential over values in index order.
    sum += values[i];
  }
  return sum;
}

int64_t IntegerSum(const std::vector<int64_t>& values) {
  int64_t total = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    total += values[i];  // Exact in any order; no annotation needed.
  }
  return total;
}
