// Lint fixture: R3-clean macro arguments — pure expressions only, so the
// compiled-out build evaluates nothing it would miss. Never compiled.
#include <cstdint>

void Observe(int64_t rows, int64_t batch) {
  const int64_t remaining = rows - batch;
  TELEM_COUNTER_ADD("exec.rows", rows);
  TELEM_GAUGE_SET("exec.batch", remaining + 1);
  ARRAYDB_CHECK_GE(rows, 0);
  ARRAYDB_CHECK_EQ(rows == batch, remaining == 0);  // Comparisons are pure.
}
