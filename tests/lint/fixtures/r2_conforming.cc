// Lint fixture: R2-clean randomness — explicit caller-provided seeds only.
// Never compiled.
#include <cstdint>
#include <random>

double ExplicitSeed(uint64_t seed) {
  std::mt19937_64 gen(seed);  // Seed is a deterministic input.
  return static_cast<double>(gen());
}

uint64_t SplitMix(uint64_t state) {
  state += 0x9e3779b97f4a7c15ull;  // Pure arithmetic; no entropy source.
  state = (state ^ (state >> 30)) * 0xbf58476d1ce4e5b9ull;
  return state ^ (state >> 31);
}
