// Unit tests for Array and Chunk: sparse storage, no-overwrite semantics,
// and footprint accounting.

#include <gtest/gtest.h>

#include "array/array.h"

namespace arraydb::array {
namespace {

ArraySchema SmallSchema() {
  return ArraySchema(
      "A",
      {DimensionDesc{"x", 1, 4, 2, false}, DimensionDesc{"y", 1, 4, 2, false}},
      {AttributeDesc{"i", AttrType::kInt32},
       AttributeDesc{"j", AttrType::kFloat}});
}

TEST(ArrayTest, InsertRoutesCellsToChunks) {
  Array a(SmallSchema());
  // The six occupied cells of the paper's Figure 1.
  ASSERT_TRUE(a.InsertCell({1, 1}, {1.0, 1.3}).ok());
  ASSERT_TRUE(a.InsertCell({3, 2}, {9.0, 2.7}).ok());
  ASSERT_TRUE(a.InsertCell({3, 3}, {4.0, 3.5}).ok());
  ASSERT_TRUE(a.InsertCell({4, 3}, {3.0, 4.2}).ok());
  ASSERT_TRUE(a.InsertCell({3, 4}, {7.0, 7.2}).ok());
  ASSERT_TRUE(a.InsertCell({4, 4}, {6.0, 2.5}).ok());

  EXPECT_EQ(a.total_cells(), 6);
  // Figure 1 stores data in 3 of the 4 chunks (the (0,1) chunk is empty).
  EXPECT_EQ(a.num_chunks(), 3);
  EXPECT_EQ(a.total_bytes(), 6 * a.schema().BytesPerCell());

  const Chunk* c00 = a.FindChunk({0, 0});
  ASSERT_NE(c00, nullptr);
  EXPECT_EQ(c00->cell_count(), 1);  // Only (1,1) falls in the first chunk.
  const Chunk* c11 = a.FindChunk({1, 1});
  ASSERT_NE(c11, nullptr);
  EXPECT_EQ(c11->cell_count(), 4);  // The dense center of Figure 1.
}

TEST(ArrayTest, ChunkAssignmentMatchesSchema) {
  Array a(SmallSchema());
  ASSERT_TRUE(a.InsertCell({1, 1}, {0.0, 0.0}).ok());
  ASSERT_TRUE(a.InsertCell({2, 2}, {0.0, 0.0}).ok());
  ASSERT_TRUE(a.InsertCell({3, 3}, {0.0, 0.0}).ok());
  EXPECT_NE(a.FindChunk({0, 0}), nullptr);
  EXPECT_NE(a.FindChunk({1, 1}), nullptr);
  EXPECT_EQ(a.FindChunk({0, 1}), nullptr);
  EXPECT_EQ(a.FindChunk({1, 0}), nullptr);
}

TEST(ArrayTest, RejectsOutOfRangeAndMalformedCells) {
  Array a(SmallSchema());
  EXPECT_FALSE(a.InsertCell({0, 1}, {0.0, 0.0}).ok());   // Below lo.
  EXPECT_FALSE(a.InsertCell({5, 1}, {0.0, 0.0}).ok());   // Above hi.
  EXPECT_FALSE(a.InsertCell({1}, {0.0, 0.0}).ok());      // Wrong rank.
  EXPECT_FALSE(a.InsertCell({1, 1}, {0.0}).ok());        // Wrong attr count.
  EXPECT_EQ(a.total_cells(), 0);
}

TEST(ArrayTest, SyntheticChunksEnforceNoOverwrite) {
  Array a(SmallSchema());
  ChunkInfo info;
  info.coords = {0, 0};
  info.cell_count = 100;
  info.bytes = 800;
  ASSERT_TRUE(a.AddSyntheticChunk(info).ok());
  // No-overwrite storage model: re-adding the same chunk position fails.
  const auto again = a.AddSyntheticChunk(info);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(a.total_bytes(), 800);
}

TEST(ArrayTest, SyntheticChunkOutOfGridRejected) {
  Array a(SmallSchema());
  ChunkInfo info;
  info.coords = {7, 0};
  info.bytes = 1;
  EXPECT_FALSE(a.AddSyntheticChunk(info).ok());
}

TEST(ArrayTest, ChunkInfosAreSortedAndComplete) {
  Array a(SmallSchema());
  ASSERT_TRUE(a.AddSyntheticChunk({{1, 1}, 5, 50}).ok());
  ASSERT_TRUE(a.AddSyntheticChunk({{0, 0}, 2, 20}).ok());
  ASSERT_TRUE(a.AddSyntheticChunk({{1, 0}, 1, 10}).ok());
  const auto infos = a.ChunkInfos();
  ASSERT_EQ(infos.size(), 3u);
  EXPECT_EQ(infos[0].coords, (Coordinates{0, 0}));
  EXPECT_EQ(infos[1].coords, (Coordinates{1, 0}));
  EXPECT_EQ(infos[2].coords, (Coordinates{1, 1}));
  EXPECT_EQ(infos[2].bytes, 50);
}

TEST(ArrayTest, AllCellsSeesEveryInsert) {
  Array a(SmallSchema());
  ASSERT_TRUE(a.InsertCell({1, 1}, {1.0, 2.0}).ok());
  ASSERT_TRUE(a.InsertCell({4, 4}, {3.0, 4.0}).ok());
  const auto cells = a.AllCells();
  EXPECT_EQ(cells.size(), 2u);
}

TEST(ChunkTest, SyntheticAndMaterializedModesAreExclusive) {
  Chunk c({0, 0});
  c.AddCell(Cell{{1, 1}, {1.0}}, 8);
  EXPECT_EQ(c.cell_count(), 1);
  EXPECT_EQ(c.bytes(), 8);
  EXPECT_DEATH(c.SetSyntheticSize(10, 80), "CHECK");
}

TEST(ChunkTest, InfoToStringMentionsCoordinates) {
  ChunkInfo info{{3, 4}, 7, 123};
  const std::string s = info.ToString();
  EXPECT_NE(s.find("(3, 4)"), std::string::npos);
  EXPECT_NE(s.find("123"), std::string::npos);
}

}  // namespace
}  // namespace arraydb::array
