// Equivalence tests for the columnar chunk storage and the operator fast
// paths: on the AIS and MODIS sample workloads, every operator must return
// results identical to the seed's row-at-a-time semantics, reconstructed
// here as straightforward reference computations over AllCells().

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "array/array.h"
#include "exec/operators.h"
#include "workload/sample_data.h"

namespace arraydb::exec {
namespace {

using array::Array;
using array::Cell;
using array::Coordinates;

// -- Reference (seed-semantics) implementations over materialized cells ----

std::vector<Cell> ReferenceFilterBox(const Array& a, const CellBox& box) {
  std::vector<Cell> out;
  for (const auto& cell : a.AllCells()) {
    if (box.Contains(cell.pos)) out.push_back(cell);
  }
  std::stable_sort(out.begin(), out.end(), [](const Cell& x, const Cell& y) {
    return array::CoordinatesLess(x.pos, y.pos);
  });
  return out;
}

double ReferenceQuantile(const Array& a, int attr, double q) {
  std::vector<double> values;
  for (const auto& cell : a.AllCells()) {
    values.push_back(cell.values[static_cast<size_t>(attr)]);
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::map<Coordinates, double> ReferenceGroupBySum(
    const Array& a, const std::vector<int64_t>& bin, int attr) {
  std::map<Coordinates, double> groups;
  for (const auto& cell : a.AllCells()) {
    Coordinates key(cell.pos.size());
    for (size_t d = 0; d < cell.pos.size(); ++d) {
      int64_t q = cell.pos[d] / bin[d];
      if (cell.pos[d] % bin[d] != 0 && cell.pos[d] < 0) --q;
      key[d] = q * bin[d];
    }
    groups[key] += cell.values[static_cast<size_t>(attr)];
  }
  return groups;
}

int64_t ReferenceDimJoinCount(const Array& a, const Array& b) {
  // Mirrors the operator's side selection: build the smaller array, probe
  // the larger (duplicate probe positions each count once per occurrence).
  const Array& build = a.total_cells() <= b.total_cells() ? a : b;
  const Array& probe = a.total_cells() <= b.total_cells() ? b : a;
  std::unordered_set<Coordinates, array::CoordinatesHash> positions;
  for (const auto& cell : build.AllCells()) positions.insert(cell.pos);
  int64_t matches = 0;
  for (const auto& cell : probe.AllCells()) {
    if (positions.contains(cell.pos)) ++matches;
  }
  return matches;
}

int64_t ReferenceAttrJoinCount(const Array& a, int attr,
                               const std::unordered_set<int64_t>& keys) {
  // Join keys round to the nearest integer (llround, ties away from zero);
  // non-finite values never match. Mirrors exec::AttrJoinKey.
  int64_t matches = 0;
  for (const auto& cell : a.AllCells()) {
    const double v = cell.values[static_cast<size_t>(attr)];
    if (std::isfinite(v) && keys.contains(std::llround(v))) ++matches;
  }
  return matches;
}

// Mirrors the operator's window enumeration order so sums agree bit-exactly.
std::vector<std::pair<Coordinates, double>> ReferenceWindowAverageAll(
    const Array& a, int attr, int64_t radius) {
  std::unordered_map<Coordinates, double, array::CoordinatesHash> index;
  for (const auto& cell : a.AllCells()) {
    index.emplace(cell.pos, cell.values[static_cast<size_t>(attr)]);
  }
  std::vector<std::pair<Coordinates, double>> out;
  const int64_t span = 2 * radius + 1;
  for (const auto& [pos, unused] : index) {
    int64_t total = 1;
    for (size_t d = 0; d < pos.size(); ++d) total *= span;
    double sum = 0.0;
    int64_t count = 0;
    Coordinates probe(pos.size());
    for (int64_t code = 0; code < total; ++code) {
      int64_t rest = code;
      for (size_t d = 0; d < pos.size(); ++d) {
        probe[d] = pos[d] + (rest % span) - radius;
        rest /= span;
      }
      const auto it = index.find(probe);
      if (it != index.end()) {
        sum += it->second;
        ++count;
      }
    }
    out.emplace_back(pos, count > 0 ? sum / static_cast<double>(count) : 0.0);
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return array::CoordinatesLess(x.first, y.first);
  });
  return out;
}

void ExpectCellsIdentical(const std::vector<Cell>& got,
                          const std::vector<Cell>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].pos, want[i].pos) << "cell " << i;
    ASSERT_EQ(got[i].values.size(), want[i].values.size());
    for (size_t v = 0; v < got[i].values.size(); ++v) {
      EXPECT_EQ(got[i].values[v], want[i].values[v])
          << "cell " << i << " attr " << v;
    }
  }
}

// -- Chunk-level columnar invariants ---------------------------------------

TEST(ColumnarChunkTest, BoundingBoxTracksInsertedPositions) {
  Array a(array::ArraySchema(
      "b",
      {array::DimensionDesc{"x", 0, 15, 8, false},
       array::DimensionDesc{"y", 0, 15, 8, false}},
      {array::AttributeDesc{"v", array::AttrType::kDouble}}));
  ASSERT_TRUE(a.InsertCell({3, 5}, {1.0}).ok());
  ASSERT_TRUE(a.InsertCell({1, 7}, {2.0}).ok());
  ASSERT_TRUE(a.InsertCell({6, 2}, {3.0}).ok());
  const array::Chunk* chunk = a.FindChunk({0, 0});
  ASSERT_NE(chunk, nullptr);
  EXPECT_EQ(chunk->bbox_lo(), (Coordinates{1, 2}));
  EXPECT_EQ(chunk->bbox_hi(), (Coordinates{6, 7}));
  EXPECT_EQ(chunk->num_cells(), 3u);
  EXPECT_EQ(chunk->num_dims(), 2u);
  EXPECT_EQ(chunk->num_attrs(), 1u);
  // Columns preserve insertion order.
  EXPECT_EQ(chunk->attr_column(0), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(chunk->packed_coords(),
            (std::vector<int64_t>{3, 5, 1, 7, 6, 2}));
  const Cell cell = chunk->MaterializeCell(1);
  EXPECT_EQ(cell.pos, (Coordinates{1, 7}));
  EXPECT_EQ(cell.values, (std::vector<double>{2.0}));
}

// -- Operator equivalence on the sample workloads --------------------------

class ColumnarEquivalenceTest : public ::testing::Test {
 protected:
  ColumnarEquivalenceTest()
      : modis_(workload::MakeSmallModisBand(/*days=*/4, /*seed=*/2014)),
        ais_(workload::MakeSmallAisTracks(/*months=*/5, /*ships=*/120,
                                          /*seed=*/29)) {}

  Array modis_;
  Array ais_;
};

TEST_F(ColumnarEquivalenceTest, FilterBoxMatchesReference) {
  const CellBox modis_box{{0, 4, 2}, {2, 20, 12}};
  ExpectCellsIdentical(FilterBox(modis_, modis_box),
                       ReferenceFilterBox(modis_, modis_box));
  const CellBox ais_box{{0, 3, 3}, {4, 9, 9}};
  ExpectCellsIdentical(FilterBox(ais_, ais_box),
                       ReferenceFilterBox(ais_, ais_box));
  // Degenerate box outside the populated region prunes everything.
  const CellBox empty_box{{3, 30, 14}, {3, 31, 15}};
  ExpectCellsIdentical(FilterBox(modis_, empty_box),
                       ReferenceFilterBox(modis_, empty_box));
}

TEST_F(ColumnarEquivalenceTest, QuantileMatchesReference) {
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    for (int attr = 0; attr < 3; ++attr) {
      const auto got = AttrQuantile(modis_, attr, q);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, ReferenceQuantile(modis_, attr, q))
          << "attr=" << attr << " q=" << q;
    }
  }
}

TEST_F(ColumnarEquivalenceTest, GroupBySumMatchesReference) {
  const std::vector<int64_t> bin = {2, 8, 8};
  // AIS speeds are integer-valued doubles, so the sums are exact under any
  // accumulation order — the chunk-per-bin Sum-kernel fast path (lane-split
  // order) must still match the sequential reference bit-for-bit.
  const auto got = GroupBySum(ais_, bin, /*attr=*/0);
  const auto want = ReferenceGroupBySum(ais_, bin, 0);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, sum] : want) {
    ASSERT_TRUE(got.contains(key));
    EXPECT_EQ(got.at(key), sum);
  }
}

TEST_F(ColumnarEquivalenceTest, GroupBySumDenseNonIntegralWithinUlps) {
  // MODIS radiance is non-integral and its land chunks are dense, so the
  // Sum kernel's fixed lane-split order may differ from the sequential
  // reference in the last ULPs — deterministically (and identically across
  // SIMD dispatch; see scan_dispatch_test). Bound the drift tightly.
  const std::vector<int64_t> bin = {2, 8, 8};
  const auto got = GroupBySum(modis_, bin, /*attr=*/1);
  const auto want = ReferenceGroupBySum(modis_, bin, 1);
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [key, sum] : want) {
    ASSERT_TRUE(got.contains(key));
    EXPECT_NEAR(got.at(key), sum, std::abs(sum) * 1e-12 + 1e-12);
  }
}

TEST_F(ColumnarEquivalenceTest, JoinsMatchReference) {
  EXPECT_EQ(DimJoinCount(modis_, modis_),
            ReferenceDimJoinCount(modis_, modis_));
  // Cross-workload join over the shared 3-D shape: both sample arrays use
  // (time, lon, lat) coordinates.
  EXPECT_EQ(DimJoinCount(modis_, ais_), ReferenceDimJoinCount(modis_, ais_));
  std::unordered_set<int64_t> keys;
  for (int64_t ship = 0; ship < 120; ship += 3) keys.insert(ship);
  EXPECT_EQ(AttrJoinCount(ais_, /*attr=ship_id*/ 1, keys),
            ReferenceAttrJoinCount(ais_, 1, keys));
}

TEST_F(ColumnarEquivalenceTest, WindowAverageMatchesReference) {
  const auto got = WindowAverageAll(modis_, /*attr=*/1, /*radius=*/1);
  const auto want = ReferenceWindowAverageAll(modis_, 1, 1);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_EQ(got[i].second, want[i].second) << "pos " << i;
  }
  // Point probes agree with the field.
  for (size_t i = 0; i < std::min<size_t>(got.size(), 25); ++i) {
    const auto at = WindowAverageAt(modis_, 1, got[i].first, 1);
    ASSERT_TRUE(at.ok());
    EXPECT_EQ(*at, got[i].second);
  }
}

TEST_F(ColumnarEquivalenceTest, RegridMatchesReferenceAccumulation) {
  const auto coarse = Regrid(modis_, {2, 8, 8}, /*attr=*/1);
  ASSERT_TRUE(coarse.ok());
  // Reference: accumulate sums/counts per coarse key over AllCells in the
  // same deterministic order.
  std::map<Coordinates, std::pair<double, int64_t>> acc;
  for (const auto& cell : modis_.AllCells()) {
    Coordinates key(cell.pos.size());
    const std::vector<int64_t> factors = {2, 8, 8};
    for (size_t d = 0; d < cell.pos.size(); ++d) {
      key[d] = (cell.pos[d] - modis_.schema().dims()[d].lo) / factors[d];
    }
    auto& slot = acc[key];
    slot.first += cell.values[1];
    slot.second += 1;
  }
  EXPECT_EQ(coarse->total_cells(), static_cast<int64_t>(acc.size()));
  for (const auto& cell : coarse->AllCells()) {
    ASSERT_TRUE(acc.contains(cell.pos));
    EXPECT_EQ(cell.values[0], acc.at(cell.pos).first);
    EXPECT_EQ(cell.values[1], static_cast<double>(acc.at(cell.pos).second));
  }
}

TEST_F(ColumnarEquivalenceTest, TotalsSurviveColumnarStorage) {
  // Footprint accounting is unchanged by the storage layout.
  int64_t cells = 0;
  for (const auto& [coords, chunk] : modis_.chunks()) {
    cells += chunk.cell_count();
    EXPECT_EQ(chunk.cell_count(), static_cast<int64_t>(chunk.num_cells()));
  }
  EXPECT_EQ(cells, modis_.total_cells());
}

}  // namespace
}  // namespace arraydb::exec
