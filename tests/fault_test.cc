// Unit tests for the fault-injection subsystem (src/fault/) and the reorg
// engine's failure semantics: deterministic fault draws, retry/backoff
// accounting, per-increment timeouts, Abort's exact pre-reorg restore, and
// replanning around a dead destination node.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "cluster/transfer.h"
#include "fault/fault.h"
#include "reorg/reorg_engine.h"
#include "util/status.h"
#include "util/units.h"

namespace arraydb::reorg {
namespace {

using cluster::ChunkMove;
using cluster::Cluster;
using cluster::CostModel;
using cluster::MovePlan;
using cluster::NodeId;
using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultPlan;
using fault::TransferOp;

constexpr int64_t kMiB = 1024 * 1024;

// 2 nodes, 8 chunks of 64 MiB each on node 0, then 2 empty nodes added.
// The plan splits chunks {4..7} across both new nodes: {4,5} -> 2 first
// (so a byte budget of 128 MiB commits them in the first increment), then
// {6,7} -> 3.
struct Fixture {
  Cluster cluster{2, 1.0};
  NodeId first_new = cluster::kInvalidNode;
  MovePlan plan;

  Fixture() {
    for (int64_t i = 0; i < 8; ++i) {
      EXPECT_TRUE(cluster.PlaceChunk({i}, 64 * kMiB, 0).ok());
    }
    first_new = cluster.AddNodes(2);
    plan.Add(ChunkMove{{4}, 64 * kMiB, 0, 2});
    plan.Add(ChunkMove{{5}, 64 * kMiB, 0, 2});
    plan.Add(ChunkMove{{6}, 64 * kMiB, 0, 3});
    plan.Add(ChunkMove{{7}, 64 * kMiB, 0, 3});
  }
};

ReorgOptions TwoChunkIncrements() {
  ReorgOptions opts;
  opts.increment_gb = util::BytesToGb(128.0 * kMiB);
  return opts;
}

// -- util::Status additions ------------------------------------------------

TEST(StatusAnnotateTest, PrependsContextAndPreservesCode) {
  const auto base = util::Unavailable("transfer to node 5 failed");
  const auto annotated = util::Annotate(base, "increment 3, retry 2");
  EXPECT_EQ(annotated.code(), util::StatusCode::kUnavailable);
  EXPECT_EQ(annotated.message(),
            "increment 3, retry 2: transfer to node 5 failed");
  // Chains compose outermost-first.
  const auto chained = util::Annotate(annotated, "plan 7");
  EXPECT_EQ(chained.message(),
            "plan 7: increment 3, retry 2: transfer to node 5 failed");
}

TEST(StatusAnnotateTest, OkAndEmptyContextPassThrough) {
  EXPECT_TRUE(util::Annotate(util::Status::Ok(), "ctx").ok());
  const auto base = util::Internal("boom");
  EXPECT_EQ(util::Annotate(base, "").message(), "boom");
  // Annotating a message-less status adopts the context as the message.
  const auto bare = util::Status(util::StatusCode::kUnavailable, "");
  EXPECT_EQ(util::Annotate(bare, "increment 0").message(), "increment 0");
}

// -- MovePlan shape validation ---------------------------------------------

TEST(ValidatePlanShapeTest, RejectsMalformedMoves) {
  MovePlan self;
  self.Add(ChunkMove{{0}, kMiB, 1, 1});
  EXPECT_EQ(cluster::ValidatePlanShape(self, 4).code(),
            util::StatusCode::kInvalidArgument);

  MovePlan bad_from;
  bad_from.Add(ChunkMove{{0}, kMiB, -1, 1});
  EXPECT_EQ(cluster::ValidatePlanShape(bad_from, 4).code(),
            util::StatusCode::kInvalidArgument);

  MovePlan bad_to;
  bad_to.Add(ChunkMove{{0}, kMiB, 0, 4});
  EXPECT_EQ(cluster::ValidatePlanShape(bad_to, 4).code(),
            util::StatusCode::kInvalidArgument);

  MovePlan empty_bytes;
  empty_bytes.Add(ChunkMove{{0}, 0, 0, 1});
  EXPECT_EQ(cluster::ValidatePlanShape(empty_bytes, 4).code(),
            util::StatusCode::kInvalidArgument);

  MovePlan dup;
  dup.Add(ChunkMove{{0}, kMiB, 0, 1});
  dup.Add(ChunkMove{{0}, kMiB, 0, 2});
  const auto status = cluster::ValidatePlanShape(dup, 4);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);

  MovePlan good;
  good.Add(ChunkMove{{0}, kMiB, 0, 1});
  good.Add(ChunkMove{{1}, kMiB, 0, 2});
  EXPECT_TRUE(cluster::ValidatePlanShape(good, 4).ok());
}

TEST(ValidatePlanShapeTest, EngineBeginRejectsMalformedPlans) {
  Fixture f;
  CostModel model;
  IncrementalReorgEngine engine(&f.cluster, &model, TwoChunkIncrements());
  MovePlan self;
  self.Add(ChunkMove{{4}, 64 * kMiB, 0, 0});
  const auto status = engine.Begin(self, f.first_new);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("reorg plan rejected at Begin"),
            std::string::npos);
  // Nothing was staged: a well-formed Begin still works.
  EXPECT_FALSE(engine.active());
  EXPECT_TRUE(engine.Begin(f.plan, f.first_new).ok());
}

// -- FaultInjector ----------------------------------------------------------

TEST(FaultInjectorTest, DrawsAreDeterministicAndSeedDependent) {
  FaultPlan plan;
  plan.seed = 42;
  plan.transient_failure_rate = 0.5;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  plan.seed = 43;
  const FaultInjector c(plan);
  int diverged = 0;
  for (uint64_t d = 1; d <= 256; ++d) {
    TransferOp op;
    op.plan_ordinal = 1;
    op.increment = 2;
    op.attempt = 1;
    op.move_digest = d * 0x9e3779b97f4a7c15ull;
    EXPECT_EQ(a.TransferFault(op), b.TransferFault(op));
    if (a.TransferFault(op) != c.TransferFault(op)) diverged += 1;
  }
  // A different seed must change some fates (128 expected).
  EXPECT_GT(diverged, 32);
}

TEST(FaultInjectorTest, RatesBoundTheDrawAndAttemptsAreIndependent) {
  FaultPlan none;
  none.transient_failure_rate = 0.0;
  none.slow_copy_rate = 0.0;
  const FaultInjector quiet(none);
  FaultPlan always;
  always.transient_failure_rate = 1.0;
  const FaultInjector hostile(always);
  int changed_by_attempt = 0;
  FaultPlan half;
  half.seed = 7;
  half.transient_failure_rate = 0.5;
  const FaultInjector coin(half);
  for (uint64_t d = 1; d <= 128; ++d) {
    TransferOp op;
    op.move_digest = d * 0xbf58476d1ce4e5b9ull;
    EXPECT_EQ(quiet.TransferFault(op), FaultKind::kNone);
    EXPECT_EQ(hostile.TransferFault(op), FaultKind::kTransientFailure);
    TransferOp retry = op;
    retry.attempt = 2;
    if (coin.TransferFault(op) != coin.TransferFault(retry)) {
      changed_by_attempt += 1;
    }
  }
  // Retries redraw: a transient fault must not deterministically persist
  // across attempts.
  EXPECT_GT(changed_by_attempt, 16);
}

TEST(FaultInjectorTest, NodeDeathScheduleIsAVirtualTimeline) {
  FaultPlan plan;
  plan.node_deaths.push_back({5.0, 3});
  plan.node_deaths.push_back({2.0, 1});
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.NodeAlive(1, 1.9));
  EXPECT_FALSE(injector.NodeAlive(1, 2.0));
  EXPECT_TRUE(injector.NodeAlive(3, 4.0));
  EXPECT_FALSE(injector.NodeAlive(3, 5.0));
  EXPECT_TRUE(injector.DeadNodesAt(1.0).empty());
  EXPECT_EQ(injector.DeadNodesAt(3.0), std::vector<NodeId>{1});
  EXPECT_EQ(injector.DeadNodesAt(10.0), (std::vector<NodeId>{1, 3}));
}

// -- Engine failure semantics ------------------------------------------------

TEST(ReorgFaultTest, ZeroRateInjectorIsBitIdenticalToNoInjector) {
  Fixture plain_fixture;
  CostModel model;
  IncrementalReorgEngine plain(&plain_fixture.cluster, &model,
                               TwoChunkIncrements());
  ASSERT_TRUE(plain.Begin(plain_fixture.plan, plain_fixture.first_new).ok());
  ASSERT_TRUE(plain.Drain().ok());

  Fixture injected_fixture;
  const FaultInjector injector(FaultPlan{});
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine faulty(&injected_fixture.cluster, &model, opts);
  ASSERT_TRUE(
      faulty.Begin(injected_fixture.plan, injected_fixture.first_new).ok());
  ASSERT_TRUE(faulty.Drain().ok());

  EXPECT_EQ(plain.summary().transfer_digest, faulty.summary().transfer_digest);
  EXPECT_EQ(plain.summary().increments, faulty.summary().increments);
  EXPECT_EQ(plain.summary().slice_minutes, faulty.summary().slice_minutes);
  EXPECT_EQ(faulty.summary().faults_injected, 0);
  EXPECT_EQ(faulty.summary().retries, 0);
  EXPECT_EQ(faulty.summary().recovery_overhead_minutes, 0.0);
}

TEST(ReorgFaultTest, TransientFaultsExhaustRetriesWithCappedBackoff) {
  Fixture f;
  CostModel model;
  FaultPlan hostile;
  hostile.transient_failure_rate = 1.0;
  const FaultInjector injector(hostile);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());

  const auto step = engine.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), util::StatusCode::kUnavailable);
  // Satellite contract: the error carries "increment N, retry K" context.
  EXPECT_NE(step.status().message().find("increment 0, retry 3"),
            std::string::npos);
  const auto& s = engine.summary();
  EXPECT_EQ(s.retries, 3);  // 4 attempts = 3 retries.
  EXPECT_EQ(s.timeouts, 0);
  // Default schedule: 100, 200, 400 ms (cap 1600 never reached).
  EXPECT_DOUBLE_EQ(s.backoff_ms, 700.0);
  EXPECT_GT(s.transient_failures, 0);
  EXPECT_EQ(s.increments, 0);  // Nothing committed.
  // The failed slice was rewound, not left in flight.
  EXPECT_FALSE(f.cluster.increment_in_flight());
  // Each failed attempt queued the slice for re-transfer.
  EXPECT_DOUBLE_EQ(s.retry_gb, 4.0 * util::BytesToGb(128.0 * kMiB));
  EXPECT_GT(s.recovery_overhead_minutes, 0.0);
}

TEST(ReorgFaultTest, SlowCopiesDilateButCommit) {
  Fixture f;
  CostModel model;
  FaultPlan syrup;
  syrup.slow_copy_rate = 1.0;
  syrup.slow_copy_dilation = 4.0;
  const FaultInjector injector(syrup);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  const auto step = engine.Step();
  ASSERT_TRUE(step.ok());
  EXPECT_EQ(step->attempts, 1);
  EXPECT_EQ(step->slow_copies, 2);
  // Every byte dilated 4x: the extra 3x of the slice price is overhead.
  EXPECT_NEAR(step->fault_extra_minutes, 3.0 * step->minutes, 1e-9);
  ASSERT_TRUE(engine.Drain().ok());
  EXPECT_EQ(f.cluster.OwnerOf({4}), 2);
  EXPECT_EQ(f.cluster.OwnerOf({7}), 3);
  EXPECT_TRUE(engine.summary().only_to_new_nodes);
}

TEST(ReorgFaultTest, TimeoutAbandonsTheAttempt) {
  Fixture f;
  CostModel model;
  FaultPlan syrup;
  syrup.slow_copy_rate = 1.0;
  syrup.slow_copy_dilation = 1000.0;
  const FaultInjector injector(syrup);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  opts.increment_timeout_minutes = 1.0;
  opts.retry.max_attempts = 2;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  const auto step = engine.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(step.status().message().find("timeout"), std::string::npos);
  EXPECT_EQ(engine.summary().timeouts, 2);
  // Each attempt was charged exactly the timeout, plus one backoff.
  EXPECT_NEAR(engine.virtual_minutes(), 2.0 + 100.0 / 60000.0, 1e-9);
}

TEST(ReorgFaultTest, AbortRestoresExactPreReorgPlacement) {
  Fixture f;
  const auto before = f.cluster.AllChunks();
  const uint64_t epoch_before = f.cluster.reorg_epoch();
  CostModel model;
  IncrementalReorgEngine engine(&f.cluster, &model, TwoChunkIncrements());
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  ASSERT_TRUE(engine.Step().ok());  // {4,5} committed to node 2.
  ASSERT_EQ(f.cluster.OwnerOf({4}), 2);

  ASSERT_TRUE(engine.Abort().ok());
  EXPECT_FALSE(engine.active());
  EXPECT_TRUE(engine.summary().aborted);
  EXPECT_DOUBLE_EQ(engine.summary().rolled_back_gb,
                   util::BytesToGb(128.0 * kMiB));
  const auto after = f.cluster.AllChunks();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after[i].coords, before[i].coords);
    EXPECT_EQ(after[i].node, before[i].node);
    EXPECT_EQ(after[i].bytes, before[i].bytes);
  }
  // Stale routing views can detect the rollback.
  EXPECT_GT(f.cluster.reorg_epoch(), epoch_before);
  // Aborting twice is an error; a fresh Begin works.
  EXPECT_EQ(engine.Abort().code(), util::StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  EXPECT_TRUE(engine.Drain().ok());
  EXPECT_EQ(engine.plans_begun(), 2);
}

TEST(ReorgFaultTest, PendingMovesRerouteAroundADeadDestination) {
  Fixture f;
  CostModel model;
  FaultPlan plan;
  plan.node_deaths.push_back({0.0, 3});  // Dead before the first Step.
  const FaultInjector injector(plan);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  ASSERT_TRUE(engine.Drain().ok());
  // Every move landed on the surviving new node, and the Table-1 property
  // held throughout.
  for (int64_t i = 4; i < 8; ++i) {
    EXPECT_EQ(f.cluster.OwnerOf({i}), 2) << "chunk " << i;
  }
  const auto& s = engine.summary();
  EXPECT_TRUE(s.only_to_new_nodes);
  EXPECT_EQ(s.node_deaths, 1);
  EXPECT_EQ(s.replans, 1);
  EXPECT_EQ(s.replanned_chunks, 2);  // {6,7} were still pending.
}

TEST(ReorgFaultTest, CommittedMovesRevertAndRestageOnDeath) {
  // Reorder the plan so the node-3 moves commit first, then kill node 3
  // once the virtual clock has passed the first increment.
  Cluster cluster(2, 1.0);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.PlaceChunk({i}, 64 * kMiB, 0).ok());
  }
  const NodeId first_new = cluster.AddNodes(2);
  MovePlan plan;
  plan.Add(ChunkMove{{4}, 64 * kMiB, 0, 3});
  plan.Add(ChunkMove{{5}, 64 * kMiB, 0, 3});
  plan.Add(ChunkMove{{6}, 64 * kMiB, 0, 2});
  plan.Add(ChunkMove{{7}, 64 * kMiB, 0, 2});
  CostModel model;
  FaultPlan deaths;
  // Increment prices include the 0.5-minute fixed reorg overhead, so the
  // clock passes 0.1 after the first Step.
  deaths.node_deaths.push_back({0.1, 3});
  const FaultInjector injector(deaths);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(plan, first_new).ok());
  ASSERT_TRUE(engine.Step().ok());  // {4,5} committed to node 3.
  ASSERT_EQ(cluster.OwnerOf({4}), 3);
  ASSERT_TRUE(engine.Drain().ok());  // Death processed at the next Step.
  for (int64_t i = 4; i < 8; ++i) {
    EXPECT_EQ(cluster.OwnerOf({i}), 2) << "chunk " << i;
  }
  const auto& s = engine.summary();
  EXPECT_EQ(s.replans, 1);
  EXPECT_EQ(s.replanned_chunks, 2);  // {4,5} reverted and re-staged.
  EXPECT_GT(s.retry_gb, 0.0);       // Their re-copy was retry backlog.
  EXPECT_GT(s.recovery_overhead_minutes, 0.0);
  EXPECT_TRUE(s.only_to_new_nodes);
  // Committed accounting ends consistent: all four chunks counted once.
  EXPECT_DOUBLE_EQ(s.committed_gb, util::BytesToGb(256.0 * kMiB));
  EXPECT_EQ(s.committed_chunks, 4);
}

TEST(ReorgFaultTest, NoSurvivingDestinationIsUnavailable) {
  Fixture f;
  CostModel model;
  FaultPlan plan;
  plan.node_deaths.push_back({0.0, 2});
  plan.node_deaths.push_back({0.0, 3});
  const FaultInjector injector(plan);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  const auto step = engine.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(step.status().message().find("replanning around dead node"),
            std::string::npos);
  // The caller's recovery path still works: Abort restores the placement.
  ASSERT_TRUE(engine.Abort().ok());
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.cluster.OwnerOf({i}), 0);
  }
}

TEST(ReorgFaultTest, DeadSourceIsUnrecoverable) {
  Fixture f;
  CostModel model;
  FaultPlan plan;
  plan.node_deaths.push_back({0.0, 0});  // Every move's source.
  const FaultInjector injector(plan);
  ReorgOptions opts = TwoChunkIncrements();
  opts.injector = &injector;
  IncrementalReorgEngine engine(&f.cluster, &model, opts);
  ASSERT_TRUE(engine.Begin(f.plan, f.first_new).ok());
  const auto step = engine.Step();
  ASSERT_FALSE(step.ok());
  EXPECT_EQ(step.status().code(), util::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace arraydb::reorg
