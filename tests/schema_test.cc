// Unit tests for ArraySchema: the SciDB-style declaration model of §2.

#include <gtest/gtest.h>

#include "array/schema.h"

namespace arraydb::array {
namespace {

// The paper's Figure 1 example: A<i:int32, j:float>[x=1:4,2, y=1:4,2].
ArraySchema Figure1Schema() {
  return ArraySchema(
      "A",
      {DimensionDesc{"x", 1, 4, 2, false}, DimensionDesc{"y", 1, 4, 2, false}},
      {AttributeDesc{"i", AttrType::kInt32},
       AttributeDesc{"j", AttrType::kFloat}});
}

TEST(SchemaTest, Figure1RoundTrip) {
  const ArraySchema schema = Figure1Schema();
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.ToString(), "A<i:int32,j:float>[x=1:4,2, y=1:4,2]");
  EXPECT_EQ(schema.num_dims(), 2);
  EXPECT_EQ(schema.num_attrs(), 2);
  EXPECT_EQ(schema.TotalChunkSlots(), 4);  // Four 2x2 chunks.
  EXPECT_EQ(schema.CellsPerChunkCap(), 4);
  EXPECT_EQ(schema.BytesPerCell(), 8);  // int32 + float.
}

TEST(SchemaTest, ChunkOfMapsCellsToChunks) {
  const ArraySchema schema = Figure1Schema();
  EXPECT_EQ(schema.ChunkOf({1, 1}), (Coordinates{0, 0}));
  EXPECT_EQ(schema.ChunkOf({2, 2}), (Coordinates{0, 0}));
  EXPECT_EQ(schema.ChunkOf({3, 1}), (Coordinates{1, 0}));
  EXPECT_EQ(schema.ChunkOf({4, 4}), (Coordinates{1, 1}));
}

TEST(SchemaTest, LinearizeIsBijective) {
  const ArraySchema schema(
      "B", {DimensionDesc{"x", 0, 29, 3, false},
            DimensionDesc{"y", 0, 19, 4, false},
            DimensionDesc{"z", 0, 9, 2, false}},
      {AttributeDesc{"v", AttrType::kDouble}});
  const int64_t slots = schema.TotalChunkSlots();
  EXPECT_EQ(slots, 10 * 5 * 5);
  for (int64_t i = 0; i < slots; ++i) {
    const Coordinates c = schema.DelinearizeChunkIndex(i);
    EXPECT_EQ(schema.LinearizeChunkIndex(c), i);
    EXPECT_TRUE(schema.ChunkInBounds(c));
  }
}

TEST(SchemaTest, ChunkCountRoundsUp) {
  DimensionDesc d{"x", 0, 9, 4, false};  // Extent 10, interval 4 -> 3 chunks.
  EXPECT_EQ(d.ChunkCount(), 3);
  EXPECT_EQ(d.ChunkIndexOf(0), 0);
  EXPECT_EQ(d.ChunkIndexOf(3), 0);
  EXPECT_EQ(d.ChunkIndexOf(4), 1);
  EXPECT_EQ(d.ChunkIndexOf(9), 2);
  EXPECT_EQ(d.ChunkLow(2), 8);
}

TEST(SchemaTest, NegativeOriginDimension) {
  // Longitude-style dimension: -180..180 with a 12-degree stride.
  DimensionDesc lon{"longitude", -180, 180, 12, false};
  EXPECT_EQ(lon.Extent(), 361);
  EXPECT_EQ(lon.ChunkCount(), 31);
  EXPECT_EQ(lon.ChunkIndexOf(-180), 0);
  EXPECT_EQ(lon.ChunkIndexOf(-169), 0);
  EXPECT_EQ(lon.ChunkIndexOf(-168), 1);
  EXPECT_EQ(lon.ChunkIndexOf(0), 15);
  EXPECT_EQ(lon.ChunkIndexOf(180), 30);
}

TEST(SchemaTest, ValidationCatchesErrors) {
  EXPECT_FALSE(ArraySchema("", {DimensionDesc{"x", 0, 1, 1, false}},
                           {AttributeDesc{"v", AttrType::kDouble}})
                   .Validate()
                   .ok());
  EXPECT_FALSE(
      ArraySchema("A", {}, {AttributeDesc{"v", AttrType::kDouble}})
          .Validate()
          .ok());
  EXPECT_FALSE(
      ArraySchema("A", {DimensionDesc{"x", 0, 1, 1, false}}, {}).Validate().ok());
  // Duplicate names.
  EXPECT_FALSE(ArraySchema("A",
                           {DimensionDesc{"x", 0, 1, 1, false},
                            DimensionDesc{"x", 0, 1, 1, false}},
                           {AttributeDesc{"v", AttrType::kDouble}})
                   .Validate()
                   .ok());
  // Non-positive chunk interval.
  EXPECT_FALSE(ArraySchema("A", {DimensionDesc{"x", 0, 1, 0, false}},
                           {AttributeDesc{"v", AttrType::kDouble}})
                   .Validate()
                   .ok());
  // Empty range.
  EXPECT_FALSE(ArraySchema("A", {DimensionDesc{"x", 5, 4, 1, false}},
                           {AttributeDesc{"v", AttrType::kDouble}})
                   .Validate()
                   .ok());
}

TEST(SchemaTest, UnboundedDimensionRendersStar) {
  const ArraySchema schema(
      "T", {DimensionDesc{"time", 0, 0, 1440, true}},
      {AttributeDesc{"v", AttrType::kDouble}});
  EXPECT_EQ(schema.ToString(), "T<v:double>[time=0:*,1440]");
}

TEST(SchemaTest, AttrTypeFootprints) {
  EXPECT_EQ(AttrTypeBytes(AttrType::kInt32), 4);
  EXPECT_EQ(AttrTypeBytes(AttrType::kInt64), 8);
  EXPECT_EQ(AttrTypeBytes(AttrType::kFloat), 4);
  EXPECT_EQ(AttrTypeBytes(AttrType::kDouble), 8);
  EXPECT_EQ(AttrTypeBytes(AttrType::kChar), 1);
  EXPECT_GT(AttrTypeBytes(AttrType::kString), 8);
}

}  // namespace
}  // namespace arraydb::array
