// Unit tests for the shared-nothing cluster substrate: placement,
// move-plan application, accounting, and the RSD balance metric.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster.h"
#include "util/units.h"

namespace arraydb::cluster {
namespace {

TEST(ClusterTest, StartsEmpty) {
  Cluster c(2, 100.0);
  EXPECT_EQ(c.num_nodes(), 2);
  EXPECT_DOUBLE_EQ(c.CapacityGb(), 200.0);
  EXPECT_EQ(c.num_chunks(), 0);
  EXPECT_EQ(c.TotalBytes(), 0);
  EXPECT_DOUBLE_EQ(c.LoadRsd(), 0.0);
}

TEST(ClusterTest, PlaceAndLookup) {
  Cluster c(2, 100.0);
  ASSERT_TRUE(c.PlaceChunk({0, 0}, 100, 0).ok());
  ASSERT_TRUE(c.PlaceChunk({0, 1}, 200, 1).ok());
  EXPECT_EQ(c.OwnerOf({0, 0}), 0);
  EXPECT_EQ(c.OwnerOf({0, 1}), 1);
  EXPECT_EQ(c.OwnerOf({9, 9}), kInvalidNode);
  EXPECT_TRUE(c.Contains({0, 0}));
  EXPECT_FALSE(c.Contains({1, 0}));
  EXPECT_EQ(c.NodeBytes(0), 100);
  EXPECT_EQ(c.NodeBytes(1), 200);
  EXPECT_EQ(c.TotalBytes(), 300);
  EXPECT_EQ(c.NodeChunkCount(0), 1);
}

TEST(ClusterTest, NoOverwrite) {
  Cluster c(1, 100.0);
  ASSERT_TRUE(c.PlaceChunk({5}, 10, 0).ok());
  const auto again = c.PlaceChunk({5}, 10, 0);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.code(), util::StatusCode::kAlreadyExists);
}

TEST(ClusterTest, RejectsUnknownNodeAndNegativeBytes) {
  Cluster c(2, 100.0);
  EXPECT_FALSE(c.PlaceChunk({0}, 10, 7).ok());
  EXPECT_FALSE(c.PlaceChunk({0}, 10, -1).ok());
  EXPECT_FALSE(c.PlaceChunk({1}, -5, 0).ok());
}

TEST(ClusterTest, AddNodesReturnsFirstNewId) {
  Cluster c(2, 100.0);
  EXPECT_EQ(c.AddNodes(3), 2);
  EXPECT_EQ(c.num_nodes(), 5);
  EXPECT_EQ(c.NodeBytes(4), 0);
}

TEST(ClusterTest, ApplyMovesChunks) {
  Cluster c(2, 100.0);
  ASSERT_TRUE(c.PlaceChunk({0}, 100, 0).ok());
  ASSERT_TRUE(c.PlaceChunk({1}, 50, 0).ok());
  c.AddNodes(1);
  MovePlan plan;
  plan.Add(ChunkMove{{1}, 50, 0, 2});
  ASSERT_TRUE(c.Apply(plan).ok());
  EXPECT_EQ(c.OwnerOf({1}), 2);
  EXPECT_EQ(c.NodeBytes(0), 100);
  EXPECT_EQ(c.NodeBytes(2), 50);
  EXPECT_EQ(c.TotalBytes(), 150);  // Moves never change totals.
}

TEST(ClusterTest, ApplyValidatesBeforeMutating) {
  Cluster c(2, 100.0);
  ASSERT_TRUE(c.PlaceChunk({0}, 100, 0).ok());
  // Plan with a valid move followed by an invalid one: nothing applies.
  MovePlan plan;
  plan.Add(ChunkMove{{0}, 100, 0, 1});
  plan.Add(ChunkMove{{9}, 10, 0, 1});  // Unknown chunk.
  EXPECT_FALSE(c.Apply(plan).ok());
  EXPECT_EQ(c.OwnerOf({0}), 0) << "partial application detected";
}

TEST(ClusterTest, ApplyChecksClaimedOwnerAndBytes) {
  Cluster c(2, 100.0);
  ASSERT_TRUE(c.PlaceChunk({0}, 100, 0).ok());
  MovePlan wrong_owner;
  wrong_owner.Add(ChunkMove{{0}, 100, 1, 0});
  EXPECT_FALSE(c.Apply(wrong_owner).ok());
  MovePlan wrong_bytes;
  wrong_bytes.Add(ChunkMove{{0}, 99, 0, 1});
  EXPECT_FALSE(c.Apply(wrong_bytes).ok());
  MovePlan bad_target;
  bad_target.Add(ChunkMove{{0}, 100, 0, 5});
  EXPECT_FALSE(c.Apply(bad_target).ok());
}

TEST(ClusterTest, LoadRsdMatchesHandComputation) {
  Cluster c(2, 100.0);
  const int64_t gb = static_cast<int64_t>(util::kGiB);
  ASSERT_TRUE(c.PlaceChunk({0}, 10 * gb, 0).ok());
  ASSERT_TRUE(c.PlaceChunk({1}, 30 * gb, 1).ok());
  // Loads 10,30: mean 20, population stdev 10 -> RSD 0.5.
  EXPECT_NEAR(c.LoadRsd(), 0.5, 1e-9);
}

TEST(ClusterTest, ChunksOnNodeIsSortedAndFiltered) {
  Cluster c(2, 100.0);
  ASSERT_TRUE(c.PlaceChunk({2, 0}, 1, 0).ok());
  ASSERT_TRUE(c.PlaceChunk({0, 0}, 2, 0).ok());
  ASSERT_TRUE(c.PlaceChunk({1, 0}, 3, 1).ok());
  const auto on0 = c.ChunksOnNode(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0].coords, (array::Coordinates{0, 0}));
  EXPECT_EQ(on0[1].coords, (array::Coordinates{2, 0}));
  EXPECT_EQ(c.ChunksOnNode(1).size(), 1u);
  EXPECT_EQ(c.AllChunks().size(), 3u);
}

// Regression (determinism lint R1): ForEachChunk used to iterate the
// unordered chunk map directly, exposing hash order — which varies with
// insertion history — to every caller's visit sequence. It must enumerate
// in sorted coordinate order, independent of placement order.
TEST(ClusterTest, ForEachChunkEnumeratesInSortedOrder) {
  // Same chunks, two different insertion histories.
  Cluster a(2, 100.0);
  ASSERT_TRUE(a.PlaceChunk({0, 0}, 10, 0).ok());
  ASSERT_TRUE(a.PlaceChunk({0, 1}, 20, 1).ok());
  ASSERT_TRUE(a.PlaceChunk({1, 0}, 30, 0).ok());
  ASSERT_TRUE(a.PlaceChunk({2, 5}, 40, 1).ok());

  Cluster b(2, 100.0);
  ASSERT_TRUE(b.PlaceChunk({2, 5}, 40, 1).ok());
  ASSERT_TRUE(b.PlaceChunk({1, 0}, 30, 0).ok());
  ASSERT_TRUE(b.PlaceChunk({0, 1}, 20, 1).ok());
  ASSERT_TRUE(b.PlaceChunk({0, 0}, 10, 0).ok());

  const auto visit = [](const Cluster& c) {
    std::vector<array::Coordinates> order;
    c.ForEachChunk([&](const array::Coordinates& coords, NodeId, int64_t) {
      order.push_back(coords);
    });
    return order;
  };
  const auto order_a = visit(a);
  const auto order_b = visit(b);
  ASSERT_EQ(order_a.size(), 4u);
  EXPECT_EQ(order_a, order_b);
  auto sorted = order_a;
  std::sort(sorted.begin(), sorted.end(), array::CoordinatesLess);
  EXPECT_EQ(order_a, sorted);
}

TEST(MovePlanTest, Accounting) {
  MovePlan plan;
  EXPECT_TRUE(plan.empty());
  plan.Add(ChunkMove{{0}, 100, 0, 2});
  plan.Add(ChunkMove{{1}, 50, 1, 3});
  EXPECT_EQ(plan.num_chunks(), 2);
  EXPECT_EQ(plan.TotalBytes(), 150);
  EXPECT_TRUE(plan.OnlyToNodesAtOrAbove(2));
  EXPECT_FALSE(plan.OnlyToNodesAtOrAbove(3));
}

}  // namespace
}  // namespace arraydb::cluster
