// Unit tests for chunk/cell coordinate utilities.

#include <gtest/gtest.h>

#include <unordered_set>

#include "array/coordinates.h"

namespace arraydb::array {
namespace {

TEST(CoordinatesTest, HashDistinguishesPermutations) {
  CoordinatesHash hash;
  EXPECT_NE(hash({1, 2, 3}), hash({3, 2, 1}));
  EXPECT_NE(hash({0, 1}), hash({1, 0}));
  EXPECT_EQ(hash({5, 6}), hash({5, 6}));
}

TEST(CoordinatesTest, HashSpreads) {
  CoordinatesHash hash;
  std::unordered_set<size_t> seen;
  for (int64_t x = 0; x < 30; ++x) {
    for (int64_t y = 0; y < 30; ++y) {
      seen.insert(hash({x, y}));
    }
  }
  EXPECT_EQ(seen.size(), 900u);  // No collisions on a small grid.
}

TEST(CoordinatesTest, ToString) {
  EXPECT_EQ(CoordinatesToString({1, -2, 3}), "(1, -2, 3)");
  EXPECT_EQ(CoordinatesToString({}), "()");
  EXPECT_EQ(CoordinatesToString({42}), "(42)");
}

TEST(CoordinatesTest, LexicographicOrder) {
  EXPECT_TRUE(CoordinatesLess({1, 2}, {1, 3}));
  EXPECT_TRUE(CoordinatesLess({1, 9}, {2, 0}));
  EXPECT_FALSE(CoordinatesLess({2, 0}, {1, 9}));
  EXPECT_FALSE(CoordinatesLess({1, 2}, {1, 2}));
}

TEST(CoordinatesTest, FaceAdjacency) {
  EXPECT_TRUE(AreFaceAdjacent({1, 1}, {1, 2}));
  EXPECT_TRUE(AreFaceAdjacent({1, 1}, {0, 1}));
  EXPECT_FALSE(AreFaceAdjacent({1, 1}, {2, 2}));  // Diagonal.
  EXPECT_FALSE(AreFaceAdjacent({1, 1}, {1, 1}));  // Identity.
  EXPECT_FALSE(AreFaceAdjacent({1, 1}, {1, 3}));  // Distance 2.
}

TEST(CoordinatesTest, FaceAdjacency3D) {
  EXPECT_TRUE(AreFaceAdjacent({4, 5, 6}, {4, 5, 7}));
  EXPECT_FALSE(AreFaceAdjacent({4, 5, 6}, {4, 6, 7}));
}

TEST(CoordinatesTest, Distances) {
  EXPECT_EQ(ManhattanDistance({0, 0}, {3, 4}), 7);
  EXPECT_EQ(ChebyshevDistance({0, 0}, {3, 4}), 4);
  EXPECT_EQ(ManhattanDistance({-1, -1}, {1, 1}), 4);
  EXPECT_EQ(ChebyshevDistance({5}, {5}), 0);
}

}  // namespace
}  // namespace arraydb::array
