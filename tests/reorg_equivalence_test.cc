// Determinism and equivalence tests for overlapped reorganization: queries
// interleaved with background migration must return results bit-identical
// to a fully quiesced cluster, and runner metrics must be bit-identical
// across thread counts and increment sizes (the migration schedule itself —
// the increment count — is the only schedule-dependent metric).

#include <gtest/gtest.h>

#include <vector>

#include "core/elastic_engine.h"
#include "core/partitioner_factory.h"
#include "reorg/reorg_engine.h"
#include "util/thread_pool.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/runner.h"

namespace arraydb::workload {
namespace {

RunnerConfig BaseConfig(core::PartitionerKind kind, ReorgMode mode) {
  RunnerConfig cfg;
  cfg.partitioner = kind;
  cfg.policy = ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  cfg.reorg.mode = mode;
  return cfg;
}

// Exact (bit-level) equality of everything except the increment count,
// which is the schedule knob itself.
void ExpectEquivalentModuloSchedule(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.cycles.size(), b.cycles.size());
  EXPECT_EQ(a.total_insert_minutes, b.total_insert_minutes);
  EXPECT_EQ(a.total_reorg_minutes, b.total_reorg_minutes);
  EXPECT_EQ(a.total_spj_minutes, b.total_spj_minutes);
  EXPECT_EQ(a.total_science_minutes, b.total_science_minutes);
  EXPECT_EQ(a.total_overlap_saved_minutes, b.total_overlap_saved_minutes);
  EXPECT_EQ(a.total_elapsed_minutes, b.total_elapsed_minutes);
  EXPECT_EQ(a.mean_rsd, b.mean_rsd);
  EXPECT_EQ(a.cost_node_hours, b.cost_node_hours);
  EXPECT_EQ(a.final_nodes, b.final_nodes);
  for (size_t i = 0; i < a.cycles.size(); ++i) {
    const auto& ca = a.cycles[i];
    const auto& cb = b.cycles[i];
    EXPECT_EQ(ca.nodes_before, cb.nodes_before);
    EXPECT_EQ(ca.nodes_after, cb.nodes_after);
    EXPECT_EQ(ca.load_gb, cb.load_gb);
    EXPECT_EQ(ca.insert_minutes, cb.insert_minutes);
    EXPECT_EQ(ca.reorg_minutes, cb.reorg_minutes);
    EXPECT_EQ(ca.spj_minutes, cb.spj_minutes);
    EXPECT_EQ(ca.science_minutes, cb.science_minutes);
    EXPECT_EQ(ca.rsd, cb.rsd);
    EXPECT_EQ(ca.moved_gb, cb.moved_gb);
    EXPECT_EQ(ca.chunks_moved, cb.chunks_moved);
    EXPECT_EQ(ca.overlap_saved_minutes, cb.overlap_saved_minutes);
    EXPECT_EQ(ca.elapsed_minutes, cb.elapsed_minutes);
    ASSERT_EQ(ca.query_minutes.size(), cb.query_minutes.size());
    for (size_t q = 0; q < ca.query_minutes.size(); ++q) {
      EXPECT_EQ(ca.query_minutes[q].first, cb.query_minutes[q].first);
      EXPECT_EQ(ca.query_minutes[q].second, cb.query_minutes[q].second);
    }
  }
}

TEST(ReorgEquivalenceTest, MidReorgQueriesMatchQuiescedCluster) {
  // Two identical engines are driven to the same pre-scale-out state. Run A
  // interleaves the benchmark queries with migration increments; run B
  // defers the entire migration until after the queries (a fully quiesced
  // cluster) and then applies the plan atomically. Query costs and final
  // placement must be bit-identical.
  AisWorkload ais;
  const auto make_engine = [&ais]() {
    core::ElasticEngine engine(
        core::MakePartitioner(core::PartitionerKind::kHilbertCurve,
                              ais.schema(), 2, ais.node_capacity_gb(),
                              ais.growth_dim()),
        2, ais.node_capacity_gb());
    for (int cycle = 0; cycle < 4; ++cycle) {
      engine.IngestBatch(ais.GenerateBatch(cycle));
    }
    return engine;
  };
  core::ElasticEngine a = make_engine();
  core::ElasticEngine b = make_engine();

  const auto prep_a = a.PrepareScaleOut(2);
  const auto prep_b = b.PrepareScaleOut(2);
  ASSERT_FALSE(prep_a.plan.empty());
  ASSERT_EQ(prep_a.plan.num_chunks(), prep_b.plan.num_chunks());

  reorg::ReorgOptions opts;
  opts.increment_gb = 1.0;  // Many small increments.
  reorg::IncrementalReorgEngine bg(&a.mutable_cluster(), &a.cost_model(),
                                   opts);
  ASSERT_TRUE(bg.Begin(prep_a.plan, prep_a.first_new_node).ok());
  ASSERT_TRUE(bg.active());

  exec::QueryEngine qe;
  const auto view = bg.View();
  std::vector<exec::QuerySpec> queries = ais.SpjQueries(4);
  for (const auto& q : ais.ScienceQueries(4)) queries.push_back(q);
  for (const auto& q : queries) {
    // Interleave: one migration increment between queries while any remain.
    if (bg.pending_chunks() > 0) {
      ASSERT_TRUE(bg.Step().ok());
    }
    const auto mid = qe.Simulate(q, view, ais.schema());
    const auto quiesced = qe.Simulate(q, b.cluster(), ais.schema());
    EXPECT_EQ(mid.minutes, quiesced.minutes) << q.name;
    EXPECT_EQ(mid.makespan_minutes, quiesced.makespan_minutes) << q.name;
    EXPECT_EQ(mid.network_minutes, quiesced.network_minutes) << q.name;
    EXPECT_EQ(mid.scanned_gb, quiesced.scanned_gb) << q.name;
    EXPECT_EQ(mid.chunks_touched, quiesced.chunks_touched) << q.name;
    EXPECT_EQ(mid.remote_neighbor_fetches, quiesced.remote_neighbor_fetches)
        << q.name;
  }
  ASSERT_TRUE(bg.Drain().ok());
  ASSERT_TRUE(b.mutable_cluster().Apply(prep_b.plan).ok());

  const auto chunks_a = a.cluster().AllChunks();
  const auto chunks_b = b.cluster().AllChunks();
  ASSERT_EQ(chunks_a.size(), chunks_b.size());
  for (size_t i = 0; i < chunks_a.size(); ++i) {
    EXPECT_EQ(chunks_a[i].node, chunks_b[i].node);
    EXPECT_EQ(chunks_a[i].bytes, chunks_b[i].bytes);
  }
}

TEST(ReorgEquivalenceTest, OverlappedRunDeterministicAcrossThreadsAndSizes) {
  AisWorkload ais;
  RunnerConfig base =
      BaseConfig(core::PartitionerKind::kHilbertCurve, ReorgMode::kOverlapped);
  std::vector<RunResult> results;
  // Thread counts (including 0 = auto) and increment budgets from
  // many-small-slices to one-shot must not change any metric but the
  // increment count.
  const struct {
    int threads;
    double increment_gb;
  } variants[] = {{1, 0.5}, {4, 0.5}, {0, 0.5}, {1, 8.0}, {1, 1e9}};
  for (const auto& v : variants) {
    RunnerConfig cfg = base;
    cfg.ingest.threads = v.threads;
    cfg.reorg.increment_gb = v.increment_gb;
    results.push_back(WorkloadRunner(cfg).Run(ais));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectEquivalentModuloSchedule(results[0], results[i]);
  }
  // The single-increment variant really ran one increment per reorg cycle.
  int reorg_cycles = 0;
  for (const auto& m : results.back().cycles) {
    if (m.chunks_moved > 0) {
      ++reorg_cycles;
      EXPECT_EQ(m.reorg_increments, 1);
    }
  }
  EXPECT_GT(reorg_cycles, 0);
  // The small-budget variant sliced more finely.
  EXPECT_GT(results[0].total_reorg_increments,
            results.back().total_reorg_increments);
}

TEST(ReorgEquivalenceTest, OverlappedMatchesBlockingPlacementAndWork) {
  // Placement-side metrics (inserts, reorg work, balance, trajectory) are
  // identical across modes; only the query phase observes a different — but
  // internally consistent — routing epoch.
  AisWorkload ais;
  const auto blocking =
      WorkloadRunner(
          BaseConfig(core::PartitionerKind::kHilbertCurve, ReorgMode::kBlocking))
          .Run(ais);
  const auto incremental =
      WorkloadRunner(BaseConfig(core::PartitionerKind::kHilbertCurve,
                                ReorgMode::kIncremental))
          .Run(ais);
  const auto overlapped =
      WorkloadRunner(BaseConfig(core::PartitionerKind::kHilbertCurve,
                                ReorgMode::kOverlapped))
          .Run(ais);
  for (const auto* r : {&incremental, &overlapped}) {
    ASSERT_EQ(r->cycles.size(), blocking.cycles.size());
    EXPECT_EQ(r->total_insert_minutes, blocking.total_insert_minutes);
    EXPECT_EQ(r->total_reorg_minutes, blocking.total_reorg_minutes);
    EXPECT_EQ(r->final_nodes, blocking.final_nodes);
    EXPECT_EQ(r->mean_rsd, blocking.mean_rsd);
    for (size_t i = 0; i < r->cycles.size(); ++i) {
      EXPECT_EQ(r->cycles[i].moved_gb, blocking.cycles[i].moved_gb);
      EXPECT_EQ(r->cycles[i].chunks_moved, blocking.cycles[i].chunks_moved);
      EXPECT_EQ(r->cycles[i].load_gb, blocking.cycles[i].load_gb);
      EXPECT_EQ(r->cycles[i].rsd, blocking.cycles[i].rsd);
      EXPECT_TRUE(r->cycles[i].reorg_only_to_new_nodes);
    }
  }
  // Incremental mode keeps the serial schedule; overlap buys elapsed time.
  // (NEAR, not EQ: the totals are accumulated in different summation
  // orders.)
  EXPECT_NEAR(incremental.total_elapsed_minutes,
              incremental.total_workload_minutes(), 1e-9);
  EXPECT_LT(overlapped.total_elapsed_minutes,
            blocking.total_workload_minutes());
  EXPECT_GT(overlapped.total_overlap_saved_minutes, 0.0);
  EXPECT_NEAR(overlapped.total_elapsed_minutes,
              overlapped.total_workload_minutes() -
                  overlapped.total_overlap_saved_minutes,
              1e-9);
  // The moved-GB trajectory is mode-independent.
  EXPECT_EQ(overlapped.MovedGbTrajectory(), blocking.MovedGbTrajectory());
}

TEST(ReorgEquivalenceTest, EmptyPlanWorkloadsRunOverlapped) {
  // Append never moves data on scale-out: the overlapped machinery must
  // degrade to a clean no-op (empty MovePlan edge case).
  ModisWorkload modis;
  const auto blocking =
      WorkloadRunner(
          BaseConfig(core::PartitionerKind::kAppend, ReorgMode::kBlocking))
          .Run(modis);
  const auto overlapped =
      WorkloadRunner(
          BaseConfig(core::PartitionerKind::kAppend, ReorgMode::kOverlapped))
          .Run(modis);
  ASSERT_EQ(overlapped.cycles.size(), blocking.cycles.size());
  EXPECT_EQ(overlapped.total_reorg_increments, 0);
  EXPECT_EQ(overlapped.total_overlap_saved_minutes, 0.0);
  EXPECT_NEAR(overlapped.total_elapsed_minutes,
              blocking.total_workload_minutes(), 1e-9);
  for (size_t i = 0; i < overlapped.cycles.size(); ++i) {
    EXPECT_EQ(overlapped.cycles[i].chunks_moved, 0);
    EXPECT_EQ(overlapped.cycles[i].spj_minutes, blocking.cycles[i].spj_minutes);
    EXPECT_EQ(overlapped.cycles[i].science_minutes,
              blocking.cycles[i].science_minutes);
  }
}

TEST(ReorgEquivalenceTest, IngestThreadsZeroResolvesToHardwareConcurrency) {
  // The 0-means-auto knob is interpreted in exactly one place and surfaces
  // through every consumer.
  const int resolved = util::ResolveThreadCount(0);
  EXPECT_GE(resolved, 1);
  AisWorkload ais;
  core::ElasticEngine engine(
      core::MakePartitioner(core::PartitionerKind::kHilbertCurve, ais.schema(),
                            2, ais.node_capacity_gb(), ais.growth_dim()),
      2, ais.node_capacity_gb());
  engine.set_ingest_threads(0);
  EXPECT_EQ(engine.ingest_threads(), resolved);
  engine.set_ingest_threads(3);
  EXPECT_EQ(engine.ingest_threads(), 3);
}

}  // namespace
}  // namespace arraydb::workload
