// Per-partitioner unit tests: scheme-specific behaviours from §4.2.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "core/append.h"
#include "core/consistent_hash.h"
#include "core/extendible_hash.h"
#include "core/hilbert_partitioner.h"
#include "core/kdtree.h"
#include "core/partitioner_factory.h"
#include "core/quadtree.h"
#include "core/round_robin.h"
#include "core/uniform_range.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace arraydb::core {
namespace {

using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::ChunkInfo;
using array::Coordinates;
using array::DimensionDesc;

ArraySchema TestSchema() {
  return ArraySchema("grid",
                     {DimensionDesc{"x", 0, 15, 1, false},
                      DimensionDesc{"y", 0, 15, 1, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
}

ChunkInfo MakeChunk(Coordinates coords, int64_t bytes) {
  ChunkInfo info;
  info.coords = std::move(coords);
  info.cell_count = bytes / 8;
  info.bytes = bytes;
  return info;
}

// ---------------------------------------------------------------- Append --

TEST(AppendTest, FillsNodesInOrder) {
  cluster::Cluster cluster(3, 1.0);  // 1 GB nodes.
  AppendPartitioner append(3, 1.0, 0.9);
  const int64_t half_gb = static_cast<int64_t>(util::kGiB / 2);
  // First two chunks fit on node 0 (0.9 GB usable -> one 0.5 GB chunk,
  // the second spills).
  const auto c0 = MakeChunk({0, 0}, half_gb);
  EXPECT_EQ(append.PlaceChunk(cluster, c0), 0);
  ASSERT_TRUE(cluster.PlaceChunk(c0.coords, c0.bytes, 0).ok());
  const auto c1 = MakeChunk({0, 1}, half_gb);
  EXPECT_EQ(append.PlaceChunk(cluster, c1), 1);
  ASSERT_TRUE(cluster.PlaceChunk(c1.coords, c1.bytes, 1).ok());
  const auto c2 = MakeChunk({0, 2}, half_gb);
  EXPECT_EQ(append.PlaceChunk(cluster, c2), 2);
}

TEST(AppendTest, ScaleOutMovesNothing) {
  cluster::Cluster cluster(2, 1.0);
  AppendPartitioner append(2, 1.0);
  for (int i = 0; i < 10; ++i) {
    const auto c = MakeChunk({i, 0}, 1 << 20);
    const NodeId n = append.PlaceChunk(cluster, c);
    ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
  }
  cluster.AddNodes(2);
  const auto plan = append.PlanScaleOut(cluster, 2);
  EXPECT_TRUE(plan.empty()) << "Append must be a constant-time scale-out";
}

TEST(AppendTest, LocateRemembersPlacements) {
  cluster::Cluster cluster(2, 1.0);
  AppendPartitioner append(2, 1.0);
  const auto c = MakeChunk({3, 4}, 100);
  const NodeId n = append.PlaceChunk(cluster, c);
  EXPECT_EQ(append.Locate({3, 4}), n);
  EXPECT_EQ(append.Locate({9, 9}), kInvalidNode);
}

TEST(AppendTest, OverflowStaysOnLastNode) {
  cluster::Cluster cluster(2, 0.001);  // Tiny capacity.
  AppendPartitioner append(2, 0.001);
  for (int i = 0; i < 20; ++i) {
    const auto c = MakeChunk({i, 0}, 1 << 20);
    const NodeId n = append.PlaceChunk(cluster, c);
    ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    EXPECT_LT(n, 2);
  }
  EXPECT_EQ(append.current_target(), 1);
}

// ----------------------------------------------------------- Round Robin --

TEST(RoundRobinTest, ModuloAddressing) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(4, 1.0);
  RoundRobinPartitioner rr(schema, 4);
  for (int64_t x = 0; x < 4; ++x) {
    for (int64_t y = 0; y < 4; ++y) {
      const int64_t lin = schema.LinearizeChunkIndex({x, y});
      EXPECT_EQ(rr.Locate({x, y}), static_cast<NodeId>(lin % 4));
    }
  }
}

TEST(RoundRobinTest, ScaleOutIsGlobal) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(4, 1.0);
  RoundRobinPartitioner rr(schema, 4);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const auto c = MakeChunk({x, y}, 1000);
      const NodeId n = rr.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(2);
  const auto plan = rr.PlanScaleOut(cluster, 4);
  // i mod 4 == i mod 6 only when i mod 12 is in {0,1,2,3}: 2/3 of chunks move,
  // and many moves target preexisting nodes (not incremental).
  EXPECT_NEAR(static_cast<double>(plan.num_chunks()), 256.0 * 2.0 / 3.0, 8.0);
  EXPECT_FALSE(plan.OnlyToNodesAtOrAbove(4));
}

// ------------------------------------------------------- Consistent Hash --

TEST(ConsistentHashTest, RingHasVnodes) {
  ConsistentHashPartitioner ch(4, 64);
  EXPECT_EQ(ch.num_ring_points(), 4 * 64);
}

TEST(ConsistentHashTest, LookupIsStable) {
  cluster::Cluster cluster(4, 1.0);
  ConsistentHashPartitioner ch(4);
  const auto c = MakeChunk({7, 3}, 10);
  const NodeId n1 = ch.PlaceChunk(cluster, c);
  const NodeId n2 = ch.Locate({7, 3});
  EXPECT_EQ(n1, n2);
}

TEST(ConsistentHashTest, ScaleOutMovesOnlyToNewNodes) {
  cluster::Cluster cluster(2, 1.0);
  ConsistentHashPartitioner ch(2);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const auto c = MakeChunk({x, y}, 1000);
      const NodeId n = ch.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(2);
  const auto plan = ch.PlanScaleOut(cluster, 2);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.OnlyToNodesAtOrAbove(2))
      << "consistent hashing must only capture arcs for new nodes";
  // Roughly half the chunks should move when doubling the cluster.
  EXPECT_GT(plan.num_chunks(), 256 / 4);
  EXPECT_LT(plan.num_chunks(), 3 * 256 / 4);
}

TEST(ConsistentHashTest, ChunkCountsRoughlyBalanced) {
  cluster::Cluster cluster(4, 1.0);
  ConsistentHashPartitioner ch(4);
  std::vector<int> counts(4, 0);
  for (int64_t x = 0; x < 32; ++x) {
    for (int64_t y = 0; y < 32; ++y) {
      ++counts[static_cast<size_t>(ch.Locate({x, y}))];
    }
  }
  for (int n = 0; n < 4; ++n) {
    EXPECT_GT(counts[static_cast<size_t>(n)], 1024 / 4 / 3);
    EXPECT_LT(counts[static_cast<size_t>(n)], 3 * 1024 / 4);
  }
}

// ------------------------------------------------------- Extendible Hash --

TEST(ExtendibleHashTest, InitialDepthCoversNodes) {
  ExtendibleHashPartitioner eh3(3);
  EXPECT_EQ(eh3.global_depth(), 2);  // 4 directory entries for 3 nodes.
  ExtendibleHashPartitioner eh8(8);
  EXPECT_EQ(eh8.global_depth(), 3);
}

TEST(ExtendibleHashTest, SplitsMostLoadedNode) {
  cluster::Cluster cluster(2, 1.0);
  ExtendibleHashPartitioner eh(2);
  util::Rng rng(17);
  // Skewed load: every chunk is large, so whichever node accumulates more
  // bytes must shed data at scale-out.
  for (int64_t i = 0; i < 200; ++i) {
    const auto c = MakeChunk({i, 0}, 1 << 20);
    const NodeId n = eh.PlaceChunk(cluster, c);
    ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
  }
  const NodeId loaded = MostLoadedNode(cluster);
  cluster.AddNodes(1);
  const auto plan = eh.PlanScaleOut(cluster, 2);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.OnlyToNodesAtOrAbove(2));
  for (const auto& m : plan.moves()) {
    EXPECT_EQ(m.from, loaded) << "split must come from the loaded node";
  }
}

TEST(ExtendibleHashTest, RepeatedScaleOutsDeepenDirectory) {
  cluster::Cluster cluster(1, 1.0);
  ExtendibleHashPartitioner eh(1);
  const int start_depth = eh.global_depth();
  for (int64_t i = 0; i < 100; ++i) {
    const auto c = MakeChunk({i, 1}, 1 << 18);
    const NodeId n = eh.PlaceChunk(cluster, c);
    ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
  }
  for (int round = 0; round < 3; ++round) {
    const int old = cluster.num_nodes();
    cluster.AddNodes(1);
    ASSERT_TRUE(cluster.Apply(eh.PlanScaleOut(cluster, old)).ok());
  }
  EXPECT_GT(eh.global_depth(), start_depth);
}

// --------------------------------------------------------- Hilbert Curve --

TEST(HilbertPartitionerTest, InitialRangesPartitionCurve) {
  const ArraySchema schema = TestSchema();
  HilbertPartitioner hp(schema, 4);
  EXPECT_EQ(hp.num_ranges(), 4);
  // Every grid chunk must be locatable.
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const NodeId n = hp.Locate({x, y});
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 4);
    }
  }
}

TEST(HilbertPartitionerTest, SplitHalvesTheLoadedRange) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(2, 1.0);
  HilbertPartitioner hp(schema, 2);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const auto c = MakeChunk({x, y}, 1 << 16);
      const NodeId n = hp.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  const auto loads_before = cluster.NodeLoadsGb();
  const NodeId loaded = MostLoadedNode(cluster);
  cluster.AddNodes(1);
  const auto plan = hp.PlanScaleOut(cluster, 2);
  ASSERT_TRUE(plan.OnlyToNodesAtOrAbove(2));
  ASSERT_TRUE(cluster.Apply(plan).ok());
  // The victim shed roughly half its bytes to the new node.
  EXPECT_NEAR(cluster.NodeLoadGb(2),
              loads_before[static_cast<size_t>(loaded)] / 2.0,
              loads_before[static_cast<size_t>(loaded)] * 0.2);
}

TEST(HilbertPartitionerTest, RanksAreDistinctAcrossGrid) {
  const ArraySchema schema = TestSchema();
  HilbertPartitioner hp(schema, 2);
  std::set<uint64_t> ranks;
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      ranks.insert(hp.RankOf({x, y}));
    }
  }
  EXPECT_EQ(ranks.size(), 256u);
}

TEST(HilbertPartitionerDeathTest, RejectsSchemasAboveTheStateTableLimit) {
  // Schema-driven codec construction routes through HilbertCodec::Create:
  // a projected rank above the 6-dim state tables fails loudly at
  // partitioner construction (naming the limit) instead of silently
  // dropping to the slower non-table path.
  std::vector<DimensionDesc> dims;
  for (int d = 0; d < 7; ++d) {
    std::string name = "d";
    name += static_cast<char>('0' + d);
    dims.push_back(DimensionDesc{name, 0, 3, 1, false});
  }
  const ArraySchema schema("sevendim", dims,
                           {AttributeDesc{"v", AttrType::kDouble}});
  EXPECT_DEATH(HilbertPartitioner(schema, 2, SpatialProjection::kNone),
               "state tables");
}

// -------------------------------------------------------------- K-d Tree --

TEST(KdTreeTest, BootstrapCoversGrid) {
  const ArraySchema schema = TestSchema();
  KdTreePartitioner kd(schema, 4);
  std::vector<int> counts(4, 0);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const NodeId n = kd.Locate({x, y});
      ASSERT_GE(n, 0);
      ASSERT_LT(n, 4);
      ++counts[static_cast<size_t>(n)];
    }
  }
  // Midpoint bootstrap on a 16x16 grid gives four 8x8 quadrants.
  for (int n = 0; n < 4; ++n) EXPECT_EQ(counts[static_cast<size_t>(n)], 64);
}

TEST(KdTreeTest, SplitsAtWeightedMedian) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(1, 1.0);
  KdTreePartitioner kd(schema, 1);
  // All mass on the left quarter of the x axis.
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const int64_t bytes = x < 4 ? (1 << 20) : 1;
      const auto c = MakeChunk({x, y}, bytes);
      const NodeId n = kd.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(1);
  ASSERT_TRUE(cluster.Apply(kd.PlanScaleOut(cluster, 1)).ok());
  // The median plane must fall inside the dense strip, not at the midpoint:
  // node 0 keeps x < split, node 1 takes the rest; loads should be close.
  const auto loads = cluster.NodeLoadsGb();
  EXPECT_NEAR(loads[0], loads[1], loads[0] * 0.75);
  // Dense strip is split: node 0 keeps only low-x chunks.
  EXPECT_EQ(kd.Locate({0, 0}), 0);
  EXPECT_EQ(kd.Locate({15, 15}), 1);
}

TEST(KdTreeTest, DepthGrowsLogarithmically) {
  const ArraySchema schema = TestSchema();
  KdTreePartitioner kd(schema, 8);
  // Power-of-two bootstrap: every leaf sits at depth 3.
  for (NodeId h = 0; h < 8; ++h) {
    EXPECT_EQ(kd.LeafDepth(h), 3);
  }
}

// -------------------------------------------------------- Incr. Quadtree --

TEST(QuadtreeTest, BootstrapAssignsSiblingCells) {
  const ArraySchema schema = TestSchema();
  QuadtreePartitioner qt(schema, 2);
  // Two hosts: root was quartered; host 1 received half of the quarters.
  EXPECT_EQ(qt.HostLevel(0), 1);
  EXPECT_EQ(qt.HostLevel(1), 1);
  EXPECT_EQ(qt.HostCellCount(0) + qt.HostCellCount(1), 4);
}

TEST(QuadtreeTest, EveryChunkIsLocatable) {
  const ArraySchema schema = TestSchema();
  QuadtreePartitioner qt(schema, 3);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const NodeId n = qt.Locate({x, y});
      EXPECT_GE(n, 0);
      EXPECT_LT(n, 3);
    }
  }
}

TEST(QuadtreeTest, SkewSplitTargetsHotQuarter) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(1, 1.0);
  QuadtreePartitioner qt(schema, 1);
  // Hot right half: the mass spreads over the two right quarters, so a
  // quarter (or adjacent pair) exists whose size is close to half.
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const int64_t bytes = x >= 8 ? (1 << 20) : 64;
      const auto c = MakeChunk({x, y}, bytes);
      const NodeId n = qt.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(1);
  const auto plan = qt.PlanScaleOut(cluster, 1);
  EXPECT_TRUE(plan.OnlyToNodesAtOrAbove(1));
  ASSERT_TRUE(cluster.Apply(plan).ok());
  // The split subset should carry close to half the bytes.
  const auto loads = cluster.NodeLoadsGb();
  const double total = loads[0] + loads[1];
  EXPECT_GT(loads[1], total * 0.2);
  EXPECT_LT(loads[1], total * 0.8);
}

TEST(QuadtreeTest, ExtremePointSkewShipsTheHotQuarter) {
  // When one quarter holds essentially all bytes, "closest to half" selects
  // that quarter itself — the algorithm isolates the hotspot so the *next*
  // split can subdivide it further.
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(1, 1.0);
  QuadtreePartitioner qt(schema, 1);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const int64_t bytes = (x >= 12 && y >= 12) ? (1 << 20) : 64;
      const auto c = MakeChunk({x, y}, bytes);
      const NodeId n = qt.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(1);
  ASSERT_TRUE(cluster.Apply(qt.PlanScaleOut(cluster, 1)).ok());
  // The hot corner now lives on the new node.
  EXPECT_EQ(qt.Locate({15, 15}), 1);
  EXPECT_EQ(qt.Locate({0, 0}), 0);
  // Two further splits drill down to the hotspot's own cell and finally
  // divide its mass roughly in half.
  cluster.AddNodes(1);
  ASSERT_TRUE(cluster.Apply(qt.PlanScaleOut(cluster, 2)).ok());
  cluster.AddNodes(1);
  ASSERT_TRUE(cluster.Apply(qt.PlanScaleOut(cluster, 3)).ok());
  const auto loads = cluster.NodeLoadsGb();
  const double total = loads[0] + loads[1] + loads[2] + loads[3];
  EXPECT_LT(util::Max(loads), total * 0.7);
}

// ---------------------------------------------------------- Uniform Range --

TEST(UniformRangeTest, LeavesAreGridSlots) {
  const ArraySchema schema = TestSchema();
  UniformRangePartitioner ur(schema, 3);
  EXPECT_EQ(ur.num_leaves(), 256u);
  std::set<uint64_t> leaves;
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      leaves.insert(ur.LeafOf({x, y}));
    }
  }
  EXPECT_EQ(leaves.size(), 256u);  // Bijective on the padded grid.
}

TEST(UniformRangeTest, BlocksAreBalancedByLeafCount) {
  const ArraySchema schema = TestSchema();
  UniformRangePartitioner ur(schema, 3);
  std::vector<int> counts(3, 0);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      ++counts[static_cast<size_t>(ur.Locate({x, y}))];
    }
  }
  // 256 leaves over 3 hosts: 86/85/85.
  for (int n = 0; n < 3; ++n) {
    EXPECT_NEAR(counts[static_cast<size_t>(n)], 256.0 / 3.0, 1.0);
  }
}

TEST(UniformRangeTest, LeafOrderIsSpatial) {
  const ArraySchema schema = TestSchema();
  UniformRangePartitioner ur(schema, 2);
  // With 2 hosts the grid halves along the first split dimension: chunks
  // with x < 8 on host 0, x >= 8 on host 1.
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      EXPECT_EQ(ur.Locate({x, y}), x < 8 ? 0 : 1);
    }
  }
}

TEST(UniformRangeTest, ScaleOutIsGlobalRebalance) {
  const ArraySchema schema = TestSchema();
  cluster::Cluster cluster(2, 1.0);
  UniformRangePartitioner ur(schema, 2);
  for (int64_t x = 0; x < 16; ++x) {
    for (int64_t y = 0; y < 16; ++y) {
      const auto c = MakeChunk({x, y}, 1000);
      const NodeId n = ur.PlaceChunk(cluster, c);
      ASSERT_TRUE(cluster.PlaceChunk(c.coords, c.bytes, n).ok());
    }
  }
  cluster.AddNodes(1);
  const auto plan = ur.PlanScaleOut(cluster, 2);
  // Going 2 -> 3 reassigns about a third of the grid, including moves
  // between preexisting nodes.
  EXPECT_GT(plan.num_chunks(), 40);
  EXPECT_FALSE(plan.OnlyToNodesAtOrAbove(2));
}

// ---------------------------------------------------------------- Factory --

TEST(FactoryTest, AllKindsConstruct) {
  const ArraySchema schema = TestSchema();
  for (const auto kind : AllPartitionerKinds()) {
    const auto p = MakePartitioner(kind, schema, 2, 100.0);
    ASSERT_NE(p, nullptr);
    EXPECT_STREQ(p->name(), PartitionerKindName(kind));
  }
}

TEST(FactoryTest, Table1FeatureTaxonomy) {
  const ArraySchema schema = TestSchema();
  const auto features = [&](PartitionerKind kind) {
    return MakePartitioner(kind, schema, 2, 100.0)->features();
  };
  // Table 1, row by row.
  EXPECT_EQ(features(PartitionerKind::kAppend),
            kIncrementalScaleOut | kSkewAware);
  EXPECT_EQ(features(PartitionerKind::kConsistentHash),
            kIncrementalScaleOut | kFineGrainedPartitioning);
  EXPECT_EQ(features(PartitionerKind::kExtendibleHash),
            kIncrementalScaleOut | kFineGrainedPartitioning | kSkewAware);
  EXPECT_EQ(features(PartitionerKind::kHilbertCurve),
            kIncrementalScaleOut | kSkewAware | kNDimensionalClustering);
  EXPECT_EQ(features(PartitionerKind::kIncrementalQuadtree),
            kIncrementalScaleOut | kSkewAware | kNDimensionalClustering);
  EXPECT_EQ(features(PartitionerKind::kKdTree),
            kIncrementalScaleOut | kSkewAware | kNDimensionalClustering);
  EXPECT_EQ(features(PartitionerKind::kRoundRobin), kFineGrainedPartitioning);
  EXPECT_EQ(features(PartitionerKind::kUniformRange),
            kNDimensionalClustering);
}

TEST(FeaturesToStringTest, Renders) {
  EXPECT_EQ(FeaturesToString(0), "none");
  EXPECT_EQ(FeaturesToString(kIncrementalScaleOut | kSkewAware),
            "incremental|skew-aware");
}

}  // namespace
}  // namespace arraydb::core
