// Tests for the spatial projection and for the growth-dimension behaviour
// of the range partitioners: with time excluded, every day's inserts must
// spread across all hosts and spatial columns stay collocated over time.

#include <gtest/gtest.h>

#include <set>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "core/partitioner_factory.h"
#include "core/spatial.h"
#include "util/rng.h"

namespace arraydb::core {
namespace {

using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::ChunkInfo;
using array::Coordinates;
using array::DimensionDesc;

ArraySchema TimeSpatialSchema() {
  return ArraySchema("ts",
                     {DimensionDesc{"time", 0, 19, 1, false},
                      DimensionDesc{"x", 0, 15, 1, false},
                      DimensionDesc{"y", 0, 15, 1, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
}

TEST(SpatialProjectionTest, DropsGrowthDimension) {
  const ArraySchema schema = TimeSpatialSchema();
  SpatialProjection proj(schema, /*growth_dim=*/0);
  EXPECT_EQ(proj.num_dims(), 2);
  EXPECT_EQ(proj.extents(), (Coordinates{16, 16}));
  EXPECT_EQ(proj.Project({7, 3, 9}), (Coordinates{3, 9}));
}

TEST(SpatialProjectionTest, MiddleGrowthDimension) {
  const ArraySchema schema = TimeSpatialSchema();
  SpatialProjection proj(schema, /*growth_dim=*/1);
  EXPECT_EQ(proj.extents(), (Coordinates{20, 16}));
  EXPECT_EQ(proj.Project({7, 3, 9}), (Coordinates{7, 9}));
}

TEST(SpatialProjectionTest, NoneKeepsFullSpace) {
  const ArraySchema schema = TimeSpatialSchema();
  SpatialProjection proj(schema, SpatialProjection::kNone);
  EXPECT_EQ(proj.num_dims(), 3);
  EXPECT_EQ(proj.Project({7, 3, 9}), (Coordinates{7, 3, 9}));
}

class GrowthDimSweep : public testing::TestWithParam<PartitionerKind> {};

// Each day's inserts must land on every host once the cluster has data —
// the property that keeps the demand balanced while the store grows.
TEST_P(GrowthDimSweep, DailyInsertsSpreadAcrossAllNodes) {
  const ArraySchema schema = TimeSpatialSchema();
  cluster::Cluster cluster(4, 1.0);
  auto partitioner = MakePartitioner(GetParam(), schema, 4, 1.0,
                                     /*growth_dim=*/0);
  util::Rng rng(77);
  for (int64_t t = 0; t < 6; ++t) {
    std::set<cluster::NodeId> nodes_hit;
    for (int64_t x = 0; x < 16; ++x) {
      for (int64_t y = 0; y < 16; ++y) {
        ChunkInfo info;
        info.coords = {t, x, y};
        info.bytes = 10000 + static_cast<int64_t>(rng.NextUniform(0, 2000));
        info.cell_count = info.bytes / 8;
        const auto node = partitioner->PlaceChunk(cluster, info);
        ASSERT_TRUE(cluster.PlaceChunk(info.coords, info.bytes, node).ok());
        nodes_hit.insert(node);
      }
    }
    EXPECT_EQ(nodes_hit.size(), 4u)
        << PartitionerKindName(GetParam()) << " concentrated day " << t;
  }
}

// Spatial columns stay collocated: the same (x, y) cell at different times
// must live on the same node.
TEST_P(GrowthDimSweep, TimeColumnsAreCollocated) {
  const ArraySchema schema = TimeSpatialSchema();
  cluster::Cluster cluster(4, 1.0);
  auto partitioner = MakePartitioner(GetParam(), schema, 4, 1.0,
                                     /*growth_dim=*/0);
  for (int64_t x = 0; x < 16; x += 3) {
    for (int64_t y = 0; y < 16; y += 3) {
      const cluster::NodeId first = partitioner->Locate({0, x, y});
      for (int64_t t = 1; t < 20; ++t) {
        EXPECT_EQ(partitioner->Locate({t, x, y}), first)
            << "column (" << x << "," << y << ") split across time";
      }
    }
  }
}

// Scale-out keeps the collocation property.
TEST_P(GrowthDimSweep, CollocationSurvivesScaleOut) {
  const ArraySchema schema = TimeSpatialSchema();
  cluster::Cluster cluster(2, 1.0);
  auto partitioner = MakePartitioner(GetParam(), schema, 2, 1.0,
                                     /*growth_dim=*/0);
  util::Rng rng(5);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t x = 0; x < 16; ++x) {
      for (int64_t y = 0; y < 16; ++y) {
        ChunkInfo info;
        info.coords = {t, x, y};
        info.bytes = 5000 + static_cast<int64_t>(rng.NextUniform(0, 50000));
        const auto node = partitioner->PlaceChunk(cluster, info);
        ASSERT_TRUE(cluster.PlaceChunk(info.coords, info.bytes, node).ok());
      }
    }
  }
  cluster.AddNodes(2);
  ASSERT_TRUE(cluster.Apply(partitioner->PlanScaleOut(cluster, 2)).ok());
  for (int64_t x = 0; x < 16; x += 2) {
    for (int64_t y = 0; y < 16; y += 2) {
      const cluster::NodeId first = partitioner->Locate({0, x, y});
      for (int64_t t = 1; t < 4; ++t) {
        EXPECT_EQ(partitioner->Locate({t, x, y}), first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpatialPartitioners, GrowthDimSweep,
    testing::Values(PartitionerKind::kHilbertCurve,
                    PartitionerKind::kIncrementalQuadtree,
                    PartitionerKind::kKdTree,
                    PartitionerKind::kUniformRange),
    [](const testing::TestParamInfo<PartitionerKind>& info) {
      std::string name = PartitionerKindName(info.param);
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace arraydb::core
