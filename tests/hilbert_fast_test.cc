// Property tests for the Hilbert fast paths: the table-driven codec and
// the batched ranking API must agree exactly with the reference per-bit
// implementation on every input — the fast paths change performance, not
// the curve.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "array/coordinates.h"
#include "hilbert/hilbert.h"
#include "util/rng.h"

namespace arraydb::hilbert {
namespace {

TEST(HilbertFastTest, CodecMatchesReferenceExhaustivelySmall) {
  // Exhaustive agreement on small cubes across dimensionalities covered by
  // the state machine (n <= 6).
  for (int n = 1; n <= 4; ++n) {
    const int bits = n <= 2 ? 4 : 2;
    const uint64_t side = 1ULL << bits;
    uint64_t total = 1;
    for (int d = 0; d < n; ++d) total *= side;
    std::vector<uint32_t> point(static_cast<size_t>(n));
    for (uint64_t code = 0; code < total; ++code) {
      uint64_t rest = code;
      for (int d = 0; d < n; ++d) {
        point[static_cast<size_t>(d)] = static_cast<uint32_t>(rest % side);
        rest /= side;
      }
      ASSERT_EQ(HilbertIndex(point, bits),
                HilbertIndexReference(point, bits))
          << "n=" << n << " code=" << code;
    }
  }
}

TEST(HilbertFastTest, CodecMatchesReferenceRandomly) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 2000; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(6));
    const int max_bits = 64 / n;
    // Cap at 32 (uint32 coordinates) so n=1/n=2 draws exercise the 3rd and
    // 4th coordinate-byte interleave paths.
    const int bits = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(std::min(max_bits, 32))));
    std::vector<uint32_t> point(static_cast<size_t>(n));
    for (auto& c : point) {
      c = static_cast<uint32_t>(rng.NextBounded(1ULL << bits));
    }
    ASSERT_EQ(HilbertIndex(point, bits), HilbertIndexReference(point, bits))
        << "n=" << n << " bits=" << bits;
  }
}

TEST(HilbertFastTest, HighDimensionalFallbackMatchesReference) {
  // n > CurveTables::kMaxStateDims exercises the interleaved fallback.
  util::Rng rng(7);
  for (const int n : {7, 8, 10}) {
    const int bits = 64 / n >= 4 ? 4 : 64 / n;
    std::vector<uint32_t> point(static_cast<size_t>(n));
    for (int trial = 0; trial < 200; ++trial) {
      for (auto& c : point) {
        c = static_cast<uint32_t>(rng.NextBounded(1ULL << bits));
      }
      ASSERT_EQ(HilbertIndex(point, bits),
                HilbertIndexReference(point, bits))
          << "n=" << n;
    }
  }
}

// Edge-case documentation of the fast-path limit: the precomputed state
// tables stop at CurveTables::kMaxStateDims = 6, so the checked factory
// declines higher-rank schemas with InvalidArgument (instead of silently
// dropping to the slower non-table path the raw constructor uses, or
// CHECK-aborting on a geometry the tables could never index).
TEST(HilbertFastTest, CreateRejectsSchemasAboveTheStateTableLimit) {
  // The boundary itself is fine...
  const auto at_limit = HilbertCodec::Create(6, 10);
  ASSERT_TRUE(at_limit.ok());
  const std::vector<uint32_t> probe = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(at_limit->Rank(probe.data()), HilbertIndexReference(probe, 10));
  // ...one past it is not.
  const auto above = HilbertCodec::Create(7, 8);
  ASSERT_FALSE(above.ok());
  EXPECT_EQ(above.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(above.status().message().find("state tables"), std::string::npos);
  // Invalid geometry is also a status, not an abort.
  EXPECT_FALSE(HilbertCodec::Create(0, 4).ok());
  EXPECT_FALSE(HilbertCodec::Create(3, 0).ok());
  EXPECT_FALSE(HilbertCodec::Create(2, 33).ok());
  EXPECT_FALSE(HilbertCodec::Create(64, 2).ok());
  // The raw constructor's high-dimensional fallback stays available (and
  // reference-exact; see HighDimensionalFallbackMatchesReference).
  const HilbertCodec fallback(7, 8);
  const std::vector<uint32_t> p7 = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(fallback.Rank(p7.data()), HilbertIndexReference(p7, 8));
}

TEST(HilbertFastTest, InverseRoundTripsThroughFastForward) {
  util::Rng rng(33);
  for (int trial = 0; trial < 500; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    const int bits = 1 + static_cast<int>(rng.NextBounded(
                             static_cast<uint64_t>(std::min(64 / n, 10))));
    const uint64_t space = 1ULL << (n * bits);
    const uint64_t index = rng.NextBounded(space);
    const auto point = HilbertPoint(index, n, bits);
    ASSERT_EQ(HilbertIndex(point, bits), index);
  }
}

TEST(HilbertFastTest, RankMatchesReferenceOnRandomRectangles) {
  util::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    array::Coordinates extents(static_cast<size_t>(n));
    for (auto& e : extents) {
      e = 1 + static_cast<int64_t>(rng.NextBounded(40));
    }
    for (int probe = 0; probe < 100; ++probe) {
      array::Coordinates coords(static_cast<size_t>(n));
      for (size_t d = 0; d < coords.size(); ++d) {
        coords[d] = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(extents[d])));
      }
      ASSERT_EQ(HilbertRank(coords, extents),
                HilbertRankReference(coords, extents));
    }
  }
}

// The headline property: HilbertRankBatch is exactly the scalar HilbertRank
// applied pointwise, on random rectangular grids of random dimensionality.
TEST(HilbertFastTest, BatchEquivalentToScalarOnRandomRectangularGrids) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    array::Coordinates extents(static_cast<size_t>(n));
    for (auto& e : extents) {
      e = 1 + static_cast<int64_t>(rng.NextBounded(30));
    }
    std::vector<array::Coordinates> points;
    const size_t count = 1 + rng.NextBounded(512);
    points.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      array::Coordinates coords(static_cast<size_t>(n));
      for (size_t d = 0; d < coords.size(); ++d) {
        coords[d] = static_cast<int64_t>(
            rng.NextBounded(static_cast<uint64_t>(extents[d])));
      }
      points.push_back(std::move(coords));
    }
    const auto batch = HilbertRankBatch(points, extents);
    ASSERT_EQ(batch.size(), points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      ASSERT_EQ(batch[i], HilbertRank(points[i], extents))
          << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(HilbertFastTest, BatchOfEmptyInputIsEmpty) {
  EXPECT_TRUE(HilbertRankBatch({}, {4, 4}).empty());
}

// RankPacked — the join's batched key kernel over a chunk's packed
// coordinate column — is exactly Rank applied pointwise after the per-dim
// lo offset, including on negative coordinates.
TEST(HilbertFastTest, RankPackedEquivalentToScalarWithOffsets) {
  util::Rng rng(618);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    const int bits = 5;
    std::vector<int64_t> lo(static_cast<size_t>(n));
    for (auto& l : lo) {
      l = static_cast<int64_t>(rng.NextBounded(400)) - 200;  // Can go negative.
    }
    const size_t count = 1 + rng.NextBounded(256);
    std::vector<int64_t> packed(count * static_cast<size_t>(n));
    for (auto& c : packed) c = static_cast<int64_t>(rng.NextBounded(32));
    for (size_t i = 0; i < packed.size(); ++i) {
      packed[i] += lo[i % static_cast<size_t>(n)];
    }
    const HilbertCodec codec(n, bits);
    std::vector<uint64_t> got(count);
    codec.RankPacked(packed.data(), count, lo.data(), got.data());
    std::vector<uint32_t> point(static_cast<size_t>(n));
    for (size_t i = 0; i < count; ++i) {
      for (size_t d = 0; d < static_cast<size_t>(n); ++d) {
        point[d] = static_cast<uint32_t>(
            packed[i * static_cast<size_t>(n) + d] - lo[d]);
      }
      ASSERT_EQ(got[i], codec.Rank(point.data()))
          << "trial=" << trial << " i=" << i;
    }
  }
}

TEST(HilbertFastTest, CodecRankCheckedAgreesWithFreeFunction) {
  const array::Coordinates extents = {36, 29, 23};
  const HilbertCodec codec(3, BitsForExtents(extents));
  util::Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    const array::Coordinates coords = {
        static_cast<int64_t>(rng.NextBounded(36)),
        static_cast<int64_t>(rng.NextBounded(29)),
        static_cast<int64_t>(rng.NextBounded(23))};
    ASSERT_EQ(codec.RankChecked(coords, extents),
              HilbertRank(coords, extents));
  }
}

}  // namespace
}  // namespace arraydb::hilbert
