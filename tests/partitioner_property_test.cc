// Property sweep over every partitioner (TEST_P): invariants that must hold
// for all eight schemes regardless of data distribution —
//   * placement always targets a live node, and Locate agrees with the
//     cluster after every insert and scale-out;
//   * scale-out conserves all chunks and bytes;
//   * schemes advertising incremental scale-out (Table 1) only ship data to
//     newly added nodes, verified against the substrate;
//   * placement is deterministic across identical runs;
//   * fine-grained schemes balance chunk counts; skew-aware schemes reduce
//     the maximum node load when splitting under skew.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "core/elastic_engine.h"
#include "core/partitioner_factory.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"

namespace arraydb::core {
namespace {

using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::ChunkInfo;
using array::Coordinates;
using array::DimensionDesc;

enum class Skew { kUniform, kZipf };

struct SweepCase {
  PartitionerKind kind;
  Skew skew;
};

std::string CaseName(const testing::TestParamInfo<SweepCase>& info) {
  std::string name = PartitionerKindName(info.param.kind);
  for (auto& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  name += info.param.skew == Skew::kUniform ? "_uniform" : "_zipf";
  return name;
}

ArraySchema SweepSchema() {
  // 3-D grid shaped like the workloads: time x lon x lat.
  return ArraySchema("sweep",
                     {DimensionDesc{"t", 0, 11, 1, false},
                      DimensionDesc{"x", 0, 9, 1, false},
                      DimensionDesc{"y", 0, 7, 1, false}},
                     {AttributeDesc{"v", AttrType::kDouble}});
}

// Generates one time-slice batch with the requested skew. Bytes are sized
// so a 2-node x 0.02 GB cluster needs several scale-outs; `scale`
// multiplies chunk sizes for tests that need to fill more nodes.
std::vector<ChunkInfo> MakeBatch(int64_t t, Skew skew, util::Rng& rng,
                                 int64_t scale = 1) {
  std::vector<ChunkInfo> batch;
  for (int64_t x = 0; x < 10; ++x) {
    for (int64_t y = 0; y < 8; ++y) {
      ChunkInfo info;
      info.coords = {t, x, y};
      int64_t bytes;
      if (skew == Skew::kUniform) {
        bytes = 30000 + static_cast<int64_t>(rng.NextUniform(0, 5000));
      } else {
        // A hot corner holds most of the data (ships near a port).
        const bool hot = x <= 1 && y <= 1;
        bytes = hot ? 500000 + static_cast<int64_t>(rng.NextUniform(0, 100000))
                    : 200 + static_cast<int64_t>(rng.NextUniform(0, 400));
      }
      info.bytes = bytes * scale;
      info.cell_count = info.bytes / 8;
      batch.push_back(std::move(info));
    }
  }
  return batch;
}

class PartitionerSweep : public testing::TestWithParam<SweepCase> {};

// Runs the cyclic workload (insert, scale out every 4 cycles) and checks
// cross-cutting invariants at every step.
TEST_P(PartitionerSweep, InvariantsAcrossLifecycle) {
  const auto& param = GetParam();
  const ArraySchema schema = SweepSchema();
  const double capacity_gb = 0.02;
  ElasticEngine engine(MakePartitioner(param.kind, schema, 2, capacity_gb), 2,
                       capacity_gb);
  util::Rng rng(99);

  int64_t expected_chunks = 0;
  int64_t expected_bytes = 0;
  for (int64_t t = 0; t < 12; ++t) {
    const auto batch = MakeBatch(t, param.skew, rng);
    for (const auto& c : batch) expected_bytes += c.bytes;
    expected_chunks += static_cast<int64_t>(batch.size());

    const auto insert = engine.IngestBatch(batch);
    EXPECT_EQ(insert.chunks, static_cast<int64_t>(batch.size()));
    EXPECT_GT(insert.minutes, 0.0);

    // Locate must agree with the substrate for every chunk just inserted.
    for (const auto& c : batch) {
      EXPECT_EQ(engine.partitioner().Locate(c.coords),
                engine.cluster().OwnerOf(c.coords));
    }

    if (t == 3 || t == 7) {
      const auto reorg = engine.ScaleOut(2);
      if (engine.partitioner().IsIncremental()) {
        EXPECT_TRUE(reorg.only_to_new_nodes)
            << engine.partitioner().name()
            << " advertises incremental scale-out but moved data to "
               "preexisting nodes";
      }
      // Conservation.
      EXPECT_EQ(engine.cluster().num_chunks(), expected_chunks);
      EXPECT_EQ(engine.cluster().TotalBytes(), expected_bytes);
      // Table agreement after reorganization.
      for (const auto& rec : engine.cluster().AllChunks()) {
        EXPECT_EQ(engine.partitioner().Locate(rec.coords), rec.node);
      }
    }
  }
  EXPECT_EQ(engine.cluster().num_nodes(), 6);
  EXPECT_EQ(engine.cluster().num_chunks(), expected_chunks);
  EXPECT_EQ(engine.cluster().TotalBytes(), expected_bytes);

  // Every node id returned anywhere is valid; all loads non-negative.
  for (int n = 0; n < engine.cluster().num_nodes(); ++n) {
    EXPECT_GE(engine.cluster().NodeBytes(n), 0);
  }
}

TEST_P(PartitionerSweep, PlacementIsDeterministic) {
  const auto& param = GetParam();
  const ArraySchema schema = SweepSchema();
  std::map<Coordinates, NodeId> first_run;
  for (int run = 0; run < 2; ++run) {
    ElasticEngine engine(MakePartitioner(param.kind, schema, 2, 0.02), 2,
                         0.02);
    util::Rng rng(7);
    for (int64_t t = 0; t < 6; ++t) {
      engine.IngestBatch(MakeBatch(t, param.skew, rng));
      if (t == 2) engine.ScaleOut(2);
    }
    if (run == 0) {
      for (const auto& rec : engine.cluster().AllChunks()) {
        first_run[rec.coords] = rec.node;
      }
    } else {
      for (const auto& rec : engine.cluster().AllChunks()) {
        EXPECT_EQ(first_run.at(rec.coords), rec.node);
      }
    }
  }
}

TEST_P(PartitionerSweep, ScaleOutUsesNewNodes) {
  // After a scale-out with continued inserts, new nodes must eventually
  // hold data (no scheme may strand them). Chunks are scaled 4x so that
  // even Append — which uses new hosts only once its predecessors fill —
  // reaches them within the 12 cycles.
  const auto& param = GetParam();
  const ArraySchema schema = SweepSchema();
  ElasticEngine engine(MakePartitioner(param.kind, schema, 2, 0.02), 2, 0.02);
  util::Rng rng(3);
  for (int64_t t = 0; t < 4; ++t) {
    engine.IngestBatch(MakeBatch(t, param.skew, rng, 4));
  }
  engine.ScaleOut(2);
  for (int64_t t = 4; t < 12; ++t) {
    engine.IngestBatch(MakeBatch(t, param.skew, rng, 4));
  }
  int populated = 0;
  for (int n = 2; n < 4; ++n) {
    if (engine.cluster().NodeBytes(n) > 0) ++populated;
  }
  EXPECT_GT(populated, 0) << engine.partitioner().name()
                          << " never used its new nodes";
}

INSTANTIATE_TEST_SUITE_P(
    AllPartitioners, PartitionerSweep,
    testing::Values(
        SweepCase{PartitionerKind::kAppend, Skew::kUniform},
        SweepCase{PartitionerKind::kAppend, Skew::kZipf},
        SweepCase{PartitionerKind::kConsistentHash, Skew::kUniform},
        SweepCase{PartitionerKind::kConsistentHash, Skew::kZipf},
        SweepCase{PartitionerKind::kExtendibleHash, Skew::kUniform},
        SweepCase{PartitionerKind::kExtendibleHash, Skew::kZipf},
        SweepCase{PartitionerKind::kHilbertCurve, Skew::kUniform},
        SweepCase{PartitionerKind::kHilbertCurve, Skew::kZipf},
        SweepCase{PartitionerKind::kIncrementalQuadtree, Skew::kUniform},
        SweepCase{PartitionerKind::kIncrementalQuadtree, Skew::kZipf},
        SweepCase{PartitionerKind::kKdTree, Skew::kUniform},
        SweepCase{PartitionerKind::kKdTree, Skew::kZipf},
        SweepCase{PartitionerKind::kRoundRobin, Skew::kUniform},
        SweepCase{PartitionerKind::kRoundRobin, Skew::kZipf},
        SweepCase{PartitionerKind::kUniformRange, Skew::kUniform},
        SweepCase{PartitionerKind::kUniformRange, Skew::kZipf}),
    CaseName);

// Cross-scheme comparative properties (not parameterized): the paper's
// qualitative claims about balance.
TEST(PartitionerComparison, FineGrainedSchemesBalanceBetterUnderSkew) {
  const ArraySchema schema = SweepSchema();
  std::map<PartitionerKind, double> rsd;
  for (const auto kind : AllPartitionerKinds()) {
    ElasticEngine engine(MakePartitioner(kind, schema, 2, 0.02), 2, 0.02);
    util::Rng rng(123);
    for (int64_t t = 0; t < 12; ++t) {
      engine.IngestBatch(MakeBatch(t, Skew::kZipf, rng));
      if (t == 3 || t == 7) engine.ScaleOut(2);
    }
    rsd[kind] = engine.cluster().LoadRsd();
  }
  // §6.2.1: the fine-grained group (Round Robin, Extendible, Consistent)
  // averages far lower RSD than the range group under skew.
  const double fine = (rsd[PartitionerKind::kRoundRobin] +
                       rsd[PartitionerKind::kExtendibleHash] +
                       rsd[PartitionerKind::kConsistentHash]) /
                      3.0;
  const double range = (rsd[PartitionerKind::kUniformRange] +
                        rsd[PartitionerKind::kAppend]) /
                       2.0;
  EXPECT_LT(fine, range);
}

TEST(PartitionerComparison, SkewAwareSplittersReduceMaxLoad) {
  const ArraySchema schema = SweepSchema();
  for (const auto kind :
       {PartitionerKind::kKdTree, PartitionerKind::kHilbertCurve,
        PartitionerKind::kExtendibleHash}) {
    ElasticEngine engine(MakePartitioner(kind, schema, 2, 0.02), 2, 0.02);
    util::Rng rng(55);
    for (int64_t t = 0; t < 8; ++t) {
      engine.IngestBatch(MakeBatch(t, Skew::kZipf, rng));
    }
    const double max_before = util::Max(engine.cluster().NodeLoadsGb());
    engine.ScaleOut(2);
    const double max_after = util::Max(engine.cluster().NodeLoadsGb());
    EXPECT_LT(max_after, max_before)
        << PartitionerKindName(kind)
        << " did not reduce the hottest node when splitting";
  }
}

}  // namespace
}  // namespace arraydb::core
