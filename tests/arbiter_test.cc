// Tests for cost-model-driven migration/ingest bandwidth arbitration:
// CostModel::ArbitrateBandwidth (budgets monotone in ingest load, floor/
// ceiling clamps, just-in-time pace), the BandwidthArbiter deadline
// countdown, the paced WorkloadRunner policies (migration completes within
// the plan-ahead window, arbitration beats the fixed budget on ingest
// stall), and bit-identical mid-reorg query results while a paced
// migration interleaves with inserts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "exec/engine.h"
#include "reorg/bandwidth_arbiter.h"
#include "reorg/reorg_engine.h"
#include "util/units.h"
#include "workload/ais.h"
#include "workload/runner.h"

namespace arraydb::reorg {
namespace {

using cluster::ArbitrationClamps;
using cluster::BandwidthBudget;
using cluster::BandwidthDemand;
using cluster::ChunkMove;
using cluster::Cluster;
using cluster::CostModel;
using cluster::MovePlan;

constexpr int64_t kMiB = 1024 * 1024;

BandwidthDemand BaseDemand() {
  BandwidthDemand demand;
  demand.remaining_migration_gb = 48.0;
  demand.projected_ingest_gb = 20.0;
  demand.cycles_until_deadline = 3;
  demand.overlap_window_minutes = 30.0;
  demand.num_nodes = 8;
  return demand;
}

TEST(ArbitrateBandwidthTest, GrantsNothingWithoutRemainingWork) {
  CostModel model;
  BandwidthDemand demand = BaseDemand();
  demand.remaining_migration_gb = 0.0;
  const BandwidthBudget budget = model.ArbitrateBandwidth(demand);
  EXPECT_DOUBLE_EQ(budget.migration_gb, 0.0);
  EXPECT_DOUBLE_EQ(budget.predicted_stall_minutes, 0.0);
}

TEST(ArbitrateBandwidthTest, BudgetsMonotoneNonIncreasingInIngestLoad) {
  CostModel model;
  double prev = std::numeric_limits<double>::infinity();
  double first = 0.0, last = 0.0;
  for (double ingest = 0.0; ingest <= 200.0; ingest += 5.0) {
    BandwidthDemand demand = BaseDemand();
    demand.projected_ingest_gb = ingest;
    const double granted = model.ArbitrateBandwidth(demand).migration_gb;
    EXPECT_LE(granted, prev) << "ingest " << ingest;
    EXPECT_GT(granted, 0.0) << "ingest " << ingest;
    prev = granted;
    if (ingest == 0.0) first = granted;
    last = granted;
  }
  // The policy actually responds: an ingest-heavy cycle gets a strictly
  // smaller migration grant than an idle one.
  EXPECT_LT(last, first);
}

TEST(ArbitrateBandwidthTest, NeverBelowJustInTimePace) {
  CostModel model;
  BandwidthDemand demand = BaseDemand();
  demand.overlap_window_minutes = 0.0;  // No free window at all.
  demand.projected_ingest_gb = 500.0;   // Ingest-saturated cycle.
  const BandwidthBudget budget = model.ArbitrateBandwidth(demand);
  EXPECT_DOUBLE_EQ(budget.jit_gb, 16.0);  // 48 GB over 3 cycles.
  EXPECT_GE(budget.migration_gb, budget.jit_gb);
  EXPECT_TRUE(budget.deadline_binding);
  EXPECT_GT(budget.predicted_stall_minutes, 0.0);
}

TEST(ArbitrateBandwidthTest, FreeWindowAcceleratesBeyondJustInTime) {
  CostModel model;
  BandwidthDemand demand = BaseDemand();
  demand.projected_ingest_gb = 0.0;
  demand.overlap_window_minutes = 1000.0;  // Window swallows the plan.
  ArbitrationClamps clamps;
  clamps.ceiling_gb = 1000.0;
  const BandwidthBudget budget = model.ArbitrateBandwidth(demand, clamps);
  // Everything remaining fits behind the queries: grant it all, stall-free.
  EXPECT_DOUBLE_EQ(budget.migration_gb, demand.remaining_migration_gb);
  EXPECT_FALSE(budget.deadline_binding);
  EXPECT_DOUBLE_EQ(budget.predicted_stall_minutes, 0.0);
}

TEST(ArbitrateBandwidthTest, FloorAndCeilingClampsHold) {
  CostModel model;
  ArbitrationClamps clamps;
  clamps.floor_gb = 2.0;
  clamps.ceiling_gb = 10.0;

  // Distant deadline and no window: just-in-time pace would be ~0, but the
  // floor keeps migration alive.
  BandwidthDemand demand = BaseDemand();
  demand.cycles_until_deadline = 1000;
  demand.overlap_window_minutes = 0.0;
  EXPECT_DOUBLE_EQ(model.ArbitrateBandwidth(demand, clamps).migration_gb,
                   2.0);

  // Huge window: the ceiling keeps migration from monopolizing the cycle.
  demand.overlap_window_minutes = 1e6;
  EXPECT_DOUBLE_EQ(model.ArbitrateBandwidth(demand, clamps).migration_gb,
                   10.0);

  // Less remaining than the floor: grant only what remains.
  demand.remaining_migration_gb = 0.5;
  demand.overlap_window_minutes = 0.0;
  EXPECT_DOUBLE_EQ(model.ArbitrateBandwidth(demand, clamps).migration_gb,
                   0.5);
}

TEST(BandwidthArbiterTest, DeadlineCycleGrantsTheRemainder) {
  CostModel model;
  ArbiterOptions options;
  options.plan_ahead_cycles = 3;
  options.clamps.floor_gb = 0.25;
  options.clamps.ceiling_gb = 8.0;  // Tight: jit alone cannot finish by p.
  BandwidthArbiter arbiter(&model, options);
  arbiter.BeginPlan();

  double remaining = 48.0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    BandwidthDemand demand = BaseDemand();
    demand.remaining_migration_gb = remaining;
    demand.overlap_window_minutes = 0.0;
    const BandwidthBudget granted = arbiter.PlanCycle(demand);
    if (cycle < 2) {
      EXPECT_LE(granted.migration_gb, 8.0) << "cycle " << cycle;
    } else {
      // Deadline: the clamps yield to just-in-time completion.
      EXPECT_DOUBLE_EQ(granted.migration_gb, remaining);
      EXPECT_TRUE(granted.deadline_binding);
    }
    remaining -= granted.migration_gb;
  }
  EXPECT_DOUBLE_EQ(remaining, 0.0);
  EXPECT_EQ(arbiter.budget_trajectory().size(), 3u);
}

TEST(BandwidthArbiterTest, FixedPolicyGrantsTheConstantUntilDeadline) {
  CostModel model;
  ArbiterOptions options;
  options.plan_ahead_cycles = 3;
  options.fixed_gb = 8.0;
  BandwidthArbiter arbiter(&model, options);
  arbiter.BeginPlan();

  BandwidthDemand demand = BaseDemand();
  demand.remaining_migration_gb = 20.0;
  EXPECT_DOUBLE_EQ(arbiter.PlanCycle(demand).migration_gb, 8.0);
  demand.remaining_migration_gb = 12.0;
  EXPECT_DOUBLE_EQ(arbiter.PlanCycle(demand).migration_gb, 8.0);
  demand.remaining_migration_gb = 4.0;
  const BandwidthBudget last = arbiter.PlanCycle(demand);
  EXPECT_DOUBLE_EQ(last.migration_gb, 4.0);
  EXPECT_TRUE(last.deadline_binding);
}

// Paced migration interleaved with fresh inserts: queries through the
// dual-residency view must stay bit-identical to a cluster that never
// migrated but received the same inserts.
TEST(ArbitratedReorgTest, MidReorgPacedQueriesMatchQuiescedCluster) {
  Cluster migrating(2, 1.0);
  Cluster quiesced(2, 1.0);
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(migrating.PlaceChunk({i}, 64 * kMiB, 0).ok());
    ASSERT_TRUE(quiesced.PlaceChunk({i}, 64 * kMiB, 0).ok());
  }
  const cluster::NodeId first_new = migrating.AddNodes(2);
  quiesced.AddNodes(2);
  MovePlan plan;
  for (int64_t i = 4; i < 8; ++i) {
    plan.Add(ChunkMove{{i}, 64 * kMiB, 0, first_new});
  }

  CostModel model;
  ReorgOptions options;
  options.budget_fn = [](const BudgetRequest&) {
    return util::BytesToGb(64.0 * kMiB);  // One move per increment.
  };
  IncrementalReorgEngine engine(&migrating, &model, options);
  ASSERT_TRUE(engine.Begin(plan, first_new).ok());

  exec::QueryEngine qe;
  array::ArraySchema schema("s", {array::DimensionDesc{"x", 0, 63, 1, false}},
                            {array::AttributeDesc{
                                "v", array::AttrType::kDouble}});
  const auto view = engine.View();
  int64_t next_coord = 100;
  while (engine.pending_chunks() > 0) {
    ASSERT_TRUE(engine.Step().ok());
    // A fresh insert lands between increments, on both clusters alike.
    ASSERT_TRUE(migrating.PlaceChunk({next_coord}, 8 * kMiB, 1).ok());
    ASSERT_TRUE(quiesced.PlaceChunk({next_coord}, 8 * kMiB, 1).ok());
    ++next_coord;
    for (const auto kind :
         {exec::QueryKind::kFilter, exec::QueryKind::kWindow,
          exec::QueryKind::kGroupBy}) {
      exec::QuerySpec spec;
      spec.kind = kind;
      spec.region = exec::ChunkRegion::All(1);
      const auto mid = qe.Simulate(spec, view, schema);
      const auto quiet = qe.Simulate(spec, quiesced, schema);
      EXPECT_EQ(mid.minutes, quiet.minutes);
      EXPECT_EQ(mid.scanned_gb, quiet.scanned_gb);
      EXPECT_EQ(mid.chunks_touched, quiet.chunks_touched);
      EXPECT_EQ(mid.remote_neighbor_fetches, quiet.remote_neighbor_fetches);
    }
  }
  ASSERT_TRUE(engine.Finish().ok());
  // Released: the migrated chunks now read from the new node.
  EXPECT_EQ(view.OwnerOf({4}), first_new);
}

// -- Overlap window estimation (EWMA) --------------------------------------

TEST(OverlapWindowEstimatorTest, SeedsOnFirstObservationAndAlphaOneIsLegacy) {
  OverlapWindowEstimator ewma(0.5);
  EXPECT_FALSE(ewma.has_estimate());
  EXPECT_DOUBLE_EQ(ewma.estimate(), 0.0);  // Legacy cold start.
  ewma.Observe(40.0);
  EXPECT_TRUE(ewma.has_estimate());
  EXPECT_DOUBLE_EQ(ewma.estimate(), 40.0);  // First observation seeds.

  // alpha = 1 reproduces the previous-cycle estimator bit for bit.
  OverlapWindowEstimator legacy(1.0);
  for (const double minutes : {10.0, 35.5, 0.0, 17.25}) {
    legacy.Observe(minutes);
    EXPECT_DOUBLE_EQ(legacy.estimate(), minutes);
  }
}

TEST(OverlapWindowEstimatorTest, ReactsToAQueryLoadSwingFasterThanAMean) {
  // A sustained query-load swing: three light cycles (10 min of
  // benchmarks), then the workload jumps to 50 min. The EWMA crosses the
  // midpoint within two post-swing cycles; a cumulative running mean — the
  // natural "stable" alternative smoother — is still far below it. (The
  // raw previous-cycle estimator reacts instantly but chases every spike;
  // see the smoothing test below.)
  OverlapWindowEstimator ewma(0.5);
  double mean = 0.0;
  int n = 0;
  const auto observe = [&](double minutes) {
    ewma.Observe(minutes);
    mean = (mean * n + minutes) / (n + 1);
    ++n;
  };
  for (int i = 0; i < 3; ++i) observe(10.0);
  EXPECT_DOUBLE_EQ(ewma.estimate(), 10.0);
  observe(50.0);
  observe(50.0);
  EXPECT_GE(ewma.estimate(), 40.0);  // 10 -> 30 -> 40 after two cycles.
  EXPECT_LT(mean, 30.0);             // The mean has barely moved.
  EXPECT_GT(ewma.estimate(), mean);
  // And it converges: five more cycles land within 2% of the new level.
  for (int i = 0; i < 5; ++i) observe(50.0);
  EXPECT_NEAR(ewma.estimate(), 50.0, 1.0);
}

TEST(OverlapWindowEstimatorTest, SmoothsSpikesBetterThanPreviousCycle) {
  // Alternating light/heavy cycles around a 20-minute mean: the EWMA's
  // prediction error for the next cycle is strictly below the legacy
  // previous-cycle estimator's (which always predicts the opposite phase).
  OverlapWindowEstimator ewma(0.5);
  OverlapWindowEstimator legacy(1.0);
  double ewma_err = 0.0, legacy_err = 0.0;
  double minutes = 0.0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    minutes = cycle % 2 == 0 ? 0.0 : 40.0;
    if (cycle > 0) {
      ewma_err += std::abs(ewma.estimate() - minutes);
      legacy_err += std::abs(legacy.estimate() - minutes);
    }
    ewma.Observe(minutes);
    legacy.Observe(minutes);
  }
  EXPECT_LT(ewma_err, legacy_err * 0.75);
}

}  // namespace
}  // namespace arraydb::reorg

namespace arraydb::workload {
namespace {

constexpr int64_t kMiB = 1024 * 1024;

// The bench's ingest-heavy staircase setup, shrunk only in spirit: a
// bandwidth-constrained cluster where migration and ingest actually
// compete for link time.
RunnerConfig HeavyStaircaseConfig(MigrationBudgetPolicy policy) {
  RunnerConfig cfg;
  cfg.partitioner = core::PartitionerKind::kHilbertCurve;
  cfg.policy = ScaleOutPolicy::kStaircase;
  cfg.initial_nodes = 2;
  cfg.max_nodes = 64;
  cfg.reorg.mode = ReorgMode::kOverlapped;
  cfg.reorg.budget_policy = policy;
  cfg.cost_params.net_minutes_per_gb = 1.0;
  return cfg;
}

AisWorkload HeavyAis() {
  AisConfig heavy;
  heavy.gb_per_month = 25.0;
  return AisWorkload(heavy);
}

TEST(ArbitratedRunnerTest, MigrationCompletesWithinThePlanAheadWindow) {
  const AisWorkload ais = HeavyAis();
  const RunnerConfig cfg =
      HeavyStaircaseConfig(MigrationBudgetPolicy::kArbitrated);
  const auto result = WorkloadRunner(cfg).Run(ais);

  // Every cycle that executed migration lies within plan_ahead cycles of a
  // scale-out (the just-in-time deadline), and nothing was force-drained
  // by an early scale-out.
  EXPECT_EQ(result.forced_drains, 0);
  std::vector<int> scaleouts;
  for (const auto& m : result.cycles) {
    if (m.nodes_after > m.nodes_before) scaleouts.push_back(m.cycle);
  }
  ASSERT_FALSE(scaleouts.empty());
  for (const auto& m : result.cycles) {
    if (m.moved_gb <= 0.0) continue;
    bool within_window = false;
    for (const int s : scaleouts) {
      if (m.cycle >= s && m.cycle < s + cfg.staircase_plan_ahead) {
        within_window = true;
        break;
      }
    }
    EXPECT_TRUE(within_window) << "cycle " << m.cycle
                               << " migrated outside every deadline window";
  }
}

TEST(ArbitratedRunnerTest, ArbitrationReducesIngestStall) {
  const AisWorkload ais = HeavyAis();
  const auto fixed =
      WorkloadRunner(HeavyStaircaseConfig(MigrationBudgetPolicy::kFixedDrain))
          .Run(ais);
  const auto arbitrated =
      WorkloadRunner(HeavyStaircaseConfig(MigrationBudgetPolicy::kArbitrated))
          .Run(ais);

  // The acceptance property: lower ingest stall at identical total work.
  EXPECT_GT(fixed.total_ingest_stall_minutes, 0.0);
  EXPECT_LT(arbitrated.total_ingest_stall_minutes,
            fixed.total_ingest_stall_minutes);
  // Placement (and so the plans) are identical; the pro-rated per-cycle
  // charges must sum back to the same schedule-invariant price.
  double fixed_moved = 0.0, arb_moved = 0.0;
  for (const auto& m : fixed.cycles) fixed_moved += m.moved_gb;
  for (const auto& m : arbitrated.cycles) arb_moved += m.moved_gb;
  EXPECT_NEAR(arb_moved, fixed_moved, 1e-9);
  EXPECT_NEAR(arbitrated.total_reorg_minutes, fixed.total_reorg_minutes,
              1e-9);
  EXPECT_EQ(arbitrated.final_nodes, fixed.final_nodes);
}

TEST(ArbitratedRunnerTest, PerCycleAccountingStaysConsistent) {
  const AisWorkload ais = HeavyAis();
  const auto result =
      WorkloadRunner(HeavyStaircaseConfig(MigrationBudgetPolicy::kArbitrated))
          .Run(ais);
  bool saw_budget = false;
  for (const auto& m : result.cycles) {
    const double bench = m.spj_minutes + m.science_minutes;
    // Overlap credit from the migration actually executed this cycle.
    EXPECT_DOUBLE_EQ(m.overlap_saved_minutes,
                     std::min(m.reorg_minutes, bench));
    EXPECT_DOUBLE_EQ(m.ingest_stall_minutes,
                     m.reorg_minutes - m.overlap_saved_minutes);
    EXPECT_NEAR(m.elapsed_minutes,
                m.insert_minutes + m.reorg_minutes + bench -
                    m.overlap_saved_minutes,
                1e-12);
    if (m.moved_gb > 0.0) {
      EXPECT_GT(m.migration_budget_gb, 0.0) << "cycle " << m.cycle;
      saw_budget = true;
    }
  }
  EXPECT_TRUE(saw_budget);
  const auto budgets = result.MigrationBudgetTrajectory();
  ASSERT_EQ(budgets.size(), result.cycles.size());
}

// A workload whose only scale-out lands on its final cycle: without the
// workload-end deadline, a paced plan would still be in flight when the
// run ends and its remaining work would silently vanish from the metrics.
class TailScaleOutWorkload final : public Workload {
 public:
  TailScaleOutWorkload()
      : schema_("tail",
                {array::DimensionDesc{"t", 0, 1023, 1, false},
                 array::DimensionDesc{"x", 0, 63, 1, false}},
                {array::AttributeDesc{"v", array::AttrType::kDouble}}) {}

  const char* name() const override { return "tail-scale-out"; }
  const array::ArraySchema& schema() const override { return schema_; }
  int num_cycles() const override { return 4; }
  double node_capacity_gb() const override { return 1.0; }

  std::vector<array::ChunkInfo> GenerateBatch(int cycle) const override {
    // 2 nodes x 1 GB: cycles 0-2 stay under capacity; cycle 3 crosses it.
    std::vector<array::ChunkInfo> batch;
    const int chunks = cycle == 3 ? 10 : 4;
    for (int i = 0; i < chunks; ++i) {
      array::ChunkInfo info;
      info.coords = {static_cast<int64_t>(cycle),
                     static_cast<int64_t>(cycle * 16 + i)};
      info.cell_count = 1;
      info.bytes = 128 * kMiB;
      batch.push_back(info);
    }
    return batch;
  }
  std::vector<exec::QuerySpec> SpjQueries(int) const override { return {}; }
  std::vector<exec::QuerySpec> ScienceQueries(int) const override {
    return {};
  }

 private:
  array::ArraySchema schema_;
};

TEST(ArbitratedRunnerTest, PlanStartedOnTheFinalCycleDrainsWithTheRun) {
  TailScaleOutWorkload workload;
  RunnerConfig cfg;
  cfg.partitioner = core::PartitionerKind::kHilbertCurve;
  cfg.policy = ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  cfg.reorg.mode = ReorgMode::kOverlapped;
  cfg.run_queries = false;  // Window = 0: pacing would stretch past the end.

  cfg.reorg.budget_policy = MigrationBudgetPolicy::kFixedDrain;
  const auto drained = WorkloadRunner(cfg).Run(workload);
  cfg.reorg.budget_policy = MigrationBudgetPolicy::kArbitrated;
  const auto arbitrated = WorkloadRunner(cfg).Run(workload);

  // The scale-out happened on the last cycle in both runs...
  ASSERT_GT(drained.cycles.back().moved_gb, 0.0);
  // ...and the paced run still committed (and charged) the whole plan.
  EXPECT_EQ(arbitrated.cycles.back().moved_gb,
            drained.cycles.back().moved_gb);
  EXPECT_EQ(arbitrated.cycles.back().chunks_moved,
            drained.cycles.back().chunks_moved);
  EXPECT_NEAR(arbitrated.total_reorg_minutes, drained.total_reorg_minutes,
              1e-9);
  EXPECT_EQ(arbitrated.forced_drains, 0);
}

TEST(ArbitratedRunnerTest, DeterministicAcrossThreadCounts) {
  const AisWorkload ais = HeavyAis();
  std::vector<RunResult> results;
  for (const int threads : {1, 4, 0}) {
    RunnerConfig cfg =
        HeavyStaircaseConfig(MigrationBudgetPolicy::kArbitrated);
    cfg.ingest.threads = threads;
    results.push_back(WorkloadRunner(cfg).Run(ais));
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(results[i].cycles.size(), results[0].cycles.size());
    EXPECT_EQ(results[i].total_ingest_stall_minutes,
              results[0].total_ingest_stall_minutes);
    EXPECT_EQ(results[i].total_reorg_minutes,
              results[0].total_reorg_minutes);
    EXPECT_EQ(results[i].total_elapsed_minutes,
              results[0].total_elapsed_minutes);
    EXPECT_EQ(results[i].MigrationBudgetTrajectory(),
              results[0].MigrationBudgetTrajectory());
    EXPECT_EQ(results[i].IngestStallTrajectory(),
              results[0].IngestStallTrajectory());
  }
}

}  // namespace
}  // namespace arraydb::workload
