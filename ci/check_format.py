#!/usr/bin/env python3
"""clang-format gate.

Default mode checks the files *changed against a base ref* (merge-base
with origin/main, or ``--base REF``), so the gate bites on every PR
without demanding a tree-wide reformat commit first; ``--all`` checks
every tracked C++ file for a full audit. Exit 0 when everything checked
is format-clean, 1 otherwise (with a unified diff of what clang-format
would change), 2 on configuration errors.

Usage:
    python3 ci/check_format.py              # changed files vs origin/main
    python3 ci/check_format.py --all        # whole tree
    python3 ci/check_format.py --fix        # rewrite instead of checking
"""

import argparse
import os
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CXX_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")
CXX_DIRS = ("src", "tests", "bench", "examples")


def git(*argv):
    return subprocess.run(
        ["git", *argv], capture_output=True, text=True, cwd=REPO_ROOT
    )


def tracked_cxx_files():
    proc = git("ls-files", "--", *CXX_DIRS)
    return [f for f in proc.stdout.splitlines() if f.endswith(CXX_SUFFIXES)]


def changed_cxx_files(base):
    mb = git("merge-base", base, "HEAD")
    if mb.returncode != 0:
        return None
    proc = git("diff", "--name-only", "--diff-filter=d", mb.stdout.strip())
    return [
        f
        for f in proc.stdout.splitlines()
        if f.endswith(CXX_SUFFIXES)
        and f.startswith(tuple(d + "/" for d in CXX_DIRS))
    ]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", default="origin/main")
    ap.add_argument("--all", action="store_true")
    ap.add_argument("--fix", action="store_true")
    args = ap.parse_args()

    fmt = shutil.which("clang-format")
    if fmt is None:
        print("error: clang-format not on PATH", file=sys.stderr)
        return 2

    if args.all:
        files = tracked_cxx_files()
    else:
        files = changed_cxx_files(args.base)
        if files is None:
            print(
                f"note: no merge-base with {args.base}; "
                "falling back to the full tree",
                file=sys.stderr,
            )
            files = tracked_cxx_files()
    files = [f for f in files if os.path.isfile(os.path.join(REPO_ROOT, f))]
    if not files:
        print("check_format: nothing to check", file=sys.stderr)
        return 0

    if args.fix:
        subprocess.run([fmt, "-i", *files], cwd=REPO_ROOT, check=False)
        print(f"check_format: reformatted {len(files)} file(s)")
        return 0

    dirty = []
    for f in files:
        proc = subprocess.run(
            [fmt, "--dry-run", "-Werror", f],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        if proc.returncode != 0:
            dirty.append(f)
    if dirty:
        print("files needing clang-format (run ci/check_format.py --fix):")
        for f in dirty:
            print(f"  {f}")
    print(
        f"check_format: {len(files)} file(s) checked, {len(dirty)} dirty",
        file=sys.stderr,
    )
    return 1 if dirty else 0


if __name__ == "__main__":
    sys.exit(main())
