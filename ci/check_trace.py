#!/usr/bin/env python3
"""Trace artifact gate: validate a Chrome trace-event JSON file.

Checks that the file the telemetry subsystem emitted (ARRAYDB_TRACE=<path>,
or RunnerConfig::trace_path) is well-formed:

  * parses as JSON, either ``{"traceEvents": [...]}`` or a bare event list
    (both shapes load in chrome://tracing and Perfetto);
  * every event is a complete-duration span: ``ph`` == "X", string ``name``,
    integer ``pid``/``tid``, non-negative numeric ``ts``/``dur``
    (microseconds);
  * per (pid, tid) the spans nest monotonically: sorted by (ts, -dur) —
    the order a start-time-stamped RAII span stack produces — every span
    either follows the previous one or is contained in an enclosing open
    span. Partial overlap (a span closing after its parent) means the
    emitter broke the stack discipline and the viewer would render garbage.

Exit status is non-zero on any violation, so CI can gate on the artifact
bench_operators emits. ``--min-events`` guards against a silently empty
capture.
"""

import argparse
import json
import sys
from pathlib import Path

# Tolerance for containment comparisons, in microseconds. WriteTrace rounds
# nanosecond timestamps to 3-decimal microseconds, so exact arithmetic is
# safe; the epsilon only absorbs float re-parsing wobble.
EPS_US = 1e-6


def load_events(path: Path):
    with path.open() as f:
        doc = json.load(f)
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("top-level object has no 'traceEvents' list")
        return events
    if isinstance(doc, list):
        return doc
    raise ValueError("top level is neither an object nor a list")


def validate_event(i: int, e) -> list:
    errors = []
    if not isinstance(e, dict):
        return [f"event {i}: not an object"]
    if not isinstance(e.get("name"), str) or not e["name"]:
        errors.append(f"event {i}: missing or empty string 'name'")
    if e.get("ph") != "X":
        errors.append(f"event {i}: 'ph' is {e.get('ph')!r}, expected 'X'")
    for key in ("pid", "tid"):
        if not isinstance(e.get(key), int):
            errors.append(f"event {i}: '{key}' is not an integer")
    for key in ("ts", "dur"):
        v = e.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            errors.append(f"event {i}: '{key}' is not a number")
        elif v < 0:
            errors.append(f"event {i}: '{key}' = {v} is negative")
    return errors


def check_nesting(events) -> list:
    """Stack-based containment check per (pid, tid) track."""
    errors = []
    tracks = {}
    for e in events:
        tracks.setdefault((e["pid"], e["tid"]), []).append(e)
    for (pid, tid), spans in sorted(tracks.items()):
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # Open spans, outermost first.
        for e in spans:
            begin, end = e["ts"], e["ts"] + e["dur"]
            while stack and begin >= stack[-1][1] - EPS_US:
                stack.pop()
            if stack and end > stack[-1][1] + EPS_US:
                parent = stack[-1][2]
                errors.append(
                    f"track pid={pid} tid={tid}: span '{e['name']}' "
                    f"[{begin:.3f}, {end:.3f}) overlaps but is not nested "
                    f"in '{parent['name']}' "
                    f"[{parent['ts']:.3f}, {parent['ts'] + parent['dur']:.3f})"
                )
                continue
            stack.append((begin, end, e))
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=Path, help="trace-event JSON file")
    parser.add_argument(
        "--min-events", type=int, default=1,
        help="fail if the trace holds fewer spans than this (default 1)")
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"FAIL {args.trace}: {exc}")
        return 1

    errors = []
    for i, e in enumerate(events):
        errors += validate_event(i, e)
    if not errors:
        errors += check_nesting(events)
    if len(events) < args.min_events:
        errors.append(
            f"only {len(events)} event(s), expected >= {args.min_events}")

    if errors:
        print(f"FAIL {args.trace}: {len(errors)} violation(s)")
        for err in errors[:20]:
            print(f"  {err}")
        if len(errors) > 20:
            print(f"  ... and {len(errors) - 20} more")
        return 1
    tracks = len({(e["pid"], e["tid"]) for e in events})
    print(f"OK {args.trace}: {len(events)} span(s) across {tracks} "
          f"track(s), nesting monotone")
    return 0


if __name__ == "__main__":
    sys.exit(main())
