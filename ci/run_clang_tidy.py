#!/usr/bin/env python3
"""clang-tidy driver with compilation-database-hash caching.

Runs the curated ``.clang-tidy`` profile (warnings-as-errors) over every
translation unit in ``src/`` listed in ``compile_commands.json``, in
parallel, and caches clean verdicts in ``.tidy-cache/`` keyed by

    sha256(file contents, its compile command, .clang-tidy contents)

so re-runs (and CI runs restoring the cache directory) only re-analyze
files whose content, flags, or check profile actually changed — the
ccache model, applied to static analysis. A cached entry is only ever a
*clean* verdict; findings always re-run and always fail.

Usage:
    python3 ci/run_clang_tidy.py [--build-dir build] [--jobs N] [paths...]

Exit status: 0 clean, 1 findings, 2 configuration error (no database, no
clang-tidy on PATH).
"""

import argparse
import hashlib
import json
import multiprocessing
import os
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_database(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(
            f"error: {db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the root CMakeLists "
            "already sets it)",
            file=sys.stderr,
        )
        return None
    with open(db_path, encoding="utf-8") as f:
        return json.load(f)


def entry_key(entry, profile_hash):
    """Cache key: file content x compile command x check profile."""
    h = hashlib.sha256()
    h.update(profile_hash)
    command = entry.get("command") or " ".join(entry.get("arguments", []))
    h.update(command.encode())
    try:
        with open(entry["file"], "rb") as f:
            h.update(f.read())
    except OSError:
        h.update(b"<unreadable>")
    return h.hexdigest()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", help="restrict to these path prefixes")
    ap.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"))
    ap.add_argument(
        "--cache-dir", default=os.path.join(REPO_ROOT, ".tidy-cache")
    )
    ap.add_argument("--jobs", type=int, default=multiprocessing.cpu_count())
    ap.add_argument(
        "--no-cache", action="store_true", help="re-analyze everything"
    )
    args = ap.parse_args()

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("error: clang-tidy not on PATH", file=sys.stderr)
        return 2
    database = load_database(args.build_dir)
    if database is None:
        return 2

    profile_path = os.path.join(REPO_ROOT, ".clang-tidy")
    with open(profile_path, "rb") as f:
        profile_hash = hashlib.sha256(f.read()).digest()

    prefixes = [os.path.abspath(p) for p in args.paths] or [
        os.path.join(REPO_ROOT, "src")
    ]
    entries = []
    seen = set()
    for entry in database:
        path = os.path.abspath(
            os.path.join(entry.get("directory", "."), entry["file"])
        )
        entry["file"] = path
        if path in seen:
            continue
        if any(path.startswith(p + os.sep) or path == p for p in prefixes):
            seen.add(path)
            entries.append(entry)
    if not entries:
        print("error: no matching translation units", file=sys.stderr)
        return 2

    os.makedirs(args.cache_dir, exist_ok=True)

    def run_one(entry):
        key = entry_key(entry, profile_hash)
        marker = os.path.join(args.cache_dir, key)
        rel = os.path.relpath(entry["file"], REPO_ROOT)
        if not args.no_cache and os.path.exists(marker):
            return rel, "cached", ""
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", entry["file"]],
            capture_output=True,
            text=True,
        )
        # clang-tidy exits non-zero on warnings-as-errors findings.
        if proc.returncode == 0:
            with open(marker, "w", encoding="utf-8"):
                pass
            return rel, "clean", ""
        return rel, "findings", proc.stdout + proc.stderr

    failures = []
    cached = 0
    with ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for rel, status, output in pool.map(run_one, entries):
            if status == "cached":
                cached += 1
            elif status == "findings":
                failures.append((rel, output))
                print(f"-- {rel}: FINDINGS")
            else:
                print(f"-- {rel}: clean")

    for rel, output in failures:
        print(f"\n==== {rel} ====\n{output}")
    print(
        f"clang-tidy: {len(entries)} TUs, {cached} cached, "
        f"{len(failures)} with findings",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
