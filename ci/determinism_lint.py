#!/usr/bin/env python3
"""Determinism lint: project-specific static analysis for the data plane.

Every performance layer in this repo (morsel parallelism, SIMD dispatch,
radix joins, the serving layer) rests on one contract: results are
bit-identical across thread counts, morsel grains, partition bits, and
kernel dispatch. The invariance tests enforce that contract dynamically, by
sampling a few configurations; this lint enforces the *sources* of
order-ambiguity statically, at every call site, on every PR.

Rules (all scoped to ``src/``; ``tests/`` and ``bench/`` are not linted):

  R1 unordered-iteration
      No range-for / iterator traversal of ``std::unordered_map`` /
      ``std::unordered_set`` (directly, through a type alias, or through an
      accessor declared to return one — e.g. ``array.chunks()``). Hash
      iteration order is libstdc++-, seed-, and history-dependent; anything
      it feeds (merges, first-wins inserts, emitted sequences) silently
      becomes order-dependent. Waivers:
        ``// arraydb-lint: ordered-extract``    the loop only copies into a
                                                container that is sorted (or
                                                is a sorted container) before
                                                anything reads it
        ``// arraydb-lint: order-insensitive``  the loop body is commutative
                                                and duplicate-free (set
                                                membership, exact integer
                                                sums); document why

  R2 nondeterministic-rng
      No ``std::rand``/``srand``, no ``std::random_device``, no RNG
      constructed from a clock (``time(``, ``::now(``). All randomness goes
      through ``util::Rng`` with a caller-provided seed. No waiver.

  R3 side-effecting-macro-arg
      Arguments of ``TELEM_*`` and ``ARRAYDB_CHECK*`` macros must be pure
      expressions: no assignment, no ``++``/``--``. Telemetry compiles out
      (-DARRAYDB_TELEMETRY=OFF) without evaluating its arguments, and check
      macros may be compiled out in future build modes — a side effect in an
      argument makes the compiled-out build diverge. No waiver. (Non-const
      member calls in arguments are only detectable with the AST engine;
      the regex engine checks the token-level mutations.)

  R4 global-knob-shim
      No calls to the deprecated process-global knob shims
      (``SetDataPlaneThreads``, ``SetJoinPartitionBits``, and their
      ``Scoped*`` forms) outside ``tests/``. New code threads an
      ``exec::ExecContext`` instead; the shims mutate the process-default
      context and cannot compose with concurrent sessions. The shims' own
      declaration/definition files are exempt. No waiver.

  R5 float-accumulation
      In files under ``src/exec/``: no ``std::accumulate`` and no ``+=``
      into a floating-point (or unclassifiable) target inside a loop,
      unless the site carries ``// arraydb-lint: fixed-order`` documenting
      the merge-order contract (what pins the accumulation order: sorted
      chunk list, fixed morsel order, sequential stream, ...). ``+=`` into
      a provably integral target is exact in any order and never flagged.

Waiver comments (``// arraydb-lint: <token> [token...] -- justification``;
the `` -- `` separator keeps prose out of the token list) apply to findings
on the same line and the next two lines.
Any ``arraydb-lint:`` comment carrying an unknown token is itself an error
(W0), so the waiver vocabulary cannot rot.

Engines: ``--engine=regex`` (default fallback, no toolchain needed) scans
comment- and string-stripped source with declaration harvesting across the
file's project includes. ``--engine=clang`` parses each file with
``clang++ -Xclang -ast-dump=json`` and replaces the regex range-for check
of R1 with the AST's actual deduced range type; every other rule is
token-level by nature (macro arguments don't survive preprocessing into
the AST) and always runs on the regex engine. ``--engine=auto`` (default)
uses clang when a working ``clang++`` is on PATH and falls back per-file on
any parse trouble, so the gate never depends on toolchain availability.

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RULES = {
    "R1": "unordered-iteration",
    "R2": "nondeterministic-rng",
    "R3": "side-effecting-macro-arg",
    "R4": "global-knob-shim",
    "R5": "float-accumulation",
    "W0": "unknown-waiver-token",
}

# Waiver vocabulary: token -> rule it can waive.
WAIVER_TOKENS = {
    "ordered-extract": "R1",
    "order-insensitive": "R1",
    "fixed-order": "R5",
}

# Files that declare/define the legacy knob shims; R4 does not apply inside.
SHIM_HOME = {
    "src/exec/exec_context.h",
    "src/exec/exec_context.cc",
    "src/exec/morsel.h",
    "src/exec/join.h",
}

SHIM_NAMES = (
    "SetDataPlaneThreads",
    "SetJoinPartitionBits",
    "ScopedDataPlaneThreads",
    "ScopedJoinPartitionBits",
)

INT_TYPES = (
    "int",
    "int8_t",
    "int16_t",
    "int32_t",
    "int64_t",
    "uint8_t",
    "uint16_t",
    "uint32_t",
    "uint64_t",
    "size_t",
    "ptrdiff_t",
    "long",
    "short",
    "unsigned",
    "bool",
    "char",
    "NodeId",
)

FP_TYPES = ("double", "float")

# Tokens are lowercase hyphenated words after `arraydb-lint:`; justification
# prose follows after ` -- ` (or a parenthetical), which the token pattern
# cannot cross.
_TOKEN = r"[a-z]+(?:-[a-z]+)*"
WAIVER_RE = re.compile(
    r"//\s*arraydb-lint:\s*(%s(?:[ ,]+%s)*)" % (_TOKEN, _TOKEN)
)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}:{RULES[self.rule]}] {self.message}"


def strip_comments_and_strings(text):
    """Returns (stripped_text, waivers) with comments/strings blanked.

    Newlines are preserved so character offsets keep mapping to the same
    line numbers. Waivers is a dict line -> set(tokens) harvested from
    ``// arraydb-lint:`` comments before they are blanked. Unknown tokens
    are kept so the caller can report W0.
    """
    out = []
    waivers = {}
    i, n = 0, len(text)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_start = 0
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start = i
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                comment = text[comment_start:i]
                m = WAIVER_RE.search(comment)
                if m:
                    tokens = [
                        t
                        for t in re.split(r"[ ,]+", m.group(1).strip())
                        if t and t != "-"
                    ]
                    waivers.setdefault(line, set()).update(tokens)
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if c in '"\n' else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c in "'\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    return "".join(out), waivers


def blank_preprocessor(stripped):
    """Blanks preprocessor directives (incl. continuation lines)."""
    lines = stripped.split("\n")
    out = []
    in_directive = False
    for ln in lines:
        if in_directive or ln.lstrip().startswith("#"):
            in_directive = ln.rstrip().endswith("\\")
            out.append("")
        else:
            in_directive = False
            out.append(ln)
    return "\n".join(out)


def match_angle(text, start):
    """Given index of '<', returns index one past its matching '>'."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            return -1  # Not a template argument list after all.
        i += 1
    return -1


class Decls:
    """Names harvested from a file and its project includes.

    ``positional`` maps name -> sorted [(line, kind)] for declarations in
    the linted file itself; a usage resolves to the nearest preceding
    declaration of its name (C++ shadowing, approximated). The closure-wide
    sets aggregate the file plus its transitive project includes and only
    break ties when the file has no local declaration; a name that is, for
    example, an unordered map in one header and a vector in another is
    ambiguous and never flagged (conservative: the known accessors still
    catch the cross-file cases that matter).

    Kinds: ``unordered`` / ``ordered`` (optionally suffixed ``-fp`` /
    ``-int`` for the element type), ``int``, ``fp``, ``unknown`` (e.g.
    ``auto`` declarations, whose deduced type regexes cannot see -- they
    shadow conservatively).
    """

    def __init__(self):
        self.positional = {}  # name -> [(line, kind)], file-local only.
        self.closure = {}  # name -> set of kinds, file + include closure.
        self.unordered_accessors = set()
        self.ordered_accessors = set()
        self.unordered_aliases = set()

    def add(self, name, line, kind, local):
        if local:
            self.positional.setdefault(name, []).append((line, kind))
        self.closure.setdefault(name, set()).add(kind)

    def finish(self):
        for decl_list in self.positional.values():
            decl_list.sort()

    @staticmethod
    def _collapse(kinds):
        if len(kinds) == 1:
            return next(iter(kinds))
        families = {k.split("-")[0] for k in kinds}
        if len(families) == 1 and families <= {"unordered", "ordered"}:
            return families.pop()  # Same family, mixed element types.
        return "unknown"

    def resolve(self, name, line):
        """Kind of `name` at `line`: nearest preceding local decl, else the
        unambiguous closure kind, else 'unknown'."""
        best = None
        for decl_line, kind in self.positional.get(name, ()):  # Sorted.
            if decl_line <= line:
                best = kind
            else:
                break
        if best is not None:
            return best
        kinds = self.closure.get(name)
        return self._collapse(kinds) if kinds else "unknown"


_DECL_CACHE = {}

INCLUDE_RE = re.compile(r'#include\s+"([^"]+)"')
ALIAS_RE = re.compile(
    r"\b(?:using\s+(\w+)\s*=\s*[^;=]*unordered_(?:map|set)\s*<"
    r"|typedef\s+[^;]*unordered_(?:map|set)\s*<[^;]*?\s(\w+)\s*;)"
)
ORDERED_TMPL = (
    r"(?:std\s*::\s*)?(?:map|multimap|set|multiset|vector|deque|array|"
    r"span|list|pair)"
)
INT_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:%s)\b\s*(?:const\s*)?[&*]*\s+(\w+)\s*[;,=({\[)]"
    % "|".join(INT_TYPES)
)
FP_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:%s)\b\s*(?:const\s*)?[&*]*\s+(\w+)\s*[;,=({\[)]"
    % "|".join(FP_TYPES)
)
AUTO_DECL_RE = re.compile(r"\bauto\s*(?:const\s*)?[&*]*\s*(\w+)\s*=")

_NOT_NAMES = ("const", "return", "new", "typename", "struct", "class")


def _harvest_container_decls(stripped, decls, local, alias_names):
    """Finds names declared with container types (unordered and ordered)."""
    jobs = []  # (start_index, flavor)
    for m in re.finditer(r"\bunordered_(?:map|set)\s*<", stripped):
        jobs.append((m.start(), "unordered"))
    for m in re.finditer(r"\b%s\s*<" % ORDERED_TMPL, stripped):
        jobs.append((m.start(), "ordered"))
    for name in alias_names:
        for m in re.finditer(r"\b%s\b(?!\s*[=<.])" % re.escape(name), stripped):
            jobs.append((m.start(), "unordered-alias"))
    for start, flavor in jobs:
        if flavor == "unordered-alias":
            end = start + len(re.match(r"\w+", stripped[start:]).group(0))
        else:
            lt = stripped.find("<", start)
            if lt == -1 or lt - start > 32:
                continue
            end = match_angle(stripped, lt)
            if end == -1:
                continue
        kind = "unordered" if flavor.startswith("unordered") else "ordered"
        if flavor != "unordered-alias":
            inner = stripped[start:end]
            if re.search(r"\b(?:%s)\b" % "|".join(FP_TYPES), inner):
                kind += "-fp"  # Value type wins over integral keys.
            elif re.search(r"\b(?:%s)\b" % "|".join(INT_TYPES), inner):
                kind += "-int"
        tail = stripped[end : end + 160]
        m = re.match(r"\s*(?:const\s*)?[&*]*\s*(\w+)\s*([;,=({])?", tail)
        if not m or not m.group(1) or m.group(1) in _NOT_NAMES:
            continue
        name, sep = m.group(1), m.group(2)
        line = stripped.count("\n", 0, start) + 1
        if sep == "(":
            # Function declared to return this container type.
            (decls.unordered_accessors if kind.startswith("unordered")
             else decls.ordered_accessors).add(name)
        else:
            decls.add(name, line, kind, local)


def harvest_file_decls(path, local=True):
    """Harvests declared names from one file + its project includes."""
    key = (path, local)
    if key in _DECL_CACHE:
        return _DECL_CACHE[key]
    decls = Decls()
    _DECL_CACHE[key] = decls  # Pre-insert: include cycles terminate.
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError:
        return decls
    stripped, _ = strip_comments_and_strings(raw)

    alias_names = set()
    for m in ALIAS_RE.finditer(stripped):
        alias_names.add(m.group(1) or m.group(2))
    decls.unordered_aliases |= alias_names
    _harvest_container_decls(stripped, decls, local, alias_names)

    for m in INT_DECL_RE.finditer(stripped):
        decls.add(m.group(1), stripped.count("\n", 0, m.start()) + 1, "int",
                  local)
    for m in FP_DECL_RE.finditer(stripped):
        decls.add(m.group(1), stripped.count("\n", 0, m.start()) + 1, "fp",
                  local)
    for m in AUTO_DECL_RE.finditer(stripped):
        decls.add(m.group(1), stripped.count("\n", 0, m.start()) + 1,
                  "unknown", local)

    # Merge the closure of project includes (src/-relative), positions
    # dropped: included declarations never shadow file-local ones.
    for m in INCLUDE_RE.finditer(raw):
        inc = os.path.join(REPO_ROOT, "src", m.group(1))
        if os.path.isfile(inc) and os.path.abspath(inc) != os.path.abspath(path):
            sub = harvest_file_decls(os.path.abspath(inc), local=False)
            for name, kinds in sub.closure.items():
                decls.closure.setdefault(name, set()).update(kinds)
            decls.unordered_accessors |= sub.unordered_accessors
            decls.ordered_accessors |= sub.ordered_accessors
            decls.unordered_aliases |= sub.unordered_aliases
    decls.finish()
    return decls


def loop_body_lines(stripped):
    """Lines (1-based) inside for/while loop bodies, braces or single-stmt."""
    in_loop = set()
    n = len(stripped)
    line_of = []
    line = 1
    for c in stripped:
        line_of.append(line)
        if c == "\n":
            line += 1
    for m in re.finditer(r"\b(for|while)\s*\(", stripped):
        # Find the matching ')' of the loop header.
        i = m.end() - 1
        depth = 0
        while i < n:
            if stripped[i] == "(":
                depth += 1
            elif stripped[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= n:
            continue
        j = i + 1
        while j < n and stripped[j] in " \t\n":
            j += 1
        if j >= n:
            continue
        if stripped[j] == "{":
            depth = 0
            k = j
            while k < n:
                if stripped[k] == "{":
                    depth += 1
                elif stripped[k] == "}":
                    depth -= 1
                    if depth == 0:
                        break
                k += 1
            body_end = min(k, n - 1)
        else:
            k = stripped.find(";", j)
            body_end = k if k != -1 else n - 1
        for ln in range(line_of[j], line_of[body_end] + 1):
            in_loop.add(ln)
        # The header line itself can hold the body of a one-liner.
        in_loop.add(line_of[m.start()])
    return in_loop


def extract_macro_args(stripped, start_paren):
    """Returns (args_text, end_index) for a balanced paren group."""
    depth = 0
    i = start_paren
    n = len(stripped)
    while i < n:
        if stripped[i] == "(":
            depth += 1
        elif stripped[i] == ")":
            depth -= 1
            if depth == 0:
                return stripped[start_paren + 1 : i], i
        i += 1
    return None, n


RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;)]*?):([^;{]*)\)")
# Iteration needs begin(); a bare `.end()` is the find-lookup idiom
# (`it == m.end()`), which does not expose hash order.
BEGIN_RE = re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\(")
R2_DIRECT_RE = re.compile(
    r"std::rand\b|\bsrand\s*\(|(?<![\w.])rand\s*\(\s*\)|\brandom_device\b"
)
R2_TIME_SEED_RE = re.compile(
    r"\b(?:mt19937(?:_64)?|default_random_engine|minstd_rand0?|"
    r"ranlux\w+|knuth_b|Rng)\b[^;{]*?[({][^;]*?\b(?:time\s*\(|now\s*\()"
)
MACRO_RE = re.compile(r"\b(TELEM_[A-Z_]+|ARRAYDB_CHECK(?:_[A-Z]+)*)\s*\(")
MUTATION_RE = re.compile(
    r"\+\+|--|(?:\+|-|\*|/|%|&|\||\^|<<|>>)=(?!=)|(?<![=!<>+\-*/%&|^])=(?!=)"
)
def accum_lhs(text, plus_idx):
    """Left-hand-side expression of a `+=` at text[plus_idx], extracted by
    scanning backward with bracket balancing (so indexed targets like
    ``minutes[static_cast<size_t>(n)] +=`` survive intact)."""
    j = plus_idx - 1
    while j >= 0 and text[j] in " \t":
        j -= 1
    depth = 0
    while j >= 0:
        c = text[j]
        if c in ")]":
            depth += 1
        elif c in "([":
            if depth == 0:
                break
            depth -= 1
        elif depth == 0:
            ok = (
                c.isalnum()
                or c in "_.>"
                or (c == "-" and text[j + 1] == ">")
                or (
                    c == ":"
                    and ((j > 0 and text[j - 1] == ":") or text[j + 1] == ":")
                )
            )
            if not ok:
                break
        j -= 1
    return text[j + 1 : plus_idx].strip()


def lhs_candidates(lhs):
    """Identifier candidates of a `x += ` left-hand side, for typing.

    Ordered least- to most-specific: base identifier first, then the final
    member access if there is one (``cost.scanned_gb`` -> ``scanned_gb``).
    """
    names = re.findall(r"[A-Za-z_]\w*", lhs)
    if not names:
        return []
    cands = [names[0]]
    m = re.search(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$", lhs)
    if m and m.group(1) != names[0]:
        cands.append(m.group(1))
    return cands


def lint_file(path, decls, args, ast_range_for=None):
    findings = []
    try:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
    except OSError as e:
        findings.append(Finding(path, 0, "W0", f"unreadable file: {e}"))
        return findings, {}, frozenset()
    stripped_all, waivers = strip_comments_and_strings(raw)
    stripped = blank_preprocessor(stripped_all)
    lines = stripped.split("\n")
    blank_lines = {
        i
        for i, ln in enumerate(stripped_all.split("\n"), start=1)
        if not ln.strip()
    }
    rel = os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")

    def references_unordered(expr, line_no):
        if "unordered_" in expr:
            return True
        for name in re.findall(r"[A-Za-z_]\w*", expr):
            if re.search(r"\b%s\s*\(" % re.escape(name), expr):
                # A call: flag only via the accessor return types, and only
                # when unambiguous across the include closure.
                if (
                    name in decls.unordered_accessors
                    and name not in decls.ordered_accessors
                ):
                    return True
                continue
            if decls.resolve(name, line_no).startswith("unordered"):
                return True
        return False

    # R1: range-for over unordered containers.
    if "R1" in args.rules:
        seen_lines = set()
        if ast_range_for is not None:
            for line_no in ast_range_for:
                findings.append(
                    Finding(
                        path,
                        line_no,
                        "R1",
                        "range-for over an unordered container "
                        "(clang AST: deduced range type is unordered)",
                    )
                )
                seen_lines.add(line_no)
        else:
            for m in RANGE_FOR_RE.finditer(stripped):
                line_no = stripped.count("\n", 0, m.start()) + 1
                if references_unordered(m.group(2), line_no):
                    findings.append(
                        Finding(
                            path,
                            line_no,
                            "R1",
                            "range-for over an unordered container "
                            f"(`{m.group(2).strip()}`): hash order is not "
                            "deterministic",
                        )
                    )
                    seen_lines.add(line_no)
        for m in BEGIN_RE.finditer(stripped):
            line_no = stripped.count("\n", 0, m.start()) + 1
            if decls.resolve(m.group(1), line_no).startswith("unordered"):
                if line_no in seen_lines:
                    continue
                findings.append(
                    Finding(
                        path,
                        line_no,
                        "R1",
                        f"iterator traversal of unordered `{m.group(1)}`: "
                        "hash order is not deterministic",
                    )
                )
                seen_lines.add(line_no)

    # R2: nondeterministic randomness.
    if "R2" in args.rules:
        for i, ln in enumerate(lines, start=1):
            if R2_DIRECT_RE.search(ln):
                findings.append(
                    Finding(
                        path,
                        i,
                        "R2",
                        "nondeterministic randomness source (rand/srand/"
                        "random_device); use util::Rng with an explicit seed",
                    )
                )
        for m in R2_TIME_SEED_RE.finditer(stripped):
            line_no = stripped.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(
                    path,
                    line_no,
                    "R2",
                    "RNG seeded from a clock; seeds must be explicit inputs",
                )
            )

    # R3: side-effecting TELEM_* / ARRAYDB_CHECK* arguments.
    if "R3" in args.rules:
        for m in MACRO_RE.finditer(stripped):
            args_text, _ = extract_macro_args(stripped, m.end() - 1)
            if args_text is None:
                continue
            mut = MUTATION_RE.search(args_text)
            if mut:
                line_no = stripped.count("\n", 0, m.start()) + 1
                findings.append(
                    Finding(
                        path,
                        line_no,
                        "R3",
                        f"side effect (`{mut.group(0)}`) in {m.group(1)} "
                        "argument; disabled/compiled-out builds would "
                        "diverge",
                    )
                )

    # R4: legacy process-global knob shims.
    if "R4" in args.rules and rel not in SHIM_HOME:
        for name in SHIM_NAMES:
            for m in re.finditer(r"\b%s\b" % name, stripped):
                line_no = stripped.count("\n", 0, m.start()) + 1
                findings.append(
                    Finding(
                        path,
                        line_no,
                        "R4",
                        f"deprecated process-global knob shim `{name}`; "
                        "thread an exec::ExecContext instead",
                    )
                )

    # R5: floating-point accumulation in the reduction-bearing scope.
    r5_scoped = any(rel.startswith(p) for p in args.r5_scope) or (
        "" in args.r5_scope
    )
    if "R5" in args.rules and r5_scoped:
        for m in re.finditer(r"\bstd::accumulate\b", stripped):
            line_no = stripped.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(
                    path,
                    line_no,
                    "R5",
                    "std::accumulate: reduction order must be pinned "
                    "explicitly (fixed-order loop or kernel contract)",
                )
            )
        in_loop = loop_body_lines(stripped)
        for i, ln in enumerate(lines, start=1):
            if i not in in_loop:
                continue
            for m in re.finditer(r"\+=", ln):
                lhs = accum_lhs(ln, m.start())
                cands = lhs_candidates(lhs)
                if not cands:
                    continue
                # Most-specific candidate (final member) wins.
                resolved = "unknown"
                for c in reversed(cands):
                    k = decls.resolve(c, i)
                    if k != "unknown":
                        resolved = k
                        break
                if resolved == "int" or resolved.endswith("-int"):
                    continue  # Integral += is exact in any order.
                if resolved == "fp" or resolved.endswith("-fp"):
                    kind = "floating-point"
                else:
                    kind = "unclassified (possibly floating-point)"
                findings.append(
                    Finding(
                        path,
                        i,
                        "R5",
                        f"{kind} `+=` reduction in a loop "
                        f"(`{lhs} +=`); annotate the "
                        "merge-order contract",
                    )
                )

    return findings, waivers, blank_lines


def apply_waivers(findings, waivers, path, blank_lines=frozenset()):
    """Drops waived findings; reports unknown waiver tokens as W0.

    A waiver's window starts at the last line of its comment block (a
    multi-line justification slides the window down with it, via
    ``blank_lines`` — lines that are empty once comments are stripped) and
    covers that line plus the next two.
    """
    kept = []
    out_w0 = []
    effective = {}
    for line, tokens in sorted(waivers.items()):
        for t in tokens:
            if t not in WAIVER_TOKENS:
                out_w0.append(
                    Finding(
                        path,
                        line,
                        "W0",
                        f"unknown arraydb-lint waiver token `{t}` "
                        f"(known: {', '.join(sorted(WAIVER_TOKENS))})",
                    )
                )
        eff = line
        while eff + 1 in blank_lines:
            eff += 1
        effective.setdefault(eff, set()).update(tokens)
    for f in findings:
        waived = False
        for delta in (0, 1, 2):
            tokens = effective.get(f.line - delta, set())
            if any(WAIVER_TOKENS.get(t) == f.rule for t in tokens):
                waived = True
                break
        if not waived:
            kept.append(f)
    return kept + out_w0


# -- clang AST engine (R1 range-for precision) --------------------------------


def find_clang():
    for name in ("clang++", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def ast_unordered_range_fors(clang, path, verbose):
    """Lines of CXXForRangeStmt whose deduced range type is unordered.

    Returns None when the AST is unavailable (compile error, schema
    surprise, crash) so the caller falls back to the regex engine.
    """
    cmd = [
        clang,
        "-fsyntax-only",
        "-std=c++20",
        "-I",
        os.path.join(REPO_ROOT, "src"),
        "-Xclang",
        "-ast-dump=json",
        path,
    ]
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0 or not proc.stdout:
            if verbose:
                print(
                    f"note: clang AST unavailable for {path}; regex fallback",
                    file=sys.stderr,
                )
            return None
        root = json.loads(proc.stdout)
    except Exception:
        if verbose:
            print(
                f"note: clang AST parse failed for {path}; regex fallback",
                file=sys.stderr,
            )
        return None

    main_file = os.path.abspath(path)
    result = set()

    def walk(node, cur_line, cur_file):
        if not isinstance(node, dict):
            return cur_line, cur_file
        loc = node.get("loc") or {}
        # clang omits unchanged file/line fields; carry them forward.
        spelling = loc.get("spellingLoc") or loc.get("expansionLoc") or loc
        if isinstance(spelling, dict):
            cur_file = spelling.get("file", cur_file)
            cur_line = spelling.get("line", cur_line)
        if (
            node.get("kind") == "CXXForRangeStmt"
            and cur_file
            and os.path.abspath(cur_file) == main_file
        ):
            if _range_var_is_unordered(node):
                result.add(cur_line)
        for child in node.get("inner", []) or []:
            cur_line, cur_file = walk(child, cur_line, cur_file)
        return cur_line, cur_file

    def _range_var_is_unordered(for_node):
        for child in for_node.get("inner", []) or []:
            if not isinstance(child, dict):
                continue
            if child.get("kind") == "DeclStmt":
                for var in child.get("inner", []) or []:
                    if (
                        isinstance(var, dict)
                        and var.get("kind") == "VarDecl"
                        and var.get("name", "").startswith("__range")
                    ):
                        qual = (var.get("type") or {}).get("qualType", "")
                        desugared = (var.get("type") or {}).get(
                            "desugaredQualType", ""
                        )
                        if "unordered_" in qual or "unordered_" in desugared:
                            return True
        return False

    walk(root, 0, None)
    return result


# -- driver -------------------------------------------------------------------


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(os.path.abspath(p))
        else:
            for dirpath, _dirnames, filenames in os.walk(p):
                for fn in sorted(filenames):
                    if fn.endswith((".h", ".cc", ".cpp", ".hpp")):
                        files.append(os.path.abspath(os.path.join(dirpath, fn)))
    return sorted(set(files))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument(
        "paths",
        nargs="*",
        default=[os.path.join(REPO_ROOT, "src")],
        help="files or directories to lint (default: src/)",
    )
    ap.add_argument(
        "--engine",
        choices=("auto", "regex", "clang"),
        default="auto",
        help="R1 range-for analysis engine (default: auto)",
    )
    ap.add_argument(
        "--rules",
        default="R1,R2,R3,R4,R5",
        help="comma-separated rule subset to run (default: all)",
    )
    ap.add_argument(
        "--r5-scope",
        default="src/exec/",
        help="comma-separated repo-relative prefixes R5 applies to "
        "(default: src/exec/; empty string means everywhere — used by "
        "the fixture harness)",
    )
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rid, name in RULES.items():
            print(f"{rid}  {name}")
        return 0

    args.rules = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
    unknown = args.rules - set(RULES)
    if unknown:
        print(f"error: unknown rules {sorted(unknown)}", file=sys.stderr)
        return 2
    args.r5_scope = [p.strip() for p in args.r5_scope.split(",")]

    clang = None
    if args.engine in ("auto", "clang"):
        clang = find_clang()
        if clang is None and args.engine == "clang":
            print("error: --engine=clang but no clang++ on PATH", file=sys.stderr)
            return 2

    files = collect_files(args.paths)
    if not files:
        print("error: no source files found", file=sys.stderr)
        return 2

    all_findings = []
    for path in files:
        decls = harvest_file_decls(path)
        ast_lines = None
        if clang is not None and "R1" in args.rules:
            ast_lines = ast_unordered_range_fors(clang, path, args.verbose)
        findings, waivers, blanks = lint_file(
            path, decls, args, ast_range_for=ast_lines
        )
        all_findings.extend(apply_waivers(findings, waivers, path, blanks))

    all_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in all_findings:
        print(f)
    n = len(all_findings)
    engine = "clang-ast" if clang else "regex"
    print(
        f"determinism-lint: {len(files)} files, {n} finding(s) "
        f"[R1 engine: {engine}]",
        file=sys.stderr,
    )
    return 1 if n else 0


if __name__ == "__main__":
    sys.exit(main())
