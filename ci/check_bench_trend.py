#!/usr/bin/env python3
"""Benchmark trend gate: compare fresh BENCH_*.json against committed baselines.

For every baseline file under --baseline-dir, the same-named fresh file under
--fresh-dir is checked and the build fails on a >tolerance (default 20%)
regression.

Two kinds of values are compared, with different tolerances:

  * top-level summary metrics (``--metrics-tolerance``, default 20%): these
    are machine-independent — simulated minutes and speedup ratios computed
    by deterministic models — so a tight gate is reliable. Direction is
    inferred from the name: metrics containing ``speedup`` or ``saved`` or
    ending in ``_x`` are gains and must not drop; otherwise metrics ending
    in ``_minutes``, ``_ns`` or ``_ns_per_op`` are costs and must not grow.
    Other metrics (counts like ``reorg_increments``) are informational only.
    A baseline key ``floor_<metric>`` declares an absolute minimum: the
    fresh run's ``<metric>`` must be >= the floor value, regardless of what
    the baseline recorded for the metric itself. Use this for same-machine
    ratios (e.g. ``floor_filter_simd_ratio``: the SIMD filter kernel must
    stay at least 2x its scalar fallback) — the ratio is deterministic in
    direction even though both absolute timings move with the machine.
    Symmetrically, ``ceiling_<metric>`` declares an absolute maximum: the
    fresh ``<metric>`` must stay <= the ceiling. Use this for cost metrics
    whose baseline value sits near zero, where a relative tolerance is
    meaningless (e.g. ``ceiling_arbitrated_ingest_stall_minutes``: bandwidth
    arbitration must keep the ingest stall bounded, or the regression fails
    CI even if the baseline measurement was tiny). Ceilings also gate
    same-machine ratios that hover around 1.0 — metrics ending in ``_ratio``
    are otherwise informational, but ``ceiling_telemetry_overhead_ratio``
    (1.05) turns bench_operators' ``telemetry_overhead_ratio`` into the
    enforced bound on the telemetry subsystem's instrumentation cost.
  * per-benchmark ``ns_per_op`` entries (``--entries-tolerance``, default
    100%): wall-clock micro timings. Absolute nanoseconds differ between
    the baseline machine and the CI runner, so raw ratios are normalized by
    the file's median fresh/baseline ratio first — a uniformly slower
    machine passes while a benchmark that regressed relative to its
    siblings fails. Even same-machine smoke runs (``--benchmark_min_time=
    0.05``) show up to ~70% per-entry noise, hence the loose default: this
    arm only catches gross regressions (a dropped fast path, a debug
    build); the tight trend gate lives in the deterministic metrics above.

Refresh a baseline by copying the freshly emitted file over
``bench/baselines/`` and committing it alongside the change that moved it.
"""

import argparse
import json
import statistics
import sys
from pathlib import Path


def load(path: Path) -> dict:
    with path.open() as f:
        return json.load(f)


def check_entries(name: str, base: dict, fresh: dict, tol: float) -> list:
    failures = []
    base_by_name = {e["name"]: e for e in base.get("benchmarks", [])}
    fresh_by_name = {e["name"]: e for e in fresh.get("benchmarks", [])}
    missing = sorted(set(base_by_name) - set(fresh_by_name))
    for m in missing:
        failures.append(f"{name}: benchmark '{m}' missing from fresh run")
    shared = sorted(set(base_by_name) & set(fresh_by_name))
    ratios = {}
    for n in shared:
        b = base_by_name[n]["ns_per_op"]
        f = fresh_by_name[n]["ns_per_op"]
        if b > 0 and f > 0:
            ratios[n] = f / b
    if not ratios:
        return failures
    med = statistics.median(ratios.values())
    if med <= 0:
        med = 1.0
    for n, r in sorted(ratios.items()):
        normalized = r / med
        if normalized > 1.0 + tol:
            failures.append(
                f"{name}: '{n}' regressed {100 * (normalized - 1):.1f}% "
                f"(machine-normalized; raw {ratios[n]:.3f}x, file median "
                f"{med:.3f}x)"
            )
    return failures


def check_metrics(name: str, base: dict, fresh: dict, tol: float) -> list:
    failures = []
    for key, bval in base.items():
        if key == "benchmarks" or not isinstance(bval, (int, float)):
            continue
        if key.startswith("floor_"):
            target = key[len("floor_"):]
            fval = fresh.get(target)
            if not isinstance(fval, (int, float)):
                failures.append(
                    f"{name}: floor target '{target}' missing from fresh run")
            elif fval < bval:
                failures.append(
                    f"{name}: metric '{target}' = {fval:.4g} below required "
                    f"floor {bval:.4g}")
            continue
        if key.startswith("ceiling_"):
            target = key[len("ceiling_"):]
            fval = fresh.get(target)
            if not isinstance(fval, (int, float)):
                failures.append(
                    f"{name}: ceiling target '{target}' missing from fresh "
                    f"run")
            elif fval > bval:
                failures.append(
                    f"{name}: metric '{target}' = {fval:.4g} above allowed "
                    f"ceiling {bval:.4g}")
            continue
        if key not in fresh:
            failures.append(f"{name}: metric '{key}' missing from fresh run")
            continue
        fval = fresh[key]
        if not isinstance(fval, (int, float)) or bval <= 0:
            continue
        higher_better = ("speedup" in key or "saved" in key
                         or key.endswith("_x"))
        lower_better = not higher_better and key.endswith(
            ("_minutes", "_ns", "_ns_per_op"))
        if higher_better and fval < bval * (1.0 - tol):
            failures.append(
                f"{name}: metric '{key}' dropped {100 * (1 - fval / bval):.1f}% "
                f"({bval:.4g} -> {fval:.4g})"
            )
        elif lower_better and fval > bval * (1.0 + tol):
            failures.append(
                f"{name}: metric '{key}' grew {100 * (fval / bval - 1):.1f}% "
                f"({bval:.4g} -> {fval:.4g})"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", type=Path, required=True)
    parser.add_argument("--fresh-dir", type=Path, required=True)
    parser.add_argument(
        "--metrics-tolerance", type=float, default=0.20,
        help="allowed regression of deterministic summary metrics "
             "(default 0.20 = 20%%)")
    parser.add_argument(
        "--entries-tolerance", type=float, default=1.00,
        help="allowed machine-normalized regression of wall-clock "
             "ns_per_op entries (default 1.00 = 100%%; these are noisy)")
    args = parser.parse_args()

    baselines = sorted(args.baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"error: no BENCH_*.json baselines in {args.baseline_dir}")
        return 1

    failures = []
    checked = 0
    for baseline_path in baselines:
        fresh_path = args.fresh_dir / baseline_path.name
        if not fresh_path.exists():
            failures.append(
                f"{baseline_path.name}: fresh artifact not found in "
                f"{args.fresh_dir} (bench not run?)")
            continue
        base = load(baseline_path)
        fresh = load(fresh_path)
        failures += check_entries(baseline_path.name, base, fresh,
                                  args.entries_tolerance)
        failures += check_metrics(baseline_path.name, base, fresh,
                                  args.metrics_tolerance)
        checked += 1
        print(f"checked {baseline_path.name}")

    if failures:
        print(f"\n{len(failures)} benchmark regression(s) beyond tolerance "
              f"(metrics {args.metrics_tolerance:.0%}, entries "
              f"{args.entries_tolerance:.0%}):")
        for f in failures:
            print(f"  FAIL {f}")
        return 1
    print(f"\nOK: {checked} benchmark file(s) within tolerance (metrics "
          f"{args.metrics_tolerance:.0%}, entries "
          f"{args.entries_tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
