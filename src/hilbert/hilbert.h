// n-dimensional Hilbert space-filling curve.
//
// Implements the Butz/Hamilton bit-manipulation algorithm ("Compact Hilbert
// Indices", Hamilton CS-2006-07) for arbitrary dimensionality, with both the
// forward map (point -> index) and its inverse. The curve serializes the
// chunk grid such that successive indices are face-adjacent cells, which the
// Hilbert partitioner (§4.2) uses to keep spatially close chunks on the same
// node.
//
// For non-square ("rectangular") grids, HilbertRank embeds the grid in the
// smallest enclosing hypercube and orders cells by the restriction of the
// cube's curve to the grid — the ordering-equivalent of the pseudo-Hilbert
// scan for arbitrarily-sized rectangles cited by the paper [32]: it is a
// total order over the rectangle preserving the curve's locality.

#ifndef ARRAYDB_HILBERT_HILBERT_H_
#define ARRAYDB_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "array/coordinates.h"

namespace arraydb::hilbert {

/// Maps a point in the n-D hypercube [0, 2^bits)^n to its Hilbert index in
/// [0, 2^(n*bits)). Requires n * bits <= 64 and n >= 1.
uint64_t HilbertIndex(const std::vector<uint32_t>& point, int bits);

/// Inverse of HilbertIndex.
std::vector<uint32_t> HilbertPoint(uint64_t index, int num_dims, int bits);

/// Number of bits needed so a hypercube of side 2^bits covers `extents`.
int BitsForExtents(const array::Coordinates& extents);

/// Total order over a rectangular grid with per-dimension `extents`:
/// the Hilbert index of `coords` within the smallest enclosing hypercube.
/// Coordinates must satisfy 0 <= coords[i] < extents[i].
uint64_t HilbertRank(const array::Coordinates& coords,
                     const array::Coordinates& extents);

}  // namespace arraydb::hilbert

#endif  // ARRAYDB_HILBERT_HILBERT_H_
