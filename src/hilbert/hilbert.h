// n-dimensional Hilbert space-filling curve.
//
// Implements the Butz/Hamilton bit-manipulation algorithm ("Compact Hilbert
// Indices", Hamilton CS-2006-07) for arbitrary dimensionality, with both the
// forward map (point -> index) and its inverse. The curve serializes the
// chunk grid such that successive indices are face-adjacent cells, which the
// Hilbert partitioner (§4.2) uses to keep spatially close chunks on the same
// node.
//
// For non-square ("rectangular") grids, HilbertRank embeds the grid in the
// smallest enclosing hypercube and orders cells by the restriction of the
// cube's curve to the grid — the ordering-equivalent of the pseudo-Hilbert
// scan for arbitrarily-sized rectangles cited by the paper [32]: it is a
// total order over the rectangle preserving the curve's locality.
//
// Two implementations produce identical indices:
//   - HilbertIndexReference: the per-bit Hamilton recurrence, kept as the
//     executable specification (and as the "seed" side of the perf
//     comparison in bench_micro_hilbert).
//   - HilbertCodec: the fast path. Coordinates are bit-interleaved in one
//     pass through per-byte spread lookup tables, then each n-bit level is
//     mapped through a precomputed (entry-point, direction) state-transition
//     table, so the per-level rotate/gray/entry/direction arithmetic
//     disappears from the hot loop. HilbertRankBatch amortizes codec setup
//     over whole chunk batches — the shape PlanScaleOut and parallel ingest
//     need.

#ifndef ARRAYDB_HILBERT_HILBERT_H_
#define ARRAYDB_HILBERT_HILBERT_H_

#include <cstdint>
#include <vector>

#include "array/coordinates.h"
#include "util/status.h"

namespace arraydb::hilbert {

namespace internal {

/// Precomputed per-dimensionality tables: byte-spread LUT for interleaving
/// plus the (entry-point, direction) state machine over n-bit level words.
/// State tables are built for n <= kMaxStateDims; higher dimensionalities
/// fall back to branchless per-level arithmetic on the interleaved word.
struct CurveTables {
  static constexpr int kMaxStateDims = 6;

  int n = 0;
  uint64_t spread[256] = {};     // byte b -> bits of b spread with stride n.
  int num_states = 0;            // n * 2^n when the state machine is built.
  std::vector<uint8_t> w;        // [state << n | l] -> level output word.
  std::vector<uint16_t> next;    // [state << n | l] -> next state.

  bool has_state_machine() const { return num_states > 0; }
};

/// Shared, lazily built, thread-safe table cache (one entry per n).
const CurveTables* GetCurveTables(int num_dims);

}  // namespace internal

/// Reusable encoder for a fixed (num_dims, bits) hypercube. Construction
/// resolves the shared lookup tables once; Rank() is then allocation-free.
/// Requires num_dims >= 1, bits >= 1, num_dims * bits <= 64.
class HilbertCodec {
 public:
  /// Checked factory for schema-facing callers. Returns InvalidArgument —
  /// instead of a CHECK-abort or a silent fall-through to the slower
  /// non-table path — when the geometry is invalid (num_dims < 1, bits < 1,
  /// num_dims * bits > 64) or the schema rank exceeds the precomputed
  /// state tables (num_dims > internal::CurveTables::kMaxStateDims = 6,
  /// the current fast-path limit; ROADMAP tracks extending the tables with
  /// a compressed two-level scheme if higher-rank schemas appear).
  static util::StatusOr<HilbertCodec> Create(int num_dims, int bits);

  /// Unchecked constructor: aborts on invalid geometry and accepts any
  /// rank <= 64, transparently using branchless per-level arithmetic above
  /// the state-table limit (reference-exact, just slower). Schema-driven
  /// callers should prefer Create.
  HilbertCodec(int num_dims, int bits);

  int num_dims() const { return n_; }
  int bits() const { return bits_; }

  /// Hilbert index of `point` (num_dims coordinates, each < 2^bits).
  uint64_t Rank(const uint32_t* point) const;

  /// Bounds-checked rank of grid coordinates against `extents` (the grid
  /// this codec was sized for): 0 <= coords[i] < extents[i].
  uint64_t RankChecked(const array::Coordinates& coords,
                       const array::Coordinates& extents) const;

  /// Batched rank over a packed coordinate column: `count` points of
  /// num_dims() consecutive int64 values each (a Chunk's packed_coords
  /// layout). Coordinate d of every point is shifted by -lo[d] before
  /// encoding and must land in [0, 2^bits). Writes out[i] = Rank(point i).
  /// Allocation-free per point — one codec setup amortized over the whole
  /// column (the radix-join key derivation hot path).
  void RankPacked(const int64_t* coords, size_t count, const int64_t* lo,
                  uint64_t* out) const;

 private:
  int n_;
  int bits_;
  int coord_bytes_;  // Bytes per coordinate actually carrying bits.
  const internal::CurveTables* tables_;
};

/// Maps a point in the n-D hypercube [0, 2^bits)^n to its Hilbert index in
/// [0, 2^(n*bits)). Requires n * bits <= 64 and n >= 1.
uint64_t HilbertIndex(const std::vector<uint32_t>& point, int bits);

/// The original per-bit Hamilton recurrence. Identical results to
/// HilbertIndex; kept as the executable specification for property tests
/// and as the seed baseline in bench_micro_hilbert.
uint64_t HilbertIndexReference(const std::vector<uint32_t>& point, int bits);

/// Inverse of HilbertIndex.
std::vector<uint32_t> HilbertPoint(uint64_t index, int num_dims, int bits);

/// Number of bits needed so a hypercube of side 2^bits covers `extents`.
int BitsForExtents(const array::Coordinates& extents);

/// Total order over a rectangular grid with per-dimension `extents`:
/// the Hilbert index of `coords` within the smallest enclosing hypercube.
/// Coordinates must satisfy 0 <= coords[i] < extents[i].
uint64_t HilbertRank(const array::Coordinates& coords,
                     const array::Coordinates& extents);

/// Seed-path equivalent of HilbertRank (per-call setup + per-bit loops).
uint64_t HilbertRankReference(const array::Coordinates& coords,
                              const array::Coordinates& extents);

/// Batched HilbertRank: one codec setup amortized over all `points`.
/// Equivalent to calling HilbertRank on each element.
std::vector<uint64_t> HilbertRankBatch(
    const std::vector<array::Coordinates>& points,
    const array::Coordinates& extents);

}  // namespace arraydb::hilbert

#endif  // ARRAYDB_HILBERT_HILBERT_H_
