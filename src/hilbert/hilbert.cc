#include "hilbert/hilbert.h"

#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>
#include <string>

#include "util/logging.h"

namespace arraydb::hilbert {
namespace {

// All helpers operate on n-bit words stored in uint64_t.

inline uint64_t MaskN(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

// Rotates the low n bits of x right by r (branchless; the (n - r) & 63
// keeps the complementary shift in range for every n in [1, 64], and the
// final mask discards whatever the r == 0 or n < 64 corner cases smear
// above bit n-1).
inline uint64_t RotRight(uint64_t x, int r, int n) {
  r %= n;
  x &= MaskN(n);
  return ((x >> r) | (x << ((n - r) & 63))) & MaskN(n);
}

// Rotates the low n bits of x left by r.
inline uint64_t RotLeft(uint64_t x, int r, int n) {
  r %= n;
  x &= MaskN(n);
  return ((x << r) | (x >> ((n - r) & 63))) & MaskN(n);
}

// Binary reflected Gray code.
inline uint64_t Gray(uint64_t i) { return i ^ (i >> 1); }

// Inverse Gray code (prefix xor).
inline uint64_t GrayInverse(uint64_t g) {
  uint64_t i = g;
  for (int shift = 1; shift < 64; shift <<= 1) i ^= i >> shift;
  return i;
}

// Number of trailing set (one) bits.
inline int TrailingSetBits(uint64_t i) { return std::countr_one(i); }

// Entry point e(i) of the Hilbert curve in sub-hypercube i (Hamilton Lemma
// 2.8): e(0) = 0, e(i) = gray(2 * floor((i-1)/2)).
inline uint64_t EntryPoint(uint64_t i) {
  if (i == 0) return 0;
  return Gray(2 * ((i - 1) / 2));
}

// Intra sub-hypercube direction d(i) (Hamilton Lemma 2.11).
inline int Direction(uint64_t i, int n) {
  if (i == 0) return 0;
  if ((i & 1) == 0) return TrailingSetBits(i - 1) % n;
  return TrailingSetBits(i) % n;
}

std::unique_ptr<internal::CurveTables> BuildCurveTables(int n) {
  auto t = std::make_unique<internal::CurveTables>();
  t->n = n;
  // Byte-spread LUT: bit k of a byte lands at position k * n. Positions at
  // or above 64 only arise for input bits a valid coordinate can never set
  // (they would overflow the n * bits <= 64 budget), so they are dropped.
  for (int b = 0; b < 256; ++b) {
    uint64_t s = 0;
    for (int k = 0; k < 8; ++k) {
      if (((b >> k) & 1) != 0 && k * n < 64) s |= 1ULL << (k * n);
    }
    t->spread[static_cast<size_t>(b)] = s;
  }
  if (n > internal::CurveTables::kMaxStateDims) return t;

  // State machine over (entry point e, direction d). One level of the
  // Hamilton recurrence maps an n-bit input word l to the output word w and
  // the next (e, d) frame; enumerating all combinations removes the
  // rotate/gray/entry/direction arithmetic from the encode loop.
  const uint64_t words = 1ULL << n;
  t->num_states = static_cast<int>(words) * n;
  t->w.assign(static_cast<size_t>(t->num_states) << n, 0);
  t->next.assign(t->w.size(), 0);
  for (uint64_t e = 0; e < words; ++e) {
    for (int d = 0; d < n; ++d) {
      const uint32_t state = static_cast<uint32_t>(e) * static_cast<uint32_t>(n) +
                             static_cast<uint32_t>(d);
      for (uint64_t l = 0; l < words; ++l) {
        const uint64_t local = RotRight(l ^ e, d + 1, n);
        const uint64_t w = GrayInverse(local) & MaskN(n);
        const uint64_t e2 = (e ^ RotLeft(EntryPoint(w), d + 1, n)) & MaskN(n);
        const int d2 = (d + Direction(w, n) + 1) % n;
        const size_t idx = (static_cast<size_t>(state) << n) | l;
        t->w[idx] = static_cast<uint8_t>(w);
        t->next[idx] = static_cast<uint16_t>(
            e2 * static_cast<uint64_t>(n) + static_cast<uint64_t>(d2));
      }
    }
  }
  return t;
}

}  // namespace

namespace internal {

const CurveTables* GetCurveTables(int num_dims) {
  ARRAYDB_CHECK_GE(num_dims, 1);
  ARRAYDB_CHECK_LE(num_dims, 64);
  static std::array<std::atomic<const CurveTables*>, 65> cache{};
  static std::mutex build_mutex;
  auto& slot = cache[static_cast<size_t>(num_dims)];
  const CurveTables* t = slot.load(std::memory_order_acquire);
  if (t != nullptr) return t;
  std::lock_guard<std::mutex> lock(build_mutex);
  t = slot.load(std::memory_order_relaxed);
  if (t != nullptr) return t;
  // Intentionally leaked: process-lifetime cache shared across threads.
  const CurveTables* built = BuildCurveTables(num_dims).release();
  slot.store(built, std::memory_order_release);
  return built;
}

}  // namespace internal

util::StatusOr<HilbertCodec> HilbertCodec::Create(int num_dims, int bits) {
  if (num_dims < 1) {
    return util::InvalidArgument("num_dims must be >= 1");
  }
  if (bits < 1) {
    return util::InvalidArgument("bits must be >= 1");
  }
  if (static_cast<int64_t>(num_dims) * static_cast<int64_t>(bits) > 64) {
    return util::InvalidArgument(
        "num_dims * bits exceeds the 64-bit index budget");
  }
  if (num_dims > internal::CurveTables::kMaxStateDims) {
    return util::InvalidArgument(
        "schema rank exceeds the Hilbert state tables (" +
        std::to_string(num_dims) + " dims > " +
        std::to_string(internal::CurveTables::kMaxStateDims) +
        "-dim limit); extend CurveTables before ranking this schema");
  }
  return HilbertCodec(num_dims, bits);
}

HilbertCodec::HilbertCodec(int num_dims, int bits)
    : n_(num_dims), bits_(bits) {
  ARRAYDB_CHECK_GE(n_, 1);
  ARRAYDB_CHECK_GE(bits_, 1);
  ARRAYDB_CHECK_LE(n_ * bits_, 64);
  // Coordinates arrive as uint32, so at most four bytes carry bits.
  coord_bytes_ = std::min((bits_ + 7) / 8, 4);
  tables_ = internal::GetCurveTables(n_);
}

uint64_t HilbertCodec::Rank(const uint32_t* point) const {
  // Interleave all coordinates into one word: bit m of dimension j lands at
  // position m * n + j, one table lookup per coordinate byte.
  uint64_t interleaved = 0;
  for (int j = 0; j < n_; ++j) {
    const uint32_t v = point[j];
    for (int k = 0; k < coord_bytes_; ++k) {
      interleaved |= tables_->spread[(v >> (8 * k)) & 0xFF]
                     << (8 * k * n_ + j);
    }
  }
  const uint64_t mask = MaskN(n_);
  uint64_t h = 0;
  if (tables_->has_state_machine()) {
    uint32_t state = 0;
    for (int i = bits_ - 1; i >= 0; --i) {
      const uint64_t l = (interleaved >> (i * n_)) & mask;
      const size_t idx = (static_cast<size_t>(state) << n_) | l;
      h = (h << n_) | tables_->w[idx];
      state = tables_->next[idx];
    }
    return h;
  }
  // High-dimensional fallback: branchless per-level arithmetic, still fed
  // from the interleaved word (no per-dimension bit gather).
  uint64_t e = 0;
  int d = 0;
  for (int i = bits_ - 1; i >= 0; --i) {
    uint64_t l = (interleaved >> (i * n_)) & mask;
    l = RotRight(l ^ e, d + 1, n_);
    const uint64_t w = GrayInverse(l) & mask;
    e ^= RotLeft(EntryPoint(w), d + 1, n_);
    d = (d + Direction(w, n_) + 1) % n_;
    h = (h << n_) | w;
  }
  return h;
}

uint64_t HilbertCodec::RankChecked(const array::Coordinates& coords,
                                   const array::Coordinates& extents) const {
  ARRAYDB_CHECK_EQ(coords.size(), extents.size());
  ARRAYDB_CHECK_EQ(static_cast<int>(coords.size()), n_);
  std::array<uint32_t, 64> point;
  for (size_t i = 0; i < coords.size(); ++i) {
    ARRAYDB_CHECK_GE(coords[i], 0);
    ARRAYDB_CHECK_LT(coords[i], extents[i]);
    point[i] = static_cast<uint32_t>(coords[i]);
  }
  return Rank(point.data());
}

void HilbertCodec::RankPacked(const int64_t* coords, size_t count,
                              const int64_t* lo, uint64_t* out) const {
  // Coordinates feed the uint32 interleave pipeline, so the per-dimension
  // budget is min(bits, 32) regardless of the declared bit width.
  const int64_t limit = int64_t{1} << std::min(bits_, 32);
  std::array<uint32_t, 64> point;
  for (size_t i = 0; i < count; ++i, coords += n_) {
    for (int d = 0; d < n_; ++d) {
      const int64_t shifted = coords[d] - lo[d];
      ARRAYDB_CHECK_GE(shifted, 0);
      ARRAYDB_CHECK_LT(shifted, limit);
      point[static_cast<size_t>(d)] = static_cast<uint32_t>(shifted);
    }
    out[i] = Rank(point.data());
  }
}

uint64_t HilbertIndex(const std::vector<uint32_t>& point, int bits) {
  const int n = static_cast<int>(point.size());
  ARRAYDB_CHECK_GE(n, 1);
  ARRAYDB_CHECK_GE(bits, 1);
  ARRAYDB_CHECK_LE(n * bits, 64);
  return HilbertCodec(n, bits).Rank(point.data());
}

uint64_t HilbertIndexReference(const std::vector<uint32_t>& point, int bits) {
  const int n = static_cast<int>(point.size());
  ARRAYDB_CHECK_GE(n, 1);
  ARRAYDB_CHECK_GE(bits, 1);
  ARRAYDB_CHECK_LE(n * bits, 64);

  uint64_t h = 0;
  uint64_t e = 0;
  int d = 0;
  for (int i = bits - 1; i >= 0; --i) {
    // Gather bit i of every coordinate: bit j of l is bit i of point[j].
    uint64_t l = 0;
    for (int j = 0; j < n; ++j) {
      l |= static_cast<uint64_t>((point[static_cast<size_t>(j)] >> i) & 1u)
           << j;
    }
    // Transform into the local frame of the current sub-hypercube.
    l = RotRight(l ^ e, d + 1, n);
    const uint64_t w = GrayInverse(l);
    // Update the frame for the next (finer) level.
    e = e ^ RotLeft(EntryPoint(w), d + 1, n);
    d = (d + Direction(w, n) + 1) % n;
    h = (h << n) | w;
  }
  return h;
}

std::vector<uint32_t> HilbertPoint(uint64_t index, int num_dims, int bits) {
  const int n = num_dims;
  ARRAYDB_CHECK_GE(n, 1);
  ARRAYDB_CHECK_GE(bits, 1);
  ARRAYDB_CHECK_LE(n * bits, 64);

  std::vector<uint32_t> point(static_cast<size_t>(n), 0);
  uint64_t e = 0;
  int d = 0;
  for (int i = bits - 1; i >= 0; --i) {
    const uint64_t w = (index >> (i * n)) & MaskN(n);
    uint64_t l = Gray(w);
    // Transform out of the local frame (inverse of the forward transform).
    l = RotLeft(l, d + 1, n) ^ e;
    for (int j = 0; j < n; ++j) {
      point[static_cast<size_t>(j)] |= static_cast<uint32_t>((l >> j) & 1)
                                       << i;
    }
    e = e ^ RotLeft(EntryPoint(w), d + 1, n);
    d = (d + Direction(w, n) + 1) % n;
  }
  return point;
}

int BitsForExtents(const array::Coordinates& extents) {
  int64_t max_extent = 1;
  for (int64_t e : extents) {
    ARRAYDB_CHECK_GT(e, 0);
    if (e > max_extent) max_extent = e;
  }
  int bits = 1;
  while ((1LL << bits) < max_extent) ++bits;
  return bits;
}

uint64_t HilbertRank(const array::Coordinates& coords,
                     const array::Coordinates& extents) {
  ARRAYDB_CHECK_EQ(coords.size(), extents.size());
  const HilbertCodec codec(static_cast<int>(extents.size()),
                           BitsForExtents(extents));
  return codec.RankChecked(coords, extents);
}

uint64_t HilbertRankReference(const array::Coordinates& coords,
                              const array::Coordinates& extents) {
  ARRAYDB_CHECK_EQ(coords.size(), extents.size());
  const int bits = BitsForExtents(extents);
  std::vector<uint32_t> point(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    ARRAYDB_CHECK_GE(coords[i], 0);
    ARRAYDB_CHECK_LT(coords[i], extents[i]);
    point[i] = static_cast<uint32_t>(coords[i]);
  }
  return HilbertIndexReference(point, bits);
}

std::vector<uint64_t> HilbertRankBatch(
    const std::vector<array::Coordinates>& points,
    const array::Coordinates& extents) {
  std::vector<uint64_t> ranks;
  ranks.reserve(points.size());
  if (points.empty()) return ranks;
  const HilbertCodec codec(static_cast<int>(extents.size()),
                           BitsForExtents(extents));
  for (const auto& coords : points) {
    ranks.push_back(codec.RankChecked(coords, extents));
  }
  return ranks;
}

}  // namespace arraydb::hilbert
