#include "hilbert/hilbert.h"

#include "util/logging.h"

namespace arraydb::hilbert {
namespace {

// All helpers operate on n-bit words stored in uint64_t.

inline uint64_t MaskN(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

// Rotates the low n bits of x right by r.
inline uint64_t RotRight(uint64_t x, int r, int n) {
  r %= n;
  if (r == 0) return x & MaskN(n);
  x &= MaskN(n);
  return ((x >> r) | (x << (n - r))) & MaskN(n);
}

// Rotates the low n bits of x left by r.
inline uint64_t RotLeft(uint64_t x, int r, int n) {
  r %= n;
  if (r == 0) return x & MaskN(n);
  x &= MaskN(n);
  return ((x << r) | (x >> (n - r))) & MaskN(n);
}

// Binary reflected Gray code.
inline uint64_t Gray(uint64_t i) { return i ^ (i >> 1); }

// Inverse Gray code.
inline uint64_t GrayInverse(uint64_t g) {
  uint64_t i = g;
  for (int shift = 1; shift < 64; shift <<= 1) i ^= i >> shift;
  return i;
}

// Number of trailing set (one) bits.
inline int TrailingSetBits(uint64_t i) {
  int count = 0;
  while (i & 1) {
    ++count;
    i >>= 1;
  }
  return count;
}

// Entry point e(i) of the Hilbert curve in sub-hypercube i (Hamilton Lemma
// 2.8): e(0) = 0, e(i) = gray(2 * floor((i-1)/2)).
inline uint64_t EntryPoint(uint64_t i) {
  if (i == 0) return 0;
  return Gray(2 * ((i - 1) / 2));
}

// Intra sub-hypercube direction d(i) (Hamilton Lemma 2.11).
inline int Direction(uint64_t i, int n) {
  if (i == 0) return 0;
  if ((i & 1) == 0) return TrailingSetBits(i - 1) % n;
  return TrailingSetBits(i) % n;
}

}  // namespace

uint64_t HilbertIndex(const std::vector<uint32_t>& point, int bits) {
  const int n = static_cast<int>(point.size());
  ARRAYDB_CHECK_GE(n, 1);
  ARRAYDB_CHECK_GE(bits, 1);
  ARRAYDB_CHECK_LE(n * bits, 64);

  uint64_t h = 0;
  uint64_t e = 0;
  int d = 0;
  for (int i = bits - 1; i >= 0; --i) {
    // Gather bit i of every coordinate: bit j of l is bit i of point[j].
    uint64_t l = 0;
    for (int j = 0; j < n; ++j) {
      l |= static_cast<uint64_t>((point[static_cast<size_t>(j)] >> i) & 1u)
           << j;
    }
    // Transform into the local frame of the current sub-hypercube.
    l = RotRight(l ^ e, d + 1, n);
    const uint64_t w = GrayInverse(l);
    // Update the frame for the next (finer) level.
    e = e ^ RotLeft(EntryPoint(w), d + 1, n);
    d = (d + Direction(w, n) + 1) % n;
    h = (h << n) | w;
  }
  return h;
}

std::vector<uint32_t> HilbertPoint(uint64_t index, int num_dims, int bits) {
  const int n = num_dims;
  ARRAYDB_CHECK_GE(n, 1);
  ARRAYDB_CHECK_GE(bits, 1);
  ARRAYDB_CHECK_LE(n * bits, 64);

  std::vector<uint32_t> point(static_cast<size_t>(n), 0);
  uint64_t e = 0;
  int d = 0;
  for (int i = bits - 1; i >= 0; --i) {
    const uint64_t w = (index >> (i * n)) & MaskN(n);
    uint64_t l = Gray(w);
    // Transform out of the local frame (inverse of the forward transform).
    l = RotLeft(l, d + 1, n) ^ e;
    for (int j = 0; j < n; ++j) {
      point[static_cast<size_t>(j)] |= static_cast<uint32_t>((l >> j) & 1)
                                       << i;
    }
    e = e ^ RotLeft(EntryPoint(w), d + 1, n);
    d = (d + Direction(w, n) + 1) % n;
  }
  return point;
}

int BitsForExtents(const array::Coordinates& extents) {
  int64_t max_extent = 1;
  for (int64_t e : extents) {
    ARRAYDB_CHECK_GT(e, 0);
    if (e > max_extent) max_extent = e;
  }
  int bits = 1;
  while ((1LL << bits) < max_extent) ++bits;
  return bits;
}

uint64_t HilbertRank(const array::Coordinates& coords,
                     const array::Coordinates& extents) {
  ARRAYDB_CHECK_EQ(coords.size(), extents.size());
  const int bits = BitsForExtents(extents);
  std::vector<uint32_t> point(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    ARRAYDB_CHECK_GE(coords[i], 0);
    ARRAYDB_CHECK_LT(coords[i], extents[i]);
    point[i] = static_cast<uint32_t>(coords[i]);
  }
  return HilbertIndex(point, bits);
}

}  // namespace arraydb::hilbert
