// Chunks: the unit of I/O, memory allocation, and data placement.
//
// A chunk is an n-dimensional subarray identified by its chunk-grid
// coordinates. Its physical size is variable — only non-empty cells are
// stored — and, following SciDB's vertical partitioning, each attribute is a
// separate physical chunk; all attributes of the same chunk position are
// collocated on the same node, so placement operates on the combined size.
//
// ChunkInfo carries only metadata (coordinates + cell count + bytes), which
// is what the paper-scale simulation uses. Chunk optionally materializes
// cell payloads for small-scale query execution in tests and examples.

#ifndef ARRAYDB_ARRAY_CHUNK_H_
#define ARRAYDB_ARRAY_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"

namespace arraydb::array {

/// Placement-relevant metadata for one chunk position (all attributes).
struct ChunkInfo {
  Coordinates coords;      // Position in the chunk grid.
  int64_t cell_count = 0;  // Non-empty cells stored.
  int64_t bytes = 0;       // Physical footprint over all attributes.

  std::string ToString() const;
};

/// One materialized cell: its logical position plus one value per attribute
/// (numeric attributes only; strings are modelled by their footprint).
struct Cell {
  Coordinates pos;
  std::vector<double> values;
};

/// A materialized chunk: metadata plus cell payload.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(Coordinates coords) { info_.coords = std::move(coords); }

  const ChunkInfo& info() const { return info_; }
  const Coordinates& coords() const { return info_.coords; }
  int64_t cell_count() const { return info_.cell_count; }
  int64_t bytes() const { return info_.bytes; }
  const std::vector<Cell>& cells() const { return cells_; }

  /// Appends a cell and grows the byte footprint by `bytes_per_cell`.
  void AddCell(Cell cell, int64_t bytes_per_cell);

  /// Sets a synthetic physical size without materializing cells (used by the
  /// paper-scale generators, where only the footprint matters).
  void SetSyntheticSize(int64_t cell_count, int64_t bytes);

 private:
  ChunkInfo info_;
  std::vector<Cell> cells_;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_CHUNK_H_
