// Chunks: the unit of I/O, memory allocation, and data placement.
//
// A chunk is an n-dimensional subarray identified by its chunk-grid
// coordinates. Its physical size is variable — only non-empty cells are
// stored — and, following SciDB's vertical partitioning, each attribute is a
// separate physical chunk; all attributes of the same chunk position are
// collocated on the same node, so placement operates on the combined size.
//
// ChunkInfo carries only metadata (coordinates + cell count + bytes), which
// is what the paper-scale simulation uses. Chunk optionally materializes
// cell payloads for small-scale query execution in tests and examples.
//
// Materialized storage is columnar (structure of arrays): one packed
// coordinate vector (ndims values per cell, insertion order) plus one
// contiguous value column per attribute, and a maintained bounding box over
// the stored positions. Scan operators iterate the columns linearly and
// prune whole chunks via the bounding box instead of walking per-cell
// structs.

#ifndef ARRAYDB_ARRAY_CHUNK_H_
#define ARRAYDB_ARRAY_CHUNK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"

namespace arraydb::array {

/// Placement-relevant metadata for one chunk position (all attributes).
struct ChunkInfo {
  Coordinates coords;      // Position in the chunk grid.
  int64_t cell_count = 0;  // Non-empty cells stored.
  int64_t bytes = 0;       // Physical footprint over all attributes.

  std::string ToString() const;
};

/// One materialized cell: its logical position plus one value per attribute
/// (numeric attributes only; strings are modelled by their footprint).
/// Used as a value type at API boundaries; chunks store columns, not Cells.
struct Cell {
  Coordinates pos;
  std::vector<double> values;
};

/// A materialized chunk: metadata plus columnar cell payload.
class Chunk {
 public:
  Chunk() = default;
  explicit Chunk(Coordinates coords) { info_.coords = std::move(coords); }

  const ChunkInfo& info() const { return info_; }
  const Coordinates& coords() const { return info_.coords; }
  int64_t cell_count() const { return info_.cell_count; }
  int64_t bytes() const { return info_.bytes; }

  /// Appends a cell and grows the byte footprint by `bytes_per_cell`.
  void AppendCell(const Coordinates& pos, const std::vector<double>& values,
                  int64_t bytes_per_cell);

  /// Convenience wrapper over AppendCell.
  void AddCell(const Cell& cell, int64_t bytes_per_cell) {
    AppendCell(cell.pos, cell.values, bytes_per_cell);
  }

  /// Sets a synthetic physical size without materializing cells (used by the
  /// paper-scale generators, where only the footprint matters).
  void SetSyntheticSize(int64_t cell_count, int64_t bytes);

  // -- Columnar access ------------------------------------------------------

  /// Number of materialized cells (0 for synthetic chunks).
  size_t num_cells() const {
    return num_dims() == 0 ? 0 : coords_.size() / num_dims();
  }

  /// Rank of stored positions (the chunk-grid rank).
  size_t num_dims() const { return info_.coords.size(); }

  size_t num_attrs() const { return attrs_.size(); }

  /// Pointer to the `i`-th stored position (num_dims consecutive values).
  const int64_t* cell_pos(size_t i) const {
    return coords_.data() + i * num_dims();
  }

  /// Packed coordinates, num_dims values per cell in insertion order.
  const std::vector<int64_t>& packed_coords() const { return coords_; }

  /// Contiguous value column of attribute `attr`.
  const std::vector<double>& attr_column(size_t attr) const {
    return attrs_[attr];
  }

  /// Value of attribute `attr` at cell `i`.
  double attr_value(size_t attr, size_t i) const { return attrs_[attr][i]; }

  /// Materializes cell `i` as a value (allocates; scan loops should use the
  /// columnar accessors instead).
  Cell MaterializeCell(size_t i) const;

  /// Bounding box over the stored positions, inclusive on both ends.
  /// Valid only when num_cells() > 0.
  const Coordinates& bbox_lo() const { return bbox_lo_; }
  const Coordinates& bbox_hi() const { return bbox_hi_; }

 private:
  ChunkInfo info_;
  std::vector<int64_t> coords_;            // num_cells * num_dims, packed.
  std::vector<std::vector<double>> attrs_; // One column per attribute.
  Coordinates bbox_lo_;
  Coordinates bbox_hi_;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_CHUNK_H_
