#include "array/schema.h"

#include <set>
#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace arraydb::array {

int64_t DimensionDesc::ChunkCount() const {
  ARRAYDB_CHECK(!unbounded);
  const int64_t extent = Extent();
  return (extent + chunk_interval - 1) / chunk_interval;
}

int64_t DimensionDesc::ChunkIndexOf(int64_t cell) const {
  // Floor division relative to the dimension origin; cells below lo are a
  // caller bug for bounded dims but tolerated for unbounded ones.
  const int64_t offset = cell - lo;
  if (offset >= 0) return offset / chunk_interval;
  return -(((-offset) + chunk_interval - 1) / chunk_interval);
}

int64_t DimensionDesc::ChunkLow(int64_t chunk_index) const {
  return lo + chunk_index * chunk_interval;
}

int64_t DimensionDesc::Extent() const {
  ARRAYDB_CHECK(!unbounded);
  return hi - lo + 1;
}

int64_t AttrTypeBytes(AttrType type) {
  switch (type) {
    case AttrType::kInt32:
      return 4;
    case AttrType::kInt64:
      return 8;
    case AttrType::kFloat:
      return 4;
    case AttrType::kDouble:
      return 8;
    case AttrType::kChar:
      return 1;
    case AttrType::kString:
      return 24;  // Average payload for the AIS provenance strings.
  }
  return 8;
}

const char* AttrTypeName(AttrType type) {
  switch (type) {
    case AttrType::kInt32:
      return "int32";
    case AttrType::kInt64:
      return "int64";
    case AttrType::kFloat:
      return "float";
    case AttrType::kDouble:
      return "double";
    case AttrType::kChar:
      return "char";
    case AttrType::kString:
      return "string";
  }
  return "?";
}

ArraySchema::ArraySchema(std::string name, std::vector<DimensionDesc> dims,
                         std::vector<AttributeDesc> attrs)
    : name_(std::move(name)), dims_(std::move(dims)), attrs_(std::move(attrs)) {}

util::Status ArraySchema::Validate() const {
  if (name_.empty()) return util::InvalidArgument("array name is empty");
  if (dims_.empty()) return util::InvalidArgument("array has no dimensions");
  if (attrs_.empty()) return util::InvalidArgument("array has no attributes");
  std::set<std::string> names;
  for (const auto& d : dims_) {
    if (d.name.empty()) return util::InvalidArgument("dimension name empty");
    if (!names.insert(d.name).second) {
      return util::InvalidArgument("duplicate dimension name: " + d.name);
    }
    if (d.chunk_interval <= 0) {
      return util::InvalidArgument("non-positive chunk interval for " + d.name);
    }
    if (!d.unbounded && d.hi < d.lo) {
      return util::InvalidArgument("empty range for dimension " + d.name);
    }
  }
  for (const auto& a : attrs_) {
    if (a.name.empty()) return util::InvalidArgument("attribute name empty");
    if (!names.insert(a.name).second) {
      return util::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  return util::Status::Ok();
}

int64_t ArraySchema::BytesPerCell() const {
  int64_t total = 0;
  for (const auto& a : attrs_) total += AttrTypeBytes(a.type);
  return total;
}

Coordinates ArraySchema::ChunkOf(const Coordinates& cell) const {
  ARRAYDB_CHECK_EQ(cell.size(), dims_.size());
  Coordinates out(cell.size());
  for (size_t i = 0; i < cell.size(); ++i) {
    out[i] = dims_[i].ChunkIndexOf(cell[i]);
  }
  return out;
}

Coordinates ArraySchema::ChunkGridExtents() const {
  Coordinates out(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) out[i] = dims_[i].ChunkCount();
  return out;
}

int64_t ArraySchema::TotalChunkSlots() const {
  int64_t total = 1;
  for (const auto& d : dims_) total *= d.ChunkCount();
  return total;
}

int64_t ArraySchema::CellsPerChunkCap() const {
  int64_t total = 1;
  for (const auto& d : dims_) total *= d.chunk_interval;
  return total;
}

int64_t ArraySchema::LinearizeChunkIndex(const Coordinates& chunk_coords) const {
  ARRAYDB_CHECK_EQ(chunk_coords.size(), dims_.size());
  int64_t index = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    const int64_t count = dims_[i].ChunkCount();
    ARRAYDB_CHECK_GE(chunk_coords[i], 0);
    ARRAYDB_CHECK_LT(chunk_coords[i], count);
    index = index * count + chunk_coords[i];
  }
  return index;
}

Coordinates ArraySchema::DelinearizeChunkIndex(int64_t index) const {
  Coordinates out(dims_.size());
  for (size_t i = dims_.size(); i-- > 0;) {
    const int64_t count = dims_[i].ChunkCount();
    out[i] = index % count;
    index /= count;
  }
  ARRAYDB_CHECK_EQ(index, 0);
  return out;
}

bool ArraySchema::ChunkInBounds(const Coordinates& chunk_coords) const {
  if (chunk_coords.size() != dims_.size()) return false;
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (chunk_coords[i] < 0) return false;
    if (!dims_[i].unbounded && chunk_coords[i] >= dims_[i].ChunkCount()) {
      return false;
    }
  }
  return true;
}

std::string ArraySchema::ToString() const {
  std::vector<std::string> attr_strs;
  attr_strs.reserve(attrs_.size());
  for (const auto& a : attrs_) {
    attr_strs.push_back(a.name + ":" + AttrTypeName(a.type));
  }
  std::vector<std::string> dim_strs;
  dim_strs.reserve(dims_.size());
  for (const auto& d : dims_) {
    if (d.unbounded) {
      dim_strs.push_back(util::StrFormat(
          "%s=%lld:*,%lld", d.name.c_str(), static_cast<long long>(d.lo),
          static_cast<long long>(d.chunk_interval)));
    } else {
      dim_strs.push_back(util::StrFormat(
          "%s=%lld:%lld,%lld", d.name.c_str(), static_cast<long long>(d.lo),
          static_cast<long long>(d.hi),
          static_cast<long long>(d.chunk_interval)));
    }
  }
  return name_ + "<" + util::Join(attr_strs, ",") + ">[" +
         util::Join(dim_strs, ", ") + "]";
}

}  // namespace arraydb::array
