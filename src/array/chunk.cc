#include "array/chunk.h"

#include <utility>

#include "util/logging.h"
#include "util/strings.h"

namespace arraydb::array {

std::string ChunkInfo::ToString() const {
  return util::StrFormat("chunk%s cells=%lld bytes=%lld",
                         CoordinatesToString(coords).c_str(),
                         static_cast<long long>(cell_count),
                         static_cast<long long>(bytes));
}

void Chunk::AddCell(Cell cell, int64_t bytes_per_cell) {
  ARRAYDB_CHECK_EQ(cell.pos.size(), info_.coords.size());
  cells_.push_back(std::move(cell));
  info_.cell_count += 1;
  info_.bytes += bytes_per_cell;
}

void Chunk::SetSyntheticSize(int64_t cell_count, int64_t bytes) {
  ARRAYDB_CHECK(cells_.empty());  // Synthetic and materialized modes are exclusive.
  ARRAYDB_CHECK_GE(cell_count, 0);
  ARRAYDB_CHECK_GE(bytes, 0);
  info_.cell_count = cell_count;
  info_.bytes = bytes;
}

}  // namespace arraydb::array
