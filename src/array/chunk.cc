#include "array/chunk.h"

#include <algorithm>

#include "util/logging.h"
#include "util/strings.h"

namespace arraydb::array {

std::string ChunkInfo::ToString() const {
  return util::StrFormat("chunk%s cells=%lld bytes=%lld",
                         CoordinatesToString(coords).c_str(),
                         static_cast<long long>(cell_count),
                         static_cast<long long>(bytes));
}

void Chunk::AppendCell(const Coordinates& pos,
                       const std::vector<double>& values,
                       int64_t bytes_per_cell) {
  ARRAYDB_CHECK_EQ(pos.size(), info_.coords.size());
  if (num_cells() == 0) {
    attrs_.resize(values.size());
    bbox_lo_ = pos;
    bbox_hi_ = pos;
  } else {
    ARRAYDB_CHECK_EQ(values.size(), attrs_.size());
    for (size_t d = 0; d < pos.size(); ++d) {
      bbox_lo_[d] = std::min(bbox_lo_[d], pos[d]);
      bbox_hi_[d] = std::max(bbox_hi_[d], pos[d]);
    }
  }
  coords_.insert(coords_.end(), pos.begin(), pos.end());
  for (size_t a = 0; a < values.size(); ++a) attrs_[a].push_back(values[a]);
  info_.cell_count += 1;
  info_.bytes += bytes_per_cell;
}

void Chunk::SetSyntheticSize(int64_t cell_count, int64_t bytes) {
  // Synthetic and materialized modes are exclusive.
  ARRAYDB_CHECK(coords_.empty());
  ARRAYDB_CHECK_GE(cell_count, 0);
  ARRAYDB_CHECK_GE(bytes, 0);
  info_.cell_count = cell_count;
  info_.bytes = bytes;
}

Cell Chunk::MaterializeCell(size_t i) const {
  Cell cell;
  const int64_t* pos = cell_pos(i);
  cell.pos.assign(pos, pos + num_dims());
  cell.values.reserve(attrs_.size());
  for (const auto& column : attrs_) cell.values.push_back(column[i]);
  return cell;
}

}  // namespace arraydb::array
