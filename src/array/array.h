// An Array is a schema plus a sparse collection of non-empty chunks keyed by
// chunk-grid coordinates. Only non-empty cells are stored, so the on-disk
// footprint is a function of cell counts, not the declared array size (§2).

#ifndef ARRAYDB_ARRAY_ARRAY_H_
#define ARRAYDB_ARRAY_ARRAY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "array/chunk.h"
#include "array/coordinates.h"
#include "array/schema.h"
#include "util/status.h"

namespace arraydb::array {

class Array {
 public:
  explicit Array(ArraySchema schema);

  const ArraySchema& schema() const { return schema_; }

  /// Inserts a materialized cell at logical position `pos`; routes it into
  /// the owning chunk (creating the chunk if needed).
  util::Status InsertCell(const Coordinates& pos, std::vector<double> values);

  /// Registers a synthetic chunk with only metadata (paper-scale mode).
  /// Fails if a chunk already exists at those coordinates: the paper's
  /// storage model is strictly no-overwrite.
  util::Status AddSyntheticChunk(const ChunkInfo& info);

  /// Looks up a chunk; nullptr when absent.
  const Chunk* FindChunk(const Coordinates& chunk_coords) const;

  int64_t num_chunks() const { return static_cast<int64_t>(chunks_.size()); }
  int64_t total_cells() const { return total_cells_; }
  int64_t total_bytes() const { return total_bytes_; }

  /// Chunk metadata in deterministic (lexicographic) order.
  std::vector<ChunkInfo> ChunkInfos() const;

  /// Pointers to all chunks in deterministic (lexicographic coordinate)
  /// order, for operators that must produce order-stable output.
  std::vector<const Chunk*> SortedChunks() const;

  /// All materialized cells (test/example scale only), in deterministic
  /// order: chunks by coordinates, cells in insertion order within a chunk.
  std::vector<Cell> AllCells() const;

  /// Direct access to the chunk map for operators.
  const std::unordered_map<Coordinates, Chunk, CoordinatesHash>& chunks()
      const {
    return chunks_;
  }

 private:
  ArraySchema schema_;
  std::unordered_map<Coordinates, Chunk, CoordinatesHash> chunks_;
  int64_t total_cells_ = 0;
  int64_t total_bytes_ = 0;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_ARRAY_H_
