// CellSpanView: an allocation-free view over every materialized cell of an
// Array, in the same deterministic order as Array::AllCells() — chunks in
// lexicographic coordinate order, cells in insertion order within a chunk —
// but without materializing Cell values. Whole-array consumers (quantile
// gathers, kNN sampling) iterate the chunks' columnar storage through it
// and index cells by a stable global position.
//
// Holds pointers into the array: valid only while the array outlives the
// view unmodified.

#ifndef ARRAYDB_ARRAY_CELL_SPAN_H_
#define ARRAYDB_ARRAY_CELL_SPAN_H_

#include <cstdint>
#include <vector>

#include "array/array.h"
#include "array/chunk.h"

namespace arraydb::array {

class CellSpanView {
 public:
  /// Views every materialized cell of `array` (synthetic metadata-only
  /// chunks contribute nothing, matching AllCells()).
  explicit CellSpanView(const Array& array);

  /// Materialized cells covered by the view.
  int64_t num_cells() const { return num_cells_; }
  bool empty() const { return num_cells_ == 0; }

  /// Non-empty chunks in lexicographic coordinate order.
  const std::vector<const Chunk*>& chunks() const { return chunks_; }

  struct Location {
    const Chunk* chunk = nullptr;
    size_t index = 0;  // Cell index within the chunk.
  };

  /// Maps a global cell index (AllCells order, in [0, num_cells())) to its
  /// chunk and local cell index.
  Location Locate(int64_t global_index) const;

  /// Invokes fn(chunk, cell_index, global_index) for every cell in global
  /// order.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    int64_t global = 0;
    for (const Chunk* chunk : chunks_) {
      const size_t n = chunk->num_cells();
      for (size_t i = 0; i < n; ++i, ++global) {
        fn(*chunk, i, global);
      }
    }
  }

  /// Copies attribute `attr` of every cell into a single packed column, in
  /// global order.
  std::vector<double> GatherAttr(size_t attr) const;

 private:
  std::vector<const Chunk*> chunks_;
  std::vector<int64_t> offsets_;  // Cumulative cell counts; size chunks_+1.
  int64_t num_cells_ = 0;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_CELL_SPAN_H_
