// CellSpanView: an allocation-free view over every materialized cell of an
// Array, in the same deterministic order as Array::AllCells() — chunks in
// lexicographic coordinate order, cells in insertion order within a chunk —
// but without materializing Cell values. Whole-array consumers (quantile
// gathers, kNN sampling) iterate the chunks' columnar storage through it
// and index cells by a stable global position.
//
// Holds pointers into the array: valid only while the array outlives the
// view unmodified.

#ifndef ARRAYDB_ARRAY_CELL_SPAN_H_
#define ARRAYDB_ARRAY_CELL_SPAN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "array/array.h"
#include "array/chunk.h"

namespace arraydb::array {

class CellSpanView {
 public:
  /// Views every materialized cell of `array` (synthetic metadata-only
  /// chunks contribute nothing, matching AllCells()).
  explicit CellSpanView(const Array& array);

  /// Materialized cells covered by the view.
  int64_t num_cells() const { return num_cells_; }
  bool empty() const { return num_cells_ == 0; }

  /// Non-empty chunks in lexicographic coordinate order.
  const std::vector<const Chunk*>& chunks() const { return chunks_; }

  struct Location {
    const Chunk* chunk = nullptr;
    size_t index = 0;  // Cell index within the chunk.
  };

  /// Maps a global cell index (AllCells order, in [0, num_cells())) to its
  /// chunk and local cell index.
  Location Locate(int64_t global_index) const;

  /// Global cell index of the first cell of chunk `chunk_index` (the
  /// cumulative cell count of everything before it).
  int64_t ChunkOffset(size_t chunk_index) const {
    return offsets_[chunk_index];
  }

  /// Slices the global cell range [begin, end) into maximal per-chunk runs:
  /// invokes fn(chunk, local_begin, local_end) for each chunk the range
  /// touches, in global order. This is how morsels over a cell range map
  /// onto contiguous columnar storage (exec::MorselScheduler).
  template <typename Fn>
  void ForEachSlice(int64_t begin, int64_t end, Fn&& fn) const {
    if (begin >= end) return;
    const auto it =
        std::upper_bound(offsets_.begin(), offsets_.end(), begin);
    size_t chunk_idx = static_cast<size_t>(it - offsets_.begin()) - 1;
    int64_t cursor = begin;
    while (cursor < end) {
      const Chunk* chunk = chunks_[chunk_idx];
      const int64_t chunk_begin = offsets_[chunk_idx];
      const int64_t chunk_end = offsets_[chunk_idx + 1];
      const int64_t slice_end = std::min(end, chunk_end);
      fn(*chunk, static_cast<size_t>(cursor - chunk_begin),
         static_cast<size_t>(slice_end - chunk_begin));
      cursor = slice_end;
      ++chunk_idx;
    }
  }

  /// Invokes fn(chunk, cell_index, global_index) for every cell in global
  /// order.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    int64_t global = 0;
    for (const Chunk* chunk : chunks_) {
      const size_t n = chunk->num_cells();
      for (size_t i = 0; i < n; ++i, ++global) {
        fn(*chunk, i, global);
      }
    }
  }

  /// Copies attribute `attr` of every cell into a single packed column, in
  /// global order.
  std::vector<double> GatherAttr(size_t attr) const;

 private:
  std::vector<const Chunk*> chunks_;
  std::vector<int64_t> offsets_;  // Cumulative cell counts; size chunks_+1.
  int64_t num_cells_ = 0;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_CELL_SPAN_H_
