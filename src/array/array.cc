#include "array/array.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace arraydb::array {

Array::Array(ArraySchema schema) : schema_(std::move(schema)) {
  ARRAYDB_CHECK(schema_.Validate().ok());
}

util::Status Array::InsertCell(const Coordinates& pos,
                               std::vector<double> values) {
  if (pos.size() != static_cast<size_t>(schema_.num_dims())) {
    return util::InvalidArgument("cell rank does not match schema");
  }
  if (values.size() != static_cast<size_t>(schema_.num_attrs())) {
    return util::InvalidArgument("cell attribute count does not match schema");
  }
  for (int d = 0; d < schema_.num_dims(); ++d) {
    const auto& dim = schema_.dims()[d];
    if (pos[d] < dim.lo || (!dim.unbounded && pos[d] > dim.hi)) {
      return util::OutOfRange("cell outside declared dimension range");
    }
  }
  const Coordinates cc = schema_.ChunkOf(pos);
  auto [it, inserted] = chunks_.try_emplace(cc, Chunk(cc));
  (void)inserted;
  it->second.AppendCell(pos, values, schema_.BytesPerCell());
  total_cells_ += 1;
  total_bytes_ += schema_.BytesPerCell();
  return util::Status::Ok();
}

util::Status Array::AddSyntheticChunk(const ChunkInfo& info) {
  if (!schema_.ChunkInBounds(info.coords)) {
    return util::OutOfRange("chunk outside declared grid: " +
                            CoordinatesToString(info.coords));
  }
  if (chunks_.contains(info.coords)) {
    return util::AlreadyExists("chunk exists (no-overwrite storage): " +
                               CoordinatesToString(info.coords));
  }
  Chunk chunk(info.coords);
  chunk.SetSyntheticSize(info.cell_count, info.bytes);
  chunks_.emplace(info.coords, std::move(chunk));
  total_cells_ += info.cell_count;
  total_bytes_ += info.bytes;
  return util::Status::Ok();
}

const Chunk* Array::FindChunk(const Coordinates& chunk_coords) const {
  const auto it = chunks_.find(chunk_coords);
  return it == chunks_.end() ? nullptr : &it->second;
}

std::vector<ChunkInfo> Array::ChunkInfos() const {
  std::vector<ChunkInfo> out;
  out.reserve(chunks_.size());
  // arraydb-lint: ordered-extract -- copied out, then sorted below.
  for (const auto& [coords, chunk] : chunks_) out.push_back(chunk.info());
  std::sort(out.begin(), out.end(),
            [](const ChunkInfo& a, const ChunkInfo& b) {
              return CoordinatesLess(a.coords, b.coords);
            });
  return out;
}

std::vector<const Chunk*> Array::SortedChunks() const {
  std::vector<const Chunk*> out;
  out.reserve(chunks_.size());
  // arraydb-lint: ordered-extract -- copied out, then sorted below.
  for (const auto& [coords, chunk] : chunks_) out.push_back(&chunk);
  std::sort(out.begin(), out.end(), [](const Chunk* a, const Chunk* b) {
    return CoordinatesLess(a->coords(), b->coords());
  });
  return out;
}

std::vector<Cell> Array::AllCells() const {
  std::vector<Cell> out;
  out.reserve(static_cast<size_t>(total_cells_));
  for (const Chunk* chunk : SortedChunks()) {
    for (size_t i = 0; i < chunk->num_cells(); ++i) {
      out.push_back(chunk->MaterializeCell(i));
    }
  }
  return out;
}

}  // namespace arraydb::array
