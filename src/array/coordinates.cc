#include "array/coordinates.h"

#include <cmath>
#include <cstdlib>

#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace arraydb::array {

size_t CoordinatesHash::operator()(const Coordinates& c) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int64_t v : c) {
    h = util::HashCombine(h, static_cast<uint64_t>(v));
  }
  return static_cast<size_t>(h);
}

std::string CoordinatesToString(const Coordinates& c) {
  std::string out = "(";
  for (size_t i = 0; i < c.size(); ++i) {
    if (i > 0) out += ", ";
    out += util::StrFormat("%lld", static_cast<long long>(c[i]));
  }
  out += ")";
  return out;
}

bool CoordinatesLess(const Coordinates& a, const Coordinates& b) {
  return a < b;  // std::vector lexicographic compare
}

bool AreFaceAdjacent(const Coordinates& a, const Coordinates& b) {
  ARRAYDB_CHECK_EQ(a.size(), b.size());
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t d = std::llabs(a[i] - b[i]);
    if (d > 1) return false;
    total += d;
  }
  return total == 1;
}

int64_t ManhattanDistance(const Coordinates& a, const Coordinates& b) {
  ARRAYDB_CHECK_EQ(a.size(), b.size());
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) total += std::llabs(a[i] - b[i]);
  return total;
}

int64_t ChebyshevDistance(const Coordinates& a, const Coordinates& b) {
  ARRAYDB_CHECK_EQ(a.size(), b.size());
  int64_t best = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t d = std::llabs(a[i] - b[i]);
    if (d > best) best = d;
  }
  return best;
}

}  // namespace arraydb::array
