// Coordinates identify positions in logical array space and in the coarser
// chunk grid. A coordinate vector has one entry per array dimension.

#ifndef ARRAYDB_ARRAY_COORDINATES_H_
#define ARRAYDB_ARRAY_COORDINATES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace arraydb::array {

/// Position of a cell in logical array space, or of a chunk in the chunk
/// grid (context-dependent). One entry per dimension.
using Coordinates = std::vector<int64_t>;

/// Hash functor so Coordinates can key unordered containers.
struct CoordinatesHash {
  size_t operator()(const Coordinates& c) const;
};

/// Renders "(x, y, z)".
std::string CoordinatesToString(const Coordinates& c);

/// Lexicographic comparison (for deterministic iteration orders).
bool CoordinatesLess(const Coordinates& a, const Coordinates& b);

/// True if a and b differ by exactly 1 in one dimension and are equal in all
/// others (face adjacency in the chunk grid).
bool AreFaceAdjacent(const Coordinates& a, const Coordinates& b);

/// Manhattan (L1) distance between two coordinate vectors of equal rank.
int64_t ManhattanDistance(const Coordinates& a, const Coordinates& b);

/// Chebyshev (L-infinity) distance between two coordinate vectors.
int64_t ChebyshevDistance(const Coordinates& a, const Coordinates& b);

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_COORDINATES_H_
