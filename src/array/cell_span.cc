#include "array/cell_span.h"

#include <algorithm>

#include "util/logging.h"

namespace arraydb::array {

CellSpanView::CellSpanView(const Array& array) {
  for (const Chunk* chunk : array.SortedChunks()) {
    if (chunk->num_cells() == 0) continue;
    chunks_.push_back(chunk);
  }
  offsets_.reserve(chunks_.size() + 1);
  offsets_.push_back(0);
  for (const Chunk* chunk : chunks_) {
    num_cells_ += static_cast<int64_t>(chunk->num_cells());
    offsets_.push_back(num_cells_);
  }
}

CellSpanView::Location CellSpanView::Locate(int64_t global_index) const {
  ARRAYDB_CHECK_GE(global_index, 0);
  ARRAYDB_CHECK_LT(global_index, num_cells_);
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), global_index);
  const size_t chunk_idx = static_cast<size_t>(it - offsets_.begin()) - 1;
  return Location{chunks_[chunk_idx],
                  static_cast<size_t>(global_index - offsets_[chunk_idx])};
}

std::vector<double> CellSpanView::GatherAttr(size_t attr) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(num_cells_));
  for (const Chunk* chunk : chunks_) {
    const auto& column = chunk->attr_column(attr);
    out.insert(out.end(), column.begin(), column.end());
  }
  return out;
}

}  // namespace arraydb::array
