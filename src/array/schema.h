// Array schemas: named dimensions with chunk intervals plus named, typed
// attributes — the SciDB declaration model from §2 of the paper, e.g.
//
//   A<i:int32, j:float>[x=1:4,2, y=1:4,2]
//
// Dimensions define a contiguous logical space subdivided into chunks by a
// per-dimension stride ("chunk interval"). Attributes are vertically
// partitioned: each physical chunk stores exactly one attribute.

#ifndef ARRAYDB_ARRAY_SCHEMA_H_
#define ARRAYDB_ARRAY_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "util/status.h"

namespace arraydb::array {

/// One array dimension: a declared [lo, hi] cell range (hi may be unbounded
/// for e.g. time series) cut into chunks of `chunk_interval` cells.
struct DimensionDesc {
  std::string name;
  int64_t lo = 0;
  int64_t hi = 0;  // Inclusive; ignored when unbounded.
  int64_t chunk_interval = 1;
  bool unbounded = false;

  /// Number of chunks along this dimension (requires a bounded range).
  int64_t ChunkCount() const;

  /// Chunk-grid index of cell coordinate `cell` (0-based).
  int64_t ChunkIndexOf(int64_t cell) const;

  /// Lowest cell coordinate of chunk `chunk_index`.
  int64_t ChunkLow(int64_t chunk_index) const;

  /// Cell extent of this dimension (hi - lo + 1); requires bounded.
  int64_t Extent() const;
};

/// Scalar attribute value types.
enum class AttrType {
  kInt32,
  kInt64,
  kFloat,
  kDouble,
  kChar,
  kString,
};

/// Storage footprint of one value of `type` (average footprint for strings).
int64_t AttrTypeBytes(AttrType type);
const char* AttrTypeName(AttrType type);

/// One named, typed attribute.
struct AttributeDesc {
  std::string name;
  AttrType type = AttrType::kDouble;
};

/// Immutable description of an array: dimensions + attributes.
class ArraySchema {
 public:
  ArraySchema() = default;
  ArraySchema(std::string name, std::vector<DimensionDesc> dims,
              std::vector<AttributeDesc> attrs);

  /// Validates ranges, intervals, and name uniqueness.
  util::Status Validate() const;

  const std::string& name() const { return name_; }
  const std::vector<DimensionDesc>& dims() const { return dims_; }
  const std::vector<AttributeDesc>& attrs() const { return attrs_; }
  int num_dims() const { return static_cast<int>(dims_.size()); }
  int num_attrs() const { return static_cast<int>(attrs_.size()); }

  /// Bytes stored per non-empty cell, summed over all attributes.
  int64_t BytesPerCell() const;

  /// Chunk-grid coordinates containing logical cell `cell`.
  Coordinates ChunkOf(const Coordinates& cell) const;

  /// Extent of the chunk grid in each dimension (bounded dims only).
  Coordinates ChunkGridExtents() const;

  /// Total number of chunk slots in the (bounded) grid.
  int64_t TotalChunkSlots() const;

  /// Maximum number of cells a chunk can hold (product of chunk intervals).
  int64_t CellsPerChunkCap() const;

  /// Row-major linearization of chunk-grid coordinates; requires bounded
  /// dims. Inverse of DelinearizeChunkIndex.
  int64_t LinearizeChunkIndex(const Coordinates& chunk_coords) const;
  Coordinates DelinearizeChunkIndex(int64_t index) const;

  /// True if `chunk_coords` lies inside the declared chunk grid.
  bool ChunkInBounds(const Coordinates& chunk_coords) const;

  /// Renders the SciDB-style declaration, e.g.
  /// "A<i:int32,j:float>[x=1:4,2, y=1:4,2]".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<DimensionDesc> dims_;
  std::vector<AttributeDesc> attrs_;
};

}  // namespace arraydb::array

#endif  // ARRAYDB_ARRAY_SCHEMA_H_
