// Round Robin partitioner — the paper's baseline (§6.1).
//
// Chunk i (row-major linearization of its grid coordinates) is stored on
// node i mod N. Fine-grained and perfectly chunk-count balanced, but not
// skew-aware, and scale-out is global: changing N relocates most chunks.

#ifndef ARRAYDB_CORE_ROUND_ROBIN_H_
#define ARRAYDB_CORE_ROUND_ROBIN_H_

#include "core/partitioner.h"

namespace arraydb::core {

class RoundRobinPartitioner final : public Partitioner {
 public:
  explicit RoundRobinPartitioner(const array::ArraySchema& schema,
                                 int initial_nodes);

  const char* name() const override { return "Round Robin"; }
  uint32_t features() const override { return kFineGrainedPartitioning; }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

 private:
  array::ArraySchema schema_;
  int num_nodes_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_ROUND_ROBIN_H_
