#include "core/quadtree.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace arraydb::core {

bool QuadtreePartitioner::Cell::Contains(
    const array::Coordinates& projected) const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (projected[d] < lo[d] || projected[d] >= hi[d]) return false;
  }
  return true;
}

int64_t QuadtreePartitioner::Cell::Volume() const {
  int64_t v = 1;
  for (size_t d = 0; d < lo.size(); ++d) v *= hi[d] - lo[d];
  return v;
}

bool QuadtreePartitioner::Cell::Splittable() const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (hi[d] - lo[d] >= 2) return true;
  }
  return false;
}

std::vector<QuadtreePartitioner::Cell> QuadtreePartitioner::Quarter(
    const Cell& parent) {
  // Midpoint cut of every dimension that still has extent >= 2; cells are
  // boxes of the actual grid, so quarters stay data-proportional even for
  // non-power-of-two arrays.
  const size_t ndims = parent.lo.size();
  std::vector<Cell> children = {Cell{parent.level + 1, parent.lo, parent.hi}};
  for (size_t d = 0; d < ndims; ++d) {
    if (parent.hi[d] - parent.lo[d] < 2) continue;
    const int64_t mid = (parent.lo[d] + parent.hi[d]) / 2;
    std::vector<Cell> next;
    next.reserve(children.size() * 2);
    for (const Cell& c : children) {
      Cell low = c;
      low.hi[d] = mid;
      Cell high = c;
      high.lo[d] = mid;
      next.push_back(std::move(low));
      next.push_back(std::move(high));
    }
    children = std::move(next);
  }
  return children;
}

bool QuadtreePartitioner::CellsAdjacent(const Cell& a, const Cell& b) {
  if (a.level != b.level) return false;
  // Face adjacency of axis-aligned boxes: touching in exactly one
  // dimension, identical ranges in the others (siblings from midpoint
  // cuts always satisfy the latter when adjacent).
  int touching_dims = 0;
  for (size_t d = 0; d < a.lo.size(); ++d) {
    if (a.lo[d] == b.lo[d] && a.hi[d] == b.hi[d]) continue;
    if (a.hi[d] == b.lo[d] || b.hi[d] == a.lo[d]) {
      ++touching_dims;
      continue;
    }
    return false;  // Disjoint or overlapping in this dimension.
  }
  return touching_dims == 1;
}

QuadtreePartitioner::QuadtreePartitioner(const array::ArraySchema& schema,
                                         int initial_nodes, int growth_dim)
    : projection_(schema, growth_dim), num_dims_(projection_.num_dims()) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  Cell root;
  root.level = 0;
  root.lo.assign(static_cast<size_t>(num_dims_), 0);
  root.hi = projection_.extents();
  host_cells_.push_back({root});
  // Bootstrap additional initial nodes with volume-driven splits (no data
  // exists yet, so byte-driven selection ties and volume decides).
  cluster::Cluster empty(initial_nodes, 1.0);
  for (NodeId host = 1; host < initial_nodes; ++host) {
    NodeId biggest = 0;
    int64_t best_volume = -1;
    for (NodeId h = 0; h < host; ++h) {
      int64_t volume = 0;
      for (const Cell& c : host_cells_[static_cast<size_t>(h)]) {
        volume += c.Volume();
      }
      if (volume > best_volume) {
        best_volume = volume;
        biggest = h;
      }
    }
    host_cells_.emplace_back();
    SplitHost(biggest, host, empty);
  }
}

int64_t QuadtreePartitioner::CellBytes(const Cell& cell,
                                       const cluster::Cluster& cluster) const {
  int64_t bytes = 0;
  // arraydb-lint: order-insensitive -- exact integer sum.
  for (const auto& [coords, rec] : cluster.chunk_map()) {
    if (cell.Contains(projection_.Project(coords))) bytes += rec.bytes;
  }
  return bytes;
}

void QuadtreePartitioner::SplitHost(NodeId victim, NodeId new_host,
                                    const cluster::Cluster& cluster) {
  auto& cells = host_cells_[static_cast<size_t>(victim)];
  ARRAYDB_CHECK(!cells.empty());

  // Candidate pool: the victim's cells, or — when it owns a single cell —
  // that cell's quarters.
  std::vector<Cell> pool;
  if (cells.size() == 1) {
    ARRAYDB_CHECK(cells[0].Splittable());
    pool = Quarter(cells[0]);
  } else {
    pool = cells;
  }

  // Price each pool cell once.
  std::vector<int64_t> pool_bytes(pool.size());
  int64_t total_bytes = 0;
  for (size_t i = 0; i < pool.size(); ++i) {
    pool_bytes[i] = CellBytes(pool[i], cluster);
    total_bytes += pool_bytes[i];
  }

  // Candidate subsets: each single cell, each face-adjacent pair, and —
  // when quartering in more than two dimensions — each half-box (the
  // quarters on one side of a cut), generalizing "pair of adjacent
  // quarters" beyond 2-D.
  struct Candidate {
    std::vector<size_t> members;
    int64_t bytes = 0;
    int64_t volume = 0;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < pool.size(); ++i) {
    candidates.push_back(Candidate{{i}, pool_bytes[i], pool[i].Volume()});
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      if (CellsAdjacent(pool[i], pool[j])) {
        candidates.push_back(Candidate{{i, j},
                                       pool_bytes[i] + pool_bytes[j],
                                       pool[i].Volume() + pool[j].Volume()});
      }
    }
  }
  if (cells.size() == 1 && num_dims_ > 2) {
    const Cell& parent = cells[0];
    for (int d = 0; d < num_dims_; ++d) {
      const size_t ud = static_cast<size_t>(d);
      if (parent.hi[ud] - parent.lo[ud] < 2) continue;
      const int64_t mid = (parent.lo[ud] + parent.hi[ud]) / 2;
      for (int side = 0; side <= 1; ++side) {
        Candidate half;
        for (size_t i = 0; i < pool.size(); ++i) {
          const bool upper = pool[i].lo[ud] >= mid;
          if (upper == (side == 1)) {
            half.members.push_back(i);
            half.bytes += pool_bytes[i];
            half.volume += pool[i].Volume();
          }
        }
        candidates.push_back(std::move(half));
      }
    }
  }

  // Keep the split proper: the new host must receive a non-empty strict
  // subset of the pool.
  int64_t pool_volume = 0;
  for (const Cell& c : pool) pool_volume += c.Volume();
  const auto viable = [&](const Candidate& c) {
    return !c.members.empty() && c.members.size() < pool.size();
  };
  const Candidate* best = nullptr;
  const double byte_target = static_cast<double>(total_bytes) / 2.0;
  const double volume_target = static_cast<double>(pool_volume) / 2.0;
  for (const auto& c : candidates) {
    if (!viable(c)) continue;
    if (best == nullptr) {
      best = &c;
      continue;
    }
    const double c_err = std::abs(static_cast<double>(c.bytes) - byte_target);
    const double b_err =
        std::abs(static_cast<double>(best->bytes) - byte_target);
    if (c_err < b_err) {
      best = &c;
    } else if (c_err == b_err) {
      // Byte tie (e.g. bootstrap with no data): prefer the subset closest
      // to half the volume, then the earliest in candidate order.
      const double c_vol =
          std::abs(static_cast<double>(c.volume) - volume_target);
      const double b_vol =
          std::abs(static_cast<double>(best->volume) - volume_target);
      if (c_vol < b_vol) best = &c;
    }
  }
  ARRAYDB_CHECK(best != nullptr);

  std::vector<Cell> new_cells;
  std::vector<Cell> remaining;
  for (size_t i = 0; i < pool.size(); ++i) {
    const bool taken =
        std::find(best->members.begin(), best->members.end(), i) !=
        best->members.end();
    if (taken) {
      new_cells.push_back(pool[i]);
    } else {
      remaining.push_back(pool[i]);
    }
  }
  host_cells_[static_cast<size_t>(victim)] = std::move(remaining);
  if (static_cast<size_t>(new_host) >= host_cells_.size()) {
    host_cells_.resize(static_cast<size_t>(new_host) + 1);
  }
  host_cells_[static_cast<size_t>(new_host)] = std::move(new_cells);
}

NodeId QuadtreePartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                       const array::ChunkInfo& chunk) {
  (void)cluster;
  return Locate(chunk.coords);
}

cluster::MovePlan QuadtreePartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  const int new_count = cluster.num_nodes();
  for (NodeId new_node = old_node_count; new_node < new_count; ++new_node) {
    // Working loads through the (already partially updated) table.
    std::vector<int64_t> load(static_cast<size_t>(new_node), 0);
    // arraydb-lint: order-insensitive -- exact integer sums per host.
    for (const auto& [coords, rec] : cluster.chunk_map()) {
      const NodeId owner = Locate(coords);
      if (owner >= 0 && owner < new_node) {
        load[static_cast<size_t>(owner)] += rec.bytes;
      }
    }
    // Most loaded host that can actually shed cells: several sibling
    // cells, or one cell that is still subdividable.
    NodeId victim = -1;
    int64_t victim_bytes = -1;
    for (NodeId n = 0; n < new_node; ++n) {
      const auto& cells = host_cells_[static_cast<size_t>(n)];
      const bool splittable =
          cells.size() > 1 || (cells.size() == 1 && cells[0].Splittable());
      if (splittable && load[static_cast<size_t>(n)] > victim_bytes) {
        victim = n;
        victim_bytes = load[static_cast<size_t>(n)];
      }
    }
    ARRAYDB_CHECK_GE(victim, 0);
    if (static_cast<size_t>(new_node) >= host_cells_.size()) {
      host_cells_.resize(static_cast<size_t>(new_node) + 1);
    }
    SplitHost(victim, new_node, cluster);
  }

  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = Locate(rec.coords);
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId QuadtreePartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  const array::Coordinates projected = projection_.Project(chunk_coords);
  for (size_t h = 0; h < host_cells_.size(); ++h) {
    for (const Cell& c : host_cells_[h]) {
      if (c.Contains(projected)) return static_cast<NodeId>(h);
    }
  }
  return kInvalidNode;
}

int QuadtreePartitioner::HostLevel(NodeId host) const {
  const auto& cells = host_cells_[static_cast<size_t>(host)];
  ARRAYDB_CHECK(!cells.empty());
  return cells[0].level;
}

int QuadtreePartitioner::HostCellCount(NodeId host) const {
  return static_cast<int>(host_cells_[static_cast<size_t>(host)].size());
}

}  // namespace arraydb::core
