#include "core/partitioner_factory.h"

#include "core/append.h"
#include "core/consistent_hash.h"
#include "core/extendible_hash.h"
#include "core/hilbert_partitioner.h"
#include "core/kdtree.h"
#include "core/quadtree.h"
#include "core/round_robin.h"
#include "core/uniform_range.h"
#include "util/logging.h"

namespace arraydb::core {

std::vector<PartitionerKind> AllPartitionerKinds() {
  return {
      PartitionerKind::kAppend,        PartitionerKind::kConsistentHash,
      PartitionerKind::kExtendibleHash, PartitionerKind::kHilbertCurve,
      PartitionerKind::kIncrementalQuadtree, PartitionerKind::kKdTree,
      PartitionerKind::kRoundRobin,    PartitionerKind::kUniformRange,
  };
}

const char* PartitionerKindName(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kAppend:
      return "Append";
    case PartitionerKind::kConsistentHash:
      return "Consistent Hash";
    case PartitionerKind::kExtendibleHash:
      return "Extendible Hash";
    case PartitionerKind::kHilbertCurve:
      return "Hilbert Curve";
    case PartitionerKind::kIncrementalQuadtree:
      return "Incr. Quadtree";
    case PartitionerKind::kKdTree:
      return "K-d Tree";
    case PartitionerKind::kRoundRobin:
      return "Round Robin";
    case PartitionerKind::kUniformRange:
      return "Uniform Range";
  }
  return "?";
}

std::unique_ptr<Partitioner> MakePartitioner(PartitionerKind kind,
                                             const array::ArraySchema& schema,
                                             int initial_nodes,
                                             double node_capacity_gb,
                                             int growth_dim) {
  switch (kind) {
    case PartitionerKind::kAppend:
      return std::make_unique<AppendPartitioner>(initial_nodes,
                                                 node_capacity_gb);
    case PartitionerKind::kConsistentHash:
      return std::make_unique<ConsistentHashPartitioner>(initial_nodes);
    case PartitionerKind::kExtendibleHash:
      return std::make_unique<ExtendibleHashPartitioner>(initial_nodes);
    case PartitionerKind::kHilbertCurve:
      return std::make_unique<HilbertPartitioner>(schema, initial_nodes,
                                                  growth_dim);
    case PartitionerKind::kIncrementalQuadtree:
      return std::make_unique<QuadtreePartitioner>(schema, initial_nodes,
                                                   growth_dim);
    case PartitionerKind::kKdTree:
      return std::make_unique<KdTreePartitioner>(schema, initial_nodes,
                                                 growth_dim);
    case PartitionerKind::kRoundRobin:
      return std::make_unique<RoundRobinPartitioner>(schema, initial_nodes);
    case PartitionerKind::kUniformRange:
      return std::make_unique<UniformRangePartitioner>(schema, initial_nodes,
                                                       growth_dim);
  }
  ARRAYDB_CHECK(false);
  return nullptr;
}

}  // namespace arraydb::core
