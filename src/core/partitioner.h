// Elastic partitioners for scientific arrays (paper §4).
//
// A Partitioner is a pure placement policy over the chunk grid of one array
// schema. It decides (a) which node receives each newly inserted chunk and
// (b) how to repartition when the cluster scales out. The Cluster remains
// the source of truth for current placement; partitioners receive it
// read-only and express repartitioning as MovePlans.
//
// Table 1 taxonomy: each scheme advertises its feature set via features().

#ifndef ARRAYDB_CORE_PARTITIONER_H_
#define ARRAYDB_CORE_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/chunk.h"
#include "array/coordinates.h"
#include "array/schema.h"
#include "cluster/cluster.h"
#include "cluster/transfer.h"

namespace arraydb::core {

using cluster::NodeId;
using cluster::kInvalidNode;

/// The four features of elastic array data placement (paper Table 1).
enum PartitionerFeature : uint32_t {
  /// Scale-out only transfers data from preexisting nodes to new ones.
  kIncrementalScaleOut = 1u << 0,
  /// Assigns chunks one at a time rather than subdividing planes.
  kFineGrainedPartitioning = 1u << 1,
  /// Uses the observed storage distribution to plan repartitionings.
  kSkewAware = 1u << 2,
  /// Preserves n-dimensional array space on each host.
  kNDimensionalClustering = 1u << 3,
};

/// Renders a feature bitmask as e.g. "incremental|skew-aware".
std::string FeaturesToString(uint32_t features);

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;

  /// Bitmask of PartitionerFeature.
  virtual uint32_t features() const = 0;

  /// Chooses the destination node for a newly inserted chunk. Called before
  /// the cluster records the chunk; `cluster` reflects placement so far.
  virtual NodeId PlaceChunk(const cluster::Cluster& cluster,
                            const array::ChunkInfo& chunk) = 0;

  /// Reacts to a cluster expansion: nodes [old_node_count,
  /// cluster.num_nodes()) were just added and are empty. Updates the
  /// internal partitioning table and returns the chunk moves needed to
  /// realize the new layout. The engine applies the plan to the cluster.
  virtual cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                         int old_node_count) = 0;

  /// Locates a chunk from the partitioning table alone (no cluster access).
  /// Valid for chunks previously placed (directly or via scale-out).
  virtual NodeId Locate(const array::Coordinates& chunk_coords) const = 0;

  /// Optional batch hook called by the engine before routing `batch` chunk
  /// by chunk: precompute whatever placement-independent per-chunk state the
  /// partitioner wants (e.g. curve ranks), using up to `num_threads`
  /// workers. Must not change any placement decision — the subsequent
  /// PlaceChunk calls stay sequential, so results are deterministic and
  /// identical for every thread count. Default: no-op.
  virtual void PrewarmPlacement(const std::vector<array::ChunkInfo>& batch,
                                int num_threads) {
    (void)batch;
    (void)num_threads;
  }

  bool IsIncremental() const { return features() & kIncrementalScaleOut; }
  bool IsFineGrained() const {
    return features() & kFineGrainedPartitioning;
  }
  bool IsSkewAware() const { return features() & kSkewAware; }
  bool IsNDimClustered() const {
    return features() & kNDimensionalClustering;
  }
};

/// Stable 64-bit hash of chunk coordinates used by all hash partitioners.
uint64_t ChunkHash(const array::Coordinates& coords);

/// Node with the most stored bytes; ties break toward the lower id.
NodeId MostLoadedNode(const cluster::Cluster& cluster);

/// Most loaded node among ids in [0, limit). Used during scale-out to pick
/// split victims only among preexisting nodes.
NodeId MostLoadedNodeBelow(const cluster::Cluster& cluster, NodeId limit);

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_PARTITIONER_H_
