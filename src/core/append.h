// Append partitioner (§4.2): range partitioning by insert order.
//
// Each new chunk goes to the first node that is not at capacity; the
// coordinator tracks bytes assigned to the current target and spills to the
// next host when it fills. Scale-out is constant time — a new node simply
// becomes the next spill target — so reorganization moves no data, at the
// price of poor balance right after an expansion and time-only clustering.

#ifndef ARRAYDB_CORE_APPEND_H_
#define ARRAYDB_CORE_APPEND_H_

#include <unordered_map>
#include <vector>

#include "core/partitioner.h"

namespace arraydb::core {

class AppendPartitioner final : public Partitioner {
 public:
  /// `fill_fraction` of node capacity is usable before spilling (the paper
  /// keeps headroom so a node can absorb reorganized data later).
  AppendPartitioner(int initial_nodes, double node_capacity_gb,
                    double fill_fraction = 0.95);

  const char* name() const override { return "Append"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kSkewAware;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  NodeId current_target() const { return target_; }

 private:
  double UsableBytesPerNode() const;

  double node_capacity_gb_;
  double fill_fraction_;
  int num_nodes_;
  NodeId target_ = 0;
  std::vector<int64_t> assigned_bytes_;
  std::unordered_map<array::Coordinates, NodeId, array::CoordinatesHash>
      table_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_APPEND_H_
