// K-d Tree partitioner (§4.2, Bentley [9]).
//
// The partitioning table is a binary tree over chunk-grid space: leaves are
// hosts, internal nodes are axis-aligned split planes. When the cluster
// scales out, the most heavily burdened host's region is cut at the
// byte-weighted median of its stored chunks along the dimension selected by
// cycling per tree depth, and the upper half moves to the new host. Lookup
// is a logarithmic tree descent.

#ifndef ARRAYDB_CORE_KDTREE_H_
#define ARRAYDB_CORE_KDTREE_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/partitioner.h"
#include "core/spatial.h"

namespace arraydb::core {

class KdTreePartitioner final : public Partitioner {
 public:
  /// `growth_dim` names the unbounded (time) dimension excluded from the
  /// binary space partition so daily inserts spread across all hosts; pass
  /// SpatialProjection::kNone to partition the full space.
  KdTreePartitioner(const array::ArraySchema& schema, int initial_nodes,
                    int growth_dim = SpatialProjection::kNone);

  const char* name() const override { return "K-d Tree"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kSkewAware | kNDimensionalClustering;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  /// Tree depth of the leaf owned by `host` (exposed for tests).
  int LeafDepth(NodeId host) const;

 private:
  struct TreeNode {
    // Leaf state.
    bool is_leaf = true;
    NodeId host = kInvalidNode;
    // Internal state.
    int split_dim = -1;
    int64_t split_coord = 0;  // Left: coord < split_coord; right: >=.
    std::unique_ptr<TreeNode> left;
    std::unique_ptr<TreeNode> right;
    // Region covered (inclusive lo, exclusive hi per dimension).
    array::Coordinates lo;
    array::Coordinates hi;
    int depth = 0;
  };

  /// (projected coordinates, bytes) of one stored chunk.
  using ProjectedChunk = std::pair<array::Coordinates, int64_t>;

  TreeNode* LeafOf(const array::Coordinates& projected) const;
  TreeNode* LeafOfHost(NodeId host) const;
  /// Splits `leaf`, giving the half at or above the split plane to
  /// `new_host`. Chooses the byte-weighted median along the cycled
  /// dimension using `chunks` (the leaf's current contents, projected).
  void SplitLeaf(TreeNode* leaf, NodeId new_host,
                 const std::vector<ProjectedChunk>& chunks);
  void CollectLeaves(TreeNode* node, std::vector<TreeNode*>* out) const;

  SpatialProjection projection_;
  std::unique_ptr<TreeNode> root_;
  std::vector<TreeNode*> host_leaf_;  // Indexed by NodeId.
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_KDTREE_H_
