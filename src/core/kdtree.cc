#include "core/kdtree.h"

#include <algorithm>

#include "util/logging.h"

namespace arraydb::core {

KdTreePartitioner::KdTreePartitioner(const array::ArraySchema& schema,
                                     int initial_nodes, int growth_dim)
    : projection_(schema, growth_dim) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  root_ = std::make_unique<TreeNode>();
  root_->host = 0;
  root_->lo.assign(static_cast<size_t>(projection_.num_dims()), 0);
  root_->hi = projection_.extents();
  host_leaf_.push_back(root_.get());
  // With no data, bootstrap the initial nodes by midpoint splits of the
  // largest-volume leaf (Figure 2 starts with a midpoint cut).
  for (NodeId host = 1; host < initial_nodes; ++host) {
    TreeNode* biggest = nullptr;
    double best_volume = -1.0;
    std::vector<TreeNode*> leaves;
    CollectLeaves(root_.get(), &leaves);
    for (TreeNode* leaf : leaves) {
      double volume = 1.0;
      for (size_t d = 0; d < leaf->lo.size(); ++d) {
        volume *= static_cast<double>(leaf->hi[d] - leaf->lo[d]);
      }
      if (volume > best_volume) {
        best_volume = volume;
        biggest = leaf;
      }
    }
    ARRAYDB_CHECK(biggest != nullptr);
    SplitLeaf(biggest, host, {});
  }
}

void KdTreePartitioner::CollectLeaves(TreeNode* node,
                                      std::vector<TreeNode*>* out) const {
  if (node->is_leaf) {
    out->push_back(node);
    return;
  }
  CollectLeaves(node->left.get(), out);
  CollectLeaves(node->right.get(), out);
}

KdTreePartitioner::TreeNode* KdTreePartitioner::LeafOf(
    const array::Coordinates& projected) const {
  TreeNode* node = root_.get();
  while (!node->is_leaf) {
    node = projected[static_cast<size_t>(node->split_dim)] < node->split_coord
               ? node->left.get()
               : node->right.get();
  }
  return node;
}

KdTreePartitioner::TreeNode* KdTreePartitioner::LeafOfHost(
    NodeId host) const {
  ARRAYDB_CHECK_GE(host, 0);
  ARRAYDB_CHECK_LT(static_cast<size_t>(host), host_leaf_.size());
  return host_leaf_[static_cast<size_t>(host)];
}

void KdTreePartitioner::SplitLeaf(
    TreeNode* leaf, NodeId new_host,
    const std::vector<ProjectedChunk>& chunks) {
  const int ndims = projection_.num_dims();
  // Cycle through dimensions by depth so each plane is split an
  // approximately equal number of times; skip dimensions whose extent in
  // this region is already a single chunk.
  int split_dim = -1;
  int64_t split_coord = 0;
  for (int attempt = 0; attempt < ndims; ++attempt) {
    const int dim = (leaf->depth + attempt) % ndims;
    const size_t ud = static_cast<size_t>(dim);
    if (leaf->hi[ud] - leaf->lo[ud] < 2) continue;

    int64_t candidate;
    if (chunks.empty()) {
      candidate = (leaf->lo[ud] + leaf->hi[ud]) / 2;  // No data: midpoint.
    } else {
      // Byte-weighted median along `dim`: smallest boundary such that the
      // bytes strictly below it reach half of the region's storage.
      std::vector<std::pair<int64_t, int64_t>> by_coord;  // (coord, bytes)
      int64_t total = 0;
      for (const auto& [coords, bytes] : chunks) {
        by_coord.emplace_back(coords[ud], bytes);
        total += bytes;
      }
      std::sort(by_coord.begin(), by_coord.end());
      int64_t below = 0;
      candidate = (leaf->lo[ud] + leaf->hi[ud]) / 2;
      for (const auto& [coord, bytes] : by_coord) {
        below += bytes;
        if (below * 2 >= total) {
          candidate = coord + 1;
          break;
        }
      }
    }
    candidate = std::max(candidate, leaf->lo[ud] + 1);
    candidate = std::min(candidate, leaf->hi[ud] - 1);
    if (candidate > leaf->lo[ud] && candidate < leaf->hi[ud]) {
      split_dim = dim;
      split_coord = candidate;
      break;
    }
  }
  // A 1x1x..x1 region cannot be subdivided; the chunk grid is always far
  // larger than the cluster, so this indicates a configuration error.
  ARRAYDB_CHECK_GE(split_dim, 0);

  const NodeId old_host = leaf->host;
  auto left = std::make_unique<TreeNode>();
  auto right = std::make_unique<TreeNode>();
  left->host = old_host;
  right->host = new_host;
  left->lo = leaf->lo;
  left->hi = leaf->hi;
  left->hi[static_cast<size_t>(split_dim)] = split_coord;
  right->lo = leaf->lo;
  right->lo[static_cast<size_t>(split_dim)] = split_coord;
  right->hi = leaf->hi;
  left->depth = right->depth = leaf->depth + 1;

  leaf->is_leaf = false;
  leaf->host = kInvalidNode;
  leaf->split_dim = split_dim;
  leaf->split_coord = split_coord;
  leaf->left = std::move(left);
  leaf->right = std::move(right);

  if (static_cast<size_t>(new_host) >= host_leaf_.size()) {
    host_leaf_.resize(static_cast<size_t>(new_host) + 1, nullptr);
  }
  host_leaf_[static_cast<size_t>(old_host)] = leaf->left.get();
  host_leaf_[static_cast<size_t>(new_host)] = leaf->right.get();
}

NodeId KdTreePartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                     const array::ChunkInfo& chunk) {
  (void)cluster;
  return LeafOf(projection_.Project(chunk.coords))->host;
}

cluster::MovePlan KdTreePartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  const int new_count = cluster.num_nodes();
  // Working loads and ownership: the tree reflects earlier splits within
  // this same scale-out, so recompute ownership through the tree each time.
  for (NodeId new_node = old_node_count; new_node < new_count; ++new_node) {
    std::vector<int64_t> load(static_cast<size_t>(new_node), 0);
    std::vector<std::vector<ProjectedChunk>> contents(
        static_cast<size_t>(new_node));
    // arraydb-lint: ordered-extract order-insensitive -- the victim's
    // contents are value-sorted before splitting; loads are integer sums.
    for (const auto& [coords, rec] : cluster.chunk_map()) {
      array::Coordinates projected = projection_.Project(coords);
      const NodeId owner = LeafOf(projected)->host;
      ARRAYDB_CHECK_GE(owner, 0);
      if (owner < new_node) {
        load[static_cast<size_t>(owner)] += rec.bytes;
        contents[static_cast<size_t>(owner)].emplace_back(
            std::move(projected), rec.bytes);
      }
    }
    // Most loaded host whose region can still be subdivided (a region that
    // has shrunk to a single chunk column cannot be cut further).
    NodeId victim = -1;
    int64_t victim_bytes = -1;
    for (NodeId n = 0; n < new_node; ++n) {
      const TreeNode* leaf = LeafOfHost(n);
      bool splittable = false;
      for (size_t d = 0; d < leaf->lo.size(); ++d) {
        if (leaf->hi[d] - leaf->lo[d] >= 2) {
          splittable = true;
          break;
        }
      }
      if (splittable && load[static_cast<size_t>(n)] > victim_bytes) {
        victim = n;
        victim_bytes = load[static_cast<size_t>(n)];
      }
    }
    ARRAYDB_CHECK_GE(victim, 0);
    auto& victim_chunks = contents[static_cast<size_t>(victim)];
    std::sort(victim_chunks.begin(), victim_chunks.end());
    SplitLeaf(LeafOfHost(victim), new_node, victim_chunks);
  }

  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = LeafOf(projection_.Project(rec.coords))->host;
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId KdTreePartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  return LeafOf(projection_.Project(chunk_coords))->host;
}

int KdTreePartitioner::LeafDepth(NodeId host) const {
  return LeafOfHost(host)->depth;
}

}  // namespace arraydb::core
