#include "core/append.h"

#include "util/logging.h"
#include "util/units.h"

namespace arraydb::core {

AppendPartitioner::AppendPartitioner(int initial_nodes,
                                     double node_capacity_gb,
                                     double fill_fraction)
    : node_capacity_gb_(node_capacity_gb),
      fill_fraction_(fill_fraction),
      num_nodes_(initial_nodes),
      assigned_bytes_(static_cast<size_t>(initial_nodes), 0) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  ARRAYDB_CHECK_GT(fill_fraction, 0.0);
  ARRAYDB_CHECK_LE(fill_fraction, 1.0);
}

double AppendPartitioner::UsableBytesPerNode() const {
  return util::GbToBytes(node_capacity_gb_) * fill_fraction_;
}

NodeId AppendPartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                     const array::ChunkInfo& chunk) {
  ARRAYDB_CHECK_EQ(cluster.num_nodes(), num_nodes_);
  // Spill forward while the current target is full. If every node is full,
  // the last node absorbs the overflow (the provisioner is responsible for
  // adding capacity before that happens).
  const double usable = UsableBytesPerNode();
  while (target_ + 1 < num_nodes_ &&
         static_cast<double>(assigned_bytes_[static_cast<size_t>(target_)] +
                             chunk.bytes) > usable) {
    ++target_;
  }
  assigned_bytes_[static_cast<size_t>(target_)] += chunk.bytes;
  table_[chunk.coords] = target_;
  return target_;
}

cluster::MovePlan AppendPartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  ARRAYDB_CHECK_EQ(old_node_count, num_nodes_);
  num_nodes_ = cluster.num_nodes();
  assigned_bytes_.resize(static_cast<size_t>(num_nodes_), 0);
  // Constant-time scale-out: the new nodes become spill targets on their
  // first write; no chunk moves.
  return cluster::MovePlan();
}

NodeId AppendPartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  const auto it = table_.find(chunk_coords);
  return it == table_.end() ? kInvalidNode : it->second;
}

}  // namespace arraydb::core
