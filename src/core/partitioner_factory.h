// Construction of partitioners by kind, for sweeping experiments over all
// schemes (the paper evaluates all eight side by side).

#ifndef ARRAYDB_CORE_PARTITIONER_FACTORY_H_
#define ARRAYDB_CORE_PARTITIONER_FACTORY_H_

#include <memory>
#include <vector>

#include "array/schema.h"
#include "core/partitioner.h"
#include "core/spatial.h"

namespace arraydb::core {

enum class PartitionerKind {
  kAppend,
  kConsistentHash,
  kExtendibleHash,
  kHilbertCurve,
  kIncrementalQuadtree,
  kKdTree,
  kRoundRobin,
  kUniformRange,
};

/// All kinds in the paper's presentation order (Figures 4-5).
std::vector<PartitionerKind> AllPartitionerKinds();

const char* PartitionerKindName(PartitionerKind kind);

/// Instantiates a partitioner over `schema` for a cluster that starts with
/// `initial_nodes` nodes of `node_capacity_gb` each. `growth_dim` names the
/// unbounded (time) dimension that the spatial range partitioners must not
/// cut (see core/spatial.h); hash partitioners ignore it.
std::unique_ptr<Partitioner> MakePartitioner(
    PartitionerKind kind, const array::ArraySchema& schema, int initial_nodes,
    double node_capacity_gb, int growth_dim = SpatialProjection::kNone);

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_PARTITIONER_FACTORY_H_
