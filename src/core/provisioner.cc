#include "core/provisioner.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace arraydb::core {

LeadingStaircase::LeadingStaircase(StaircaseConfig config) : config_(config) {
  ARRAYDB_CHECK_GT(config_.node_capacity_gb, 0.0);
  ARRAYDB_CHECK_GE(config_.samples, 1);
  ARRAYDB_CHECK_GE(config_.plan_ahead, 0);
}

void LeadingStaircase::ObserveLoad(double load_gb) {
  ARRAYDB_CHECK_GE(load_gb, 0.0);
  history_.push_back(load_gb);
}

ProvisionDecision LeadingStaircase::Evaluate(double projected_load_gb,
                                             int current_nodes) const {
  ProvisionDecision decision;
  const double capacity =
      static_cast<double>(current_nodes) * config_.node_capacity_gb;
  // Eq. 2: proportional term — demand in excess of present capacity.
  decision.proportional_gb = projected_load_gb - capacity;
  if (decision.proportional_gb <= 0.0) {
    return decision;  // Within capacity: the provisioner is done.
  }

  // Eq. 3: derivative over the last s observed cycles. Early in a workload
  // there may be fewer than s samples; use as many as exist.
  const int s = std::min(config_.samples,
                         static_cast<int>(history_.size()));
  if (s >= 1) {
    const double l_now = projected_load_gb;
    const double l_past = history_[history_.size() - static_cast<size_t>(s)];
    decision.derivative_gb_per_cycle = (l_now - l_past) / static_cast<double>(s);
  }
  if (decision.derivative_gb_per_cycle < 0.0) {
    // Storage is monotone; a negative estimate only happens with a
    // projected load below history (not expected) — clamp to reactive-only.
    decision.derivative_gb_per_cycle = 0.0;
  }

  // Eq. 4: nodes for the present deficit plus p cycles of forecast growth.
  const double needed_gb =
      decision.proportional_gb +
      static_cast<double>(config_.plan_ahead) * decision.derivative_gb_per_cycle;
  decision.nodes_to_add = static_cast<int>(
      std::ceil(needed_gb / config_.node_capacity_gb));
  decision.nodes_to_add = std::max(decision.nodes_to_add, 1);
  return decision;
}

}  // namespace arraydb::core
