// Uniform Range partitioner (§4.2): global n-dimensional range
// partitioning for unskewed arrays.
//
// A tall, balanced binary space partition of height h describes the array's
// dimension space: level i halves the region along dimension (i mod d),
// yielding l = 2^h equal leaf regions, with l much larger than any
// anticipated cluster. The l leaves, in tree traversal order, are assigned
// to the n hosts in contiguous blocks of l/n — preserving multidimensional
// clustering with near-perfect leaf balance. Every scale-out recomputes the
// l/n blocks, a global reorganization (not incremental, not skew-aware).

#ifndef ARRAYDB_CORE_UNIFORM_RANGE_H_
#define ARRAYDB_CORE_UNIFORM_RANGE_H_

#include <cstdint>
#include <vector>

#include "core/partitioner.h"
#include "core/spatial.h"

namespace arraydb::core {

class UniformRangePartitioner final : public Partitioner {
 public:
  /// Builds the balanced BSP over the schema's chunk grid. The tree height
  /// is the number of bits needed to index the padded grid, so leaves are
  /// individual chunk-grid slots. `growth_dim` names the unbounded (time)
  /// dimension excluded from the tree; SpatialProjection::kNone uses all.
  UniformRangePartitioner(const array::ArraySchema& schema, int initial_nodes,
                          int growth_dim = SpatialProjection::kNone);

  const char* name() const override { return "Uniform Range"; }
  uint32_t features() const override { return kNDimensionalClustering; }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  /// Leaf index of a chunk in tree-traversal order (for tests).
  uint64_t LeafOf(const array::Coordinates& chunk_coords) const;

  uint64_t num_leaves() const { return num_leaves_; }

 private:
  SpatialProjection projection_;
  std::vector<int> bits_per_dim_;
  int height_ = 0;          // h: total tree height.
  uint64_t num_leaves_ = 1;  // l = 2^h.
  int num_nodes_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_UNIFORM_RANGE_H_
