#include "core/elastic_engine.h"

#include <utility>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace arraydb::core {

namespace {
constexpr cluster::NodeId kCoordinator = 0;
}  // namespace

ElasticEngine::ElasticEngine(std::unique_ptr<Partitioner> partitioner,
                             int initial_nodes, double node_capacity_gb,
                             cluster::CostParams cost_params)
    : partitioner_(std::move(partitioner)),
      cluster_(initial_nodes, node_capacity_gb),
      cost_model_(cost_params) {
  ARRAYDB_CHECK(partitioner_ != nullptr);
}

InsertStats ElasticEngine::IngestBatch(
    const std::vector<array::ChunkInfo>& batch) {
  InsertStats stats;
  if (ingest_threads_ > 1) {
    partitioner_->PrewarmPlacement(batch, ingest_threads_);
  }
  std::vector<std::pair<cluster::NodeId, int64_t>> destinations;
  destinations.reserve(batch.size());
  for (const auto& chunk : batch) {
    const NodeId node = partitioner_->PlaceChunk(cluster_, chunk);
    ARRAYDB_CHECK_GE(node, 0);
    ARRAYDB_CHECK_LT(node, cluster_.num_nodes());
    const auto status = cluster_.PlaceChunk(chunk.coords, chunk.bytes, node);
    ARRAYDB_CHECK(status.ok());
    destinations.emplace_back(node, chunk.bytes);
    stats.gb += util::BytesToGb(static_cast<double>(chunk.bytes));
  }
  stats.chunks = static_cast<int64_t>(batch.size());
  stats.minutes = cost_model_.InsertMinutes(destinations, kCoordinator).minutes;
  total_insert_minutes_ += stats.minutes;
  return stats;
}

void ElasticEngine::set_ingest_threads(int threads) {
  ingest_threads_ = util::ResolveThreadCount(threads);
}

ReorgStats ElasticEngine::ScaleOut(int nodes_to_add) {
  const ScaleOutPrep prep = PrepareScaleOut(nodes_to_add);

  ReorgStats stats;
  stats.nodes_added = prep.nodes_added;
  stats.only_to_new_nodes = prep.plan.OnlyToNodesAtOrAbove(prep.first_new_node);
  const auto cost = cost_model_.ReorgMinutes(prep.plan, cluster_.num_nodes());
  stats.minutes = cost.minutes;
  stats.moved_gb = cost.moved_gb;
  stats.chunks_moved = cost.chunks_moved;

  const auto status = cluster_.Apply(prep.plan);
  ARRAYDB_CHECK(status.ok());
  total_reorg_minutes_ += stats.minutes;
  return stats;
}

ScaleOutPrep ElasticEngine::PrepareScaleOut(int nodes_to_add) {
  ARRAYDB_CHECK_GE(nodes_to_add, 1);
  const int old_count = cluster_.num_nodes();
  ScaleOutPrep prep;
  prep.nodes_added = nodes_to_add;
  prep.first_new_node = cluster_.AddNodes(nodes_to_add);
  prep.plan = partitioner_->PlanScaleOut(cluster_, old_count);
  return prep;
}

}  // namespace arraydb::core
