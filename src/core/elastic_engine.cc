#include "core/elastic_engine.h"

#include <utility>

#include "util/logging.h"
#include "util/units.h"

namespace arraydb::core {

namespace {
constexpr cluster::NodeId kCoordinator = 0;
}  // namespace

ElasticEngine::ElasticEngine(std::unique_ptr<Partitioner> partitioner,
                             int initial_nodes, double node_capacity_gb,
                             cluster::CostParams cost_params)
    : partitioner_(std::move(partitioner)),
      cluster_(initial_nodes, node_capacity_gb),
      cost_model_(cost_params) {
  ARRAYDB_CHECK(partitioner_ != nullptr);
}

InsertStats ElasticEngine::IngestBatch(
    const std::vector<array::ChunkInfo>& batch) {
  InsertStats stats;
  if (ingest_threads_ > 1) {
    partitioner_->PrewarmPlacement(batch, ingest_threads_);
  }
  std::vector<std::pair<cluster::NodeId, int64_t>> destinations;
  destinations.reserve(batch.size());
  for (const auto& chunk : batch) {
    const NodeId node = partitioner_->PlaceChunk(cluster_, chunk);
    ARRAYDB_CHECK_GE(node, 0);
    ARRAYDB_CHECK_LT(node, cluster_.num_nodes());
    const auto status = cluster_.PlaceChunk(chunk.coords, chunk.bytes, node);
    ARRAYDB_CHECK(status.ok());
    destinations.emplace_back(node, chunk.bytes);
    stats.gb += util::BytesToGb(static_cast<double>(chunk.bytes));
  }
  stats.chunks = static_cast<int64_t>(batch.size());
  stats.minutes = cost_model_.InsertMinutes(destinations, kCoordinator).minutes;
  total_insert_minutes_ += stats.minutes;
  return stats;
}

ReorgStats ElasticEngine::ScaleOut(int nodes_to_add) {
  ARRAYDB_CHECK_GE(nodes_to_add, 1);
  const int old_count = cluster_.num_nodes();
  const NodeId first_new = cluster_.AddNodes(nodes_to_add);
  const cluster::MovePlan plan =
      partitioner_->PlanScaleOut(cluster_, old_count);

  ReorgStats stats;
  stats.nodes_added = nodes_to_add;
  stats.only_to_new_nodes = plan.OnlyToNodesAtOrAbove(first_new);
  const auto cost = cost_model_.ReorgMinutes(plan, cluster_.num_nodes());
  stats.minutes = cost.minutes;
  stats.moved_gb = cost.moved_gb;
  stats.chunks_moved = cost.chunks_moved;

  const auto status = cluster_.Apply(plan);
  ARRAYDB_CHECK(status.ok());
  total_reorg_minutes_ += stats.minutes;
  return stats;
}

}  // namespace arraydb::core
