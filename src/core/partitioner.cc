#include "core/partitioner.h"

#include <vector>

#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace arraydb::core {

std::string FeaturesToString(uint32_t features) {
  std::vector<std::string> parts;
  if (features & kIncrementalScaleOut) parts.push_back("incremental");
  if (features & kFineGrainedPartitioning) parts.push_back("fine-grained");
  if (features & kSkewAware) parts.push_back("skew-aware");
  if (features & kNDimensionalClustering) parts.push_back("n-dim-clustered");
  if (parts.empty()) return "none";
  return util::Join(parts, "|");
}

uint64_t ChunkHash(const array::Coordinates& coords) {
  uint64_t h = 0x853c49e6748fea9bULL;  // Fixed salt: placement must be stable.
  for (int64_t v : coords) {
    h = util::HashCombine(h, static_cast<uint64_t>(v));
  }
  return util::SplitMix64(h);
}

NodeId MostLoadedNode(const cluster::Cluster& cluster) {
  return MostLoadedNodeBelow(cluster, cluster.num_nodes());
}

NodeId MostLoadedNodeBelow(const cluster::Cluster& cluster, NodeId limit) {
  ARRAYDB_CHECK_GE(limit, 1);
  ARRAYDB_CHECK_LE(limit, cluster.num_nodes());
  NodeId best = 0;
  int64_t best_bytes = -1;
  for (NodeId n = 0; n < limit; ++n) {
    const int64_t bytes = cluster.NodeBytes(n);
    if (bytes > best_bytes) {
      best = n;
      best_bytes = bytes;
    }
  }
  return best;
}

}  // namespace arraydb::core
