// Incremental Quadtree partitioner (§4.2, generalizing Finkel & Bentley
// [20] to 2^d-way subdivision for d dimensions — an octree in 3-D).
//
// The (spatial) chunk grid is recursively subdivided into up to 2^d equal
// "quarters" by midpoint cuts of the actual array extents. Every host owns
// a set of sibling cells at exactly one tree level. When the cluster
// scales out, the most heavily burdened host is split:
//   * if it owns a single cell, the cell is quartered and the quarter or
//     pair of adjacent quarters whose summed size is closest to half of the
//     host's storage becomes the new host's partition;
//   * if it already owns several quarters, the single quarter or adjacent
//     pair closest to halving the storage moves instead.
// This keeps contiguous chunks together (n-dimensional clustering) while
// reacting directly to areas of skew, and ships data only to new nodes.

#ifndef ARRAYDB_CORE_QUADTREE_H_
#define ARRAYDB_CORE_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "core/partitioner.h"
#include "core/spatial.h"

namespace arraydb::core {

class QuadtreePartitioner final : public Partitioner {
 public:
  /// `growth_dim` names the unbounded (time) dimension excluded from the
  /// subdivision — the paper's quadtree quarters the 2-D spatial plane;
  /// pass SpatialProjection::kNone to subdivide the full space.
  QuadtreePartitioner(const array::ArraySchema& schema, int initial_nodes,
                      int growth_dim = SpatialProjection::kNone);

  const char* name() const override { return "Incr. Quadtree"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kSkewAware | kNDimensionalClustering;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  /// Tree level at which `host`'s cells reside (for tests).
  int HostLevel(NodeId host) const;
  /// Number of cells owned by `host` (for tests).
  int HostCellCount(NodeId host) const;

 private:
  /// A tree cell: an axis-aligned box of the (projected) chunk grid,
  /// produced by `level` rounds of midpoint subdivision.
  struct Cell {
    int level = 0;
    array::Coordinates lo;  // Inclusive.
    array::Coordinates hi;  // Exclusive.

    bool Contains(const array::Coordinates& projected) const;
    int64_t Volume() const;
    bool Splittable() const;  // Some dimension has extent >= 2.
  };

  static bool CellsAdjacent(const Cell& a, const Cell& b);
  /// The up-to-2^d children produced by midpoint cuts of `parent`.
  static std::vector<Cell> Quarter(const Cell& parent);
  /// Splits host `victim` (per the class comment), assigning the carved
  /// subset to `new_host`, pricing cells against `cluster`'s placement.
  void SplitHost(NodeId victim, NodeId new_host,
                 const cluster::Cluster& cluster);
  int64_t CellBytes(const Cell& cell, const cluster::Cluster& cluster) const;

  SpatialProjection projection_;
  int num_dims_;  // Projected dimensionality.
  // host_cells_[h] = the sibling cells owned by host h (all at one level).
  std::vector<std::vector<Cell>> host_cells_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_QUADTREE_H_
