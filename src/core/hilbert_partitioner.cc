#include "core/hilbert_partitioner.h"

#include <algorithm>

#include "hilbert/hilbert.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace arraydb::core {

namespace {

// Schema-driven codec construction goes through the checked factory: a
// projected rank above the 6-dim state tables (or an index budget
// overflow) fails loudly with the factory's message. This is deliberate
// policy, not a correctness necessity — the raw constructor's high-dim
// fallback is reference-exact, just table-free and slower — so hot-path
// placement refuses the unbounded-cost path until the ROADMAP item
// extending the state tables lands. Partitioner construction has no
// status channel, so the InvalidArgument surfaces as a CHECK here.
hilbert::HilbertCodec MakeCodecChecked(const array::Coordinates& extents) {
  auto codec = hilbert::HilbertCodec::Create(
      static_cast<int>(extents.size()), hilbert::BitsForExtents(extents));
  if (!codec.ok()) {
    std::fprintf(stderr, "HilbertPartitioner: %s\n",
                 codec.status().ToString().c_str());
  }
  ARRAYDB_CHECK(codec.ok());
  return std::move(codec).value();
}

}  // namespace

HilbertPartitioner::HilbertPartitioner(const array::ArraySchema& schema,
                                       int initial_nodes, int growth_dim)
    : projection_(schema, growth_dim),
      extents_(projection_.extents()),
      codec_(MakeCodecChecked(projection_.extents())) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  const int bits = codec_.bits();
  const int n = codec_.num_dims();
  ARRAYDB_CHECK_LE(n * bits, 62);
  curve_length_ = 1ULL << (n * bits);
  // With no data yet, divide the curve evenly among the initial nodes.
  for (NodeId node = 0; node < initial_nodes; ++node) {
    const uint64_t start =
        curve_length_ / initial_nodes * static_cast<uint64_t>(node);
    const uint64_t end =
        node + 1 == initial_nodes
            ? curve_length_
            : curve_length_ / initial_nodes * static_cast<uint64_t>(node + 1);
    ranges_.push_back(Range{start, end, node});
  }
}

uint64_t HilbertPartitioner::RankOf(
    const array::Coordinates& chunk_coords) const {
  const auto it = rank_cache_.find(chunk_coords);
  if (it != rank_cache_.end()) return it->second;
  const uint64_t rank =
      codec_.RankChecked(projection_.Project(chunk_coords), extents_);
  rank_cache_.emplace(chunk_coords, rank);
  return rank;
}

void HilbertPartitioner::PrewarmPlacement(
    const std::vector<array::ChunkInfo>& batch, int num_threads) {
  // Parallel phase: each shard writes only its own slots of `ranks`, so the
  // merge below observes one fixed, order-independent result.
  std::vector<uint64_t> ranks(batch.size(), 0);
  util::ParallelFor(
      static_cast<int64_t>(batch.size()), num_threads,
      [this, &batch, &ranks](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          ranks[static_cast<size_t>(i)] = codec_.RankChecked(
              projection_.Project(batch[static_cast<size_t>(i)].coords),
              extents_);
        }
      });
  // Ordered merge into the memo, on the calling thread only.
  for (size_t i = 0; i < batch.size(); ++i) {
    rank_cache_.emplace(batch[i].coords, ranks[i]);
  }
}

size_t HilbertPartitioner::RangeIndexOf(uint64_t rank) const {
  // Last range whose start is <= rank: one upper_bound, no linear probing.
  const auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), rank,
      [](uint64_t value, const Range& r) { return value < r.start; });
  ARRAYDB_CHECK(it != ranges_.begin());
  const size_t index = static_cast<size_t>(it - ranges_.begin()) - 1;
  ARRAYDB_CHECK_LE(ranges_[index].start, rank);
  ARRAYDB_CHECK_LT(rank, ranges_[index].end);
  return index;
}

NodeId HilbertPartitioner::OwnerOfRank(uint64_t rank) const {
  return ranges_[RangeIndexOf(rank)].node;
}

NodeId HilbertPartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                      const array::ChunkInfo& chunk) {
  (void)cluster;
  return OwnerOfRank(RankOf(chunk.coords));
}

cluster::MovePlan HilbertPartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  const int new_count = cluster.num_nodes();
  ARRAYDB_CHECK_GE(new_count, old_node_count);

  // Working view: (rank, bytes) for every stored chunk, plus per-node loads
  // that are updated as ranges split within this scale-out.
  struct Entry {
    uint64_t rank;
    int64_t bytes;
  };
  std::vector<Entry> entries;
  entries.reserve(cluster.chunk_map().size());
  std::vector<int64_t> load(static_cast<size_t>(new_count), 0);
  // arraydb-lint: ordered-extract order-insensitive -- entries are sorted
  // by unique rank below; loads are exact integer sums.
  for (const auto& [coords, rec] : cluster.chunk_map()) {
    const uint64_t rank = RankOf(coords);
    entries.push_back(Entry{rank, rec.bytes});
    load[static_cast<size_t>(OwnerOfRank(rank))] += rec.bytes;
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.rank < b.rank; });

  for (NodeId new_node = old_node_count; new_node < new_count; ++new_node) {
    // Pick the most heavily burdened host so far (skew-awareness) whose
    // curve range is still divisible. A width-1 range — one hot curve
    // position, e.g. a single port cell — cannot be cut further, so the
    // next most loaded host is split instead.
    size_t ri = ranges_.size();
    int64_t victim_bytes = -1;
    for (size_t i = 0; i < ranges_.size(); ++i) {
      if (ranges_[i].node >= new_node) continue;  // Not provisioned yet.
      if (ranges_[i].end - ranges_[i].start < 2) continue;
      const int64_t bytes = load[static_cast<size_t>(ranges_[i].node)];
      if (bytes > victim_bytes) {
        victim_bytes = bytes;
        ri = i;
      }
    }
    ARRAYDB_CHECK_LT(ri, ranges_.size());
    Range& r = ranges_[ri];
    const NodeId victim = r.node;

    // Byte-weighted median rank within [r.start, r.end): the smallest rank
    // boundary m such that bytes below m reach half. The split must leave
    // both sides non-empty in curve space.
    const auto first = std::lower_bound(
        entries.begin(), entries.end(), r.start,
        [](const Entry& e, uint64_t v) { return e.rank < v; });
    const auto last = std::lower_bound(
        entries.begin(), entries.end(), r.end,
        [](const Entry& e, uint64_t v) { return e.rank < v; });
    int64_t range_bytes = 0;
    for (auto it = first; it != last; ++it) range_bytes += it->bytes;

    uint64_t split = r.start + (r.end - r.start) / 2;  // Fallback: midpoint.
    if (range_bytes > 0) {
      int64_t below = 0;
      for (auto it = first; it != last; ++it) {
        below += it->bytes;
        if (below * 2 >= range_bytes) {
          split = it->rank + 1;  // Boundary just above the median chunk.
          break;
        }
      }
      if (split >= r.end) split = r.end - 1;
      if (split <= r.start) split = r.start + 1;
    }
    ARRAYDB_CHECK_GT(split, r.start);
    ARRAYDB_CHECK_LT(split, r.end);

    // Upper half of the curve range moves to the new node.
    const Range upper{split, r.end, new_node};
    r.end = split;
    ranges_.insert(ranges_.begin() + static_cast<ptrdiff_t>(ri) + 1, upper);

    int64_t moved = 0;
    for (auto it = first; it != last; ++it) {
      if (it->rank >= split) moved += it->bytes;
    }
    load[static_cast<size_t>(victim)] -= moved;
    load[static_cast<size_t>(new_node)] += moved;
  }

  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = OwnerOfRank(RankOf(rec.coords));
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId HilbertPartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  return OwnerOfRank(RankOf(chunk_coords));
}

}  // namespace arraydb::core
