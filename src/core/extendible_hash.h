// Extendible Hash partitioner (§4.2, Fagin et al. [19]).
//
// A directory of 2^g entries maps the low-order g bits of a chunk's hash to
// a node. When the cluster scales out, the most heavily burdened node's
// directory entries are split — by the next more significant hash bit when
// it owns a single entry — and approximately half of its stored bytes (the
// skew-aware part) are handed to a new host. Scale-out is incremental:
// reassigned entries point only at new nodes.

#ifndef ARRAYDB_CORE_EXTENDIBLE_HASH_H_
#define ARRAYDB_CORE_EXTENDIBLE_HASH_H_

#include <vector>

#include "core/partitioner.h"

namespace arraydb::core {

class ExtendibleHashPartitioner final : public Partitioner {
 public:
  explicit ExtendibleHashPartitioner(int initial_nodes);

  const char* name() const override { return "Extendible Hash"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kFineGrainedPartitioning | kSkewAware;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  int global_depth() const { return global_depth_; }

 private:
  uint64_t DirMask() const { return directory_.size() - 1; }
  void DoubleDirectory();

  int num_nodes_;
  int global_depth_;
  std::vector<NodeId> directory_;  // Size 2^global_depth_.
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_EXTENDIBLE_HASH_H_
