// Consistent Hash partitioner (§4.2, Karger et al. [24]).
//
// Nodes and chunks hash onto a 64-bit ring; a chunk lives on the first node
// clockwise from its hash. Each node projects `vnodes_per_node` virtual
// points for smoothness. Scale-out is incremental by construction: adding a
// node only captures ring arcs from existing owners, so chunks move only to
// the new hosts. Balanced in chunk count, but blind to both storage skew
// and array space.

#ifndef ARRAYDB_CORE_CONSISTENT_HASH_H_
#define ARRAYDB_CORE_CONSISTENT_HASH_H_

#include <map>

#include "core/partitioner.h"

namespace arraydb::core {

class ConsistentHashPartitioner final : public Partitioner {
 public:
  explicit ConsistentHashPartitioner(int initial_nodes,
                                     int vnodes_per_node = 64);

  const char* name() const override { return "Consistent Hash"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kFineGrainedPartitioning;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  int num_ring_points() const { return static_cast<int>(ring_.size()); }

 private:
  void InsertNode(NodeId node);
  NodeId OwnerOfHash(uint64_t h) const;

  int vnodes_per_node_;
  int num_nodes_;
  // Ring position -> owning node. std::map gives ordered successor lookup.
  std::map<uint64_t, NodeId> ring_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_CONSISTENT_HASH_H_
