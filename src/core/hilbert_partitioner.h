// Hilbert Curve partitioner (§4.2).
//
// Chunks are totally ordered by their Hilbert curve rank, and each node owns
// one contiguous range of the curve. Because neighboring ranks are spatially
// adjacent chunks, per-node ranges preserve n-dimensional locality while
// still splitting at single-chunk granularity — finer than dimension-range
// slicing. On scale-out, the most heavily burdened node's range is cut at
// its byte-weighted median rank and the upper half moves to a new host
// (incremental + skew-aware).

#ifndef ARRAYDB_CORE_HILBERT_PARTITIONER_H_
#define ARRAYDB_CORE_HILBERT_PARTITIONER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/partitioner.h"
#include "core/spatial.h"
#include "hilbert/hilbert.h"

namespace arraydb::core {

class HilbertPartitioner final : public Partitioner {
 public:
  /// `growth_dim` names the unbounded (time) dimension excluded from the
  /// curve so that spatial columns stay collocated across inserts; pass
  /// SpatialProjection::kNone to serialize the full space.
  HilbertPartitioner(const array::ArraySchema& schema, int initial_nodes,
                     int growth_dim = SpatialProjection::kNone);

  const char* name() const override { return "Hilbert Curve"; }
  uint32_t features() const override {
    return kIncrementalScaleOut | kSkewAware | kNDimensionalClustering;
  }

  NodeId PlaceChunk(const cluster::Cluster& cluster,
                    const array::ChunkInfo& chunk) override;
  cluster::MovePlan PlanScaleOut(const cluster::Cluster& cluster,
                                 int old_node_count) override;
  NodeId Locate(const array::Coordinates& chunk_coords) const override;

  /// Computes the curve ranks of `batch` in parallel (contiguous shards,
  /// ordered merge into the rank memo), so PlaceChunk/PlanScaleOut never
  /// re-derive ranks for already-seen chunks. Placement-neutral.
  void PrewarmPlacement(const std::vector<array::ChunkInfo>& batch,
                        int num_threads) override;

  /// Curve rank of a chunk (exposed for tests and diagnostics); memoized
  /// per chunk position.
  uint64_t RankOf(const array::Coordinates& chunk_coords) const;

  /// Number of curve ranges (== number of nodes).
  int num_ranges() const { return static_cast<int>(ranges_.size()); }

 private:
  struct Range {
    uint64_t start;  // Inclusive curve rank.
    uint64_t end;    // Exclusive.
    NodeId node;
  };

  NodeId OwnerOfRank(uint64_t rank) const;
  size_t RangeIndexOf(uint64_t rank) const;

  SpatialProjection projection_;
  array::Coordinates extents_;  // Projected grid extents.
  hilbert::HilbertCodec codec_;  // Sized to extents_ once, reused per rank.
  uint64_t curve_length_;
  std::vector<Range> ranges_;  // Sorted by start; a partition of the curve.
  // Chunk position -> curve rank memo. Guarded by the engine's sequential
  // use of the partitioner; PrewarmPlacement only writes it from the
  // calling thread after its parallel phase.
  mutable std::unordered_map<array::Coordinates, uint64_t,
                             array::CoordinatesHash>
      rank_cache_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_HILBERT_PARTITIONER_H_
