// ElasticEngine: the coordinator tying cluster, partitioner, and cost model
// together. It executes the two elastic operations of the workload model —
// batch ingest and scale-out-plus-reorganize — updating placement state and
// charging simulated elapsed time.

#ifndef ARRAYDB_CORE_ELASTIC_ENGINE_H_
#define ARRAYDB_CORE_ELASTIC_ENGINE_H_

#include <memory>
#include <vector>

#include "array/chunk.h"
#include "array/schema.h"
#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "core/partitioner.h"

namespace arraydb::core {

struct InsertStats {
  double minutes = 0.0;
  double gb = 0.0;
  int64_t chunks = 0;
};

struct ReorgStats {
  double minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  int nodes_added = 0;
  /// Whether every relocation targeted a newly added node (Table 1's
  /// incremental scale-out property, verified against the substrate).
  bool only_to_new_nodes = true;
};

/// A scale-out staged but not yet applied: the nodes have been added and the
/// partitioner has produced its repartitioning plan. The caller realizes the
/// plan either atomically (Cluster::Apply) or incrementally through a
/// reorg::IncrementalReorgEngine.
struct ScaleOutPrep {
  cluster::MovePlan plan;
  cluster::NodeId first_new_node = cluster::kInvalidNode;
  int nodes_added = 0;
};

class ElasticEngine {
 public:
  ElasticEngine(std::unique_ptr<Partitioner> partitioner, int initial_nodes,
                double node_capacity_gb,
                cluster::CostParams cost_params = cluster::CostParams());

  /// Number of worker threads the ingest path may use for the partitioner's
  /// placement prewarm (chunk-parallel rank computation). Placement
  /// decisions themselves stay sequential, so results are identical for
  /// every thread count. Default 1 (fully sequential); 0 = auto — resolved
  /// immediately through util::ResolveThreadCount, so ingest_threads()
  /// always reports the effective worker count.
  void set_ingest_threads(int threads);
  int ingest_threads() const { return ingest_threads_; }

  /// Ingests one batch: the coordinator (node 0) routes each chunk through
  /// the partitioner and records it in the cluster. With ingest_threads > 1
  /// the partitioner first precomputes per-chunk placement state in
  /// parallel (ordered merge), then the routing loop runs as usual.
  InsertStats IngestBatch(const std::vector<array::ChunkInfo>& batch);

  /// Adds `nodes_to_add` empty nodes, asks the partitioner for a
  /// repartitioning plan, applies it atomically, and prices the
  /// reorganization (the legacy blocking path).
  ReorgStats ScaleOut(int nodes_to_add);

  /// Adds `nodes_to_add` empty nodes and returns the partitioner's plan
  /// *without* applying it, for incremental execution by the caller.
  ScaleOutPrep PrepareScaleOut(int nodes_to_add);

  /// Charges reorganization minutes executed outside ScaleOut (the
  /// incremental path), keeping total_reorg_minutes() consistent.
  void RecordReorgMinutes(double minutes) { total_reorg_minutes_ += minutes; }

  const cluster::Cluster& cluster() const { return cluster_; }
  /// Mutable substrate access for the incremental reorg driver.
  cluster::Cluster& mutable_cluster() { return cluster_; }
  Partitioner& partitioner() { return *partitioner_; }
  const Partitioner& partitioner() const { return *partitioner_; }
  const cluster::CostModel& cost_model() const { return cost_model_; }

  /// Cumulative simulated minutes spent on inserts and reorganizations.
  double total_insert_minutes() const { return total_insert_minutes_; }
  double total_reorg_minutes() const { return total_reorg_minutes_; }

 private:
  std::unique_ptr<Partitioner> partitioner_;
  cluster::Cluster cluster_;
  cluster::CostModel cost_model_;
  int ingest_threads_ = 1;
  double total_insert_minutes_ = 0.0;
  double total_reorg_minutes_ = 0.0;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_ELASTIC_ENGINE_H_
