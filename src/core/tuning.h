// Workload-specific tuning of the leading staircase (§5.2).
//
// Two parameters are fitted per workload:
//   * s — how many history samples feed the derivative. Chosen by the
//     what-if analysis of Algorithm 1: replay the observed demand curve,
//     predict each next step with every candidate s, and keep the s with
//     the lowest mean absolute prediction error.
//   * p — how many future cycles each scale-out provisions. Chosen by an
//     analytical cost model (Eqs. 5-9) that simulates m future cycles and
//     prices each candidate configuration in node hours.

#ifndef ARRAYDB_CORE_TUNING_H_
#define ARRAYDB_CORE_TUNING_H_

#include <vector>

namespace arraydb::core {

/// Algorithm 1: mean absolute demand-prediction error for each candidate
/// sample count s = 1..psi, evaluated by sliding a window over `loads`
/// (the per-cycle storage demand observed so far). Entry [s-1] holds the
/// error for sample count s, in the same units as `loads` (GB).
std::vector<double> SamplingWhatIfErrors(const std::vector<double>& loads,
                                         int psi);

/// Returns the s in [1, psi] minimizing the what-if error (Algorithm 1's
/// final argmin). Ties break toward smaller s.
int TuneSampleCount(const std::vector<double>& loads, int psi);

/// Evaluates prediction error of a *fixed* s over a test demand curve:
/// mean |Δ_est - Δ_observed| of one-step-ahead forecasts (used to produce
/// the train/test split of Table 2).
double SamplePredictionError(const std::vector<double>& loads, int s);

/// Inputs of the Eq. 5-9 analytical scale-out cost model, all captured at
/// tuning time (cycle d, when the cluster first reaches capacity).
struct ScaleOutCostModelParams {
  double l0_gb = 0.0;        // Present load l_0 (Eq. 5 intercept).
  double mu_gb = 0.0;        // Insert rate per cycle (Eq. 5 slope).
  double capacity_gb = 0.0;  // Per-node capacity c.
  int n0 = 1;                // Present node count N_0.
  double w0_minutes = 0.0;   // Last observed query-benchmark latency.
  double delta_io_min_per_gb = 0.0;  // δ, derived empirically.
  double t_net_min_per_gb = 0.0;     // t, derived empirically.
  int horizon_m = 4;         // m cycles to simulate.
};

/// Per-cycle breakdown of the analytical simulation (for tests/diagnostics).
struct ModeledCycle {
  double load_gb = 0.0;      // l_i (Eq. 5)
  int nodes = 0;             // N_{i,p}
  double insert_minutes = 0.0;  // I_{i,p} (Eq. 6)
  double reorg_minutes = 0.0;   // r_{i,p} (Eq. 7)
  double query_minutes = 0.0;   // w_{i,p} (Eq. 8)
};

/// Simulates m cycles under plan-ahead p and returns the per-cycle model.
std::vector<ModeledCycle> ModelConfiguration(
    int p, const ScaleOutCostModelParams& params);

/// Eq. 9: total modeled cost of configuration p, in node hours.
double EstimateConfigCostNodeHours(int p,
                                   const ScaleOutCostModelParams& params);

/// Returns the candidate p with the lowest modeled cost (ties toward the
/// smaller p).
int TunePlanAhead(const std::vector<int>& candidates,
                  const ScaleOutCostModelParams& params);

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_TUNING_H_
