#include "core/uniform_range.h"

#include "util/logging.h"

namespace arraydb::core {

UniformRangePartitioner::UniformRangePartitioner(
    const array::ArraySchema& schema, int initial_nodes, int growth_dim)
    : projection_(schema, growth_dim), num_nodes_(initial_nodes) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  const array::Coordinates& extents = projection_.extents();
  bits_per_dim_.resize(extents.size());
  for (size_t d = 0; d < extents.size(); ++d) {
    int bits = 0;
    while ((1LL << bits) < extents[d]) ++bits;
    bits_per_dim_[d] = bits;
    height_ += bits;
  }
  ARRAYDB_CHECK_LE(height_, 62);
  num_leaves_ = 1ULL << height_;
  ARRAYDB_CHECK_GE(num_leaves_, static_cast<uint64_t>(initial_nodes));
}

uint64_t UniformRangePartitioner::LeafOf(
    const array::Coordinates& chunk_coords) const {
  const array::Coordinates projected = projection_.Project(chunk_coords);
  ARRAYDB_CHECK_EQ(projected.size(), bits_per_dim_.size());
  // Walk the BSP root-to-leaf: level i halves dimension (i mod d), skipping
  // dimensions whose bits are exhausted. Taking the next most significant
  // coordinate bit at each level reproduces the in-order traversal rank.
  const size_t ndims = bits_per_dim_.size();
  std::vector<int> remaining = bits_per_dim_;
  uint64_t leaf = 0;
  int emitted = 0;
  size_t dim = 0;
  while (emitted < height_) {
    if (remaining[dim] > 0) {
      const int bit_index = remaining[dim] - 1;
      const uint64_t bit =
          (static_cast<uint64_t>(projected[dim]) >> bit_index) & 1;
      leaf = (leaf << 1) | bit;
      --remaining[dim];
      ++emitted;
    }
    dim = (dim + 1) % ndims;
  }
  return leaf;
}

NodeId UniformRangePartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                           const array::ChunkInfo& chunk) {
  ARRAYDB_CHECK_EQ(cluster.num_nodes(), num_nodes_);
  return Locate(chunk.coords);
}

cluster::MovePlan UniformRangePartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  ARRAYDB_CHECK_EQ(old_node_count, num_nodes_);
  num_nodes_ = cluster.num_nodes();
  // Global rebalance: every chunk is re-addressed against the new l/n
  // blocks; a cascade of moves may touch most of the cluster.
  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = Locate(rec.coords);
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId UniformRangePartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  const uint64_t leaf = LeafOf(chunk_coords);
  // Balanced contiguous blocks: leaf k -> node floor(k * n / l).
  return static_cast<NodeId>(
      (static_cast<unsigned __int128>(leaf) *
       static_cast<unsigned __int128>(num_nodes_)) /
      num_leaves_);
}

}  // namespace arraydb::core
