#include "core/tuning.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace arraydb::core {

std::vector<double> SamplingWhatIfErrors(const std::vector<double>& loads,
                                         int psi) {
  ARRAYDB_CHECK_GE(psi, 1);
  const int d = static_cast<int>(loads.size());
  std::vector<double> errors(static_cast<size_t>(psi),
                             std::numeric_limits<double>::infinity());
  // Algorithm 1: for each s, slide over cycles i = s+1 .. d-1 (0-based
  // i = s .. d-2 so that l_{i+1} exists), estimate the derivative from the
  // last s points and compare with the observed next-step change.
  for (int s = 1; s <= psi; ++s) {
    if (d - s - 1 <= 0) continue;  // Not enough history for this s.
    double err = 0.0;
    int count = 0;
    for (int i = s; i + 1 < d; ++i) {
      const double delta_est =
          (loads[static_cast<size_t>(i)] - loads[static_cast<size_t>(i - s)]) /
          static_cast<double>(s);
      const double delta_obs = loads[static_cast<size_t>(i + 1)] -
                               loads[static_cast<size_t>(i)];
      err += std::abs(delta_obs - delta_est);
      ++count;
    }
    errors[static_cast<size_t>(s - 1)] = err / static_cast<double>(count);
  }
  return errors;
}

int TuneSampleCount(const std::vector<double>& loads, int psi) {
  const std::vector<double> errors = SamplingWhatIfErrors(loads, psi);
  int best = 1;
  for (int s = 2; s <= psi; ++s) {
    if (errors[static_cast<size_t>(s - 1)] <
        errors[static_cast<size_t>(best - 1)]) {
      best = s;
    }
  }
  return best;
}

double SamplePredictionError(const std::vector<double>& loads, int s) {
  ARRAYDB_CHECK_GE(s, 1);
  const int d = static_cast<int>(loads.size());
  double err = 0.0;
  int count = 0;
  for (int i = s; i + 1 < d; ++i) {
    const double delta_est =
        (loads[static_cast<size_t>(i)] - loads[static_cast<size_t>(i - s)]) /
        static_cast<double>(s);
    const double delta_obs =
        loads[static_cast<size_t>(i + 1)] - loads[static_cast<size_t>(i)];
    err += std::abs(delta_obs - delta_est);
    ++count;
  }
  if (count == 0) return std::numeric_limits<double>::infinity();
  return err / static_cast<double>(count);
}

std::vector<ModeledCycle> ModelConfiguration(
    int p, const ScaleOutCostModelParams& params) {
  ARRAYDB_CHECK_GE(p, 0);
  ARRAYDB_CHECK_GT(params.capacity_gb, 0.0);
  ARRAYDB_CHECK_GE(params.n0, 1);
  ARRAYDB_CHECK_GT(params.l0_gb, 0.0);

  std::vector<ModeledCycle> cycles;
  cycles.reserve(static_cast<size_t>(params.horizon_m));
  int prev_nodes = params.n0;
  for (int i = 1; i <= params.horizon_m; ++i) {
    ModeledCycle c;
    // Eq. 5: constant insert rate projected forward.
    c.load_gb = params.l0_gb + params.mu_gb * static_cast<double>(i);

    // Node count recurrence: hold while within capacity, otherwise
    // provision for p cycles beyond i.
    if (c.load_gb <= static_cast<double>(prev_nodes) * params.capacity_gb) {
      c.nodes = prev_nodes;
    } else {
      c.nodes = static_cast<int>(
          std::ceil((params.l0_gb + params.mu_gb * static_cast<double>(i + p)) /
                    params.capacity_gb));
    }

    const double n = static_cast<double>(c.nodes);
    // Eq. 6: the coordinator keeps 1/N of the batch locally at δ and ships
    // the rest at t.
    c.insert_minutes = params.mu_gb * (1.0 / n) * params.delta_io_min_per_gb +
                       params.mu_gb * ((n - 1.0) / n) * params.t_net_min_per_gb;
    // Eq. 7: rebalancing ships the new nodes' share of the average load.
    c.reorg_minutes = (c.load_gb / n) *
                      static_cast<double>(c.nodes - prev_nodes) *
                      params.t_net_min_per_gb;
    // Eq. 8: base workload scaled by load growth and parallelism.
    c.query_minutes = params.w0_minutes * (c.load_gb / params.l0_gb) *
                      (static_cast<double>(params.n0) / n);

    cycles.push_back(c);
    prev_nodes = c.nodes;
  }
  return cycles;
}

double EstimateConfigCostNodeHours(int p,
                                   const ScaleOutCostModelParams& params) {
  const auto cycles = ModelConfiguration(p, params);
  double node_minutes = 0.0;
  for (const auto& c : cycles) {
    // Eq. 9: each cycle's duration weighted by its node count.
    node_minutes += static_cast<double>(c.nodes) *
                    (c.insert_minutes + c.reorg_minutes + c.query_minutes);
  }
  return node_minutes / 60.0;
}

int TunePlanAhead(const std::vector<int>& candidates,
                  const ScaleOutCostModelParams& params) {
  ARRAYDB_CHECK(!candidates.empty());
  int best = candidates[0];
  double best_cost = EstimateConfigCostNodeHours(best, params);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const double cost = EstimateConfigCostNodeHours(candidates[i], params);
    if (cost < best_cost) {
      best = candidates[i];
      best_cost = cost;
    }
  }
  return best;
}

}  // namespace arraydb::core
