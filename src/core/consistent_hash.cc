#include "core/consistent_hash.h"

#include "util/logging.h"
#include "util/rng.h"

namespace arraydb::core {

ConsistentHashPartitioner::ConsistentHashPartitioner(int initial_nodes,
                                                     int vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node), num_nodes_(0) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  ARRAYDB_CHECK_GE(vnodes_per_node, 1);
  for (NodeId n = 0; n < initial_nodes; ++n) InsertNode(n);
}

void ConsistentHashPartitioner::InsertNode(NodeId node) {
  for (int r = 0; r < vnodes_per_node_; ++r) {
    // Derive the vnode position from (node, replica) with a fixed salt so
    // the ring is stable across runs.
    uint64_t h = util::HashCombine(0x6a09e667f3bcc909ULL,
                                   static_cast<uint64_t>(node));
    h = util::HashCombine(h, static_cast<uint64_t>(r));
    h = util::SplitMix64(h);
    // Collisions are vanishingly rare; skip forward if one occurs so no
    // vnode silently vanishes.
    while (ring_.contains(h)) ++h;
    ring_.emplace(h, node);
  }
  ++num_nodes_;
}

NodeId ConsistentHashPartitioner::OwnerOfHash(uint64_t h) const {
  ARRAYDB_CHECK(!ring_.empty());
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the circle.
  return it->second;
}

NodeId ConsistentHashPartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                             const array::ChunkInfo& chunk) {
  ARRAYDB_CHECK_EQ(cluster.num_nodes(), num_nodes_);
  return OwnerOfHash(ChunkHash(chunk.coords));
}

cluster::MovePlan ConsistentHashPartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  ARRAYDB_CHECK_EQ(old_node_count, num_nodes_);
  for (NodeId n = old_node_count; n < cluster.num_nodes(); ++n) {
    InsertNode(n);
  }
  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = OwnerOfHash(ChunkHash(rec.coords));
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId ConsistentHashPartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  return OwnerOfHash(ChunkHash(chunk_coords));
}

}  // namespace arraydb::core
