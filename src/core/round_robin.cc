#include "core/round_robin.h"

#include "util/logging.h"

namespace arraydb::core {

RoundRobinPartitioner::RoundRobinPartitioner(const array::ArraySchema& schema,
                                             int initial_nodes)
    : schema_(schema), num_nodes_(initial_nodes) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
}

NodeId RoundRobinPartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                         const array::ChunkInfo& chunk) {
  ARRAYDB_CHECK_EQ(cluster.num_nodes(), num_nodes_);
  return Locate(chunk.coords);
}

cluster::MovePlan RoundRobinPartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  ARRAYDB_CHECK_EQ(old_node_count, num_nodes_);
  num_nodes_ = cluster.num_nodes();
  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = Locate(rec.coords);
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId RoundRobinPartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  const int64_t index = schema_.LinearizeChunkIndex(chunk_coords);
  return static_cast<NodeId>(index % num_nodes_);
}

}  // namespace arraydb::core
