// The leading staircase provisioner (§5.1).
//
// An elastic array database expands in discrete steps, like a staircase
// that stays ahead of the demand curve (Figure 3). When the projected
// storage demand of an incoming insert exceeds provisioned capacity, a
// Proportional-Derivative control loop sizes the next step:
//
//   p_i = l_i - N * c                    (Eq. 2, proportional error)
//   Δ   = (l_i - l_{i-s}) / s            (Eq. 3, demand derivative)
//   k   = ceil((p_i + p * Δ) / c)        (Eq. 4, nodes to add)
//
// where c is per-node capacity, s the number of history samples for the
// derivative, and p how many future workload cycles each step provisions.

#ifndef ARRAYDB_CORE_PROVISIONER_H_
#define ARRAYDB_CORE_PROVISIONER_H_

#include <vector>

namespace arraydb::core {

struct StaircaseConfig {
  double node_capacity_gb = 100.0;  // c
  int samples = 4;                  // s
  int plan_ahead = 3;               // p (the set point of Figure 8)
};

/// One control-loop evaluation, with its intermediate terms exposed for
/// inspection and testing.
struct ProvisionDecision {
  int nodes_to_add = 0;
  double proportional_gb = 0.0;           // p_i of Eq. 2.
  double derivative_gb_per_cycle = 0.0;   // Δ of Eq. 3.
};

class LeadingStaircase {
 public:
  explicit LeadingStaircase(StaircaseConfig config);

  const StaircaseConfig& config() const { return config_; }

  /// Records the observed storage demand at the end of a workload cycle.
  void ObserveLoad(double load_gb);

  /// Evaluates the control loop for the cycle whose post-insert demand is
  /// `projected_load_gb`, against `current_nodes` provisioned nodes.
  /// Returns 0 nodes when the system is within capacity.
  ProvisionDecision Evaluate(double projected_load_gb,
                             int current_nodes) const;

  /// Load history observed so far (most recent last).
  const std::vector<double>& history() const { return history_; }

 private:
  StaircaseConfig config_;
  std::vector<double> history_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_PROVISIONER_H_
