// Projection of chunk coordinates onto the partitioned subspace.
//
// Scientific arrays have a growth dimension — time, declared unbounded in
// the paper's schemas (time=0,*) — along which the store grows forever.
// A range partitioner that cut this dimension would funnel every future
// insert into the newest region's host, so the spatial schemes (K-d Tree,
// Incremental Quadtree, Hilbert Curve, Uniform Range) partition the
// remaining, bounded dimensions and collocate each spatial column across
// time. SpatialProjection centralizes that coordinate mapping; passing
// growth_dim = kNone partitions the full space (useful for static arrays
// and property tests).

#ifndef ARRAYDB_CORE_SPATIAL_H_
#define ARRAYDB_CORE_SPATIAL_H_

#include <vector>

#include "array/coordinates.h"
#include "array/schema.h"
#include "util/logging.h"

namespace arraydb::core {

class SpatialProjection {
 public:
  static constexpr int kNone = -1;

  SpatialProjection(const array::ArraySchema& schema, int growth_dim)
      : growth_dim_(growth_dim) {
    ARRAYDB_CHECK_GE(growth_dim, kNone);
    ARRAYDB_CHECK_LT(growth_dim, schema.num_dims());
    const array::Coordinates full = schema.ChunkGridExtents();
    for (int d = 0; d < schema.num_dims(); ++d) {
      if (d == growth_dim_) continue;
      dims_.push_back(d);
      extents_.push_back(full[static_cast<size_t>(d)]);
    }
    ARRAYDB_CHECK(!dims_.empty());
  }

  int growth_dim() const { return growth_dim_; }
  int num_dims() const { return static_cast<int>(dims_.size()); }

  /// Extents of the projected chunk grid.
  const array::Coordinates& extents() const { return extents_; }

  /// Drops the growth dimension from full chunk coordinates.
  array::Coordinates Project(const array::Coordinates& full) const {
    array::Coordinates out;
    out.reserve(dims_.size());
    for (const int d : dims_) out.push_back(full[static_cast<size_t>(d)]);
    return out;
  }

 private:
  int growth_dim_;
  std::vector<int> dims_;      // Full-space indexes of partitioned dims.
  array::Coordinates extents_;
};

}  // namespace arraydb::core

#endif  // ARRAYDB_CORE_SPATIAL_H_
