#include "core/extendible_hash.h"

#include <algorithm>
#include <cstdint>

#include "util/logging.h"

namespace arraydb::core {
namespace {

// Hard ceiling on directory growth; 2^20 entries is far beyond any cluster
// size exercised here and bounds memory if splits degenerate.
constexpr int kMaxGlobalDepth = 20;

}  // namespace

ExtendibleHashPartitioner::ExtendibleHashPartitioner(int initial_nodes)
    : num_nodes_(initial_nodes) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  global_depth_ = 0;
  while ((1 << global_depth_) < initial_nodes) ++global_depth_;
  directory_.assign(static_cast<size_t>(1) << global_depth_, 0);
  // Round-robin the initial buckets over the initial nodes.
  for (size_t i = 0; i < directory_.size(); ++i) {
    directory_[i] = static_cast<NodeId>(i % static_cast<size_t>(initial_nodes));
  }
}

void ExtendibleHashPartitioner::DoubleDirectory() {
  ARRAYDB_CHECK_LT(global_depth_, kMaxGlobalDepth);
  const size_t old_size = directory_.size();
  directory_.resize(old_size * 2);
  // New entry (i | old_size) initially aliases entry i: same owner until a
  // split separates them.
  for (size_t i = 0; i < old_size; ++i) {
    directory_[i + old_size] = directory_[i];
  }
  ++global_depth_;
}

NodeId ExtendibleHashPartitioner::PlaceChunk(const cluster::Cluster& cluster,
                                             const array::ChunkInfo& chunk) {
  ARRAYDB_CHECK_EQ(cluster.num_nodes(), num_nodes_);
  return Locate(chunk.coords);
}

cluster::MovePlan ExtendibleHashPartitioner::PlanScaleOut(
    const cluster::Cluster& cluster, int old_node_count) {
  ARRAYDB_CHECK_EQ(old_node_count, num_nodes_);
  const int new_count = cluster.num_nodes();

  // Bytes stored under each directory entry, and per node, reflecting the
  // cluster state before this scale-out. Updated as entries are reassigned
  // so that consecutive splits in one scale-out see each other's effect.
  auto entry_bytes = [&]() {
    std::vector<int64_t> bytes(directory_.size(), 0);
    // arraydb-lint: order-insensitive -- exact integer sums per slot.
    for (const auto& [coords, rec] : cluster.chunk_map()) {
      bytes[ChunkHash(coords) & DirMask()] += rec.bytes;
    }
    return bytes;
  };
  std::vector<int64_t> bytes_per_entry = entry_bytes();
  std::vector<int64_t> node_bytes(static_cast<size_t>(new_count), 0);
  for (size_t e = 0; e < directory_.size(); ++e) {
    node_bytes[static_cast<size_t>(directory_[e])] += bytes_per_entry[e];
  }

  for (NodeId new_node = old_node_count; new_node < new_count; ++new_node) {
    // Split the most heavily burdened preexisting host (skew-awareness).
    NodeId victim = 0;
    int64_t victim_bytes = -1;
    for (NodeId n = 0; n < new_node; ++n) {
      if (node_bytes[static_cast<size_t>(n)] > victim_bytes) {
        victim = n;
        victim_bytes = node_bytes[static_cast<size_t>(n)];
      }
    }

    // Collect the victim's directory entries.
    std::vector<size_t> owned;
    for (size_t e = 0; e < directory_.size(); ++e) {
      if (directory_[e] == victim) owned.push_back(e);
    }
    ARRAYDB_CHECK(!owned.empty());

    if (owned.size() == 1 && global_depth_ < kMaxGlobalDepth) {
      // Single bucket: slice the hash space by the next significant bit.
      DoubleDirectory();
      bytes_per_entry = entry_bytes();
      node_bytes.assign(static_cast<size_t>(new_count), 0);
      for (size_t e = 0; e < directory_.size(); ++e) {
        node_bytes[static_cast<size_t>(directory_[e])] += bytes_per_entry[e];
      }
      owned.clear();
      for (size_t e = 0; e < directory_.size(); ++e) {
        if (directory_[e] == victim) owned.push_back(e);
      }
      ARRAYDB_CHECK_EQ(owned.size(), 2u);
    }

    // Partition the victim's entries into two byte-balanced halves
    // (greedy, largest first) and hand the lighter half to the new node —
    // "passing on approximately half of their contents".
    std::sort(owned.begin(), owned.end(), [&](size_t a, size_t b) {
      if (bytes_per_entry[a] != bytes_per_entry[b]) {
        return bytes_per_entry[a] > bytes_per_entry[b];
      }
      return a < b;
    });
    int64_t keep_bytes = 0;
    int64_t give_bytes = 0;
    std::vector<size_t> give;
    for (size_t e : owned) {
      if (keep_bytes <= give_bytes) {
        keep_bytes += bytes_per_entry[e];
      } else {
        give_bytes += bytes_per_entry[e];
        give.push_back(e);
      }
    }
    if (give.empty() && owned.size() >= 2) {
      // Degenerate skew (all bytes in one entry): still hand over an entry
      // so the new node participates in future inserts.
      give.push_back(owned.back());
    }
    for (size_t e : give) {
      directory_[e] = new_node;
      node_bytes[static_cast<size_t>(victim)] -= bytes_per_entry[e];
      node_bytes[static_cast<size_t>(new_node)] += bytes_per_entry[e];
    }
  }
  num_nodes_ = new_count;

  cluster::MovePlan plan;
  for (const auto& rec : cluster.AllChunks()) {
    const NodeId target = Locate(rec.coords);
    if (target != rec.node) {
      plan.Add(cluster::ChunkMove{rec.coords, rec.bytes, rec.node, target});
    }
  }
  return plan;
}

NodeId ExtendibleHashPartitioner::Locate(
    const array::Coordinates& chunk_coords) const {
  return directory_[ChunkHash(chunk_coords) & DirMask()];
}

}  // namespace arraydb::core
