#include "serve/serve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "exec/morsel.h"
#include "telemetry/telemetry.h"

namespace arraydb::serve {

namespace {

size_t TierIndex(Tier tier) { return static_cast<size_t>(tier); }

}  // namespace

const char* TierName(Tier tier) {
  switch (tier) {
    case Tier::kInteractive:
      return "interactive";
    case Tier::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* AdmissionName(Admission admission) {
  switch (admission) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRejectedSessionQueue:
      return "rejected_session_queue";
    case Admission::kRejectedTierSaturated:
      return "rejected_tier_saturated";
    case Admission::kRejectedBytesInFlight:
      return "rejected_bytes_in_flight";
    case Admission::kRejectedUnknownSession:
      return "rejected_unknown_session";
  }
  return "unknown";
}

LatencySummary Summarize(std::vector<double> latencies_minutes) {
  LatencySummary summary;
  summary.count = static_cast<int64_t>(latencies_minutes.size());
  if (latencies_minutes.empty()) return summary;
  std::sort(latencies_minutes.begin(), latencies_minutes.end());
  const auto nearest_rank = [&latencies_minutes](double q) {
    const auto n = latencies_minutes.size();
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<size_t>(rank, 1, n);
    return latencies_minutes[rank - 1];
  };
  constexpr double kMsPerMinute = 60000.0;
  summary.p50_ms = nearest_rank(0.50) * kMsPerMinute;
  summary.p99_ms = nearest_rank(0.99) * kMsPerMinute;
  summary.max_ms = latencies_minutes.back() * kMsPerMinute;
  double sum = 0.0;
  for (double v : latencies_minutes) sum += v;
  summary.mean_ms =
      sum / static_cast<double>(latencies_minutes.size()) * kMsPerMinute;
  return summary;
}

SessionServer::SessionServer(ServerOptions options)
    : options_(options) {
  options_.workers = std::max(1, options_.workers);
  options_.service_dilation = std::max(1.0, options_.service_dilation);
  worker_free_at_.assign(static_cast<size_t>(options_.workers), 0.0);
  worker_running_.assign(static_cast<size_t>(options_.workers), -1);
}

int SessionServer::OpenSession(Tier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  Session session;
  session.tier = tier;
  sessions_.push_back(session);
  return static_cast<int>(sessions_.size()) - 1;
}

exec::ExecContext SessionServer::interactive_context() const {
  exec::ExecContext context = options_.exec_context;
  context.yield = nullptr;
  return context;
}

exec::ExecContext SessionServer::batch_context() const {
  exec::ExecContext context = options_.exec_context;
  context.yield = &gate_;
  return context;
}

// Best ready request under the policy: (tier, seq) with priority tiers,
// plain seq for the FIFO baseline. Parked batch requests keep their
// original seq, so they are the oldest of their tier and resume first
// unless an interactive request is waiting.
bool SessionServer::PickReadyLocked(size_t* out_index) const {
  bool found = false;
  size_t best = 0;
  for (size_t i = 0; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    if (p.state != Pending::State::kReady) continue;
    if (!found) {
      found = true;
      best = i;
      continue;
    }
    const Pending& b = pending_[best];
    if (options_.policy.priority_tiers) {
      if (std::make_pair(TierIndex(p.tier), p.seq) <
          std::make_pair(TierIndex(b.tier), b.seq)) {
        best = i;
      }
    } else if (p.seq < b.seq) {
      best = i;
    }
  }
  if (found) *out_index = best;
  return found;
}

void SessionServer::DispatchLocked() {
  for (size_t w = 0; w < worker_running_.size(); ++w) {
    if (worker_running_[w] >= 0 || worker_free_at_[w] > clock_minutes_) {
      continue;
    }
    size_t index;
    if (!PickReadyLocked(&index)) return;
    Pending& p = pending_[index];
    if (p.start < 0.0) {
      p.start = clock_minutes_;
      sessions_[static_cast<size_t>(p.session)].queued--;
      tier_queued_[TierIndex(p.tier)]--;
    }
    const bool sliced =
        options_.policy.time_slicing && options_.slice_minutes > 0.0;
    const double dt =
        sliced ? std::min(options_.slice_minutes, p.remaining) : p.remaining;
    p.remaining -= dt;
    p.slices++;
    p.state = Pending::State::kRunning;
    worker_running_[w] = static_cast<int64_t>(index);
    worker_free_at_[w] = clock_minutes_ + dt;
  }
}

void SessionServer::CompleteLocked(size_t pending_index) {
  Pending& pending = pending_[pending_index];
  pending.state = Pending::State::kDone;
  inflight_gb_ -= pending.request.scan_gb;
  Completed record;
  record.name = pending.request.name;
  record.session = pending.session;
  record.tier = pending.tier;
  record.arrival_minutes = pending.arrival;
  record.start_minutes = pending.start;
  record.finish_minutes = clock_minutes_;
  record.latency_minutes = clock_minutes_ - pending.arrival;
  record.slices = pending.slices;
  result_.makespan_minutes =
      std::max(result_.makespan_minutes, clock_minutes_);
  TELEM_COUNTER_ADD("serve.completed", 1);
  // Two call sites, not a ternary name: the macros cache the registry
  // lookup per site.
  const int64_t latency_ms = std::llround(record.latency_minutes * 60000.0);
  if (pending.tier == Tier::kInteractive) {
    TELEM_HISTOGRAM_RECORD("serve.latency.interactive_ms", latency_ms);
  } else {
    TELEM_HISTOGRAM_RECORD("serve.latency.batch_ms", latency_ms);
  }
  completion_pending_.push_back(pending_index);
  result_.completed.push_back(std::move(record));
}

void SessionServer::AdvanceLocked(double minutes) {
  DispatchLocked();
  while (true) {
    // Earliest slice completion not past `minutes`; ties break on worker
    // id, so the machine is a deterministic function of the submissions.
    bool found = false;
    size_t next_worker = 0;
    for (size_t w = 0; w < worker_running_.size(); ++w) {
      if (worker_running_[w] < 0) continue;
      if (worker_free_at_[w] > minutes) continue;
      if (!found || worker_free_at_[w] < worker_free_at_[next_worker]) {
        found = true;
        next_worker = w;
      }
    }
    if (!found) break;
    clock_minutes_ = std::max(clock_minutes_, worker_free_at_[next_worker]);
    const size_t index = static_cast<size_t>(worker_running_[next_worker]);
    Pending& p = pending_[index];
    worker_running_[next_worker] = -1;
    if (p.remaining <= 0.0) {
      CompleteLocked(index);
    } else {
      // Slice boundary — the virtual pickup counter. The request goes
      // back through the policy pick: it resumes immediately unless a
      // higher-priority (or older, in FIFO) request is waiting.
      p.state = Pending::State::kReady;
    }
    DispatchLocked();
  }
  if (minutes != std::numeric_limits<double>::infinity()) {
    clock_minutes_ = std::max(clock_minutes_, minutes);
    DispatchLocked();
  }
}

Admission SessionServer::Submit(int session, Request request) {
  std::lock_guard<std::mutex> lock(mu_);
  const Tier tier =
      (session >= 0 && static_cast<size_t>(session) < sessions_.size())
          ? sessions_[static_cast<size_t>(session)].tier
          : Tier::kInteractive;
  TierStats& stats = result_.tiers[TierIndex(tier)];
  if (finished_ || session < 0 ||
      static_cast<size_t>(session) >= sessions_.size()) {
    return Admission::kRejectedUnknownSession;
  }
  stats.submitted++;

  // Admission runs against the live virtual state at the request's
  // effective arrival: queue depths and in-flight bytes as an online
  // controller would see them.
  const double arrival = std::max(request.arrival_minutes, clock_minutes_);
  AdvanceLocked(arrival);

  Session& s = sessions_[static_cast<size_t>(session)];
  // Degraded mode sheds batch queue capacity: fault recovery owns part of
  // the bandwidth, so sustained batch work is admitted against a smaller
  // queue while interactive limits stay untouched.
  int tier_limit = options_.admission.max_tier_queue;
  if (options_.degraded && tier == Tier::kBatch) {
    const double keep =
        1.0 - std::clamp(options_.admission.degraded_batch_shed_fraction,
                         0.0, 1.0);
    tier_limit = static_cast<int>(
        std::floor(keep * static_cast<double>(tier_limit)));
  }
  Admission verdict = Admission::kAdmitted;
  if (s.queued >= options_.admission.max_session_queue) {
    verdict = Admission::kRejectedSessionQueue;
    stats.rejected_session_queue++;
  } else if (tier_queued_[TierIndex(tier)] >= tier_limit) {
    verdict = Admission::kRejectedTierSaturated;
    stats.rejected_tier_saturated++;
    if (tier_queued_[TierIndex(tier)] <
        options_.admission.max_tier_queue) {
      // Only the degraded shed, not the configured limit, turned this away.
      TELEM_COUNTER_ADD("serve.degraded_sheds", 1);
    }
  } else if (inflight_gb_ + request.scan_gb >
             options_.admission.max_inflight_gb) {
    verdict = Admission::kRejectedBytesInFlight;
    stats.rejected_bytes++;
  }
  if (verdict != Admission::kAdmitted) {
    TELEM_COUNTER_ADD("serve.rejected", 1);
    return verdict;
  }

  stats.admitted++;
  TELEM_COUNTER_ADD("serve.admitted", 1);
  Pending p;
  p.session = session;
  p.tier = tier;
  p.seq = static_cast<uint64_t>(pending_.size());
  p.arrival = arrival;
  p.remaining =
      std::max(0.0, request.cost_minutes) * options_.service_dilation;
  p.request = std::move(request);
  inflight_gb_ += p.request.scan_gb;
  result_.peak_inflight_gb =
      std::max(result_.peak_inflight_gb, inflight_gb_);
  s.queued++;
  tier_queued_[TierIndex(tier)]++;
  pending_.push_back(std::move(p));
  DispatchLocked();
  return Admission::kAdmitted;
}

void SessionServer::AdvanceTo(double minutes) {
  std::lock_guard<std::mutex> lock(mu_);
  AdvanceLocked(std::max(minutes, clock_minutes_));
}

ServeResult SessionServer::Finish() {
  std::unique_lock<std::mutex> lock(mu_);
  AdvanceLocked(std::numeric_limits<double>::infinity());
  finished_ = true;

  // Completion records carrying a compute closure, per tier, in
  // completion order (completion_pending_ maps each record back to its
  // pending entry).
  std::array<std::vector<size_t>, kNumTiers> compute_indices;
  for (size_t c = 0; c < result_.completed.size(); ++c) {
    if (pending_[completion_pending_[c]].request.compute) {
      compute_indices[TierIndex(result_.completed[c].tier)].push_back(c);
    }
  }

  // Per-tier latency summaries from the completion records.
  for (size_t t = 0; t < kNumTiers; ++t) {
    std::vector<double> latencies;
    for (const Completed& rec : result_.completed) {
      if (TierIndex(rec.tier) == t) latencies.push_back(rec.latency_minutes);
    }
    result_.tiers[t].latency = Summarize(std::move(latencies));
  }

  ServeResult result = std::move(result_);
  result_ = ServeResult{};
  lock.unlock();

  // Real execution: interactive closures first with the yield gate held
  // (concurrent batch work elsewhere in the process parks at the morsel
  // pickup counter), then batch closures. Each closure writes only its
  // own completion record's slot — slot-stable, so values are
  // bit-identical at every compute_threads setting and independent of
  // how sessions interleaved in virtual time.
  const auto run_tier = [&](Tier tier, const exec::ExecContext& context) {
    const std::vector<size_t>& indices = compute_indices[TierIndex(tier)];
    if (indices.empty()) return;
    exec::MorselOptions morsel;
    morsel.threads = options_.compute_threads;
    morsel.grain_cells = 1;
    exec::MorselScheduler scheduler(morsel);
    scheduler.Run(
        exec::MorselScheduler::Carve(static_cast<int64_t>(indices.size()), 1),
        [&](size_t, int64_t begin, int64_t) {
          const size_t c = indices[static_cast<size_t>(begin)];
          Completed& rec = result.completed[c];
          rec.value =
              pending_[completion_pending_[c]].request.compute(context);
          rec.has_value = true;
        });
  };
  gate_.Pause();
  run_tier(Tier::kInteractive, interactive_context());
  gate_.Resume();
  run_tier(Tier::kBatch, batch_context());
  return result;
}

}  // namespace arraydb::serve
