// Multi-tenant serving layer above exec::QueryEngine and the data-plane
// operators: N concurrent sessions submit queries into per-session bounded
// queues with priority tiers (interactive / batch), an admission
// controller sheds work with a typed rejection — never blocking — when
// queue depth or in-flight bytes exceed limits, and long batch work yields
// to point queries at the morsel scheduler's pickup counter.
//
// The server is a deterministic virtual-time machine, mirroring the
// engine-vs-operators split the rest of the system uses: requests carry a
// simulated service demand in minutes (typically QueryEngine::Simulate's
// pricing of the query), and SessionServer plays W virtual workers
// forward over a discrete-event clock — time-sliced, priority-scheduled,
// admission-controlled. Latency percentiles are therefore machine-
// independent and exactly reproducible, which is what lets CI gate the
// interactive p99 as a hard ceiling (BENCH_serving.json). Real execution
// rides the same contract: an admitted request may carry a compute
// closure, and Finish() runs the closures slot-stable (one result slot
// per request, interactive tier first, batch tier gated by the yield
// point), so results are bit-identical to sequential execution no matter
// how many sessions submitted them. See src/serve/README.md.

#ifndef ARRAYDB_SERVE_SERVE_H_
#define ARRAYDB_SERVE_SERVE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "exec/exec_context.h"

namespace arraydb::serve {

/// Priority tiers. Interactive requests are picked before batch whenever
/// the scheduler chooses, and batch work yields to them at slice
/// boundaries; neither tier can starve the other's admission.
enum class Tier { kInteractive = 0, kBatch = 1 };
inline constexpr int kNumTiers = 2;
const char* TierName(Tier tier);

/// Typed admission outcome. Everything except kAdmitted is a shed — the
/// submitter got an immediate answer, never a blocked thread.
enum class Admission {
  kAdmitted = 0,
  /// The session's own bounded queue is full.
  kRejectedSessionQueue,
  /// The tier's aggregate queue is saturated.
  kRejectedTierSaturated,
  /// Admitting the request's scan bytes would exceed the in-flight cap.
  kRejectedBytesInFlight,
  /// No such session (or the server already finished).
  kRejectedUnknownSession,
};
const char* AdmissionName(Admission admission);
inline bool Admitted(Admission a) { return a == Admission::kAdmitted; }

struct AdmissionLimits {
  /// Maximum queued (admitted, not yet started) requests per session.
  int max_session_queue = 64;
  /// Maximum queued requests per tier across all sessions.
  int max_tier_queue = 512;
  /// Cap on the summed scan_gb of admitted-but-unfinished requests.
  double max_inflight_gb = 1024.0;
  /// Fraction of the batch tier's queue capacity shed while the server runs
  /// degraded (ServerOptions::degraded — fault recovery is consuming
  /// bandwidth): batch admission tightens so retry traffic and interactive
  /// queries keep their headroom. Clamped to [0, 1]; 0 disables shedding.
  double degraded_batch_shed_fraction = 0.5;
};

struct SchedulerPolicy {
  /// Pick ready interactive requests before ready batch requests. Off:
  /// one FIFO by submission order across tiers.
  bool priority_tiers = true;
  /// Run work one slice at a time (ServerOptions::slice_minutes); at each
  /// slice boundary — the virtual pickup counter — a batch request parks
  /// if an interactive request is waiting. Off: run-to-completion.
  bool time_slicing = true;

  /// The single-queue FIFO baseline the bench compares against.
  static SchedulerPolicy Fifo() {
    SchedulerPolicy policy;
    policy.priority_tiers = false;
    policy.time_slicing = false;
    return policy;
  }
};

struct ServerOptions {
  /// Virtual workers serving requests (the pool the tiers share).
  int workers = 4;
  /// Virtual minutes of service per slice when time_slicing is on. The
  /// virtual analogue of a morsel: preemption happens only at slice
  /// boundaries, never mid-slice.
  double slice_minutes = 0.05;
  /// Service-time dilation applied to every request (>= 1): the three-way
  /// arbiter's query_dilation, charging migration intrusion to service.
  double service_dilation = 1.0;
  /// Degraded mode: fault recovery (retries, replans, aborts) is active in
  /// the migration plane, so the batch tier's queue capacity is shed by
  /// AdmissionLimits::degraded_batch_shed_fraction. Interactive admission
  /// and all scheduling are untouched — results stay bit-identical; only
  /// batch shed decisions can differ.
  bool degraded = false;
  AdmissionLimits admission;
  SchedulerPolicy policy;
  /// Base execution context for compute closures; Finish() derives the
  /// batch variant by attaching the server's yield gate.
  exec::ExecContext exec_context;
  /// Threads running compute closures in Finish() (slot-stable; results
  /// are identical at every setting).
  int compute_threads = 1;
};

/// One query submitted to a session. Service demand and scan bytes come
/// from the engine's pricing of the underlying QuerySpec.
struct Request {
  std::string name;
  /// Simulated service minutes (before dilation). Clamped to >= 0.
  double cost_minutes = 0.0;
  /// Bytes the request holds in flight while admitted, in GB.
  double scan_gb = 0.0;
  /// Requested arrival time on the virtual clock; the effective arrival
  /// is max(arrival_minutes, current clock) — time never runs backwards.
  double arrival_minutes = 0.0;
  /// Optional real work, run by Finish() under the server's contexts.
  /// Must be a pure function of (its inputs, the context) — the
  /// determinism contract makes the result context-independent.
  std::function<double(const exec::ExecContext&)> compute;
};

/// A served request's lifecycle record, in completion order.
struct Completed {
  std::string name;
  int session = -1;
  Tier tier = Tier::kInteractive;
  double arrival_minutes = 0.0;
  double start_minutes = 0.0;   // First slice began.
  double finish_minutes = 0.0;  // Last slice ended.
  double latency_minutes = 0.0;  // finish - arrival (queueing + service).
  int slices = 1;
  /// Set by Finish() when the request carried a compute closure.
  bool has_value = false;
  double value = 0.0;
};

/// Nearest-rank latency percentiles, reported in simulated milliseconds
/// (1 virtual minute = 60000 ms).
struct LatencySummary {
  int64_t count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

/// Builds the summary from raw latencies in virtual minutes.
LatencySummary Summarize(std::vector<double> latencies_minutes);

/// Per-tier accounting.
struct TierStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_session_queue = 0;
  int64_t rejected_tier_saturated = 0;
  int64_t rejected_bytes = 0;
  LatencySummary latency;

  int64_t rejected() const {
    return rejected_session_queue + rejected_tier_saturated + rejected_bytes;
  }
};

struct ServeResult {
  std::array<TierStats, kNumTiers> tiers;
  std::vector<Completed> completed;
  /// Virtual time the last admitted request finished.
  double makespan_minutes = 0.0;
  /// Peak summed scan_gb of admitted-but-unfinished requests.
  double peak_inflight_gb = 0.0;

  const TierStats& tier(Tier t) const {
    return tiers[static_cast<size_t>(t)];
  }
  int64_t total_rejected() const {
    return tiers[0].rejected() + tiers[1].rejected();
  }
};

/// The serving layer's session front door and scheduler. Thread-safe: any
/// number of threads may open sessions and submit concurrently (one lock
/// serializes the virtual machine; each step is O(log workers)).
///
/// Lifecycle: OpenSession × N → Submit (each returns its typed admission
/// verdict immediately, evaluated against live virtual state) → Finish()
/// drains the virtual machine, runs compute closures, and returns the
/// result. One-shot: after Finish() every Submit is rejected with
/// kRejectedUnknownSession.
class SessionServer {
 public:
  explicit SessionServer(ServerOptions options);

  /// Opens a session in `tier`; returns its id. Sessions are never closed
  /// individually — the server is per-scenario, not long-lived.
  int OpenSession(Tier tier);

  /// Admission-checks and, if admitted, enqueues the request. The check
  /// runs against the virtual state at the request's effective arrival
  /// time (the machine is first advanced there), so a shed decision
  /// reflects the queue depths and in-flight bytes an online controller
  /// would see. Returns immediately in every case.
  Admission Submit(int session, Request request);

  /// Advances the virtual machine to `minutes` (processing every start,
  /// slice, and completion event up to it). Submit advances implicitly;
  /// this is for tests and live pacing.
  void AdvanceTo(double minutes);

  /// Drains all admitted work, runs compute closures (interactive tier
  /// first, then batch under the yield gate), and returns the result.
  ServeResult Finish();

  /// The gate batch-tier compute runs under: held while interactive
  /// compute is pending, so batch morsel workers park at the pickup
  /// counter. Exposed for callers running their own batch work.
  const exec::YieldPoint& yield_gate() const { return gate_; }

  /// Context variants for compute closures: batch carries the yield gate.
  exec::ExecContext interactive_context() const;
  exec::ExecContext batch_context() const;

  const ServerOptions& options() const { return options_; }

 private:
  // An admitted request riding the virtual machine.
  struct Pending {
    enum class State { kReady, kRunning, kDone };
    Request request;
    int session = -1;
    Tier tier = Tier::kInteractive;
    uint64_t seq = 0;         // Submission order; the FIFO/park tiebreak.
    double arrival = 0.0;     // Effective (clock-clamped) arrival.
    double remaining = 0.0;   // Dilated service minutes left.
    double start = -1.0;      // First slice start; -1 until started.
    int slices = 0;
    State state = State::kReady;
  };
  struct Session {
    Tier tier = Tier::kInteractive;
    int queued = 0;  // Admitted, not yet started.
  };

  void AdvanceLocked(double minutes);
  void DispatchLocked();
  bool PickReadyLocked(size_t* out_index) const;
  void CompleteLocked(size_t pending_index);

  ServerOptions options_;
  exec::YieldPoint gate_;

  mutable std::mutex mu_;
  bool finished_ = false;
  double clock_minutes_ = 0.0;
  std::vector<Session> sessions_;
  std::vector<Pending> pending_;
  ServeResult result_;
  // pending_ index of result_.completed[c] — how Finish() finds each
  // completion record's compute closure.
  std::vector<size_t> completion_pending_;
  double inflight_gb_ = 0.0;
  std::array<int, kNumTiers> tier_queued_{};
  // Virtual workers, index = worker id: when the worker runs a slice,
  // running_[w] is the pending_ index and free_at_[w] the slice end;
  // idle workers hold running_[w] = -1.
  std::vector<double> worker_free_at_;
  std::vector<int64_t> worker_running_;
};

}  // namespace arraydb::serve

#endif  // ARRAYDB_SERVE_SERVE_H_
