#include "simd/dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace arraydb::simd {
namespace {

// -1 = no override; otherwise the int value of the forced DispatchLevel.
std::atomic<int> g_override{-1};

bool CpuSupportsAvx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

DispatchLevel Detect() {
  if (!CompiledWithAvx2() || !CpuSupportsAvx2()) return DispatchLevel::kScalar;
  const char* env = std::getenv("ARRAYDB_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return DispatchLevel::kScalar;
  }
  return DispatchLevel::kAvx2;
}

}  // namespace

const char* ToString(DispatchLevel level) {
  switch (level) {
    case DispatchLevel::kScalar:
      return "scalar";
    case DispatchLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool CompiledWithAvx2() {
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  return true;
#else
  return false;
#endif
}

DispatchLevel DetectedLevel() {
  static const DispatchLevel level = Detect();
  return level;
}

DispatchLevel ActiveLevel() {
  const int override = g_override.load(std::memory_order_relaxed);
  if (override >= 0) return static_cast<DispatchLevel>(override);
  return DetectedLevel();
}

bool ForceDispatch(DispatchLevel level) {
  if (level == DispatchLevel::kAvx2 &&
      (!CompiledWithAvx2() || !CpuSupportsAvx2())) {
    return false;
  }
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
  return true;
}

void ClearDispatchOverride() {
  g_override.store(-1, std::memory_order_relaxed);
}

ScopedDispatch::ScopedDispatch(DispatchLevel level)
    : previous_(g_override.load(std::memory_order_relaxed)),
      ok_(ForceDispatch(level)) {}

ScopedDispatch::~ScopedDispatch() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace arraydb::simd
