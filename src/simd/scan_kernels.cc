#include "simd/scan_kernels.h"

#include <algorithm>

#include "simd/dispatch.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace arraydb::simd {

namespace {

// Resolves the dispatch level once per kernel call and counts which code
// path serves it (simd.dispatch.avx2_calls / scalar_calls). Observe-only:
// the returned level is exactly ActiveLevel(), counted or not.
inline DispatchLevel CountedActiveLevel() {
  const DispatchLevel level = ActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) {
    TELEM_COUNTER_ADD("simd.dispatch.avx2_calls", 1);
    return level;
  }
#endif
  TELEM_COUNTER_ADD("simd.dispatch.scalar_calls", 1);
  return level;
}

}  // namespace

namespace scalar {

void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out) {
  for (size_t i = 0; i < count; ++i) {
    const int64_t* pos = coords + i * ndims;
    // Branchless accumulation: predictable on mixed data and the semantic
    // twin of the AVX2 compare+mask path.
    bool inside = true;
    for (size_t d = 0; d < ndims; ++d) {
      inside &= (pos[d] >= lo[d]) & (pos[d] <= hi[d]);
    }
    out[i] = inside ? 1 : 0;
  }
}

double Sum(const double* v, size_t n) {
  // Mirrors the AVX2 accumulation order exactly (see the header contract):
  // four lane accumulators over the vectorizable prefix, combined as
  // ((acc0 + acc2) + (acc1 + acc3)), then the tail in index order.
  double acc[4] = {0.0, 0.0, 0.0, 0.0};
  const size_t n4 = n - n % 4;
  for (size_t i = 0; i < n4; i += 4) {
    acc[0] += v[i];
    acc[1] += v[i + 1];
    acc[2] += v[i + 2];
    acc[3] += v[i + 3];
  }
  double sum = (acc[0] + acc[2]) + (acc[1] + acc[3]);
  for (size_t i = n4; i < n; ++i) sum += v[i];
  return sum;
}

double Min(const double* v, size_t n) {
  double m = v[0];
  for (size_t i = 1; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

double Max(const double* v, size_t n) {
  double m = v[0];
  for (size_t i = 1; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out) {
  const size_t count = boxes.count;
  std::fill(out, out + count, uint8_t{1});
  for (size_t d = 0; d < boxes.ndims; ++d) {
    const int64_t* lo_d = boxes.lo.data() + d * count;
    const int64_t* hi_d = boxes.hi.data() + d * count;
    for (size_t c = 0; c < count; ++c) {
      out[c] &= (qhi[d] >= lo_d[c]) & (qlo[d] <= hi_d[c]);
    }
  }
}

}  // namespace scalar

void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out) {
  ARRAYDB_CHECK_GE(ndims, 1u);
  [[maybe_unused]] const DispatchLevel level = CountedActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) {
    avx2::RangeMask(coords, count, ndims, lo, hi, out);
    return;
  }
#endif
  scalar::RangeMask(coords, count, ndims, lo, hi, out);
}

double Sum(const double* v, size_t n) {
  [[maybe_unused]] const DispatchLevel level = CountedActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) return avx2::Sum(v, n);
#endif
  return scalar::Sum(v, n);
}

double Min(const double* v, size_t n) {
  ARRAYDB_CHECK_GE(n, 1u);
  [[maybe_unused]] const DispatchLevel level = CountedActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) return avx2::Min(v, n);
#endif
  return scalar::Min(v, n);
}

double Max(const double* v, size_t n) {
  ARRAYDB_CHECK_GE(n, 1u);
  [[maybe_unused]] const DispatchLevel level = CountedActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) return avx2::Max(v, n);
#endif
  return scalar::Max(v, n);
}

int64_t MaskCount(const uint8_t* mask, size_t n) {
  int64_t count = 0;
  for (size_t i = 0; i < n; ++i) count += mask[i] != 0;
  return count;
}

void MaskToSpans(const uint8_t* mask, size_t n,
                 std::vector<std::pair<uint32_t, uint32_t>>* spans) {
  uint32_t run_begin = 0;
  bool in_run = false;
  for (size_t i = 0; i < n; ++i) {
    const bool inside = mask[i] != 0;
    if (inside && !in_run) {
      run_begin = static_cast<uint32_t>(i);
      in_run = true;
    } else if (!inside && in_run) {
      spans->emplace_back(run_begin, static_cast<uint32_t>(i));
      in_run = false;
    }
  }
  if (in_run) spans->emplace_back(run_begin, static_cast<uint32_t>(n));
}

void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out) {
  [[maybe_unused]] const DispatchLevel level = CountedActiveLevel();
#ifdef ARRAYDB_SIMD_HAVE_AVX2
  if (level == DispatchLevel::kAvx2) {
    avx2::BBoxIntersectMask(boxes, qlo, qhi, out);
    return;
  }
#endif
  scalar::BBoxIntersectMask(boxes, qlo, qhi, out);
}

}  // namespace arraydb::simd
