// Runtime kernel dispatch for the SIMD scan layer.
//
// Every kernel in scan_kernels.h has a portable scalar implementation and,
// when the build enables it, an AVX2 implementation. The variant is chosen
// per call from ActiveLevel():
//
//   1. a process-wide override installed by ForceDispatch() (tests, benches,
//      and the ARRAYDB_SIMD=scalar environment escape hatch), else
//   2. the best level the CPU supports among those compiled in.
//
// Both variants of every kernel are bit-identical by contract — including
// the floating-point reductions, whose scalar fallbacks reproduce the AVX2
// lane-accumulation order — so the dispatch choice never changes results,
// only throughput.

#ifndef ARRAYDB_SIMD_DISPATCH_H_
#define ARRAYDB_SIMD_DISPATCH_H_

namespace arraydb::simd {

enum class DispatchLevel {
  kScalar = 0,
  kAvx2 = 1,
};

const char* ToString(DispatchLevel level);

/// True when the AVX2 kernel translation unit was compiled in (x86-64 build
/// without SIMD_FORCE_SCALAR). Says nothing about the running CPU.
bool CompiledWithAvx2();

/// Best level usable on this machine: compiled in AND supported by the CPU.
/// Honors ARRAYDB_SIMD=scalar in the environment (checked once, at the
/// first call). Cached; cheap to call from kernel hot paths.
DispatchLevel DetectedLevel();

/// Level the kernels will actually use: the ForceDispatch override if one is
/// installed, otherwise DetectedLevel().
DispatchLevel ActiveLevel();

/// Installs a process-wide dispatch override. Returns false (and installs
/// nothing) if `level` is not usable on this machine — forcing kAvx2 on a
/// CPU without it, or in a force-scalar build, fails rather than clamps.
bool ForceDispatch(DispatchLevel level);

/// Removes the override; kernels return to DetectedLevel().
void ClearDispatchOverride();

/// RAII dispatch override for tests and benches; nestable — the destructor
/// restores whatever override (or none) was active at construction. `ok()`
/// reports whether the requested level was actually installed.
class ScopedDispatch {
 public:
  explicit ScopedDispatch(DispatchLevel level);
  ~ScopedDispatch();
  ScopedDispatch(const ScopedDispatch&) = delete;
  ScopedDispatch& operator=(const ScopedDispatch&) = delete;
  bool ok() const { return ok_; }

 private:
  int previous_;  // Raw override slot value to restore (-1 = none).
  bool ok_;
};

}  // namespace arraydb::simd

#endif  // ARRAYDB_SIMD_DISPATCH_H_
