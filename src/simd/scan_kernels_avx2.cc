// AVX2 kernel variants. This translation unit is the only one compiled with
// -mavx2 (see CMakeLists.txt); everything is guarded so a force-scalar or
// non-x86 build compiles it to an empty TU. The kernels are gather-free:
// RangeMask loads the interleaved coordinate buffer contiguously and
// compares against precomputed per-dimension bound patterns whose lanes
// follow the interleaving period, and BBoxIntersectMask runs over the
// dimension-major bbox SoA.

#include "simd/scan_kernels.h"

#ifdef ARRAYDB_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <cstring>

namespace arraydb::simd::avx2 {

namespace {

// 4-bit verdict nibble -> four 0/1 output bytes (little-endian).
constexpr uint32_t kNibbleBytes[16] = {
    0x00000000u, 0x00000001u, 0x00000100u, 0x00000101u,
    0x00010000u, 0x00010001u, 0x00010100u, 0x00010101u,
    0x01000000u, 0x01000001u, 0x01000100u, 0x01000101u,
    0x01010000u, 0x01010001u, 0x01010100u, 0x01010101u,
};

// Rank-specialized RangeMask. One compare lane per coordinate value: lane
// (4v + L) of pattern vector v holds the bound of dimension
// (4v + L) % kNdims, so a straight contiguous sweep of the interleaved
// buffer lines every coordinate up with its own dimension's bounds. A full
// pattern period covers lcm(kNdims, 4) lanes = kCells whole cells;
// per-cell verdicts are assembled from the compare sign bits. With the
// rank a compile-time constant every pattern index, shift, and loop bound
// constant-folds and the per-period body unrolls flat.
template <size_t kNdims>
void RangeMaskFixed(const int64_t* coords, size_t count, const int64_t* lo,
                    const int64_t* hi, uint8_t* out) {
  constexpr size_t kPeriodLanes =
      kNdims % 4 == 0 ? kNdims : (kNdims % 2 == 0 ? 2 * kNdims : 4 * kNdims);
  constexpr size_t kVecs = kPeriodLanes / 4;
  constexpr size_t kCells = kPeriodLanes / kNdims;

  __m256i lo_pat[kVecs];
  __m256i hi_pat[kVecs];
  for (size_t v = 0; v < kVecs; ++v) {
    alignas(32) int64_t lo_lanes[4];
    alignas(32) int64_t hi_lanes[4];
    for (size_t lane = 0; lane < 4; ++lane) {
      const size_t d = (4 * v + lane) % kNdims;
      lo_lanes[lane] = lo[d];
      hi_lanes[lane] = hi[d];
    }
    lo_pat[v] = _mm256_load_si256(reinterpret_cast<const __m256i*>(lo_lanes));
    hi_pat[v] = _mm256_load_si256(reinterpret_cast<const __m256i*>(hi_lanes));
  }

  // One period = kPeriodLanes compare lanes = kCells cell verdicts.
  const auto one_period = [&](const int64_t* base, uint8_t* o) {
    uint64_t fail_bits = 0;
    for (size_t v = 0; v < kVecs; ++v) {
      const __m256i c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(base + 4 * v));
      const __m256i fail = _mm256_or_si256(_mm256_cmpgt_epi64(lo_pat[v], c),
                                           _mm256_cmpgt_epi64(c, hi_pat[v]));
      fail_bits |= static_cast<uint64_t>(
                       _mm256_movemask_pd(_mm256_castsi256_pd(fail)))
                   << (4 * v);
    }
    if constexpr (kCells == 1) {
      *o = fail_bits == 0 ? 1 : 0;
    } else {
      uint64_t u = ~fail_bits;
      for (size_t s = 1; s < kNdims; ++s) u &= u >> 1;
      if constexpr (kCells == 4) {
        const uint32_t nibble =
            static_cast<uint32_t>((u & 1) | ((u >> (kNdims - 1)) & 2) |
                                  ((u >> (2 * kNdims - 2)) & 4) |
                                  ((u >> (3 * kNdims - 3)) & 8));
        std::memcpy(o, &kNibbleBytes[nibble], 4);
      } else {  // kCells == 2
        o[0] = static_cast<uint8_t>(u & 1);
        o[1] = static_cast<uint8_t>((u >> kNdims) & 1);
      }
    }
  };

  const size_t num_periods = count / kCells;
  size_t p = 0;
  // Two periods per iteration: the period chains are independent, so the
  // out-of-order core overlaps them.
  for (; p + 2 <= num_periods; p += 2) {
    one_period(coords + p * kPeriodLanes, out + p * kCells);
    one_period(coords + (p + 1) * kPeriodLanes, out + (p + 1) * kCells);
  }
  for (; p < num_periods; ++p) {
    one_period(coords + p * kPeriodLanes, out + p * kCells);
  }
  const size_t done = num_periods * kCells;
  if (done < count) {
    scalar::RangeMask(coords + done * kNdims, count - done, kNdims, lo, hi,
                      out + done);
  }
}

}  // namespace

void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out) {
  switch (ndims) {  // Every supported rank runs a constant-folded body.
    case 1:
      return RangeMaskFixed<1>(coords, count, lo, hi, out);
    case 2:
      return RangeMaskFixed<2>(coords, count, lo, hi, out);
    case 3:
      return RangeMaskFixed<3>(coords, count, lo, hi, out);
    case 4:
      return RangeMaskFixed<4>(coords, count, lo, hi, out);
    case 5:
      return RangeMaskFixed<5>(coords, count, lo, hi, out);
    case 6:
      return RangeMaskFixed<6>(coords, count, lo, hi, out);
    case 7:
      return RangeMaskFixed<7>(coords, count, lo, hi, out);
    case 8:
      return RangeMaskFixed<8>(coords, count, lo, hi, out);
    default:
      // No schema in the system exceeds rank 8 (HilbertCodec tops out at
      // 6); keep higher ranks on the always-correct scalar path rather
      // than carrying an untestable generic vector variant.
      scalar::RangeMask(coords, count, ndims, lo, hi, out);
      return;
  }
}

double Sum(const double* v, size_t n) {
  __m256d vacc = _mm256_setzero_pd();
  const size_t n4 = n - n % 4;
  for (size_t i = 0; i < n4; i += 4) {
    vacc = _mm256_add_pd(vacc, _mm256_loadu_pd(v + i));
  }
  // Combine lanes as ((acc0 + acc2) + (acc1 + acc3)) — the contract the
  // scalar fallback mirrors.
  const __m128d lo128 = _mm256_castpd256_pd128(vacc);
  const __m128d hi128 = _mm256_extractf128_pd(vacc, 1);
  const __m128d pair = _mm_add_pd(lo128, hi128);
  double sum =
      _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
  for (size_t i = n4; i < n; ++i) sum += v[i];
  return sum;
}

// Lane combines and tails below use plain ternaries rather than
// std::min/std::max: instantiating those inline templates here would emit
// VEX-encoded comdat copies of symbols the scalar TU also uses, which in an
// unoptimized build could leak AVX instructions into the scalar dispatch
// path on a pre-AVX CPU.

double Min(const double* v, size_t n) {
  if (n < 4) return scalar::Min(v, n);
  __m256d vm = _mm256_loadu_pd(v);
  const size_t n4 = n - n % 4;
  for (size_t i = 4; i < n4; i += 4) {
    vm = _mm256_min_pd(vm, _mm256_loadu_pd(v + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vm);
  const double m01 = lanes[0] < lanes[1] ? lanes[0] : lanes[1];
  const double m23 = lanes[2] < lanes[3] ? lanes[2] : lanes[3];
  double m = m01 < m23 ? m01 : m23;
  for (size_t i = n4; i < n; ++i) m = v[i] < m ? v[i] : m;
  return m;
}

double Max(const double* v, size_t n) {
  if (n < 4) return scalar::Max(v, n);
  __m256d vm = _mm256_loadu_pd(v);
  const size_t n4 = n - n % 4;
  for (size_t i = 4; i < n4; i += 4) {
    vm = _mm256_max_pd(vm, _mm256_loadu_pd(v + i));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vm);
  const double m01 = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  const double m23 = lanes[2] > lanes[3] ? lanes[2] : lanes[3];
  double m = m01 > m23 ? m01 : m23;
  for (size_t i = n4; i < n; ++i) m = v[i] > m ? v[i] : m;
  return m;
}

void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out) {
  const size_t count = boxes.count;
  const size_t ndims = boxes.ndims;
  const size_t c4 = count - count % 4;
  for (size_t c = 0; c < c4; c += 4) {
    __m256i ok = _mm256_set1_epi64x(-1);
    for (size_t d = 0; d < ndims; ++d) {
      const __m256i lo_c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(boxes.lo.data() + d * count + c));
      const __m256i hi_c = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(boxes.hi.data() + d * count + c));
      const __m256i fail =
          _mm256_or_si256(_mm256_cmpgt_epi64(lo_c, _mm256_set1_epi64x(qhi[d])),
                          _mm256_cmpgt_epi64(_mm256_set1_epi64x(qlo[d]), hi_c));
      ok = _mm256_andnot_si256(fail, ok);
    }
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(ok));
    for (size_t i = 0; i < 4; ++i) {
      out[c + i] = static_cast<uint8_t>((mask >> i) & 1);
    }
  }
  for (size_t c = c4; c < count; ++c) {
    bool ok = true;
    for (size_t d = 0; d < ndims; ++d) {
      ok &= (qhi[d] >= boxes.lo[d * count + c]) &
            (qlo[d] <= boxes.hi[d * count + c]);
    }
    out[c] = ok ? 1 : 0;
  }
}

}  // namespace arraydb::simd::avx2

#endif  // ARRAYDB_SIMD_HAVE_AVX2
