// Vectorized scan kernels over the columnar chunk layout (ROADMAP: "SIMD
// scan kernels"). Three kernel families back the exec operators:
//
//   * RangeMask — the per-dimension range predicate behind FilterBoxSpans:
//     a 0/1 byte per cell of a packed (interleaved, ndims-stride) coordinate
//     buffer, 1 iff every dimension lies in [lo[d], hi[d]].
//   * Sum / Min / Max — attribute reductions over packed double columns,
//     behind AttrQuantile's q=0/q=1 fast paths and GroupBySum's
//     chunk-per-bin fast path. MaskCount is the matching count reduction
//     over predicate masks.
//   * BBoxIntersectMask — bbox-prune checks across many chunks at once,
//     over a dimension-major SoA of chunk bounding boxes.
//
// Dispatch (see dispatch.h) picks the AVX2 or scalar variant at runtime.
// Every kernel is bit-identical across variants: the integer kernels are
// trivially exact, and Sum's scalar fallback reproduces the AVX2
// four-accumulator lane order (documented on the declaration). Kernels
// assume NaN-free inputs (the storage layer only produces finite values).

#ifndef ARRAYDB_SIMD_SCAN_KERNELS_H_
#define ARRAYDB_SIMD_SCAN_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace arraydb::simd {

/// Range predicate over packed coordinates: cell i occupies
/// coords[i*ndims .. i*ndims+ndims). Writes out[i] = 1 iff
/// lo[d] <= coords[i*ndims+d] <= hi[d] for every d, else 0.
/// `out` must hold `count` bytes. ndims must be >= 1.
void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out);

/// Sum of v[0..n). Deterministic lane-split order, identical across
/// dispatch variants: with accL = v[L] + v[L+4] + v[L+8] + ... (L in 0..3,
/// over the first n - n%4 elements), the result is
/// ((acc0 + acc2) + (acc1 + acc3)) + tail elements added in index order.
/// This is the AVX2 accumulation order; the scalar variant mirrors it.
double Sum(const double* v, size_t n);

/// Minimum / maximum of v[0..n). n must be >= 1. Exact (order-independent
/// for finite inputs), with one caveat alongside the NaN-free assumption:
/// on a +0.0 / -0.0 tie the returned zero's sign is variant-dependent (the
/// two compare equal, but AVX2 min/max break ties by operand order).
double Min(const double* v, size_t n);
double Max(const double* v, size_t n);

/// Number of nonzero bytes in mask[0..n) (count reduction over a predicate
/// mask).
int64_t MaskCount(const uint8_t* mask, size_t n);

/// Converts a 0/1 byte mask into maximal half-open [begin, end) runs of
/// nonzero bytes, appended to `spans` in ascending order.
void MaskToSpans(const uint8_t* mask, size_t n,
                 std::vector<std::pair<uint32_t, uint32_t>>* spans);

/// Dimension-major SoA of `count` bounding boxes: lo[d * count + c] and
/// hi[d * count + c] bound box c in dimension d, inclusive on both ends.
struct BBoxSoA {
  size_t count = 0;
  size_t ndims = 0;
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;

  /// Pre-sizes the arrays for `count` boxes of rank `ndims`.
  void Resize(size_t count_in, size_t ndims_in) {
    count = count_in;
    ndims = ndims_in;
    lo.assign(count * ndims, 0);
    hi.assign(count * ndims, 0);
  }
};

/// Batch bbox-prune: out[c] = 1 iff box c of `boxes` intersects the query
/// box [qlo, qhi] (inclusive) in every dimension. `out` must hold
/// boxes.count bytes; qlo/qhi hold boxes.ndims values.
void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out);

// -- Variant entry points (exposed for equivalence tests; operators should
// call the dispatching functions above) ------------------------------------

namespace scalar {
void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out);
double Sum(const double* v, size_t n);
double Min(const double* v, size_t n);
double Max(const double* v, size_t n);
void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out);
}  // namespace scalar

#ifdef ARRAYDB_SIMD_HAVE_AVX2
namespace avx2 {
void RangeMask(const int64_t* coords, size_t count, size_t ndims,
               const int64_t* lo, const int64_t* hi, uint8_t* out);
double Sum(const double* v, size_t n);
double Min(const double* v, size_t n);
double Max(const double* v, size_t n);
void BBoxIntersectMask(const BBoxSoA& boxes, const int64_t* qlo,
                       const int64_t* qhi, uint8_t* out);
}  // namespace avx2
#endif

}  // namespace arraydb::simd

#endif  // ARRAYDB_SIMD_SCAN_KERNELS_H_
