#include "reorg/reorg_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace arraydb::reorg {
namespace {

// FNV-1a over one move's metadata: stands in for the checksum a real
// migration computes over the bytes it copies. Doubles as the move identity
// mixed into fault draws, so a move keeps its fault fate under re-sharding.
uint64_t MoveDigest(const cluster::ChunkMove& m) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (const int64_t c : m.coords) mix(static_cast<uint64_t>(c));
  mix(static_cast<uint64_t>(m.bytes));
  mix(static_cast<uint64_t>(m.from));
  mix(static_cast<uint64_t>(m.to));
  return h;
}

constexpr double kMinutesPerMs = 1.0 / 60000.0;

}  // namespace

IncrementalReorgEngine::IncrementalReorgEngine(
    cluster::Cluster* cluster, const cluster::CostModel* cost_model,
    ReorgOptions options)
    : cluster_(cluster), cost_model_(cost_model),
      options_(std::move(options)) {
  ARRAYDB_CHECK(cluster_ != nullptr);
  ARRAYDB_CHECK(cost_model_ != nullptr);
  copy_threads_ = util::ResolveThreadCount(options_.copy_threads);
  virtual_minutes_ = std::isfinite(options_.virtual_start_minutes)
                         ? options_.virtual_start_minutes
                         : 0.0;
}

int64_t IncrementalReorgEngine::NextBudgetBytes() {
  double budget_gb = options_.increment_gb;
  if (options_.budget_fn) {
    BudgetRequest request;
    request.increment_index = summary_.increments;
    request.remaining_gb = summary_.moved_gb - summary_.committed_gb;
    budget_gb = options_.budget_fn(request);
  }
  if (!std::isfinite(budget_gb) || budget_gb <= 0.0) return 1;
  const double bytes = util::GbToBytes(budget_gb);
  // llround is undefined past int64 range; a grant that large means "no
  // byte limit".
  if (bytes >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(bytes)));
}

util::Status IncrementalReorgEngine::Begin(const cluster::MovePlan& plan,
                                           cluster::NodeId first_new_node) {
  if (active()) {
    return util::FailedPrecondition("reorg engine already active");
  }
  if (!options_.budget_fn && !(options_.increment_gb > 0.0 &&
                               std::isfinite(options_.increment_gb))) {
    return util::InvalidArgument(
        "ReorgOptions.increment_gb must be positive and finite when no "
        "budget callback is set");
  }
  if (!(options_.increment_timeout_minutes > 0.0)) {
    return util::InvalidArgument(
        "ReorgOptions.increment_timeout_minutes must be positive");
  }
  // Structural screen before any staging: malformed plans (self-moves,
  // out-of-range nodes, non-positive sizes, duplicate chunks) are caller
  // bugs, rejected with InvalidArgument naming the offending move.
  if (auto status = cluster::ValidatePlanShape(plan, cluster_->num_nodes());
      !status.ok()) {
    return util::Annotate(status, "reorg plan rejected at Begin");
  }
  if (auto status = cluster_->BeginApply(plan); !status.ok()) return status;
  TELEM_COUNTER_ADD("reorg.engine.plans", 1);
  // Every Begin — including an abort-and-restart — advances the plan
  // ordinal, so a restarted plan draws fresh fault fates instead of
  // deterministically re-hitting the ones that killed it (livelock).
  plan_ordinal_ = options_.plan_ordinal_base + begins_;
  begins_ += 1;
  first_new_node_ = first_new_node;
  summary_ = ReorgSummary();
  summary_.only_to_new_nodes = plan.OnlyToNodesAtOrAbove(first_new_node);
  const auto cost = cost_model_->ReorgMinutes(plan, cluster_->num_nodes());
  summary_.work_minutes = cost.minutes;
  summary_.moved_gb = cost.moved_gb;
  summary_.chunks_moved = cost.chunks_moved;
  return util::Status::Ok();
}

bool IncrementalReorgEngine::IsDead(cluster::NodeId node) const {
  return std::binary_search(dead_nodes_.begin(), dead_nodes_.end(), node);
}

double IncrementalReorgEngine::BackoffMsBeforeRetry(int k) const {
  const double base = std::max(0.0, options_.retry.base_backoff_ms);
  const double mult = std::max(1.0, options_.retry.backoff_multiplier);
  const double cap = std::max(base, options_.retry.max_backoff_ms);
  return std::min(base * std::pow(mult, static_cast<double>(k - 1)), cap);
}

util::Status IncrementalReorgEngine::ProcessNodeDeaths() {
  if (options_.injector == nullptr) return util::Status::Ok();
  // Record newly due deaths (the sorted insert keeps iteration order
  // deterministic under lint rule R1).
  for (const cluster::NodeId dead :
       options_.injector->DeadNodesAt(virtual_minutes_)) {
    if (IsDead(dead)) continue;
    dead_nodes_.insert(
        std::lower_bound(dead_nodes_.begin(), dead_nodes_.end(), dead), dead);
    summary_.node_deaths += 1;
    summary_.faults_injected += 1;
    TELEM_COUNTER_ADD("reorg.engine.node_deaths", 1);
  }
  // Re-check *every* known death against the staged moves, not just the new
  // ones: a plan begun after an earlier abort can stage moves targeting a
  // node that died long ago.
  for (const cluster::NodeId dead : dead_nodes_) {
    if (!cluster_->reorg_active()) break;
    if (cluster_->ReorgSourcedFromNode(dead)) {
      // The fault model covers migration destinations; losing authoritative
      // source data is unrecoverable without replication.
      return util::Unavailable(util::StrFormat(
          "node %d holds source replicas of the active plan; its loss is "
          "unrecoverable without replication",
          dead));
    }
    if (!cluster_->ReorgTargetsNode(dead)) continue;
    if (auto status = ReplanAroundDeadNode(dead); !status.ok()) return status;
  }
  return util::Status::Ok();
}

util::Status IncrementalReorgEngine::ReplanAroundDeadNode(
    cluster::NodeId dead) {
  TELEM_SPAN("reorg.engine.replan");
  // Step never reaches here with a slice in flight, but a caller-triggered
  // replan might; the copy phase is restartable, so cancelling is safe.
  if (cluster_->increment_in_flight()) cluster_->CancelIncrement();

  // Surviving destination candidates: the new nodes (>= first_new_node_, so
  // rerouting preserves the Table-1 incremental property by construction)
  // minus the dead set.
  const cluster::NodeId lo = std::max<cluster::NodeId>(0, first_new_node_);
  std::vector<cluster::NodeId> candidates;
  for (cluster::NodeId n = lo; n < cluster_->num_nodes(); ++n) {
    if (n == dead || IsDead(n)) continue;
    candidates.push_back(n);
  }
  if (candidates.empty()) {
    return util::Annotate(
        util::Unavailable("no surviving new nodes to receive the moves"),
        util::StrFormat("replanning around dead node %d", dead));
  }

  // Deterministic least-projected-load assignment: seed with the live byte
  // accounting, accumulate as moves are assigned; ties go to the lowest id
  // (candidates are ascending).
  std::vector<int64_t> load;
  load.reserve(candidates.size());
  for (const cluster::NodeId c : candidates) {
    load.push_back(cluster_->NodeBytes(c));
  }
  const auto pick = [&candidates, &load](const cluster::ChunkMove& m) {
    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (load[i] < load[best]) best = i;
    }
    load[best] += m.bytes;
    return candidates[best];
  };

  auto stats_or = cluster_->RerouteDeadDestination(dead, pick);
  if (!stats_or.ok()) {
    return util::Annotate(
        stats_or.status(),
        util::StrFormat("replanning around dead node %d", dead));
  }
  const cluster::Cluster::RerouteStats& rs = *stats_or;
  const int64_t replanned = rs.rerouted_pending + rs.reverted_committed;
  const double reverted_gb =
      util::BytesToGb(static_cast<double>(rs.reverted_bytes));
  summary_.replans += 1;
  summary_.replanned_chunks += replanned;
  // Reverted flips are un-committed again (their re-copy lands in later
  // Steps); the re-transfer is retry backlog for the bandwidth arbiter and
  // its modeled pairwise price is pure recovery overhead.
  summary_.committed_gb -= reverted_gb;
  summary_.committed_chunks -= rs.reverted_committed;
  summary_.retry_gb += reverted_gb;
  summary_.recovery_overhead_minutes +=
      reverted_gb * (cost_model_->params().net_minutes_per_gb +
                     cost_model_->params().io_minutes_per_gb);
  TELEM_COUNTER_ADD("reorg.engine.replans", 1);
  TELEM_COUNTER_ADD("reorg.engine.replanned_chunks", replanned);
  return util::Status::Ok();
}

util::StatusOr<IncrementStats> IncrementalReorgEngine::Step() {
  TELEM_SPAN("reorg.engine.step");
  // Deaths due at the current virtual time replan before the next slice is
  // carved, so the slice never stages onto a node known to be dead.
  if (auto status = ProcessNodeDeaths(); !status.ok()) return status;

  const int64_t budget_bytes = NextBudgetBytes();
  auto slice_or = cluster_->AdvanceIncrement(budget_bytes);
  if (!slice_or.ok()) return slice_or.status();
  const cluster::MovePlan& slice = *slice_or;

  IncrementStats stats;
  stats.index = summary_.increments;
  stats.chunks_moved = slice.num_chunks();
  stats.moved_gb = util::BytesToGb(static_cast<double>(slice.TotalBytes()));
  stats.budget_gb = util::BytesToGb(static_cast<double>(budget_bytes));
  if (slice.TotalBytes() > budget_bytes) {
    // The at-least-one-move rule pushed past the budget; report instead of
    // silently overshooting.
    stats.over_budget = true;
    stats.over_budget_gb = util::BytesToGb(
        static_cast<double>(slice.TotalBytes() - budget_bytes));
  }

  // The fault-free slice price: what the trajectory records, and the base
  // every attempt's virtual-clock charge builds on.
  const double base_minutes =
      cost_model_->ReorgMinutes(slice, cluster_->num_nodes()).minutes;
  const auto& moves = slice.moves();
  const int64_t total_bytes = slice.TotalBytes();
  const int max_attempts = std::max(1, options_.retry.max_attempts);
  const double timeout = options_.increment_timeout_minutes;
  const fault::FaultInjector* injector = options_.injector;
  const double dilation =
      injector != nullptr ? std::max(1.0, injector->plan().slow_copy_dilation)
                          : 1.0;
  const int ordinal = plan_ordinal_;
  const int inc_index = stats.index;

  util::Status failure = util::Status::Ok();
  bool succeeded = false;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    stats.attempts = attempt;
    if (attempt > 1) {
      const double backoff_ms = BackoffMsBeforeRetry(attempt - 1);
      stats.backoff_ms += backoff_ms;
      summary_.backoff_ms += backoff_ms;
      summary_.retries += 1;
      const double backoff_minutes = backoff_ms * kMinutesPerMs;
      virtual_minutes_ += backoff_minutes;
      stats.fault_extra_minutes += backoff_minutes;
      summary_.recovery_overhead_minutes += backoff_minutes;
    }

    // Simulated copy: shard the slice over the pool; each shard checksums
    // what it "transfers" and probes the injector per move. XOR combination
    // and the order-fixed reduce below keep the digest and the fault tally
    // bit-identical across thread counts.
    std::vector<uint64_t> shard_digests(moves.size(), 0);
    std::vector<uint8_t> kinds(moves.size(), 0);
    util::ParallelFor(
        static_cast<int64_t>(moves.size()), copy_threads_,
        [&moves, &shard_digests, &kinds, injector, ordinal, inc_index,
         attempt](int64_t begin, int64_t end) {
          for (int64_t i = begin; i < end; ++i) {
            const uint64_t d = MoveDigest(moves[static_cast<size_t>(i)]);
            shard_digests[static_cast<size_t>(i)] = d;
            if (injector != nullptr) {
              fault::TransferOp op;
              op.plan_ordinal = ordinal;
              op.increment = inc_index;
              op.attempt = attempt;
              op.move_digest = d;
              kinds[static_cast<size_t>(i)] =
                  static_cast<uint8_t>(injector->TransferFault(op));
            }
          }
        });
    uint64_t digest = 0;
    int64_t transient = 0;
    int64_t slow = 0;
    int64_t slow_bytes = 0;
    for (size_t i = 0; i < moves.size(); ++i) {
      digest ^= shard_digests[i];
      const auto kind = static_cast<fault::FaultKind>(kinds[i]);
      if (kind == fault::FaultKind::kTransientFailure) {
        transient += 1;
      } else if (kind == fault::FaultKind::kSlowCopy) {
        slow += 1;
        slow_bytes += moves[i].bytes;
      }
    }
    stats.transient_failures += transient;
    stats.slow_copies += slow;
    summary_.transient_failures += transient;
    summary_.slow_copies += slow;
    summary_.faults_injected += transient + slow;

    // Slow copies dilate the attempt: the slice finishes when its slowest
    // transfers do, so the dilated byte fraction stretches the price.
    double attempt_minutes = base_minutes;
    if (slow_bytes > 0 && total_bytes > 0) {
      attempt_minutes =
          base_minutes * (1.0 + (dilation - 1.0) * static_cast<double>(
                                                       slow_bytes) /
                                    static_cast<double>(total_bytes));
    }

    if (attempt_minutes > timeout) {
      // Abandoned at the deadline: charge the timeout, not the full copy.
      virtual_minutes_ += timeout;
      stats.fault_extra_minutes += timeout;
      summary_.recovery_overhead_minutes += timeout;
      stats.timeouts += 1;
      summary_.timeouts += 1;
      summary_.retry_gb += stats.moved_gb;
      failure = util::Annotate(
          util::Unavailable(util::StrFormat(
              "copy attempt ran past the %.3f-minute increment timeout",
              timeout)),
          util::StrFormat("increment %d, retry %d", inc_index, attempt - 1));
      continue;
    }
    if (transient > 0) {
      // The copy ran to the end and its checksum failed: the whole attempt
      // is wasted and the slice re-transfers on the next attempt.
      virtual_minutes_ += attempt_minutes;
      stats.fault_extra_minutes += attempt_minutes;
      summary_.recovery_overhead_minutes += attempt_minutes;
      summary_.retry_gb += stats.moved_gb;
      failure = util::Annotate(
          util::Unavailable(util::StrFormat(
              "%lld transient transfer failure(s) across %lld moves",
              static_cast<long long>(transient),
              static_cast<long long>(moves.size()))),
          util::StrFormat("increment %d, retry %d", inc_index, attempt - 1));
      continue;
    }

    virtual_minutes_ += attempt_minutes;
    const double dilation_extra = attempt_minutes - base_minutes;
    stats.fault_extra_minutes += dilation_extra;
    summary_.recovery_overhead_minutes += dilation_extra;
    stats.transfer_digest = digest;
    succeeded = true;
    break;
  }

  // Fault telemetry covers both outcomes; every value below is a plain
  // local (lint rule R3: macro args stay expression-only).
  const int64_t inc_transients = stats.transient_failures;
  const int64_t inc_slow = stats.slow_copies;
  const int64_t inc_faults = inc_transients + inc_slow;
  const int64_t inc_retries = stats.attempts - 1;
  const int64_t inc_timeouts = stats.timeouts;
  const int64_t inc_backoff_ms =
      static_cast<int64_t>(std::llround(stats.backoff_ms));
  if (inc_faults > 0) {
    TELEM_COUNTER_ADD("reorg.engine.faults_injected", inc_faults);
  }
  if (inc_transients > 0) {
    TELEM_COUNTER_ADD("reorg.engine.transient_failures", inc_transients);
  }
  if (inc_slow > 0) TELEM_COUNTER_ADD("reorg.engine.slow_copies", inc_slow);
  if (inc_retries > 0) TELEM_COUNTER_ADD("reorg.engine.retries", inc_retries);
  if (inc_timeouts > 0) {
    TELEM_COUNTER_ADD("reorg.engine.timeouts", inc_timeouts);
  }
  if (inc_backoff_ms > 0) {
    TELEM_COUNTER_ADD("reorg.engine.backoff_ms", inc_backoff_ms);
  }

  if (!succeeded) {
    // Retries exhausted: rewind the in-flight slice (nothing was flipped)
    // and surface the annotated last failure. The caller decides between
    // Abort() and trying again later.
    cluster_->CancelIncrement();
    TELEM_COUNTER_ADD("reorg.engine.retry_exhausted", 1);
    return failure;
  }

  if (options_.validate_incremental) {
    stats.only_to_new_nodes = slice.OnlyToNodesAtOrAbove(first_new_node_);
    summary_.only_to_new_nodes =
        summary_.only_to_new_nodes && stats.only_to_new_nodes;
  }
  stats.minutes = base_minutes;

  if (auto status = cluster_->CommitIncrement(); !status.ok()) return status;

  TELEM_COUNTER_ADD("reorg.engine.increments", 1);
  TELEM_COUNTER_ADD("reorg.engine.bytes_moved", slice.TotalBytes());
  TELEM_COUNTER_ADD("reorg.engine.chunks_moved", stats.chunks_moved);
  if (stats.over_budget) {
    TELEM_COUNTER_ADD("reorg.engine.over_budget_increments", 1);
  }

  summary_.increments += 1;
  summary_.slice_minutes += stats.minutes;
  summary_.transfer_digest ^= stats.transfer_digest;
  summary_.committed_gb += stats.moved_gb;
  summary_.committed_chunks += stats.chunks_moved;
  if (stats.over_budget) {
    summary_.over_budget_increments += 1;
    summary_.over_budget_gb += stats.over_budget_gb;
  }
  summary_.moved_gb_per_increment.push_back(stats.moved_gb);
  return stats;
}

util::Status IncrementalReorgEngine::StepAll() {
  while (pending_chunks() > 0) {
    auto stats = Step();
    if (!stats.ok()) return stats.status();
  }
  return util::Status::Ok();
}

util::Status IncrementalReorgEngine::Finish() {
  if (!active()) return util::Status::Ok();  // Empty plan: nothing staged.
  return cluster_->FinishApply();
}

util::Status IncrementalReorgEngine::Drain() {
  if (auto status = StepAll(); !status.ok()) return status;
  return Finish();
}

util::Status IncrementalReorgEngine::Abort() {
  if (!active()) {
    return util::FailedPrecondition("no active reorganization to abort");
  }
  const double rolled_back_gb = summary_.committed_gb;
  if (auto status = cluster_->RollbackReorg(); !status.ok()) {
    return util::Annotate(status, "reorg abort");
  }
  // Committed work is undone in metadata only (copy-then-flip retained the
  // sources), but the copy minutes already spent stay spent: a restarted
  // plan pays for those bytes again, which is the abort's recovery cost.
  summary_.aborted = true;
  summary_.rolled_back_gb += rolled_back_gb;
  summary_.committed_gb = 0.0;
  summary_.committed_chunks = 0;
  TELEM_COUNTER_ADD("reorg.engine.aborts", 1);
  return util::Status::Ok();
}

}  // namespace arraydb::reorg
