#include "reorg/reorg_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace arraydb::reorg {
namespace {

// FNV-1a over one move's metadata: stands in for the checksum a real
// migration computes over the bytes it copies.
uint64_t MoveDigest(const cluster::ChunkMove& m) {
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  for (const int64_t c : m.coords) mix(static_cast<uint64_t>(c));
  mix(static_cast<uint64_t>(m.bytes));
  mix(static_cast<uint64_t>(m.from));
  mix(static_cast<uint64_t>(m.to));
  return h;
}

}  // namespace

IncrementalReorgEngine::IncrementalReorgEngine(
    cluster::Cluster* cluster, const cluster::CostModel* cost_model,
    ReorgOptions options)
    : cluster_(cluster), cost_model_(cost_model),
      options_(std::move(options)) {
  ARRAYDB_CHECK(cluster_ != nullptr);
  ARRAYDB_CHECK(cost_model_ != nullptr);
  copy_threads_ = util::ResolveThreadCount(options_.copy_threads);
}

int64_t IncrementalReorgEngine::NextBudgetBytes() {
  double budget_gb = options_.increment_gb;
  if (options_.budget_fn) {
    BudgetRequest request;
    request.increment_index = summary_.increments;
    request.remaining_gb = summary_.moved_gb - summary_.committed_gb;
    budget_gb = options_.budget_fn(request);
  }
  if (!std::isfinite(budget_gb) || budget_gb <= 0.0) return 1;
  const double bytes = util::GbToBytes(budget_gb);
  // llround is undefined past int64 range; a grant that large means "no
  // byte limit".
  if (bytes >= static_cast<double>(std::numeric_limits<int64_t>::max())) {
    return std::numeric_limits<int64_t>::max();
  }
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(bytes)));
}

util::Status IncrementalReorgEngine::Begin(const cluster::MovePlan& plan,
                                           cluster::NodeId first_new_node) {
  if (active()) {
    return util::FailedPrecondition("reorg engine already active");
  }
  if (!options_.budget_fn && !(options_.increment_gb > 0.0 &&
                               std::isfinite(options_.increment_gb))) {
    return util::InvalidArgument(
        "ReorgOptions.increment_gb must be positive and finite when no "
        "budget callback is set");
  }
  if (auto status = cluster_->BeginApply(plan); !status.ok()) return status;
  TELEM_COUNTER_ADD("reorg.engine.plans", 1);
  first_new_node_ = first_new_node;
  summary_ = ReorgSummary();
  summary_.only_to_new_nodes = plan.OnlyToNodesAtOrAbove(first_new_node);
  const auto cost = cost_model_->ReorgMinutes(plan, cluster_->num_nodes());
  summary_.work_minutes = cost.minutes;
  summary_.moved_gb = cost.moved_gb;
  summary_.chunks_moved = cost.chunks_moved;
  return util::Status::Ok();
}

util::StatusOr<IncrementStats> IncrementalReorgEngine::Step() {
  TELEM_SPAN("reorg.engine.step");
  const int64_t budget_bytes = NextBudgetBytes();
  auto slice_or = cluster_->AdvanceIncrement(budget_bytes);
  if (!slice_or.ok()) return slice_or.status();
  const cluster::MovePlan& slice = *slice_or;

  IncrementStats stats;
  stats.index = summary_.increments;
  stats.chunks_moved = slice.num_chunks();
  stats.moved_gb = util::BytesToGb(static_cast<double>(slice.TotalBytes()));
  stats.budget_gb = util::BytesToGb(static_cast<double>(budget_bytes));
  if (slice.TotalBytes() > budget_bytes) {
    // The at-least-one-move rule pushed past the budget; report instead of
    // silently overshooting.
    stats.over_budget = true;
    stats.over_budget_gb = util::BytesToGb(
        static_cast<double>(slice.TotalBytes() - budget_bytes));
  }

  // Simulated copy: shard the slice over the pool and checksum what each
  // shard "transfers". XOR combination makes the digest independent of shard
  // boundaries, so it is bit-identical across thread counts — and the
  // whole-plan XOR is likewise independent of increment sizing.
  const auto& moves = slice.moves();
  std::vector<uint64_t> shard_digests(moves.size(), 0);
  util::ParallelFor(static_cast<int64_t>(moves.size()), copy_threads_,
                    [&moves, &shard_digests](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        shard_digests[static_cast<size_t>(i)] =
                            MoveDigest(moves[static_cast<size_t>(i)]);
                      }
                    });
  for (const uint64_t d : shard_digests) stats.transfer_digest ^= d;

  if (options_.validate_incremental) {
    stats.only_to_new_nodes = slice.OnlyToNodesAtOrAbove(first_new_node_);
    summary_.only_to_new_nodes =
        summary_.only_to_new_nodes && stats.only_to_new_nodes;
  }
  stats.minutes = cost_model_->ReorgMinutes(slice, cluster_->num_nodes())
                      .minutes;

  if (auto status = cluster_->CommitIncrement(); !status.ok()) return status;

  TELEM_COUNTER_ADD("reorg.engine.increments", 1);
  TELEM_COUNTER_ADD("reorg.engine.bytes_moved", slice.TotalBytes());
  TELEM_COUNTER_ADD("reorg.engine.chunks_moved", stats.chunks_moved);
  if (stats.over_budget) {
    TELEM_COUNTER_ADD("reorg.engine.over_budget_increments", 1);
  }

  summary_.increments += 1;
  summary_.slice_minutes += stats.minutes;
  summary_.transfer_digest ^= stats.transfer_digest;
  summary_.committed_gb += stats.moved_gb;
  summary_.committed_chunks += stats.chunks_moved;
  if (stats.over_budget) {
    summary_.over_budget_increments += 1;
    summary_.over_budget_gb += stats.over_budget_gb;
  }
  summary_.moved_gb_per_increment.push_back(stats.moved_gb);
  return stats;
}

util::Status IncrementalReorgEngine::StepAll() {
  while (pending_chunks() > 0) {
    auto stats = Step();
    if (!stats.ok()) return stats.status();
  }
  return util::Status::Ok();
}

util::Status IncrementalReorgEngine::Finish() {
  if (!active()) return util::Status::Ok();  // Empty plan: nothing staged.
  return cluster_->FinishApply();
}

util::Status IncrementalReorgEngine::Drain() {
  if (auto status = StepAll(); !status.ok()) return status;
  return Finish();
}

}  // namespace arraydb::reorg
