// BandwidthArbiter: the per-reorganization driver of cost-model-priced
// migration/ingest bandwidth arbitration (§5's leading staircase assumes
// the migration budget is derived each cycle, not fixed).
//
// One arbiter is created per staged MovePlan. It owns the just-in-time
// deadline countdown — the staircase's plan-ahead p says how many cycles
// remain until the next step lands, and the whole plan must commit within
// that window — and asks cluster::CostModel::ArbitrateBandwidth for each
// cycle's grant:
//
//   jit_gb    = remaining / cycles_left           (just-in-time pace)
//   window_gb = max(0, window - reserve) / (t+δ)  (hides behind queries)
//   grant     = clamp(max(jit_gb, min(window_gb, remaining)),
//                     floor_gb, ceiling_gb)
//
// On the deadline cycle the whole remainder is granted regardless of the
// clamps, so migration always completes within the plan-ahead window; a
// scale-out arriving early force-drains through the runner instead. The
// legacy fixed budget is available via ArbiterOptions::fixed_gb for A/B
// comparison (bench_reorg's fixed-vs-arbitrated experiment) — the deadline
// force-grant still applies, only the per-cycle sizing differs.

#ifndef ARRAYDB_REORG_BANDWIDTH_ARBITER_H_
#define ARRAYDB_REORG_BANDWIDTH_ARBITER_H_

#include <optional>
#include <vector>

#include "cluster/cost_model.h"

namespace arraydb::reorg {

struct ArbiterOptions {
  /// Floor/ceiling clamps forwarded to CostModel::ArbitrateBandwidth.
  cluster::ArbitrationClamps clamps;
  /// Staircase plan-ahead: cycles until the next step is expected to land.
  /// The active plan must fully commit within this many cycles.
  int plan_ahead_cycles = 3;
  /// When set, grant this fixed per-cycle budget instead of consulting the
  /// cost model (the retired constant scheme, kept for comparison). The
  /// deadline force-grant still applies.
  std::optional<double> fixed_gb;
};

/// EWMA estimate of the per-cycle query-overlap window fed to
/// BandwidthArbiter (ROADMAP follow-on: the raw previous-cycle benchmark
/// minutes are a noisy one-sample estimator; smoothing reacts to a
/// sustained query-load swing within a couple of cycles without chasing
/// every spike — and unlike a cumulative mean it never goes stale).
/// alpha = 1 reproduces the legacy previous-cycle estimator exactly.
class OverlapWindowEstimator {
 public:
  static constexpr double kDefaultAlpha = 0.5;

  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit OverlapWindowEstimator(double alpha = kDefaultAlpha);

  /// Folds one cycle's observed benchmark minutes into the estimate. The
  /// first observation seeds the estimate directly (no zero-bias).
  void Observe(double minutes);

  /// Current window estimate in minutes; 0 until the first observation
  /// (matching the legacy estimator's cold start).
  double estimate() const { return seeded_ ? estimate_ : 0.0; }
  bool has_estimate() const { return seeded_; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double estimate_ = 0.0;
  bool seeded_ = false;
};

class BandwidthArbiter {
 public:
  /// `cost_model` must outlive the arbiter.
  BandwidthArbiter(const cluster::CostModel* cost_model,
                   ArbiterOptions options);

  /// Starts the deadline countdown for a newly staged plan.
  void BeginPlan();

  /// Pulls the deadline forward to the next PlanCycle call (e.g. the
  /// workload is ending and the plan must quiesce with it), so the grant
  /// and the recorded trajectory reflect the forced drain.
  void ForceDeadline() { cycles_left_ = 1; }

  /// Computes this cycle's migration grant and advances the countdown.
  /// `demand.cycles_until_deadline` is overwritten with the arbiter's own
  /// countdown. On the deadline cycle the remainder is granted in full.
  /// Equivalent to PlanCycleShares(demand).budget.
  cluster::BandwidthBudget PlanCycle(cluster::BandwidthDemand demand);

  /// The three-way form: same grant, countdown, and trajectory as
  /// PlanCycle, but returns the full queries/ingest/migration split —
  /// including the query tier's dilation, recomputed after the deadline
  /// force-grant so a forced drain's intrusion into query time is visible
  /// to the serving layer. Legacy callers that pass
  /// demand.projected_query_minutes = 0 get dilation 1.0 and bit-identical
  /// budgets.
  cluster::BandwidthShares PlanCycleShares(cluster::BandwidthDemand demand);

  /// Cycles left until the just-in-time deadline (1 = this cycle must
  /// finish the plan).
  int cycles_left() const { return cycles_left_; }

  const ArbiterOptions& options() const { return options_; }

  /// Per-cycle granted budgets in grant order (the arbitration trajectory).
  const std::vector<double>& budget_trajectory() const {
    return budget_trajectory_;
  }

 private:
  const cluster::CostModel* cost_model_;
  ArbiterOptions options_;
  int cycles_left_ = 1;
  std::vector<double> budget_trajectory_;
};

}  // namespace arraydb::reorg

#endif  // ARRAYDB_REORG_BANDWIDTH_ARBITER_H_
