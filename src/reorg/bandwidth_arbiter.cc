#include "reorg/bandwidth_arbiter.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/units.h"

namespace arraydb::reorg {

OverlapWindowEstimator::OverlapWindowEstimator(double alpha) : alpha_(alpha) {
  ARRAYDB_CHECK_GT(alpha_, 0.0);
  ARRAYDB_CHECK_LE(alpha_, 1.0);
}

void OverlapWindowEstimator::Observe(double minutes) {
  ARRAYDB_CHECK_GE(minutes, 0.0);
  estimate_ = seeded_ ? alpha_ * minutes + (1.0 - alpha_) * estimate_
                      : minutes;
  seeded_ = true;
}

BandwidthArbiter::BandwidthArbiter(const cluster::CostModel* cost_model,
                                   ArbiterOptions options)
    : cost_model_(cost_model), options_(options) {
  ARRAYDB_CHECK(cost_model_ != nullptr);
  cycles_left_ = std::max(1, options_.plan_ahead_cycles);
}

void BandwidthArbiter::BeginPlan() {
  cycles_left_ = std::max(1, options_.plan_ahead_cycles);
  budget_trajectory_.clear();
}

cluster::BandwidthBudget BandwidthArbiter::PlanCycle(
    cluster::BandwidthDemand demand) {
  demand.cycles_until_deadline = cycles_left_;
  const double remaining = std::max(0.0, demand.remaining_migration_gb);

  cluster::BandwidthBudget granted;
  if (options_.fixed_gb.has_value()) {
    granted.migration_gb = std::min(std::max(0.0, *options_.fixed_gb),
                                    remaining);
    granted.jit_gb = remaining / static_cast<double>(cycles_left_);
  } else {
    granted = cost_model_->ArbitrateBandwidth(demand, options_.clamps);
  }
  if (cycles_left_ <= 1 && remaining > 0.0) {
    // Deadline cycle: the next staircase step is about to land, so the
    // remainder goes through regardless of the clamps.
    granted.migration_gb = remaining;
    granted.deadline_binding = true;
  }
  TELEM_COUNTER_ADD("reorg.arbiter.grants", 1);
  TELEM_COUNTER_ADD("reorg.arbiter.granted_bytes",
                    std::llround(util::GbToBytes(granted.migration_gb)));
  if (granted.deadline_binding) {
    TELEM_COUNTER_ADD("reorg.arbiter.deadline_force_grants", 1);
  }
  TELEM_GAUGE_SET("reorg.arbiter.cycles_left", cycles_left_);
  cycles_left_ = std::max(1, cycles_left_ - 1);
  budget_trajectory_.push_back(granted.migration_gb);
  return granted;
}

}  // namespace arraydb::reorg
