#include "reorg/bandwidth_arbiter.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"
#include "util/logging.h"
#include "util/units.h"

namespace arraydb::reorg {

OverlapWindowEstimator::OverlapWindowEstimator(double alpha) : alpha_(alpha) {
  ARRAYDB_CHECK_GT(alpha_, 0.0);
  ARRAYDB_CHECK_LE(alpha_, 1.0);
}

void OverlapWindowEstimator::Observe(double minutes) {
  ARRAYDB_CHECK_GE(minutes, 0.0);
  estimate_ = seeded_ ? alpha_ * minutes + (1.0 - alpha_) * estimate_
                      : minutes;
  seeded_ = true;
}

BandwidthArbiter::BandwidthArbiter(const cluster::CostModel* cost_model,
                                   ArbiterOptions options)
    : cost_model_(cost_model), options_(options) {
  ARRAYDB_CHECK(cost_model_ != nullptr);
  cycles_left_ = std::max(1, options_.plan_ahead_cycles);
}

void BandwidthArbiter::BeginPlan() {
  cycles_left_ = std::max(1, options_.plan_ahead_cycles);
  budget_trajectory_.clear();
}

cluster::BandwidthBudget BandwidthArbiter::PlanCycle(
    cluster::BandwidthDemand demand) {
  return PlanCycleShares(demand).budget;
}

cluster::BandwidthShares BandwidthArbiter::PlanCycleShares(
    cluster::BandwidthDemand demand) {
  demand.cycles_until_deadline = cycles_left_;
  const double remaining = std::max(0.0, demand.remaining_migration_gb);

  cluster::BandwidthShares shares =
      cost_model_->ArbitrateThreeWay(demand, options_.clamps);
  if (options_.fixed_gb.has_value()) {
    // The retired constant scheme sizes the grant without the cost model;
    // the three-way reservations above still describe the cycle's window.
    shares.budget = cluster::BandwidthBudget{};
    shares.budget.migration_gb =
        std::min(std::max(0.0, *options_.fixed_gb), remaining);
    shares.budget.jit_gb = remaining / static_cast<double>(cycles_left_);
  }
  if (cycles_left_ <= 1 && remaining > 0.0) {
    // Deadline cycle: the next staircase step is about to land, so the
    // remainder goes through regardless of the clamps.
    shares.budget.migration_gb = remaining;
    shares.budget.deadline_binding = true;
  }

  // Re-derive the query-side view from the final grant (the fixed path
  // and the deadline force-grant both change it after ArbitrateThreeWay).
  const cluster::CostParams& params = cost_model_->params();
  const double rate = params.net_minutes_per_gb + params.io_minutes_per_gb;
  shares.migration_minutes = shares.budget.migration_gb * rate;
  const double query_minutes = std::max(0.0, demand.projected_query_minutes);
  if (query_minutes > 0.0) {
    const double free_minutes =
        std::max(0.0, shares.window_minutes -
                          options_.clamps.ingest_reserve_fraction *
                              shares.budget.ingest_reserved_minutes -
                          shares.query_reserved_minutes);
    shares.query_dilation =
        1.0 +
        std::max(0.0, shares.migration_minutes - free_minutes) / query_minutes;
  } else {
    shares.query_dilation = 1.0;
  }

  TELEM_COUNTER_ADD("reorg.arbiter.grants", 1);
  TELEM_COUNTER_ADD("reorg.arbiter.granted_bytes",
                    std::llround(util::GbToBytes(shares.budget.migration_gb)));
  if (shares.budget.deadline_binding) {
    TELEM_COUNTER_ADD("reorg.arbiter.deadline_force_grants", 1);
  }
  TELEM_GAUGE_SET("reorg.arbiter.cycles_left", cycles_left_);
  cycles_left_ = std::max(1, cycles_left_ - 1);
  budget_trajectory_.push_back(shares.budget.migration_gb);
  return shares;
}

}  // namespace arraydb::reorg
