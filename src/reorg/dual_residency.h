// DualResidencyView: the query-routing table for a cluster with an
// incremental reorganization in flight.
//
// While a MovePlan is being applied in increments, every chunk it covers is
// dual resident: the authoritative owner flips per committed increment
// (visible in Cluster::OwnerOf and the per-node byte accounting), but the
// source node retains a readable replica until Cluster::FinishApply releases
// the whole reorganization. This view routes reads to that retained source
// residency, so queries interleaved with migration observe one consistent
// snapshot — the pre-reorganization placement plus any chunks inserted since
// — regardless of how many increments have committed. That pinning is what
// makes interleaved query results bit-identical to a quiesced cluster and
// independent of increment sizing and thread counts.
//
// With no reorganization active the view is an exact pass-through of the
// cluster. Views are cheap to construct (two pointers); construct one per
// query phase rather than caching across commits.

#ifndef ARRAYDB_REORG_DUAL_RESIDENCY_H_
#define ARRAYDB_REORG_DUAL_RESIDENCY_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "cluster/placement_view.h"

namespace arraydb::reorg {

class DualResidencyView final : public cluster::PlacementView {
 public:
  explicit DualResidencyView(const cluster::Cluster& cluster)
      : cluster_(&cluster) {}

  int num_nodes() const override { return cluster_->num_nodes(); }

  cluster::NodeId OwnerOf(const array::Coordinates& coords) const override;

  bool Lookup(const array::Coordinates& coords, cluster::NodeId* node,
              int64_t* bytes) const override;

  void ForEachChunk(
      const std::function<void(const array::Coordinates&, cluster::NodeId,
                               int64_t)>& fn) const override;

  /// True when the chunk currently has a retained source replica (i.e. it is
  /// covered by the active reorganization).
  bool IsDualResident(const array::Coordinates& coords) const {
    return cluster_->SourceReplicaOf(coords) != cluster::kInvalidNode;
  }

  const cluster::Cluster& cluster() const { return *cluster_; }

 private:
  const cluster::Cluster* cluster_;
};

}  // namespace arraydb::reorg

#endif  // ARRAYDB_REORG_DUAL_RESIDENCY_H_
