// Incremental reorganization engine (the paper's headline property, §1/§4):
// the cluster reorganizes in small bandwidth-budgeted slices while it keeps
// serving queries, instead of a stop-the-world MovePlan application.
//
// The engine wraps Cluster's copy-then-flip staging
// (BeginApply / AdvanceIncrement / CommitIncrement / FinishApply):
//   * Begin stages a plan, validates the Table-1 incremental property
//     (OnlyToNodesAtOrAbove) and prices the *whole* plan once via
//     CostModel::ReorgMinutes — the bandwidth budget shapes scheduling, not
//     total transfer work, so `work_minutes` is invariant under slicing.
//   * Step carves the next increment, simulates its copy on the shared
//     util::ThreadPool (a sharded FNV digest over the transferred chunk
//     metadata stands in for the data checksum; XOR-combined, so it is
//     bit-identical for every thread count and increment size), re-validates
//     the incremental property per slice, prices the slice in isolation for
//     the migration trajectory, and commits the flip.
//   * Finish releases the reorganization once every move has committed;
//     Drain = StepAll + Finish.
//
// Queries issued mid-reorg route through View() (a DualResidencyView), which
// pins reads to the retained source replicas — see dual_residency.h.
//
// Increment sizing comes from ReorgOptions: either the fixed increment_gb
// or a per-increment budget callback (ReorgOptions::budget_fn), typically
// bound to a reorg::BandwidthArbiter so the cost model prices the budget
// each cycle against the ingest demand (see bandwidth_arbiter.h and
// src/reorg/README.md for the arbitration policy).
//
// Exposed follow-ons: NUMA/socket-aware increment ordering and a real async
// copy pipeline hang off Step()'s thread-pool hook.

#ifndef ARRAYDB_REORG_REORG_ENGINE_H_
#define ARRAYDB_REORG_REORG_ENGINE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "reorg/dual_residency.h"
#include "util/status.h"

namespace arraydb::reorg {

/// The single source of truth for the fixed increment budget: ReorgOptions
/// and workload::RunnerConfig both default to this constant, so the two can
/// no longer diverge silently.
inline constexpr double kDefaultIncrementGb = 8.0;

/// Context handed to a per-increment budget callback before each Step.
struct BudgetRequest {
  /// Index the next increment will get (0-based).
  int increment_index = 0;
  /// Plan GB not yet committed.
  double remaining_gb = 0.0;
};

struct ReorgOptions {
  /// Byte budget per migration increment, in GB. Each increment takes moves
  /// in plan order until the next move would exceed the budget (always at
  /// least one move per increment). Ignored when budget_fn is set; must be
  /// positive otherwise (validated at Begin).
  double increment_gb = kDefaultIncrementGb;
  /// When set, called before each increment to size it (e.g. bound to a
  /// BandwidthArbiter's per-cycle grant) instead of the fixed increment_gb.
  /// Non-positive or non-finite returns are clamped to a one-byte floor —
  /// the increment still advances — and the overshoot of the at-least-one-
  /// move rule is reported in IncrementStats/ReorgSummary.
  std::function<double(const BudgetRequest&)> budget_fn;
  /// Worker threads for the simulated increment copy; 0 = auto
  /// (util::ResolveThreadCount).
  int copy_threads = 0;
  /// Re-check the Table-1 incremental property per increment.
  bool validate_incremental = true;
};

/// Accounting for one committed increment.
struct IncrementStats {
  int index = 0;
  /// The slice priced in isolation by CostModel::ReorgMinutes — diagnostic;
  /// totals use the schedule-invariant whole-plan price.
  double minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  /// Table-1 incremental property, checked against this slice alone.
  bool only_to_new_nodes = true;
  /// XOR-combined FNV-1a digest of the transferred chunk metadata (the
  /// simulated copy checksum).
  uint64_t transfer_digest = 0;
  /// Budget this increment was sized to (after the one-byte clamp), in GB.
  double budget_gb = 0.0;
  /// True when the at-least-one-move rule pushed the slice past the budget.
  bool over_budget = false;
  /// GB taken beyond the budget (0 when within budget).
  double over_budget_gb = 0.0;
};

/// Accounting for a whole reorganization.
struct ReorgSummary {
  int increments = 0;
  /// Whole-plan price from CostModel::ReorgMinutes — identical to what the
  /// legacy atomic path charges, and invariant under increment sizing.
  double work_minutes = 0.0;
  /// Sum of per-increment slice prices (includes the per-increment slicing
  /// tax; >= work_minutes for multi-increment plans).
  double slice_minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  bool only_to_new_nodes = true;
  uint64_t transfer_digest = 0;
  /// GB committed so far (moved_gb is the whole plan; the difference is
  /// what remains).
  double committed_gb = 0.0;
  /// Chunks committed so far.
  int64_t committed_chunks = 0;
  /// Increments where the at-least-one-move rule exceeded the budget, and
  /// the total GB taken beyond budgets — previously this overshoot was
  /// silent.
  int over_budget_increments = 0;
  double over_budget_gb = 0.0;
  /// Per-increment moved GB, in commit order (the migration trajectory).
  std::vector<double> moved_gb_per_increment;
};

class IncrementalReorgEngine {
 public:
  /// `cluster` and `cost_model` must outlive the engine.
  IncrementalReorgEngine(cluster::Cluster* cluster,
                         const cluster::CostModel* cost_model,
                         ReorgOptions options = ReorgOptions());

  /// Stages `plan` and prices it. `first_new_node` is the id of the first
  /// node added by the triggering scale-out, for the incremental-property
  /// check. An empty plan completes immediately (active() stays false).
  /// Fails with InvalidArgument when no budget callback is set and
  /// increment_gb is non-positive or non-finite (previously an unchecked
  /// constructor abort).
  util::Status Begin(const cluster::MovePlan& plan,
                     cluster::NodeId first_new_node);

  /// True while staged moves remain or the routing epoch is still pinned
  /// (i.e. until Finish/Drain releases the reorganization).
  bool active() const { return cluster_->reorg_active(); }

  /// Moves staged but not yet committed.
  int64_t pending_chunks() const { return cluster_->pending_reorg_chunks(); }

  /// Copies, validates, and commits the next increment.
  util::StatusOr<IncrementStats> Step();

  /// Steps every remaining increment (data movement completes; the routing
  /// epoch stays pinned until Finish).
  util::Status StepAll();

  /// Releases the reorganization once all moves have committed.
  util::Status Finish();

  /// StepAll + Finish.
  util::Status Drain();

  /// Routing view queries should use while this reorganization is active.
  DualResidencyView View() const { return DualResidencyView(*cluster_); }

  const ReorgSummary& summary() const { return summary_; }
  const ReorgOptions& options() const { return options_; }

 private:
  /// Byte budget for the next increment: the callback's grant (or the fixed
  /// increment_gb), clamped to a one-byte floor.
  int64_t NextBudgetBytes();

  cluster::Cluster* cluster_;
  const cluster::CostModel* cost_model_;
  ReorgOptions options_;
  int copy_threads_ = 1;
  cluster::NodeId first_new_node_ = cluster::kInvalidNode;
  ReorgSummary summary_;
};

}  // namespace arraydb::reorg

#endif  // ARRAYDB_REORG_REORG_ENGINE_H_
