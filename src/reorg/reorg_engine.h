// Incremental reorganization engine (the paper's headline property, §1/§4):
// the cluster reorganizes in small bandwidth-budgeted slices while it keeps
// serving queries, instead of a stop-the-world MovePlan application.
//
// The engine wraps Cluster's copy-then-flip staging
// (BeginApply / AdvanceIncrement / CommitIncrement / FinishApply):
//   * Begin stages a plan, validates the Table-1 incremental property
//     (OnlyToNodesAtOrAbove) and prices the *whole* plan once via
//     CostModel::ReorgMinutes — the bandwidth budget shapes scheduling, not
//     total transfer work, so `work_minutes` is invariant under slicing.
//   * Step carves the next increment, simulates its copy on the shared
//     util::ThreadPool (a sharded FNV digest over the transferred chunk
//     metadata stands in for the data checksum; XOR-combined, so it is
//     bit-identical for every thread count and increment size), re-validates
//     the incremental property per slice, prices the slice in isolation for
//     the migration trajectory, and commits the flip.
//   * Finish releases the reorganization once every move has committed;
//     Drain = StepAll + Finish.
//
// Queries issued mid-reorg route through View() (a DualResidencyView), which
// pins reads to the retained source replicas — see dual_residency.h.
//
// Increment sizing comes from ReorgOptions: either the fixed increment_gb
// or a per-increment budget callback (ReorgOptions::budget_fn), typically
// bound to a reorg::BandwidthArbiter so the cost model prices the budget
// each cycle against the ingest demand (see bandwidth_arbiter.h and
// src/reorg/README.md for the arbitration policy).
//
// Failure semantics (src/reorg/README.md, "Failure semantics"): when a
// fault::FaultInjector is attached, Step consults it per transfer attempt.
// A faulted increment retries with capped exponential backoff on the
// *virtual* clock (simulated minutes, machine-independent), a slow-copied
// increment dilates, a per-increment timeout abandons an attempt, Abort()
// rolls every committed flip back onto the retained source replicas (exact
// pre-reorg placement), and a destination node's scheduled death replans
// the surviving moves onto the remaining new nodes. All of it is
// deterministic: the same seed replays the identical trajectory.
//
// Exposed follow-ons: NUMA/socket-aware increment ordering and a real async
// copy pipeline hang off Step()'s thread-pool hook.

#ifndef ARRAYDB_REORG_REORG_ENGINE_H_
#define ARRAYDB_REORG_REORG_ENGINE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cost_model.h"
#include "fault/fault.h"
#include "reorg/dual_residency.h"
#include "util/status.h"

namespace arraydb::reorg {

/// The single source of truth for the fixed increment budget: ReorgOptions
/// and workload::RunnerConfig both default to this constant, so the two can
/// no longer diverge silently.
inline constexpr double kDefaultIncrementGb = 8.0;

/// Context handed to a per-increment budget callback before each Step.
struct BudgetRequest {
  /// Index the next increment will get (0-based).
  int increment_index = 0;
  /// Plan GB not yet committed.
  double remaining_gb = 0.0;
};

/// Capped exponential backoff for faulted increment copies, priced on the
/// virtual clock so retry trajectories are machine-independent (and, by
/// design, jitter-free: randomized jitter would break seeded replay).
/// Backoff before retry k (1-based) is
///   min(base_backoff_ms * backoff_multiplier^(k-1), max_backoff_ms).
struct RetryPolicy {
  /// Total attempts per increment (first try included). >= 1.
  int max_attempts = 4;
  double base_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1600.0;
};

struct ReorgOptions {
  /// Byte budget per migration increment, in GB. Each increment takes moves
  /// in plan order until the next move would exceed the budget (always at
  /// least one move per increment). Ignored when budget_fn is set; must be
  /// positive otherwise (validated at Begin).
  double increment_gb = kDefaultIncrementGb;
  /// When set, called before each increment to size it (e.g. bound to a
  /// BandwidthArbiter's per-cycle grant) instead of the fixed increment_gb.
  /// Non-positive or non-finite returns are clamped to a one-byte floor —
  /// the increment still advances — and the overshoot of the at-least-one-
  /// move rule is reported in IncrementStats/ReorgSummary.
  std::function<double(const BudgetRequest&)> budget_fn;
  /// Worker threads for the simulated increment copy; 0 = auto
  /// (util::ResolveThreadCount).
  int copy_threads = 0;
  /// Re-check the Table-1 incremental property per increment.
  bool validate_incremental = true;
  /// Deterministic fault source consulted per transfer attempt (and for
  /// scheduled node deaths) during Step. Null — the default — disables
  /// injection entirely and keeps Step bit-identical to the fault-free
  /// engine. Must outlive the engine.
  const fault::FaultInjector* injector = nullptr;
  /// Retry schedule for faulted/timed-out increment copies.
  RetryPolicy retry;
  /// Virtual minutes after which one copy attempt is abandoned (counted as a
  /// timeout and retried under the same RetryPolicy). Infinity disables the
  /// timeout; must be positive.
  double increment_timeout_minutes = std::numeric_limits<double>::infinity();
  /// Initial reading of the engine's virtual clock, against which the
  /// injector's scheduled node deaths are matched (the workload runner
  /// passes its elapsed simulated minutes).
  double virtual_start_minutes = 0.0;
  /// Base for the plan ordinal mixed into every fault draw. Each Begin
  /// advances the ordinal, so a plan aborted and restarted (on this engine
  /// or — via this base — a successor engine) draws fresh faults instead of
  /// deterministically re-hitting the same ones (livelock).
  int plan_ordinal_base = 0;
};

/// Accounting for one committed increment.
struct IncrementStats {
  int index = 0;
  /// The slice priced in isolation by CostModel::ReorgMinutes — diagnostic;
  /// totals use the schedule-invariant whole-plan price.
  double minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  /// Table-1 incremental property, checked against this slice alone.
  bool only_to_new_nodes = true;
  /// XOR-combined FNV-1a digest of the transferred chunk metadata (the
  /// simulated copy checksum).
  uint64_t transfer_digest = 0;
  /// Budget this increment was sized to (after the one-byte clamp), in GB.
  double budget_gb = 0.0;
  /// True when the at-least-one-move rule pushed the slice past the budget.
  bool over_budget = false;
  /// GB taken beyond the budget (0 when within budget).
  double over_budget_gb = 0.0;
  /// Copy attempts this increment took (1 = fault-free).
  int attempts = 1;
  /// Moves that drew a transient transfer failure, summed over attempts.
  int64_t transient_failures = 0;
  /// Moves that drew a slow copy, summed over attempts.
  int64_t slow_copies = 0;
  /// Attempts abandoned at the per-increment timeout.
  int timeouts = 0;
  /// Virtual backoff milliseconds spent between attempts.
  double backoff_ms = 0.0;
  /// Virtual minutes beyond the fault-free slice price: failed attempts,
  /// backoff, and slow-copy dilation.
  double fault_extra_minutes = 0.0;
};

/// Accounting for a whole reorganization.
struct ReorgSummary {
  int increments = 0;
  /// Whole-plan price from CostModel::ReorgMinutes — identical to what the
  /// legacy atomic path charges, and invariant under increment sizing.
  double work_minutes = 0.0;
  /// Sum of per-increment slice prices (includes the per-increment slicing
  /// tax; >= work_minutes for multi-increment plans).
  double slice_minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  bool only_to_new_nodes = true;
  uint64_t transfer_digest = 0;
  /// GB committed so far (moved_gb is the whole plan; the difference is
  /// what remains).
  double committed_gb = 0.0;
  /// Chunks committed so far.
  int64_t committed_chunks = 0;
  /// Increments where the at-least-one-move rule exceeded the budget, and
  /// the total GB taken beyond budgets — previously this overshoot was
  /// silent.
  int over_budget_increments = 0;
  double over_budget_gb = 0.0;
  /// Per-increment moved GB, in commit order (the migration trajectory).
  std::vector<double> moved_gb_per_increment;

  // -- Failure accounting (all zero on the fault-free path) -----------------
  /// Total injected faults: transient failures + slow copies + node deaths.
  int64_t faults_injected = 0;
  int64_t transient_failures = 0;
  int64_t slow_copies = 0;
  /// Retries = attempts beyond the first, summed over increments (includes
  /// timeout-triggered retries).
  int64_t retries = 0;
  int64_t timeouts = 0;
  /// Virtual backoff milliseconds spent between attempts.
  double backoff_ms = 0.0;
  /// Scheduled node deaths this reorganization observed.
  int64_t node_deaths = 0;
  /// Replans around dead destination nodes.
  int64_t replans = 0;
  /// Moves a replan redirected (pending reroutes + reverted re-stages).
  int64_t replanned_chunks = 0;
  /// GB expected to be re-transferred: failed whole-slice attempts plus
  /// replan-reverted committed moves. Feeds
  /// cluster::BandwidthDemand::retry_backlog_gb.
  double retry_gb = 0.0;
  /// GB of committed flips reverted by Abort (rolled back onto sources).
  double rolled_back_gb = 0.0;
  /// True once Abort() has rolled this reorganization back.
  bool aborted = false;
  /// Virtual minutes of pure fault overhead: failed attempts, backoff,
  /// slow-copy dilation, and the modeled re-copy price of replan-reverted
  /// bytes. The recovery-overhead ratio gated by bench_fault is built from
  /// this.
  double recovery_overhead_minutes = 0.0;
};

class IncrementalReorgEngine {
 public:
  /// `cluster` and `cost_model` must outlive the engine.
  IncrementalReorgEngine(cluster::Cluster* cluster,
                         const cluster::CostModel* cost_model,
                         ReorgOptions options = ReorgOptions());

  /// Stages `plan` and prices it. `first_new_node` is the id of the first
  /// node added by the triggering scale-out, for the incremental-property
  /// check. An empty plan completes immediately (active() stays false).
  /// Fails with InvalidArgument when no budget callback is set and
  /// increment_gb is non-positive or non-finite (previously an unchecked
  /// constructor abort).
  util::Status Begin(const cluster::MovePlan& plan,
                     cluster::NodeId first_new_node);

  /// True while staged moves remain or the routing epoch is still pinned
  /// (i.e. until Finish/Drain releases the reorganization).
  bool active() const { return cluster_->reorg_active(); }

  /// Moves staged but not yet committed.
  int64_t pending_chunks() const { return cluster_->pending_reorg_chunks(); }

  /// Copies, validates, and commits the next increment.
  util::StatusOr<IncrementStats> Step();

  /// Steps every remaining increment (data movement completes; the routing
  /// epoch stays pinned until Finish).
  util::Status StepAll();

  /// Releases the reorganization once all moves have committed.
  util::Status Finish();

  /// StepAll + Finish.
  util::Status Drain();

  /// Rolls the active reorganization back: every committed flip is reverted
  /// onto its retained source replica (exact pre-reorg placement, verified
  /// by the chaos tests) and the staging state is released. The work already
  /// spent stays charged — a restarted plan pays again — which is exactly
  /// the recovery overhead bench_fault gates. Fails when no reorganization
  /// is active.
  util::Status Abort();

  /// Routing view queries should use while this reorganization is active.
  DualResidencyView View() const { return DualResidencyView(*cluster_); }

  const ReorgSummary& summary() const { return summary_; }
  const ReorgOptions& options() const { return options_; }

  /// The engine's virtual clock, in simulated minutes: advances with every
  /// attempt's copy price and every backoff. Node deaths trigger against
  /// this clock, so trajectories replay identically on any machine.
  double virtual_minutes() const { return virtual_minutes_; }

  /// Plans Begin()-ed on this engine. Add to ReorgOptions::plan_ordinal_base
  /// when handing fault identity to a successor engine.
  int plans_begun() const { return begins_; }

 private:
  /// Byte budget for the next increment: the callback's grant (or the fixed
  /// increment_gb), clamped to a one-byte floor.
  int64_t NextBudgetBytes();

  /// True when `node` is on the engine's observed-dead list.
  bool IsDead(cluster::NodeId node) const;

  /// Applies injector-scheduled node deaths due at the current virtual time
  /// (and re-checks earlier deaths against freshly staged moves): a death
  /// that owns staged destinations triggers ReplanAroundDeadNode.
  util::Status ProcessNodeDeaths();

  /// Reroutes every staged move targeting `dead` onto surviving new nodes
  /// (deterministic least-projected-load, ties to the lowest id), preserving
  /// the Table-1 property by construction. Unavailable when no new node
  /// survives.
  util::Status ReplanAroundDeadNode(cluster::NodeId dead);

  /// Backoff before 1-based retry `k`, in virtual milliseconds.
  double BackoffMsBeforeRetry(int k) const;

  cluster::Cluster* cluster_;
  const cluster::CostModel* cost_model_;
  ReorgOptions options_;
  int copy_threads_ = 1;
  cluster::NodeId first_new_node_ = cluster::kInvalidNode;
  ReorgSummary summary_;
  double virtual_minutes_ = 0.0;
  int begins_ = 0;
  /// Ordinal of the currently staged plan (base + Begin count), mixed into
  /// every fault draw.
  int plan_ordinal_ = 0;
  /// Nodes observed dead, ascending (sorted vector: deterministic iteration
  /// under determinism-lint rule R1).
  std::vector<cluster::NodeId> dead_nodes_;
};

}  // namespace arraydb::reorg

#endif  // ARRAYDB_REORG_REORG_ENGINE_H_
