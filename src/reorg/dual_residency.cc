#include "reorg/dual_residency.h"

namespace arraydb::reorg {

cluster::NodeId DualResidencyView::OwnerOf(
    const array::Coordinates& coords) const {
  const cluster::NodeId source = cluster_->SourceReplicaOf(coords);
  if (source != cluster::kInvalidNode) return source;
  return cluster_->OwnerOf(coords);
}

bool DualResidencyView::Lookup(const array::Coordinates& coords,
                               cluster::NodeId* node, int64_t* bytes) const {
  if (!cluster_->Lookup(coords, node, bytes)) return false;
  const cluster::NodeId source = cluster_->SourceReplicaOf(coords);
  if (source != cluster::kInvalidNode) *node = source;
  return true;
}

void DualResidencyView::ForEachChunk(
    const std::function<void(const array::Coordinates&, cluster::NodeId,
                             int64_t)>& fn) const {
  cluster_->ForEachChunk([this, &fn](const array::Coordinates& coords,
                                     cluster::NodeId node, int64_t bytes) {
    const cluster::NodeId source = cluster_->SourceReplicaOf(coords);
    fn(coords, source != cluster::kInvalidNode ? source : node, bytes);
  });
}

}  // namespace arraydb::reorg
