// The cyclic workload model (§3.4): data ingest, reorganization, and query
// processing, repeated per cycle over a monotonically growing store.
//
// A Workload bundles an array schema, a deterministic per-cycle batch
// generator, and the two benchmark suites of §3.3 (Select-Project-Join and
// Science Analytics). The two concrete workloads mirror the paper's use
// cases: MODIS remote sensing (§3.1) and AIS ship tracking (§3.2).

#ifndef ARRAYDB_WORKLOAD_WORKLOAD_H_
#define ARRAYDB_WORKLOAD_WORKLOAD_H_

#include <vector>

#include "array/chunk.h"
#include "array/schema.h"
#include "exec/query.h"

namespace arraydb::workload {

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;
  virtual const array::ArraySchema& schema() const = 0;

  /// Number of workload cycles in the experiment (§6.1: 14 daily cycles for
  /// MODIS, 10 quarterly cycles for AIS).
  virtual int num_cycles() const = 0;

  /// Per-node capacity used in the paper-scale experiments.
  virtual double node_capacity_gb() const = 0;

  /// Index of the growth (time) dimension, which range partitioners must
  /// not cut (the paper declares it unbounded: time=0,*).
  virtual int growth_dim() const { return 0; }

  /// The batch of new chunks ingested at `cycle`. Deterministic: the same
  /// cycle always generates the same chunks.
  virtual std::vector<array::ChunkInfo> GenerateBatch(int cycle) const = 0;

  /// Select-Project-Join benchmark queries for `cycle` (§3.3.1).
  virtual std::vector<exec::QuerySpec> SpjQueries(int cycle) const = 0;

  /// Science analytics benchmark queries for `cycle` (§3.3.2).
  virtual std::vector<exec::QuerySpec> ScienceQueries(int cycle) const = 0;
};

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_WORKLOAD_H_
