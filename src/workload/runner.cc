#include "workload/runner.h"

#include <algorithm>
#include <optional>
#include <thread>

#include "core/elastic_engine.h"
#include "reorg/reorg_engine.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace arraydb::workload {

std::vector<double> RunResult::MovedGbTrajectory() const {
  std::vector<double> out;
  out.reserve(cycles.size());
  for (const auto& m : cycles) out.push_back(m.moved_gb);
  return out;
}

RunResult WorkloadRunner::Run(const Workload& workload) const {
  const double capacity = workload.node_capacity_gb();
  core::ElasticEngine engine(
      core::MakePartitioner(config_.partitioner, workload.schema(),
                            config_.initial_nodes, capacity,
                            workload.growth_dim()),
      config_.initial_nodes, capacity, config_.cost_params);
  const int ingest_threads = util::ResolveThreadCount(config_.ingest_threads);
  engine.set_ingest_threads(ingest_threads);
  exec::QueryEngine query_engine(config_.engine_params);

  core::StaircaseConfig stair_cfg;
  stair_cfg.node_capacity_gb = capacity;
  stair_cfg.samples = config_.staircase_samples;
  stair_cfg.plan_ahead = config_.staircase_plan_ahead;
  core::LeadingStaircase staircase(stair_cfg);

  RunResult result;
  for (int cycle = 0; cycle < workload.num_cycles(); ++cycle) {
    CycleMetrics m;
    m.cycle = cycle;
    m.nodes_before = engine.cluster().num_nodes();

    const auto batch = workload.GenerateBatch(cycle);
    double batch_gb = 0.0;
    for (const auto& c : batch) {
      batch_gb += util::BytesToGb(static_cast<double>(c.bytes));
    }
    const double projected = engine.cluster().TotalGb() + batch_gb;

    // Phase 1 (§3.4): determine whether the cluster is under-provisioned
    // for the incoming insert; if so scale out and redistribute the
    // preexisting chunks.
    int to_add = 0;
    if (config_.policy == ScaleOutPolicy::kCapacityTrigger) {
      const int nodes = engine.cluster().num_nodes();
      if (projected > engine.cluster().CapacityGb() &&
          nodes < config_.max_nodes) {
        to_add = std::min(config_.nodes_per_scaleout,
                          config_.max_nodes - nodes);
      }
    } else {
      to_add = staircase.Evaluate(projected,
                                  engine.cluster().num_nodes())
                   .nodes_to_add;
    }

    // `background` lives across the insert and query phases in kOverlapped
    // mode: its routing epoch stays pinned until the cycle drains it.
    std::optional<reorg::IncrementalReorgEngine> background;
    if (to_add > 0) {
      if (config_.reorg_mode == ReorgMode::kBlocking) {
        const auto reorg = engine.ScaleOut(to_add);
        m.reorg_minutes = reorg.minutes;
        m.moved_gb = reorg.moved_gb;
        m.chunks_moved = reorg.chunks_moved;
        m.reorg_only_to_new_nodes = reorg.only_to_new_nodes;
      } else {
        const auto prep = engine.PrepareScaleOut(to_add);
        reorg::ReorgOptions opts;
        opts.increment_gb = config_.reorg_increment_gb;
        opts.copy_threads = ingest_threads;
        background.emplace(&engine.mutable_cluster(), &engine.cost_model(),
                           opts);
        const auto begun =
            background->Begin(prep.plan, prep.first_new_node);
        ARRAYDB_CHECK(begun.ok());
        if (config_.reorg_mode == ReorgMode::kIncremental) {
          // Drain before the insert: same serialized schedule as blocking,
          // but sliced, validated, and tracked per increment.
          ARRAYDB_CHECK(background->Drain().ok());
        } else {
          // kOverlapped: migrate on a background thread while this thread
          // prewarms the batch's placement state. The two touch disjoint
          // state (cluster vs. partitioner) and are each deterministic, so
          // the overlap is free of ordering effects. The prewarm's rank memo
          // makes IngestBatch's own prewarm a cache hit.
          std::thread migrator(
              [&background] { ARRAYDB_CHECK(background->StepAll().ok()); });
          if (ingest_threads > 1) {
            engine.partitioner().PrewarmPlacement(batch, ingest_threads);
          }
          migrator.join();
        }
        const auto& summary = background->summary();
        m.reorg_minutes = summary.work_minutes;
        m.moved_gb = summary.moved_gb;
        m.chunks_moved = summary.chunks_moved;
        m.reorg_only_to_new_nodes = summary.only_to_new_nodes;
        m.reorg_increments = summary.increments;
        engine.RecordReorgMinutes(summary.work_minutes);
        if (config_.reorg_mode == ReorgMode::kIncremental) {
          background.reset();
        }
      }
    }

    // Phase 2: ingest the batch. In kOverlapped mode all increments have
    // committed (placement decisions match the blocking schedule exactly);
    // only the routing epoch remains pinned for the query phase.
    const auto insert = engine.IngestBatch(batch);
    m.insert_minutes = insert.minutes;
    m.load_gb = engine.cluster().TotalGb();
    m.rsd = engine.cluster().LoadRsd();
    m.nodes_after = engine.cluster().num_nodes();
    staircase.ObserveLoad(m.load_gb);

    // Phase 3: execute the query workload. Mid-reorg cycles route through
    // the dual-residency view, which pins reads to the retained source
    // replicas — results are bit-identical to a quiesced cluster and
    // independent of migration progress.
    if (config_.run_queries) {
      const reorg::DualResidencyView dual_view(engine.cluster());
      const cluster::PlacementView& view =
          background.has_value()
              ? static_cast<const cluster::PlacementView&>(dual_view)
              : engine.cluster();
      for (const auto& q : workload.SpjQueries(cycle)) {
        const auto cost = query_engine.Simulate(q, view, workload.schema());
        m.spj_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
      }
      for (const auto& q : workload.ScienceQueries(cycle)) {
        const auto cost = query_engine.Simulate(q, view, workload.schema());
        m.science_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
      }
    }

    // The migration window closes with the cycle: release the routing epoch.
    if (background.has_value()) {
      ARRAYDB_CHECK(background->Finish().ok());
      background.reset();
    }

    // Overlap credit: in kOverlapped mode the query workload executed during
    // the migration window, so the cycle's elapsed time only pays the longer
    // of the two.
    const double benchmark_minutes = m.spj_minutes + m.science_minutes;
    if (config_.reorg_mode == ReorgMode::kOverlapped) {
      m.overlap_saved_minutes = std::min(m.reorg_minutes, benchmark_minutes);
    }
    m.elapsed_minutes = m.insert_minutes + m.reorg_minutes +
                        benchmark_minutes - m.overlap_saved_minutes;

    // Eq. 1: N_i * elapsed_i, accumulated in node hours (elapsed equals
    // I_i + r_i + w_i outside kOverlapped).
    result.cost_node_hours +=
        static_cast<double>(m.nodes_after) * m.elapsed_minutes / 60.0;

    result.total_insert_minutes += m.insert_minutes;
    result.total_reorg_minutes += m.reorg_minutes;
    result.total_spj_minutes += m.spj_minutes;
    result.total_science_minutes += m.science_minutes;
    result.total_reorg_increments += m.reorg_increments;
    result.total_overlap_saved_minutes += m.overlap_saved_minutes;
    result.total_elapsed_minutes += m.elapsed_minutes;
    result.mean_rsd += m.rsd;
    result.cycles.push_back(std::move(m));
  }
  if (!result.cycles.empty()) {
    result.mean_rsd /= static_cast<double>(result.cycles.size());
  }
  result.final_nodes = result.cycles.empty()
                           ? config_.initial_nodes
                           : result.cycles.back().nodes_after;
  return result;
}

}  // namespace arraydb::workload
