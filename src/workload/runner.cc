#include "workload/runner.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>

#include "core/elastic_engine.h"
#include "exec/morsel.h"
#include "reorg/bandwidth_arbiter.h"
#include "reorg/reorg_engine.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace arraydb::workload {

std::vector<double> RunResult::MovedGbTrajectory() const {
  std::vector<double> out;
  out.reserve(cycles.size());
  for (const auto& m : cycles) out.push_back(m.moved_gb);
  return out;
}

std::vector<double> RunResult::MigrationBudgetTrajectory() const {
  std::vector<double> out;
  out.reserve(cycles.size());
  for (const auto& m : cycles) out.push_back(m.migration_budget_gb);
  return out;
}

std::vector<double> RunResult::IngestStallTrajectory() const {
  std::vector<double> out;
  out.reserve(cycles.size());
  for (const auto& m : cycles) out.push_back(m.ingest_stall_minutes);
  return out;
}

namespace {

// Simulated minutes → integer milliseconds for the telemetry registry
// (metric values are integers so snapshots stay byte-stable).
int64_t MinutesToMs(double minutes) {
  return std::llround(minutes * 60.0 * 1000.0);
}

// Mirrors one finished cycle's metrics into the process-wide registry
// (workload.runner.*). Observe-only: reads CycleMetrics, writes nothing.
void RecordCycleTelemetry(const CycleMetrics& m, bool scaled_out) {
  TELEM_COUNTER_ADD("workload.runner.cycles", 1);
  if (scaled_out) TELEM_COUNTER_ADD("workload.runner.scale_outs", 1);
  if (m.reorg_forced_drain) {
    TELEM_COUNTER_ADD("workload.runner.forced_drains", 1);
  }
  TELEM_COUNTER_ADD("workload.runner.queries",
                    static_cast<int64_t>(m.query_minutes.size()));
  TELEM_COUNTER_ADD("workload.runner.insert_ms",
                    MinutesToMs(m.insert_minutes));
  TELEM_COUNTER_ADD("workload.runner.reorg_ms", MinutesToMs(m.reorg_minutes));
  TELEM_COUNTER_ADD("workload.runner.query_ms",
                    MinutesToMs(m.spj_minutes + m.science_minutes));
  TELEM_GAUGE_SET("workload.runner.nodes", m.nodes_after);
  for (const auto& [name, minutes] : m.query_minutes) {
    TELEM_HISTOGRAM_RECORD("workload.runner.query_latency_ms",
                           MinutesToMs(minutes));
  }
  TELEM_HISTOGRAM_RECORD("workload.runner.cycle_elapsed_ms",
                         MinutesToMs(m.elapsed_minutes));
  // Fault/recovery mirror (zero-valued adds are skipped so fault-free runs
  // leave no workload.runner.fault metrics behind).
  if (m.faults_injected > 0) {
    TELEM_COUNTER_ADD("workload.runner.faults_injected", m.faults_injected);
  }
  if (m.retries > 0) TELEM_COUNTER_ADD("workload.runner.retries", m.retries);
  if (m.replans > 0) TELEM_COUNTER_ADD("workload.runner.replans", m.replans);
  if (m.reorg_aborts > 0) {
    TELEM_COUNTER_ADD("workload.runner.reorg_aborts", m.reorg_aborts);
  }
  if (m.reorg_abandoned) {
    TELEM_COUNTER_ADD("workload.runner.reorgs_abandoned", 1);
  }
  if (m.recovery_overhead_minutes > 0.0) {
    TELEM_COUNTER_ADD("workload.runner.recovery_overhead_ms",
                      MinutesToMs(m.recovery_overhead_minutes));
  }
}

// Raw latencies and admission counts pooled across every serving cycle
// (the run-level percentiles come from the pooled population, not from
// averaging per-cycle percentiles).
struct ServingPools {
  std::vector<double> interactive_latencies;
  std::vector<double> batch_latencies;
  int64_t admitted = 0;
  int64_t rejected = 0;
};

// Plays one cycle's mixed heavy-traffic scenario through the serving
// layer: every batch session replays the cycle's full benchmark suite
// from t = 0 while the interactive sessions fire deterministic point
// queries spread across the expected service window. All requests are
// priced by the same QueryEngine against the same placement view as the
// cycle's sequential pricing, so the scenario is exactly reproducible.
ServingCycleMetrics RunServingCycle(
    const ServingConfig& cfg, const exec::QueryEngine& engine,
    const cluster::PlacementView& view, const array::ArraySchema& schema,
    const std::vector<std::pair<std::string, exec::QueryCost>>& suite,
    double dilation, bool degraded, int cycle, ServingPools* pools) {
  serve::ServerOptions options;
  options.workers = cfg.workers;
  options.slice_minutes = cfg.slice_minutes;
  options.service_dilation = dilation;
  options.degraded = degraded;
  options.admission = cfg.admission;
  options.policy = cfg.policy;
  serve::SessionServer server(options);

  const int num_interactive = std::max(1, cfg.interactive_sessions);
  const int num_batch = std::max(1, cfg.batch_sessions);
  std::vector<int> interactive_sessions;
  std::vector<int> batch_sessions;
  for (int s = 0; s < num_interactive; ++s) {
    interactive_sessions.push_back(
        server.OpenSession(serve::Tier::kInteractive));
  }
  for (int s = 0; s < num_batch; ++s) {
    batch_sessions.push_back(server.OpenSession(serve::Tier::kBatch));
  }

  // Batch tier: the sustained heavy load, submitted in arrival order
  // (everything at t = 0; the virtual clock never rewinds).
  double batch_minutes = 0.0;
  for (const auto& [name, cost] : suite) batch_minutes += cost.minutes;
  for (int s = 0; s < num_batch; ++s) {
    for (const auto& [name, cost] : suite) {
      serve::Request request;
      request.name = name;
      request.cost_minutes = cost.minutes;
      request.scan_gb = cost.scanned_gb;
      request.arrival_minutes = 0.0;
      server.Submit(batch_sessions[static_cast<size_t>(s)],
                    std::move(request));
    }
  }

  // Interactive tier: single-chunk point selections at deterministic grid
  // positions (a splitmix-style hash of cycle and index), arriving spread
  // across the window the batch load is expected to occupy.
  const double window =
      std::max(1e-3, batch_minutes * std::max(1.0, dilation) *
                         static_cast<double>(num_batch) /
                         static_cast<double>(std::max(1, cfg.workers)));
  const int total_points =
      num_interactive * std::max(0, cfg.interactive_per_session);
  const auto extents = schema.ChunkGridExtents();
  for (int i = 0; i < total_points; ++i) {
    exec::QuerySpec spec;
    spec.name = "pt-" + std::to_string(cycle) + "-" + std::to_string(i);
    spec.kind = exec::QueryKind::kFilter;
    array::Coordinates at(extents.size());
    uint64_t h = 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(i + 1) +
                 0xbf58476d1ce4e5b9ull * static_cast<uint64_t>(cycle + 1);
    for (size_t d = 0; d < extents.size(); ++d) {
      h ^= h >> 29;
      h *= 0x94d049bb133111ebull;
      at[d] = extents[d] > 0
                  ? static_cast<int64_t>(h % static_cast<uint64_t>(extents[d]))
                  : 0;
    }
    spec.region.lo = at;
    spec.region.hi = at;
    const auto cost = engine.Simulate(spec, view, schema);
    serve::Request request;
    request.name = spec.name;
    request.cost_minutes = cost.minutes;
    request.scan_gb = cost.scanned_gb;
    request.arrival_minutes = window * static_cast<double>(i + 1) /
                              static_cast<double>(total_points + 1);
    server.Submit(
        interactive_sessions[static_cast<size_t>(i % num_interactive)],
        std::move(request));
  }

  const serve::ServeResult served = server.Finish();
  const serve::TierStats& interactive =
      served.tier(serve::Tier::kInteractive);
  const serve::TierStats& batch = served.tier(serve::Tier::kBatch);
  ServingCycleMetrics metrics;
  metrics.ran = true;
  metrics.p50_interactive_ms = interactive.latency.p50_ms;
  metrics.p99_interactive_ms = interactive.latency.p99_ms;
  metrics.p50_batch_ms = batch.latency.p50_ms;
  metrics.p99_batch_ms = batch.latency.p99_ms;
  metrics.interactive_completed = interactive.latency.count;
  metrics.batch_completed = batch.latency.count;
  metrics.admitted = interactive.admitted + batch.admitted;
  metrics.rejected = served.total_rejected();
  metrics.dilation = dilation;
  metrics.makespan_minutes = served.makespan_minutes;

  pools->admitted += metrics.admitted;
  pools->rejected += metrics.rejected;
  for (const serve::Completed& rec : served.completed) {
    (rec.tier == serve::Tier::kInteractive ? pools->interactive_latencies
                                           : pools->batch_latencies)
        .push_back(rec.latency_minutes);
  }
  return metrics;
}

}  // namespace

RunResult WorkloadRunner::Run(const Workload& workload) const {
  // Config-scoped trace capture: span recording turns on for the run and
  // the buffered events are written at the end. A no-op when trace_path is
  // empty (the ARRAYDB_TRACE env hook covers that case process-wide).
  std::optional<telemetry::ScopedTracing> tracing;
  if (!config_.trace_path.empty()) tracing.emplace();

  const double capacity = workload.node_capacity_gb();
  core::ElasticEngine engine(
      core::MakePartitioner(config_.partitioner, workload.schema(),
                            config_.initial_nodes, capacity,
                            workload.growth_dim()),
      config_.initial_nodes, capacity, config_.cost_params);
  const int ingest_threads = util::ResolveThreadCount(config_.ingest.threads);
  engine.set_ingest_threads(ingest_threads);
  // Execution context: any real operator execution embedded in this run
  // (the examples and benches that query the arrays they feed the runner)
  // picks up the configured morsel parallelism and join partitioning
  // through the process default; restored on return.
  const exec::ScopedExecContext exec_scope(config_.exec_context);
  exec::QueryEngine query_engine(config_.engine_params);

  core::StaircaseConfig stair_cfg;
  stair_cfg.node_capacity_gb = capacity;
  stair_cfg.samples = config_.staircase_samples;
  stair_cfg.plan_ahead = config_.staircase_plan_ahead;
  core::LeadingStaircase staircase(stair_cfg);

  const bool paced =
      config_.reorg.budget_policy != MigrationBudgetPolicy::kFixedDrain;
  // Paced budgets spread a plan across cycles; that only makes sense when
  // queries can run mid-reorg through the dual-residency view.
  ARRAYDB_CHECK(!paced || config_.reorg.mode == ReorgMode::kOverlapped);

  RunResult result;
  // Paced-migration state living across cycles: the engine (its routing
  // epoch stays pinned until the plan drains), the arbiter owning the
  // just-in-time deadline countdown, the current cycle's grant (read by the
  // engine's budget callback), the schedule-invariant work minutes already
  // charged (pro-rated by bytes per cycle), and the EWMA of observed
  // benchmark minutes (the arbiter's overlap-window estimate; survives
  // across plans so a new plan starts with a warm window).
  std::optional<reorg::IncrementalReorgEngine> background;
  std::optional<reorg::BandwidthArbiter> arbiter;
  double cycle_budget_gb = 0.0;
  double plan_minutes_charged = 0.0;
  reorg::OverlapWindowEstimator overlap_window(
      config_.reorg.overlap_window_alpha);
  ServingPools serving_pools;
  // Summary totals already attributed to a cycle (charge_migration's
  // snapshot; reset when a plan begins).
  struct {
    double committed_gb = 0.0;
    int64_t committed_chunks = 0;
    int increments = 0;
    int over_budget_increments = 0;
    int64_t faults_injected = 0;
    int64_t transient_failures = 0;
    int64_t slow_copies = 0;
    int64_t retries = 0;
    int64_t timeouts = 0;
    int64_t node_deaths = 0;
    int64_t replans = 0;
    double backoff_ms = 0.0;
    double recovery_overhead_minutes = 0.0;
    double retry_gb = 0.0;
  } charged;

  // Fault-scenario state. The injector outlives every engine; the ordinal
  // base accumulates Begin counts across engine instances so a restaged or
  // successor plan draws fresh fault fates; the virtual clock feeds node-
  // death schedules; the staged plan is kept so an abort can restage it.
  const bool faults_on = config_.fault.enabled;
  ARRAYDB_CHECK(!faults_on || config_.reorg.mode != ReorgMode::kBlocking);
  std::optional<fault::FaultInjector> injector;
  if (faults_on) injector.emplace(config_.fault.plan);
  int plan_ordinal_base = 0;
  double virtual_now = 0.0;
  double retry_backlog_gb = 0.0;
  cluster::MovePlan active_plan;
  cluster::NodeId active_first_new = cluster::kInvalidNode;
  int plan_restarts = 0;
  // Folds the accumulated Begin count into the ordinal base and releases
  // the engine — every background.reset() goes through here.
  const auto release_background = [&] {
    plan_ordinal_base += background->plans_begun();
    background.reset();
    arbiter.reset();
  };

  for (int cycle = 0; cycle < workload.num_cycles(); ++cycle) {
    TELEM_SPAN("workload.runner.cycle");
    CycleMetrics m;
    m.cycle = cycle;
    m.nodes_before = engine.cluster().num_nodes();

    const auto batch = workload.GenerateBatch(cycle);
    double batch_gb = 0.0;
    for (const auto& c : batch) {
      batch_gb += util::BytesToGb(static_cast<double>(c.bytes));
    }
    const double projected = engine.cluster().TotalGb() + batch_gb;

    // Accounts the migration executed since the last charge (the snapshot
    // is tracked in charged, reset when a plan begins): deltas feed the
    // per-cycle trajectory, and the cycle is charged its byte share of the
    // schedule-invariant whole-plan price (the completion cycle absorbs
    // the floating-point residue, so per-cycle charges sum exactly to
    // work_minutes).
    const auto charge_migration = [&] {
      const auto& s = background->summary();
      const double moved = s.committed_gb - charged.committed_gb;
      m.moved_gb += moved;
      m.chunks_moved += s.committed_chunks - charged.committed_chunks;
      m.reorg_increments += s.increments - charged.increments;
      m.reorg_over_budget_increments +=
          s.over_budget_increments - charged.over_budget_increments;
      m.reorg_only_to_new_nodes =
          m.reorg_only_to_new_nodes && s.only_to_new_nodes;
      // A replan can revert committed bytes, driving the delta negative;
      // the charge never goes negative (the re-copy re-charges those bytes,
      // and the completion cycle absorbs the residue exactly).
      double charge =
          s.moved_gb > 0.0
              ? std::max(0.0, s.work_minutes * (moved / s.moved_gb))
              : 0.0;
      if (background->pending_chunks() == 0) {
        charge = s.work_minutes - plan_minutes_charged;
      }
      plan_minutes_charged += charge;
      m.reorg_minutes += charge;
      engine.RecordReorgMinutes(charge);
      charged.committed_gb = s.committed_gb;
      charged.committed_chunks = s.committed_chunks;
      charged.increments = s.increments;
      charged.over_budget_increments = s.over_budget_increments;
      // Fault/recovery deltas. Overhead minutes are real elapsed work on
      // top of the plan's schedule-invariant price; retry traffic feeds
      // the next cycle's bandwidth demand.
      m.faults_injected += s.faults_injected - charged.faults_injected;
      m.transient_failures +=
          s.transient_failures - charged.transient_failures;
      m.slow_copies += s.slow_copies - charged.slow_copies;
      m.retries += s.retries - charged.retries;
      m.timeouts += s.timeouts - charged.timeouts;
      m.node_deaths += s.node_deaths - charged.node_deaths;
      m.replans += s.replans - charged.replans;
      m.backoff_ms += s.backoff_ms - charged.backoff_ms;
      const double recovery =
          s.recovery_overhead_minutes - charged.recovery_overhead_minutes;
      if (recovery > 0.0) {
        m.recovery_overhead_minutes += recovery;
        m.reorg_minutes += recovery;
        engine.RecordReorgMinutes(recovery);
      }
      const double new_retry_gb = s.retry_gb - charged.retry_gb;
      if (new_retry_gb > 0.0) {
        m.retry_backlog_gb += new_retry_gb;
        retry_backlog_gb += new_retry_gb;
      }
      charged.faults_injected = s.faults_injected;
      charged.transient_failures = s.transient_failures;
      charged.slow_copies = s.slow_copies;
      charged.retries = s.retries;
      charged.timeouts = s.timeouts;
      charged.node_deaths = s.node_deaths;
      charged.replans = s.replans;
      charged.backoff_ms = s.backoff_ms;
      charged.recovery_overhead_minutes = s.recovery_overhead_minutes;
      charged.retry_gb = s.retry_gb;
    };

    // Recovery driver for every migration call site: runs the engine work,
    // and when it fails (an increment exhausted its retries, or a replan
    // found no surviving destination) charges the work done, aborts — the
    // rollback restores the exact pre-reorg placement from the retained
    // source replicas — and restages the plan under a fresh fault ordinal,
    // up to FaultConfig::max_plan_restarts. Past that the reorganization is
    // abandoned: the cluster keeps serving, just unbalanced. The first
    // attempt runs on a migrator thread overlapped with the batch placement
    // prewarm when asked (kOverlapped's structure); recovery reruns skip
    // the prewarm, which already happened.
    const auto run_migration = [&](bool drain_all, bool overlap_prewarm) {
      bool prewarmed = false;
      for (;;) {
        util::Status status;
        std::thread migrator([&background, &status, drain_all] {
          status = drain_all ? background->StepAll()
                             : background->Step().status();
        });
        if (overlap_prewarm && !prewarmed && ingest_threads > 1) {
          engine.partitioner().PrewarmPlacement(batch, ingest_threads);
        }
        prewarmed = true;
        migrator.join();
        if (status.ok()) return;
        ARRAYDB_CHECK(faults_on);
        charge_migration();
        m.reorg_aborts += 1;
        result.total_reorg_aborts += 1;
        ARRAYDB_CHECK(background->Abort().ok());
        m.rolled_back_gb += background->summary().rolled_back_gb;
        if (plan_restarts >= config_.fault.max_plan_restarts) {
          release_background();
          m.reorg_abandoned = true;
          result.reorgs_abandoned += 1;
          return;
        }
        plan_restarts += 1;
        ARRAYDB_CHECK(
            background->Begin(active_plan, active_first_new).ok());
        plan_minutes_charged = 0.0;
        charged = {};
      }
    };

    // Phase 1 (§3.4): determine whether the cluster is under-provisioned
    // for the incoming insert; if so scale out and redistribute the
    // preexisting chunks.
    int to_add = 0;
    if (config_.policy == ScaleOutPolicy::kCapacityTrigger) {
      const int nodes = engine.cluster().num_nodes();
      if (projected > engine.cluster().CapacityGb() &&
          nodes < config_.max_nodes) {
        to_add = std::min(config_.nodes_per_scaleout,
                          config_.max_nodes - nodes);
      }
    } else {
      to_add = staircase.Evaluate(projected,
                                  engine.cluster().num_nodes())
                   .nodes_to_add;
    }

    // A scale-out arriving while a paced migration is still in flight
    // force-drains the remainder first: the cluster must quiesce before the
    // next repartitioning can stage its plan.
    if (to_add > 0 && background.has_value()) {
      const double remaining = background->summary().moved_gb -
                               background->summary().committed_gb;
      cycle_budget_gb = remaining;
      run_migration(/*drain_all=*/true, /*overlap_prewarm=*/false);
      if (background.has_value()) {
        charge_migration();
        ARRAYDB_CHECK(background->Finish().ok());
        release_background();
      }
      m.migration_budget_gb += remaining;
      m.reorg_forced_drain = true;
      result.forced_drains += 1;
    }

    if (to_add > 0) {
      if (config_.reorg.mode == ReorgMode::kBlocking) {
        const auto reorg = engine.ScaleOut(to_add);
        m.reorg_minutes = reorg.minutes;
        m.moved_gb = reorg.moved_gb;
        m.chunks_moved = reorg.chunks_moved;
        m.reorg_only_to_new_nodes = reorg.only_to_new_nodes;
      } else {
        const auto prep = engine.PrepareScaleOut(to_add);
        reorg::ReorgOptions opts;
        opts.increment_gb = config_.reorg.increment_gb;
        opts.copy_threads = ingest_threads;
        if (faults_on) {
          opts.injector = &*injector;
          opts.retry = config_.fault.retry;
          opts.increment_timeout_minutes =
              config_.fault.increment_timeout_minutes;
          opts.virtual_start_minutes = virtual_now;
          opts.plan_ordinal_base = plan_ordinal_base;
        }
        if (paced) {
          // Each increment is sized by the cycle grant the budget policy
          // last computed (the arbiter's, or the fixed per-cycle budget).
          opts.budget_fn = [&cycle_budget_gb](const reorg::BudgetRequest&) {
            return cycle_budget_gb;
          };
        }
        background.emplace(&engine.mutable_cluster(), &engine.cost_model(),
                           opts);
        const auto begun =
            background->Begin(prep.plan, prep.first_new_node);
        ARRAYDB_CHECK(begun.ok());
        active_plan = prep.plan;
        active_first_new = prep.first_new_node;
        plan_restarts = 0;
        plan_minutes_charged = 0.0;
        charged = {};
        if (paced) {
          reorg::ArbiterOptions arbiter_opts;
          arbiter_opts.clamps = config_.reorg.arbitration;
          arbiter_opts.plan_ahead_cycles = config_.staircase_plan_ahead;
          if (config_.reorg.budget_policy ==
              MigrationBudgetPolicy::kFixedPaced) {
            arbiter_opts.fixed_gb = config_.reorg.increment_gb;
          }
          arbiter.emplace(&engine.cost_model(), arbiter_opts);
          arbiter->BeginPlan();
        } else if (config_.reorg.mode == ReorgMode::kIncremental) {
          // Drain before the insert: same serialized schedule as blocking,
          // but sliced, validated, and tracked per increment.
          run_migration(/*drain_all=*/true, /*overlap_prewarm=*/false);
        } else {
          // kOverlapped: migrate on a background thread while this thread
          // prewarms the batch's placement state. The two touch disjoint
          // state (cluster vs. partitioner) and are each deterministic, so
          // the overlap is free of ordering effects. The prewarm's rank memo
          // makes IngestBatch's own prewarm a cache hit.
          run_migration(/*drain_all=*/true, /*overlap_prewarm=*/true);
        }
        if (!paced && background.has_value()) {
          // Fully drained: the charge is exactly the plan's work_minutes
          // (plus any fault-recovery overhead), same as the legacy direct
          // summary read.
          charge_migration();
          if (config_.reorg.mode == ReorgMode::kIncremental) {
            ARRAYDB_CHECK(background->Finish().ok());
            release_background();
          }
        }
      }
    }

    // Paced policies: one budgeted increment per cycle (the whole remainder
    // on the deadline cycle), overlapped with the batch placement prewarm
    // exactly like the drain path. The workload's last cycle is always a
    // deadline: the plan quiesces with the run, so no migration work (or
    // its charge) is lost off the end of the experiment.
    double serving_dilation = 1.0;
    if (paced && background.has_value() && background->pending_chunks() > 0) {
      const auto& s = background->summary();
      cluster::BandwidthDemand demand;
      demand.remaining_migration_gb = s.moved_gb - s.committed_gb;
      // Retry traffic observed since the last grant widens this cycle's
      // migration demand (one-cycle lag keeps the arbitration causal and
      // deterministic); presented once, then cleared.
      demand.retry_backlog_gb = retry_backlog_gb;
      retry_backlog_gb = 0.0;
      demand.projected_ingest_gb = batch_gb;
      demand.overlap_window_minutes = overlap_window.estimate();
      demand.num_nodes = engine.cluster().num_nodes();
      if (config_.serving.enabled) {
        // Three-way arbitration: reserve query service capacity in the
        // window, and charge any migration intrusion beyond the remaining
        // free time to the serving layer as a service-time dilation.
        demand.projected_query_minutes = overlap_window.estimate();
      }
      if (cycle + 1 >= workload.num_cycles()) arbiter->ForceDeadline();
      const bool deadline = arbiter->cycles_left() <= 1;
      const auto shares = arbiter->PlanCycleShares(demand);
      cycle_budget_gb = shares.budget.migration_gb;
      m.migration_budget_gb += shares.budget.migration_gb;
      serving_dilation = shares.query_dilation;
      run_migration(/*drain_all=*/deadline, /*overlap_prewarm=*/true);
      if (background.has_value()) charge_migration();
    }

    // Phase 2: ingest the batch. In kOverlapped mode with the legacy drain
    // policy all increments have committed (placement decisions match the
    // blocking schedule exactly) and only the routing epoch remains pinned
    // for the query phase; under the paced policies the plan may still
    // hold uncommitted moves, so the insert lands on a partially migrated
    // cluster — placement consults authoritative owners, queries stay on
    // the pinned dual-residency snapshot.
    const auto insert = engine.IngestBatch(batch);
    m.insert_minutes = insert.minutes;
    m.load_gb = engine.cluster().TotalGb();
    m.rsd = engine.cluster().LoadRsd();
    m.nodes_after = engine.cluster().num_nodes();
    staircase.ObserveLoad(m.load_gb);

    // Phase 3: execute the query workload. Mid-reorg cycles route through
    // the dual-residency view, which pins reads to the retained source
    // replicas — results are bit-identical to a quiesced cluster and
    // independent of migration progress.
    if (config_.run_queries) {
      const reorg::DualResidencyView dual_view(engine.cluster());
      const cluster::PlacementView& view =
          background.has_value()
              ? static_cast<const cluster::PlacementView&>(dual_view)
              : engine.cluster();
      std::vector<std::pair<std::string, exec::QueryCost>> suite;
      for (const auto& q : workload.SpjQueries(cycle)) {
        const auto cost = query_engine.Simulate(q, view, workload.schema());
        m.spj_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
        if (config_.serving.enabled) suite.emplace_back(q.name, cost);
      }
      for (const auto& q : workload.ScienceQueries(cycle)) {
        const auto cost = query_engine.Simulate(q, view, workload.schema());
        m.science_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
        if (config_.serving.enabled) suite.emplace_back(q.name, cost);
      }
      // Serving scenario: replay the cycle's suite as concurrent batch
      // sessions plus an interactive point-query stream through the
      // SessionServer. Measurement-only with respect to the legacy cycle
      // metrics — the one coupling is the three-way arbiter's dilation
      // computed above, which stretches virtual service times.
      if (config_.serving.enabled) {
        // Graceful degradation: a cycle that saw fault recovery (retries,
        // timeouts, replans, aborts) serves with the batch tier's queue
        // capacity shed, protecting interactive latency while the
        // migration plane re-transfers.
        m.serving_degraded =
            faults_on && (m.retries > 0 || m.timeouts > 0 ||
                          m.replans > 0 || m.reorg_aborts > 0);
        m.serving = RunServingCycle(config_.serving, query_engine, view,
                                    workload.schema(), suite,
                                    serving_dilation, m.serving_degraded,
                                    cycle, &serving_pools);
      }
    }

    // The migration window closes once the plan has drained: release the
    // routing epoch. Paced plans with moves remaining stay pinned across
    // cycles (queries keep routing through the dual-residency view).
    if (background.has_value() &&
        (!paced || background->pending_chunks() == 0)) {
      ARRAYDB_CHECK(background->Finish().ok());
      release_background();
    }

    // Overlap credit: in kOverlapped mode the query workload executed during
    // the migration window, so the cycle's elapsed time only pays the longer
    // of the two. The credit comes from the migration minutes actually
    // executed this cycle (m.reorg_minutes is the executed share, not the
    // whole-plan price), so it matches the trajectory when migration is
    // paced across cycles. What the query window does not hide lands on the
    // ingest path: the stall metric.
    const double benchmark_minutes = m.spj_minutes + m.science_minutes;
    if (config_.reorg.mode == ReorgMode::kOverlapped) {
      m.overlap_saved_minutes = std::min(m.reorg_minutes, benchmark_minutes);
    }
    m.ingest_stall_minutes = m.reorg_minutes - m.overlap_saved_minutes;
    m.elapsed_minutes = m.insert_minutes + m.reorg_minutes +
                        benchmark_minutes - m.overlap_saved_minutes;
    overlap_window.Observe(benchmark_minutes);

    // Eq. 1: N_i * elapsed_i, accumulated in node hours (elapsed equals
    // I_i + r_i + w_i outside kOverlapped).
    result.cost_node_hours +=
        static_cast<double>(m.nodes_after) * m.elapsed_minutes / 60.0;

    result.total_insert_minutes += m.insert_minutes;
    result.total_reorg_minutes += m.reorg_minutes;
    result.total_spj_minutes += m.spj_minutes;
    result.total_science_minutes += m.science_minutes;
    result.total_reorg_increments += m.reorg_increments;
    result.total_overlap_saved_minutes += m.overlap_saved_minutes;
    result.total_ingest_stall_minutes += m.ingest_stall_minutes;
    result.total_over_budget_increments += m.reorg_over_budget_increments;
    result.total_elapsed_minutes += m.elapsed_minutes;
    result.total_faults_injected += m.faults_injected;
    result.total_retries += m.retries;
    result.total_timeouts += m.timeouts;
    result.total_node_deaths += m.node_deaths;
    result.total_replans += m.replans;
    result.total_backoff_ms += m.backoff_ms;
    result.total_recovery_overhead_minutes += m.recovery_overhead_minutes;
    result.mean_rsd += m.rsd;
    // Simulated wall time feeds the virtual clock the next plan's engine
    // starts at (node-death schedules trigger against it).
    virtual_now += m.elapsed_minutes;
    RecordCycleTelemetry(m, to_add > 0);
    result.cycles.push_back(std::move(m));
  }
  if (!result.cycles.empty()) {
    result.mean_rsd /= static_cast<double>(result.cycles.size());
  }
  result.final_nodes = result.cycles.empty()
                           ? config_.initial_nodes
                           : result.cycles.back().nodes_after;
  if (config_.serving.enabled) {
    result.serving_interactive =
        serve::Summarize(std::move(serving_pools.interactive_latencies));
    result.serving_batch =
        serve::Summarize(std::move(serving_pools.batch_latencies));
    result.serving_admitted = serving_pools.admitted;
    result.serving_rejected = serving_pools.rejected;
  }
  if (tracing.has_value()) {
    tracing.reset();  // Close the capture window before serializing.
    telemetry::WriteTrace(config_.trace_path);
  }
  return result;
}

}  // namespace arraydb::workload
