#include "workload/runner.h"

#include <algorithm>
#include <thread>

#include "core/elastic_engine.h"
#include "util/logging.h"
#include "util/units.h"

namespace arraydb::workload {

RunResult WorkloadRunner::Run(const Workload& workload) const {
  const double capacity = workload.node_capacity_gb();
  core::ElasticEngine engine(
      core::MakePartitioner(config_.partitioner, workload.schema(),
                            config_.initial_nodes, capacity,
                            workload.growth_dim()),
      config_.initial_nodes, capacity, config_.cost_params);
  const int ingest_threads =
      config_.ingest_threads > 0
          ? config_.ingest_threads
          : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  engine.set_ingest_threads(ingest_threads);
  exec::QueryEngine query_engine(config_.engine_params);

  core::StaircaseConfig stair_cfg;
  stair_cfg.node_capacity_gb = capacity;
  stair_cfg.samples = config_.staircase_samples;
  stair_cfg.plan_ahead = config_.staircase_plan_ahead;
  core::LeadingStaircase staircase(stair_cfg);

  RunResult result;
  for (int cycle = 0; cycle < workload.num_cycles(); ++cycle) {
    CycleMetrics m;
    m.cycle = cycle;
    m.nodes_before = engine.cluster().num_nodes();

    const auto batch = workload.GenerateBatch(cycle);
    double batch_gb = 0.0;
    for (const auto& c : batch) {
      batch_gb += util::BytesToGb(static_cast<double>(c.bytes));
    }
    const double projected = engine.cluster().TotalGb() + batch_gb;

    // Phase 1 (§3.4): determine whether the cluster is under-provisioned
    // for the incoming insert; if so scale out and redistribute the
    // preexisting chunks.
    int to_add = 0;
    if (config_.policy == ScaleOutPolicy::kCapacityTrigger) {
      const int nodes = engine.cluster().num_nodes();
      if (projected > engine.cluster().CapacityGb() &&
          nodes < config_.max_nodes) {
        to_add = std::min(config_.nodes_per_scaleout,
                          config_.max_nodes - nodes);
      }
    } else {
      to_add = staircase.Evaluate(projected,
                                  engine.cluster().num_nodes())
                   .nodes_to_add;
    }
    if (to_add > 0) {
      const auto reorg = engine.ScaleOut(to_add);
      m.reorg_minutes = reorg.minutes;
      m.moved_gb = reorg.moved_gb;
      m.chunks_moved = reorg.chunks_moved;
      m.reorg_only_to_new_nodes = reorg.only_to_new_nodes;
    }

    // Phase 2: ingest the batch.
    const auto insert = engine.IngestBatch(batch);
    m.insert_minutes = insert.minutes;
    m.load_gb = engine.cluster().TotalGb();
    m.rsd = engine.cluster().LoadRsd();
    m.nodes_after = engine.cluster().num_nodes();
    staircase.ObserveLoad(m.load_gb);

    // Phase 3: execute the query workload.
    if (config_.run_queries) {
      for (const auto& q : workload.SpjQueries(cycle)) {
        const auto cost =
            query_engine.Simulate(q, engine.cluster(), workload.schema());
        m.spj_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
      }
      for (const auto& q : workload.ScienceQueries(cycle)) {
        const auto cost =
            query_engine.Simulate(q, engine.cluster(), workload.schema());
        m.science_minutes += cost.minutes;
        m.query_minutes.emplace_back(q.name, cost.minutes);
      }
    }

    // Eq. 1: N_i * (I_i + r_i + w_i), accumulated in node hours.
    result.cost_node_hours +=
        static_cast<double>(m.nodes_after) *
        (m.insert_minutes + m.reorg_minutes + m.spj_minutes +
         m.science_minutes) /
        60.0;

    result.total_insert_minutes += m.insert_minutes;
    result.total_reorg_minutes += m.reorg_minutes;
    result.total_spj_minutes += m.spj_minutes;
    result.total_science_minutes += m.science_minutes;
    result.mean_rsd += m.rsd;
    result.cycles.push_back(std::move(m));
  }
  if (!result.cycles.empty()) {
    result.mean_rsd /= static_cast<double>(result.cycles.size());
  }
  result.final_nodes = result.cycles.empty()
                           ? config_.initial_nodes
                           : result.cycles.back().nodes_after;
  return result;
}

}  // namespace arraydb::workload
