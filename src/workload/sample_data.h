// Small materialized datasets for examples and integration tests.
//
// These build real arrays with cell payloads — miniature versions of the
// MODIS and AIS use cases — so the reference operators in exec/operators.h
// can compute actual answers (vegetation indexes, ship densities, kNN
// distances) at laptop scale.

#ifndef ARRAYDB_WORKLOAD_SAMPLE_DATA_H_
#define ARRAYDB_WORKLOAD_SAMPLE_DATA_H_

#include <cstdint>

#include "array/array.h"

namespace arraydb::workload {

/// A miniature MODIS band: 3-D (time, longitude, latitude) at 1x4x4-cell
/// chunks over a `days` x 32 x 16 cell grid. Attributes:
/// (si_value, radiance, reflectance). Radiance varies smoothly over space;
/// occupancy is dense over "land" cells and sparse over "ocean".
array::Array MakeSmallModisBand(int days, uint64_t seed);

/// A miniature AIS broadcast array: 3-D (time, longitude, latitude) at
/// 1x4x4-cell chunks over a `months` x 32 x 24 cell grid. Attributes:
/// (speed, ship_id, voyage_id). Positions cluster around two synthetic
/// ports, reproducing the use case's heavy spatial skew.
array::Array MakeSmallAisTracks(int months, int ships, uint64_t seed);

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_SAMPLE_DATA_H_
