// Small materialized datasets for examples and integration tests.
//
// These build real arrays with cell payloads — miniature versions of the
// MODIS and AIS use cases — so the reference operators in exec/operators.h
// can compute actual answers (vegetation indexes, ship densities, kNN
// distances) at laptop scale.

#ifndef ARRAYDB_WORKLOAD_SAMPLE_DATA_H_
#define ARRAYDB_WORKLOAD_SAMPLE_DATA_H_

#include <cstdint>

#include "array/array.h"

namespace arraydb::workload {

/// A MODIS band: 3-D (time, longitude, latitude) at 1x4x4-cell chunks over
/// a `days` x `lon_cells` x `lat_cells` grid. Attributes:
/// (si_value, radiance, reflectance). Radiance varies smoothly over space;
/// occupancy is dense over "land" cells (the left 5/8 of the grid) and
/// sparse over "ocean". Scaled-up grids feed the scan kernel benchmarks.
array::Array MakeModisBand(int days, int64_t lon_cells, int64_t lat_cells,
                           uint64_t seed);

/// The miniature band used by tests and examples: `days` x 32 x 16 cells.
array::Array MakeSmallModisBand(int days, uint64_t seed);

/// An AIS broadcast array: 3-D (time, longitude, latitude) at 1x4x4-cell
/// chunks over a `months` x `lon_cells` x `lat_cells` grid. Attributes:
/// (speed, ship_id, voyage_id). Positions cluster around two synthetic
/// ports, reproducing the use case's heavy spatial skew.
array::Array MakeAisTracks(int months, int ships, int64_t lon_cells,
                           int64_t lat_cells, uint64_t seed);

/// The miniature track array used by tests and examples:
/// `months` x 32 x 24 cells.
array::Array MakeSmallAisTracks(int months, int ships, uint64_t seed);

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_SAMPLE_DATA_H_
