#include "workload/modis.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/units.h"

namespace arraydb::workload {
namespace {

using array::AttrType;
using array::AttributeDesc;
using array::DimensionDesc;

// Band<si_value:int, radiance:double, reflectance:double,
//      uncertainty_idx:int, uncertainty_pct:float, platform_id:int,
//      resolution_id:int>[time=0:days-1,1, longitude=-180:179,12,
//                         latitude=-90:89,12]
// Time is indexed in days (the paper chunks its minute-resolution time
// dimension into one-day intervals; a day index is the same chunk grid).
array::ArraySchema MakeSchema(int days) {
  return array::ArraySchema(
      "Band",
      {DimensionDesc{"time", 0, days - 1, 1, false},
       DimensionDesc{"longitude", -180, 179, 12, false},
       DimensionDesc{"latitude", -90, 89, 12, false}},
      {AttributeDesc{"si_value", AttrType::kInt32},
       AttributeDesc{"radiance", AttrType::kDouble},
       AttributeDesc{"reflectance", AttrType::kDouble},
       AttributeDesc{"uncertainty_idx", AttrType::kInt32},
       AttributeDesc{"uncertainty_pct", AttrType::kFloat},
       AttributeDesc{"platform_id", AttrType::kInt32},
       AttributeDesc{"resolution_id", AttrType::kInt32}});
}

}  // namespace

ModisWorkload::ModisWorkload(ModisConfig config)
    : config_(config), schema_(MakeSchema(config.days)) {
  ARRAYDB_CHECK_GE(config_.days, 1);
  ARRAYDB_CHECK(schema_.Validate().ok());
}

std::vector<array::ChunkInfo> ModisWorkload::GenerateBatch(int cycle) const {
  ARRAYDB_CHECK_GE(cycle, 0);
  ARRAYDB_CHECK_LT(cycle, config_.days);
  const auto extents = schema_.ChunkGridExtents();
  const int64_t lon_chunks = extents[1];
  const int64_t lat_chunks = extents[2];

  // Daily volume: base rate with a gentle trend and small noise — the
  // steady demand curve of a satellite that images the whole earth daily.
  util::Rng day_rng(util::HashCombine(config_.seed,
                                      static_cast<uint64_t>(cycle)));
  const double day_gb =
      config_.gb_per_day *
      (1.0 + config_.daily_trend * static_cast<double>(cycle)) *
      (1.0 + config_.daily_noise * day_rng.NextGaussian());

  // Draw a lognormal weight per spatial chunk, then normalize so the day
  // sums to day_gb. Weights are keyed on coordinates so placement is
  // independent of iteration order.
  std::vector<array::ChunkInfo> batch;
  batch.reserve(static_cast<size_t>(lon_chunks * lat_chunks));
  std::vector<double> weights;
  weights.reserve(batch.capacity());
  double weight_sum = 0.0;
  for (int64_t lon = 0; lon < lon_chunks; ++lon) {
    for (int64_t lat = 0; lat < lat_chunks; ++lat) {
      uint64_t h = util::HashCombine(config_.seed ^ 0x4d4f444953ULL,  // "MODIS"
                                     static_cast<uint64_t>(cycle));
      h = util::HashCombine(h, static_cast<uint64_t>(lon));
      h = util::HashCombine(h, static_cast<uint64_t>(lat));
      util::Rng rng(h);
      const double w = rng.NextLogNormal(0.0, config_.size_sigma);
      weights.push_back(w);
      weight_sum += w;
      array::ChunkInfo info;
      info.coords = {cycle, lon, lat};
      batch.push_back(std::move(info));
    }
  }
  const int64_t bytes_per_cell = schema_.BytesPerCell();
  for (size_t i = 0; i < batch.size(); ++i) {
    const double gb = day_gb * weights[i] / weight_sum;
    batch[i].bytes = static_cast<int64_t>(util::GbToBytes(gb));
    batch[i].cell_count = batch[i].bytes / bytes_per_cell;
  }
  return batch;
}

std::vector<exec::QuerySpec> ModisWorkload::SpjQueries(int cycle) const {
  const auto extents = schema_.ChunkGridExtents();
  std::vector<exec::QuerySpec> queries;

  // Selection: 1/16th of lat/long space at the lower-left corner of Band 1
  // — a highly parallelizable scan.
  {
    exec::QuerySpec q;
    q.name = "modis-select-corner";
    q.kind = exec::QueryKind::kFilter;
    q.region.lo = {0, 0, 0};
    q.region.hi = {cycle, extents[1] / 4 - 1, extents[2] / 4 - 1};
    q.cpu_min_per_gb = 0.02;
    q.selectivity = 1.0;
    queries.push_back(std::move(q));
  }
  // Sort: quantile of Band 1 radiance from a uniform random sample — a
  // parallelized sort with non-trivial aggregation.
  {
    exec::QuerySpec q;
    q.name = "modis-sort-radiance-quantile";
    q.kind = exec::QueryKind::kSortQuantile;
    q.region.lo = {0, 0, 0};
    q.region.hi = {cycle, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.04;
    q.selectivity = 0.01;  // 1% sample shipped to the coordinator.
    queries.push_back(std::move(q));
  }
  // Join: vegetation index over the most recent day of data — Band 1 x
  // Band 2 position join (Figure 6).
  {
    exec::QuerySpec q;
    q.name = kJoinQueryName;
    q.kind = exec::QueryKind::kDimJoin;
    q.region.lo = {cycle, 0, 0};
    q.region.hi = {cycle, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.06;
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<exec::QuerySpec> ModisWorkload::ScienceQueries(int cycle) const {
  const auto extents = schema_.ChunkGridExtents();
  std::vector<exec::QuerySpec> queries;
  const int64_t first_day = std::max<int64_t>(0, cycle - 2);

  // Statistics: rolling average of light levels at the polar ice caps over
  // the past several days (group-by aggregation over dimension space).
  {
    exec::QuerySpec q;
    q.name = "modis-stats-north-pole";
    q.kind = exec::QueryKind::kGroupBy;
    q.region.lo = {first_day, 0, extents[2] - 2};
    q.region.hi = {cycle, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.10;
    queries.push_back(std::move(q));
  }
  {
    exec::QuerySpec q;
    q.name = "modis-stats-south-pole";
    q.kind = exec::QueryKind::kGroupBy;
    q.region.lo = {first_day, 0, 0};
    q.region.hi = {cycle, extents[1] - 1, 1};
    q.cpu_min_per_gb = 0.10;
    queries.push_back(std::move(q));
  }
  // Modeling: k-means over the lat/long and NDVI of the Amazon rainforest
  // (deforestation regions). Amazon: lon -75..-48, lat -15..5.
  {
    exec::QuerySpec q;
    q.name = "modis-kmeans-amazon";
    q.kind = exec::QueryKind::kKMeans;
    const int64_t lon_lo = (-75 + 180) / 12;   // 8
    const int64_t lon_hi = (-48 + 180) / 12;   // 11
    const int64_t lat_lo = (-15 + 90) / 12;    // 6
    const int64_t lat_hi = (5 + 90) / 12;      // 7
    q.region.lo = {0, lon_lo, lat_lo};
    q.region.hi = {cycle, lon_hi, lat_hi};
    q.cpu_min_per_gb = 0.03;
    q.iterations = 10;
    queries.push_back(std::move(q));
  }
  // Complex projection: windowed aggregate of the most recent day's
  // vegetation index — partially overlapping windows need neighbor chunks.
  {
    exec::QuerySpec q;
    q.name = "modis-window-ndvi";
    q.kind = exec::QueryKind::kWindow;
    q.region.lo = {cycle, 0, 0};
    q.region.hi = {cycle, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.30;
    q.halo_fraction = 0.3;  // Overlap slab of the neighbor chunk.
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace arraydb::workload
