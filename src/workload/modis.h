// MODIS remote-sensing workload (§3.1).
//
// Synthetic stand-in for the paper's 630 GB, 14-day MODIS Band 1/2 corpus:
// a 3-D (time, longitude, latitude) array chunked at one day x 12° x 12°,
// ~45 GB inserted per daily cycle, with mild lognormal size skew calibrated
// to the paper's statistic that the top 5% of chunks hold only ~10% of the
// data. Daily totals carry small noise and a gentle trend, so the demand
// curve is steady — which is why the Table 2 tuner prefers larger s here.

#ifndef ARRAYDB_WORKLOAD_MODIS_H_
#define ARRAYDB_WORKLOAD_MODIS_H_

#include <cstdint>

#include "workload/workload.h"

namespace arraydb::workload {

struct ModisConfig {
  int days = 14;                 // One workload cycle per day (§6.1).
  double gb_per_day = 45.0;      // 630 GB over 14 days.
  double node_capacity_gb = 100.0;
  double size_sigma = 0.55;      // Lognormal sigma for chunk-size skew.
  double daily_noise = 0.05;     // Relative sigma of daily volume noise.
  double daily_trend = 0.004;    // Relative growth per day.
  uint64_t seed = 20140622;      // SIGMOD'14 opening day.
};

class ModisWorkload final : public Workload {
 public:
  explicit ModisWorkload(ModisConfig config = ModisConfig());

  const char* name() const override { return "MODIS"; }
  const array::ArraySchema& schema() const override { return schema_; }
  int num_cycles() const override { return config_.days; }
  double node_capacity_gb() const override {
    return config_.node_capacity_gb;
  }

  std::vector<array::ChunkInfo> GenerateBatch(int cycle) const override;
  std::vector<exec::QuerySpec> SpjQueries(int cycle) const override;
  std::vector<exec::QuerySpec> ScienceQueries(int cycle) const override;

  const ModisConfig& config() const { return config_; }

  /// Names used by the per-query figures.
  static constexpr const char* kJoinQueryName = "modis-join-ndvi";

 private:
  ModisConfig config_;
  array::ArraySchema schema_;
};

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_MODIS_H_
