// WorkloadRunner: executes the cyclic workload model (§3.4) end to end —
// per cycle: provision check, scale-out + reorganization, batch insert,
// then both benchmark suites — and records the metrics behind every figure
// and table of §6.
//
// Reorganizations execute in one of three modes (ReorgMode): the legacy
// atomic kBlocking path, kIncremental (bandwidth-budgeted increments via
// reorg::IncrementalReorgEngine, drained before the insert), and kOverlapped
// — migration increments run on a background thread overlapped with the
// incoming batch's placement prewarm (the partitioner's rank memo makes the
// subsequent re-derivation free), and the cycle's queries execute mid-reorg
// through the dual-residency routing view, so in simulated time the query
// workload overlaps the migration (elapsed = insert + max(reorg, queries)).
//
// In kOverlapped mode the per-cycle migration budget comes from a
// MigrationBudgetPolicy: kFixedDrain (legacy, whole plan in the scale-out
// cycle), or the paced policies kFixedPaced/kArbitrated, which spread the
// plan across cycles — the routing epoch stays pinned until the plan
// drains, at the latest on the staircase plan-ahead deadline — and record
// the migration_budget_gb / ingest_stall_minutes trajectories. kArbitrated
// prices each cycle's budget through CostModel::ArbitrateBandwidth so
// migration never starves the ingest (and vice versa).

#ifndef ARRAYDB_WORKLOAD_RUNNER_H_
#define ARRAYDB_WORKLOAD_RUNNER_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cost_model.h"
#include "core/partitioner_factory.h"
#include "core/provisioner.h"
#include "exec/engine.h"
#include "exec/exec_context.h"
#include "fault/fault.h"
#include "reorg/bandwidth_arbiter.h"
#include "reorg/reorg_engine.h"
#include "serve/serve.h"
#include "workload/workload.h"

namespace arraydb::workload {

/// When the runner expands the cluster.
enum class ScaleOutPolicy {
  /// §6.2 experiment setup: add a fixed number of nodes whenever projected
  /// load exceeds capacity, up to max_nodes.
  kCapacityTrigger,
  /// §5: the leading-staircase PD control loop decides when and how many.
  kStaircase,
};

/// How a scale-out's MovePlan is realized.
enum class ReorgMode {
  /// Atomic Cluster::Apply; the whole cycle blocks on the transfer.
  kBlocking,
  /// Bandwidth-budgeted increments (src/reorg/), fully drained before the
  /// insert. Same serialized cycle time as blocking; records the
  /// per-increment migration trajectory.
  kIncremental,
  /// Increments run in the background: data movement overlaps the batch's
  /// placement prewarm, and queries execute mid-reorg through the
  /// dual-residency view. Query results are bit-identical to a quiesced
  /// cluster; the cycle's elapsed time folds the query workload into the
  /// migration window.
  kOverlapped,
};

/// How the per-cycle migration byte budget is derived in the incremental
/// modes (kIncremental/kOverlapped).
enum class MigrationBudgetPolicy {
  /// Legacy: the whole MovePlan drains within its scale-out cycle, sliced
  /// into fixed reorg_increment_gb increments.
  kFixedDrain,
  /// Pace the plan across cycles — one fixed reorg_increment_gb increment
  /// per cycle — force-draining the remainder on the staircase plan-ahead
  /// deadline (or when an early scale-out needs the cluster quiesced).
  /// Requires ReorgMode::kOverlapped.
  kFixedPaced,
  /// Pace the plan across cycles with per-cycle budgets from
  /// cluster::CostModel::ArbitrateBandwidth (via reorg::BandwidthArbiter):
  /// migration finishes just-in-time for the next staircase step without
  /// starving the cycle's ingest. Requires ReorgMode::kOverlapped.
  kArbitrated,
};

/// Ingest-side settings.
struct IngestConfig {
  /// Worker threads for the chunk-parallel ingest/placement fast path
  /// (per-chunk placement state is precomputed in parallel and merged in
  /// order; all placement decisions remain sequential and deterministic).
  /// 1 = fully sequential; 0 = auto (hardware concurrency). The 0-means-auto
  /// convention is interpreted in exactly one place,
  /// util::ResolveThreadCount, which every consumer calls.
  int threads = 1;
};

/// Reorganization settings.
struct ReorgConfig {
  /// Reorganization execution mode; metrics and query results are
  /// deterministic for every mode, thread count, and increment size.
  ReorgMode mode = ReorgMode::kBlocking;
  /// Per-cycle migration budget derivation for the incremental modes. The
  /// paced policies require mode == kOverlapped.
  MigrationBudgetPolicy budget_policy = MigrationBudgetPolicy::kFixedDrain;
  /// Byte budget per migration increment (GB) for the fixed budget
  /// policies. Defaults to the same constant as ReorgOptions.increment_gb
  /// (reorg::kDefaultIncrementGb) and is forwarded explicitly, so the two
  /// cannot diverge silently.
  double increment_gb = reorg::kDefaultIncrementGb;
  /// EWMA smoothing factor for the arbiter's query-overlap window estimate
  /// (reorg::OverlapWindowEstimator). 1.0 reproduces the legacy
  /// previous-cycle estimator bit for bit.
  double overlap_window_alpha = reorg::OverlapWindowEstimator::kDefaultAlpha;
  /// Floor/ceiling clamps for MigrationBudgetPolicy::kArbitrated (and the
  /// serving scenario's three-way arbitration).
  cluster::ArbitrationClamps arbitration;
};

/// Serving-layer scenario settings: when enabled, every query cycle also
/// plays a mixed heavy-traffic scenario through serve::SessionServer — the
/// cycle's benchmark suite submitted by N batch sessions while interactive
/// sessions fire point queries at it — and records per-tier latency
/// percentiles. Measurement-only with respect to the legacy metrics:
/// spj/science/elapsed minutes are untouched; the one coupling runs the
/// other way (under kArbitrated the serving demand enters the three-way
/// arbitration, and migration intrusion dilates serving latencies).
struct ServingConfig {
  bool enabled = false;
  /// Concurrent sessions per tier.
  int interactive_sessions = 4;
  int batch_sessions = 2;
  /// Interactive point queries per session per cycle.
  int interactive_per_session = 8;
  /// Virtual workers and slice length (serve::ServerOptions).
  int workers = 4;
  double slice_minutes = 0.05;
  serve::AdmissionLimits admission;
  serve::SchedulerPolicy policy;
};

/// Fault-scenario settings: when enabled, every incremental reorganization
/// runs against a deterministic fault::FaultInjector — transient transfer
/// failures retry under the engine's backoff policy, slow copies dilate,
/// scheduled node deaths trigger replans onto the surviving new nodes — and
/// the runner recovers from exhausted retries by aborting (exact pre-reorg
/// restore via the retained source replicas) and restaging the plan under a
/// fresh fault ordinal. Queries keep flowing mid-fault through the
/// dual-residency view and stay bit-identical to a quiesced cluster.
/// Requires an incremental ReorgMode; kBlocking scale-outs bypass the
/// injection hooks entirely.
struct FaultConfig {
  bool enabled = false;
  /// Seeded fault schedule (rates, dilation, node deaths). The node-death
  /// times are matched against the reorg engine's virtual clock, which
  /// starts at the run's elapsed simulated minutes when a plan begins.
  fault::FaultPlan plan;
  /// Per-increment retry/backoff schedule.
  reorg::RetryPolicy retry;
  /// Per-increment copy timeout, in virtual minutes (infinity = disabled).
  double increment_timeout_minutes =
      std::numeric_limits<double>::infinity();
  /// Abort-and-restage attempts per plan after the engine's own retries are
  /// exhausted. Past this the reorganization is abandoned: the rollback has
  /// already restored the exact pre-reorg placement, so the cluster keeps
  /// serving correctly — just unbalanced until a later scale-out.
  int max_plan_restarts = 2;
};

struct RunnerConfig {
  core::PartitionerKind partitioner =
      core::PartitionerKind::kConsistentHash;
  ScaleOutPolicy policy = ScaleOutPolicy::kCapacityTrigger;
  int initial_nodes = 2;
  int nodes_per_scaleout = 2;  // Capacity-trigger step (§6.2 uses 2).
  int max_nodes = 8;           // Capacity-trigger testbed size.
  int staircase_samples = 4;   // s, for the staircase policy.
  int staircase_plan_ahead = 3;  // p, for the staircase policy.
  IngestConfig ingest;
  /// Data-plane execution settings (operator threads, join partition bits,
  /// morsel grain), installed as the process-default ExecContext for the
  /// duration of Run() so operator work embedded in a workload run —
  /// examples, benches — inherits it. Results are bit-identical at every
  /// setting (morsel + join determinism contracts).
  exec::ExecContext exec_context;
  ReorgConfig reorg;
  ServingConfig serving;
  FaultConfig fault;
  cluster::CostParams cost_params;
  exec::EngineParams engine_params;
  bool run_queries = true;
  /// When non-empty, Run() records telemetry trace spans for its duration
  /// and writes them to this path as Chrome trace-event JSON (load it in
  /// chrome://tracing or Perfetto). Observe-only: results are bit-identical
  /// with or without tracing. The ARRAYDB_TRACE environment variable offers
  /// the same capture process-wide without touching the config.
  std::string trace_path;
};

/// One cycle's serving-scenario outcome (latencies in simulated ms).
struct ServingCycleMetrics {
  bool ran = false;
  double p50_interactive_ms = 0.0;
  double p99_interactive_ms = 0.0;
  double p50_batch_ms = 0.0;
  double p99_batch_ms = 0.0;
  int64_t interactive_completed = 0;
  int64_t batch_completed = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  /// The three-way arbiter's query dilation this cycle (1.0 outside a
  /// paced migration window).
  double dilation = 1.0;
  double makespan_minutes = 0.0;
};

/// Everything measured in one workload cycle.
struct CycleMetrics {
  int cycle = 0;
  int nodes_before = 0;
  int nodes_after = 0;
  double load_gb = 0.0;          // Storage demand after the insert.
  double insert_minutes = 0.0;   // I_i
  double reorg_minutes = 0.0;    // r_i
  double spj_minutes = 0.0;      // SPJ benchmark share of w_i.
  double science_minutes = 0.0;  // Science benchmark share of w_i.
  double rsd = 0.0;              // Load balance after the insert.
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  bool reorg_only_to_new_nodes = true;
  /// Migration increments committed this cycle (0 in blocking mode; depends
  /// on reorg_increment_gb — the one schedule-dependent metric).
  int reorg_increments = 0;
  /// Migration GB the budget policy granted this cycle (paced policies
  /// only; 0 when no migration was pending).
  double migration_budget_gb = 0.0;
  /// Migration minutes not hidden behind the cycle's query window — the
  /// time the ingest pipeline waits on migration traffic:
  /// reorg_minutes - overlap_saved_minutes.
  double ingest_stall_minutes = 0.0;
  /// Increments whose at-least-one-move slice exceeded the granted budget.
  int reorg_over_budget_increments = 0;
  /// True when a scale-out arrived while a paced migration was still in
  /// flight and the remainder was force-drained this cycle.
  bool reorg_forced_drain = false;
  /// Simulated minutes saved by overlapping queries with migration
  /// (kOverlapped only): min(migration minutes actually executed this
  /// cycle, benchmark minutes) — computed from the increments that ran,
  /// not the whole-plan price, so the credit matches the trajectory when
  /// migration is paced across cycles.
  double overlap_saved_minutes = 0.0;
  /// Wall time of the cycle: insert + reorg + benchmarks, minus the overlap
  /// credit. Equals the serial sum outside kOverlapped.
  double elapsed_minutes = 0.0;
  // -- Fault/recovery metrics (zero unless FaultConfig::enabled) ----------
  int64_t faults_injected = 0;
  int64_t transient_failures = 0;
  int64_t slow_copies = 0;
  int64_t retries = 0;
  int64_t timeouts = 0;
  int64_t node_deaths = 0;
  int64_t replans = 0;
  /// Virtual backoff milliseconds spent between copy attempts.
  double backoff_ms = 0.0;
  /// Abort-and-restage recoveries this cycle (engine retries exhausted).
  int reorg_aborts = 0;
  /// Committed GB rolled back onto source replicas by aborts this cycle.
  double rolled_back_gb = 0.0;
  /// True when the plan ran out of restage attempts and was abandoned (the
  /// rollback left the exact pre-reorg placement; the cluster serves on).
  bool reorg_abandoned = false;
  /// Virtual minutes of pure fault overhead charged to this cycle's
  /// reorg_minutes (failed attempts, backoff, dilation, replan re-copies).
  double recovery_overhead_minutes = 0.0;
  /// Retry traffic observed this cycle, fed to the next cycle's bandwidth
  /// arbitration as BandwidthDemand::retry_backlog_gb.
  double retry_backlog_gb = 0.0;
  /// True when the serving layer ran this cycle in degraded mode (batch
  /// admission shed) because fault recovery was active.
  bool serving_degraded = false;
  /// Per-query latencies (name, minutes) for figure-level series.
  std::vector<std::pair<std::string, double>> query_minutes;
  /// Serving-layer stats for this cycle (ran == false unless
  /// ServingConfig::enabled).
  ServingCycleMetrics serving;
};

struct RunResult {
  std::vector<CycleMetrics> cycles;
  double total_insert_minutes = 0.0;
  double total_reorg_minutes = 0.0;
  double total_spj_minutes = 0.0;
  double total_science_minutes = 0.0;
  double mean_rsd = 0.0;          // Averaged over all inserts (Figure 4).
  double cost_node_hours = 0.0;   // Eq. 1, on elapsed cycle time.
  int final_nodes = 0;
  int64_t total_reorg_increments = 0;
  double total_overlap_saved_minutes = 0.0;
  /// Total minutes the ingest pipeline waited on migration traffic.
  double total_ingest_stall_minutes = 0.0;
  int64_t total_over_budget_increments = 0;
  /// Paced migrations force-drained by an early scale-out.
  int forced_drains = 0;
  /// Sum of per-cycle elapsed times; equals total_workload_minutes() outside
  /// kOverlapped, strictly below it when queries overlapped a migration.
  double total_elapsed_minutes = 0.0;
  /// Pooled serving-layer latency summaries across all cycles (counts are
  /// zero unless ServingConfig::enabled).
  serve::LatencySummary serving_interactive;
  serve::LatencySummary serving_batch;
  int64_t serving_admitted = 0;
  int64_t serving_rejected = 0;
  // -- Fault/recovery totals (zero unless FaultConfig::enabled) -----------
  int64_t total_faults_injected = 0;
  int64_t total_retries = 0;
  int64_t total_timeouts = 0;
  int64_t total_node_deaths = 0;
  int64_t total_replans = 0;
  int total_reorg_aborts = 0;
  /// Reorganizations abandoned after exhausting restage attempts.
  int reorgs_abandoned = 0;
  double total_backoff_ms = 0.0;
  double total_recovery_overhead_minutes = 0.0;

  double total_benchmark_minutes() const {
    return total_spj_minutes + total_science_minutes;
  }
  double total_workload_minutes() const {
    return total_insert_minutes + total_reorg_minutes +
           total_benchmark_minutes();
  }

  /// Per-cycle moved GB, in cycle order (the reorganization trajectory).
  std::vector<double> MovedGbTrajectory() const;

  /// Per-cycle granted migration budgets (the arbitration trajectory).
  std::vector<double> MigrationBudgetTrajectory() const;

  /// Per-cycle ingest stall minutes.
  std::vector<double> IngestStallTrajectory() const;
};

class WorkloadRunner {
 public:
  explicit WorkloadRunner(RunnerConfig config) : config_(std::move(config)) {}

  /// Runs every cycle of `workload` and returns the collected metrics.
  RunResult Run(const Workload& workload) const;

  const RunnerConfig& config() const { return config_; }

 private:
  RunnerConfig config_;
};

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_RUNNER_H_
