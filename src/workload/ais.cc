#include "workload/ais.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/units.h"

namespace arraydb::workload {
namespace {

using array::AttrType;
using array::AttributeDesc;
using array::DimensionDesc;

// Broadcast<speed:int, course:int, heading:int, ROT:int, status:int,
//           voyageId:int, ship_id:int, receiverType:char,
//           receiverId:string, provenance:string>
//          [time=0:months-1,1, longitude=-180:-67,4, latitude=0:90,4]
// Time is indexed in months (the paper chunks minute-resolution time into
// 30-day intervals; a month index is the same chunk grid).
array::ArraySchema MakeSchema(int months) {
  return array::ArraySchema(
      "Broadcast",
      {DimensionDesc{"time", 0, months - 1, 1, false},
       DimensionDesc{"longitude", -180, -67, 4, false},
       DimensionDesc{"latitude", 0, 90, 4, false}},
      {AttributeDesc{"speed", AttrType::kInt32},
       AttributeDesc{"course", AttrType::kInt32},
       AttributeDesc{"heading", AttrType::kInt32},
       AttributeDesc{"ROT", AttrType::kInt32},
       AttributeDesc{"status", AttrType::kInt32},
       AttributeDesc{"voyageId", AttrType::kInt32},
       AttributeDesc{"ship_id", AttrType::kInt32},
       AttributeDesc{"receiverType", AttrType::kChar},
       AttributeDesc{"receiverId", AttrType::kString},
       AttributeDesc{"provenance", AttrType::kString}});
}

// Major US ports (longitude, latitude): where AIS traffic congregates.
struct Port {
  double lon;
  double lat;
  double strength;
};
constexpr Port kPorts[] = {
    {-95.0, 29.5, 1.00},   // Houston (the paper's selection target).
    {-90.1, 29.9, 0.85},   // New Orleans / lower Mississippi.
    {-74.0, 40.6, 0.90},   // New York / New Jersey.
    {-118.2, 33.7, 0.95},  // Los Angeles / Long Beach.
    {-122.3, 47.6, 0.60},  // Seattle / Tacoma.
    {-80.1, 25.8, 0.70},   // Miami.
    {-122.4, 37.8, 0.65},  // San Francisco / Oakland.
    {-76.3, 36.9, 0.60},   // Norfolk / Hampton Roads.
    {-81.1, 32.1, 0.55},   // Savannah.
    {-71.0, 42.3, 0.40},   // Boston.
    {-88.0, 30.7, 0.35},   // Mobile.
    {-97.4, 27.8, 0.45},   // Corpus Christi.
};

}  // namespace

double AisWorkload::CellScore(int64_t lon_chunk, int64_t lat_chunk) const {
  // Cell center in degrees.
  const double lon = -180.0 + (static_cast<double>(lon_chunk) + 0.5) * 4.0;
  const double lat = (static_cast<double>(lat_chunk) + 0.5) * 4.0;
  double score = 0.0;
  for (const auto& port : kPorts) {
    const double dx = (lon - port.lon) / 4.0;  // Distance in chunk units.
    const double dy = (lat - port.lat) / 4.0;
    const double d2 = dx * dx + dy * dy;
    score += port.strength * std::exp(-d2 / 2.0);  // Gaussian falloff.
  }
  return score;
}

AisWorkload::AisWorkload(AisConfig config)
    : config_(config), schema_(MakeSchema(config.months)) {
  ARRAYDB_CHECK(schema_.Validate().ok());
  ARRAYDB_CHECK_EQ(config_.months % config_.months_per_cycle, 0);

  // Rank spatial cells by port proximity.
  const auto extents = schema_.ChunkGridExtents();
  struct Scored {
    int64_t lon;
    int64_t lat;
    double score;
  };
  std::vector<Scored> scored;
  for (int64_t lon = 0; lon < extents[1]; ++lon) {
    for (int64_t lat = 0; lat < extents[2]; ++lat) {
      scored.push_back({lon, lat, CellScore(lon, lat)});
    }
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.lon != b.lon) return a.lon < b.lon;
    return a.lat < b.lat;
  });
  cells_by_heat_.reserve(scored.size());
  for (const auto& s : scored) cells_by_heat_.emplace_back(s.lon, s.lat);

  // Zipf share per hot rank.
  const int hot = std::min<int>(config_.hot_cells,
                                static_cast<int>(cells_by_heat_.size()));
  hot_share_.resize(static_cast<size_t>(hot));
  double norm = 0.0;
  for (int r = 0; r < hot; ++r) {
    hot_share_[static_cast<size_t>(r)] =
        1.0 / std::pow(static_cast<double>(r + 1), config_.zipf_alpha);
    norm += hot_share_[static_cast<size_t>(r)];
  }
  for (auto& s : hot_share_) s /= norm;
}

std::vector<array::ChunkInfo> AisWorkload::GenerateBatch(int cycle) const {
  ARRAYDB_CHECK_GE(cycle, 0);
  ARRAYDB_CHECK_LT(cycle, num_cycles());
  const int64_t bytes_per_cell = schema_.BytesPerCell();
  std::vector<array::ChunkInfo> batch;

  for (int m = 0; m < config_.months_per_cycle; ++m) {
    const int month = cycle * config_.months_per_cycle + m;
    util::Rng month_rng(util::HashCombine(config_.seed,
                                          static_cast<uint64_t>(month)));
    // Seasonal volume: peaks toward the holidays (month 10-11 of the year).
    const double season = std::sin(
        2.0 * M_PI * (static_cast<double>(month % 12) - 7.5) / 12.0);
    const double month_gb =
        config_.gb_per_month *
        (1.0 + config_.seasonal_amplitude * season) *
        (1.0 + config_.monthly_noise * month_rng.NextGaussian());

    // Background mass: every cell logs at least a few broadcasts. With a
    // ~1 KB median the background is negligible volume but dominates count.
    const double small_gb =
        util::BytesToGb(static_cast<double>(cells_by_heat_.size()) * 1000.0);
    const double hot_gb = std::max(month_gb - small_gb, 0.0);

    for (size_t rank = 0; rank < cells_by_heat_.size(); ++rank) {
      const auto [lon, lat] = cells_by_heat_[rank];
      uint64_t h = util::HashCombine(config_.seed ^ 0x414953ULL,  // "AIS"
                                     static_cast<uint64_t>(month));
      h = util::HashCombine(h, static_cast<uint64_t>(lon));
      h = util::HashCombine(h, static_cast<uint64_t>(lat));
      util::Rng cell_rng(h);

      double gb = 0.0;
      if (rank < hot_share_.size()) {
        gb = hot_gb * hot_share_[rank] *
             (1.0 + 0.1 * cell_rng.NextGaussian());
        if (gb < 0.0) gb = 0.0;
      }
      // Background broadcasts: 300-1700 bytes.
      const int64_t background =
          300 + static_cast<int64_t>(cell_rng.NextUniform(0.0, 1400.0));
      array::ChunkInfo info;
      info.coords = {month, lon, lat};
      info.bytes = static_cast<int64_t>(util::GbToBytes(gb)) + background;
      info.cell_count = info.bytes / bytes_per_cell;
      if (info.cell_count == 0) info.cell_count = 1;
      batch.push_back(std::move(info));
    }
  }
  return batch;
}

std::vector<exec::QuerySpec> AisWorkload::SpjQueries(int cycle) const {
  const auto extents = schema_.ChunkGridExtents();
  const int64_t last_month =
      static_cast<int64_t>(cycle + 1) * config_.months_per_cycle - 1;
  const int64_t first_month = last_month - config_.months_per_cycle + 1;
  std::vector<exec::QuerySpec> queries;

  // Selection: the densely trafficked area around the port of Houston —
  // tests the database's ability to cope with skew.
  {
    exec::QuerySpec q;
    q.name = "ais-select-houston";
    q.kind = exec::QueryKind::kFilter;
    const int64_t lon = (-95 + 180) / 4;  // 21
    const int64_t lat = 29 / 4;           // 7
    q.region.lo = {first_month, lon - 1, lat - 1};
    q.region.hi = {last_month, lon + 1, lat + 1};
    q.cpu_min_per_gb = 0.02;
    queries.push_back(std::move(q));
  }
  // Sort: sorted log of distinct ship identifiers. Like the rest of the
  // benchmark it leans on recent data ("cooking" new measurements), so the
  // log covers the last two quarters.
  {
    exec::QuerySpec q;
    q.name = "ais-sort-distinct-ships";
    q.kind = exec::QueryKind::kSortQuantile;
    q.region.lo = {std::max<int64_t>(0, first_month - 4), 0, 0};
    q.region.hi = {last_month, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.04;
    q.selectivity = 0.02;
    queries.push_back(std::move(q));
  }
  // Join: recent ship ids joined with the replicated Vessel array (25 MB).
  {
    exec::QuerySpec q;
    q.name = "ais-join-vessel";
    q.kind = exec::QueryKind::kAttrJoin;
    q.region.lo = {first_month, 0, 0};
    q.region.hi = {last_month, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.05;
    q.small_side_gb = 0.024;  // The 25 MB vessel array.
    queries.push_back(std::move(q));
  }
  return queries;
}

std::vector<exec::QuerySpec> AisWorkload::ScienceQueries(int cycle) const {
  const auto extents = schema_.ChunkGridExtents();
  const int64_t last_month =
      static_cast<int64_t>(cycle + 1) * config_.months_per_cycle - 1;
  const int64_t first_month = last_month - config_.months_per_cycle + 1;
  std::vector<exec::QuerySpec> queries;

  // Statistics: coarse-grained map of track counts where ships are in
  // motion (coastline-erosion modeling) — group-by over dimension space.
  {
    exec::QuerySpec q;
    q.name = "ais-stats-track-density";
    q.kind = exec::QueryKind::kGroupBy;
    q.region.lo = {first_month, 0, 0};
    q.region.hi = {last_month, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.20;
    queries.push_back(std::move(q));
  }
  // Modeling: k-nearest-neighbors for a uniform random sample of ships —
  // profits from preserving the spatial arrangement (Figure 7).
  {
    exec::QuerySpec q;
    q.name = kKnnQueryName;
    q.kind = exec::QueryKind::kKnn;
    q.region.lo = {0, 0, 0};
    q.region.hi = {last_month, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.10;
    q.knn_samples = 256;
    q.halo_fraction = 0.3;  // Overlap slab of the neighbor chunk.
    q.seed = 0x6b6e6eULL + static_cast<uint64_t>(cycle);
    queries.push_back(std::move(q));
  }
  // Complex projection: predict vessel collisions by extrapolating each
  // ship's trajectory a few minutes ahead — windowed neighborhood access
  // over the most recent month.
  {
    exec::QuerySpec q;
    q.name = "ais-window-collision";
    q.kind = exec::QueryKind::kWindow;
    q.region.lo = {last_month, 0, 0};
    q.region.hi = {last_month, extents[1] - 1, extents[2] - 1};
    q.cpu_min_per_gb = 0.30;
    q.halo_fraction = 0.3;  // Overlap slab of the neighbor chunk.
    queries.push_back(std::move(q));
  }
  return queries;
}

}  // namespace arraydb::workload
