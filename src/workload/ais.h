// AIS ship-tracking workload (§3.2).
//
// Synthetic stand-in for the 400 GB NOAA Marine Cadastre AIS corpus: a 3-D
// (time, longitude, latitude) array over US waters chunked at 30 days x 4°
// x 4°, ingested in quarterly cycles. Vessel traffic concentrates around
// major ports, so chunk sizes are extremely skewed: the generator routes a
// Zipf-distributed share of each month's volume to the cells nearest a set
// of real port locations, calibrated to the paper's statistics (~85% of the
// data in 5% of the chunks; median chunk around a kilobyte). Monthly
// volumes carry a strong seasonal (holiday-shipping) pattern, which is why
// the Table 2 tuner prefers s = 1 here.

#ifndef ARRAYDB_WORKLOAD_AIS_H_
#define ARRAYDB_WORKLOAD_AIS_H_

#include <cstdint>

#include "workload/workload.h"

namespace arraydb::workload {

struct AisConfig {
  int months = 40;                // 10 cycles x 4 months (~2009-2012).
  int months_per_cycle = 4;       // Quarterly modeling (§6.1).
  double gb_per_month = 10.0;     // 400 GB total.
  double node_capacity_gb = 50.0;  // See DESIGN.md §1 (capacity substitution).
  int hot_cells = 120;            // Cells receiving the Zipf mass.
  double zipf_alpha = 1.15;       // Skew of the hot-cell distribution.
  double seasonal_amplitude = 0.35;  // Holiday shipping swing.
  double monthly_noise = 0.03;
  uint64_t seed = 19122009;       // AIS mandate era.
};

class AisWorkload final : public Workload {
 public:
  explicit AisWorkload(AisConfig config = AisConfig());

  const char* name() const override { return "AIS"; }
  const array::ArraySchema& schema() const override { return schema_; }
  int num_cycles() const override {
    return config_.months / config_.months_per_cycle;
  }
  double node_capacity_gb() const override {
    return config_.node_capacity_gb;
  }

  std::vector<array::ChunkInfo> GenerateBatch(int cycle) const override;
  std::vector<exec::QuerySpec> SpjQueries(int cycle) const override;
  std::vector<exec::QuerySpec> ScienceQueries(int cycle) const override;

  const AisConfig& config() const { return config_; }

  /// Name used by the Figure 7 per-cycle series.
  static constexpr const char* kKnnQueryName = "ais-knn-traffic";

 private:
  /// Traffic attractiveness score of a spatial cell (port proximity).
  double CellScore(int64_t lon_chunk, int64_t lat_chunk) const;

  AisConfig config_;
  array::ArraySchema schema_;
  // Spatial cells sorted hottest-first, with each hot cell's share of the
  // monthly hot mass (Zipf over rank).
  std::vector<std::pair<int64_t, int64_t>> cells_by_heat_;  // (lon, lat)
  std::vector<double> hot_share_;
};

}  // namespace arraydb::workload

#endif  // ARRAYDB_WORKLOAD_AIS_H_
