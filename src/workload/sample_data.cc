#include "workload/sample_data.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace arraydb::workload {

using array::Array;
using array::ArraySchema;
using array::AttrType;
using array::AttributeDesc;
using array::DimensionDesc;

Array MakeModisBand(int days, int64_t lon_cells, int64_t lat_cells,
                    uint64_t seed) {
  ARRAYDB_CHECK_GE(days, 1);
  ARRAYDB_CHECK_GE(lon_cells, 8);
  ARRAYDB_CHECK_GE(lat_cells, 8);
  ArraySchema schema(
      "band_small",
      {DimensionDesc{"time", 0, days - 1, 1, false},
       DimensionDesc{"longitude", 0, lon_cells - 1, 4, false},
       DimensionDesc{"latitude", 0, lat_cells - 1, 4, false}},
      {AttributeDesc{"si_value", AttrType::kInt32},
       AttributeDesc{"radiance", AttrType::kDouble},
       AttributeDesc{"reflectance", AttrType::kDouble}});
  Array band(std::move(schema));

  // The defaults reproduce the 32 x 16 miniature bit-exactly: the land
  // boundary and latitude center scale with the grid (20 and 8.0 at 32x16),
  // and the insertion/rng order is grid-size independent.
  const int64_t land_limit = lon_cells * 5 / 8;
  const double lat_center = static_cast<double>(lat_cells) / 2.0;
  util::Rng rng(seed);
  for (int64_t t = 0; t < days; ++t) {
    for (int64_t lon = 0; lon < lon_cells; ++lon) {
      for (int64_t lat = 0; lat < lat_cells; ++lat) {
        // "Land" covers the left part of the grid; ocean cells are sparse.
        const bool land = lon < land_limit;
        const double occupancy = land ? 0.9 : 0.15;
        if (rng.NextDouble() >= occupancy) continue;
        // Radiance: smooth spatial gradient + daily wobble; reflectance
        // correlates with latitude (ice caps are brighter).
        const double radiance =
            100.0 + 2.0 * static_cast<double>(lon) -
            1.5 * std::abs(static_cast<double>(lat) - lat_center) +
            3.0 * std::sin(static_cast<double>(t)) + rng.NextGaussian();
        const double reflectance =
            0.2 + 0.04 * std::abs(static_cast<double>(lat) - lat_center) +
            0.01 * rng.NextGaussian();
        const double si = std::round(radiance * 10.0);
        ARRAYDB_CHECK(
            band.InsertCell({t, lon, lat}, {si, radiance, reflectance}).ok());
      }
    }
  }
  return band;
}

Array MakeSmallModisBand(int days, uint64_t seed) {
  return MakeModisBand(days, /*lon_cells=*/32, /*lat_cells=*/16, seed);
}

Array MakeAisTracks(int months, int ships, int64_t lon_cells,
                    int64_t lat_cells, uint64_t seed) {
  ARRAYDB_CHECK_GE(months, 1);
  ARRAYDB_CHECK_GE(ships, 1);
  ARRAYDB_CHECK_GE(lon_cells, 8);
  ARRAYDB_CHECK_GE(lat_cells, 8);
  ArraySchema schema(
      "broadcast_small",
      {DimensionDesc{"time", 0, months - 1, 1, false},
       DimensionDesc{"longitude", 0, lon_cells - 1, 4, false},
       DimensionDesc{"latitude", 0, lat_cells - 1, 4, false}},
      {AttributeDesc{"speed", AttrType::kInt32},
       AttributeDesc{"ship_id", AttrType::kInt32},
       AttributeDesc{"voyage_id", AttrType::kInt32}});
  Array tracks(std::move(schema));

  // Two synthetic ports; ships loiter near one of them and occasionally
  // steam between them, so most broadcasts cluster at the ports. Port
  // positions scale with the grid (6/26 and 6/18 at 32 x 24, matching the
  // original miniature exactly).
  const double port_lon[2] = {0.1875 * static_cast<double>(lon_cells),
                              0.8125 * static_cast<double>(lon_cells)};
  const double port_lat[2] = {0.25 * static_cast<double>(lat_cells),
                              0.75 * static_cast<double>(lat_cells)};

  util::Rng rng(seed);
  for (int ship = 0; ship < ships; ++ship) {
    const int home = static_cast<int>(rng.NextBounded(2));
    for (int64_t t = 0; t < months; ++t) {
      // 80%: near the home port. 20%: in transit on the open grid.
      const bool in_port = rng.NextDouble() < 0.8;
      double lon, lat, speed;
      if (in_port) {
        lon = port_lon[home] + rng.NextGaussian() * 1.2;
        lat = port_lat[home] + rng.NextGaussian() * 1.2;
        speed = std::abs(rng.NextGaussian()) * 2.0;  // Mostly idle.
      } else {
        const double progress = rng.NextDouble();
        lon = port_lon[0] + (port_lon[1] - port_lon[0]) * progress +
              rng.NextGaussian();
        lat = port_lat[0] + (port_lat[1] - port_lat[0]) * progress +
              rng.NextGaussian();
        speed = 10.0 + std::abs(rng.NextGaussian()) * 4.0;  // Underway.
      }
      const int64_t ilon = std::clamp<int64_t>(
          static_cast<int64_t>(std::llround(lon)), 0, lon_cells - 1);
      const int64_t ilat = std::clamp<int64_t>(
          static_cast<int64_t>(std::llround(lat)), 0, lat_cells - 1);
      // One broadcast per ship-month at most (cells are single-occupancy);
      // collisions on a cell keep the first broadcast (no-overwrite model).
      const auto status = tracks.InsertCell(
          {t, ilon, ilat},
          {std::round(speed), static_cast<double>(ship),
           static_cast<double>(ship * 100 + static_cast<int>(t) / 3)});
      (void)status;  // AlreadyExists is expected for popular cells.
    }
  }
  return tracks;
}

Array MakeSmallAisTracks(int months, int ships, uint64_t seed) {
  return MakeAisTracks(months, ships, /*lon_cells=*/32, /*lat_cells=*/24,
                       seed);
}

}  // namespace arraydb::workload
