#include "cluster/transfer.h"

#include "util/strings.h"
#include "util/units.h"

namespace arraydb::cluster {

int64_t MovePlan::TotalBytes() const {
  int64_t total = 0;
  for (const auto& m : moves_) total += m.bytes;
  return total;
}

bool MovePlan::OnlyToNodesAtOrAbove(NodeId first_new_node) const {
  for (const auto& m : moves_) {
    if (m.to < first_new_node) return false;
  }
  return true;
}

std::string MovePlan::Summary() const {
  return util::StrFormat("%lld chunks, %s moved",
                         static_cast<long long>(num_chunks()),
                         util::HumanBytes(static_cast<double>(TotalBytes())).c_str());
}

}  // namespace arraydb::cluster
