#include "cluster/transfer.h"

#include <unordered_set>

#include "util/strings.h"
#include "util/units.h"

namespace arraydb::cluster {

int64_t MovePlan::TotalBytes() const {
  int64_t total = 0;
  for (const auto& m : moves_) total += m.bytes;
  return total;
}

bool MovePlan::OnlyToNodesAtOrAbove(NodeId first_new_node) const {
  for (const auto& m : moves_) {
    if (m.to < first_new_node) return false;
  }
  return true;
}

std::string MovePlan::Summary() const {
  return util::StrFormat("%lld chunks, %s moved",
                         static_cast<long long>(num_chunks()),
                         util::HumanBytes(static_cast<double>(TotalBytes())).c_str());
}

util::Status ValidatePlanShape(const MovePlan& plan, int num_nodes) {
  std::unordered_set<array::Coordinates, array::CoordinatesHash> seen;
  seen.reserve(plan.moves().size());
  for (const auto& m : plan.moves()) {
    const std::string coords = array::CoordinatesToString(m.coords);
    if (m.from < 0 || m.from >= num_nodes) {
      return util::InvalidArgument(util::StrFormat(
          "move of %s from invalid node %d", coords.c_str(), m.from));
    }
    if (m.to < 0 || m.to >= num_nodes) {
      return util::InvalidArgument(util::StrFormat(
          "move of %s to invalid node %d", coords.c_str(), m.to));
    }
    if (m.from == m.to) {
      return util::InvalidArgument(util::StrFormat(
          "move of %s from node %d to itself", coords.c_str(), m.from));
    }
    if (m.bytes <= 0) {
      return util::InvalidArgument(util::StrFormat(
          "move of %s with non-positive size %lld", coords.c_str(),
          static_cast<long long>(m.bytes)));
    }
    if (!seen.insert(m.coords).second) {
      return util::InvalidArgument("duplicate move of chunk " + coords);
    }
  }
  return util::Status::Ok();
}

}  // namespace arraydb::cluster
