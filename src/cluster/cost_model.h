// Empirical cost model for the cluster substrate.
//
// The paper's testbed charges real wall-clock time for disk I/O and network
// transfer; this simulation charges the same structural costs through
// calibrated per-GB rates. The parameters mirror the constants the paper
// itself derives empirically for its analytical tuner (§5.2): δ, the I/O
// minutes per GB, and t, the network minutes per GB.
//
// Insert (paper Eq. 6 structure): a coordinator ingests each batch and
// scatters chunks — the locally kept fraction pays δ, the remainder is
// serialized over the coordinator's uplink at t.
//
// Reorganization: transfers between distinct node pairs proceed in
// parallel, so elapsed time is the makespan over nodes of (bytes sent +
// bytes received) * t plus the receiver's write I/O, plus a per-chunk
// handling overhead that penalizes plans shuffling very many small chunks
// (this is why global schemes pay 2.5x in Figure 4).

#ifndef ARRAYDB_CLUSTER_COST_MODEL_H_
#define ARRAYDB_CLUSTER_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "cluster/transfer.h"

namespace arraydb::cluster {

struct CostParams {
  /// δ: disk write minutes per GB (paper's insert I/O constant).
  double io_minutes_per_gb = 0.12;
  /// t: network transfer minutes per GB over one node's link.
  double net_minutes_per_gb = 0.25;
  /// Fixed handling cost per chunk touched by a transfer, in minutes
  /// (metadata update, connection churn).
  double per_chunk_minutes = 0.0004;
  /// Coordination overhead charged once per non-empty reorganization.
  double reorg_fixed_minutes = 0.5;
  /// Incast/fan-out congestion: a node exchanging data with many distinct
  /// peers at once loses effective link bandwidth (TCP incast and disk-seek
  /// interference during all-to-all reshuffles). Each node's transfer time
  /// is scaled by 1 + incast_penalty * (distinct peers - 1). Incremental
  /// scale-outs are pairwise (penalty-free); global reshuffles pay — this
  /// is the empirically observed 2.5x of the paper's Figure 4.
  double incast_penalty = 0.35;
};

/// Per-insert accounting returned by InsertMinutes.
struct InsertCost {
  double minutes = 0.0;
  double local_gb = 0.0;   // Written on the coordinator itself.
  double remote_gb = 0.0;  // Shipped over the coordinator's uplink.
};

/// Per-reorg accounting returned by ReorgMinutes.
struct ReorgCost {
  double minutes = 0.0;
  double moved_gb = 0.0;
  int64_t chunks_moved = 0;
  /// The node whose send+receive traffic set the makespan.
  NodeId bottleneck_node = kInvalidNode;
};

/// One workload cycle's competing demands on node bandwidth, presented to
/// ArbitrateBandwidth: how much migration is still outstanding, how much
/// data the cycle will ingest, and how much of the cycle the migration can
/// hide behind the query workload.
struct BandwidthDemand {
  /// MovePlan bytes not yet committed, in GB.
  double remaining_migration_gb = 0.0;
  /// Migration GB expected to be *re*-transferred because of faults: failed
  /// copy attempts awaiting retry and moves a replan reverted onto their
  /// sources (typically the previous cycle's observed retry traffic).
  /// Counted as additional migration load — retry traffic competes for the
  /// same link time, so it must neither silently starve the ingest
  /// reservation nor be starved itself. 0 for fault-free callers keeps the
  /// arbitration bit-identical to the legacy split.
  double retry_backlog_gb = 0.0;
  /// Projected bytes of this cycle's insert batch, in GB.
  double projected_ingest_gb = 0.0;
  /// Cycles until the next staircase step is expected to land (the
  /// plan-ahead p): the whole remainder must commit within this window.
  int cycles_until_deadline = 1;
  /// Minutes of query workload the cycle's migration can overlap with for
  /// free (typically the previous cycle's benchmark minutes).
  double overlap_window_minutes = 0.0;
  int num_nodes = 1;
  /// Minutes of query service the cycle's serving layer projects it must
  /// deliver (its smoothed per-cycle demand). 0 — the default, and what
  /// every legacy two-way caller passes — reduces the arbitration exactly
  /// to the migration-vs-ingest split; a positive value makes queries the
  /// third first-class party: their reservation shrinks the free window
  /// before migration may claim it (ArbitrateThreeWay).
  double projected_query_minutes = 0.0;
};

/// Clamps applied to the arbitrated budget so neither side of the split
/// hits zero: migration always progresses (floor) and never monopolizes a
/// cycle's bandwidth (ceiling).
struct ArbitrationClamps {
  /// Minimum migration grant per cycle while moves remain, in GB.
  double floor_gb = 0.25;
  /// Maximum migration grant per cycle, in GB.
  double ceiling_gb = 64.0;
  /// Fraction of the ingest's modeled link time reserved before migration
  /// may claim the overlap window (1.0 = ingest fully reserved first).
  double ingest_reserve_fraction = 1.0;
  /// Fraction of the projected query service minutes reserved before
  /// migration may claim the overlap window (1.0 = queries fully reserved
  /// first). Only bites when BandwidthDemand::projected_query_minutes is
  /// positive, i.e. under the three-way serving arbitration.
  double query_reserve_fraction = 1.0;
};

/// One cycle's bandwidth split returned by ArbitrateBandwidth.
struct BandwidthBudget {
  /// Migration GB granted for this cycle.
  double migration_gb = 0.0;
  /// Just-in-time requirement: remaining / cycles_until_deadline.
  double jit_gb = 0.0;
  /// Migration GB that fits in the overlap window after the ingest
  /// reservation (moves at zero cost to the insert path).
  double window_capacity_gb = 0.0;
  /// Link minutes reserved for the cycle's ingest (Eq. 6 shape).
  double ingest_reserved_minutes = 0.0;
  /// Modeled minutes the insert will stall because the grant spills past
  /// the free window.
  double predicted_stall_minutes = 0.0;
  /// True when the just-in-time deadline (not the free window) set the
  /// grant.
  bool deadline_binding = false;
};

/// One cycle's three-way queries/ingest/migration split returned by
/// ArbitrateThreeWay: the migration-side budget plus the query tier's
/// reservation and the dilation its service suffers when the granted
/// migration (plus the ingest reservation) overflows the cycle's window.
struct BandwidthShares {
  /// The migration-vs-ingest split, computed with the query reservation
  /// already subtracted from the free window.
  BandwidthBudget budget;
  /// Minutes reserved for query service this cycle
  /// (query_reserve_fraction * projected_query_minutes).
  double query_reserved_minutes = 0.0;
  /// Modeled minutes of the migration grant (grant * per-GB rate).
  double migration_minutes = 0.0;
  /// The cycle's window envelope: the larger of the overlap window and the
  /// projected query minutes.
  double window_minutes = 0.0;
  /// Service-time dilation of the query tier, >= 1: how much slower query
  /// service runs because migration traffic intruded into the time
  /// protected for queries (1.0 = migration fully hidden). The serving
  /// layer multiplies per-request service times by this factor.
  double query_dilation = 1.0;
};

class CostModel {
 public:
  explicit CostModel(CostParams params = CostParams()) : params_(params) {}

  const CostParams& params() const { return params_; }

  /// Prices a batch insert: `chunk_destinations` holds (destination node,
  /// bytes) per incoming chunk; `coordinator` is the ingesting node.
  InsertCost InsertMinutes(
      const std::vector<std::pair<NodeId, int64_t>>& chunk_destinations,
      NodeId coordinator) const;

  /// Prices a reorganization plan against a cluster of `num_nodes` nodes.
  ReorgCost ReorgMinutes(const MovePlan& plan, int num_nodes) const;

  /// Splits one cycle's node bandwidth between migration and ingest (§5's
  /// leading staircase assumes migration is priced per cycle, not by a
  /// fixed constant). The grant is the larger of the just-in-time
  /// requirement (finish by the staircase deadline) and what fits behind
  /// the query window after the ingest reservation, clamped to
  /// [floor_gb, ceiling_gb] and to the remaining bytes. Monotone
  /// non-increasing in projected_ingest_gb: heavier ingest shrinks the
  /// free window, backing migration off toward the just-in-time minimum.
  BandwidthBudget ArbitrateBandwidth(
      const BandwidthDemand& demand,
      const ArbitrationClamps& clamps = ArbitrationClamps()) const;

  /// The three-way generalization: queries, ingest, and migration share
  /// one cycle's bandwidth. Queries reserve query_reserve_fraction of
  /// their projected service minutes and ingest reserves its Eq. 6 link
  /// time before migration claims the remainder of the window (the same
  /// grant math as ArbitrateBandwidth — with projected_query_minutes = 0
  /// the two are identical). On top of the migration budget it reports
  /// the query tier's dilation: when the deadline forces a grant past the
  /// free window, the intrusion lands on query service time, and the
  /// serving layer stretches per-request service by this factor.
  BandwidthShares ArbitrateThreeWay(
      const BandwidthDemand& demand,
      const ArbitrationClamps& clamps = ArbitrationClamps()) const;

 private:
  CostParams params_;
};

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_COST_MODEL_H_
