#include "cluster/cluster.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/units.h"

namespace arraydb::cluster {

Cluster::Cluster(int initial_nodes, double node_capacity_gb)
    : node_capacity_gb_(node_capacity_gb) {
  ARRAYDB_CHECK_GE(initial_nodes, 1);
  ARRAYDB_CHECK_GT(node_capacity_gb, 0.0);
  node_bytes_.assign(static_cast<size_t>(initial_nodes), 0);
  node_chunks_.assign(static_cast<size_t>(initial_nodes), 0);
}

double Cluster::CapacityGb() const {
  return static_cast<double>(num_nodes()) * node_capacity_gb_;
}

NodeId Cluster::AddNodes(int k) {
  ARRAYDB_CHECK_GE(k, 1);
  const NodeId first = num_nodes();
  node_bytes_.resize(node_bytes_.size() + static_cast<size_t>(k), 0);
  node_chunks_.resize(node_chunks_.size() + static_cast<size_t>(k), 0);
  return first;
}

util::Status Cluster::PlaceChunk(const array::Coordinates& coords,
                                 int64_t bytes, NodeId node) {
  if (node < 0 || node >= num_nodes()) {
    return util::InvalidArgument(
        util::StrFormat("placement on unknown node %d", node));
  }
  if (bytes < 0) return util::InvalidArgument("negative chunk size");
  if (chunk_map_.contains(coords)) {
    return util::AlreadyExists("chunk exists (no-overwrite storage): " +
                               array::CoordinatesToString(coords));
  }
  chunk_map_.emplace(coords, ChunkRecord{coords, bytes, node});
  node_bytes_[static_cast<size_t>(node)] += bytes;
  node_chunks_[static_cast<size_t>(node)] += 1;
  total_bytes_ += bytes;
  return util::Status::Ok();
}

util::Status Cluster::ValidatePlan(const MovePlan& plan) const {
  for (const auto& m : plan.moves()) {
    const auto it = chunk_map_.find(m.coords);
    if (it == chunk_map_.end()) {
      return util::NotFound("move of unknown chunk " +
                            array::CoordinatesToString(m.coords));
    }
    if (it->second.node != m.from) {
      return util::FailedPrecondition(util::StrFormat(
          "move of %s claims owner %d but cluster records %d",
          array::CoordinatesToString(m.coords).c_str(), m.from,
          it->second.node));
    }
    if (it->second.bytes != m.bytes) {
      return util::FailedPrecondition("move byte count mismatch for " +
                                      array::CoordinatesToString(m.coords));
    }
    if (m.to < 0 || m.to >= num_nodes()) {
      return util::InvalidArgument(
          util::StrFormat("move to unknown node %d", m.to));
    }
  }
  return util::Status::Ok();
}

util::Status Cluster::Apply(const MovePlan& plan) {
  if (reorg_active()) {
    return util::FailedPrecondition(
        "atomic Apply while an incremental reorganization is active");
  }
  // Validate the whole plan before mutating anything.
  if (auto status = ValidatePlan(plan); !status.ok()) return status;
  for (const auto& m : plan.moves()) {
    auto& rec = chunk_map_.at(m.coords);
    node_bytes_[static_cast<size_t>(rec.node)] -= rec.bytes;
    node_chunks_[static_cast<size_t>(rec.node)] -= 1;
    rec.node = m.to;
    node_bytes_[static_cast<size_t>(m.to)] += rec.bytes;
    node_chunks_[static_cast<size_t>(m.to)] += 1;
  }
  return util::Status::Ok();
}

util::Status Cluster::BeginApply(const MovePlan& plan) {
  if (reorg_active()) {
    return util::FailedPrecondition(
        "incremental reorganization already active");
  }
  if (auto status = ValidatePlan(plan); !status.ok()) return status;
  if (plan.empty()) return util::Status::Ok();
  pending_moves_ = plan.moves();
  pending_cursor_ = 0;
  in_flight_end_ = 0;
  source_replicas_.reserve(pending_moves_.size());
  for (const auto& m : pending_moves_) {
    // A plan never names the same chunk twice (validated owners would
    // mismatch); record each source residency.
    source_replicas_.emplace(m.coords, m.from);
  }
  return util::Status::Ok();
}

util::StatusOr<MovePlan> Cluster::AdvanceIncrement(int64_t budget_bytes) {
  if (!reorg_active()) {
    return util::FailedPrecondition("no active reorganization");
  }
  if (increment_in_flight()) {
    return util::FailedPrecondition("an increment is already in flight");
  }
  if (pending_cursor_ >= pending_moves_.size()) {
    return util::FailedPrecondition(
        "all moves committed; call FinishApply to release");
  }
  MovePlan slice;
  int64_t taken = 0;
  size_t j = pending_cursor_;
  while (j < pending_moves_.size()) {
    const auto& m = pending_moves_[j];
    if (j > pending_cursor_ && taken + m.bytes > budget_bytes) break;
    taken += m.bytes;
    slice.Add(m);
    ++j;
  }
  in_flight_end_ = j;
  return slice;
}

util::Status Cluster::CommitIncrement() {
  if (!increment_in_flight()) {
    return util::FailedPrecondition("no increment in flight");
  }
  for (size_t i = pending_cursor_; i < in_flight_end_; ++i) {
    const auto& m = pending_moves_[i];
    auto& rec = chunk_map_.at(m.coords);
    node_bytes_[static_cast<size_t>(rec.node)] -= rec.bytes;
    node_chunks_[static_cast<size_t>(rec.node)] -= 1;
    rec.node = m.to;
    node_bytes_[static_cast<size_t>(m.to)] += rec.bytes;
    node_chunks_[static_cast<size_t>(m.to)] += 1;
  }
  pending_cursor_ = in_flight_end_;
  ++reorg_epoch_;
  return util::Status::Ok();
}

util::Status Cluster::FinishApply() {
  if (!reorg_active()) {
    return util::FailedPrecondition("no active reorganization");
  }
  if (increment_in_flight() || pending_cursor_ < pending_moves_.size()) {
    return util::FailedPrecondition(
        "reorganization has uncommitted moves");
  }
  pending_moves_.clear();
  pending_cursor_ = 0;
  in_flight_end_ = 0;
  source_replicas_.clear();
  ++reorg_epoch_;
  return util::Status::Ok();
}

void Cluster::AbortReorg() {
  if (!reorg_active()) return;
  pending_moves_.clear();
  pending_cursor_ = 0;
  in_flight_end_ = 0;
  source_replicas_.clear();
  ++reorg_epoch_;
}

util::Status Cluster::RollbackReorg() {
  if (!reorg_active()) {
    return util::FailedPrecondition("no active reorganization to roll back");
  }
  // The in-flight slice (if any) only copied; nothing to revert there.
  in_flight_end_ = pending_cursor_;
  // Revert every committed flip onto its retained source replica. The
  // replica was never dropped (that happens only at FinishApply), so this
  // is a metadata flip, not a data transfer.
  for (size_t i = 0; i < pending_cursor_; ++i) {
    const auto& m = pending_moves_[i];
    auto& rec = chunk_map_.at(m.coords);
    node_bytes_[static_cast<size_t>(rec.node)] -= rec.bytes;
    node_chunks_[static_cast<size_t>(rec.node)] -= 1;
    rec.node = m.from;
    node_bytes_[static_cast<size_t>(m.from)] += rec.bytes;
    node_chunks_[static_cast<size_t>(m.from)] += 1;
  }
  pending_moves_.clear();
  pending_cursor_ = 0;
  in_flight_end_ = 0;
  source_replicas_.clear();
  ++reorg_epoch_;
  return util::Status::Ok();
}

bool Cluster::ReorgTargetsNode(NodeId node) const {
  for (const auto& m : pending_moves_) {
    if (m.to == node) return true;
  }
  return false;
}

bool Cluster::ReorgSourcedFromNode(NodeId node) const {
  for (const auto& m : pending_moves_) {
    if (m.from == node) return true;
  }
  return false;
}

util::StatusOr<Cluster::RerouteStats> Cluster::RerouteDeadDestination(
    NodeId dead,
    const std::function<NodeId(const ChunkMove&)>& new_destination) {
  if (!reorg_active()) {
    return util::FailedPrecondition("no active reorganization to replan");
  }
  if (increment_in_flight()) {
    return util::FailedPrecondition(
        "replan with an increment in flight; CancelIncrement first");
  }
  if (ReorgSourcedFromNode(dead)) {
    return util::Unavailable(util::StrFormat(
        "node %d holds source replicas of the active plan; its loss is "
        "unrecoverable without replication",
        dead));
  }
  // Resolve and validate every redirect before mutating anything, so a bad
  // callback leaves the staging state untouched.
  std::vector<std::pair<size_t, NodeId>> redirects;
  for (size_t i = 0; i < pending_moves_.size(); ++i) {
    const auto& m = pending_moves_[i];
    if (m.to != dead) continue;
    const NodeId target = new_destination(m);
    if (target < 0 || target >= num_nodes() || target == dead) {
      return util::InvalidArgument(util::StrFormat(
          "replan of %s routed to invalid node %d",
          array::CoordinatesToString(m.coords).c_str(), target));
    }
    redirects.emplace_back(i, target);
  }

  RerouteStats stats;
  std::vector<ChunkMove> committed_keep;
  std::vector<ChunkMove> pending_new;
  std::vector<ChunkMove> restaged;
  size_t redirect_i = 0;
  for (size_t i = 0; i < pending_moves_.size(); ++i) {
    ChunkMove m = pending_moves_[i];
    const bool hit =
        redirect_i < redirects.size() && redirects[redirect_i].first == i;
    if (hit) {
      m.to = redirects[redirect_i].second;
      ++redirect_i;
    }
    if (i < pending_cursor_) {
      if (!hit) {
        committed_keep.push_back(m);
        continue;
      }
      // Revert the committed flip onto the retained source replica and
      // re-stage the move (after the surviving pending moves, preserving
      // their order) toward the new destination.
      auto& rec = chunk_map_.at(m.coords);
      node_bytes_[static_cast<size_t>(rec.node)] -= rec.bytes;
      node_chunks_[static_cast<size_t>(rec.node)] -= 1;
      rec.node = m.from;
      node_bytes_[static_cast<size_t>(m.from)] += rec.bytes;
      node_chunks_[static_cast<size_t>(m.from)] += 1;
      stats.reverted_committed += 1;
      stats.reverted_bytes += m.bytes;
      restaged.push_back(m);
    } else {
      if (hit) stats.rerouted_pending += 1;
      pending_new.push_back(m);
    }
  }
  pending_moves_ = std::move(committed_keep);
  pending_cursor_ = pending_moves_.size();
  in_flight_end_ = pending_cursor_;
  pending_moves_.insert(pending_moves_.end(), pending_new.begin(),
                        pending_new.end());
  pending_moves_.insert(pending_moves_.end(), restaged.begin(),
                        restaged.end());
  ++reorg_epoch_;
  return stats;
}

NodeId Cluster::SourceReplicaOf(const array::Coordinates& coords) const {
  const auto it = source_replicas_.find(coords);
  return it == source_replicas_.end() ? kInvalidNode : it->second;
}

bool Cluster::Lookup(const array::Coordinates& coords, NodeId* node,
                     int64_t* bytes) const {
  const auto it = chunk_map_.find(coords);
  if (it == chunk_map_.end()) return false;
  *node = it->second.node;
  *bytes = it->second.bytes;
  return true;
}

void Cluster::ForEachChunk(
    const std::function<void(const array::Coordinates&, NodeId, int64_t)>& fn)
    const {
  // Sorted enumeration: iterating chunk_map_ directly would leak hash
  // order into every caller's visit sequence (cost merges, placement
  // planners, tests that record visit order).
  for (const ChunkRecord& rec : AllChunks()) {
    fn(rec.coords, rec.node, rec.bytes);
  }
}

NodeId Cluster::OwnerOf(const array::Coordinates& coords) const {
  const auto it = chunk_map_.find(coords);
  return it == chunk_map_.end() ? kInvalidNode : it->second.node;
}

bool Cluster::Contains(const array::Coordinates& coords) const {
  return chunk_map_.contains(coords);
}

int64_t Cluster::NodeBytes(NodeId node) const {
  ARRAYDB_CHECK_GE(node, 0);
  ARRAYDB_CHECK_LT(node, num_nodes());
  return node_bytes_[static_cast<size_t>(node)];
}

double Cluster::NodeLoadGb(NodeId node) const {
  return util::BytesToGb(static_cast<double>(NodeBytes(node)));
}

std::vector<double> Cluster::NodeLoadsGb() const {
  std::vector<double> out(node_bytes_.size());
  for (size_t i = 0; i < node_bytes_.size(); ++i) {
    out[i] = util::BytesToGb(static_cast<double>(node_bytes_[i]));
  }
  return out;
}

double Cluster::TotalGb() const {
  return util::BytesToGb(static_cast<double>(total_bytes_));
}

double Cluster::LoadRsd() const { return util::RelativeStdev(NodeLoadsGb()); }

int64_t Cluster::NodeChunkCount(NodeId node) const {
  ARRAYDB_CHECK_GE(node, 0);
  ARRAYDB_CHECK_LT(node, num_nodes());
  return node_chunks_[static_cast<size_t>(node)];
}

std::vector<ChunkRecord> Cluster::ChunksOnNode(NodeId node) const {
  std::vector<ChunkRecord> out;
  // arraydb-lint: ordered-extract -- copied out, then sorted below.
  for (const auto& [coords, rec] : chunk_map_) {
    if (rec.node == node) out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const ChunkRecord& a, const ChunkRecord& b) {
              return array::CoordinatesLess(a.coords, b.coords);
            });
  return out;
}

std::vector<ChunkRecord> Cluster::AllChunks() const {
  std::vector<ChunkRecord> out;
  out.reserve(chunk_map_.size());
  // arraydb-lint: ordered-extract -- copied out, then sorted below.
  for (const auto& [coords, rec] : chunk_map_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const ChunkRecord& a, const ChunkRecord& b) {
              return array::CoordinatesLess(a.coords, b.coords);
            });
  return out;
}

}  // namespace arraydb::cluster
