// Shared-nothing cluster substrate.
//
// The Cluster is the single source of truth for chunk placement: which node
// stores each chunk position and how many bytes it occupies. Partitioners
// are pure policy objects that consult this state and emit MovePlans; the
// Cluster validates and applies them. Nodes are homogeneous with a fixed
// per-node storage capacity (the paper's c), and the node set only ever
// grows — scientific databases are monotonic (§1).

#ifndef ARRAYDB_CLUSTER_CLUSTER_H_
#define ARRAYDB_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "array/chunk.h"
#include "array/coordinates.h"
#include "cluster/transfer.h"
#include "util/status.h"

namespace arraydb::cluster {

/// Placement record for one chunk position.
struct ChunkRecord {
  array::Coordinates coords;
  int64_t bytes = 0;
  NodeId node = kInvalidNode;
};

class Cluster {
 public:
  /// Creates `initial_nodes` empty nodes of `node_capacity_gb` each.
  Cluster(int initial_nodes, double node_capacity_gb);

  int num_nodes() const { return static_cast<int>(node_bytes_.size()); }
  double node_capacity_gb() const { return node_capacity_gb_; }

  /// Total provisioned capacity in GB (N * c).
  double CapacityGb() const;

  /// Adds `k` empty nodes; returns the id of the first new node.
  NodeId AddNodes(int k);

  /// Records a brand-new chunk on `node`. Fails on duplicate coordinates
  /// (no-overwrite storage) or an unknown node.
  util::Status PlaceChunk(const array::Coordinates& coords, int64_t bytes,
                          NodeId node);

  /// Applies a move plan; every move must name the chunk's current owner.
  util::Status Apply(const MovePlan& plan);

  /// Owner of a chunk, or kInvalidNode if the chunk is not stored.
  NodeId OwnerOf(const array::Coordinates& coords) const;

  /// True if a chunk with these coordinates is stored.
  bool Contains(const array::Coordinates& coords) const;

  int64_t num_chunks() const { return static_cast<int64_t>(chunk_map_.size()); }

  /// Stored bytes on one node.
  int64_t NodeBytes(NodeId node) const;
  double NodeLoadGb(NodeId node) const;

  /// Stored bytes per node, indexed by NodeId.
  std::vector<double> NodeLoadsGb() const;

  int64_t TotalBytes() const { return total_bytes_; }
  double TotalGb() const;

  /// Relative standard deviation of per-node loads — the paper's storage
  /// balance metric (Figure 4 labels). Returns a fraction, not a percent.
  double LoadRsd() const;

  /// Number of chunks stored on `node`.
  int64_t NodeChunkCount(NodeId node) const;

  /// All chunk records on one node, in deterministic (lexicographic) order.
  std::vector<ChunkRecord> ChunksOnNode(NodeId node) const;

  /// All chunk records, in deterministic order.
  std::vector<ChunkRecord> AllChunks() const;

  /// Unordered placement map for fast scans.
  const std::unordered_map<array::Coordinates, ChunkRecord,
                           array::CoordinatesHash>&
  chunk_map() const {
    return chunk_map_;
  }

 private:
  double node_capacity_gb_;
  std::vector<int64_t> node_bytes_;
  std::vector<int64_t> node_chunks_;
  std::unordered_map<array::Coordinates, ChunkRecord, array::CoordinatesHash>
      chunk_map_;
  int64_t total_bytes_ = 0;
};

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_CLUSTER_H_
