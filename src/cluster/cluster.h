// Shared-nothing cluster substrate.
//
// The Cluster is the single source of truth for chunk placement: which node
// stores each chunk position and how many bytes it occupies. Partitioners
// are pure policy objects that consult this state and emit MovePlans; the
// Cluster validates and applies them. Nodes are homogeneous with a fixed
// per-node storage capacity (the paper's c), and the node set only ever
// grows — scientific databases are monotonic (§1).
//
// A MovePlan is realized either atomically (Apply) or incrementally
// (BeginApply / AdvanceIncrement / CommitIncrement / FinishApply): the plan
// is staged, sliced into byte-budgeted increments, and each increment is
// copied then flipped while the cluster keeps serving reads. Until
// FinishApply releases the reorganization, every chunk covered by the plan
// retains a readable replica at its *source* node (dual residency); the
// query-routing snapshot (SourceReplicaOf, consumed by
// reorg::DualResidencyView) pins reads to that source residency so results
// are independent of how far the migration has progressed.

#ifndef ARRAYDB_CLUSTER_CLUSTER_H_
#define ARRAYDB_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "array/chunk.h"
#include "array/coordinates.h"
#include "cluster/placement_view.h"
#include "cluster/transfer.h"
#include "util/status.h"

namespace arraydb::cluster {

/// Placement record for one chunk position.
struct ChunkRecord {
  array::Coordinates coords;
  int64_t bytes = 0;
  NodeId node = kInvalidNode;
};

class Cluster : public PlacementView {
 public:
  /// Creates `initial_nodes` empty nodes of `node_capacity_gb` each.
  Cluster(int initial_nodes, double node_capacity_gb);

  int num_nodes() const override {
    return static_cast<int>(node_bytes_.size());
  }
  double node_capacity_gb() const { return node_capacity_gb_; }

  /// Total provisioned capacity in GB (N * c).
  double CapacityGb() const;

  /// Adds `k` empty nodes; returns the id of the first new node.
  NodeId AddNodes(int k);

  /// Records a brand-new chunk on `node`. Fails on duplicate coordinates
  /// (no-overwrite storage) or an unknown node.
  util::Status PlaceChunk(const array::Coordinates& coords, int64_t bytes,
                          NodeId node);

  /// Applies a move plan atomically; every move must name the chunk's
  /// current owner. Fails while an incremental reorganization is active.
  util::Status Apply(const MovePlan& plan);

  // -- Incremental application (copy-then-flip) -----------------------------
  //
  // BeginApply validates and stages a whole plan without moving anything.
  // AdvanceIncrement carves the next byte-budgeted slice and marks it in
  // flight (the copy phase: data lands at the destination while the source
  // replica keeps serving reads). CommitIncrement flips authoritative
  // ownership of the in-flight slice — per-node byte/chunk accounting and
  // OwnerOf reflect the flip immediately. FinishApply, callable once every
  // move has committed, releases the reorganization: source replicas are
  // dropped and the query-routing epoch advances. AbortReorg discards all
  // uncommitted work (committed increments stay committed).

  /// Stages `plan` for incremental application. Runs the same validation as
  /// Apply; fails if a reorganization is already active. An empty plan is a
  /// no-op that leaves the cluster idle.
  util::Status BeginApply(const MovePlan& plan);

  /// Carves the next increment: pending moves are taken in plan order until
  /// the cumulative size would exceed `budget_bytes` (always at least one
  /// move). Returns the slice for pricing/validation. Fails when no
  /// reorganization is active, an increment is already in flight, or all
  /// moves have committed.
  util::StatusOr<MovePlan> AdvanceIncrement(int64_t budget_bytes);

  /// Flips ownership of the in-flight increment.
  util::Status CommitIncrement();

  /// Releases a fully committed reorganization (drops source replicas,
  /// advances the routing epoch). Fails while moves remain uncommitted.
  util::Status FinishApply();

  /// Drops any staged/uncommitted reorganization state. Idempotent.
  /// Committed increments stay committed; see RollbackReorg for the full
  /// revert.
  void AbortReorg();

  // -- Failure recovery (src/fault/) ----------------------------------------
  //
  // Copy-then-flip makes these natural: every chunk covered by the active
  // plan retains a readable replica at its source node until FinishApply,
  // so a committed flip can be reverted by flipping back — no data moves.

  /// Drops the in-flight increment (the copy phase failed; nothing was
  /// flipped, so this only rewinds the slice markers). No-op when no
  /// increment is in flight.
  void CancelIncrement() { in_flight_end_ = pending_cursor_; }

  /// Rolls the whole active reorganization back: any in-flight slice is
  /// cancelled, every *committed* flip is reverted onto its retained source
  /// replica, and the staging state is released. The placement is restored
  /// exactly to its pre-reorg state; the routing epoch advances (cached
  /// views must refresh). Fails when no reorganization is active.
  util::Status RollbackReorg();

  /// Accounting for one RerouteDeadDestination call.
  struct RerouteStats {
    /// Pending (uncommitted) moves redirected to a new destination.
    int64_t rerouted_pending = 0;
    /// Committed moves whose flip was reverted onto the source replica and
    /// which were re-staged (at the end of the plan) with a new destination.
    int64_t reverted_committed = 0;
    /// Bytes across the reverted committed moves (they must be re-copied).
    int64_t reverted_bytes = 0;
  };

  /// Replans the active reorganization around the permanent death of
  /// destination node `dead`: every staged move targeting it is redirected
  /// to `new_destination(move)` — pending moves in place, committed moves by
  /// reverting their flip onto the retained source replica and re-staging
  /// them after the surviving moves. Fails when no reorganization is active,
  /// an increment is in flight (CancelIncrement first), a surviving *source*
  /// lives on `dead` (data loss — unrecoverable without replication), or the
  /// callback names an invalid/dead destination. The plan's move order is
  /// preserved for surviving moves, so the slicing schedule stays
  /// deterministic.
  util::StatusOr<RerouteStats> RerouteDeadDestination(
      NodeId dead,
      const std::function<NodeId(const ChunkMove&)>& new_destination);

  /// True when any staged move (pending or committed) targets `node`.
  bool ReorgTargetsNode(NodeId node) const;

  /// True when any staged move's source is `node`.
  bool ReorgSourcedFromNode(NodeId node) const;

  /// True between BeginApply (of a non-empty plan) and FinishApply/Abort.
  bool reorg_active() const { return !pending_moves_.empty(); }

  /// True between AdvanceIncrement and CommitIncrement.
  bool increment_in_flight() const { return in_flight_end_ > pending_cursor_; }

  /// Moves staged but not yet committed.
  int64_t pending_reorg_chunks() const {
    return static_cast<int64_t>(pending_moves_.size() - pending_cursor_);
  }

  /// Source node of the retained read replica for a chunk covered by the
  /// active reorganization, or kInvalidNode when the chunk is not dual
  /// resident. This is the routing snapshot queries pin to mid-reorg.
  NodeId SourceReplicaOf(const array::Coordinates& coords) const;

  /// Monotone counter bumped on every commit and on reorg release; lets
  /// cached views detect staleness.
  uint64_t reorg_epoch() const { return reorg_epoch_; }

  /// Owner of a chunk, or kInvalidNode if the chunk is not stored. During an
  /// incremental reorganization this is the *authoritative* owner (flipped
  /// per increment); query routing goes through SourceReplicaOf instead.
  NodeId OwnerOf(const array::Coordinates& coords) const override;

  // PlacementView: routed lookups against the committed state.
  bool Lookup(const array::Coordinates& coords, NodeId* node,
              int64_t* bytes) const override;
  void ForEachChunk(
      const std::function<void(const array::Coordinates&, NodeId, int64_t)>&
          fn) const override;

  /// True if a chunk with these coordinates is stored.
  bool Contains(const array::Coordinates& coords) const;

  int64_t num_chunks() const { return static_cast<int64_t>(chunk_map_.size()); }

  /// Stored bytes on one node.
  int64_t NodeBytes(NodeId node) const;
  double NodeLoadGb(NodeId node) const;

  /// Stored bytes per node, indexed by NodeId.
  std::vector<double> NodeLoadsGb() const;

  int64_t TotalBytes() const { return total_bytes_; }
  double TotalGb() const;

  /// Relative standard deviation of per-node loads — the paper's storage
  /// balance metric (Figure 4 labels). Returns a fraction, not a percent.
  double LoadRsd() const;

  /// Number of chunks stored on `node`.
  int64_t NodeChunkCount(NodeId node) const;

  /// All chunk records on one node, in deterministic (lexicographic) order.
  std::vector<ChunkRecord> ChunksOnNode(NodeId node) const;

  /// All chunk records, in deterministic order.
  std::vector<ChunkRecord> AllChunks() const;

  /// Unordered placement map for fast scans.
  const std::unordered_map<array::Coordinates, ChunkRecord,
                           array::CoordinatesHash>&
  chunk_map() const {
    return chunk_map_;
  }

 private:
  util::Status ValidatePlan(const MovePlan& plan) const;

  double node_capacity_gb_;
  std::vector<int64_t> node_bytes_;
  std::vector<int64_t> node_chunks_;
  std::unordered_map<array::Coordinates, ChunkRecord, array::CoordinatesHash>
      chunk_map_;
  int64_t total_bytes_ = 0;

  // Incremental-reorg staging: the plan's moves in order, a cursor to the
  // first uncommitted move, the in-flight slice [pending_cursor_,
  // in_flight_end_), and the retained source replicas for routing.
  std::vector<ChunkMove> pending_moves_;
  size_t pending_cursor_ = 0;
  size_t in_flight_end_ = 0;
  std::unordered_map<array::Coordinates, NodeId, array::CoordinatesHash>
      source_replicas_;
  uint64_t reorg_epoch_ = 0;
};

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_CLUSTER_H_
