// Move plans: the unit of data redistribution. A partitioner's scale-out
// decision is expressed as a MovePlan, which the Cluster applies and the
// CostModel prices.

#ifndef ARRAYDB_CLUSTER_TRANSFER_H_
#define ARRAYDB_CLUSTER_TRANSFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"
#include "util/status.h"

namespace arraydb::cluster {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Relocation of one chunk between nodes.
struct ChunkMove {
  array::Coordinates coords;
  int64_t bytes = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

/// An ordered set of chunk relocations produced by one scale-out.
class MovePlan {
 public:
  void Add(ChunkMove move) { moves_.push_back(std::move(move)); }

  const std::vector<ChunkMove>& moves() const { return moves_; }
  bool empty() const { return moves_.empty(); }
  int64_t num_chunks() const { return static_cast<int64_t>(moves_.size()); }

  /// Total bytes relocated.
  int64_t TotalBytes() const;

  /// True if every destination is >= `first_new_node` — the incremental
  /// scale-out property of Table 1 (data flows only to newly added hosts).
  bool OnlyToNodesAtOrAbove(NodeId first_new_node) const;

  std::string Summary() const;

 private:
  std::vector<ChunkMove> moves_;
};

/// Structural validation of a plan against a cluster of `num_nodes` nodes,
/// independent of placement state: every move's node ids must be in
/// [0, num_nodes) with from != to, bytes must be positive, and no chunk may
/// appear twice. Returns InvalidArgument naming the first offending move.
/// (Cluster::Apply/BeginApply separately validate against live placement:
/// chunk exists, owner matches, byte count matches.)
util::Status ValidatePlanShape(const MovePlan& plan, int num_nodes);

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_TRANSFER_H_
