// Move plans: the unit of data redistribution. A partitioner's scale-out
// decision is expressed as a MovePlan, which the Cluster applies and the
// CostModel prices.

#ifndef ARRAYDB_CLUSTER_TRANSFER_H_
#define ARRAYDB_CLUSTER_TRANSFER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "array/coordinates.h"

namespace arraydb::cluster {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Relocation of one chunk between nodes.
struct ChunkMove {
  array::Coordinates coords;
  int64_t bytes = 0;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

/// An ordered set of chunk relocations produced by one scale-out.
class MovePlan {
 public:
  void Add(ChunkMove move) { moves_.push_back(std::move(move)); }

  const std::vector<ChunkMove>& moves() const { return moves_; }
  bool empty() const { return moves_.empty(); }
  int64_t num_chunks() const { return static_cast<int64_t>(moves_.size()); }

  /// Total bytes relocated.
  int64_t TotalBytes() const;

  /// True if every destination is >= `first_new_node` — the incremental
  /// scale-out property of Table 1 (data flows only to newly added hosts).
  bool OnlyToNodesAtOrAbove(NodeId first_new_node) const;

  std::string Summary() const;

 private:
  std::vector<ChunkMove> moves_;
};

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_TRANSFER_H_
