#include "cluster/cost_model.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/units.h"

namespace arraydb::cluster {

InsertCost CostModel::InsertMinutes(
    const std::vector<std::pair<NodeId, int64_t>>& chunk_destinations,
    NodeId coordinator) const {
  InsertCost cost;
  int64_t local_bytes = 0;
  int64_t remote_bytes = 0;
  for (const auto& [node, bytes] : chunk_destinations) {
    if (node == coordinator) {
      local_bytes += bytes;
    } else {
      remote_bytes += bytes;
    }
  }
  cost.local_gb = util::BytesToGb(static_cast<double>(local_bytes));
  cost.remote_gb = util::BytesToGb(static_cast<double>(remote_bytes));
  // Eq. 6: local fraction at δ; remote fraction serialized through the
  // coordinator's uplink at t. Receivers write in parallel with the
  // coordinator's sends, so the remote write I/O overlaps the transfer and
  // only the slower of the two appears; t > δ in all calibrations, so the
  // transfer dominates. A per-chunk handling fee covers chunk headers and
  // catalog updates.
  cost.minutes = cost.local_gb * params_.io_minutes_per_gb +
                 cost.remote_gb * params_.net_minutes_per_gb +
                 static_cast<double>(chunk_destinations.size()) *
                     params_.per_chunk_minutes;
  return cost;
}

ReorgCost CostModel::ReorgMinutes(const MovePlan& plan, int num_nodes) const {
  ReorgCost cost;
  if (plan.empty()) return cost;
  ARRAYDB_CHECK_GE(num_nodes, 1);

  std::vector<int64_t> sent(static_cast<size_t>(num_nodes), 0);
  std::vector<int64_t> recv(static_cast<size_t>(num_nodes), 0);
  std::vector<int64_t> touched(static_cast<size_t>(num_nodes), 0);
  std::vector<std::set<NodeId>> peers(static_cast<size_t>(num_nodes));
  int64_t moved_bytes = 0;
  for (const auto& m : plan.moves()) {
    ARRAYDB_CHECK_GE(m.from, 0);
    ARRAYDB_CHECK_LT(m.from, num_nodes);
    ARRAYDB_CHECK_GE(m.to, 0);
    ARRAYDB_CHECK_LT(m.to, num_nodes);
    sent[static_cast<size_t>(m.from)] += m.bytes;
    recv[static_cast<size_t>(m.to)] += m.bytes;
    touched[static_cast<size_t>(m.from)] += 1;
    touched[static_cast<size_t>(m.to)] += 1;
    peers[static_cast<size_t>(m.from)].insert(m.to);
    peers[static_cast<size_t>(m.to)].insert(m.from);
    moved_bytes += m.bytes;
  }

  // Makespan over nodes: each node's link carries its sends plus its
  // receives (full-duplex is defeated by the shuffle's all-to-all pattern),
  // degraded by incast congestion when it talks to many peers at once, and
  // a receiver must also write what it receives.
  double makespan = 0.0;
  for (int n = 0; n < num_nodes; ++n) {
    const double sent_gb =
        util::BytesToGb(static_cast<double>(sent[static_cast<size_t>(n)]));
    const double recv_gb =
        util::BytesToGb(static_cast<double>(recv[static_cast<size_t>(n)]));
    const size_t peer_count = peers[static_cast<size_t>(n)].size();
    const double congestion =
        peer_count > 1 ? 1.0 + params_.incast_penalty *
                                   static_cast<double>(peer_count - 1)
                       : 1.0;
    const double node_minutes =
        (sent_gb + recv_gb) * params_.net_minutes_per_gb * congestion +
        recv_gb * params_.io_minutes_per_gb +
        static_cast<double>(touched[static_cast<size_t>(n)]) *
            params_.per_chunk_minutes;
    if (node_minutes > makespan) {
      makespan = node_minutes;
      cost.bottleneck_node = n;
    }
  }
  cost.minutes = makespan + params_.reorg_fixed_minutes;
  cost.moved_gb = util::BytesToGb(static_cast<double>(moved_bytes));
  cost.chunks_moved = plan.num_chunks();
  return cost;
}

BandwidthBudget CostModel::ArbitrateBandwidth(
    const BandwidthDemand& demand, const ArbitrationClamps& clamps) const {
  BandwidthBudget budget;
  const double plan_remaining = std::max(0.0, demand.remaining_migration_gb);
  if (plan_remaining <= 0.0) return budget;
  // Retry traffic is migration load: re-transfers widen the demand the
  // grant must cover, on top of the plan bytes still uncommitted.
  const double remaining =
      plan_remaining + std::max(0.0, demand.retry_backlog_gb);

  // Incremental plans are pairwise, so a slice's makespan is set by the
  // receiver: transfer at t plus the write at δ, per GB.
  const double rate = params_.net_minutes_per_gb + params_.io_minutes_per_gb;
  const int deadline = std::max(1, demand.cycles_until_deadline);
  budget.jit_gb = remaining / static_cast<double>(deadline);

  // Eq. 6 shape for the ingest reservation: the coordinator keeps ~1/n of
  // the batch locally at δ and ships the rest over its uplink at t.
  const int n = std::max(1, demand.num_nodes);
  const double remote_frac =
      n > 1 ? static_cast<double>(n - 1) / static_cast<double>(n) : 0.0;
  budget.ingest_reserved_minutes =
      std::max(0.0, demand.projected_ingest_gb) *
      (remote_frac * params_.net_minutes_per_gb +
       (1.0 - remote_frac) * params_.io_minutes_per_gb);

  // The free window is what queries and ingest leave behind. The query
  // reservation is zero for every legacy two-way caller
  // (projected_query_minutes defaults to 0), so the two-way split is the
  // exact special case of the three-way arbitration.
  const double query_reserved_minutes =
      clamps.query_reserve_fraction *
      std::max(0.0, demand.projected_query_minutes);
  const double free_minutes =
      std::max(0.0, demand.overlap_window_minutes -
                        clamps.ingest_reserve_fraction *
                            budget.ingest_reserved_minutes -
                        query_reserved_minutes);
  budget.window_capacity_gb = rate > 0.0 ? free_minutes / rate : remaining;

  // Use the free window when it is there (finishing early costs nothing),
  // but never fall below the just-in-time pace; then clamp so neither side
  // of the split hits zero.
  double granted =
      std::max(budget.jit_gb, std::min(budget.window_capacity_gb, remaining));
  const double ceiling = std::max(clamps.floor_gb, clamps.ceiling_gb);
  granted = std::clamp(granted, clamps.floor_gb, ceiling);
  granted = std::min(granted, remaining);
  budget.migration_gb = granted;
  budget.deadline_binding = budget.jit_gb > budget.window_capacity_gb;
  budget.predicted_stall_minutes =
      std::max(0.0, granted - budget.window_capacity_gb) * rate;
  return budget;
}

BandwidthShares CostModel::ArbitrateThreeWay(
    const BandwidthDemand& demand, const ArbitrationClamps& clamps) const {
  BandwidthShares shares;
  const double query_minutes = std::max(0.0, demand.projected_query_minutes);
  shares.query_reserved_minutes =
      clamps.query_reserve_fraction * query_minutes;
  shares.window_minutes =
      std::max(demand.overlap_window_minutes, query_minutes);
  shares.budget = ArbitrateBandwidth(demand, clamps);

  const double rate = params_.net_minutes_per_gb + params_.io_minutes_per_gb;
  shares.migration_minutes = shares.budget.migration_gb * rate;

  // Dilation: migration minutes beyond the free window (what queries and
  // ingest left over) intrude into protected query time; the intrusion is
  // amortized over the query tier's own service minutes. When the grant
  // fits the free window — the usual case once queries reserve first —
  // migration is fully hidden and the dilation is exactly 1.
  if (query_minutes > 0.0) {
    const double free_minutes =
        std::max(0.0, shares.window_minutes -
                          clamps.ingest_reserve_fraction *
                              shares.budget.ingest_reserved_minutes -
                          shares.query_reserved_minutes);
    const double intrusion =
        std::max(0.0, shares.migration_minutes - free_minutes);
    shares.query_dilation = 1.0 + intrusion / query_minutes;
  }
  return shares;
}

}  // namespace arraydb::cluster
