// PlacementView: the read-side routing abstraction over chunk placement.
//
// Query execution must not assume placement is a quiesced Cluster: during an
// incremental reorganization (src/reorg/) the routing table a query consults
// is a dual-residency view where migrating chunks remain readable at their
// source node. Everything that *reads* placement (exec::QueryEngine, load
// diagnostics) takes a PlacementView; Cluster implements it directly for the
// quiesced case and reorg::DualResidencyView implements it for clusters with
// a reorganization in flight.

#ifndef ARRAYDB_CLUSTER_PLACEMENT_VIEW_H_
#define ARRAYDB_CLUSTER_PLACEMENT_VIEW_H_

#include <cstdint>
#include <functional>

#include "array/coordinates.h"
#include "cluster/transfer.h"

namespace arraydb::cluster {

class PlacementView {
 public:
  virtual ~PlacementView() = default;

  virtual int num_nodes() const = 0;

  /// Node a read of this chunk is routed to, or kInvalidNode when the chunk
  /// is not stored.
  virtual NodeId OwnerOf(const array::Coordinates& coords) const = 0;

  /// Routed owner and physical size in one lookup; false when absent.
  virtual bool Lookup(const array::Coordinates& coords, NodeId* node,
                      int64_t* bytes) const = 0;

  /// Invokes `fn(coords, node, bytes)` for every stored chunk with its
  /// routed owner. Iteration order is unspecified; callers needing
  /// determinism must sort. References are valid only during the call.
  virtual void ForEachChunk(
      const std::function<void(const array::Coordinates&, NodeId, int64_t)>&
          fn) const = 0;
};

}  // namespace arraydb::cluster

#endif  // ARRAYDB_CLUSTER_PLACEMENT_VIEW_H_
