// Scoped trace spans exported as Chrome/Perfetto trace-event JSON.
//
// A TELEM_SPAN("layer.component.phase") statement records one complete
// ("ph": "X") event — name, thread, start, duration — into a per-thread
// buffer when tracing is active, and costs one relaxed atomic load when it
// is not. Buffers are collected (under per-buffer locks, so live workers
// never race the writer) and sorted into a single trace file by
// WriteTrace(); ci/check_trace.py validates the output parses and that
// spans nest monotonically per thread, which RAII scoping guarantees by
// construction.
//
// Activation:
//   * RunnerConfig::trace_path — WorkloadRunner scopes tracing around Run()
//     and writes the file itself, or
//   * ARRAYDB_TRACE=<path> in the environment — collection starts at
//     process start and the file is written at exit (zero-code tracing for
//     the benches and examples).
//
// Tracing is observe-only under the same contract as the metrics registry:
// results are bit-identical with tracing on, off, or compiled out. The
// runtime master switch (telemetry::SetEnabled) gates span collection too,
// so one toggle silences the whole subsystem.

#ifndef ARRAYDB_TELEMETRY_TRACE_H_
#define ARRAYDB_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>

#include "telemetry/telemetry.h"

namespace arraydb::telemetry {

/// True when spans are being collected: tracing started (ScopedTracing or
/// ARRAYDB_TRACE) and the master switch is on.
bool TracingActive();

/// Starts/stops span collection. Nestable (depth-counted); StopTracing
/// never drops below zero.
void StartTracing();
void StopTracing();

/// RAII tracing window (the workload runner, tests).
class ScopedTracing {
 public:
  ScopedTracing();
  ~ScopedTracing();
  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;
};

/// Writes every span collected so far (all threads, dead or alive) as a
/// Chrome trace-event JSON file: {"traceEvents": [{"name", "cat", "ph":
/// "X", "pid", "tid", "ts", "dur"}, ...]}, timestamps in microseconds.
/// Safe to call while workers are still tracing. Returns false on I/O
/// failure.
bool WriteTrace(const std::string& path);

/// Number of spans currently buffered (tests).
size_t TraceEventCount();

/// Discards every buffered span (tests).
void ClearTrace();

/// One RAII span. Prefer the TELEM_SPAN macro, which compiles out with the
/// rest of the subsystem. `name` must outlive the process (string
/// literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace arraydb::telemetry

#if ARRAYDB_TELEMETRY_ENABLED

#define ARRAYDB_TELEM_CONCAT_INNER(a, b) a##b
#define ARRAYDB_TELEM_CONCAT(a, b) ARRAYDB_TELEM_CONCAT_INNER(a, b)

#define TELEM_SPAN(name)                                  \
  [[maybe_unused]] const ::arraydb::telemetry::TraceSpan  \
      ARRAYDB_TELEM_CONCAT(arraydb_telem_span_, __LINE__)(name)

#else  // !ARRAYDB_TELEMETRY_ENABLED

#define TELEM_SPAN(name) \
  do {                   \
  } while (false)

#endif  // ARRAYDB_TELEMETRY_ENABLED

#endif  // ARRAYDB_TELEMETRY_TRACE_H_
