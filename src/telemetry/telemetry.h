// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms, named `layer.component.metric` (see src/telemetry/README.md
// for the naming scheme and the per-metric invariance classes).
//
// Design constraints, in order:
//
//   * Observe-only. Instrumentation never feeds back into control flow:
//     every query, join, and reorg result is bit-identical with telemetry
//     enabled, disabled at runtime, or compiled out entirely
//     (-DARRAYDB_TELEMETRY=OFF). tests/telemetry_test.cc pins this.
//   * Contention-free hot path. Each instrument shards its state over
//     kShards cache-line-isolated atomic cells indexed by a thread-local
//     slot, so concurrent increments from the morsel workers never bounce a
//     shared line. Reads (Value(), snapshots) sum the shards.
//   * Deterministic snapshots. Instruments live in sorted maps and hold
//     only integers, so SnapshotJson() is byte-identical whenever the
//     recorded values are — which the schedule-invariant metrics are at any
//     thread count (the morsel determinism contract extends to them).
//   * Bounded overhead. A disabled registry costs one relaxed atomic load
//     per call site; an enabled counter adds one relaxed fetch_add.
//     bench_operators measures the end-to-end ratio and CI gates it at
//     ceiling_telemetry_overhead_ratio (<= 1.05).
//
// Call sites use the TELEM_* macros, which cache the registry lookup in a
// function-local static and compile to nothing when the subsystem is
// compiled out. Instrument objects are never destroyed or invalidated
// (ResetValues zeroes them in place), so cached references stay valid for
// the process lifetime.

#ifndef ARRAYDB_TELEMETRY_TELEMETRY_H_
#define ARRAYDB_TELEMETRY_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

// Compile-out switch: -DARRAYDB_TELEMETRY=OFF (CMake) defines
// ARRAYDB_TELEMETRY_DISABLED, turning every TELEM_* macro into a no-op
// statement that does not evaluate its arguments. The registry classes
// themselves stay compiled so tooling and tests link in every build mode.
#if defined(ARRAYDB_TELEMETRY_DISABLED)
#define ARRAYDB_TELEMETRY_ENABLED 0
#else
#define ARRAYDB_TELEMETRY_ENABLED 1
#endif

namespace arraydb::telemetry {

namespace internal {

/// Sharding width for every instrument. 16 cache lines per counter is
/// plenty for the testbed's thread counts while keeping a histogram's
/// footprint at a few KiB.
inline constexpr int kShards = 16;

/// This thread's shard slot: assigned round-robin from a process counter at
/// first use, so the pool's workers spread over distinct shards.
int ShardIndex();

extern std::atomic<bool> g_enabled;

/// Hot-path gate: true when recording is on. Relaxed — a caller racing a
/// toggle may record or skip one sample, which is fine for observation.
inline bool Active() {
  return g_enabled.load(std::memory_order_relaxed);
}

}  // namespace internal

/// Runtime master switch (default on). Gates metric recording AND trace
/// span collection; flipping it never changes any computed result, only
/// what gets observed.
bool Enabled();
void SetEnabled(bool enabled);

/// RAII toggle of the runtime switch (tests, and bench_operators' overhead
/// comparison arms).
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool enabled);
  ~ScopedEnabled();
  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool saved_;
};

/// Nanoseconds on the steady clock since the process telemetry epoch when
/// recording is active; 0 when disabled (callers use 0 to skip their
/// timing arithmetic too) or compiled out.
int64_t MetricsNowNs();

/// Monotonically increasing sum. Add is wait-free on the shard cell.
class Counter {
 public:
  void Add(int64_t n) {
    if (!internal::Active()) return;
    shards_[internal::ShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  int64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, internal::kShards> shards_;
};

/// Last-set value plus a monotone high-water mark (queue depths, node
/// counts). Unsharded: gauges are set at configuration-rate call sites.
class Gauge {
 public:
  void Set(int64_t v);
  /// Raises the value to `v` if larger (and the high-water mark either
  /// way); used for peak-depth style observations.
  void UpdateMax(int64_t v);

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  int64_t Peak() const { return peak_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> peak_{0};
};

/// Fixed power-of-two-bucket histogram of non-negative int64 samples
/// (latencies in microseconds, sizes in cells). Bucket 0 holds values
/// <= 0; bucket b >= 1 holds [2^(b-1), 2^b); the last bucket absorbs
/// everything above 2^(kBuckets-2). The layout is fixed at compile time, so
/// two histograms that recorded the same multiset serialize identically.
class Histogram {
 public:
  static constexpr int kBuckets = 32;

  void Record(int64_t value) {
    if (!internal::Active()) return;
    Shard& shard = shards_[internal::ShardIndex()];
    shard.buckets[BucketIndex(value)].fetch_add(1,
                                                std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket for `value`; pure, exposed for tests and the snapshot legend.
  static int BucketIndex(int64_t value);
  /// Inclusive upper bound of bucket `b` (INT64_MAX for the overflow
  /// bucket).
  static int64_t BucketUpperBound(int b);

  int64_t Count() const;
  int64_t Sum() const;
  std::array<int64_t, kBuckets> BucketCounts() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<int64_t>, kBuckets> buckets{};
    std::atomic<int64_t> sum{0};
  };
  std::array<Shard, internal::kShards> shards_;
};

/// The process-wide instrument registry. Lookup is mutex-guarded and
/// intended to run once per call site (the TELEM_* macros cache the
/// reference in a function-local static); recording afterwards never takes
/// the lock.
class Registry {
 public:
  static Registry& Global();

  /// Finds or creates the named instrument. References stay valid for the
  /// process lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Serializes every instrument as sorted-key JSON:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — the same
  /// writer (telemetry::JsonWriter) the BENCH_*.json artifacts use.
  /// Deterministic: map order is lexicographic and all values are integers.
  std::string SnapshotJson() const;
  bool WriteJsonFile(const std::string& path) const;

  /// Zeroes every instrument in place (cached references stay valid).
  /// Tests isolate themselves with this; production never needs it.
  void ResetValues();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace arraydb::telemetry

// -- Instrumentation macros ---------------------------------------------------
//
// `name` must be a string literal (or otherwise outlive the process): the
// registry lookup runs once per call site and the reference is cached.

#if ARRAYDB_TELEMETRY_ENABLED

#define TELEM_COUNTER_ADD(name, n)                                       \
  do {                                                                   \
    static ::arraydb::telemetry::Counter& arraydb_telem_instr_ =         \
        ::arraydb::telemetry::Registry::Global().counter(name);          \
    arraydb_telem_instr_.Add(n);                                         \
  } while (false)

#define TELEM_GAUGE_SET(name, v)                                         \
  do {                                                                   \
    static ::arraydb::telemetry::Gauge& arraydb_telem_instr_ =           \
        ::arraydb::telemetry::Registry::Global().gauge(name);            \
    arraydb_telem_instr_.Set(v);                                         \
  } while (false)

#define TELEM_GAUGE_MAX(name, v)                                         \
  do {                                                                   \
    static ::arraydb::telemetry::Gauge& arraydb_telem_instr_ =           \
        ::arraydb::telemetry::Registry::Global().gauge(name);            \
    arraydb_telem_instr_.UpdateMax(v);                                   \
  } while (false)

#define TELEM_HISTOGRAM_RECORD(name, v)                                  \
  do {                                                                   \
    static ::arraydb::telemetry::Histogram& arraydb_telem_instr_ =       \
        ::arraydb::telemetry::Registry::Global().histogram(name);        \
    arraydb_telem_instr_.Record(v);                                      \
  } while (false)

#else  // !ARRAYDB_TELEMETRY_ENABLED

// Compiled out: statements remain syntactically intact but evaluate
// nothing — the `if (false)` keeps the operands type-checked without
// running their side effects or leaving unused-variable warnings behind.
#define TELEM_COUNTER_ADD(name, n) \
  do {                             \
    if (false) {                   \
      (void)(name);                \
      (void)(n);                   \
    }                              \
  } while (false)
#define TELEM_GAUGE_SET(name, v) TELEM_COUNTER_ADD(name, v)
#define TELEM_GAUGE_MAX(name, v) TELEM_COUNTER_ADD(name, v)
#define TELEM_HISTOGRAM_RECORD(name, v) TELEM_COUNTER_ADD(name, v)

#endif  // ARRAYDB_TELEMETRY_ENABLED

#endif  // ARRAYDB_TELEMETRY_TELEMETRY_H_
