#include "telemetry/json.h"

#include "util/logging.h"
#include "util/strings.h"

namespace arraydb::telemetry {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent(size_t depth) {
  out_ << "\n";
  for (size_t i = 0; i < depth; ++i) out_ << "  ";
}

void JsonWriter::ValuePrefix() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Frame& frame = stack_.back();
  if (!frame.first) out_ << ",";
  frame.first = false;
  if (pretty_) Indent(stack_.size());
}

void JsonWriter::Key(std::string_view name) {
  ARRAYDB_CHECK(!stack_.empty());
  ARRAYDB_CHECK(!pending_key_);
  Frame& frame = stack_.back();
  if (!frame.first) out_ << ",";
  frame.first = false;
  if (pretty_) Indent(stack_.size());
  out_ << '"' << JsonEscape(name) << (pretty_ ? "\": " : "\":");
  pending_key_ = true;
}

void JsonWriter::BeginObject() {
  ValuePrefix();
  out_ << "{";
  stack_.push_back(Frame{});
}

void JsonWriter::EndObject() {
  ARRAYDB_CHECK(!stack_.empty());
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (pretty_ && !frame.first) Indent(stack_.size());
  out_ << "}";
}

void JsonWriter::BeginArray() {
  ValuePrefix();
  out_ << "[";
  stack_.push_back(Frame{});
}

void JsonWriter::EndArray() {
  ARRAYDB_CHECK(!stack_.empty());
  const Frame frame = stack_.back();
  stack_.pop_back();
  if (pretty_ && !frame.first) Indent(stack_.size());
  out_ << "]";
}

void JsonWriter::String(std::string_view value) {
  ValuePrefix();
  out_ << '"' << JsonEscape(value) << '"';
}

void JsonWriter::Double(double value, const char* fmt) {
  ValuePrefix();
  out_ << util::StrFormat(fmt, value);
}

void JsonWriter::Int(int64_t value) {
  ValuePrefix();
  out_ << value;
}

void JsonWriter::Bool(bool value) {
  ValuePrefix();
  out_ << (value ? "true" : "false");
}

}  // namespace arraydb::telemetry
