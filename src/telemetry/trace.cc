#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

#include "telemetry/json.h"

namespace arraydb::telemetry {

namespace {

struct TraceEvent {
  const char* name;
  int64_t ts_ns;
  int64_t dur_ns;
  uint32_t tid;
};

// Per-thread span buffer. The mutex serializes the owning thread's appends
// against collection from WriteTrace/ClearTrace — appends are frequent but
// the lock is almost always uncontended, and spans are coarse (per morsel
// run / reorg step / workload cycle), so this stays off any per-cell path.
struct ThreadTraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint32_t tid = 0;

  ThreadTraceBuffer();
  ~ThreadTraceBuffer();
};

struct TraceState {
  std::atomic<int> depth{0};  // StartTracing nesting depth.
  std::mutex mu;              // Guards the fields below.
  std::vector<ThreadTraceBuffer*> live;
  std::vector<TraceEvent> drained;  // Flushed by exited threads.
  uint32_t next_tid = 1;
};

// Leaked: thread_local buffer destructors (including the main thread's, at
// process exit) must always find live state.
TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

ThreadTraceBuffer::ThreadTraceBuffer() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  tid = state.next_tid++;
  state.live.push_back(this);
}

ThreadTraceBuffer::~ThreadTraceBuffer() {
  TraceState& state = State();
  std::lock_guard<std::mutex> state_lock(state.mu);
  {
    std::lock_guard<std::mutex> lock(mu);
    state.drained.insert(state.drained.end(), events.begin(), events.end());
    events.clear();
  }
  state.live.erase(std::find(state.live.begin(), state.live.end(), this));
}

ThreadTraceBuffer& LocalBuffer() {
  thread_local ThreadTraceBuffer buffer;
  return buffer;
}

std::vector<TraceEvent> CollectEvents() {
  TraceState& state = State();
  std::lock_guard<std::mutex> state_lock(state.mu);
  std::vector<TraceEvent> all = state.drained;
  for (ThreadTraceBuffer* buffer : state.live) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    all.insert(all.end(), buffer->events.begin(), buffer->events.end());
  }
  return all;
}

}  // namespace

bool TracingActive() {
  return State().depth.load(std::memory_order_relaxed) > 0 &&
         internal::Active();
}

void StartTracing() {
  // Pin the clock epoch before the first span so timestamps are relative
  // to a fixed origin.
  (void)MetricsNowNs();
  State().depth.fetch_add(1, std::memory_order_relaxed);
}

void StopTracing() {
  std::atomic<int>& depth = State().depth;
  int seen = depth.load(std::memory_order_relaxed);
  while (seen > 0 && !depth.compare_exchange_weak(
                         seen, seen - 1, std::memory_order_relaxed)) {
  }
}

ScopedTracing::ScopedTracing() { StartTracing(); }
ScopedTracing::~ScopedTracing() { StopTracing(); }

TraceSpan::TraceSpan(const char* name) : name_(name) {
  if (!TracingActive()) return;
  active_ = true;
  start_ns_ = MetricsNowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_ || !TracingActive()) return;
  const int64_t end_ns = MetricsNowNs();
  ThreadTraceBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(
      TraceEvent{name_, start_ns_, end_ns - start_ns_, buffer.tid});
}

size_t TraceEventCount() { return CollectEvents().size(); }

void ClearTrace() {
  TraceState& state = State();
  std::lock_guard<std::mutex> state_lock(state.mu);
  state.drained.clear();
  for (ThreadTraceBuffer* buffer : state.live) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->events.clear();
  }
}

bool WriteTrace(const std::string& path) {
  std::vector<TraceEvent> events = CollectEvents();
  // Deterministic file order for a given event set: by thread, then time,
  // then longest-first so an enclosing span precedes its children even at
  // equal timestamps.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;
            });

  std::ofstream out(path);
  if (!out) return false;
  JsonWriter w(out, /*pretty=*/false);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("name");
    w.String(e.name);
    w.Key("cat");
    w.String("arraydb");
    w.Key("ph");
    w.String("X");
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(static_cast<int64_t>(e.tid));
    w.Key("ts");
    w.Double(static_cast<double>(e.ts_ns) / 1e3, "%.3f");
    w.Key("dur");
    w.Double(static_cast<double>(e.dur_ns) / 1e3, "%.3f");
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  out << "\n";
  return static_cast<bool>(out);
}

namespace {

// ARRAYDB_TRACE=<path>: trace the whole process and write the file at
// exit. Static-initialized so benches and examples need no code.
struct EnvTraceInit {
  EnvTraceInit() {
    const char* path = std::getenv("ARRAYDB_TRACE");
    if (path != nullptr && *path != '\0') {
      static std::string trace_path;
      trace_path = path;
      StartTracing();
      std::atexit([] { WriteTrace(trace_path); });
    }
  }
};
[[maybe_unused]] const EnvTraceInit g_env_trace_init;

}  // namespace

}  // namespace arraydb::telemetry
