#include "telemetry/telemetry.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "telemetry/json.h"

namespace arraydb::telemetry {

namespace internal {

std::atomic<bool> g_enabled{true};

int ShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

namespace {

// One steady-clock origin for every metric and trace timestamp in the
// process, fixed at first use.
std::chrono::steady_clock::time_point Epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

}  // namespace internal

bool Enabled() { return internal::Active(); }

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

ScopedEnabled::ScopedEnabled(bool enabled) : saved_(Enabled()) {
  SetEnabled(enabled);
}

ScopedEnabled::~ScopedEnabled() { SetEnabled(saved_); }

int64_t MetricsNowNs() {
#if ARRAYDB_TELEMETRY_ENABLED
  if (!internal::Active()) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - internal::Epoch())
      .count();
#else
  return 0;
#endif
}

// -- Counter ------------------------------------------------------------------

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// -- Gauge --------------------------------------------------------------------

void Gauge::Set(int64_t v) {
  if (!internal::Active()) return;
  value_.store(v, std::memory_order_relaxed);
  UpdateMax(v);
}

void Gauge::UpdateMax(int64_t v) {
  if (!internal::Active()) return;
  int64_t seen = value_.load(std::memory_order_relaxed);
  while (v > seen &&
         !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  seen = peak_.load(std::memory_order_relaxed);
  while (v > seen &&
         !peak_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::Reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

// -- Histogram ----------------------------------------------------------------

int Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  const int width = std::bit_width(static_cast<uint64_t>(value));
  return width < kBuckets ? width : kBuckets - 1;
}

int64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) return 0;
  if (b >= kBuckets - 1) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

int64_t Histogram::Count() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    for (const auto& bucket : shard.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

int64_t Histogram::Sum() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<int64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<int64_t, kBuckets> counts{};
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      counts[static_cast<size_t>(b)] +=
          shard.buckets[static_cast<size_t>(b)].load(
              std::memory_order_relaxed);
    }
  }
  return counts;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

// -- Registry -----------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked: instruments must outlive every thread that may still be
  // flushing samples at process exit.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::string Registry::SnapshotJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  JsonWriter w(out);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, counter] : counters_) {
    w.Key(name);
    w.Int(counter->Value());
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    w.Key(name);
    w.BeginObject();
    w.Key("value");
    w.Int(gauge->Value());
    w.Key("peak");
    w.Int(gauge->Peak());
    w.EndObject();
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Int(histogram->Count());
    w.Key("sum");
    w.Int(histogram->Sum());
    w.Key("buckets");
    w.BeginArray();
    for (const int64_t count : histogram->BucketCounts()) w.Int(count);
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  out << "\n";
  return out.str();
}

bool Registry::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << SnapshotJson();
  return static_cast<bool>(out);
}

void Registry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

namespace {

// ARRAYDB_METRICS=<path>: dump the registry snapshot at process exit —
// the zero-code way to get runtime metrics out of any bench or example.
struct EnvMetricsDump {
  EnvMetricsDump() {
    const char* path = std::getenv("ARRAYDB_METRICS");
    if (path != nullptr && *path != '\0') {
      static std::string metrics_path;
      metrics_path = path;
      std::atexit([] {
        Registry::Global().WriteJsonFile(metrics_path);
      });
    }
  }
};
[[maybe_unused]] const EnvMetricsDump g_env_metrics_dump;

}  // namespace

}  // namespace arraydb::telemetry
