// The one JSON emission path for every machine-readable artifact this repo
// writes: telemetry metric snapshots, Chrome trace-event files, and the
// BENCH_*.json benchmark records (bench/bench_util.h routes through here).
// Centralizing the writer means one escaping implementation and one numeric
// formatting convention, so ci/check_bench_trend.py and ci/check_trace.py
// parse every producer the same way.
//
// The writer is deliberately streaming and explicit (Begin/End pairs,
// Key-then-value) rather than a DOM: every caller already knows its shape,
// and output is byte-stable for a given call sequence — which is what makes
// telemetry snapshots diffable across runs.

#ifndef ARRAYDB_TELEMETRY_JSON_H_
#define ARRAYDB_TELEMETRY_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace arraydb::telemetry {

/// Escapes `s` for inclusion in a double-quoted JSON string: quote,
/// backslash, and control characters (\b \f \n \r \t, \u00XX for the rest).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  /// `pretty` indents nested containers by two spaces and breaks lines
  /// between members; compact mode (trace files) emits no whitespace.
  explicit JsonWriter(std::ostream& out, bool pretty = true)
      : out_(out), pretty_(pretty) {}

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits an object member key (escaped); the next value call provides the
  /// member's value. Only valid directly inside an object.
  void Key(std::string_view name);

  void String(std::string_view value);
  /// Formats with a printf double format (default "%.4f", the convention
  /// the bench metrics established).
  void Double(double value, const char* fmt = "%.4f");
  void Int(int64_t value);
  void Bool(bool value);

 private:
  void ValuePrefix();  // Comma / newline / indent before a value.
  void Indent(size_t depth);

  struct Frame {
    bool first = true;
  };

  std::ostream& out_;
  bool pretty_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace arraydb::telemetry

#endif  // ARRAYDB_TELEMETRY_JSON_H_
