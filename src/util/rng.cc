#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace arraydb::util {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // boost::hash_combine recipe widened to 64 bits.
  return seed ^ (SplitMix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) {
    x = SplitMix64(x);
    s = x;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ARRAYDB_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Marsaglia polar method.
  for (;;) {
    const double u = 2.0 * NextDouble() - 1.0;
    const double v = 2.0 * NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

int64_t Rng::NextZipf(int64_t n, double alpha) {
  ZipfTable table(n, alpha);
  return table.Sample(*this);
}

ZipfTable::ZipfTable(int64_t n, double alpha) : alpha_(alpha) {
  ARRAYDB_CHECK_GT(n, 0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
    cdf_[static_cast<size_t>(r)] = sum;
  }
  norm_ = sum;
  for (auto& c : cdf_) c /= sum;
}

int64_t ZipfTable::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfTable::Pmf(int64_t r) const {
  ARRAYDB_CHECK_GE(r, 0);
  ARRAYDB_CHECK_LT(r, size());
  return 1.0 / std::pow(static_cast<double>(r + 1), alpha_) / norm_;
}

}  // namespace arraydb::util
