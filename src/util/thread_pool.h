// A small fixed-size thread pool plus a deterministic ParallelFor helper.
//
// The pool exists for the chunk-parallel ingest/placement fast path: rank
// computation and other per-chunk work is sharded into contiguous index
// ranges, each shard writes only its own output slots, and the caller
// blocks until every shard has finished (ordered merge). Results are
// bit-identical to the sequential execution regardless of thread count or
// scheduling.

#ifndef ARRAYDB_UTIL_THREAD_POOL_H_
#define ARRAYDB_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arraydb::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues all of `tasks` under one lock acquisition and wakes enough
  /// workers for them (batched submission for fan-outs like the morsel
  /// scheduler, which would otherwise pay a lock/notify round-trip per
  /// worker). Queue order is the vector order.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Process-wide pool sized to the hardware concurrency, started lazily.
  static ThreadPool& Shared();

 private:
  // Queued work item. The enqueue timestamp feeds the
  // util.thread_pool.queue_wait_us telemetry histogram; it is 0 (and the
  // wait is not recorded) when telemetry is inactive.
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs body(begin, end) over contiguous shards of [0, n), at most
/// `max_shards` of them, on the shared pool; blocks until all shards have
/// completed. max_shards <= 1 (or tiny n) degenerates to an inline call, so
/// a thread count of 1 is exactly the sequential path.
void ParallelFor(int64_t n, int max_shards,
                 const std::function<void(int64_t, int64_t)>& body);

/// The one place a configured thread-count knob is interpreted: a positive
/// value is taken verbatim; zero (or negative) means "auto" and resolves to
/// std::thread::hardware_concurrency(), clamped to at least 1 for platforms
/// that report 0. Every consumer of a `* _threads` config field
/// (RunnerConfig::ingest_threads, reorg::ReorgOptions::copy_threads,
/// ElasticEngine::set_ingest_threads) resolves through this helper.
int ResolveThreadCount(int configured);

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_THREAD_POOL_H_
