#include "util/strings.h"

#include <cstdio>

namespace arraydb::util {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string HumanBytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int unit = 0;
  double v = bytes;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", v, kUnits[unit]);
}

std::string HumanMinutes(double minutes) {
  if (minutes < 1.0) return StrFormat("%.1f s", minutes * 60.0);
  if (minutes > 600.0) return StrFormat("%.1f h", minutes / 60.0);
  return StrFormat("%.2f min", minutes);
}

std::string PadRight(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return s + std::string(width - s.size(), ' ');
}

std::string PadLeft(const std::string& s, size_t width) {
  if (s.size() >= width) return s.substr(0, width);
  return std::string(width - s.size(), ' ') + s;
}

}  // namespace arraydb::util
