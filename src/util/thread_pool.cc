#include "util/thread_pool.h"

#include <algorithm>

#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace arraydb::util {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ARRAYDB_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ARRAYDB_CHECK(!stopping_);
    queue_.push_back(Task{std::move(task), telemetry::MetricsNowNs()});
    TELEM_GAUGE_SET("util.thread_pool.queue_depth",
                    static_cast<int64_t>(queue_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ARRAYDB_CHECK(!stopping_);
    const int64_t now_ns = telemetry::MetricsNowNs();
    for (auto& task : tasks) {
      ARRAYDB_CHECK(task != nullptr);
      queue_.push_back(Task{std::move(task), now_ns});
    }
    TELEM_GAUGE_SET("util.thread_pool.queue_depth",
                    static_cast<int64_t>(queue_.size()));
  }
  if (tasks.size() == 1) {
    work_available_.notify_one();
  } else {
    work_available_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Observe-only timing: start_ns is 0 (and nothing is recorded) when
    // telemetry is off, so the task always runs identically.
    const int64_t start_ns = telemetry::MetricsNowNs();
    if (start_ns > 0 && task.enqueue_ns > 0) {
      TELEM_HISTOGRAM_RECORD("util.thread_pool.queue_wait_us",
                             (start_ns - task.enqueue_ns) / 1000);
    }
    task.fn();
    TELEM_COUNTER_ADD("util.thread_pool.tasks_executed", 1);
    if (start_ns > 0) {
      TELEM_HISTOGRAM_RECORD("util.thread_pool.task_us",
                             (telemetry::MetricsNowNs() - start_ns) / 1000);
    }
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(ResolveThreadCount(0));
  return pool;
}

int ResolveThreadCount(int configured) {
  if (configured > 0) return configured;
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

void ParallelFor(int64_t n, int max_shards,
                 const std::function<void(int64_t, int64_t)>& body) {
  if (n <= 0) return;
  const int64_t shards =
      std::min<int64_t>(std::max(1, max_shards), n);
  if (shards == 1) {
    body(0, n);
    return;
  }

  // Contiguous static partition: shard s owns [s*step, ...) with the last
  // shard absorbing the remainder. Completion is tracked with a counter so
  // the caller can block without joining threads.
  struct Completion {
    std::mutex mu;
    std::condition_variable done;
    int64_t remaining = 0;
  } completion;
  completion.remaining = shards;

  const int64_t step = n / shards;
  const int64_t extra = n % shards;
  int64_t begin = 0;
  auto& pool = ThreadPool::Shared();
  for (int64_t s = 0; s < shards; ++s) {
    const int64_t len = step + (s < extra ? 1 : 0);
    const int64_t end = begin + len;
    pool.Submit([&body, &completion, begin, end] {
      body(begin, end);
      std::lock_guard<std::mutex> lock(completion.mu);
      if (--completion.remaining == 0) completion.done.notify_one();
    });
    begin = end;
  }
  std::unique_lock<std::mutex> lock(completion.mu);
  completion.done.wait(lock, [&completion] { return completion.remaining == 0; });
}

}  // namespace arraydb::util
