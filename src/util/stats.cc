#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace arraydb::util {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Stdev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double RelativeStdev(const std::vector<double>& xs) {
  const double m = Mean(xs);
  if (m == 0.0) return 0.0;
  return Stdev(xs) / m;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  ARRAYDB_CHECK_GE(q, 0.0);
  ARRAYDB_CHECK_LE(q, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Sum(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double Min(const std::vector<double>& xs) {
  ARRAYDB_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  ARRAYDB_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::stdev() const { return std::sqrt(variance()); }

}  // namespace arraydb::util
