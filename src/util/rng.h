// Deterministic pseudo-random number generation and the sampling
// distributions used by the workload generators.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a seed. The generator is xoshiro256**, seeded via
// SplitMix64 (public-domain algorithms by Blackman & Vigna).

#ifndef ARRAYDB_UTIL_RNG_H_
#define ARRAYDB_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace arraydb::util {

/// Stateless 64-bit mixing function; also useful as a hash.
uint64_t SplitMix64(uint64_t x);

/// Hashes a sequence of 64-bit words into one word (for chunk coordinates).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Lognormal with parameters of the underlying normal.
  double NextLogNormal(double mu, double sigma);

  /// Samples an integer rank in [0, n) with probability proportional to
  /// 1/(rank+1)^alpha (Zipf / power law). Uses the precomputed table from
  /// ZipfTable for repeated draws; this method is O(n) per call and intended
  /// for one-off draws.
  int64_t NextZipf(int64_t n, double alpha);

 private:
  uint64_t s_[4];
};

/// Precomputed cumulative distribution for repeated Zipf draws.
/// Probability of rank r (0-based) is proportional to 1/(r+1)^alpha.
class ZipfTable {
 public:
  ZipfTable(int64_t n, double alpha);

  /// Samples a rank in [0, n) using `rng`. O(log n).
  int64_t Sample(Rng& rng) const;

  /// Probability mass of rank r.
  double Pmf(int64_t r) const;

  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
  double alpha_;
  double norm_;
};

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_RNG_H_
