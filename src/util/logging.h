// Lightweight assertion and logging macros.
//
// Programming errors (violated preconditions, broken invariants) abort the
// process via CHECK; recoverable conditions are reported through
// util::Status instead (see util/status.h).

#ifndef ARRAYDB_UTIL_LOGGING_H_
#define ARRAYDB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace arraydb::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace arraydb::util

// Aborts if `expr` is false. Enabled in all build types: the simulation is
// deterministic, so a violated invariant is always a bug worth a loud stop.
#define ARRAYDB_CHECK(expr)                                     \
  do {                                                          \
    if (!(expr)) {                                              \
      ::arraydb::util::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                           \
  } while (false)

// Convenience comparison checks. These deliberately evaluate their arguments
// exactly once.
#define ARRAYDB_CHECK_OP(a, op, b)                                   \
  do {                                                               \
    const auto& va_ = (a);                                           \
    const auto& vb_ = (b);                                           \
    if (!(va_ op vb_)) {                                             \
      ::arraydb::util::CheckFailed(__FILE__, __LINE__,               \
                                   #a " " #op " " #b);               \
    }                                                                \
  } while (false)

#define ARRAYDB_CHECK_EQ(a, b) ARRAYDB_CHECK_OP(a, ==, b)
#define ARRAYDB_CHECK_NE(a, b) ARRAYDB_CHECK_OP(a, !=, b)
#define ARRAYDB_CHECK_LT(a, b) ARRAYDB_CHECK_OP(a, <, b)
#define ARRAYDB_CHECK_LE(a, b) ARRAYDB_CHECK_OP(a, <=, b)
#define ARRAYDB_CHECK_GT(a, b) ARRAYDB_CHECK_OP(a, >, b)
#define ARRAYDB_CHECK_GE(a, b) ARRAYDB_CHECK_OP(a, >=, b)

#endif  // ARRAYDB_UTIL_LOGGING_H_
