// Lightweight assertion and logging macros.
//
// Programming errors (violated preconditions, broken invariants) abort the
// process via CHECK; recoverable conditions are reported through
// util::Status instead (see util/status.h).

#ifndef ARRAYDB_UTIL_LOGGING_H_
#define ARRAYDB_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace arraydb::util {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

namespace internal {

// True when `std::ostream << T` is well-formed — the gate for printing
// CHECK_OP operand values.
template <typename T, typename = void>
struct IsStreamable : std::false_type {};

template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T>
void StreamOperand(std::ostream& os, const T& v) {
  if constexpr (IsStreamable<T>::value) {
    // Unary plus promotes char-family integrals so they print numerically
    // ('\0' prints as 0, not as a NUL byte in the abort message).
    if constexpr (std::is_integral_v<T>) {
      os << +v;
    } else {
      os << v;
    }
  } else {
    os << "<unprintable>";
  }
}

}  // namespace internal

// Comparison-check failure with the two operand values appended — so the
// abort message shows what was actually compared, not just the expression.
template <typename A, typename B>
[[noreturn]] void CheckOpFailed(const char* file, int line, const char* expr,
                                const A& a, const B& b) {
  std::ostringstream os;
  os << expr << " (";
  internal::StreamOperand(os, a);
  os << " vs. ";
  internal::StreamOperand(os, b);
  os << ")";
  CheckFailed(file, line, os.str().c_str());
}

}  // namespace arraydb::util

// Aborts if `expr` is false. Enabled in all build types: the simulation is
// deterministic, so a violated invariant is always a bug worth a loud stop.
#define ARRAYDB_CHECK(expr)                                     \
  do {                                                          \
    if (!(expr)) {                                              \
      ::arraydb::util::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                           \
  } while (false)

// Convenience comparison checks. These deliberately evaluate their arguments
// exactly once; on failure the message includes both operand values (for
// types with an ostream operator<<; others print as <unprintable>).
#define ARRAYDB_CHECK_OP(a, op, b)                                   \
  do {                                                               \
    const auto& va_ = (a);                                           \
    const auto& vb_ = (b);                                           \
    if (!(va_ op vb_)) {                                             \
      ::arraydb::util::CheckOpFailed(__FILE__, __LINE__,             \
                                     #a " " #op " " #b, va_, vb_);   \
    }                                                                \
  } while (false)

#define ARRAYDB_CHECK_EQ(a, b) ARRAYDB_CHECK_OP(a, ==, b)
#define ARRAYDB_CHECK_NE(a, b) ARRAYDB_CHECK_OP(a, !=, b)
#define ARRAYDB_CHECK_LT(a, b) ARRAYDB_CHECK_OP(a, <, b)
#define ARRAYDB_CHECK_LE(a, b) ARRAYDB_CHECK_OP(a, <=, b)
#define ARRAYDB_CHECK_GT(a, b) ARRAYDB_CHECK_OP(a, >, b)
#define ARRAYDB_CHECK_GE(a, b) ARRAYDB_CHECK_OP(a, >=, b)

#endif  // ARRAYDB_UTIL_LOGGING_H_
