// String formatting helpers (GCC 12 lacks <format>, so these wrap snprintf).

#ifndef ARRAYDB_UTIL_STRINGS_H_
#define ARRAYDB_UTIL_STRINGS_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace arraydb::util {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Renders a byte count with a human-friendly unit, e.g. "1.50 GB".
std::string HumanBytes(double bytes);

/// Renders a duration given in minutes, e.g. "2.31 min" or "138.6 s".
std::string HumanMinutes(double minutes);

/// Left-pads or truncates `s` to exactly `width` characters.
std::string PadRight(const std::string& s, size_t width);
std::string PadLeft(const std::string& s, size_t width);

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_STRINGS_H_
