// Minimal Status / StatusOr error-propagation types.
//
// The library does not throw exceptions across its public API (Google C++
// style). Fallible operations return Status or StatusOr<T>.

#ifndef ARRAYDB_UTIL_STATUS_H_
#define ARRAYDB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace arraydb::util {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  /// A transient resource failure: retrying later may succeed (a failed
  /// chunk transfer, an exhausted retry budget).
  kUnavailable,
};

/// Returns a human-readable name for `code` ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a free-form message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "CODE: message" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Internal(std::string message);
Status Unavailable(std::string message);

/// Error-context chaining: returns `status` with `context` prepended to its
/// message ("context: original message"), preserving the code. Each layer of
/// a failure path annotates the cause it propagates, so the final string
/// reads outermost-first, e.g.
///   "increment 3, retry 2: transfer to node 5 failed"
/// OK statuses pass through unchanged (annotating success is a no-op).
Status Annotate(const Status& status, const std::string& context);

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : value_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : status_(std::move(status)) {
    ARRAYDB_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ARRAYDB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    ARRAYDB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    ARRAYDB_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_STATUS_H_
