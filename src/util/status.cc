#include "util/status.h"

namespace arraydb::util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

Status Annotate(const Status& status, const std::string& context) {
  if (status.ok() || context.empty()) return status;
  if (status.message().empty()) return Status(status.code(), context);
  return Status(status.code(), context + ": " + status.message());
}

}  // namespace arraydb::util
