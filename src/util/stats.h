// Summary statistics used throughout the evaluation: mean, standard
// deviation, relative standard deviation (the paper's load-balance metric),
// medians and quantiles.

#ifndef ARRAYDB_UTIL_STATS_H_
#define ARRAYDB_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace arraydb::util {

double Mean(const std::vector<double>& xs);

/// Population standard deviation (the paper reports RSD over node loads,
/// which is a complete population, not a sample).
double Stdev(const std::vector<double>& xs);

/// Relative standard deviation: stdev / mean. Returns 0 for empty input or
/// zero mean. The paper reports this as a percentage; callers multiply.
double RelativeStdev(const std::vector<double>& xs);

/// Median (averages the middle pair for even sizes). Copies the input.
double Median(std::vector<double> xs);

/// Quantile q in [0,1] with linear interpolation. Copies the input.
double Quantile(std::vector<double> xs, double q);

/// Sum of elements.
double Sum(const std::vector<double>& xs);

double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Streaming accumulator for mean/stdev without storing samples
/// (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance.
  double variance() const { return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stdev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_STATS_H_
