// Size and time unit constants. The simulation's canonical units are
// bytes for storage and minutes for elapsed time (matching the paper's
// figures, which report elapsed minutes and GB).

#ifndef ARRAYDB_UTIL_UNITS_H_
#define ARRAYDB_UTIL_UNITS_H_

#include <cstdint>

namespace arraydb::util {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * kKiB;
inline constexpr double kGiB = 1024.0 * kMiB;

/// Converts bytes to GiB (the paper's "GB").
inline constexpr double BytesToGb(double bytes) { return bytes / kGiB; }
inline constexpr double GbToBytes(double gb) { return gb * kGiB; }

inline constexpr double kMinutesPerHour = 60.0;

}  // namespace arraydb::util

#endif  // ARRAYDB_UTIL_UNITS_H_
