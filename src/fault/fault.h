// Deterministic fault injection for the elastic data plane.
//
// The reorganization story assumes every chunk transfer succeeds; at
// production scale, node slowdowns, transient copy failures, and mid-reorg
// node loss are the common case. This subsystem injects those faults from
// *seeded, replayable schedules* so that every chaos run is bit-reproducible
// and CI-gateable — the same determinism-first stance the rest of the repo
// enforces (ci/determinism_lint.py): with many admissible failure
// interleavings, the seed pins exactly one.
//
// A FaultPlan describes the schedule; a FaultInjector evaluates it. The
// injector is *stateless*: every decision is a pure hash of (seed, operation
// identity), where the identity of a transfer attempt is (plan ordinal,
// increment index, retry attempt, move digest). Consequences:
//   * Replaying a run with the same seed reproduces the identical fault
//     trajectory — retries, backoff, aborts, and replans included.
//   * Decisions are safe to evaluate from any thread of a parallel copy
//     loop (no shared mutable state), and independent of thread count.
//   * A retried attempt draws fresh (the attempt index is part of the
//     identity), so transient faults are transient; a *re-staged* plan
//     draws fresh too (the plan ordinal advances on every Begin).
//
// Permanent node death is scheduled in *virtual time* (the cost model's
// simulated minutes), the clock the reorg engine advances as it copies, so
// death points are machine-independent. The fault model covers migration
// *destinations* (the freshly added, still-filling nodes); death of a node
// holding authoritative source data is unrecoverable without replication
// and reported as an error, not silently absorbed.
//
// See src/fault/README.md for the recovery semantics built on top
// (retry/backoff, Abort rollback, dead-destination replanning).

#ifndef ARRAYDB_FAULT_FAULT_H_
#define ARRAYDB_FAULT_FAULT_H_

#include <cstdint>
#include <vector>

#include "cluster/transfer.h"

namespace arraydb::fault {

/// A scheduled permanent node failure at a point on the virtual clock.
struct NodeDeath {
  /// Virtual minute at which the node is considered dead (inclusive).
  double at_minutes = 0.0;
  cluster::NodeId node = cluster::kInvalidNode;
};

/// A seeded, replayable fault schedule. Rates are per transfer *attempt*
/// (one chunk move, one retry); the same (seed, identity) pair always draws
/// the same outcome.
struct FaultPlan {
  uint64_t seed = 0;
  /// Probability that a transfer attempt fails transiently (the copy runs,
  /// its checksum does not verify; retrying draws fresh).
  double transient_failure_rate = 0.0;
  /// Probability that a transfer attempt is slow-copied: its share of the
  /// increment's copy time is dilated by slow_copy_dilation.
  double slow_copy_rate = 0.0;
  /// Copy-time multiplier for a slow-copied move (>= 1).
  double slow_copy_dilation = 4.0;
  /// Permanent node deaths on the virtual clock.
  std::vector<NodeDeath> node_deaths;
};

/// Outcome of one transfer-attempt probe.
enum class FaultKind {
  kNone = 0,
  kTransientFailure,
  kSlowCopy,
};
const char* FaultKindName(FaultKind kind);

/// Identity of one transfer attempt — the key a FaultPlan's per-transfer
/// schedule is evaluated on. Two attempts with the same identity (same
/// plan, increment, retry, and move) always draw the same fault.
struct TransferOp {
  /// Ordinal of the staged plan (advances on every engine Begin, including
  /// the restart after an abort — restarts draw fresh).
  int plan_ordinal = 0;
  /// Increment index within the plan.
  int increment = 0;
  /// Retry attempt for this increment (0 = first try).
  int attempt = 0;
  /// Content digest of the move (reorg engine's FNV-1a transfer digest).
  uint64_t move_digest = 0;
};

/// Evaluates a FaultPlan. Stateless and thread-safe: decisions are pure
/// functions of (plan.seed, identity), so they may be probed from inside a
/// parallel copy loop without ordering effects. The injector records no
/// telemetry itself — accounting lives with the caller, which knows the
/// deterministic reduction order.
class FaultInjector {
 public:
  /// Rates are clamped to [0, 1], the dilation to >= 1; node deaths are
  /// sorted by (at_minutes, node) so schedule evaluation is input-order
  /// independent.
  explicit FaultInjector(FaultPlan plan);

  /// The fault (if any) affecting one transfer attempt.
  FaultKind TransferFault(const TransferOp& op) const;

  /// True when `node` has no scheduled death at or before `at_minutes`.
  bool NodeAlive(cluster::NodeId node, double at_minutes) const;

  /// Nodes whose scheduled death is at or before `at_minutes`, ascending.
  std::vector<cluster::NodeId> DeadNodesAt(double at_minutes) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
};

}  // namespace arraydb::fault

#endif  // ARRAYDB_FAULT_FAULT_H_
