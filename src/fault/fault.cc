#include "fault/fault.h"

#include <algorithm>

#include "util/rng.h"

namespace arraydb::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kTransientFailure:
      return "transient-failure";
    case FaultKind::kSlowCopy:
      return "slow-copy";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.transient_failure_rate =
      std::clamp(plan_.transient_failure_rate, 0.0, 1.0);
  plan_.slow_copy_rate = std::clamp(plan_.slow_copy_rate, 0.0, 1.0);
  plan_.slow_copy_dilation = std::max(1.0, plan_.slow_copy_dilation);
  std::sort(plan_.node_deaths.begin(), plan_.node_deaths.end(),
            [](const NodeDeath& a, const NodeDeath& b) {
              if (a.at_minutes != b.at_minutes) {
                return a.at_minutes < b.at_minutes;
              }
              return a.node < b.node;
            });
}

FaultKind FaultInjector::TransferFault(const TransferOp& op) const {
  if (plan_.transient_failure_rate <= 0.0 && plan_.slow_copy_rate <= 0.0) {
    return FaultKind::kNone;
  }
  // One SplitMix64 chain over (seed, identity): pure, order-free, and
  // identical on every machine and thread count.
  uint64_t h = util::SplitMix64(plan_.seed);
  h = util::SplitMix64(h ^ static_cast<uint64_t>(op.plan_ordinal));
  h = util::SplitMix64(h ^ static_cast<uint64_t>(op.increment));
  h = util::SplitMix64(h ^ static_cast<uint64_t>(op.attempt));
  h = util::SplitMix64(h ^ op.move_digest);
  // 53 mantissa bits -> uniform in [0, 1).
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (u < plan_.transient_failure_rate) return FaultKind::kTransientFailure;
  if (u < plan_.transient_failure_rate + plan_.slow_copy_rate) {
    return FaultKind::kSlowCopy;
  }
  return FaultKind::kNone;
}

bool FaultInjector::NodeAlive(cluster::NodeId node, double at_minutes) const {
  for (const NodeDeath& d : plan_.node_deaths) {
    if (d.at_minutes > at_minutes) break;  // Sorted by time.
    if (d.node == node) return false;
  }
  return true;
}

std::vector<cluster::NodeId> FaultInjector::DeadNodesAt(
    double at_minutes) const {
  std::vector<cluster::NodeId> dead;
  for (const NodeDeath& d : plan_.node_deaths) {
    if (d.at_minutes > at_minutes) break;
    dead.push_back(d.node);
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

}  // namespace arraydb::fault
