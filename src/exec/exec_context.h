// ExecContext: the explicit per-call execution settings of the data-plane
// operators and joins — worker threads, morsel grain, join partition bits,
// and an optional cooperative yield gate.
//
// Before the serving layer, these settings lived in process-global mutable
// knobs (SetDataPlaneThreads / SetJoinPartitionBits) that every operator
// read per call; two concurrent sessions could not run with different
// settings, and a configuration racing an in-flight join was a data race.
// The context object retires that: sessions thread an ExecContext through
// the operator and join entry points (exec/operators.h and exec/join.h
// carry ExecContext overloads), so concurrent sessions are fully
// independent. The legacy knobs survive as thin shims over one
// process-default context, now mutex-guarded — safe to *read* from any
// number of concurrent operator calls, but mutating the default remains a
// single-threaded-setup affair (a session that needs its own settings
// passes its own context instead of mutating the shared default).

#ifndef ARRAYDB_EXEC_EXEC_CONTEXT_H_
#define ARRAYDB_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "exec/join.h"

namespace arraydb::exec {

struct ExecContext {
  /// Worker threads for morsel-parallel operator execution (1 = sequential,
  /// 0 = auto via util::ResolveThreadCount). Results are bit-identical at
  /// every setting (morsel determinism contract).
  int data_plane_threads = 1;
  /// Radix partition bits for the rank-keyed hash joins. Results are
  /// bit-identical at every setting.
  int join_partition_bits = kDefaultJoinPartitionBits;
  /// Target cells per morsel. Fixes reduction boundaries: value-exact
  /// operators are grain-invariant, floating-point sums may differ in the
  /// last ULPs between grains (deterministically; see src/exec/README.md).
  int64_t morsel_grain = kDefaultMorselGrainCells;
  /// Optional cooperative preemption gate: morsel workers running under
  /// this context pause at the pickup counter while the gate is held (the
  /// serving layer holds it for batch-tier work whenever interactive
  /// queries are pending). Timing-only — never affects results. Not owned;
  /// must outlive every operator call using the context.
  const YieldPoint* yield = nullptr;

  /// The context expressed as operator / join options.
  MorselOptions morsel_options() const;
  JoinOptions join_options() const;
};

/// Snapshot of the process-default context (what the no-options operator
/// overloads run with). Thread-safe.
ExecContext DefaultExecContext();

/// Replaces the process-default context. Thread-safe against concurrent
/// DefaultExecContext readers, but configuration-time by convention:
/// in-flight operators that already snapshotted the default keep their
/// settings.
void SetDefaultExecContext(const ExecContext& context);

/// RAII override of the whole default context (tests and benches; the
/// workload runner installs RunnerConfig::exec_context through this).
class ScopedExecContext {
 public:
  explicit ScopedExecContext(const ExecContext& context);
  ~ScopedExecContext();
  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  ExecContext saved_;
};

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_EXEC_CONTEXT_H_
