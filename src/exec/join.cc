#include "exec/join.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <optional>
#include <utility>

#include "hilbert/hilbert.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace arraydb::exec {

namespace {

// The knob shims (DataPlaneJoinOptions, SetJoinPartitionBits,
// ScopedJoinPartitionBits) live in exec_context.cc with the default
// ExecContext they wrap.

// Non-empty chunks in deterministic (lexicographic) order — the join work
// domain on both sides. Synthetic metadata-only chunks carry no cells.
std::vector<const array::Chunk*> NonEmptyChunks(const array::Array& array) {
  std::vector<const array::Chunk*> chunks;
  for (const array::Chunk* chunk : array.SortedChunks()) {
    if (chunk->num_cells() != 0) chunks.push_back(chunk);
  }
  return chunks;
}

// Cache-sized runs of whole chunks (the same carve the scan operators use).
std::vector<MorselRange> CarveChunks(
    const std::vector<const array::Chunk*>& chunks, int64_t grain) {
  std::vector<int64_t> weights;
  weights.reserve(chunks.size());
  for (const array::Chunk* chunk : chunks) {
    weights.push_back(static_cast<int64_t>(chunk->num_cells()));
  }
  return MorselScheduler::CarveByWeight(weights, grain);
}

// The common key space of a dimension join: per-dimension offsets and a
// codec ranking every cell of both sides into one 64-bit Hilbert key.
// Derived from the union of the sides' chunk bounding boxes — a pure
// function of the data, so keys (and with them partitions and results)
// never depend on schedule or configuration.
struct RankKeySpace {
  array::Coordinates lo;
  int rank_bits = 0;  // num_dims * bits: the occupied key width.
  std::optional<hilbert::HilbertCodec> codec;
};

std::optional<RankKeySpace> MakeRankKeySpace(
    const std::vector<const array::Chunk*>& build,
    const std::vector<const array::Chunk*>& probe) {
  RankKeySpace space;
  space.lo = build.front()->bbox_lo();
  array::Coordinates hi = build.front()->bbox_hi();
  const size_t ndims = space.lo.size();
  for (const auto* chunks : {&build, &probe}) {
    for (const array::Chunk* chunk : *chunks) {
      if (chunk->bbox_lo().size() != ndims) return std::nullopt;
      for (size_t d = 0; d < ndims; ++d) {
        space.lo[d] = std::min(space.lo[d], chunk->bbox_lo()[d]);
        hi[d] = std::max(hi[d], chunk->bbox_hi()[d]);
      }
    }
  }
  array::Coordinates extents(ndims);
  for (size_t d = 0; d < ndims; ++d) extents[d] = hi[d] - space.lo[d] + 1;
  const int bits = hilbert::BitsForExtents(extents);
  auto codec = hilbert::HilbertCodec::Create(static_cast<int>(ndims), bits);
  if (!codec.ok()) return std::nullopt;  // Rank or bit budget exceeded.
  space.rank_bits = static_cast<int>(ndims) * bits;
  space.codec.emplace(*codec);
  return space;
}

// splitmix64 finalizer: full-avalanche mix so radix-partitioned keys (which
// share their high bits within a partition) still spread over the slots.
inline uint64_t MixKey(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

// -- FlatKeySet ---------------------------------------------------------------

void FlatKeySet::Reserve(size_t n) {
  size_t capacity = 16;
  while (capacity < 2 * n) capacity <<= 1;
  if (capacity <= slots_.size()) return;
  std::vector<uint64_t> old = std::move(slots_);
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;
  for (const uint64_t key : old) {
    if (key == 0) continue;
    size_t i = static_cast<size_t>(MixKey(key)) & mask_;
    while (slots_[i] != 0) i = (i + 1) & mask_;
    slots_[i] = key;
  }
}

void FlatKeySet::Grow() { Reserve(slots_.empty() ? 8 : slots_.size()); }

void FlatKeySet::Insert(uint64_t key) {
  if (key == 0) {
    size_ += has_zero_ ? 0 : 1;
    has_zero_ = true;
    return;
  }
  if (2 * (size_ + 1) > slots_.size()) Grow();
  size_t i = static_cast<size_t>(MixKey(key)) & mask_;
  while (slots_[i] != 0) {
    if (slots_[i] == key) return;
    i = (i + 1) & mask_;
  }
  slots_[i] = key;
  ++size_;
}

bool FlatKeySet::Contains(uint64_t key) const {
  if (key == 0) return has_zero_;
  if (slots_.empty()) return false;
  size_t i = static_cast<size_t>(MixKey(key)) & mask_;
  while (slots_[i] != 0) {
    if (slots_[i] == key) return true;
    i = (i + 1) & mask_;
  }
  return false;
}

// -- Dimension join -----------------------------------------------------------

namespace internal {

int64_t DimJoinCountBySet(const array::Array& a, const array::Array& b) {
  const array::Array& build = a.total_cells() <= b.total_cells() ? a : b;
  const array::Array& probe = a.total_cells() <= b.total_cells() ? b : a;
  std::unordered_set<array::Coordinates, array::CoordinatesHash> positions;
  positions.reserve(static_cast<size_t>(build.total_cells()));
  array::Coordinates scratch;
  const auto load_pos = [&scratch](const array::Chunk& chunk, size_t i) {
    const int64_t* pos = chunk.cell_pos(i);
    scratch.assign(pos, pos + chunk.num_dims());
  };
  // arraydb-lint: order-insensitive -- set insertion is commutative.
  for (const auto& [coords, chunk] : build.chunks()) {
    for (size_t i = 0; i < chunk.num_cells(); ++i) {
      load_pos(chunk, i);
      positions.insert(scratch);
    }
  }
  int64_t matches = 0;
  // arraydb-lint: order-insensitive -- exact integer count of membership
  // hits; no visit-order dependence.
  for (const auto& [coords, chunk] : probe.chunks()) {
    for (size_t i = 0; i < chunk.num_cells(); ++i) {
      load_pos(chunk, i);
      if (positions.contains(scratch)) ++matches;
    }
  }
  return matches;
}

}  // namespace internal

int64_t DimJoinCount(const array::Array& a, const array::Array& b,
                     const JoinOptions& options) {
  TELEM_COUNTER_ADD("exec.join.dim_joins", 1);
  // Positions of different rank never compare equal: the join is empty.
  if (a.schema().num_dims() != b.schema().num_dims()) return 0;
  // Probe the larger side into the smaller side's key table (ties: `a`
  // builds) — the same side selection at every partition-bit setting.
  const array::Array& build = a.total_cells() <= b.total_cells() ? a : b;
  const array::Array& probe = a.total_cells() <= b.total_cells() ? b : a;
  const std::vector<const array::Chunk*> build_chunks = NonEmptyChunks(build);
  const std::vector<const array::Chunk*> probe_chunks = NonEmptyChunks(probe);
  if (build_chunks.empty() || probe_chunks.empty()) return 0;

  const auto space = MakeRankKeySpace(build_chunks, probe_chunks);
  if (!space.has_value()) {
    // No common rank key space (rank above the codec's state tables or
    // joint extents past the 64-bit budget): same semantics, set-keyed.
    TELEM_COUNTER_ADD("exec.join.set_fallbacks", 1);
    return internal::DimJoinCountBySet(a, b);
  }
  const hilbert::HilbertCodec& codec = *space->codec;
  const int64_t* key_lo = space->lo.data();

  // Radix geometry: a partition is the top `pbits` of the occupied rank
  // width. pbits = 0 degenerates to one table; the clamp keeps the shift
  // in range for narrow key spaces.
  const int pbits = std::clamp(options.partition_bits, 0,
                               std::min(space->rank_bits, 16));
  const size_t num_partitions = size_t{1} << pbits;
  const int shift = space->rank_bits - pbits;
  const auto partition_of = [pbits, shift](uint64_t key) {
    return pbits == 0 ? size_t{0} : static_cast<size_t>(key >> shift);
  };

  const MorselScheduler scheduler(options.morsel);
  const int64_t grain = options.morsel.grain_cells;

  // Build stage 1 — morsel-parallel key scatter: each build morsel ranks
  // its chunks' packed coordinate columns in one codec batch and scatters
  // the keys into per-partition lists; lists concatenate in fixed morsel
  // order (set semantics make even that ordering immaterial, but the
  // merge contract is kept uniform with every other operator).
  std::vector<FlatKeySet> tables(num_partitions);
  {
    TELEM_SPAN("exec.join.build");
    TELEM_COUNTER_ADD("exec.join.build_keys", build.total_cells());
    using KeyLists = std::vector<std::vector<uint64_t>>;
    KeyLists partitioned = scheduler.Reduce(
        CarveChunks(build_chunks, grain), KeyLists(num_partitions),
        [&](size_t, int64_t begin, int64_t end) {
          KeyLists local(num_partitions);
          std::vector<uint64_t> ranks;
          for (int64_t c = begin; c < end; ++c) {
            const array::Chunk& chunk = *build_chunks[static_cast<size_t>(c)];
            ranks.resize(chunk.num_cells());
            codec.RankPacked(chunk.packed_coords().data(), chunk.num_cells(),
                             key_lo, ranks.data());
            for (const uint64_t key : ranks) {
              local[partition_of(key)].push_back(key);
            }
          }
          return local;
        },
        [](KeyLists& acc, KeyLists&& partial) {
          for (size_t p = 0; p < acc.size(); ++p) {
            std::move(partial[p].begin(), partial[p].end(),
                      std::back_inserter(acc[p]));
          }
        });

    // The partition-size histogram reads the merged (schedule-independent)
    // lists, so its contents are thread-count invariant too.
    for (const auto& keys : partitioned) {
      TELEM_HISTOGRAM_RECORD("exec.join.partition_cells",
                             static_cast<int64_t>(keys.size()));
    }

    // Build stage 2 — partition-parallel table construction: each
    // partition's flat table is built by exactly one morsel (its own slot;
    // insertion order cannot affect set membership).
    scheduler.Run(
        MorselScheduler::Carve(static_cast<int64_t>(num_partitions), 1),
        [&](size_t, int64_t begin, int64_t end) {
          for (int64_t p = begin; p < end; ++p) {
            auto& keys = partitioned[static_cast<size_t>(p)];
            auto& table = tables[static_cast<size_t>(p)];
            table.Reserve(keys.size());
            for (const uint64_t key : keys) table.Insert(key);
            keys.clear();
            keys.shrink_to_fit();
          }
        });
  }

  // Probe — morsel-parallel with per-morsel match counters, merged in
  // fixed morsel order (integer sums: bit-identical in any order, the
  // fixed order keeps the uniform contract).
  TELEM_SPAN("exec.join.probe");
  TELEM_COUNTER_ADD("exec.join.probe_cells", probe.total_cells());
  const int64_t matches = scheduler.Reduce(
      CarveChunks(probe_chunks, grain), int64_t{0},
      [&](size_t, int64_t begin, int64_t end) {
        int64_t local = 0;
        std::vector<uint64_t> ranks;
        for (int64_t c = begin; c < end; ++c) {
          const array::Chunk& chunk = *probe_chunks[static_cast<size_t>(c)];
          ranks.resize(chunk.num_cells());
          codec.RankPacked(chunk.packed_coords().data(), chunk.num_cells(),
                           key_lo, ranks.data());
          for (const uint64_t key : ranks) {
            if (tables[partition_of(key)].Contains(key)) ++local;
          }
        }
        return local;
      },
      [](int64_t& acc, int64_t partial) { acc += partial; });
  TELEM_COUNTER_ADD("exec.join.probe_hits", matches);
  return matches;
}

// -- Attribute join -----------------------------------------------------------

bool AttrJoinKey(double value, int64_t* key) {
  // Conservative int64-representable window: values at or beyond ±2^62
  // cannot be real join keys and keep llround inside its domain.
  constexpr double kLimit = 4.611686018427388e18;  // 2^62.
  if (!(value > -kLimit && value < kLimit)) return false;  // NaN fails too.
  *key = std::llround(value);
  return true;
}

int64_t AttrJoinCount(const array::Array& array, int attr,
                      const std::unordered_set<int64_t>& keys,
                      const JoinOptions& options) {
  ARRAYDB_CHECK_GE(attr, 0);
  ARRAYDB_CHECK_LT(attr, array.schema().num_attrs());
  TELEM_COUNTER_ADD("exec.join.attr_joins", 1);
  const std::vector<const array::Chunk*> chunks = NonEmptyChunks(array);
  if (chunks.empty() || keys.empty()) return 0;
  // One flat table replaces the node-based set for the whole probe: the
  // key count is the (small) replicated side, so radix partitioning buys
  // nothing — parallelism comes from the morsel-parallel probe.
  FlatKeySet table;
  table.Reserve(keys.size());
  // arraydb-lint: order-insensitive -- FlatKeySet membership is identical
  // for any insertion order; only contains() results are consumed.
  for (const int64_t key : keys) table.Insert(static_cast<uint64_t>(key));
  const MorselScheduler scheduler(options.morsel);
  TELEM_SPAN("exec.join.attr_probe");
  const int64_t matches = scheduler.Reduce(
      CarveChunks(chunks, options.morsel.grain_cells), int64_t{0},
      [&](size_t, int64_t begin, int64_t end) {
        int64_t local = 0;
        for (int64_t c = begin; c < end; ++c) {
          const array::Chunk& chunk = *chunks[static_cast<size_t>(c)];
          for (const double value :
               chunk.attr_column(static_cast<size_t>(attr))) {
            int64_t key;
            if (AttrJoinKey(value, &key) &&
                table.Contains(static_cast<uint64_t>(key))) {
              ++local;
            }
          }
        }
        return local;
      },
      [](int64_t& acc, int64_t partial) { acc += partial; });
  TELEM_COUNTER_ADD("exec.join.attr_probe_hits", matches);
  return matches;
}

}  // namespace arraydb::exec
