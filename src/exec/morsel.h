// Morsel-driven parallel operator execution (§6.2.2's per-node parallel
// scan work, brought to the real data-plane operators).
//
// A MorselScheduler carves a work domain — an array's sorted chunk list, a
// FilterBoxView's span set, a CellSpanView's global cell range — into
// cache-sized morsels and dispatches them on util::ThreadPool. Workers pick
// morsels off a shared atomic counter in ascending index order, so a worker
// that finishes early immediately steals the next morsel (dynamic load
// balancing) while pickup stays chunk-major: consecutive morsels cover
// consecutive runs of the columnar storage, so each worker streams
// contiguous memory.
//
// Determinism contract (the same one the ingest prewarm and the SIMD
// lane-accumulation honor):
//   * The morsel decomposition is a pure function of the work domain and
//     the grain size — never of the thread count or the schedule.
//   * Each morsel computes a partial state into its own slot; no shared
//     mutable state.
//   * Partials combine through a fixed-order reduction: ascending morsel
//     index on the calling thread, after all morsels complete. The combine
//     schedule depends only on the morsel count.
// Consequently every operator built on the scheduler is bit-identical to
// its sequential form (threads = 1 executes the same morsels in the same
// order inline) and invariant across thread counts. See src/exec/README.md.

#ifndef ARRAYDB_EXEC_MORSEL_H_
#define ARRAYDB_EXEC_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/thread_pool.h"

namespace arraydb::exec {

/// Default target cells per morsel (see MorselOptions::grain_cells).
inline constexpr int64_t kDefaultMorselGrainCells = 16384;

/// Cooperative preemption gate at the morsel pickup counter. While the
/// gate is held (Pause without matching Resume), morsel workers running
/// under an options set that carries the gate block in Wait() before
/// picking their next morsel; Resume releases them. The serving layer
/// holds the gate for batch-tier work whenever interactive queries are
/// pending, so long scans yield between morsels — never mid-morsel, and
/// never in a way that changes results (the gate delays pickup, it does
/// not reorder the decomposition or the combine).
///
/// Pause/Resume nest (a depth counter); Wait() is wait-free while the
/// gate is open (one relaxed atomic load). Safe for any number of
/// concurrent waiters and holders.
class YieldPoint {
 public:
  /// Blocks while the gate is held; returns immediately when open.
  void Wait() const;
  /// Holds the gate (nestable).
  void Pause() const;
  /// Releases one Pause; wakes all waiters when the depth reaches zero.
  void Resume() const;
  /// Whether the gate is currently held (advisory snapshot).
  bool paused() const {
    return depth_.load(std::memory_order_acquire) > 0;
  }

 private:
  mutable std::atomic<int> depth_{0};
  mutable std::mutex mu_;
  mutable std::condition_variable open_;
};

struct MorselOptions {
  /// Worker threads for data-plane operators. Positive = exact count,
  /// 0 = auto (hardware concurrency); interpreted by the single
  /// util::ResolveThreadCount convention. 1 is exactly the sequential path.
  int threads = 1;
  /// Target cells per morsel. ~16k cells keeps a morsel's touched columns
  /// (coords + one attribute + mask, ~33 B/cell at rank 3) inside a core's
  /// L2 slice while still amortizing dispatch overhead. Results never
  /// depend on the thread count, but they may depend on the grain (it fixes
  /// the reduction boundaries), so the grain is a stored option, not a
  /// per-call knob.
  int64_t grain_cells = kDefaultMorselGrainCells;
  /// Optional yield gate consulted at every morsel pickup (including the
  /// sequential inline path between morsels). Timing-only; not owned, and
  /// must outlive the operator call. Normally set through
  /// ExecContext::yield rather than directly.
  const YieldPoint* yield = nullptr;
};

/// Snapshot of the process-default context's morsel options — what the
/// no-options operator overloads run with. Equivalent to
/// DefaultExecContext().morsel_options(); see exec/exec_context.h.
MorselOptions DataPlaneMorselOptions();

/// Sets the default context's data-plane thread count (0 = auto). Thin
/// shim over SetDefaultExecContext, kept for single-threaded setup (as
/// WorkloadRunner's config install); concurrent sessions that need their
/// own settings pass an explicit ExecContext instead.
void SetDataPlaneThreads(int threads);

/// RAII override of the default context's data-plane thread count,
/// restoring the previous value on destruction (tests and benches).
class ScopedDataPlaneThreads {
 public:
  explicit ScopedDataPlaneThreads(int threads);
  ~ScopedDataPlaneThreads();
  ScopedDataPlaneThreads(const ScopedDataPlaneThreads&) = delete;
  ScopedDataPlaneThreads& operator=(const ScopedDataPlaneThreads&) = delete;

 private:
  int saved_;
};

/// Half-open [begin, end) range of work units (cells, chunks, positions).
using MorselRange = std::pair<int64_t, int64_t>;

class MorselScheduler {
 public:
  explicit MorselScheduler(MorselOptions options = DataPlaneMorselOptions());

  /// Resolved worker count (>= 1).
  int threads() const { return threads_; }
  const MorselOptions& options() const { return options_; }

  /// Carves [0, n) into contiguous morsels of ~`grain` units (the last
  /// morsel absorbs the remainder; n <= grain yields one morsel). Pure in
  /// (n, grain): identical at every thread count.
  static std::vector<MorselRange> Carve(int64_t n, int64_t grain);

  /// Carves item indices [0, weights.size()) into contiguous runs whose
  /// weight sums reach ~`grain` (for chunk lists: weights = cells per
  /// chunk, so a morsel is a cache-sized run of whole chunks). Pure in
  /// (weights, grain).
  static std::vector<MorselRange> CarveByWeight(
      const std::vector<int64_t>& weights, int64_t grain);

  /// Runs fn(morsel_index, begin, end) for every morsel; workers pick
  /// morsels in ascending index order; blocks until all complete. fn must
  /// only write state owned by its morsel index.
  void Run(const std::vector<MorselRange>& morsels,
           const std::function<void(size_t, int64_t, int64_t)>& fn) const;

  /// Parallel reduction with the fixed-order combine: every morsel m
  /// produces a State via morsel_fn(m, begin, end); partials combine as
  /// combine(acc, std::move(partial)) in ascending morsel order on the
  /// calling thread. Bit-identical at every thread count, including 1.
  template <typename State, typename MorselFn, typename CombineFn>
  State Reduce(const std::vector<MorselRange>& morsels, State init,
               MorselFn&& morsel_fn, CombineFn&& combine) const {
    State acc = std::move(init);
    if (morsels.size() <= 1 || threads_ <= 1) {
      // Inline path: same morsels, same combine order — the parallel
      // result is defined as exactly this computation. The morsel counters
      // mirror Run()'s exactly, so exec.morsel.* totals are invariant
      // across thread counts (the telemetry face of the determinism
      // contract).
      if (!morsels.empty()) {
        TELEM_COUNTER_ADD("exec.morsel.runs", 1);
        TELEM_COUNTER_ADD("exec.morsel.morsels_dispatched",
                          static_cast<int64_t>(morsels.size()));
      }
      for (size_t m = 0; m < morsels.size(); ++m) {
        if (options_.yield) options_.yield->Wait();
        combine(acc, morsel_fn(m, morsels[m].first, morsels[m].second));
      }
      return acc;
    }
    std::vector<State> partials(morsels.size());
    Run(morsels, [&partials, &morsel_fn](size_t m, int64_t begin,
                                         int64_t end) {
      partials[m] = morsel_fn(m, begin, end);
    });
    for (auto& partial : partials) combine(acc, std::move(partial));
    return acc;
  }

 private:
  MorselOptions options_;
  int threads_;
};

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_MORSEL_H_
