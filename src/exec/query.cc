#include "exec/query.h"

#include "util/logging.h"

namespace arraydb::exec {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kFilter:
      return "filter";
    case QueryKind::kSortQuantile:
      return "sort-quantile";
    case QueryKind::kDimJoin:
      return "dim-join";
    case QueryKind::kAttrJoin:
      return "attr-join";
    case QueryKind::kGroupBy:
      return "group-by";
    case QueryKind::kWindow:
      return "window";
    case QueryKind::kKMeans:
      return "k-means";
    case QueryKind::kKnn:
      return "knn";
  }
  return "?";
}

bool ChunkRegion::Contains(const array::Coordinates& chunk_coords) const {
  ARRAYDB_CHECK_EQ(chunk_coords.size(), lo.size());
  for (size_t d = 0; d < lo.size(); ++d) {
    if (chunk_coords[d] < lo[d] || chunk_coords[d] > hi[d]) return false;
  }
  return true;
}

ChunkRegion ChunkRegion::All(int num_dims) {
  ChunkRegion region;
  region.lo.assign(static_cast<size_t>(num_dims), INT64_MIN / 2);
  region.hi.assign(static_cast<size_t>(num_dims), INT64_MAX / 2);
  return region;
}

}  // namespace arraydb::exec
