// Query descriptions for the benchmark workloads (§3.3).
//
// A QuerySpec names an operator class (the access pattern that matters for
// distributed timing), the chunk-grid region it touches, and its cost
// parameters. The same spec drives both execution granularities:
//   * exec::QueryEngine::Simulate prices the query at paper scale against a
//     cluster placement;
//   * the functions in exec/operators.h actually execute the corresponding
//     algorithm over materialized small arrays (tests and examples).

#ifndef ARRAYDB_EXEC_QUERY_H_
#define ARRAYDB_EXEC_QUERY_H_

#include <cstdint>
#include <string>

#include "array/coordinates.h"

namespace arraydb::exec {

/// Operator classes with distinct distributed access patterns.
enum class QueryKind {
  kFilter,        // Parallel scan + predicate (Selection).
  kSortQuantile,  // Scan + sample + coordinator merge (Sort).
  kDimJoin,       // Position join of collocated arrays (Join).
  kAttrJoin,      // Join against a small replicated array (AIS vessel join).
  kGroupBy,       // Group-by aggregate over dimension space (Statistics).
  kWindow,        // Windowed aggregate with halo exchange (Complex Proj.).
  kKMeans,        // Iterative clustering (Modeling, MODIS).
  kKnn,           // k-nearest-neighbors on sampled cells (Modeling, AIS).
};

const char* QueryKindName(QueryKind kind);

/// Axis-aligned region of the chunk grid, inclusive on both ends.
struct ChunkRegion {
  array::Coordinates lo;
  array::Coordinates hi;

  bool Contains(const array::Coordinates& chunk_coords) const;
  /// A region covering everything (rank-sized sentinel).
  static ChunkRegion All(int num_dims);
};

struct QuerySpec {
  std::string name;
  QueryKind kind = QueryKind::kFilter;
  ChunkRegion region;

  /// CPU minutes per GB scanned (operator complexity).
  double cpu_min_per_gb = 0.05;
  /// Fraction of scanned bytes surviving into result/merge stages.
  double selectivity = 0.05;
  /// Iterations for iterative operators (k-means).
  int iterations = 1;
  /// Sampled cells for kNN.
  int knn_samples = 64;
  /// Fraction of a neighboring chunk transferred during halo exchange.
  double halo_fraction = 0.15;
  /// Replicated small-side size for kAttrJoin (the AIS vessel array).
  double small_side_gb = 0.0;
  /// Deterministic seed for sampling operators.
  uint64_t seed = 1;
};

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_QUERY_H_
