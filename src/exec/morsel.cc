#include "exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "telemetry/trace.h"
#include "util/logging.h"

namespace arraydb::exec {

// The knob shims (DataPlaneMorselOptions, SetDataPlaneThreads,
// ScopedDataPlaneThreads) live in exec_context.cc with the default
// ExecContext they wrap.

void YieldPoint::Wait() const {
  if (depth_.load(std::memory_order_acquire) == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  open_.wait(lock, [this] {
    return depth_.load(std::memory_order_relaxed) == 0;
  });
}

void YieldPoint::Pause() const {
  std::lock_guard<std::mutex> lock(mu_);
  depth_.fetch_add(1, std::memory_order_release);
}

void YieldPoint::Resume() const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int prev = depth_.fetch_sub(1, std::memory_order_release);
    ARRAYDB_CHECK_GT(prev, 0);
    if (prev != 1) return;
  }
  open_.notify_all();
}

MorselScheduler::MorselScheduler(MorselOptions options)
    : options_(options),
      threads_(util::ResolveThreadCount(options.threads)) {
  ARRAYDB_CHECK_GT(options_.grain_cells, 0);
}

std::vector<MorselRange> MorselScheduler::Carve(int64_t n, int64_t grain) {
  ARRAYDB_CHECK_GT(grain, 0);
  std::vector<MorselRange> morsels;
  if (n <= 0) return morsels;
  morsels.reserve(static_cast<size_t>((n + grain - 1) / grain));
  for (int64_t begin = 0; begin < n; begin += grain) {
    morsels.emplace_back(begin, std::min(begin + grain, n));
  }
  return morsels;
}

std::vector<MorselRange> MorselScheduler::CarveByWeight(
    const std::vector<int64_t>& weights, int64_t grain) {
  ARRAYDB_CHECK_GT(grain, 0);
  std::vector<MorselRange> morsels;
  const auto n = static_cast<int64_t>(weights.size());
  int64_t begin = 0;
  int64_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += weights[static_cast<size_t>(i)];
    if (acc >= grain) {
      morsels.emplace_back(begin, i + 1);
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < n) morsels.emplace_back(begin, n);
  return morsels;
}

void MorselScheduler::Run(
    const std::vector<MorselRange>& morsels,
    const std::function<void(size_t, int64_t, int64_t)>& fn) const {
  const size_t count = morsels.size();
  if (count == 0) return;
  TELEM_SPAN("exec.morsel.run");
  // Counted identically on Reduce's inline path, so the totals are
  // thread-count invariant (the per-worker busy histogram below is the
  // one schedule-dependent observation, and is documented as such).
  TELEM_COUNTER_ADD("exec.morsel.runs", 1);
  TELEM_COUNTER_ADD("exec.morsel.morsels_dispatched",
                    static_cast<int64_t>(count));

  // Shared ascending pickup: whichever worker is free takes the next morsel
  // index, so pickup order is chunk-major and load balancing is dynamic.
  std::atomic<size_t> next{0};
  const YieldPoint* yield = options_.yield;
  const auto pump = [&next, &morsels, &fn, count, yield] {
    TELEM_SPAN("exec.morsel.worker");
    const int64_t busy_start_ns = telemetry::MetricsNowNs();
    for (size_t m = next.fetch_add(1, std::memory_order_relaxed); m < count;
         m = next.fetch_add(1, std::memory_order_relaxed)) {
      // The pickup counter is the preemption boundary: a held yield gate
      // stalls the worker here, between morsels, never mid-morsel.
      if (yield) yield->Wait();
      fn(m, morsels[m].first, morsels[m].second);
    }
    if (busy_start_ns > 0) {
      TELEM_HISTOGRAM_RECORD(
          "exec.morsel.worker_busy_us",
          (telemetry::MetricsNowNs() - busy_start_ns) / 1000);
    }
  };

  const int helpers =
      static_cast<int>(
          std::min<size_t>(static_cast<size_t>(threads_), count)) -
      1;
  if (helpers <= 0) {
    pump();
    return;
  }

  struct Completion {
    std::mutex mu;
    std::condition_variable done;
    int remaining = 0;
  } completion;
  completion.remaining = helpers;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(helpers));
  for (int h = 0; h < helpers; ++h) {
    tasks.emplace_back([&pump, &completion] {
      pump();
      std::lock_guard<std::mutex> lock(completion.mu);
      if (--completion.remaining == 0) completion.done.notify_one();
    });
  }
  util::ThreadPool::Shared().SubmitBatch(std::move(tasks));
  // The calling thread is a full worker: with a 1-thread pool (or a busy
  // pool) it drains every morsel itself, so completion never deadlocks on
  // pool capacity.
  pump();
  std::unique_lock<std::mutex> lock(completion.mu);
  completion.done.wait(lock,
                       [&completion] { return completion.remaining == 0; });
}

}  // namespace arraydb::exec
