#include "exec/morsel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "telemetry/trace.h"
#include "util/logging.h"

namespace arraydb::exec {

namespace {

// Configuration-time knob; operators read it per call. Not atomic by
// design: concurrent configuration while operators run is a caller bug.
int g_data_plane_threads = 1;

}  // namespace

MorselOptions DataPlaneMorselOptions() {
  MorselOptions options;
  options.threads = g_data_plane_threads;
  return options;
}

void SetDataPlaneThreads(int threads) { g_data_plane_threads = threads; }

ScopedDataPlaneThreads::ScopedDataPlaneThreads(int threads)
    : saved_(g_data_plane_threads) {
  g_data_plane_threads = threads;
}

ScopedDataPlaneThreads::~ScopedDataPlaneThreads() {
  g_data_plane_threads = saved_;
}

MorselScheduler::MorselScheduler(MorselOptions options)
    : options_(options),
      threads_(util::ResolveThreadCount(options.threads)) {
  ARRAYDB_CHECK_GT(options_.grain_cells, 0);
}

std::vector<MorselRange> MorselScheduler::Carve(int64_t n, int64_t grain) {
  ARRAYDB_CHECK_GT(grain, 0);
  std::vector<MorselRange> morsels;
  if (n <= 0) return morsels;
  morsels.reserve(static_cast<size_t>((n + grain - 1) / grain));
  for (int64_t begin = 0; begin < n; begin += grain) {
    morsels.emplace_back(begin, std::min(begin + grain, n));
  }
  return morsels;
}

std::vector<MorselRange> MorselScheduler::CarveByWeight(
    const std::vector<int64_t>& weights, int64_t grain) {
  ARRAYDB_CHECK_GT(grain, 0);
  std::vector<MorselRange> morsels;
  const auto n = static_cast<int64_t>(weights.size());
  int64_t begin = 0;
  int64_t acc = 0;
  for (int64_t i = 0; i < n; ++i) {
    acc += weights[static_cast<size_t>(i)];
    if (acc >= grain) {
      morsels.emplace_back(begin, i + 1);
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < n) morsels.emplace_back(begin, n);
  return morsels;
}

void MorselScheduler::Run(
    const std::vector<MorselRange>& morsels,
    const std::function<void(size_t, int64_t, int64_t)>& fn) const {
  const size_t count = morsels.size();
  if (count == 0) return;
  TELEM_SPAN("exec.morsel.run");
  // Counted identically on Reduce's inline path, so the totals are
  // thread-count invariant (the per-worker busy histogram below is the
  // one schedule-dependent observation, and is documented as such).
  TELEM_COUNTER_ADD("exec.morsel.runs", 1);
  TELEM_COUNTER_ADD("exec.morsel.morsels_dispatched",
                    static_cast<int64_t>(count));

  // Shared ascending pickup: whichever worker is free takes the next morsel
  // index, so pickup order is chunk-major and load balancing is dynamic.
  std::atomic<size_t> next{0};
  const auto pump = [&next, &morsels, &fn, count] {
    TELEM_SPAN("exec.morsel.worker");
    const int64_t busy_start_ns = telemetry::MetricsNowNs();
    for (size_t m = next.fetch_add(1, std::memory_order_relaxed); m < count;
         m = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(m, morsels[m].first, morsels[m].second);
    }
    if (busy_start_ns > 0) {
      TELEM_HISTOGRAM_RECORD(
          "exec.morsel.worker_busy_us",
          (telemetry::MetricsNowNs() - busy_start_ns) / 1000);
    }
  };

  const int helpers =
      static_cast<int>(
          std::min<size_t>(static_cast<size_t>(threads_), count)) -
      1;
  if (helpers <= 0) {
    pump();
    return;
  }

  struct Completion {
    std::mutex mu;
    std::condition_variable done;
    int remaining = 0;
  } completion;
  completion.remaining = helpers;

  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(helpers));
  for (int h = 0; h < helpers; ++h) {
    tasks.emplace_back([&pump, &completion] {
      pump();
      std::lock_guard<std::mutex> lock(completion.mu);
      if (--completion.remaining == 0) completion.done.notify_one();
    });
  }
  util::ThreadPool::Shared().SubmitBatch(std::move(tasks));
  // The calling thread is a full worker: with a 1-thread pool (or a busy
  // pool) it drains every morsel itself, so completion never deadlocks on
  // pool capacity.
  pump();
  std::unique_lock<std::mutex> lock(completion.mu);
  completion.done.wait(lock,
                       [&completion] { return completion.remaining == 0; });
}

}  // namespace arraydb::exec
