// Reference implementations of the benchmark operators over materialized
// arrays (§3.3). These execute the actual algorithms — filtering, quantile,
// joins, group-by aggregation, windowed aggregates, k-means, kNN, regrid —
// on in-memory cell data. Tests and examples verify real answers here;
// exec::QueryEngine prices the same access patterns at paper scale.

#ifndef ARRAYDB_EXEC_OPERATORS_H_
#define ARRAYDB_EXEC_OPERATORS_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "array/array.h"
#include "exec/exec_context.h"
#include "exec/join.h"
#include "exec/morsel.h"
#include "util/status.h"

namespace arraydb::exec {

/// Axis-aligned box in logical cell space, inclusive on both ends.
struct CellBox {
  array::Coordinates lo;
  array::Coordinates hi;

  bool Contains(const array::Coordinates& pos) const;

  /// True if the box intersects [chunk_lo, chunk_hi] (both inclusive).
  bool Intersects(const array::Coordinates& box_lo,
                  const array::Coordinates& box_hi) const;
};

/// Span-based selection result: for each surviving chunk, the maximal runs
/// of consecutive matching cell indices. Large selections stay
/// allocation-free at the API boundary — no Cell values are materialized;
/// consumers iterate the spans against the chunks' columnar storage.
/// Holds pointers into `array`: valid only while the array outlives the
/// view unmodified.
class FilterBoxView {
 public:
  struct ChunkSpans {
    const array::Chunk* chunk = nullptr;
    /// Half-open [begin, end) runs of matching cell indices, ascending.
    std::vector<std::pair<uint32_t, uint32_t>> spans;
  };

  /// Surviving chunks in lexicographic coordinate order.
  const std::vector<ChunkSpans>& chunks() const { return chunks_; }
  int64_t num_cells() const { return num_cells_; }
  bool empty() const { return num_cells_ == 0; }

  /// Invokes fn(chunk, cell_index) for every selected cell — chunks in
  /// lexicographic order, cells in insertion order within a chunk.
  template <typename Fn>
  void ForEachCell(Fn&& fn) const {
    for (const auto& cs : chunks_) {
      for (const auto& [begin, end] : cs.spans) {
        for (uint32_t i = begin; i < end; ++i) {
          fn(*cs.chunk, static_cast<size_t>(i));
        }
      }
    }
  }

  /// Cell adapter for callers that need materialized values; sorted by
  /// position, identical to the legacy FilterBox result.
  std::vector<array::Cell> Materialize() const;

 private:
  friend FilterBoxView FilterBoxSpans(const array::Array& array,
                                      const CellBox& box,
                                      const MorselOptions& morsel);
  std::vector<ChunkSpans> chunks_;
  int64_t num_cells_ = 0;
};

// The scan/aggregate operators below execute morsel-parallel on
// exec::MorselScheduler (threads from `morsel`; the default reads the
// process data-plane knob, which starts at 1 = sequential). Results are
// bit-identical at every thread count: morsel boundaries depend only on
// the data and the grain, and partial states combine in fixed morsel
// order (see src/exec/README.md).

/// Selection without materialization: spans of matching cells per chunk.
/// Whole chunks are batch-pruned via their bounding boxes (the morsel
/// pre-filter); surviving chunks are carved into cache-sized morsels and
/// scanned linearly in columnar order with the SIMD predicate kernel.
FilterBoxView FilterBoxSpans(
    const array::Array& array, const CellBox& box,
    const MorselOptions& morsel = DataPlaneMorselOptions());

/// Selection: all cells inside `box`, sorted by position. Thin adapter over
/// FilterBoxSpans for callers that want value results.
std::vector<array::Cell> FilterBox(const array::Array& array,
                                   const CellBox& box);

/// Selection cardinality (COUNT(*) over the box): same pruning and
/// predicate kernel as FilterBoxSpans, with the mask reduced straight to a
/// per-morsel count (no span construction).
int64_t FilterBoxCount(const array::Array& array, const CellBox& box,
                       const MorselOptions& morsel = DataPlaneMorselOptions());

/// Sort benchmark: the q-quantile (0 <= q <= 1) of attribute `attr` over
/// all non-empty cells. Extreme quantiles are min/max kernel reductions;
/// interior quantiles gather morsel-parallel and select the two order
/// statistics with nth_element instead of a full sort.
util::StatusOr<double> AttrQuantile(
    const array::Array& array, int attr, double q,
    const MorselOptions& morsel = DataPlaneMorselOptions());

// The join benchmarks (DimJoinCount / AttrJoinCount) moved to exec/join.h
// — morsel-parallel radix-partitioned hash joins on Hilbert-rank keys,
// included above so existing callers keep compiling.

/// Statistics benchmark: sums attribute `attr` grouped by coarse bins of
/// size `bin[d]` cells along each dimension. Returns bin-origin -> sum.
/// Per-bin accumulation order is fixed by the morsel decomposition (chunks
/// in lexicographic order, morsel partials combined in order), so sums are
/// deterministic and thread-count invariant.
std::map<array::Coordinates, double> GroupBySum(
    const array::Array& array, const std::vector<int64_t>& bin, int attr,
    const MorselOptions& morsel = DataPlaneMorselOptions());

/// Complex projection benchmark: windowed average of `attr` in a Chebyshev
/// radius around `pos` (partially overlapping windows yield smooth images).
util::StatusOr<double> WindowAverageAt(const array::Array& array, int attr,
                                       const array::Coordinates& pos,
                                       int64_t radius);

/// Windowed average at every occupied cell; sorted by position. Positions
/// are enumerated deterministically and each output slot is computed by
/// exactly one morsel, so the field is thread-count invariant.
std::vector<std::pair<array::Coordinates, double>> WindowAverageAll(
    const array::Array& array, int attr, int64_t radius,
    const MorselOptions& morsel = DataPlaneMorselOptions());

/// Modeling benchmark (MODIS): Lloyd's k-means over arbitrary points.
struct KMeansResult {
  std::vector<std::vector<double>> centroids;
  std::vector<int> assignment;  // Cluster index per input point.
  int iterations = 0;
  double inertia = 0.0;  // Sum of squared distances to assigned centroid.
};
KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iterations, uint64_t seed);

/// Modeling benchmark (AIS): average Euclidean distance (in cell space) to
/// the k nearest other cells, over `samples` cells drawn uniformly. The
/// sample draw stays sequential (one RNG stream); each sample's distance
/// scan fills a preallocated slot per cell morsel-parallel, so the
/// selection input — and the result — is identical at every thread count.
util::StatusOr<double> KnnAverageDistance(
    const array::Array& array, int k, int samples, uint64_t seed,
    const MorselOptions& morsel = DataPlaneMorselOptions());

/// Regridding: coarsens the array by integer `factors` per dimension,
/// producing an array with attributes (sum of `attr`, cell count).
util::StatusOr<array::Array> Regrid(const array::Array& array,
                                    const std::vector<int64_t>& factors,
                                    int attr);

// -- ExecContext entry points -------------------------------------------------
//
// Session-style overloads: one explicit context carries every execution
// setting (threads, grain, partition bits, yield gate), so concurrent
// sessions run the same operators with different settings without touching
// the process default. Results are independent of the context by the
// determinism contract (modulo the documented grain-boundary float
// caveat). See "Session contract" in src/exec/README.md.

inline FilterBoxView FilterBoxSpans(const array::Array& array,
                                    const CellBox& box,
                                    const ExecContext& context) {
  return FilterBoxSpans(array, box, context.morsel_options());
}

inline int64_t FilterBoxCount(const array::Array& array, const CellBox& box,
                              const ExecContext& context) {
  return FilterBoxCount(array, box, context.morsel_options());
}

inline util::StatusOr<double> AttrQuantile(const array::Array& array,
                                           int attr, double q,
                                           const ExecContext& context) {
  return AttrQuantile(array, attr, q, context.morsel_options());
}

inline std::map<array::Coordinates, double> GroupBySum(
    const array::Array& array, const std::vector<int64_t>& bin, int attr,
    const ExecContext& context) {
  return GroupBySum(array, bin, attr, context.morsel_options());
}

inline std::vector<std::pair<array::Coordinates, double>> WindowAverageAll(
    const array::Array& array, int attr, int64_t radius,
    const ExecContext& context) {
  return WindowAverageAll(array, attr, radius, context.morsel_options());
}

inline util::StatusOr<double> KnnAverageDistance(const array::Array& array,
                                                 int k, int samples,
                                                 uint64_t seed,
                                                 const ExecContext& context) {
  return KnnAverageDistance(array, k, samples, seed,
                            context.morsel_options());
}

inline int64_t DimJoinCount(const array::Array& a, const array::Array& b,
                            const ExecContext& context) {
  return DimJoinCount(a, b, context.join_options());
}

inline int64_t AttrJoinCount(const array::Array& array, int attr,
                             const std::unordered_set<int64_t>& keys,
                             const ExecContext& context) {
  return AttrJoinCount(array, attr, keys, context.join_options());
}

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_OPERATORS_H_
