#include "exec/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>

#include "array/cell_span.h"
#include "exec/morsel.h"
#include "simd/scan_kernels.h"
#include "util/logging.h"
#include "util/rng.h"

namespace arraydb::exec {

bool CellBox::Contains(const array::Coordinates& pos) const {
  ARRAYDB_CHECK_EQ(pos.size(), lo.size());
  for (size_t d = 0; d < lo.size(); ++d) {
    if (pos[d] < lo[d] || pos[d] > hi[d]) return false;
  }
  return true;
}

bool CellBox::Intersects(const array::Coordinates& box_lo,
                         const array::Coordinates& box_hi) const {
  ARRAYDB_CHECK_EQ(box_lo.size(), lo.size());
  for (size_t d = 0; d < lo.size(); ++d) {
    if (box_hi[d] < lo[d] || box_lo[d] > hi[d]) return false;
  }
  return true;
}

namespace {

// The morsel pre-filter shared by the box operators: sorted non-empty
// chunks whose maintained bounding boxes (at least as tight as the schema
// extents) intersect the query box, batch-checked in one SIMD kernel call
// over a dim-major SoA.
std::vector<const array::Chunk*> BBoxSurvivors(const array::Array& array,
                                               const CellBox& box) {
  const size_t ndims = box.lo.size();
  ARRAYDB_CHECK_EQ(box.hi.size(), ndims);
  std::vector<const array::Chunk*> chunks;
  for (const array::Chunk* chunk : array.SortedChunks()) {
    if (chunk->num_cells() == 0) continue;
    ARRAYDB_CHECK_EQ(chunk->bbox_lo().size(), ndims);
    chunks.push_back(chunk);
  }
  if (chunks.empty()) return chunks;
  simd::BBoxSoA boxes;
  boxes.Resize(chunks.size(), ndims);
  for (size_t c = 0; c < chunks.size(); ++c) {
    for (size_t d = 0; d < ndims; ++d) {
      boxes.lo[d * chunks.size() + c] = chunks[c]->bbox_lo()[d];
      boxes.hi[d * chunks.size() + c] = chunks[c]->bbox_hi()[d];
    }
  }
  std::vector<uint8_t> survived(chunks.size());
  simd::BBoxIntersectMask(boxes, box.lo.data(), box.hi.data(),
                          survived.data());
  std::vector<const array::Chunk*> out;
  out.reserve(chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    if (survived[c] != 0) out.push_back(chunks[c]);
  }
  return out;
}

// Cache-sized runs of whole chunks: the per-chunk cell counts weight the
// carve so every morsel scans ~grain cells of contiguous columnar storage.
std::vector<MorselRange> CarveChunks(
    const std::vector<const array::Chunk*>& chunks, int64_t grain) {
  std::vector<int64_t> weights;
  weights.reserve(chunks.size());
  for (const array::Chunk* chunk : chunks) {
    weights.push_back(static_cast<int64_t>(chunk->num_cells()));
  }
  return MorselScheduler::CarveByWeight(weights, grain);
}

}  // namespace

FilterBoxView FilterBoxSpans(const array::Array& array, const CellBox& box,
                             const MorselOptions& morsel) {
  FilterBoxView view;
  const size_t ndims = box.lo.size();
  const std::vector<const array::Chunk*> chunks = BBoxSurvivors(array, box);
  if (chunks.empty()) return view;

  // One morsel is a run of surviving chunks; its partial is the span list
  // of those chunks, concatenated back in morsel order — the same spans,
  // in the same order, as the sequential chunk loop.
  struct Partial {
    std::vector<FilterBoxView::ChunkSpans> chunks;
    int64_t cells = 0;
  };
  const MorselScheduler scheduler(morsel);
  Partial merged = scheduler.Reduce(
      CarveChunks(chunks, morsel.grain_cells), Partial{},
      [&](size_t, int64_t begin, int64_t end) {
        Partial partial;
        std::vector<uint8_t> mask;
        for (int64_t c = begin; c < end; ++c) {
          const array::Chunk& chunk = *chunks[static_cast<size_t>(c)];
          const size_t count = chunk.num_cells();
          mask.resize(count);
          simd::RangeMask(chunk.packed_coords().data(), count, ndims,
                          box.lo.data(), box.hi.data(), mask.data());
          FilterBoxView::ChunkSpans cs;
          cs.chunk = &chunk;
          simd::MaskToSpans(mask.data(), count, &cs.spans);
          if (cs.spans.empty()) continue;
          for (const auto& [sb, se] : cs.spans) partial.cells += se - sb;
          partial.chunks.push_back(std::move(cs));
        }
        return partial;
      },
      [](Partial& acc, Partial&& partial) {
        acc.cells += partial.cells;
        std::move(partial.chunks.begin(), partial.chunks.end(),
                  std::back_inserter(acc.chunks));
      });
  view.chunks_ = std::move(merged.chunks);
  view.num_cells_ = merged.cells;
  return view;
}

int64_t FilterBoxCount(const array::Array& array, const CellBox& box,
                       const MorselOptions& morsel) {
  // Cardinality-only selection: same pruning and predicate kernel as
  // FilterBoxSpans, but each morsel reduces its mask straight to a count —
  // no span construction — and counts sum exactly in any order.
  const size_t ndims = box.lo.size();
  const std::vector<const array::Chunk*> chunks = BBoxSurvivors(array, box);
  if (chunks.empty()) return 0;
  const MorselScheduler scheduler(morsel);
  return scheduler.Reduce(
      CarveChunks(chunks, morsel.grain_cells), int64_t{0},
      [&](size_t, int64_t begin, int64_t end) {
        int64_t count = 0;
        std::vector<uint8_t> mask;
        for (int64_t c = begin; c < end; ++c) {
          const array::Chunk& chunk = *chunks[static_cast<size_t>(c)];
          const size_t cells = chunk.num_cells();
          mask.resize(cells);
          simd::RangeMask(chunk.packed_coords().data(), cells, ndims,
                          box.lo.data(), box.hi.data(), mask.data());
          count += simd::MaskCount(mask.data(), cells);
        }
        return count;
      },
      [](int64_t& acc, int64_t partial) { acc += partial; });
}

std::vector<array::Cell> FilterBoxView::Materialize() const {
  std::vector<array::Cell> out;
  out.reserve(static_cast<size_t>(num_cells_));
  // Sorted chunk order (by construction) + stable sort keeps duplicate
  // positions in a deterministic relative order.
  ForEachCell([&out](const array::Chunk& chunk, size_t i) {
    out.push_back(chunk.MaterializeCell(i));
  });
  std::stable_sort(out.begin(), out.end(),
                   [](const array::Cell& a, const array::Cell& b) {
                     return array::CoordinatesLess(a.pos, b.pos);
                   });
  return out;
}

std::vector<array::Cell> FilterBox(const array::Array& array,
                                   const CellBox& box) {
  return FilterBoxSpans(array, box).Materialize();
}

util::StatusOr<double> AttrQuantile(const array::Array& array, int attr,
                                    double q, const MorselOptions& morsel) {
  if (attr < 0 || attr >= array.schema().num_attrs()) {
    return util::InvalidArgument("attribute index out of range");
  }
  if (q < 0.0 || q > 1.0) {
    return util::InvalidArgument("quantile must be in [0,1]");
  }
  const array::CellSpanView view(array);
  if (view.empty()) return util::FailedPrecondition("array is empty");
  const MorselScheduler scheduler(morsel);
  // The extreme quantiles are plain min/max reductions: one kernel pass per
  // chunk column, no gather, no selection. Morsel partials combine in fixed
  // order (min/max is value-exact for finite inputs; the fixed order pins
  // the one ±0.0 tie caveat the kernels document).
  if (q == 0.0 || q == 1.0) {
    struct Extreme {
      double value = 0.0;
      bool any = false;
    };
    const Extreme merged = scheduler.Reduce(
        CarveChunks(view.chunks(), morsel.grain_cells), Extreme{},
        [&](size_t, int64_t begin, int64_t end) {
          Extreme partial;
          for (int64_t c = begin; c < end; ++c) {
            const auto& column =
                view.chunks()[static_cast<size_t>(c)]->attr_column(
                    static_cast<size_t>(attr));
            const double extreme =
                q == 0.0 ? simd::Min(column.data(), column.size())
                         : simd::Max(column.data(), column.size());
            partial.value = partial.any
                                ? (q == 0.0 ? std::min(partial.value, extreme)
                                            : std::max(partial.value, extreme))
                                : extreme;
            partial.any = true;
          }
          return partial;
        },
        [&](Extreme& acc, Extreme&& partial) {
          if (!partial.any) return;
          acc.value = acc.any ? (q == 0.0 ? std::min(acc.value, partial.value)
                                          : std::max(acc.value, partial.value))
                              : partial.value;
          acc.any = true;
        });
    return merged.value;
  }
  // Interior quantiles: gather the attribute column morsel-parallel (each
  // morsel copies its own slice of the global cell order, so the gathered
  // buffer is identical to the sequential GatherAttr), then select the two
  // bracketing order statistics with nth_element instead of a full sort.
  // An order statistic is a value property of the multiset, so the result
  // is bit-identical to the retired sort path. Uninitialized storage: every
  // slot is written exactly once by its morsel, so the old reserve+insert
  // path's single pass over the data is preserved.
  const size_t n = static_cast<size_t>(view.num_cells());
  const auto values = std::make_unique_for_overwrite<double[]>(n);
  scheduler.Run(
      MorselScheduler::Carve(view.num_cells(), morsel.grain_cells),
      [&](size_t, int64_t begin, int64_t end) {
        view.ForEachSlice(
            begin, end,
            [&values, &begin, attr](const array::Chunk& chunk,
                                    size_t local_begin, size_t local_end) {
              const auto& column =
                  chunk.attr_column(static_cast<size_t>(attr));
              std::copy(column.begin() + static_cast<int64_t>(local_begin),
                        column.begin() + static_cast<int64_t>(local_end),
                        values.get() + begin);
              begin += static_cast<int64_t>(local_end - local_begin);
            });
      });
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  double* const lo_ptr = values.get() + lo;
  std::nth_element(values.get(), lo_ptr, values.get() + n);
  const double lo_value = *lo_ptr;
  // After partitioning at lo, the suffix holds exactly the elements that
  // would sort above position lo, so the next order statistic is its min.
  const double hi_value =
      hi > lo ? *std::min_element(lo_ptr + 1, values.get() + n) : lo_value;
  return lo_value * (1.0 - frac) + hi_value * frac;
}

namespace {

// Copies the i-th packed position of `chunk` into `scratch`.
inline void LoadPos(const array::Chunk& chunk, size_t i,
                    array::Coordinates& scratch) {
  const int64_t* pos = chunk.cell_pos(i);
  scratch.assign(pos, pos + chunk.num_dims());
}

}  // namespace

namespace {

// Bin origin (floor division handles negative coordinates).
inline int64_t BinOrigin(int64_t v, int64_t bin) {
  int64_t q = v / bin;
  if (v % bin != 0 && v < 0) --q;
  return q * bin;
}

}  // namespace

std::map<array::Coordinates, double> GroupBySum(
    const array::Array& array, const std::vector<int64_t>& bin, int attr,
    const MorselOptions& morsel) {
  ARRAYDB_CHECK_EQ(bin.size(),
                   static_cast<size_t>(array.schema().num_dims()));
  ARRAYDB_CHECK_GE(attr, 0);
  ARRAYDB_CHECK_LT(attr, array.schema().num_attrs());
  for (const int64_t b : bin) ARRAYDB_CHECK_GT(b, 0);
  const size_t ndims = bin.size();
  std::vector<const array::Chunk*> chunks;
  for (const array::Chunk* chunk : array.SortedChunks()) {
    if (chunk->num_cells() != 0) chunks.push_back(chunk);
  }
  using BinMap =
      std::unordered_map<array::Coordinates, double, array::CoordinatesHash>;
  // Each morsel accumulates a private bin map over its run of sorted
  // chunks; partials merge per key in morsel order, so every bin's
  // floating-point accumulation order is a pure function of the chunk list
  // and the grain — deterministic, thread-count invariant, and (with the
  // kernels dispatch-stable) identical across scalar and AVX2 dispatch.
  const MorselScheduler scheduler(morsel);
  BinMap acc = scheduler.Reduce(
      CarveChunks(chunks, morsel.grain_cells), BinMap{},
      [&](size_t, int64_t begin, int64_t end) {
        BinMap partial;
        array::Coordinates key(ndims);
        for (int64_t c = begin; c < end; ++c) {
          const array::Chunk& chunk = *chunks[static_cast<size_t>(c)];
          const auto& column = chunk.attr_column(static_cast<size_t>(attr));
          // Chunk-per-bin fast path: when the chunk's bounding box maps
          // into a single bin (the common case for bins at least as coarse
          // as chunks), the whole column collapses to one Sum-kernel
          // reduction.
          bool single_bin = true;
          for (size_t d = 0; d < ndims; ++d) {
            key[d] = BinOrigin(chunk.bbox_lo()[d], bin[d]);
            single_bin &= key[d] == BinOrigin(chunk.bbox_hi()[d], bin[d]);
          }
          if (single_bin) {
            // arraydb-lint: fixed-order -- one Sum-kernel call per chunk;
            // chunks visit in the scheduler's fixed morsel order.
            partial[key] += simd::Sum(column.data(), column.size());
            continue;
          }
          const int64_t* pos = chunk.packed_coords().data();
          for (size_t i = 0; i < chunk.num_cells(); ++i, pos += ndims) {
            for (size_t d = 0; d < ndims; ++d) {
              key[d] = BinOrigin(pos[d], bin[d]);
            }
            // arraydb-lint: fixed-order -- cells accumulate in columnar
            // storage order within one morsel.
            partial[key] += column[i];
          }
        }
        return partial;
      },
      [](BinMap& acc_map, BinMap&& partial) {
        // arraydb-lint: order-insensitive fixed-order -- keys are distinct
        // within one partial, and partials merge in the scheduler's fixed
        // order, so each bin's addition sequence is pinned regardless of
        // the hash iteration order here.
        for (auto& [key, sum] : partial) acc_map[key] += sum;
      });
  // arraydb-lint: ordered-extract -- std::map construction sorts by key.
  return std::map<array::Coordinates, double>(acc.begin(), acc.end());
}

namespace {

// Position -> attribute value index for window queries.
std::unordered_map<array::Coordinates, double, array::CoordinatesHash>
BuildValueIndex(const array::Array& array, int attr) {
  std::unordered_map<array::Coordinates, double, array::CoordinatesHash> index;
  index.reserve(static_cast<size_t>(array.total_cells()));
  array::Coordinates scratch;
  // Sorted chunk order: with duplicate positions (e.g. a chunk staged twice
  // mid-reorg) emplace keeps the first occurrence, so hash-order iteration
  // would make the index contents history-dependent.
  for (const array::Chunk* chunk_ptr : array.SortedChunks()) {
    const array::Chunk& chunk = *chunk_ptr;
    if (chunk.num_cells() == 0) continue;
    const auto& column = chunk.attr_column(static_cast<size_t>(attr));
    for (size_t i = 0; i < chunk.num_cells(); ++i) {
      LoadPos(chunk, i, scratch);
      index.emplace(scratch, column[i]);
    }
  }
  return index;
}

// Average of occupied cells within Chebyshev `radius` of `pos`.
double WindowAverageFromIndex(
    const std::unordered_map<array::Coordinates, double,
                             array::CoordinatesHash>& index,
    const array::Coordinates& pos, int64_t radius) {
  // Enumerate the window via an odd-base counter per dimension.
  const size_t ndims = pos.size();
  const int64_t span = 2 * radius + 1;
  int64_t total = 1;
  for (size_t d = 0; d < ndims; ++d) total *= span;
  double sum = 0.0;
  int64_t count = 0;
  array::Coordinates probe(ndims);
  for (int64_t code = 0; code < total; ++code) {
    int64_t rest = code;
    for (size_t d = 0; d < ndims; ++d) {
      probe[d] = pos[d] + (rest % span) - radius;
      rest /= span;
    }
    const auto it = index.find(probe);
    if (it != index.end()) {
      // arraydb-lint: fixed-order -- window cells visit in the odd-base
      // counter's enumeration order, identical for every configuration.
      sum += it->second;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

util::StatusOr<double> WindowAverageAt(const array::Array& array, int attr,
                                       const array::Coordinates& pos,
                                       int64_t radius) {
  if (attr < 0 || attr >= array.schema().num_attrs()) {
    return util::InvalidArgument("attribute index out of range");
  }
  if (radius < 0) return util::InvalidArgument("negative radius");
  const auto index = BuildValueIndex(array, attr);
  return WindowAverageFromIndex(index, pos, radius);
}

std::vector<std::pair<array::Coordinates, double>> WindowAverageAll(
    const array::Array& array, int attr, int64_t radius,
    const MorselOptions& morsel) {
  ARRAYDB_CHECK_GE(attr, 0);
  ARRAYDB_CHECK_LT(attr, array.schema().num_attrs());
  ARRAYDB_CHECK_GE(radius, 0);
  const auto index = BuildValueIndex(array, attr);
  // Deterministic work list: the occupied positions, sorted. Each position
  // probes the shared read-only index and writes exactly its own output
  // slot, so the field needs no combine step and the output is already in
  // its final order.
  std::vector<array::Coordinates> positions;
  positions.reserve(index.size());
  // arraydb-lint: ordered-extract -- sorted on the next line.
  for (const auto& [pos, value] : index) positions.push_back(pos);
  std::sort(positions.begin(), positions.end(), array::CoordinatesLess);
  std::vector<std::pair<array::Coordinates, double>> out(positions.size());
  // A window probe costs (2r+1)^ndims index lookups per position, so the
  // per-morsel position grain shrinks by the window volume (floored so tiny
  // fields still form one morsel). Pure in (data, options): the carve — and
  // with it the schedule-independent output — never depends on threads.
  int64_t window = 1;
  const int64_t span = 2 * radius + 1;
  for (int d = 0; d < array.schema().num_dims(); ++d) window *= span;
  const int64_t grain =
      std::max<int64_t>(64, morsel.grain_cells / std::max<int64_t>(1, window));
  const MorselScheduler scheduler(morsel);
  scheduler.Run(
      MorselScheduler::Carve(static_cast<int64_t>(positions.size()), grain),
      [&](size_t, int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const auto& pos = positions[static_cast<size_t>(i)];
          out[static_cast<size_t>(i)] = {
              pos, WindowAverageFromIndex(index, pos, radius)};
        }
      });
  return out;
}

KMeansResult KMeans(const std::vector<std::vector<double>>& points, int k,
                    int max_iterations, uint64_t seed) {
  KMeansResult result;
  ARRAYDB_CHECK_GE(k, 1);
  ARRAYDB_CHECK(!points.empty());
  ARRAYDB_CHECK_LE(static_cast<size_t>(k), points.size());
  const size_t dims = points[0].size();

  // Deterministic init: k distinct points chosen by seeded reservoir.
  util::Rng rng(seed);
  result.centroids.clear();
  std::vector<size_t> chosen;
  while (result.centroids.size() < static_cast<size_t>(k)) {
    const size_t idx = static_cast<size_t>(rng.NextBounded(points.size()));
    if (std::find(chosen.begin(), chosen.end(), idx) != chosen.end()) {
      continue;
    }
    chosen.push_back(idx);
    result.centroids.push_back(points[idx]);
  }

  result.assignment.assign(points.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        double dist = 0.0;
        for (size_t d = 0; d < dims; ++d) {
          const double diff =
              points[i][d] - result.centroids[static_cast<size_t>(c)][d];
          // arraydb-lint: fixed-order -- sequential over dimensions.
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (result.assignment[i] != best_c) {
        result.assignment[i] = best_c;
        changed = true;
      }
    }
    result.iterations = iter + 1;
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(dims, 0.0));
    std::vector<int64_t> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < points.size(); ++i) {
      const auto c = static_cast<size_t>(result.assignment[i]);
      // arraydb-lint: fixed-order -- sequential over points in index order.
      for (size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
      ++counts[c];
    }
    for (size_t c = 0; c < static_cast<size_t>(k); ++c) {
      if (counts[c] == 0) continue;  // Empty cluster keeps its centroid.
      for (size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    const auto c = static_cast<size_t>(result.assignment[i]);
    for (size_t d = 0; d < dims; ++d) {
      const double diff = points[i][d] - result.centroids[c][d];
      // arraydb-lint: fixed-order -- sequential over points and dimensions.
      result.inertia += diff * diff;
    }
  }
  return result;
}

util::StatusOr<double> KnnAverageDistance(const array::Array& array, int k,
                                          int samples, uint64_t seed,
                                          const MorselOptions& morsel) {
  if (k < 1) return util::InvalidArgument("k must be positive");
  if (samples < 1) return util::InvalidArgument("samples must be positive");
  // Sample and scan through the span view: positions are read straight from
  // the chunks' packed coordinate columns, no Cell materialization.
  const array::CellSpanView view(array);
  const int64_t num_cells = view.num_cells();
  if (num_cells <= static_cast<int64_t>(k)) {
    return util::FailedPrecondition("not enough cells for kNN");
  }
  const size_t ndims = static_cast<size_t>(array.schema().num_dims());
  util::Rng rng(seed);
  double total = 0.0;
  array::Coordinates origin(ndims);
  // The sample draw stays a single RNG stream; each sample's brute-force
  // distance scan runs morsel-parallel, every cell writing its fixed slot
  // (cells after the probe shift down one), so the selection input is the
  // same vector, in the same order, as the sequential scan produced.
  std::vector<double> dists(static_cast<size_t>(num_cells) - 1);
  const MorselScheduler scheduler(morsel);
  const auto morsels =
      MorselScheduler::Carve(num_cells, morsel.grain_cells);
  for (int s = 0; s < samples; ++s) {
    const auto idx = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(num_cells)));
    const auto loc = view.Locate(idx);
    const int64_t* origin_pos = loc.chunk->cell_pos(loc.index);
    origin.assign(origin_pos, origin_pos + ndims);
    scheduler.Run(morsels, [&](size_t, int64_t begin, int64_t end) {
      int64_t global = begin;
      view.ForEachSlice(
          begin, end,
          [&](const array::Chunk& chunk, size_t local_begin,
              size_t local_end) {
            for (size_t i = local_begin; i < local_end; ++i, ++global) {
              if (global == idx) continue;
              const int64_t* pos = chunk.cell_pos(i);
              double dist = 0.0;
              for (size_t d = 0; d < ndims; ++d) {
                const double diff = static_cast<double>(pos[d] - origin[d]);
                // arraydb-lint: fixed-order -- sequential over dimensions.
                dist += diff * diff;
              }
              dists[static_cast<size_t>(global < idx ? global : global - 1)] =
                  std::sqrt(dist);
            }
          });
    });
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    double sum = 0.0;
    // arraydb-lint: fixed-order -- dists is built deterministically and
    // nth_element permutes deterministically for a fixed input, so the
    // first-k addition order is pinned for a given binary.
    for (int i = 0; i < k; ++i) sum += dists[static_cast<size_t>(i)];
    // nth_element leaves the first k elements as the k smallest (unordered);
    // their mean is the probe's kNN distance.
    // arraydb-lint: fixed-order -- sequential over sample probes.
    total += sum / static_cast<double>(k);
  }
  return total / static_cast<double>(samples);
}

util::StatusOr<array::Array> Regrid(const array::Array& array,
                                    const std::vector<int64_t>& factors,
                                    int attr) {
  const auto& schema = array.schema();
  if (factors.size() != static_cast<size_t>(schema.num_dims())) {
    return util::InvalidArgument("factor rank mismatch");
  }
  if (attr < 0 || attr >= schema.num_attrs()) {
    return util::InvalidArgument("attribute index out of range");
  }
  for (const int64_t f : factors) {
    if (f <= 0) return util::InvalidArgument("non-positive regrid factor");
  }
  // Coarse schema: extents divided by the factors, one chunk per dim block.
  std::vector<array::DimensionDesc> dims;
  for (int d = 0; d < schema.num_dims(); ++d) {
    const auto& src = schema.dims()[static_cast<size_t>(d)];
    array::DimensionDesc dim;
    dim.name = src.name;
    dim.lo = 0;
    dim.hi = (src.Extent() + factors[static_cast<size_t>(d)] - 1) /
                 factors[static_cast<size_t>(d)] -
             1;
    dim.chunk_interval = dim.hi - dim.lo + 1;
    dims.push_back(dim);
  }
  array::Array coarse(array::ArraySchema(
      schema.name() + "_regrid", dims,
      {array::AttributeDesc{"sum", array::AttrType::kDouble},
       array::AttributeDesc{"count", array::AttrType::kDouble}}));

  // Accumulate, then materialize one cell per occupied coarse position.
  std::map<array::Coordinates, std::pair<double, int64_t>> acc;
  const size_t ndims = factors.size();
  array::Coordinates key(ndims);
  // Sorted chunk order keeps floating-point accumulation deterministic.
  for (const array::Chunk* chunk_ptr : array.SortedChunks()) {
    const array::Chunk& chunk = *chunk_ptr;
    if (chunk.num_cells() == 0) continue;
    const auto& column = chunk.attr_column(static_cast<size_t>(attr));
    const int64_t* pos = chunk.packed_coords().data();
    for (size_t i = 0; i < chunk.num_cells(); ++i, pos += ndims) {
      for (size_t d = 0; d < ndims; ++d) {
        key[d] = (pos[d] - schema.dims()[d].lo) / factors[d];
      }
      auto& slot = acc[key];
      // arraydb-lint: fixed-order -- cells accumulate in storage order.
      slot.first += column[i];
      slot.second += 1;
    }
  }
  for (const auto& [coarse_key, slot] : acc) {
    const auto status = coarse.InsertCell(
        coarse_key, {slot.first, static_cast<double>(slot.second)});
    ARRAYDB_CHECK(status.ok());
  }
  return coarse;
}

}  // namespace arraydb::exec
