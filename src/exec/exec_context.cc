#include "exec/exec_context.h"

#include <mutex>

namespace arraydb::exec {

namespace {

// The one process-default context the legacy knob shims mutate and the
// no-options operator overloads snapshot. Mutex-guarded: readers copy the
// whole struct under the lock, so a configuration racing an operator call
// is merely a question of which settings the call snapshots — never a
// data race (the caveat the old non-atomic globals carried).
std::mutex& DefaultMutex() {
  static std::mutex mu;
  return mu;
}

ExecContext& DefaultStorage() {
  static ExecContext context;
  return context;
}

}  // namespace

MorselOptions ExecContext::morsel_options() const {
  MorselOptions options;
  options.threads = data_plane_threads;
  options.grain_cells = morsel_grain;
  options.yield = yield;
  return options;
}

JoinOptions ExecContext::join_options() const {
  JoinOptions options;
  options.morsel = morsel_options();
  options.partition_bits = join_partition_bits;
  return options;
}

ExecContext DefaultExecContext() {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  return DefaultStorage();
}

void SetDefaultExecContext(const ExecContext& context) {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  DefaultStorage() = context;
}

ScopedExecContext::ScopedExecContext(const ExecContext& context)
    : saved_(DefaultExecContext()) {
  SetDefaultExecContext(context);
}

ScopedExecContext::~ScopedExecContext() { SetDefaultExecContext(saved_); }

// -- Legacy knob shims (single-threaded-setup convenience) --------------------

MorselOptions DataPlaneMorselOptions() {
  return DefaultExecContext().morsel_options();
}

void SetDataPlaneThreads(int threads) {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  DefaultStorage().data_plane_threads = threads;
}

ScopedDataPlaneThreads::ScopedDataPlaneThreads(int threads) {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  saved_ = DefaultStorage().data_plane_threads;
  DefaultStorage().data_plane_threads = threads;
}

ScopedDataPlaneThreads::~ScopedDataPlaneThreads() {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  DefaultStorage().data_plane_threads = saved_;
}

JoinOptions DataPlaneJoinOptions() {
  return DefaultExecContext().join_options();
}

void SetJoinPartitionBits(int bits) {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  DefaultStorage().join_partition_bits = bits;
}

ScopedJoinPartitionBits::ScopedJoinPartitionBits(int bits) {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  saved_ = DefaultStorage().join_partition_bits;
  DefaultStorage().join_partition_bits = bits;
}

ScopedJoinPartitionBits::~ScopedJoinPartitionBits() {
  std::lock_guard<std::mutex> lock(DefaultMutex());
  DefaultStorage().join_partition_bits = saved_;
}

}  // namespace arraydb::exec
