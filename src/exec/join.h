// Morsel-parallel radix-partitioned hash joins on Hilbert-rank keys.
//
// The join benchmarks (the paper's Fig. 6 MODIS vegetation-index join and
// the AIS vessel join) execute here on materialized arrays. Dimension
// joins key on the packed 64-bit Hilbert rank of each cell position
// (hilbert::HilbertCodec::RankPacked over the chunks' packed coordinate
// columns — no per-cell Coordinates allocation, no vector hashing), radix-
// partition the build side by the high rank bits into flat open-addressing
// key tables, and probe morsel-parallel through exec::MorselScheduler.
// Because chunks are Hilbert-ordered by the placement layer, co-located
// chunks share rank prefixes: radix partitions are placement-aligned for
// free.
//
// Determinism contract (same as the scan/aggregate operators, see
// src/exec/README.md "Join partitioning contract"): the partition
// decomposition is a pure function of the data, the grain, and the
// partition-bit count; per-morsel partials merge in fixed (partition,
// morsel) order; match counts are integers, so results are bit-identical
// across thread counts, morsel grains, AND partition-bit settings.

#ifndef ARRAYDB_EXEC_JOIN_H_
#define ARRAYDB_EXEC_JOIN_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "array/array.h"
#include "exec/morsel.h"

namespace arraydb::exec {

/// Default number of high rank bits selecting a build partition (16
/// partitions): enough that every hardware thread owns private tables at
/// testbed scale while each partition's key list stays cache-friendly.
inline constexpr int kDefaultJoinPartitionBits = 4;

struct JoinOptions {
  MorselOptions morsel;
  /// High rank bits selecting the radix partition; 0 = a single partition
  /// (the degenerate non-partitioned table). Clamped to the key space's
  /// available rank bits. Results never depend on this setting.
  int partition_bits = kDefaultJoinPartitionBits;
};

/// Snapshot of the process-default context's join options — morsel
/// settings plus partition bits. Equivalent to
/// DefaultExecContext().join_options(); see exec/exec_context.h. The
/// default context is mutex-guarded, so concurrent joins snapshotting it
/// are race-free; concurrent sessions with different settings pass an
/// explicit ExecContext instead of mutating the default.
JoinOptions DataPlaneJoinOptions();

/// Sets the default context's join partition-bit count. Thin shim over
/// SetDefaultExecContext, kept for single-threaded setup (like
/// SetDataPlaneThreads).
void SetJoinPartitionBits(int bits);

/// RAII override of the join partition bits (tests and benches).
class ScopedJoinPartitionBits {
 public:
  explicit ScopedJoinPartitionBits(int bits);
  ~ScopedJoinPartitionBits();
  ScopedJoinPartitionBits(const ScopedJoinPartitionBits&) = delete;
  ScopedJoinPartitionBits& operator=(const ScopedJoinPartitionBits&) = delete;

 private:
  int saved_;
};

/// Flat open-addressing set of uint64 keys: power-of-two slot array, linear
/// probing, splitmix64-mixed hashing. Empty slots hold 0; a present zero
/// key is tracked out of band. No node allocation, no per-key indirection —
/// the build side of the radix join and the attribute key set.
class FlatKeySet {
 public:
  /// Sizes the slot array for `n` distinct keys at <= 50% load.
  void Reserve(size_t n);

  void Insert(uint64_t key);
  bool Contains(uint64_t key) const;

  /// Distinct keys inserted.
  size_t size() const { return size_; }

 private:
  void Grow();

  std::vector<uint64_t> slots_;  // 0 = empty; power-of-two length.
  size_t mask_ = 0;
  size_t size_ = 0;
  bool has_zero_ = false;
};

/// Join benchmark (MODIS): number of positions occupied in both arrays —
/// the size of the position join used for the vegetation index.
///
/// Multiplicity semantics (pinned by the invariance suite): the side with
/// fewer total cells builds (ties: `a` builds), the other side probes.
/// Duplicate build-side positions collapse into the key set and count
/// once; every probe-side cell whose position is present counts, so
/// duplicate probe-side positions each contribute a match. Arrays of
/// different rank never share a position: the join is empty.
///
/// Executes the radix-partitioned rank-key join when a common Hilbert key
/// space exists (rank <= the codec's 6-dim state tables and the joint
/// coordinate extents fit the 64-bit rank budget); otherwise falls back to
/// internal::DimJoinCountBySet with identical semantics.
int64_t DimJoinCount(const array::Array& a, const array::Array& b,
                     const JoinOptions& options = DataPlaneJoinOptions());

/// Join benchmark (AIS): cells of `array` whose attribute `attr` value
/// rounds (llround: nearest integer, ties away from zero) to a key in
/// `keys` — a hash join against the replicated vessel array. Non-finite
/// values and values outside the int64 range never match.
int64_t AttrJoinCount(const array::Array& array, int attr,
                      const std::unordered_set<int64_t>& keys,
                      const JoinOptions& options = DataPlaneJoinOptions());

/// Integer join key of an attribute value: nearest integer, ties away from
/// zero (std::llround). Returns false — the value can never match — for
/// non-finite values and values outside the int64 range.
bool AttrJoinKey(double value, int64_t* key);

namespace internal {

/// The retired unordered_set<Coordinates> dimension join, kept as the
/// executable multiplicity-semantics specification, as the fallback for
/// key spaces the rank codec cannot serve, and as the "seed" side of the
/// radix-vs-set comparison in bench_fig6_join.
int64_t DimJoinCountBySet(const array::Array& a, const array::Array& b);

}  // namespace internal

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_JOIN_H_
