#include "exec/engine.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "util/logging.h"
#include "util/rng.h"
#include "util/units.h"

namespace arraydb::exec {
namespace {

// Invokes `fn` for every face-adjacent neighbor coordinate of `coords`.
template <typename Fn>
void ForEachFaceNeighbor(const array::Coordinates& coords, Fn&& fn) {
  array::Coordinates nb = coords;
  for (size_t d = 0; d < coords.size(); ++d) {
    nb[d] = coords[d] - 1;
    fn(nb);
    nb[d] = coords[d] + 1;
    fn(nb);
    nb[d] = coords[d];
  }
}

// Invokes `fn` for every Chebyshev-ring (Moore) neighbor of `coords`.
template <typename Fn>
void ForEachRingNeighbor(const array::Coordinates& coords, Fn&& fn) {
  const size_t ndims = coords.size();
  array::Coordinates nb = coords;
  // Iterate offsets in {-1,0,1}^d via a base-3 counter, skipping zero.
  const int64_t total = static_cast<int64_t>(std::pow(3.0, ndims));
  for (int64_t code = 0; code < total; ++code) {
    int64_t rest = code;
    bool all_zero = true;
    for (size_t d = 0; d < ndims; ++d) {
      const int offset = static_cast<int>(rest % 3) - 1;
      rest /= 3;
      nb[d] = coords[d] + offset;
      if (offset != 0) all_zero = false;
    }
    if (!all_zero) fn(nb);
  }
}

}  // namespace

QueryCost QueryEngine::Simulate(const QuerySpec& spec,
                                const cluster::PlacementView& placement,
                                const array::ArraySchema& schema) const {
  (void)schema;
  QueryCost cost;
  cost.minutes = params_.startup_minutes;

  // Gather the chunks this query touches, with their routed owners, in
  // deterministic order.
  std::vector<cluster::ChunkRecord> relevant;
  placement.ForEachChunk([&spec, &relevant](const array::Coordinates& coords,
                                            cluster::NodeId node,
                                            int64_t bytes) {
    if (spec.region.Contains(coords)) {
      relevant.push_back(cluster::ChunkRecord{coords, bytes, node});
    }
  });
  if (relevant.empty()) return cost;
  std::sort(relevant.begin(), relevant.end(),
            [](const cluster::ChunkRecord& a, const cluster::ChunkRecord& b) {
              return array::CoordinatesLess(a.coords, b.coords);
            });

  const int num_nodes = placement.num_nodes();
  std::vector<double> node_minutes(static_cast<size_t>(num_nodes), 0.0);

  // Dimension joins read two vertically partitioned inputs at the same
  // positions; everything else reads one.
  const double scan_factor = spec.kind == QueryKind::kDimJoin ? 2.0 : 1.0;
  // Iterative operators re-run their CPU phase each iteration; I/O is paid
  // once (chunks stay cached in the node's memory between iterations).
  const double cpu_iters =
      spec.kind == QueryKind::kKMeans ? static_cast<double>(spec.iterations)
                                      : 1.0;

  // kNN probes only the sampled neighborhoods (below); every other
  // operator scans its whole region.
  if (spec.kind != QueryKind::kKnn) {
    for (const auto& rec : relevant) {
      const double gb = util::BytesToGb(static_cast<double>(rec.bytes));
      // arraydb-lint: fixed-order -- `relevant` is in sorted chunk order.
      cost.scanned_gb += gb * scan_factor;
      node_minutes[static_cast<size_t>(rec.node)] +=
          gb * scan_factor *
          (params_.io_read_min_per_gb + spec.cpu_min_per_gb * cpu_iters);
    }
    cost.chunks_touched = static_cast<int64_t>(relevant.size());
  }

  // Kind-specific distributed costs.
  switch (spec.kind) {
    case QueryKind::kFilter:
    case QueryKind::kDimJoin:
      break;  // Pure makespan; collocation is positional by construction.
    case QueryKind::kSortQuantile: {
      // Each node ships its surviving fraction to the coordinator, which
      // merges serially.
      cost.network_minutes +=
          cost.scanned_gb * spec.selectivity * params_.net_min_per_gb;
      break;
    }
    case QueryKind::kAttrJoin: {
      // The small side is broadcast to every node once.
      cost.network_minutes += spec.small_side_gb * params_.net_min_per_gb;
      break;
    }
    case QueryKind::kGroupBy: {
      // Partial aggregates are exchanged in a short synchronization round.
      cost.network_minutes +=
          params_.sync_minutes * static_cast<double>(num_nodes);
      break;
    }
    case QueryKind::kWindow: {
      // Halo exchange: every face-adjacent neighbor stored on a different
      // node costs a chunk transfer, charged to the reader. Each distinct
      // (reader, neighbor) pair is fetched once per query — nodes cache
      // chunks they already pulled.
      std::set<std::pair<cluster::NodeId, array::Coordinates>> fetched;
      for (const auto& rec : relevant) {
        ForEachFaceNeighbor(rec.coords, [&](const array::Coordinates& nb) {
          cluster::NodeId nb_node = cluster::kInvalidNode;
          int64_t nb_bytes = 0;
          if (!placement.Lookup(nb, &nb_node, &nb_bytes)) return;
          if (nb_node == rec.node) return;
          if (!fetched.emplace(rec.node, nb).second) return;
          const double nb_gb =
              util::BytesToGb(static_cast<double>(nb_bytes));
          // arraydb-lint: fixed-order -- sorted chunks x fixed face order.
          node_minutes[static_cast<size_t>(rec.node)] +=
              spec.halo_fraction * nb_gb * params_.net_min_per_gb +
              params_.remote_fetch_minutes;
          ++cost.remote_neighbor_fetches;
        });
      }
      break;
    }
    case QueryKind::kKnn: {
      // Sample cells with probability proportional to chunk bytes (ships
      // are sampled uniformly, so dense chunks are hit more often); each
      // probe scans its chunk's neighborhood ring.
      std::vector<double> cumulative(relevant.size());
      double acc = 0.0;
      for (size_t i = 0; i < relevant.size(); ++i) {
        // arraydb-lint: fixed-order -- sequential prefix sum.
        acc += static_cast<double>(relevant[i].bytes);
        cumulative[i] = acc;
      }
      util::Rng rng(spec.seed);
      std::set<std::pair<cluster::NodeId, array::Coordinates>> fetched;
      std::set<array::Coordinates> probed;
      for (int s = 0; s < spec.knn_samples; ++s) {
        const double pick = rng.NextDouble() * acc;
        const size_t idx = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
            cumulative.begin());
        const auto& rec = relevant[std::min(idx, relevant.size() - 1)];
        const double gb = util::BytesToGb(static_cast<double>(rec.bytes));
        // Probe reads its own chunk and scans the candidates; a chunk
        // already probed stays cached on its node.
        if (probed.insert(rec.coords).second) {
          // arraydb-lint: fixed-order -- probes draw from a seeded Rng.
          node_minutes[static_cast<size_t>(rec.node)] +=
              gb * (params_.io_read_min_per_gb + spec.cpu_min_per_gb);
          // arraydb-lint: fixed-order -- probes draw from a seeded Rng.
          cost.scanned_gb += gb;
          ++cost.chunks_touched;
        }
        ForEachRingNeighbor(rec.coords, [&](const array::Coordinates& nb) {
          cluster::NodeId nb_node = cluster::kInvalidNode;
          int64_t nb_bytes = 0;
          if (!placement.Lookup(nb, &nb_node, &nb_bytes)) return;
          if (nb_node == rec.node) return;
          if (!fetched.emplace(rec.node, nb).second) return;
          const double nb_gb =
              util::BytesToGb(static_cast<double>(nb_bytes));
          // arraydb-lint: fixed-order -- seeded probes x fixed ring order.
          node_minutes[static_cast<size_t>(rec.node)] +=
              spec.halo_fraction * nb_gb * params_.net_min_per_gb +
              params_.remote_fetch_minutes;
          ++cost.remote_neighbor_fetches;
        });
      }
      break;
    }
    case QueryKind::kKMeans: {
      // Per-iteration centroid broadcast + barrier.
      cost.network_minutes += static_cast<double>(spec.iterations) *
                              params_.sync_minutes *
                              static_cast<double>(num_nodes);
      break;
    }
  }

  cost.makespan_minutes =
      *std::max_element(node_minutes.begin(), node_minutes.end());
  cost.minutes += cost.makespan_minutes + cost.network_minutes;
  return cost;
}

}  // namespace arraydb::exec
