// Distributed query timing at paper scale.
//
// The engine prices a QuerySpec against a concrete placement. The model
// captures exactly the effects the paper's evaluation turns on:
//   * makespan — elapsed time is the maximum over nodes of local scan + CPU
//     work, so storage balance buys parallelism (§6.2.2, SPJ results);
//   * n-dimensional clustering — window and kNN operators exchange halos
//     with face-adjacent chunks, paying network cost whenever a neighbor
//     lives on a different node (§6.2.2, science analytics);
//   * coordinator merges and broadcasts for sorts and replicated joins.
//
// Placement is consumed through cluster::PlacementView, so the same pricing
// runs against a quiesced Cluster or a reorg::DualResidencyView of a cluster
// with migration increments in flight — mid-reorg queries stay routed to
// readable replicas and return results identical to a quiesced cluster.

#ifndef ARRAYDB_EXEC_ENGINE_H_
#define ARRAYDB_EXEC_ENGINE_H_

#include <cstdint>
#include <vector>

#include "array/schema.h"
#include "cluster/cluster.h"
#include "cluster/placement_view.h"
#include "exec/query.h"

namespace arraydb::exec {

struct EngineParams {
  /// Disk read rate, minutes per GB.
  double io_read_min_per_gb = 0.08;
  /// Network transfer rate, minutes per GB (matches the cluster model's t).
  double net_min_per_gb = 0.25;
  /// Fixed per-query planning/startup overhead in minutes.
  double startup_minutes = 0.05;
  /// Per-iteration synchronization barrier for iterative operators.
  double sync_minutes = 0.02;
  /// Fixed latency per remote neighbor-chunk fetch (RPC setup + chunk open),
  /// charged on top of the byte-proportional halo transfer. This is what
  /// scattering contiguous chunks costs spatial operators regardless of
  /// chunk size (§6.2.2).
  double remote_fetch_minutes = 0.01;
};

/// Breakdown of one simulated query execution.
struct QueryCost {
  double minutes = 0.0;        // Total elapsed.
  double makespan_minutes = 0.0;  // Slowest node's local work.
  double network_minutes = 0.0;   // Halo exchange / merge / broadcast.
  double scanned_gb = 0.0;        // Bytes touched across the cluster.
  int64_t chunks_touched = 0;
  int64_t remote_neighbor_fetches = 0;  // Cross-node halo transfers.
};

class QueryEngine {
 public:
  explicit QueryEngine(EngineParams params = EngineParams())
      : params_(params) {}

  const EngineParams& params() const { return params_; }

  /// Prices `spec` against `placement` (a quiesced Cluster or a mid-reorg
  /// DualResidencyView) for an array with `schema`. Deterministic for a
  /// given (spec, placement).
  QueryCost Simulate(const QuerySpec& spec,
                     const cluster::PlacementView& placement,
                     const array::ArraySchema& schema) const;

 private:
  EngineParams params_;
};

}  // namespace arraydb::exec

#endif  // ARRAYDB_EXEC_ENGINE_H_
