// Tuning the leading staircase (§5): fitting the control loop to a
// workload, then running it.
//
//   1. Algorithm 1 what-if analysis chooses s (derivative samples) from
//      observed demand history.
//   2. The Eq. 5-9 analytical cost model prices plan-ahead candidates p
//      and picks the cheapest.
//   3. The tuned staircase then drives a full elastic run, and we verify
//      capacity always leads demand.
//
// Build & run:  ./build/examples/provisioner_tuning

#include <cstdio>
#include <vector>

#include "core/provisioner.h"
#include "core/tuning.h"
#include "util/units.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  workload::ModisConfig modis_cfg;
  modis_cfg.days = 30;
  workload::ModisWorkload modis(modis_cfg);

  // Observed demand history: cumulative storage after each daily ingest.
  std::vector<double> loads;
  double total = 0.0;
  for (int day = 0; day < modis.num_cycles(); ++day) {
    for (const auto& chunk : modis.GenerateBatch(day)) {
      total += util::BytesToGb(static_cast<double>(chunk.bytes));
    }
    loads.push_back(total);
  }
  std::printf("Observed %zu daily demand points, final load %.1f GB\n\n",
              loads.size(), loads.back());

  // --- 1. What-if analysis for s (Algorithm 1). ---
  const int psi = 4;
  const auto errors = core::SamplingWhatIfErrors(loads, psi);
  std::printf("What-if analysis (mean |prediction error| in GB):\n");
  for (int s = 1; s <= psi; ++s) {
    std::printf("  s = %d -> %.2f GB\n", s,
                errors[static_cast<size_t>(s - 1)]);
  }
  const int best_s = core::TuneSampleCount(loads, psi);
  std::printf("Chosen sample count: s = %d\n\n", best_s);

  // --- 2. Analytical cost model for p (Eqs. 5-9). ---
  core::ScaleOutCostModelParams params;
  params.l0_gb = loads[9];
  params.mu_gb = (loads[9] - loads[5]) / 4.0;
  params.capacity_gb = 100.0;
  params.n0 = 3;
  params.w0_minutes = 45.0;  // Last observed benchmark latency.
  params.delta_io_min_per_gb = 0.12;
  params.t_net_min_per_gb = 0.25;
  params.horizon_m = 8;
  std::printf("Scale-out cost model (node hours over %d cycles):\n",
              params.horizon_m);
  for (const int p : {1, 2, 3, 6}) {
    std::printf("  p = %d -> %.1f node-hours\n", p,
                core::EstimateConfigCostNodeHours(p, params));
  }
  const int best_p = core::TunePlanAhead({1, 2, 3, 6}, params);
  std::printf("Chosen plan-ahead: p = %d\n\n", best_p);

  // --- 3. Run the tuned staircase. ---
  workload::RunnerConfig cfg;
  cfg.partitioner = core::PartitionerKind::kConsistentHash;
  cfg.policy = workload::ScaleOutPolicy::kStaircase;
  cfg.initial_nodes = 1;
  cfg.staircase_samples = best_s;
  cfg.staircase_plan_ahead = best_p;
  cfg.max_nodes = 64;
  cfg.run_queries = false;
  workload::WorkloadRunner runner(cfg);
  const auto result = runner.Run(modis);

  std::printf("Tuned staircase run (s=%d, p=%d):\n", best_s, best_p);
  std::printf("cycle  demand(GB)  capacity(GB)  nodes\n");
  bool always_covered = true;
  int scaleouts = 0;
  for (const auto& m : result.cycles) {
    const double capacity = static_cast<double>(m.nodes_after) * 100.0;
    if (capacity < m.load_gb) always_covered = false;
    if (m.nodes_after > m.nodes_before) ++scaleouts;
    std::printf("%5d  %10.1f  %12.1f  %5d\n", m.cycle + 1, m.load_gb,
                capacity, m.nodes_after);
  }
  std::printf(
      "\n%d scale-out operations; capacity always led demand: %s\n",
      scaleouts, always_covered ? "yes" : "NO");
  return always_covered ? 0 : 1;
}
