// Quickstart: the paper's Figure 1 array, partitioned across an elastic
// cluster.
//
// Walks the core public API end to end:
//   1. declare a SciDB-style schema and store some cells,
//   2. place its chunks on a 2-node cluster with a K-d Tree partitioner,
//   3. scale out to 3 nodes and watch the incremental reorganization,
//   4. verify that lookups agree with the cluster afterwards.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "array/array.h"
#include "cluster/cluster.h"
#include "core/elastic_engine.h"
#include "core/partitioner_factory.h"
#include "util/strings.h"

using namespace arraydb;

int main() {
  // --- 1. The Figure 1 array: A<i:int32, j:float>[x=1:4,2, y=1:4,2]. ---
  array::ArraySchema schema(
      "A",
      {array::DimensionDesc{"x", 1, 4, 2, false},
       array::DimensionDesc{"y", 1, 4, 2, false}},
      {array::AttributeDesc{"i", array::AttrType::kInt32},
       array::AttributeDesc{"j", array::AttrType::kFloat}});
  std::printf("Array declaration: %s\n", schema.ToString().c_str());

  array::Array a(schema);
  // The six occupied cells of Figure 1: dense center, sparse edges.
  struct Point {
    int64_t x, y;
    double i, j;
  };
  const Point points[] = {{1, 1, 1, 1.3}, {3, 2, 9, 2.7}, {3, 3, 4, 3.5},
                          {4, 3, 3, 4.2}, {3, 4, 7, 7.2}, {4, 4, 6, 2.5}};
  for (const auto& p : points) {
    const auto status = a.InsertCell({p.x, p.y}, {p.i, p.j});
    if (!status.ok()) {
      std::printf("insert failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("Stored %lld cells in %lld non-empty chunks (%lld bytes)\n\n",
              static_cast<long long>(a.total_cells()),
              static_cast<long long>(a.num_chunks()),
              static_cast<long long>(a.total_bytes()));

  // --- 2. Place the chunks on a 2-node cluster. ---
  core::ElasticEngine engine(
      core::MakePartitioner(core::PartitionerKind::kKdTree, schema,
                            /*initial_nodes=*/2, /*node_capacity_gb=*/1.0),
      /*initial_nodes=*/2, /*node_capacity_gb=*/1.0);
  const auto insert = engine.IngestBatch(a.ChunkInfos());
  std::printf("Ingested %lld chunks in %.3f simulated minutes\n",
              static_cast<long long>(insert.chunks), insert.minutes);
  for (const auto& rec : engine.cluster().AllChunks()) {
    std::printf("  chunk %-8s -> node %d  (%lld bytes)\n",
                array::CoordinatesToString(rec.coords).c_str(), rec.node,
                static_cast<long long>(rec.bytes));
  }

  // --- 3. Scale out: one new node joins; only it receives data. ---
  std::printf("\nScaling out to 3 nodes...\n");
  const auto reorg = engine.ScaleOut(1);
  std::printf(
      "Reorganization moved %lld chunks (%.4f GB) in %.3f simulated "
      "minutes;\nincremental (data shipped only to the new node): %s\n",
      static_cast<long long>(reorg.chunks_moved), reorg.moved_gb,
      reorg.minutes, reorg.only_to_new_nodes ? "yes" : "NO");
  for (const auto& rec : engine.cluster().AllChunks()) {
    std::printf("  chunk %-8s -> node %d\n",
                array::CoordinatesToString(rec.coords).c_str(), rec.node);
  }

  // --- 4. Locate() agrees with the cluster for every chunk. ---
  bool all_agree = true;
  for (const auto& rec : engine.cluster().AllChunks()) {
    if (engine.partitioner().Locate(rec.coords) != rec.node) {
      all_agree = false;
    }
  }
  std::printf("\nPartitioning table agrees with cluster placement: %s\n",
              all_agree ? "yes" : "NO");
  std::printf("Per-node loads (bytes):");
  for (int n = 0; n < engine.cluster().num_nodes(); ++n) {
    std::printf(" %lld", static_cast<long long>(engine.cluster().NodeBytes(n)));
  }
  std::printf("\nLoad RSD: %.1f%%\n", engine.cluster().LoadRsd() * 100.0);
  return all_agree ? 0 : 1;
}
