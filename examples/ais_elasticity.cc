// Marine-science pipeline (§3.2): the AIS ship-tracking use case.
//
// Part A runs the marine analytics on a small materialized track array:
// the Houston-style port selection, the distinct-ship join against a
// vessel registry, a coarse track-density map, and the kNN traffic-density
// estimate — demonstrating why ports make the data extremely skewed.
//
// Part B compares two paper-scale elastic runs over the 400 GB AIS
// workload: the Round Robin baseline against the K-d Tree, showing the
// trade between storage balance and spatial clustering under heavy skew.
//
// Build & run:  ./build/examples/ais_elasticity

#include <cstdio>
#include <unordered_set>

#include "exec/operators.h"
#include "workload/ais.h"
#include "workload/runner.h"
#include "workload/sample_data.h"

using namespace arraydb;

int main() {
  std::printf("== Part A: marine analytics on materialized tracks ==\n\n");
  const array::Array tracks =
      workload::MakeSmallAisTracks(/*months=*/8, /*ships=*/300, /*seed=*/29);
  std::printf("Tracks: %s\n", tracks.schema().ToString().c_str());
  std::printf("%lld broadcasts in %lld chunks\n",
              static_cast<long long>(tracks.total_cells()),
              static_cast<long long>(tracks.num_chunks()));

  // Selection around the first synthetic port (a dense, skewed region).
  const auto port_cells = exec::FilterBox(
      tracks, exec::CellBox{{0, 3, 3}, {7, 9, 9}});
  std::printf("broadcasts near port 1: %zu of %lld (%.0f%%)\n",
              port_cells.size(),
              static_cast<long long>(tracks.total_cells()),
              100.0 * static_cast<double>(port_cells.size()) /
                  static_cast<double>(tracks.total_cells()));

  // Join with the vessel registry: which broadcasts come from tankers?
  std::unordered_set<int64_t> tanker_ids;
  for (int64_t ship = 0; ship < 300; ship += 7) tanker_ids.insert(ship);
  const int64_t tanker_broadcasts =
      exec::AttrJoinCount(tracks, /*attr=ship_id*/ 1, tanker_ids);
  std::printf("broadcasts from registry-flagged tankers: %lld\n",
              static_cast<long long>(tanker_broadcasts));

  // Statistics: coarse-grained density map of track counts.
  const auto density = exec::GroupBySum(tracks, {8, 8, 8}, /*attr=speed*/ 0);
  std::printf("coarse density map: %zu occupied coarse cells\n",
              density.size());

  // Modeling: kNN distance — small near ports, large in open water.
  const auto knn = exec::KnnAverageDistance(tracks, /*k=*/5, /*samples=*/32,
                                            /*seed=*/3);
  if (knn.ok()) {
    std::printf("mean distance to 5 nearest tracks: %.2f cells\n", *knn);
  }

  std::printf("\n== Part B: paper-scale elasticity under skew ==\n\n");
  workload::AisWorkload ais;
  for (const auto kind : {core::PartitionerKind::kRoundRobin,
                          core::PartitionerKind::kKdTree}) {
    workload::RunnerConfig cfg;
    cfg.partitioner = kind;
    cfg.initial_nodes = 2;
    cfg.nodes_per_scaleout = 2;
    cfg.max_nodes = 8;
    workload::WorkloadRunner runner(cfg);
    const auto r = runner.Run(ais);
    std::printf("%s:\n", core::PartitionerKindName(kind));
    std::printf(
        "  balance RSD %.0f%%, reorg %.1f min (%.0f GB moved), SPJ %.1f "
        "min,\n  science %.1f min, Eq.1 cost %.1f node-hours\n",
        r.mean_rsd * 100.0, r.total_reorg_minutes,
        [&] {
          double gb = 0.0;
          for (const auto& m : r.cycles) gb += m.moved_gb;
          return gb;
        }(),
        r.total_spj_minutes, r.total_science_minutes, r.cost_node_hours);
  }
  std::printf(
      "\nThe baseline balances storage almost perfectly but scatters every\n"
      "port's neighborhood across the cluster; the K-d Tree accepts skewed\n"
      "loads in exchange for spatial locality, winning the science suite\n"
      "(and the kNN query in particular — see bench_fig7_knn).\n");
  return 0;
}
