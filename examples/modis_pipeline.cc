// Remote-sensing pipeline (§3.1): the MODIS use case at two scales.
//
// Part A executes the science benchmark's *actual algorithms* on a small
// materialized band — quantile of radiance, windowed NDVI smoothing,
// regridding to a coarse image, and k-means over the pixel space — using
// the reference operators.
//
// Part B replays the full paper-scale elastic experiment: 630 GB over 14
// daily cycles on a cluster growing 2 -> 8 nodes under the Incremental
// Quadtree partitioner (the best MODIS performer in Figure 5).
//
// Build & run:  ./build/examples/modis_pipeline

#include <cstdio>
#include <vector>

#include "array/cell_span.h"
#include "exec/operators.h"
#include "workload/modis.h"
#include "workload/runner.h"
#include "workload/sample_data.h"

using namespace arraydb;

int main() {
  std::printf("== Part A: science operators on a materialized band ==\n\n");
  const array::Array band = workload::MakeSmallModisBand(/*days=*/5,
                                                         /*seed=*/2014);
  std::printf("Band: %s\n", band.schema().ToString().c_str());
  std::printf("%lld cells in %lld chunks\n",
              static_cast<long long>(band.total_cells()),
              static_cast<long long>(band.num_chunks()));

  // Sort benchmark: distribution of the light measurements.
  for (const double q : {0.25, 0.5, 0.75}) {
    const auto value = exec::AttrQuantile(band, /*attr=radiance*/ 1, q);
    if (value.ok()) {
      std::printf("radiance %.0f%%-quantile: %.2f\n", q * 100.0, *value);
    }
  }

  // Complex projection benchmark: windowed average -> smooth image. The
  // span view reads the radiance column without materializing Cell values.
  const array::CellSpanView band_view(band);
  const auto smoothed = exec::WindowAverageAll(band, 1, /*radius=*/1);
  double raw_mean = 0.0, smooth_mean = 0.0;
  band_view.ForEachCell(
      [&raw_mean](const array::Chunk& chunk, size_t i, int64_t) {
        raw_mean += chunk.attr_value(1, i);
      });
  raw_mean /= static_cast<double>(band.total_cells());
  for (const auto& [pos, v] : smoothed) smooth_mean += v;
  smooth_mean /= static_cast<double>(smoothed.size());
  std::printf(
      "windowed NDVI smoothing: %zu pixels, raw mean %.2f, smoothed mean "
      "%.2f\n",
      smoothed.size(), raw_mean, smooth_mean);

  // Regrid the sparse data into a coarser, dense image (§3.3).
  const auto coarse = exec::Regrid(band, {5, 8, 8}, /*attr=*/1);
  if (coarse.ok()) {
    std::printf("regrid to %lld coarse cells (sum+count per cell)\n",
                static_cast<long long>(coarse->total_cells()));
  }

  // Modeling benchmark: k-means over (lon, lat, radiance) triples.
  std::vector<std::vector<double>> pixels;
  pixels.reserve(static_cast<size_t>(band_view.num_cells()));
  band_view.ForEachCell(
      [&pixels](const array::Chunk& chunk, size_t i, int64_t) {
        const int64_t* pos = chunk.cell_pos(i);
        pixels.push_back({static_cast<double>(pos[1]),
                          static_cast<double>(pos[2]),
                          chunk.attr_value(1, i) / 10.0});
      });
  const auto clusters = exec::KMeans(pixels, /*k=*/4, /*max_iterations=*/25,
                                     /*seed=*/7);
  std::printf("k-means: %d iterations, inertia %.1f, centroids:",
              clusters.iterations, clusters.inertia);
  for (const auto& c : clusters.centroids) {
    std::printf(" (%.1f,%.1f)", c[0], c[1]);
  }
  std::printf("\n\n");

  std::printf("== Part B: paper-scale elastic experiment ==\n\n");
  workload::ModisWorkload modis;
  workload::RunnerConfig cfg;
  cfg.partitioner = core::PartitionerKind::kIncrementalQuadtree;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  workload::WorkloadRunner runner(cfg);
  const auto result = runner.Run(modis);
  std::printf("cycle  nodes  load(GB)  insert  reorg   SPJ  science  RSD%%\n");
  for (const auto& m : result.cycles) {
    std::printf("%5d  %5d  %8.1f  %6.1f  %5.1f  %4.1f  %7.1f  %4.1f\n",
                m.cycle + 1, m.nodes_after, m.load_gb, m.insert_minutes,
                m.reorg_minutes, m.spj_minutes, m.science_minutes,
                m.rsd * 100.0);
  }
  std::printf(
      "\nTotals: insert %.1f min, reorg %.1f min, benchmarks %.1f min; "
      "Eq.1 cost %.1f node-hours\n",
      result.total_insert_minutes, result.total_reorg_minutes,
      result.total_benchmark_minutes(), result.cost_node_hours);
  return 0;
}
