// Blocking vs. incremental vs. overlapped reorganization on the AIS
// workload (§6.2 setup, Hilbert Curve partitioner): the incremental
// reorganization engine slices each scale-out's MovePlan into
// bandwidth-budgeted increments and, in overlapped mode, folds the cycle's
// query workload into the migration window via dual-residency routing.
//
// Emits BENCH_reorg.json with machine-independent simulated-minute metrics
// (the CI trend check consumes them).

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/runner.h"

using namespace arraydb;

namespace {

workload::RunResult RunMode(workload::ReorgMode mode, double increment_gb) {
  workload::RunnerConfig cfg = bench::PartitionerExperimentConfig(
      core::PartitionerKind::kHilbertCurve);
  cfg.reorg.mode = mode;
  cfg.reorg.increment_gb = increment_gb;
  cfg.ingest.threads = 0;  // Auto: exercise the parallel prewarm overlap.
  workload::AisWorkload ais;
  return workload::WorkloadRunner(cfg).Run(ais);
}

// Ingest-heavy staircase setup for the fixed-vs-arbitrated comparison: a
// bandwidth-constrained cluster (t = 1 min/GB) ingesting 2.5x the standard
// AIS volume under the leading-staircase policy, so migration traffic
// actually competes with inserts for link time.
workload::RunResult RunStaircase(workload::MigrationBudgetPolicy policy) {
  workload::RunnerConfig cfg = bench::PartitionerExperimentConfig(
      core::PartitionerKind::kHilbertCurve);
  cfg.policy = workload::ScaleOutPolicy::kStaircase;
  cfg.max_nodes = 64;  // The staircase decides on its own.
  cfg.reorg.mode = workload::ReorgMode::kOverlapped;
  cfg.reorg.budget_policy = policy;
  cfg.ingest.threads = 0;
  cfg.cost_params.net_minutes_per_gb = 1.0;
  workload::AisConfig heavy;
  heavy.gb_per_month = 25.0;  // ~1 TB over the 10 quarterly cycles.
  workload::AisWorkload ais(heavy);
  return workload::WorkloadRunner(cfg).Run(ais);
}

}  // namespace

int main() {
  std::printf(
      "Incremental reorganization: blocking vs. overlapped cycles on AIS\n"
      "(Hilbert Curve partitioner, 2->8 nodes, 8 GB migration "
      "increments).\n\n");

  const double kIncrementGb = 8.0;
  const auto blocking = RunMode(workload::ReorgMode::kBlocking, kIncrementGb);
  const auto incremental =
      RunMode(workload::ReorgMode::kIncremental, kIncrementGb);
  const auto overlapped =
      RunMode(workload::ReorgMode::kOverlapped, kIncrementGb);

  const std::vector<size_t> widths = {13, 11, 10, 11, 11, 10, 9};
  bench::Row({"Mode", "insert", "reorg", "queries", "elapsed", "saved",
              "incr"},
             widths);
  bench::Row({"", "(min)", "(min)", "(min)", "(min)", "(min)", ""}, widths);
  bench::Rule(84);
  const auto row = [&](const char* name, const workload::RunResult& r) {
    bench::Row({name, util::StrFormat("%.1f", r.total_insert_minutes),
                util::StrFormat("%.1f", r.total_reorg_minutes),
                util::StrFormat("%.1f", r.total_benchmark_minutes()),
                util::StrFormat("%.1f", r.total_elapsed_minutes),
                util::StrFormat("%.1f", r.total_overlap_saved_minutes),
                util::StrFormat("%d",
                                static_cast<int>(r.total_reorg_increments))},
               widths);
  };
  row("blocking", blocking);
  row("incremental", incremental);
  row("overlapped", overlapped);
  bench::Rule(84);

  const double speedup = blocking.total_workload_minutes() /
                         overlapped.total_elapsed_minutes;
  std::printf(
      "Overlapped cycles run %.2fx faster end to end: migration increments\n"
      "execute behind the query workload (dual-residency routing keeps\n"
      "mid-reorg results bit-identical to a quiesced cluster).\n",
      speedup);

  // Per-cycle trajectory of the overlapped run.
  std::printf("\nOverlapped per-cycle trajectory:\n");
  for (const auto& m : overlapped.cycles) {
    if (m.chunks_moved == 0) continue;
    std::printf(
        "  cycle %2d: %5.1f GB in %2d increments, reorg %5.1f min, "
        "saved %5.1f min\n",
        m.cycle, m.moved_gb, m.reorg_increments, m.reorg_minutes,
        m.overlap_saved_minutes);
  }

  // Fixed-vs-arbitrated migration budgets under an ingest-heavy staircase:
  // the retired constant scheme (whole plan drained in its scale-out cycle
  // at fixed 8 GB increments), the fixed per-cycle pacing, and the
  // cost-model arbitration (reorg::BandwidthArbiter).
  std::printf(
      "\nMigration/ingest bandwidth arbitration (ingest-heavy AIS, "
      "staircase policy):\n");
  const auto fixed_drain =
      RunStaircase(workload::MigrationBudgetPolicy::kFixedDrain);
  const auto fixed_paced =
      RunStaircase(workload::MigrationBudgetPolicy::kFixedPaced);
  const auto arbitrated =
      RunStaircase(workload::MigrationBudgetPolicy::kArbitrated);
  const std::vector<size_t> awidths = {13, 11, 11, 11, 10, 8};
  bench::Row({"Budget", "stall", "elapsed", "moved", "forced", "incr"},
             awidths);
  bench::Row({"", "(min)", "(min)", "(GB)", "drains", ""}, awidths);
  bench::Rule(74);
  const auto arow = [&](const char* name, const workload::RunResult& r) {
    double moved = 0.0;
    for (const auto& m : r.cycles) moved += m.moved_gb;
    bench::Row({name, util::StrFormat("%.1f", r.total_ingest_stall_minutes),
                util::StrFormat("%.1f", r.total_elapsed_minutes),
                util::StrFormat("%.1f", moved),
                util::StrFormat("%d", r.forced_drains),
                util::StrFormat("%d",
                                static_cast<int>(r.total_reorg_increments))},
               awidths);
  };
  arow("fixed-drain", fixed_drain);
  arow("fixed-paced", fixed_paced);
  arow("arbitrated", arbitrated);
  bench::Rule(74);
  std::printf(
      "Arbitrated budgets pace migration just-in-time for the staircase\n"
      "deadline, hiding it behind the query window instead of stalling the\n"
      "ingest path.\n");

  bench::JsonBenchWriter writer;
  writer.AddMetric("blocking_total_minutes",
                   blocking.total_workload_minutes());
  writer.AddMetric("incremental_total_minutes",
                   incremental.total_elapsed_minutes);
  writer.AddMetric("overlapped_total_minutes",
                   overlapped.total_elapsed_minutes);
  writer.AddMetric("overlap_saved_minutes",
                   overlapped.total_overlap_saved_minutes);
  writer.AddMetric("overlap_speedup_x", speedup);
  writer.AddMetric("reorg_increments",
                   static_cast<double>(overlapped.total_reorg_increments));
  writer.AddMetric("moved_gb", [&] {
    double gb = 0.0;
    for (const auto& m : overlapped.cycles) gb += m.moved_gb;
    return gb;
  }());
  writer.AddMetric("fixed_ingest_stall_minutes",
                   fixed_drain.total_ingest_stall_minutes);
  writer.AddMetric("arbitrated_ingest_stall_minutes",
                   arbitrated.total_ingest_stall_minutes);
  writer.AddMetric("arbitration_stall_reduction_x",
                   fixed_drain.total_ingest_stall_minutes /
                       std::max(arbitrated.total_ingest_stall_minutes, 1.0));
  writer.AddMetric("arbitrated_elapsed_minutes",
                   arbitrated.total_elapsed_minutes);
  if (!writer.WriteFile("BENCH_reorg.json")) {
    std::fprintf(stderr, "failed to write BENCH_reorg.json\n");
    return 1;
  }
  std::printf("\nWrote BENCH_reorg.json\n");

  // The acceptance properties this bench exists to demonstrate.
  if (!(overlapped.total_elapsed_minutes <
        blocking.total_workload_minutes())) {
    std::fprintf(stderr,
                 "FAIL: overlapped elapsed (%.2f) not below blocking "
                 "(%.2f)\n",
                 overlapped.total_elapsed_minutes,
                 blocking.total_workload_minutes());
    return 1;
  }
  if (!(arbitrated.total_ingest_stall_minutes <
        fixed_drain.total_ingest_stall_minutes)) {
    std::fprintf(stderr,
                 "FAIL: arbitrated ingest stall (%.2f) not below the fixed "
                 "8 GB budget's (%.2f)\n",
                 arbitrated.total_ingest_stall_minutes,
                 fixed_drain.total_ingest_stall_minutes);
    return 1;
  }
  return 0;
}
