// Figure 5: total benchmark times for the elastic partitioners — the
// Science and Select-Project-Join suites of §3.3, summed over every
// workload cycle for both use cases.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/modis.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Figure 5: Benchmark times for elastic partitioners (minutes).\n"
      "(paper reference: SIGMOD'14 Figure 5)\n\n");

  workload::ModisWorkload modis;
  workload::AisWorkload ais;

  const std::vector<size_t> widths = {16, 13, 11, 11, 9, 9};
  bench::Row({"Partitioner", "Science MODIS", "SPJ MODIS", "Science AIS",
              "SPJ AIS", "Total"},
             widths);
  bench::Rule(84);

  double baseline_total = 0.0;
  double best_spatial_total = 1e18;
  for (const auto kind : core::AllPartitionerKinds()) {
    workload::WorkloadRunner runner(bench::PartitionerExperimentConfig(kind));
    const auto rm = runner.Run(modis);
    const auto ra = runner.Run(ais);
    const double total = rm.total_benchmark_minutes() +
                         ra.total_benchmark_minutes();
    bench::Row({core::PartitionerKindName(kind),
                util::StrFormat("%.1f", rm.total_science_minutes),
                util::StrFormat("%.1f", rm.total_spj_minutes),
                util::StrFormat("%.1f", ra.total_science_minutes),
                util::StrFormat("%.1f", ra.total_spj_minutes),
                util::StrFormat("%.1f", total)},
               widths);
    if (kind == core::PartitionerKind::kRoundRobin) baseline_total = total;
    if (kind == core::PartitionerKind::kHilbertCurve ||
        kind == core::PartitionerKind::kIncrementalQuadtree ||
        kind == core::PartitionerKind::kKdTree) {
      best_spatial_total = std::min(best_spatial_total, total);
    }
  }
  bench::Rule(84);
  std::printf(
      "Best skew-aware n-dimensional scheme vs Round Robin baseline: "
      "%.0f%% of the\nbaseline's total benchmark time (paper: spatial "
      "schemes ~25%% faster overall).\n",
      100.0 * best_spatial_total / baseline_total);
  std::printf(
      "Paper shape checks: SPJ tracks storage balance (hash schemes "
      "fastest,\nrange schemes slower on skewed AIS); science analytics "
      "favor the\nskew-aware n-dimensional partitioners on both workloads; "
      "Uniform Range\nis the poorest AIS performer.\n");
  return 0;
}
