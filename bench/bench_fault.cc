// Fault-recovery overhead under chaos: the §6.2 capacity-trigger AIS run
// with a seeded fault schedule — transient transfer failures retrying under
// capped backoff, slow copies dilating increments, and two scheduled
// destination-node deaths forcing replans onto the surviving new nodes —
// compared against the identical fault-free run.
//
// Everything is simulated virtual time from the deterministic cost model,
// so the recovery-overhead ratio is machine-independent and gated as a hard
// ceiling in CI (BENCH_fault.json, ceiling_recovery_overhead_ratio), and
// the replan success rate as a hard floor (floor_replan_success_rate).

#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/runner.h"

using namespace arraydb;

namespace {

workload::RunnerConfig ChaosConfig(bool faults) {
  workload::RunnerConfig cfg = bench::PartitionerExperimentConfig(
      core::PartitionerKind::kConsistentHash);
  cfg.reorg.mode = workload::ReorgMode::kOverlapped;
  if (faults) {
    cfg.fault.enabled = true;
    cfg.fault.plan.seed = 17;
    // Rare checksum failures — a transient fails the *whole* slice attempt,
    // and AIS slices carry ~500 moves, so the per-move rate must sit near
    // 1/moves to model occasional retries rather than certain exhaustion.
    // Frequent slow copies dilate every plan. The node death hits node 7 —
    // the last node any scale-out adds — so the final migration replans
    // onto its surviving sibling while no later plan ever *sources* from
    // the dead node (source loss is out of the fault model's scope:
    // unrecoverable without replication).
    cfg.fault.plan.transient_failure_rate = 0.0005;
    cfg.fault.plan.slow_copy_rate = 0.3;
    cfg.fault.plan.slow_copy_dilation = 2.0;
    cfg.fault.plan.node_deaths.push_back({0.0, 7});
  }
  return cfg;
}

workload::RunResult RunLeg(bool faults) {
  workload::AisWorkload ais;
  return workload::WorkloadRunner(ChaosConfig(faults)).Run(ais);
}

}  // namespace

int main() {
  std::printf(
      "Fault recovery overhead: seeded chaos (transient failures + slow\n"
      "copies + destination-node deaths) vs. the fault-free AIS run.\n\n");

  const auto clean = RunLeg(/*faults=*/false);
  const auto chaos = RunLeg(/*faults=*/true);

  // Determinism: the same seed must replay the identical recovery
  // trajectory, bit for bit.
  const auto replay = RunLeg(/*faults=*/true);
  if (chaos.total_faults_injected != replay.total_faults_injected ||
      chaos.total_retries != replay.total_retries ||
      chaos.total_replans != replay.total_replans ||
      chaos.total_reorg_aborts != replay.total_reorg_aborts ||
      chaos.total_recovery_overhead_minutes !=
          replay.total_recovery_overhead_minutes ||
      chaos.total_elapsed_minutes != replay.total_elapsed_minutes) {
    std::fprintf(stderr, "FAIL: chaos run is not deterministic\n");
    return 1;
  }

  // Replan success: every cycle whose migration observed a node death or
  // replanned must have completed (not been abandoned).
  int fault_cycles = 0;
  int recovered_cycles = 0;
  for (const auto& cycle : chaos.cycles) {
    if (cycle.node_deaths > 0 || cycle.replans > 0) {
      fault_cycles += 1;
      if (!cycle.reorg_abandoned) recovered_cycles += 1;
    }
  }
  const double replan_success_rate =
      fault_cycles > 0
          ? static_cast<double>(recovered_cycles) / fault_cycles
          : 1.0;
  const double recovery_overhead_ratio =
      chaos.total_recovery_overhead_minutes /
      std::max(clean.total_reorg_minutes, 1e-9);

  const std::vector<size_t> widths = {10, 9, 9, 8, 8, 8, 8, 9};
  bench::Row({"Run", "reorg", "recovery", "faults", "retries", "replans",
              "aborts", "elapsed"},
             widths);
  bench::Row({"", "(min)", "(min)", "", "", "", "", "(min)"}, widths);
  bench::Rule(86);
  const auto row = [&](const char* name, const workload::RunResult& r) {
    bench::Row(
        {name, util::StrFormat("%.1f", r.total_reorg_minutes),
         util::StrFormat("%.1f", r.total_recovery_overhead_minutes),
         util::StrFormat("%d", static_cast<int>(r.total_faults_injected)),
         util::StrFormat("%d", static_cast<int>(r.total_retries)),
         util::StrFormat("%d", static_cast<int>(r.total_replans)),
         util::StrFormat("%d", r.total_reorg_aborts),
         util::StrFormat("%.1f", r.total_elapsed_minutes)},
        widths);
  };
  row("clean", clean);
  row("chaos", chaos);
  bench::Rule(86);
  std::printf(
      "Recovery overhead is %.1f%% of the fault-free migration bill;\n"
      "%d/%d death-affected migrations replanned onto survivors.\n",
      100.0 * recovery_overhead_ratio, recovered_cycles, fault_cycles);

  bench::JsonBenchWriter writer;
  writer.AddMetric("clean_reorg_minutes", clean.total_reorg_minutes);
  writer.AddMetric("chaos_reorg_minutes", chaos.total_reorg_minutes);
  writer.AddMetric("recovery_overhead_minutes",
                   chaos.total_recovery_overhead_minutes);
  writer.AddMetric("recovery_overhead_ratio", recovery_overhead_ratio);
  writer.AddMetric("replan_success_rate", replan_success_rate);
  writer.AddMetric("faults_injected",
                   static_cast<double>(chaos.total_faults_injected));
  writer.AddMetric("retries", static_cast<double>(chaos.total_retries));
  writer.AddMetric("replans", static_cast<double>(chaos.total_replans));
  writer.AddMetric("node_deaths",
                   static_cast<double>(chaos.total_node_deaths));
  writer.AddMetric("reorg_aborts",
                   static_cast<double>(chaos.total_reorg_aborts));
  writer.AddMetric("reorgs_abandoned",
                   static_cast<double>(chaos.reorgs_abandoned));
  if (!writer.WriteFile("BENCH_fault.json")) {
    std::fprintf(stderr, "failed to write BENCH_fault.json\n");
    return 1;
  }
  std::printf("\nWrote BENCH_fault.json\n");

  // Acceptance: chaos actually happened, every affected migration
  // recovered, and the run still reached the full testbed.
  if (chaos.total_faults_injected <= 0 || chaos.total_retries <= 0 ||
      chaos.total_replans < 1) {
    std::fprintf(stderr, "FAIL: the chaos schedule injected no faults\n");
    return 1;
  }
  if (chaos.reorgs_abandoned != 0 || replan_success_rate < 1.0) {
    std::fprintf(stderr,
                 "FAIL: %d reorganizations abandoned (replan success %.2f)\n",
                 chaos.reorgs_abandoned, replan_success_rate);
    return 1;
  }
  if (chaos.final_nodes != clean.final_nodes) {
    std::fprintf(stderr, "FAIL: chaos changed the scale-out trajectory\n");
    return 1;
  }
  return 0;
}
