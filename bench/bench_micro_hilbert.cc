// Ablation microbenchmarks for the Hilbert curve substrate: index
// throughput across dimensionalities, plus a locality comparison of
// chunk orderings (Hilbert vs row-major vs Z-order) — the property the
// Hilbert partitioner's range splits depend on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "array/coordinates.h"
#include "hilbert/hilbert.h"
#include "util/rng.h"

namespace {

using namespace arraydb;

void BM_HilbertIndex(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  util::Rng rng(5);
  std::vector<uint32_t> point(static_cast<size_t>(dims));
  for (auto _ : state) {
    for (auto& c : point) {
      c = static_cast<uint32_t>(rng.NextBounded(1ULL << bits));
    }
    benchmark::DoNotOptimize(hilbert::HilbertIndex(point, bits));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertIndex)
    ->Args({2, 8})
    ->Args({3, 6})
    ->Args({3, 10})
    ->Args({4, 8});

void BM_HilbertPoint(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  util::Rng rng(9);
  const uint64_t space = 1ULL << (dims * bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hilbert::HilbertPoint(rng.NextBounded(space), dims, bits));
  }
}
BENCHMARK(BM_HilbertPoint)->Args({2, 8})->Args({3, 6});

// Mean Manhattan jump between consecutive cells of an ordering — lower is
// better locality for range partitioning.
double MeanJump(const std::vector<array::Coordinates>& order) {
  double total = 0.0;
  for (size_t i = 1; i < order.size(); ++i) {
    total += static_cast<double>(
        array::ManhattanDistance(order[i], order[i - 1]));
  }
  return total / static_cast<double>(order.size() - 1);
}

void BM_OrderingLocality(benchmark::State& state) {
  const int64_t side = 64;
  const array::Coordinates extents = {side, side};
  enum { kHilbert = 0, kRowMajor = 1, kZOrder = 2 };
  const int mode = static_cast<int>(state.range(0));

  double jump = 0.0;
  for (auto _ : state) {
    std::vector<std::pair<uint64_t, array::Coordinates>> cells;
    cells.reserve(static_cast<size_t>(side * side));
    for (int64_t x = 0; x < side; ++x) {
      for (int64_t y = 0; y < side; ++y) {
        uint64_t key = 0;
        switch (mode) {
          case kHilbert:
            key = hilbert::HilbertRank({x, y}, extents);
            break;
          case kRowMajor:
            key = static_cast<uint64_t>(x * side + y);
            break;
          case kZOrder: {
            for (int b = 0; b < 6; ++b) {
              key |= static_cast<uint64_t>((x >> b) & 1) << (2 * b + 1);
              key |= static_cast<uint64_t>((y >> b) & 1) << (2 * b);
            }
            break;
          }
        }
        cells.emplace_back(key, array::Coordinates{x, y});
      }
    }
    std::sort(cells.begin(), cells.end());
    std::vector<array::Coordinates> order;
    order.reserve(cells.size());
    for (auto& [key, c] : cells) order.push_back(std::move(c));
    jump = MeanJump(order);
    benchmark::DoNotOptimize(jump);
  }
  state.counters["mean_manhattan_jump"] = jump;
  state.SetLabel(mode == kHilbert   ? "hilbert"
                 : mode == kRowMajor ? "row-major"
                                     : "z-order");
}
BENCHMARK(BM_OrderingLocality)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
