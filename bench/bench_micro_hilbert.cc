// Ablation microbenchmarks for the Hilbert curve substrate: index
// throughput across dimensionalities, the batched/codec ranking fast path
// against the seed per-bit scalar path, plus a locality comparison of
// chunk orderings (Hilbert vs row-major vs Z-order) — the property the
// Hilbert partitioner's range splits depend on.
//
// Emits BENCH_hilbert.json (ns/op + items/s per benchmark, and the
// batch-vs-seed speedup ratios) for cross-PR perf tracking.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "array/coordinates.h"
#include "bench/gbench_json.h"
#include "hilbert/hilbert.h"
#include "util/rng.h"

namespace {

using namespace arraydb;

void BM_HilbertIndex(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  util::Rng rng(5);
  std::vector<uint32_t> point(static_cast<size_t>(dims));
  for (auto _ : state) {
    for (auto& c : point) {
      c = static_cast<uint32_t>(rng.NextBounded(1ULL << bits));
    }
    benchmark::DoNotOptimize(hilbert::HilbertIndex(point, bits));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertIndex)
    ->Args({2, 8})
    ->Args({3, 6})
    ->Args({3, 10})
    ->Args({4, 8});

void BM_HilbertPoint(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  util::Rng rng(9);
  const uint64_t space = 1ULL << (dims * bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hilbert::HilbertPoint(rng.NextBounded(space), dims, bits));
  }
}
BENCHMARK(BM_HilbertPoint)->Args({2, 8})->Args({3, 6});

// -- Batched ranking vs the seed scalar path --------------------------------
//
// All three benchmarks rank the same pre-generated random points on the
// same rectangular grid, so items/s is directly comparable:
//   Seed    — the original per-call path: per-bit gather + rotate/gray
//             arithmetic, per-call setup (HilbertRankReference).
//   Scalar  — the codec fast path behind the unchanged HilbertRank API.
//   Batch   — HilbertRankBatch, codec setup amortized over the batch.

struct RankGrid {
  array::Coordinates extents;
};

const RankGrid kRankGrids[] = {
    {{36, 29, 23}},   // 3-D MODIS-like chunk grid (6 bits).
    {{128, 128}},     // 2-D square grid (7 bits).
};

std::vector<array::Coordinates> MakeRankPoints(const array::Coordinates& ext,
                                               size_t count) {
  util::Rng rng(17);
  std::vector<array::Coordinates> points(count);
  for (auto& p : points) {
    p.resize(ext.size());
    for (size_t d = 0; d < ext.size(); ++d) {
      p[d] = static_cast<int64_t>(
          rng.NextBounded(static_cast<uint64_t>(ext[d])));
    }
  }
  return points;
}

constexpr size_t kRankBatchSize = 4096;

void BM_HilbertRankSeed(benchmark::State& state) {
  const auto& grid = kRankGrids[static_cast<size_t>(state.range(0))];
  const auto points = MakeRankPoints(grid.extents, kRankBatchSize);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hilbert::HilbertRankReference(points[i], grid.extents));
    i = (i + 1) % points.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertRankSeed)->Arg(0)->Arg(1);

void BM_HilbertRankScalar(benchmark::State& state) {
  const auto& grid = kRankGrids[static_cast<size_t>(state.range(0))];
  const auto points = MakeRankPoints(grid.extents, kRankBatchSize);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbert::HilbertRank(points[i], grid.extents));
    i = (i + 1) % points.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HilbertRankScalar)->Arg(0)->Arg(1);

void BM_HilbertRankBatch(benchmark::State& state) {
  const auto& grid = kRankGrids[static_cast<size_t>(state.range(0))];
  const auto points = MakeRankPoints(grid.extents, kRankBatchSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hilbert::HilbertRankBatch(points, grid.extents));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points.size()));
}
BENCHMARK(BM_HilbertRankBatch)->Arg(0)->Arg(1);

// Mean Manhattan jump between consecutive cells of an ordering — lower is
// better locality for range partitioning.
double MeanJump(const std::vector<array::Coordinates>& order) {
  double total = 0.0;
  for (size_t i = 1; i < order.size(); ++i) {
    total += static_cast<double>(
        array::ManhattanDistance(order[i], order[i - 1]));
  }
  return total / static_cast<double>(order.size() - 1);
}

void BM_OrderingLocality(benchmark::State& state) {
  const int64_t side = 64;
  const array::Coordinates extents = {side, side};
  enum { kHilbert = 0, kRowMajor = 1, kZOrder = 2 };
  const int mode = static_cast<int>(state.range(0));

  double jump = 0.0;
  for (auto _ : state) {
    std::vector<std::pair<uint64_t, array::Coordinates>> cells;
    cells.reserve(static_cast<size_t>(side * side));
    for (int64_t x = 0; x < side; ++x) {
      for (int64_t y = 0; y < side; ++y) {
        uint64_t key = 0;
        switch (mode) {
          case kHilbert:
            key = hilbert::HilbertRank({x, y}, extents);
            break;
          case kRowMajor:
            key = static_cast<uint64_t>(x * side + y);
            break;
          case kZOrder: {
            for (int b = 0; b < 6; ++b) {
              key |= static_cast<uint64_t>((x >> b) & 1) << (2 * b + 1);
              key |= static_cast<uint64_t>((y >> b) & 1) << (2 * b);
            }
            break;
          }
        }
        cells.emplace_back(key, array::Coordinates{x, y});
      }
    }
    std::sort(cells.begin(), cells.end());
    std::vector<array::Coordinates> order;
    order.reserve(cells.size());
    for (auto& [key, c] : cells) order.push_back(std::move(c));
    jump = MeanJump(order);
    benchmark::DoNotOptimize(jump);
  }
  state.counters["mean_manhattan_jump"] = jump;
  state.SetLabel(mode == kHilbert   ? "hilbert"
                 : mode == kRowMajor ? "row-major"
                                     : "z-order");
}
BENCHMARK(BM_OrderingLocality)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  arraydb::bench::JsonBenchWriter writer;
  arraydb::bench::JsonFileReporter reporter(&writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Derived acceptance metrics: batched ranking throughput over the seed
  // scalar path, per grid and overall (minimum across grids).
  double min_speedup = 0.0;
  for (size_t g = 0; g < std::size(kRankGrids); ++g) {
    const std::string suffix = "/" + std::to_string(g);
    const auto* seed = writer.Find("BM_HilbertRankSeed" + suffix);
    const auto* batch = writer.Find("BM_HilbertRankBatch" + suffix);
    if (seed == nullptr || batch == nullptr) continue;
    if (seed->items_per_second <= 0.0 || batch->items_per_second <= 0.0) {
      continue;
    }
    const double speedup = batch->items_per_second / seed->items_per_second;
    writer.AddMetric("speedup_batch_vs_seed_grid" + std::to_string(g),
                     speedup);
    min_speedup = min_speedup == 0.0 ? speedup : std::min(min_speedup, speedup);
  }
  if (min_speedup > 0.0) {
    writer.AddMetric("speedup_batch_vs_seed", min_speedup);
    std::printf("batch-vs-seed ranking speedup (min over grids): %.2fx\n",
                min_speedup);
  }
  if (!writer.WriteFile("BENCH_hilbert.json")) {
    std::fprintf(stderr, "failed to write BENCH_hilbert.json\n");
    return 1;
  }
  std::printf("wrote BENCH_hilbert.json\n");
  benchmark::Shutdown();
  return 0;
}
