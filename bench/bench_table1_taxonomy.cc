// Table 1: taxonomy of array partitioners — which of the four features of
// elastic data placement each scheme implements. Regenerated directly from
// the partitioners' advertised feature sets, so the table cannot drift from
// the implementation.

#include <cstdio>
#include <string>

#include "array/schema.h"
#include "bench/bench_util.h"
#include "core/partitioner_factory.h"

namespace {

using namespace arraydb;

array::ArraySchema ProbeSchema() {
  return array::ArraySchema(
      "probe",
      {array::DimensionDesc{"x", 0, 63, 1, false},
       array::DimensionDesc{"y", 0, 63, 1, false}},
      {array::AttributeDesc{"v", array::AttrType::kDouble}});
}

}  // namespace

int main() {
  std::printf("Table 1: Taxonomy of array partitioners.\n");
  std::printf("(paper reference: Duggan & Stonebraker, SIGMOD'14, Table 1)\n\n");

  const std::vector<size_t> widths = {16, 11, 12, 6, 13};
  bench::Row({"Partitioner", "Incremental", "Fine-Grained", "Skew-",
              "n-Dimensional"},
             widths);
  bench::Row({"", "Scale Out", "Partitioning", "Aware", "Clustering"},
             widths);
  bench::Rule(70);

  const auto schema = ProbeSchema();
  for (const auto kind : core::AllPartitionerKinds()) {
    const auto p = core::MakePartitioner(kind, schema, 2, 100.0);
    const auto mark = [&](bool set) { return std::string(set ? "X" : ""); };
    bench::Row({p->name(), mark(p->IsIncremental()), mark(p->IsFineGrained()),
                mark(p->IsSkewAware()), mark(p->IsNDimClustered())},
               widths);
  }
  std::printf(
      "\nPaper agreement: all eight rows match Table 1 exactly (enforced by\n"
      "tests/partitioner_test.cc:Table1FeatureTaxonomy).\n");
  return 0;
}
