// Shared helpers for the experiment harnesses: aligned-table printing, the
// standard §6.1 experiment configurations, and machine-readable benchmark
// output (BENCH_*.json) so the perf trajectory is tracked across PRs.

#ifndef ARRAYDB_BENCH_BENCH_UTIL_H_
#define ARRAYDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.h"
#include "util/strings.h"
#include "workload/runner.h"

namespace arraydb::bench {

/// Prints a horizontal rule sized to `width`.
inline void Rule(size_t width) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

/// Prints one aligned row; the first column is left-aligned, the rest right.
inline void Row(const std::vector<std::string>& cells,
                const std::vector<size_t>& widths) {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 0) {
      out += util::PadRight(cells[i], widths[i]);
    } else {
      out += "  " + util::PadLeft(cells[i], widths[i]);
    }
  }
  std::printf("%s\n", out.c_str());
}

/// The §6.2 partitioner-evaluation configuration: start with 2 nodes and
/// add 2 whenever capacity is reached, ending at the 8-node testbed.
inline workload::RunnerConfig PartitionerExperimentConfig(
    core::PartitionerKind kind) {
  workload::RunnerConfig cfg;
  cfg.partitioner = kind;
  cfg.policy = workload::ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  return cfg;
}

/// Collects per-benchmark (ns/op, throughput) pairs and writes them as a
/// compact JSON file. Used by the google-benchmark micro benches via
/// JsonFileReporter and writable directly by the plain harnesses.
class JsonBenchWriter {
 public:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    double items_per_second = 0.0;  // 0 when the bench reports no items.
  };

  void Add(Entry entry) { entries_.push_back(std::move(entry)); }

  /// Derived summary metrics (e.g. speedup ratios) appended verbatim.
  void AddMetric(const std::string& name, double value) {
    metrics_.emplace_back(name, value);
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Finds the first entry whose name starts with `prefix`; nullptr if none.
  const Entry* Find(const std::string& prefix) const {
    for (const auto& e : entries_) {
      if (e.name.rfind(prefix, 0) == 0) return &e;
    }
    return nullptr;
  }

  bool WriteFile(const std::string& path) const {
    std::ofstream out(path);
    if (!out) return false;
    // Serialization routes through the telemetry JsonWriter — the single
    // escaping/number-formatting path shared with the metric snapshots and
    // trace files (src/telemetry/json.h).
    telemetry::JsonWriter json(out, /*pretty=*/true);
    json.BeginObject();
    json.Key("benchmarks");
    json.BeginArray();
    for (const auto& e : entries_) {
      json.BeginObject();
      json.Key("name");
      json.String(e.name);
      json.Key("ns_per_op");
      json.Double(e.ns_per_op, "%.3f");
      json.Key("items_per_second");
      json.Double(e.items_per_second, "%.3f");
      json.EndObject();
    }
    json.EndArray();
    for (const auto& [name, value] : metrics_) {
      json.Key(name);
      json.Double(value);
    }
    json.EndObject();
    out << "\n";
    return !out.fail();
  }

 private:
  std::vector<Entry> entries_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace arraydb::bench

#endif  // ARRAYDB_BENCH_BENCH_UTIL_H_
