// Shared helpers for the experiment harnesses: aligned-table printing and
// the standard §6.1 experiment configurations.

#ifndef ARRAYDB_BENCH_BENCH_UTIL_H_
#define ARRAYDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/strings.h"
#include "workload/runner.h"

namespace arraydb::bench {

/// Prints a horizontal rule sized to `width`.
inline void Rule(size_t width) {
  std::string line(width, '-');
  std::printf("%s\n", line.c_str());
}

/// Prints one aligned row; the first column is left-aligned, the rest right.
inline void Row(const std::vector<std::string>& cells,
                const std::vector<size_t>& widths) {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i == 0) {
      out += util::PadRight(cells[i], widths[i]);
    } else {
      out += "  " + util::PadLeft(cells[i], widths[i]);
    }
  }
  std::printf("%s\n", out.c_str());
}

/// The §6.2 partitioner-evaluation configuration: start with 2 nodes and
/// add 2 whenever capacity is reached, ending at the 8-node testbed.
inline workload::RunnerConfig PartitionerExperimentConfig(
    core::PartitionerKind kind) {
  workload::RunnerConfig cfg;
  cfg.partitioner = kind;
  cfg.policy = workload::ScaleOutPolicy::kCapacityTrigger;
  cfg.initial_nodes = 2;
  cfg.nodes_per_scaleout = 2;
  cfg.max_nodes = 8;
  return cfg;
}

}  // namespace arraydb::bench

#endif  // ARRAYDB_BENCH_BENCH_UTIL_H_
