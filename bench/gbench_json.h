// Adapter from google-benchmark's reporter interface to JsonBenchWriter:
// records (ns/op, items/s) per benchmark run so the micro benches can emit
// BENCH_*.json next to their console output. Serialization (escaping and
// number formatting) happens in JsonBenchWriter::WriteFile, which routes
// through the shared telemetry JsonWriter (src/telemetry/json.h) — the same
// path the metric snapshots and trace files use.

#ifndef ARRAYDB_BENCH_GBENCH_JSON_H_
#define ARRAYDB_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <type_traits>
#include <vector>

#include "bench/bench_util.h"

namespace arraydb::bench {

namespace internal {

// google-benchmark removed Run::error_occurred in v1.8 (replaced by the
// `skipped` enum). Probe for whichever field this library version has so
// the adapter compiles against both.
template <typename RunT, typename = void>
struct HasErrorOccurred : std::false_type {};
template <typename RunT>
struct HasErrorOccurred<
    RunT, std::void_t<decltype(std::declval<const RunT&>().error_occurred)>>
    : std::true_type {};

template <typename RunT, typename = void>
struct HasSkipped : std::false_type {};
template <typename RunT>
struct HasSkipped<RunT,
                  std::void_t<decltype(std::declval<const RunT&>().skipped)>>
    : std::true_type {};

template <typename RunT>
bool RunErroredOrSkipped(const RunT& run) {
  if constexpr (HasErrorOccurred<RunT>::value) {
    return run.error_occurred;
  } else if constexpr (HasSkipped<RunT>::value) {
    return static_cast<int>(run.skipped) != 0;  // 0 == NotSkipped.
  } else {
    return false;
  }
}

}  // namespace internal

/// Display reporter that forwards to the standard console output while
/// collecting entries into a JsonBenchWriter. Being the display reporter
/// (not a --benchmark_out file reporter) means no extra flags are needed.
class JsonFileReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonFileReporter(JsonBenchWriter* writer) : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (internal::RunErroredOrSkipped(run)) continue;
      if (run.run_type != Run::RT_Iteration) continue;  // Skip aggregates.
      JsonBenchWriter::Entry entry;
      entry.name = run.benchmark_name();
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      entry.ns_per_op = run.real_accumulated_time / iterations * 1e9;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        entry.items_per_second = static_cast<double>(it->second);
      }
      writer_->Add(std::move(entry));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  JsonBenchWriter* writer_;
};

}  // namespace arraydb::bench

#endif  // ARRAYDB_BENCH_GBENCH_JSON_H_
