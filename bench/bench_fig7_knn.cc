// Figure 7: k-nearest-neighbors on skewed data — the AIS marine-traffic
// density estimate, minutes per workload cycle, for every partitioner.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/strings.h"
#include "workload/ais.h"
#include "workload/runner.h"

using namespace arraydb;

int main() {
  std::printf(
      "Figure 7: k-nearest neighbors on skewed data (AIS ship-traffic\n"
      "density), minutes per workload cycle.\n"
      "(paper reference: SIGMOD'14 Figure 7)\n\n");

  workload::AisWorkload ais;
  std::map<std::string, std::vector<double>> series;
  for (const auto kind : core::AllPartitionerKinds()) {
    workload::WorkloadRunner runner(bench::PartitionerExperimentConfig(kind));
    const auto result = runner.Run(ais);
    auto& row = series[core::PartitionerKindName(kind)];
    for (const auto& cycle : result.cycles) {
      for (const auto& [name, minutes] : cycle.query_minutes) {
        if (name == workload::AisWorkload::kKnnQueryName) {
          row.push_back(minutes);
        }
      }
    }
  }

  std::vector<size_t> widths = {16};
  std::vector<std::string> header = {"Partitioner"};
  for (int c = 1; c <= ais.num_cycles(); ++c) {
    widths.push_back(6);
    header.push_back(util::StrFormat("c%d", c));
  }
  bench::Row(header, widths);
  bench::Rule(16 + 8 * static_cast<size_t>(ais.num_cycles()));

  std::map<std::string, double> totals;
  for (const auto kind : core::AllPartitionerKinds()) {
    const auto& row = series[core::PartitionerKindName(kind)];
    std::vector<std::string> cells = {core::PartitionerKindName(kind)};
    double total = 0.0;
    for (const double m : row) {
      cells.push_back(util::StrFormat("%.2f", m));
      total += m;
    }
    totals[core::PartitionerKindName(kind)] = total;
    bench::Row(cells, widths);
  }
  bench::Rule(16 + 8 * static_cast<size_t>(ais.num_cycles()));
  std::printf(
      "Summed kNN time — K-d Tree: %.1f, Hilbert Curve: %.1f, baseline "
      "(Round Robin): %.1f min.\n",
      totals["K-d Tree"], totals["Hilbert Curve"], totals["Round Robin"]);
  std::printf(
      "Paper shape checks: K-d Tree and Hilbert Curve finish fastest "
      "(preserving\nthe spatial arrangement collocates each probe's "
      "neighborhood); the hash\nschemes pay remote fetches for every "
      "neighbor; skew-aware range schemes\nimprove as nodes are added.\n");
  return 0;
}
